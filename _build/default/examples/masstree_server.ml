(* Networked ordered index: Masstree over eRPC (paper §7.2).

   A server hosts an ordered key-value index with two request types:
   point GETs served in dispatch threads, and 128-key range SCANs that
   run in background worker threads so they do not block latency-critical
   dispatch work (§3.2's threading model).

   Run with: dune exec examples/masstree_server.exe *)

let get_req = 1
let scan_req = 2
let key_width = 8
let num_keys = 100_000

let () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in

  (* Server: populate the tree, register GET (dispatch) and SCAN (worker). *)
  let tree = Masstree.Tree.create () in
  for k = 0 to num_keys - 1 do
    Masstree.Tree.insert tree
      ~key:(Workload.Keygen.encode ~width:key_width k)
      ~value:(Workload.Keygen.encode ~width:key_width (k * 2))
  done;
  let depth = Masstree.Tree.depth tree in
  let server_nexus = Erpc.Nexus.create fabric ~host:1 ~num_workers:2 () in
  Erpc.Nexus.register_handler server_nexus ~req_type:get_req ~mode:Erpc.Nexus.Dispatch
    (fun h ->
      let key = Erpc.Msgbuf.read_string (Erpc.Req_handle.get_request h) ~off:0 ~len:key_width in
      Erpc.Req_handle.charge h (Masstree.Tree.lookup_cost_ns ~depth);
      let v =
        match Masstree.Tree.get tree ~key with Some v -> v | None -> String.make key_width ' '
      in
      let resp = Erpc.Req_handle.init_response h ~size:key_width in
      Erpc.Msgbuf.write_string resp ~off:0 v;
      Erpc.Req_handle.enqueue_response h resp);
  Erpc.Nexus.register_handler server_nexus ~req_type:scan_req ~mode:Erpc.Nexus.Worker (fun h ->
      let key = Erpc.Msgbuf.read_string (Erpc.Req_handle.get_request h) ~off:0 ~len:key_width in
      Erpc.Req_handle.charge h (Masstree.Tree.scan_cost_ns ~depth ~n:128);
      let sum =
        List.fold_left
          (fun acc (_, v) -> acc + int_of_string v)
          0
          (Masstree.Tree.scan tree ~start:key ~n:128)
      in
      let resp = Erpc.Req_handle.init_response h ~size:8 in
      Erpc.Msgbuf.set_u64 resp ~off:0 sum;
      Erpc.Req_handle.enqueue_response h resp);
  let _server = Erpc.Rpc.create server_nexus ~rpc_id:0 in

  (* Client: 99% GET / 1% SCAN, two outstanding. *)
  let client_nexus = Erpc.Nexus.create fabric ~host:0 () in
  let client = Erpc.Rpc.create client_nexus ~rpc_id:0 in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let engine = Erpc.Fabric.engine fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let gets = Stats.Hist.create () and scans = Stats.Hist.create () in
  let remaining = ref 20_000 in
  let rec issue slot_req slot_resp =
    if !remaining > 0 then begin
      decr remaining;
      let key = Workload.Keygen.encode ~width:key_width (Sim.Rng.int rng num_keys) in
      Erpc.Msgbuf.write_string slot_req ~off:0 key;
      let is_scan = Sim.Rng.int rng 100 = 0 in
      let t0 = Sim.Engine.now engine in
      Erpc.Rpc.enqueue_request client sess
        ~req_type:(if is_scan then scan_req else get_req)
        ~req:slot_req ~resp:slot_resp
        ~cont:(fun _ ->
          Stats.Hist.record (if is_scan then scans else gets)
            (Sim.Time.sub (Sim.Engine.now engine) t0);
          issue slot_req slot_resp)
    end
  in
  for _ = 1 to 2 do
    issue (Erpc.Msgbuf.alloc ~max_size:key_width) (Erpc.Msgbuf.alloc ~max_size:8)
  done;
  Sim.Engine.run_until engine (Sim.Time.ms 500.0);

  Printf.printf "GETs:  %d, p50=%.1f us, p99=%.1f us\n" (Stats.Hist.count gets)
    (float_of_int (Stats.Hist.median gets) /. 1e3)
    (float_of_int (Stats.Hist.percentile gets 99.) /. 1e3);
  Printf.printf "SCANs: %d, p50=%.1f us, p99=%.1f us\n" (Stats.Hist.count scans)
    (float_of_int (Stats.Hist.median scans) /. 1e3)
    (float_of_int (Stats.Hist.percentile scans 99.) /. 1e3)
