(* Replicated key-value store: Raft over eRPC (paper §7.1).

   Builds a 3-way replicated in-memory KV store on a CX5-like cluster:
   three replica hosts run the Raft core with eRPC as its only transport
   (the Raft module itself is used unmodified — exactly the paper's
   LibRaft port). A client sends PUTs to the leader and waits for
   majority commit.

   Run with: dune exec examples/kv_replication.exe *)

let () =
  let cluster = Transport.Cluster.cx5 ~nodes:4 () in
  let d = Experiments.Harness.deploy cluster ~threads_per_host:1 in
  let replicas = [| 0; 1; 2 |] in
  let servers =
    Array.mapi
      (fun replica_id host -> Experiments.Raft_kv.create d ~host ~replica_id ~replicas)
      replicas
  in

  (* Wait for leader election. *)
  let rec wait_leader tries =
    if Array.exists Experiments.Raft_kv.is_leader servers then ()
    else if tries = 0 then failwith "no leader elected"
    else begin
      Experiments.Harness.run_ms d 5.0;
      wait_leader (tries - 1)
    end
  in
  wait_leader 100;
  let leader =
    match Array.find_opt Experiments.Raft_kv.is_leader servers with
    | Some s -> s
    | None -> assert false
  in
  let leader_host = Erpc.Rpc.host (Experiments.Raft_kv.rpc leader) in
  Printf.printf "leader elected: replica on host %d (term %d)\n" leader_host
    (Raft.Core.term (Experiments.Raft_kv.raft leader));

  (* Client on host 3 issues replicated PUTs. *)
  let client = d.rpcs.(3).(0) in
  let sess = Experiments.Harness.connect d client ~remote_host:leader_host ~remote_rpc_id:0 in
  let engine = Erpc.Fabric.engine d.fabric in
  let hist = Stats.Hist.create () in
  let req =
    Erpc.Msgbuf.alloc ~max_size:(Experiments.Raft_kv.key_size + Experiments.Raft_kv.value_size)
  in
  let resp = Erpc.Msgbuf.alloc ~max_size:4 in
  let n_puts = 1_000 in
  let remaining = ref n_puts in
  let rec put_loop () =
    if !remaining > 0 then begin
      decr remaining;
      let key = Workload.Keygen.encode (n_puts - !remaining) in
      let value = Printf.sprintf "%-64d" !remaining in
      Erpc.Msgbuf.write_string req ~off:0 (Experiments.Raft_kv.encode_put ~key ~value);
      let t0 = Sim.Engine.now engine in
      Erpc.Rpc.enqueue_request client sess ~req_type:Experiments.Raft_kv.put_req_type ~req
        ~resp
        ~cont:(fun _ ->
          Stats.Hist.record hist (Sim.Time.sub (Sim.Engine.now engine) t0);
          put_loop ())
    end
  in
  put_loop ();
  Experiments.Harness.run_ms d 200.0;

  Printf.printf "replicated %d PUTs: p50=%.1f us p99=%.1f us (paper: 5.5 / 6.3 us)\n"
    (Stats.Hist.count hist)
    (float_of_int (Stats.Hist.median hist) /. 1e3)
    (float_of_int (Stats.Hist.percentile hist 99.) /. 1e3);

  (* All replicas applied the same data. *)
  let all_equal =
    Array.for_all
      (fun s -> Mica.Store.size (Experiments.Raft_kv.store s)
                = Mica.Store.size (Experiments.Raft_kv.store servers.(0)))
      servers
  in
  Printf.printf "replica stores converged: %b (%d keys)\n" all_equal
    (Mica.Store.size (Experiments.Raft_kv.store servers.(0)))
