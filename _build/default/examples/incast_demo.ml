(* Incast and congestion control demo (paper §6.5).

   Twenty client nodes stream 8 MB messages at a single victim node on
   the two-tier CX4-like cluster. With Timely + Carousel enabled, the
   switch queue at the victim's ToR downlink stays shallow; with
   congestion control disabled, every flow keeps a full BDP credit window
   outstanding and the queue grows to degree x window.

   Run with: dune exec examples/incast_demo.exe *)

let degree = 20

let run ~cc =
  let r = Experiments.Exp_incast.run ~degree ~cc ~warmup_ms:10.0 ~measure_ms:20.0 () in
  Printf.printf "cc=%-5b  victim bandwidth %.1f Gbps, per-packet RTT p50=%.0f us p99=%.0f us\n%!"
    cc r.total_gbps r.rtt_p50_us r.rtt_p99_us;
  r

let () =
  Printf.printf "%d-way incast of 8 MB flows into one victim (CX4 profile)\n%!" degree;
  let with_cc = run ~cc:true in
  let without_cc = run ~cc:false in
  Printf.printf
    "congestion control cut median switch queueing by %.1fx and p99 by %.1fx\n"
    (without_cc.rtt_p50_us /. with_cc.rtt_p50_us)
    (without_cc.rtt_p99_us /. with_cc.rtt_p99_us)
