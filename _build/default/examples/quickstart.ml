(* Quickstart: two hosts, one RPC.

   Shows the core eRPC workflow from §3.1 of the paper:
   1. build a fabric (simulated cluster) and one Nexus per host;
   2. register a request handler under a request type;
   3. create Rpc endpoints and a client session;
   4. enqueue an asynchronous request and receive the continuation.

   Run with: dune exec examples/quickstart.exe *)

let greet_req_type = 1

let () =
  (* A 2-node cluster resembling the paper's CX5 testbed (40 GbE). *)
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in

  (* Server side: host 1 registers a dispatch-mode handler. *)
  let server_nexus = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler server_nexus ~req_type:greet_req_type ~mode:Erpc.Nexus.Dispatch
    (fun handle ->
      let req = Erpc.Req_handle.get_request handle in
      let name = Erpc.Msgbuf.read_string req ~off:0 ~len:(Erpc.Msgbuf.size req) in
      let reply = Printf.sprintf "Hello, %s! This is host 1." name in
      let resp = Erpc.Req_handle.init_response handle ~size:(String.length reply) in
      Erpc.Msgbuf.write_string resp ~off:0 reply;
      Erpc.Req_handle.enqueue_response handle resp);
  let _server_rpc = Erpc.Rpc.create server_nexus ~rpc_id:0 in

  (* Client side: host 0. *)
  let client_nexus = Erpc.Nexus.create fabric ~host:0 () in
  let client = Erpc.Rpc.create client_nexus ~rpc_id:0 in
  (* Message buffers are owned by the app until the request is enqueued,
     and again once the continuation runs. *)
  let req = Erpc.Msgbuf.alloc ~max_size:64 in
  Erpc.Msgbuf.resize req 5;
  Erpc.Msgbuf.write_string req ~off:0 "world";
  let resp = Erpc.Msgbuf.alloc ~max_size:64 in

  let engine = Erpc.Fabric.engine fabric in
  let session = ref None in
  let issue () =
    let issued_at = Sim.Engine.now engine in
    match !session with
    | None -> assert false
    | Some session ->
        Erpc.Rpc.enqueue_request client session ~req_type:greet_req_type ~req ~resp
          ~cont:(fun r ->
            match r with
            | Ok () ->
                Printf.printf "response: %S\n"
                  (Erpc.Msgbuf.read_string resp ~off:0 ~len:(Erpc.Msgbuf.size resp));
                Printf.printf "round-trip latency: %.2f us\n"
                  (Sim.Time.to_us (Sim.Time.sub (Sim.Engine.now engine) issued_at))
            | Error e -> print_endline ("rpc failed: " ^ Erpc.Err.to_string e))
  in
  session :=
    Some
      (Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0
         ~on_connect:(fun r ->
           match r with
           | Ok () ->
               print_endline "session connected";
               issue ()
           | Error e -> print_endline ("connect failed: " ^ Erpc.Err.to_string e))
         ());

  (* Drive the simulation; the event loops run as work arrives. *)
  Sim.Engine.run_until engine (Sim.Time.ms 5.0);
  print_endline "done"
