examples/quickstart.ml: Erpc Printf Sim String Transport
