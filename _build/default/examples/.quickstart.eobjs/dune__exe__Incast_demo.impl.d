examples/incast_demo.ml: Experiments Printf
