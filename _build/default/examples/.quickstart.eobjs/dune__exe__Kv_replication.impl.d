examples/kv_replication.ml: Array Erpc Experiments Mica Printf Raft Sim Stats Transport Workload
