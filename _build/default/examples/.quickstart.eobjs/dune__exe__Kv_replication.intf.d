examples/kv_replication.mli:
