examples/masstree_server.ml: Erpc List Masstree Printf Sim Stats String Transport Workload
