examples/quickstart.mli:
