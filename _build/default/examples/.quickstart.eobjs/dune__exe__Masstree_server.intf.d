examples/masstree_server.mli:
