(** Congestion-control dispatch: one client-session rate controller,
    either {!Timely} (RTT-gradient, the paper's deployed choice) or
    {!Dcqcn} (ECN-based, enabled by the simulated switches' marking). *)

type t = Timely_cc of Timely.t | Dcqcn_cc of Dcqcn.t

val create : ?phase:int -> Config.cc -> link_gbps:float -> t

val rate_bps : t -> float
val uncongested : t -> bool

(** Feed one acknowledgement: the RTT sample and whether the packet (or
    the data packet it acknowledges) carried an ECN mark. *)
val on_sample : t -> rtt_ns:int -> marked:bool -> now_ns:Sim.Time.t -> unit

val pacing_delay_ns : t -> bytes:int -> int

(** True when {!on_sample} would be a no-op under the Timely-bypass
    common-case optimization (§5.2.2): an uncongested session whose signal
    shows no congestion. *)
val bypassable : t -> rtt_ns:int -> marked:bool -> t_low_ns:int -> bool

(** Rate updates performed (both algorithms), for stats. *)
val updates : t -> int
