type pkt_type = Req | Cr | Rfr | Resp

type t = {
  req_type : int;
  msg_size : int;
  dest_session : int;
  pkt_type : pkt_type;
  pkt_num : int;
  req_num : int;
  ecn_echo : bool;
}

let size = 16

let pkt_type_to_string = function
  | Req -> "REQ"
  | Cr -> "CR"
  | Rfr -> "RFR"
  | Resp -> "RESP"

let pp fmt t =
  Format.fprintf fmt "[%s rt=%d sess=%d req#%d pkt#%d sz=%d]" (pkt_type_to_string t.pkt_type)
    t.req_type t.dest_session t.req_num t.pkt_num t.msg_size

let data_bytes t ~mtu =
  match t.pkt_type with
  | Cr | Rfr -> 0
  | Req | Resp ->
      let offset = t.pkt_num * mtu in
      if offset >= t.msg_size then 0 else min mtu (t.msg_size - offset)
