type t = Server_failure | Session_error of string

let to_string = function
  | Server_failure -> "server failure"
  | Session_error s -> "session error: " ^ s

let pp fmt t = Format.pp_print_string fmt (to_string t)
