(** Errors delivered to client continuations and session callbacks. *)

type t =
  | Server_failure  (** remote node declared failed (Appendix B) *)
  | Session_error of string  (** connect refused / session torn down *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
