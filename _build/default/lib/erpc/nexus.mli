(** Per-process context (paper §3): request handler registry, background
    worker threads for long-running handlers, per-host packet demux, and
    the session-management endpoint.

    One Nexus exists per simulated host process; each of its {!Rpc}s owns a
    dispatch thread and a NIC queue pair. Incoming packets are steered to
    the right Rpc by the [dst_rpc] field (modeling NIC flow steering by
    UDP port). *)

type handler_mode =
  | Dispatch  (** run in the dispatch thread: handlers up to a few 100 ns *)
  | Worker  (** run in a background worker thread: long handlers *)

type handler = Req_handle.t -> unit

type t

val create : Fabric.t -> host:int -> ?num_workers:int -> unit -> t

val fabric : t -> Fabric.t
val host : t -> int
val dead : t -> bool

(** Register a handler for [req_type]. Registering twice raises. *)
val register_handler : t -> req_type:int -> mode:handler_mode -> handler -> unit

val handler : t -> int -> (handler_mode * handler) option

(** {2 Internal interfaces used by Rpc} *)

(** Route packets with [dst_rpc = rpc_id] to [rx]. *)
val register_rx : t -> rpc_id:int -> rx:(Netsim.Packet.t -> unit) -> unit

(** Run [job] on the least-loaded worker thread. The job receives the
    worker's CPU to charge its modeled compute time; jobs on one worker are
    serialized. *)
val submit_worker : t -> (Sim.Cpu.t -> unit) -> unit

val num_workers : t -> int
val worker_cpu : t -> int -> Sim.Cpu.t
