type 'a t = {
  slot_ns : int;
  num_slots : int;
  slots : 'a Queue.t array;
  mutable cursor_slot : int;  (* absolute slot index up to which we have polled *)
  mutable pending : int;
}

let create ~slot_ns ~num_slots =
  assert (slot_ns > 0 && num_slots > 1);
  {
    slot_ns;
    num_slots;
    slots = Array.init num_slots (fun _ -> Queue.create ());
    cursor_slot = 0;
    pending = 0;
  }

let horizon_ns t = t.slot_ns * (t.num_slots - 1)

let insert t ~now ~at x =
  let at = max at now in
  let at = min at (now + horizon_ns t) in
  let abs_slot = max (at / t.slot_ns) t.cursor_slot in
  Queue.add x t.slots.(abs_slot mod t.num_slots);
  t.pending <- t.pending + 1

let poll t ~now f =
  let target = now / t.slot_ns in
  let delivered = ref 0 in
  while t.cursor_slot <= target && t.pending > 0 do
    let q = t.slots.(t.cursor_slot mod t.num_slots) in
    while not (Queue.is_empty q) do
      let x = Queue.take q in
      t.pending <- t.pending - 1;
      incr delivered;
      f x
    done;
    t.cursor_slot <- t.cursor_slot + 1
  done;
  if t.cursor_slot <= target then t.cursor_slot <- target + 1;
  !delivered

let pending t = t.pending
