type Netsim.Packet.body += Pkt of { dst_rpc : int; hdr : Pkthdr.t; data : bytes }

let make ~src_host ~dst_host ~dst_rpc ~wire_overhead ~flow ~hdr ?payload () =
  let data =
    match payload with
    | None -> Bytes.empty
    | Some (src, off, len) -> Bytes.sub src off len
  in
  let size_bytes = Bytes.length data + wire_overhead in
  Netsim.Packet.make ~src:src_host ~dst:dst_host ~size_bytes ~flow_hash:flow
    (Pkt { dst_rpc; hdr; data })

let flow_hash ~src_host ~dst_host ~sn =
  let h = (src_host * 1_000_003) + (dst_host * 7_919) + (sn * 131) in
  h land max_int
