type t = {
  scale : float;
  loop_overhead : int;
  rx_pkt : int;
  tx_data_pkt : int;
  tx_ctrl_pkt : int;
  rdtsc : int;
  timely_update : int;
  wheel_insert : int;
  wheel_poll_pkt : int;
  dyn_alloc : int;
  memcpy_fixed : int;
  memcpy_per_256b : int;
  handler_dispatch : int;
  continuation : int;
  worker_handoff : int;
  enqueue_request : int;
  credit_logic : int;
  cc_check : int;
}

let default =
  {
    scale = 1.0;
    loop_overhead = 20;
    rx_pkt = 28;
    tx_data_pkt = 30;
    tx_ctrl_pkt = 22;
    rdtsc = 8;
    timely_update = 15;
    wheel_insert = 7;
    wheel_poll_pkt = 4;
    dyn_alloc = 35;
    memcpy_fixed = 11;
    memcpy_per_256b = 27;
    handler_dispatch = 16;
    continuation = 14;
    worker_handoff = 200;
    enqueue_request = 20;
    credit_logic = 4;
    cc_check = 6;
  }

let scaled t ns = int_of_float (ceil (t.scale *. float_of_int ns))

(* Small copies are cache-resident and cost only the fixed term; chunks
   beyond the first 256 B pay memory bandwidth. *)
let memcpy_cost t bytes =
  if bytes <= 0 then 0
  else scaled t (t.memcpy_fixed + (t.memcpy_per_256b * (((bytes + 255) / 256) - 1)))

let for_cluster (cluster : Transport.Cluster.t) = { default with scale = cluster.cpu_scale }
