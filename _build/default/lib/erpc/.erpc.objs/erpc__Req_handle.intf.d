lib/erpc/req_handle.mli: Msgbuf
