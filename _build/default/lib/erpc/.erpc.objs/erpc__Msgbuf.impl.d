lib/erpc/msgbuf.ml: Bytes Int32 Int64 Printf String
