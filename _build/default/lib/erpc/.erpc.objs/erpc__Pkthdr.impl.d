lib/erpc/pkthdr.ml: Format
