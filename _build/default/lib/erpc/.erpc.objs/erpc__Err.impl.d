lib/erpc/err.ml: Format
