lib/erpc/wheel.mli: Sim
