lib/erpc/err.mli: Format
