lib/erpc/sm.ml: Format
