lib/erpc/session.mli: Cc Err Msgbuf Queue Sim
