lib/erpc/rpc.ml: Array Bytes Cc Config Cost_model Err Fabric List Msgbuf Netsim Nexus Nic Pkthdr Printf Queue Req_handle Session Sim Sm Stdlib Wheel Wire
