lib/erpc/wire.ml: Bytes Netsim Pkthdr
