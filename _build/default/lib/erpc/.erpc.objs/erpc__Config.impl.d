lib/erpc/config.ml: Transport
