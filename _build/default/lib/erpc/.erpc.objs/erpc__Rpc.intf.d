lib/erpc/rpc.mli: Config Err Msgbuf Nexus Nic Session Sim
