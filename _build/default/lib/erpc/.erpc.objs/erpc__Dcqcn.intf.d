lib/erpc/dcqcn.mli: Config Sim
