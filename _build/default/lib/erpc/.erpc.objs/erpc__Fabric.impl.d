lib/erpc/fabric.ml: Config Cost_model Hashtbl List Netsim Printf Sim Sm Transport
