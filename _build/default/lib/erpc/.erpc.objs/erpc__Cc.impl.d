lib/erpc/cc.ml: Config Dcqcn Timely
