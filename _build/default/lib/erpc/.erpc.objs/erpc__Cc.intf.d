lib/erpc/cc.mli: Config Dcqcn Sim Timely
