lib/erpc/req_handle.ml: Msgbuf
