lib/erpc/timely.mli: Config
