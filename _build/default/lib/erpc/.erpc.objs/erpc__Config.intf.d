lib/erpc/config.mli: Transport
