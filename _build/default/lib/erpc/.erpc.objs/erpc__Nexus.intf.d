lib/erpc/nexus.mli: Fabric Netsim Req_handle Sim
