lib/erpc/fabric.mli: Config Cost_model Netsim Sim Sm Transport
