lib/erpc/cost_model.ml: Transport
