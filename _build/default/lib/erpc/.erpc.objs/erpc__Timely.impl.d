lib/erpc/timely.ml: Config Float
