lib/erpc/pkthdr.mli: Format
