lib/erpc/nexus.ml: Array Fabric Hashtbl Netsim Printf Queue Req_handle Sim Wire
