lib/erpc/cost_model.mli: Transport
