lib/erpc/msgbuf.mli:
