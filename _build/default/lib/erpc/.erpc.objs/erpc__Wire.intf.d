lib/erpc/wire.mli: Netsim Pkthdr
