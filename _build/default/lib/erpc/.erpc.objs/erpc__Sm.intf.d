lib/erpc/sm.mli: Format
