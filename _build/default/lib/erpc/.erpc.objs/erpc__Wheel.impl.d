lib/erpc/wheel.ml: Array Queue
