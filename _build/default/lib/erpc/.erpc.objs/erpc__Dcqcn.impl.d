lib/erpc/dcqcn.ml: Config Float Sim
