lib/erpc/session.ml: Array Cc Err Msgbuf Queue Sim
