(** Timing wheel (Carousel, SIGCOMM '17): the rate limiter's data
    structure.

    Fixed-granularity circular array of slots; entries are inserted at
    their scheduled transmission time and drained in slot order by [poll].
    Entries beyond the horizon are clamped to the farthest slot — callers
    pick a horizon larger than the maximum pacing gap (MTU at the minimum
    Timely rate), so clamping is a safety net, not a steady-state path. *)

type 'a t

val create : slot_ns:int -> num_slots:int -> 'a t

(** [insert t ~now ~at x] schedules [x] for time [at] (clamped to
    [now, now + horizon)). Entries scheduled in the past fire on the next
    poll. *)
val insert : 'a t -> now:Sim.Time.t -> at:Sim.Time.t -> 'a -> unit

(** [poll t ~now f] delivers every entry whose slot time has been reached,
    in slot order, and returns their count. *)
val poll : 'a t -> now:Sim.Time.t -> ('a -> unit) -> int

val pending : 'a t -> int
val horizon_ns : 'a t -> int
