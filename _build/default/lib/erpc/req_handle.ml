type t = {
  req_type : int;
  req : Msgbuf.t;
  mutable resp : Msgbuf.t option;
  mutable responded : bool;
  mutable charge_fn : int -> unit;
  mutable init_resp_fn : int -> Msgbuf.t;
  mutable enqueue_fn : t -> Msgbuf.t -> unit;
}

let get_request t = t.req

let charge t ns = t.charge_fn ns

let init_response t ~size = t.init_resp_fn size

let enqueue_response t resp =
  if t.responded then invalid_arg "Req_handle.enqueue_response: already responded";
  t.responded <- true;
  t.enqueue_fn t resp

let make ~req_type ~req =
  {
    req_type;
    req;
    resp = None;
    responded = false;
    charge_fn = (fun _ -> ());
    init_resp_fn = (fun size -> Msgbuf.alloc ~max_size:size);
    enqueue_fn = (fun _ _ -> invalid_arg "Req_handle: enqueue_fn not installed");
  }
