type ownership = Owned_by_app | Owned_by_erpc

type t = {
  bytes : bytes;
  offset : int;  (* start of data region within [bytes] *)
  max_size : int;
  mutable data_size : int;
  mutable owner : ownership;
  is_view : bool;
}

let alloc ~max_size =
  assert (max_size >= 0);
  {
    bytes = Bytes.create max_size;
    offset = 0;
    max_size;
    data_size = max_size;
    owner = Owned_by_app;
    is_view = false;
  }

let view bytes ~off ~len =
  assert (off >= 0 && len >= 0 && off + len <= Bytes.length bytes);
  { bytes; offset = off; max_size = len; data_size = len; owner = Owned_by_erpc; is_view = true }

let max_size t = t.max_size
let size t = t.data_size

let resize t n =
  if t.owner = Owned_by_erpc && not t.is_view then
    invalid_arg "Msgbuf.resize: buffer is owned by eRPC (in flight)";
  if n < 0 || n > t.max_size then invalid_arg "Msgbuf.resize: size out of bounds";
  t.data_size <- n

let owner t = t.owner
let is_view t = t.is_view

let take_for_erpc t =
  match t.owner with
  | Owned_by_erpc ->
      invalid_arg "Msgbuf: buffer already owned by eRPC (double enqueue or reuse before continuation)"
  | Owned_by_app -> t.owner <- Owned_by_erpc

let return_to_app t =
  match t.owner with
  | Owned_by_app -> invalid_arg "Msgbuf: returning a buffer that eRPC does not own"
  | Owned_by_erpc -> t.owner <- Owned_by_app

let num_pkts t ~mtu =
  assert (mtu > 0);
  if t.data_size = 0 then 1 else (t.data_size + mtu - 1) / mtu

let check_app_access t what =
  if t.owner = Owned_by_erpc && not t.is_view then
    invalid_arg
      (Printf.sprintf "Msgbuf.%s: buffer is in flight (owned by eRPC); wait for the continuation"
         what)

let check_bounds t ~off ~len what =
  if off < 0 || len < 0 || off + len > t.max_size then
    invalid_arg (Printf.sprintf "Msgbuf.%s: out of bounds (off=%d len=%d max=%d)" what off len t.max_size)

let write_string t ~off s =
  check_app_access t "write_string";
  check_bounds t ~off ~len:(String.length s) "write_string";
  Bytes.blit_string s 0 t.bytes (t.offset + off) (String.length s)

let read_string t ~off ~len =
  check_bounds t ~off ~len "read_string";
  Bytes.sub_string t.bytes (t.offset + off) len

let set_u32 t ~off v =
  check_app_access t "set_u32";
  check_bounds t ~off ~len:4 "set_u32";
  Bytes.set_int32_le t.bytes (t.offset + off) (Int32.of_int v)

let get_u32 t ~off =
  check_bounds t ~off ~len:4 "get_u32";
  Int32.to_int (Bytes.get_int32_le t.bytes (t.offset + off)) land 0xFFFFFFFF

let set_u64 t ~off v =
  check_app_access t "set_u64";
  check_bounds t ~off ~len:8 "set_u64";
  Bytes.set_int64_le t.bytes (t.offset + off) (Int64.of_int v)

let get_u64 t ~off =
  check_bounds t ~off ~len:8 "get_u64";
  Int64.to_int (Bytes.get_int64_le t.bytes (t.offset + off))

let unsafe_bytes t = t.bytes
let unsafe_offset t = t.offset

let unsafe_set_size t n =
  if n < 0 || n > t.max_size then invalid_arg "Msgbuf.unsafe_set_size: size out of bounds";
  t.data_size <- n

let blit_from_bytes src ~src_off t ~dst_off ~len =
  check_bounds t ~off:dst_off ~len "blit_from_bytes";
  Bytes.blit src src_off t.bytes (t.offset + dst_off) len

let blit ~src ~src_off ~dst ~dst_off ~len =
  check_bounds src ~off:src_off ~len "blit(src)";
  check_bounds dst ~off:dst_off ~len "blit(dst)";
  Bytes.blit src.bytes (src.offset + src_off) dst.bytes (dst.offset + dst_off) len
