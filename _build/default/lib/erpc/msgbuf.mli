(** DMA-capable message buffers (paper §4.2).

    A msgbuf holds one possibly multi-packet message with a contiguous data
    region, so applications can treat it as an opaque buffer. Ownership is
    tracked explicitly to enforce the paper's zero-copy invariant: once a
    request msgbuf is enqueued, the application must not touch it until its
    continuation runs — violations raise.

    Buffers either own their storage ([alloc]) or alias a received packet's
    bytes ([view], the zero-copy RX path for single-packet requests). *)

type ownership =
  | Owned_by_app  (** application may read/write/re-enqueue *)
  | Owned_by_erpc  (** in flight: referenced by TX queues or handlers *)

type t

(** Allocate an app-owned buffer able to hold [max_size] data bytes.
    [data_size] starts at [max_size]. *)
val alloc : max_size:int -> t

(** A zero-copy view over [len] bytes of [bytes] starting at [off]. Views
    are eRPC-owned (they alias the RX ring). *)
val view : bytes -> off:int -> len:int -> t

val max_size : t -> int
val size : t -> int

(** Shrink/grow the message size within [max_size]. Only the owner may
    resize; raises if eRPC-owned. *)
val resize : t -> int -> unit

val owner : t -> ownership
val is_view : t -> bool

(** Used by the library at enqueue/completion boundaries. Raise on invalid
    transitions (double enqueue, completion of app-owned buffer). *)
val take_for_erpc : t -> unit

val return_to_app : t -> unit

(** Number of packets for this message at the given MTU (>= 1; a 0-byte
    message still takes one packet). *)
val num_pkts : t -> mtu:int -> int

(** {2 Data access} — bounds-checked; reading/writing while eRPC-owned is a
    programming error and raises. *)

val write_string : t -> off:int -> string -> unit
val read_string : t -> off:int -> len:int -> string
val set_u32 : t -> off:int -> int -> unit
val get_u32 : t -> off:int -> int
val set_u64 : t -> off:int -> int -> unit
val get_u64 : t -> off:int -> int

(** Raw access for the library's internal packetization (no ownership
    check). *)
val unsafe_bytes : t -> bytes

val unsafe_offset : t -> int

(** Library-internal resize (e.g. sizing the response msgbuf when response
    packet 0 reveals the message size). *)
val unsafe_set_size : t -> int -> unit

(** Library-internal copy of received packet data into a buffer. *)
val blit_from_bytes : bytes -> src_off:int -> t -> dst_off:int -> len:int -> unit

(** [blit ~src ~src_off ~dst ~dst_off ~len] copies message data without
    ownership checks (library internal). *)
val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
