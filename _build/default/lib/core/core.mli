(** Entry point to the reproduction's primary contribution: the eRPC
    library (paper §3-§5). Aliases the [Erpc] library's public modules —
    see {!Erpc.Rpc} for the endpoint API and the repository README for a
    quickstart. *)

module Fabric = Erpc.Fabric
module Nexus = Erpc.Nexus
module Rpc = Erpc.Rpc
module Msgbuf = Erpc.Msgbuf
module Req_handle = Erpc.Req_handle
module Session = Erpc.Session
module Config = Erpc.Config
module Pkthdr = Erpc.Pkthdr
module Timely = Erpc.Timely
module Dcqcn = Erpc.Dcqcn
module Cc = Erpc.Cc
module Wheel = Erpc.Wheel
module Err = Erpc.Err
