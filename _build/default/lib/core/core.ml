(* The paper's primary contribution lives in [lib/erpc]; this module is a
   stable alias so the conventional [Core] entry point resolves to it. *)

module Fabric = Erpc.Fabric
module Nexus = Erpc.Nexus
module Rpc = Erpc.Rpc
module Msgbuf = Erpc.Msgbuf
module Req_handle = Erpc.Req_handle
module Session = Erpc.Session
module Config = Erpc.Config
module Pkthdr = Erpc.Pkthdr
module Timely = Erpc.Timely
module Dcqcn = Erpc.Dcqcn
module Cc = Erpc.Cc
module Wheel = Erpc.Wheel
module Err = Erpc.Err
