(** NIC connection-state cache (paper §4.1.2).

    RDMA NICs keep per-connection state (~375 B each) in ~2 MB of on-NIC
    SRAM shared with other structures, so only a few hundred connections fit
    before misses force DMA reads of connection state over PCIe. This LRU
    model is what produces Figure 1's throughput collapse. *)

type t

(** [create ~capacity_entries] — a cache holding that many connections. *)
val create : capacity_entries:int -> t

(** Mellanox-like defaults: usable SRAM / entry size — a few hundred
    entries. *)
val create_default : unit -> t

(** [access t conn] touches connection [conn]; returns [true] on hit. *)
val access : t -> int -> bool

val hits : t -> int
val misses : t -> int
val miss_ratio : t -> float
val resident : t -> int
val reset_stats : t -> unit
