(** The Figure 1 experiment: RDMA read rate vs. connections per NIC.

    The requester NIC processes one small read per [base_ns] when the
    connection state is cached; a cache miss adds [miss_penalty_ns] of
    (pipelined, amortized) PCIe state-fetch time. Reads target uniformly
    random connections, so the measured rate reflects the LRU cache's true
    hit ratio at each connection count. *)

type result = {
  connections : int;
  rate_mops : float;
  miss_ratio : float;
}

val run :
  ?base_ns:float ->
  ?miss_penalty_ns:float ->
  ?cache:Conn_cache.t ->
  ?ops:int ->
  ?seed:int64 ->
  connections:int ->
  unit ->
  result
