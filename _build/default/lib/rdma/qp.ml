type config = {
  post_ns : int;
  poll_ns : int;
  remote_read_ns : int;
  remote_write_ns : int;
  nic_tx_ns : int;
  nic_rx_ns : int;
  mtu : int;
  wire_overhead : int;
}

let default_config (cluster : Transport.Cluster.t) =
  {
    post_ns = 75;
    poll_ns = 40;
    remote_read_ns = 150;
    remote_write_ns = 60;
    nic_tx_ns = cluster.nic_config.tx_latency_ns - cluster.rdma_delta_ns;
    (* The RDMA hardware path sees the mean of the UD path's RX jitter. *)
    nic_rx_ns =
      cluster.nic_config.rx_latency_ns + (cluster.nic_config.rx_jitter_ns / 2)
      - cluster.rdma_delta_ns;
    mtu = cluster.mtu;
    wire_overhead = cluster.wire_overhead;
  }

type Netsim.Packet.body +=
  | Read_req of { op : int; src : int; len : int }
  | Read_data of { op : int; last : bool }
  | Write_data of { op : int; src : int; last : bool }
  | Write_ack of { op : int }

type endpoint = {
  engine : Sim.Engine.t;
  net : Netsim.Network.t;
  host : int;
  cfg : config;
  completions : (int, unit -> unit) Hashtbl.t;
  mutable next_op : int;
}

let send ep ~dst ~bytes ~flow body =
  let pkt =
    Netsim.Packet.make ~src:ep.host ~dst ~size_bytes:(bytes + ep.cfg.wire_overhead)
      ~flow_hash:flow body
  in
  Netsim.Network.send ep.net pkt

(* Stream [len] bytes of payload as MTU chunks; the host's TX port
   serializes them at line rate. [mk] builds the body for each chunk. *)
let stream ep ~dst ~len ~flow mk =
  let n_pkts = max 1 ((len + ep.cfg.mtu - 1) / ep.cfg.mtu) in
  for i = 0 to n_pkts - 1 do
    let chunk = min ep.cfg.mtu (len - (i * ep.cfg.mtu)) in
    let chunk = max chunk 0 in
    send ep ~dst ~bytes:chunk ~flow (mk ~last:(i = n_pkts - 1))
  done

let handle_rx ep pkt =
  let open Netsim.Packet in
  match pkt.body with
  | Read_req { op; src; len } ->
      (* Remote NIC serves the read without CPU involvement. *)
      Sim.Engine.schedule_after ep.engine
        (ep.cfg.nic_rx_ns + ep.cfg.remote_read_ns + ep.cfg.nic_tx_ns)
        (fun () ->
          stream ep ~dst:src ~len ~flow:pkt.flow_hash (fun ~last -> Read_data { op; last }))
  | Read_data { op; last } ->
      if last then
        Sim.Engine.schedule_after ep.engine (ep.cfg.nic_rx_ns + ep.cfg.poll_ns) (fun () ->
            match Hashtbl.find_opt ep.completions op with
            | Some k ->
                Hashtbl.remove ep.completions op;
                k ()
            | None -> ())
  | Write_data { op; src; last } ->
      if last then
        Sim.Engine.schedule_after ep.engine
          (ep.cfg.nic_rx_ns + ep.cfg.remote_write_ns + ep.cfg.nic_tx_ns)
          (fun () -> send ep ~dst:src ~bytes:0 ~flow:pkt.flow_hash (Write_ack { op }))
  | Write_ack { op } ->
      Sim.Engine.schedule_after ep.engine (ep.cfg.nic_rx_ns + ep.cfg.poll_ns) (fun () ->
          match Hashtbl.find_opt ep.completions op with
          | Some k ->
              Hashtbl.remove ep.completions op;
              k ()
          | None -> ())
  | _ -> ()

let create engine net ~host cfg =
  let ep = { engine; net; host; cfg; completions = Hashtbl.create 64; next_op = 0 } in
  Netsim.Network.attach net ~host ~rx:(fun pkt -> handle_rx ep pkt);
  ep

let flow_of ep dst = (ep.host * 65_537) + dst

let post_read ep ~dst ~len ~completion =
  let op = ep.next_op in
  ep.next_op <- op + 1;
  Hashtbl.replace ep.completions op completion;
  Sim.Engine.schedule_after ep.engine (ep.cfg.post_ns + ep.cfg.nic_tx_ns) (fun () ->
      send ep ~dst ~bytes:16 ~flow:(flow_of ep dst) (Read_req { op; src = ep.host; len }))

let post_write ep ~dst ~len ~completion =
  let op = ep.next_op in
  ep.next_op <- op + 1;
  Hashtbl.replace ep.completions op completion;
  Sim.Engine.schedule_after ep.engine (ep.cfg.post_ns + ep.cfg.nic_tx_ns) (fun () ->
      stream ep ~dst ~len ~flow:(flow_of ep dst) (fun ~last ->
          Write_data { op; src = ep.host; last }))
