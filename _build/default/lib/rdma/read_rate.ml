type result = {
  connections : int;
  rate_mops : float;
  miss_ratio : float;
}

let run ?(base_ns = 22.0) ?(miss_penalty_ns = 26.0) ?cache ?(ops = 400_000) ?(seed = 7L)
    ~connections () =
  assert (connections > 0);
  let cache = match cache with Some c -> c | None -> Conn_cache.create_default () in
  let rng = Sim.Rng.create seed in
  (* Warm up the cache to steady state before measuring. *)
  for _ = 1 to min ops (4 * connections) do
    ignore (Conn_cache.access cache (Sim.Rng.int rng connections))
  done;
  Conn_cache.reset_stats cache;
  let total_ns = ref 0. in
  for _ = 1 to ops do
    let hit = Conn_cache.access cache (Sim.Rng.int rng connections) in
    total_ns := !total_ns +. base_ns +. (if hit then 0. else miss_penalty_ns)
  done;
  {
    connections;
    rate_mops = float_of_int ops /. !total_ns *. 1e3;
    miss_ratio = Conn_cache.miss_ratio cache;
  }
