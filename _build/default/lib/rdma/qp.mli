(** Verbs-like RDMA operations over the simulated fabric — the baseline
    eRPC is compared against (Table 2 latency, Fig 6 bandwidth).

    One {!endpoint} per host. RDMA reads and writes execute without remote
    CPU involvement: the remote NIC serves them after a fixed processing
    delay. Large operations stream MTU-sized packets at line rate. Reliable
    Connection semantics are approximated: writes complete at the requester
    after the remote NIC acks the last packet; reads complete when all
    response data has arrived. *)

type config = {
  post_ns : int;  (** CPU cost to post a work request + doorbell *)
  poll_ns : int;  (** CPU cost to poll the completion *)
  remote_read_ns : int;  (** remote NIC's processing of an inbound READ *)
  remote_write_ns : int;  (** remote NIC's processing of inbound WRITE data *)
  nic_tx_ns : int;
  nic_rx_ns : int;
  mtu : int;
  wire_overhead : int;
}

val default_config : Transport.Cluster.t -> config

type endpoint

val create : Sim.Engine.t -> Netsim.Network.t -> host:int -> config -> endpoint

(** [post_read ep ~dst ~len ~completion] issues a [len]-byte RDMA read;
    [completion] fires when the data is in local memory. *)
val post_read : endpoint -> dst:int -> len:int -> completion:(unit -> unit) -> unit

(** [post_write ep ~dst ~len ~completion] issues a [len]-byte RDMA write;
    [completion] fires when the remote NIC has acked the last packet. *)
val post_write : endpoint -> dst:int -> len:int -> completion:(unit -> unit) -> unit
