lib/rdma/read_rate.ml: Conn_cache Sim
