lib/rdma/conn_cache.ml: Hashtbl
