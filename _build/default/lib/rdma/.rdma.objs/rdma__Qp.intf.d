lib/rdma/qp.mli: Netsim Sim Transport
