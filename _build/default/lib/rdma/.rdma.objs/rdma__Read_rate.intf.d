lib/rdma/read_rate.mli: Conn_cache
