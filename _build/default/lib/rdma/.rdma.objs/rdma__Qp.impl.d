lib/rdma/qp.ml: Hashtbl Netsim Sim Transport
