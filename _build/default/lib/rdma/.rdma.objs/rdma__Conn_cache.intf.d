lib/rdma/conn_cache.mli:
