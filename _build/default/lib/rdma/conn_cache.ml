(* LRU via doubly-linked list over an intrusive node table. *)

type node = {
  conn : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity_entries =
  assert (capacity_entries > 0);
  {
    capacity = capacity_entries;
    table = Hashtbl.create (2 * capacity_entries);
    head = None;
    tail = None;
    size = 0;
    hits = 0;
    misses = 0;
  }

(* ~375 B of state per connection; the NIC's ~2 MB SRAM is shared with
   descriptor rings and buffers, leaving a few hundred KB for connection
   state. 168 kB / 375 B = 450 connections, matching the knee in Fig 1. *)
let create_default () = create ~capacity_entries:450

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let access t conn =
  match Hashtbl.find_opt t.table conn with
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      true
  | None ->
      t.misses <- t.misses + 1;
      if t.size >= t.capacity then begin
        match t.tail with
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.conn;
            t.size <- t.size - 1
        | None -> ()
      end;
      let n = { conn; prev = None; next = None } in
      Hashtbl.replace t.table conn n;
      push_front t n;
      t.size <- t.size + 1;
      false

let hits t = t.hits
let misses t = t.misses

let miss_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.misses /. float_of_int total

let resident t = t.size

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
