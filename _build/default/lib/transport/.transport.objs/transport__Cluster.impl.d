lib/transport/cluster.ml: Netsim Nic
