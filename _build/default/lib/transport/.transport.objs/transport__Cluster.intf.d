lib/transport/cluster.mli: Netsim Nic Sim
