type t = {
  capacity : int;
  alpha : float;
  mutable used : int;
  mutable max_used : int;
}

let create ~capacity_bytes ~alpha =
  assert (capacity_bytes > 0 && alpha > 0.);
  { capacity = capacity_bytes; alpha; used = 0; max_used = 0 }

let capacity t = t.capacity
let used t = t.used
let free t = t.capacity - t.used
let alpha t = t.alpha

let admit ?(force = false) t ~port_queued_bytes ~size =
  let threshold = t.alpha *. float_of_int (free t) in
  if
    force
    || (float_of_int (port_queued_bytes + size) <= threshold && t.used + size <= t.capacity)
  then begin
    t.used <- t.used + size;
    if t.used > t.max_used then t.max_used <- t.used;
    true
  end
  else false

let release t size =
  assert (t.used >= size);
  t.used <- t.used - size

let max_used t = t.max_used
