type body = ..
type body += Empty

type t = {
  src : int;
  dst : int;
  size_bytes : int;
  flow_hash : int;
  body : body;
  mutable sent_at : Sim.Time.t;
  mutable ecn : bool;
}

let make ~src ~dst ~size_bytes ~flow_hash body =
  assert (size_bytes > 0);
  { src; dst; size_bytes; flow_hash; body; sent_at = Sim.Time.zero; ecn = false }
