(** Whole-network fabric: topology construction, host attachment, loss
    injection.

    Supported topologies:
    - [Single_switch]: all hosts under one ToR (CX3/CX5-style testbeds);
    - [Two_tier]: ToRs + spines with ECMP and configurable oversubscription
      (the paper's 100-node CX4 CloudLab cluster: 5 ToRs with 25 GbE
      downlinks and 100 GbE uplinks, 2:1 oversubscribed).

    Hosts are identified by dense integer ids. Each host registers an RX
    callback; [send] injects a packet at the source host's NIC TX port.
    Bernoulli packet loss (for Table 4) is applied at final delivery. *)

type topology =
  | Single_switch of { hosts : int }
  | Two_tier of {
      tors : int;
      hosts_per_tor : int;
      spines : int;
      uplinks_per_tor : int;
      uplink_gbps : float;
    }

type config = {
  topology : topology;
  link_gbps : float;  (** host-to-ToR link rate *)
  cable_ns : int;  (** per-hop propagation delay *)
  switch_latency_ns : int;  (** cut-through port-to-port latency *)
  switch_buffer_bytes : int;
  buffer_alpha : float;  (** dynamic-threshold alpha *)
  ecn : Port.ecn_config option;
      (** when set, switch egress ports ECN-mark packets (the paper's
          clusters lacked this; our simulated switches support it, which is
          what enables the DCQCN extension) *)
  lossless : bool;
      (** PFC-style lossless fabric: congested switch ports pause (modeled
          as forced buffer admission) instead of dropping — the InfiniBand
          CX3 cluster *)
}

val default_config : config

type t

val create : Sim.Engine.t -> config -> t

val num_hosts : t -> int
val config : t -> config

(** [attach t ~host ~rx] registers the receive callback for [host].
    Packets surviving loss injection are delivered to [rx]. *)
val attach : t -> host:int -> rx:(Packet.t -> unit) -> unit

(** Inject a packet at [pkt.src]'s NIC TX port. *)
val send : t -> Packet.t -> unit

(** Delivery-time Bernoulli loss probability (default 0). *)
val set_loss_prob : t -> float -> unit

val injected_losses : t -> int

(** The ToR egress port facing [host] — where incast queueing happens. *)
val tor_downlink_port : t -> host:int -> Port.t

(** The host's own NIC TX port. *)
val host_tx_port : t -> host:int -> Port.t

(** All switches, for drop/buffer statistics. *)
val switches : t -> Switch.t list

(** Total packets dropped in the fabric by buffer admission. *)
val fabric_drops : t -> int

(** True if the two hosts sit under the same ToR. *)
val same_tor : t -> int -> int -> bool
