(** An output-queued switch with a shared dynamic buffer.

    Ingress adds a fixed cut-through latency, then the packet is routed to
    an egress {!Port} chosen by destination (with ECMP hashing across
    equal-cost ports). All egress ports share the switch's {!Buffer_pool}. *)

type t

val create :
  Sim.Engine.t ->
  name:string ->
  latency_ns:int ->
  buffer_bytes:int ->
  alpha:float ->
  t

val name : t -> string
val pool : t -> Buffer_pool.t

(** [add_port t port] registers an egress port and returns its index. *)
val add_port : t -> Port.t -> int

val port : t -> int -> Port.t
val num_ports : t -> int

(** [set_route t ~dst ~ports] routes packets for host [dst] to one of
    [ports] (ECMP by flow hash). *)
val set_route : t -> dst:int -> ports:int array -> unit

(** Ingress entry point. *)
val receive : t -> Packet.t -> unit

(** Packets dropped at this switch (buffer admission failures). *)
val dropped_packets : t -> int

val max_buffer_used : t -> int
