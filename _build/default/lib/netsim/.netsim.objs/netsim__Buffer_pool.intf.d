lib/netsim/buffer_pool.mli:
