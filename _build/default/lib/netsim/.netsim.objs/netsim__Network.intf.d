lib/netsim/network.mli: Packet Port Sim Switch
