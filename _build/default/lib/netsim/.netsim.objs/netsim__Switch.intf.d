lib/netsim/switch.mli: Buffer_pool Packet Port Sim
