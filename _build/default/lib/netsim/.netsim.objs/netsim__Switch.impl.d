lib/netsim/switch.ml: Array Buffer_pool Hashtbl Packet Port Printf Sim
