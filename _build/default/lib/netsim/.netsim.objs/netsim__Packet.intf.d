lib/netsim/packet.mli: Sim
