lib/netsim/port.mli: Buffer_pool Packet Sim
