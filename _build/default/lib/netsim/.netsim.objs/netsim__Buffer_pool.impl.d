lib/netsim/buffer_pool.ml:
