lib/netsim/packet.ml: Sim
