lib/netsim/network.ml: Array Fun Lazy List Packet Port Printf Sim Switch
