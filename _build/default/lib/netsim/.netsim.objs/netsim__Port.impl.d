lib/netsim/port.ml: Buffer_pool Packet Queue Sim
