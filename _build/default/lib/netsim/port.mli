(** An egress port: FIFO queue draining onto a link.

    A port serializes packets at the link rate and delivers each to [sink]
    after serialization plus [extra_delay_ns] (propagation + fixed
    receiver-side latency). If the port is backed by a {!Buffer_pool},
    dynamic-threshold admission applies and rejected packets are dropped;
    an unpooled port (host NIC TX) queues without bound — senders are
    expected to self-limit, which is exactly what eRPC's credit scheme
    does. *)

type t

(** RED-style ECN marking thresholds: packets are marked with probability
    rising from 0 at [kmin_bytes] to [pmax] at [kmax_bytes] (and always
    beyond), based on the instantaneous queue — DCQCN's switch-side
    configuration. *)
type ecn_config = { kmin_bytes : int; kmax_bytes : int; pmax : float }

val create :
  Sim.Engine.t ->
  name:string ->
  rate_gbps:float ->
  extra_delay_ns:int ->
  ?pool:Buffer_pool.t ->
  ?ecn:ecn_config ->
  ?lossless:bool ->
  sink:(Packet.t -> unit) ->
  unit ->
  t

(** Enqueue a packet now. Returns [false] if the packet was dropped by
    buffer admission. *)
val send : t -> Packet.t -> bool

val name : t -> string
val queued_bytes : t -> int
val queued_packets : t -> int

(** Queueing delay a packet enqueued now would experience before its own
    serialization starts. *)
val queue_delay : t -> Sim.Time.t

val rate_gbps : t -> float

(** Statistics *)

val tx_packets : t -> int
val tx_bytes : t -> int
val dropped_packets : t -> int
val dropped_bytes : t -> int

(** Times PFC saved a packet that DT admission would have dropped
    (lossless ports only). *)
val pause_events : t -> int
val max_queued_bytes : t -> int
val reset_stats : t -> unit
