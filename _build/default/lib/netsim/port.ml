type ecn_config = { kmin_bytes : int; kmax_bytes : int; pmax : float }

type t = {
  engine : Sim.Engine.t;
  name : string;
  rate_gbps : float;
  extra_delay_ns : int;
  pool : Buffer_pool.t option;
  ecn : ecn_config option;
  lossless : bool;
  rng : Sim.Rng.t;
  sink : Packet.t -> unit;
  queue : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable draining : bool;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped_packets : int;
  mutable dropped_bytes : int;
  mutable pause_events : int;
  mutable max_queued_bytes : int;
}

let create engine ~name ~rate_gbps ~extra_delay_ns ?pool ?ecn ?(lossless = false) ~sink () =
  {
    engine;
    name;
    rate_gbps;
    extra_delay_ns;
    pool;
    ecn;
    lossless;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    sink;
    queue = Queue.create ();
    queued_bytes = 0;
    draining = false;
    tx_packets = 0;
    tx_bytes = 0;
    dropped_packets = 0;
    dropped_bytes = 0;
    pause_events = 0;
    max_queued_bytes = 0;
  }

let serialization t pkt = Sim.Time.of_bytes_at_gbps pkt.Packet.size_bytes t.rate_gbps

let rec drain t =
  match Queue.take_opt t.queue with
  | None -> t.draining <- false
  | Some pkt ->
      let ser = serialization t pkt in
      Sim.Engine.schedule_after t.engine ser (fun () ->
          t.queued_bytes <- t.queued_bytes - pkt.Packet.size_bytes;
          (match t.pool with Some pool -> Buffer_pool.release pool pkt.Packet.size_bytes | None -> ());
          t.tx_packets <- t.tx_packets + 1;
          t.tx_bytes <- t.tx_bytes + pkt.Packet.size_bytes;
          Sim.Engine.schedule_after t.engine t.extra_delay_ns (fun () -> t.sink pkt);
          drain t)

let send t pkt =
  let size = pkt.Packet.size_bytes in
  let admitted =
    match t.pool with
    | None -> true
    | Some pool ->
        let ok = Buffer_pool.admit pool ~port_queued_bytes:t.queued_bytes ~size in
        if (not ok) && t.lossless then begin
          (* PFC: a lossless fabric pauses the sender instead of dropping;
             modeled as forced admission with the pause counted. Pause
             propagation (HOL blocking, deadlocks) is out of scope. *)
          t.pause_events <- t.pause_events + 1;
          Buffer_pool.admit ~force:true pool ~port_queued_bytes:t.queued_bytes ~size
        end
        else ok
  in
  if admitted then begin
    (* RED-style ECN marking on the instantaneous queue (DCQCN's switch
       side). *)
    (match t.ecn with
    | Some { kmin_bytes; kmax_bytes; pmax } ->
        if t.queued_bytes > kmin_bytes then begin
          let p =
            if t.queued_bytes >= kmax_bytes then 1.0
            else
              pmax
              *. (float_of_int (t.queued_bytes - kmin_bytes)
                 /. float_of_int (max 1 (kmax_bytes - kmin_bytes)))
          in
          if Sim.Rng.bool_with_prob t.rng p then pkt.Packet.ecn <- true
        end
    | None -> ());
    Queue.add pkt t.queue;
    t.queued_bytes <- t.queued_bytes + size;
    if t.queued_bytes > t.max_queued_bytes then t.max_queued_bytes <- t.queued_bytes;
    if not t.draining then begin
      t.draining <- true;
      drain t
    end;
    true
  end
  else begin
    t.dropped_packets <- t.dropped_packets + 1;
    t.dropped_bytes <- t.dropped_bytes + size;
    false
  end

let name t = t.name
let queued_bytes t = t.queued_bytes
let queued_packets t = Queue.length t.queue

let queue_delay t =
  Sim.Time.of_bytes_at_gbps t.queued_bytes t.rate_gbps

let rate_gbps t = t.rate_gbps
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let dropped_packets t = t.dropped_packets
let dropped_bytes t = t.dropped_bytes
let pause_events t = t.pause_events
let max_queued_bytes t = t.max_queued_bytes

let reset_stats t =
  t.tx_packets <- 0;
  t.tx_bytes <- 0;
  t.dropped_packets <- 0;
  t.dropped_bytes <- 0;
  t.max_queued_bytes <- t.queued_bytes
