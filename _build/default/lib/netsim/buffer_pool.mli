(** Shared dynamic switch buffer pool with dynamic-threshold admission.

    Models the shared SRAM buffer of shallow-buffered datacenter switches
    (e.g. 12 MB on Mellanox Spectrum): all ports draw from one pool, and a
    port may queue at most [alpha * remaining_free] bytes — the classic
    dynamic threshold (DT) algorithm. Because the pool is far larger than
    the network's BDP, BDP-limited flows essentially never overflow it,
    which is the key observation behind eRPC's loss-free common case. *)

type t

val create : capacity_bytes:int -> alpha:float -> t

val capacity : t -> int
val used : t -> int
val free : t -> int
val alpha : t -> float

(** [admit t ~port_queued_bytes ~size] applies DT admission: accept iff the
    port's post-enqueue occupancy stays below [alpha * free] and the pool
    has room. On success the bytes are reserved. [force] (lossless fabrics:
    PFC has already paused the sender rather than dropping) always
    admits. *)
val admit : ?force:bool -> t -> port_queued_bytes:int -> size:int -> bool

val release : t -> int -> unit

(** High-water mark of pool occupancy. *)
val max_used : t -> int
