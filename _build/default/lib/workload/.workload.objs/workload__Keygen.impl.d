lib/workload/keygen.ml: Float Printf Sim
