lib/workload/keygen.mli: Sim
