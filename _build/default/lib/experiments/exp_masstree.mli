(** §7.2: Masstree over eRPC on the CX3 cluster.

    A single server node hosts an ordered index of one million 8 B keys ->
    8 B values. Its 16 hyperthreads split into 14 dispatch threads and 2
    worker threads. 64 client threads on 8 nodes issue 99% GET(key) and 1%
    SCAN(key) requests (a scan sums the values of the 128 keys following
    [key], and runs in a worker thread). Two outstanding requests per
    client saturate the server. *)

type result = {
  gets_per_sec_m : float;  (** million GETs/s served *)
  get_p50_us : float;
  get_p99_us : float;
  scan_p99_us : float;
}

(** Full-load run. [workers = false] runs scans in dispatch threads, the
    paper's "dispatch-only" configuration whose GET p99 rises to ~26 us. *)
val run :
  ?seed:int64 -> ?workers:bool -> ?warmup_ms:float -> ?measure_ms:float -> unit -> result

(** Median GET latency under low load (one client, one outstanding). *)
val low_load_median_us : ?seed:int64 -> unit -> float
