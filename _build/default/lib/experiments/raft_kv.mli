(** Replicated in-memory key-value store: Raft over eRPC (paper §7.1).

    Mirrors the paper's port of LibRaft: the Raft core is used as-is; this
    module only supplies the callbacks LibRaft requires — message send and
    receive, implemented as eRPC requests whose responses carry the Raft
    reply. Committed commands apply to a MICA-style store. Clients send
    PUT RPCs to the leader, which responds after the entry commits on a
    majority.

    Request types used on the wire:
    - [raft_req_type]: an encoded Raft message; the response is the
      encoded Raft reply (Append_entries_resp / Request_vote_resp);
    - [put_req_type]: 16 B key + 64 B value; 4 B status response. *)

val raft_req_type : int
val put_req_type : int

type server

(** [create ~deployment ~host ~replica_id ~replicas] builds a replica on
    [host]; [replicas] maps replica ids to hosts. Handlers are registered
    on the host's Nexus; sessions to peers are created immediately. *)
val create :
  Harness.deployment -> host:int -> replica_id:int -> replicas:int array -> server

val rpc : server -> Erpc.Rpc.t
val raft : server -> string Raft.Core.t
val store : server -> Mica.Store.t

(** True once this replica believes it is the leader. *)
val is_leader : server -> bool

(** Commit latency (ns) measured at this replica while leading: from
    client-PUT submission to majority commit. *)
val commit_latencies : server -> Stats.Hist.t

(** Encode a PUT command for [put_req_type] requests. *)
val encode_put : key:string -> value:string -> string

val key_size : int
val value_size : int
