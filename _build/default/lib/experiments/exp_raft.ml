type result = {
  client_p50_us : float;
  client_p99_us : float;
  leader_p50_us : float;
  leader_p99_us : float;
  puts : int;
}

let num_keys = 1_000_000

let run ?seed ?(samples = 3_000) () =
  let cluster = Transport.Cluster.cx5 ~nodes:4 () in
  let d = Harness.deploy ?seed cluster ~threads_per_host:1 in
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let replicas = [| 0; 1; 2 |] in
  let servers =
    Array.mapi (fun replica_id host -> Raft_kv.create d ~host ~replica_id ~replicas) replicas
  in
  (* Let the group elect a leader. *)
  let deadline = ref 100 in
  while (not (Array.exists Raft_kv.is_leader servers)) && !deadline > 0 do
    Harness.run_ms d 5.0;
    decr deadline
  done;
  let leader =
    match Array.find_opt Raft_kv.is_leader servers with
    | Some s -> s
    | None -> failwith "Exp_raft: no leader elected"
  in
  let leader_host = Erpc.Rpc.host (Raft_kv.rpc leader) in
  let client = d.rpcs.(3).(0) in
  let sess = Harness.connect d client ~remote_host:leader_host ~remote_rpc_id:0 in
  let hist = Stats.Hist.create () in
  let req = Erpc.Msgbuf.alloc ~max_size:(Raft_kv.key_size + Raft_kv.value_size) in
  let resp = Erpc.Msgbuf.alloc ~max_size:4 in
  let value = String.make Raft_kv.value_size 'v' in
  let remaining = ref samples in
  let rec issue () =
    if !remaining > 0 then begin
      decr remaining;
      let key = Workload.Keygen.encode (Sim.Rng.int rng num_keys) in
      Erpc.Msgbuf.write_string req ~off:0 (Raft_kv.encode_put ~key ~value);
      let t0 = Sim.Engine.now engine in
      Erpc.Rpc.enqueue_request client sess ~req_type:Raft_kv.put_req_type ~req ~resp
        ~cont:(fun r ->
          (match r with
          | Ok () when Erpc.Msgbuf.get_u32 resp ~off:0 = 0 ->
              Stats.Hist.record hist (Sim.Time.sub (Sim.Engine.now engine) t0)
          | _ -> ());
          issue ())
    end
  in
  issue ();
  let deadline = ref 2_000 in
  while !remaining > 0 && !deadline > 0 do
    Harness.run_ms d 1.0;
    decr deadline
  done;
  let commit = Raft_kv.commit_latencies leader in
  {
    client_p50_us = float_of_int (Stats.Hist.median hist) /. 1e3;
    client_p99_us = float_of_int (Stats.Hist.percentile hist 99.) /. 1e3;
    leader_p50_us = float_of_int (Stats.Hist.median commit) /. 1e3;
    leader_p99_us = float_of_int (Stats.Hist.percentile commit 99.) /. 1e3;
    puts = Stats.Hist.count hist;
  }
