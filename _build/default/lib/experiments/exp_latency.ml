type row = {
  cluster : string;
  rdma_read_us : float;
  erpc_us : float;
  erpc_p99_us : float;
}

let measure_erpc ?(samples = 2_000) cluster =
  let d = Harness.deploy cluster ~threads_per_host:1 ~register:Harness.register_echo in
  let client = d.rpcs.(0).(0) in
  let sess = Harness.connect d client ~remote_host:1 ~remote_rpc_id:0 in
  let hist = Stats.Hist.create () in
  let engine = Erpc.Fabric.engine d.fabric in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  (* One outstanding RPC at a time: pure latency. *)
  let remaining = ref samples in
  let rec issue () =
    if !remaining > 0 then begin
      decr remaining;
      let t0 = Sim.Engine.now engine in
      Erpc.Rpc.enqueue_request client sess ~req_type:Harness.echo_req_type ~req ~resp
        ~cont:(fun _ ->
          Stats.Hist.record hist (Sim.Time.sub (Sim.Engine.now engine) t0);
          issue ())
    end
  in
  issue ();
  while !remaining > 0 && Stats.Hist.count hist < samples do
    Harness.run_ms d 1.0
  done;
  hist

let measure_rdma ?(samples = 2_000) (cluster : Transport.Cluster.t) =
  let engine = Sim.Engine.create () in
  let net = Transport.Cluster.build engine cluster in
  let cfg = Rdma.Qp.default_config cluster in
  let ep0 = Rdma.Qp.create engine net ~host:0 cfg in
  let _ep1 = Rdma.Qp.create engine net ~host:1 cfg in
  let hist = Stats.Hist.create () in
  let remaining = ref samples in
  let rec issue () =
    if !remaining > 0 then begin
      decr remaining;
      let t0 = Sim.Engine.now engine in
      Rdma.Qp.post_read ep0 ~dst:1 ~len:32 ~completion:(fun () ->
          Stats.Hist.record hist (Sim.Time.sub (Sim.Engine.now engine) t0);
          issue ())
    end
  in
  issue ();
  Sim.Engine.run engine;
  hist

let measure ?samples cluster =
  let erpc_hist = measure_erpc ?samples cluster in
  let rdma_hist = measure_rdma ?samples cluster in
  {
    cluster = cluster.name;
    rdma_read_us = float_of_int (Stats.Hist.median rdma_hist) /. 1e3;
    erpc_us = float_of_int (Stats.Hist.median erpc_hist) /. 1e3;
    erpc_p99_us = float_of_int (Stats.Hist.percentile erpc_hist 99.) /. 1e3;
  }

let run ?samples () =
  [
    measure ?samples (Transport.Cluster.cx3 ~nodes:2 ());
    measure ?samples (Transport.Cluster.cx4 ~nodes:10 ());
    measure ?samples (Transport.Cluster.cx5 ~nodes:2 ());
  ]
