lib/experiments/exp_bandwidth.ml: Array Erpc Harness List Netsim Rdma Sim Transport
