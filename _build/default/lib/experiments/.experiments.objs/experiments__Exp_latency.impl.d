lib/experiments/exp_latency.ml: Array Erpc Harness Rdma Sim Stats Transport
