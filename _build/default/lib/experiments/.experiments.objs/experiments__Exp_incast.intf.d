lib/experiments/exp_incast.mli: Erpc
