lib/experiments/exp_bandwidth.mli:
