lib/experiments/exp_masstree.mli:
