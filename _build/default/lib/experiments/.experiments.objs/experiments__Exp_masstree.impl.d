lib/experiments/exp_masstree.ml: Array Erpc Fun Harness List Masstree Sim Stats String Transport Workload
