lib/experiments/raft_kv.ml: Array Bytes Erpc Harness Hashtbl Lazy List Mica Raft Sim Stats String
