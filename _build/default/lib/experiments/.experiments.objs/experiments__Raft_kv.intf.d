lib/experiments/raft_kv.mli: Erpc Harness Mica Raft Stats
