lib/experiments/exp_small_rate.ml: Array Erpc Fun Harness List Sim Transport
