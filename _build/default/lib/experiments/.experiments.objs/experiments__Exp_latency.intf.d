lib/experiments/exp_latency.mli: Transport
