lib/experiments/exp_incast.ml: Array Erpc Harness List Netsim Sim Stats Transport
