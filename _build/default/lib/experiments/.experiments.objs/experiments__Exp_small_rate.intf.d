lib/experiments/exp_small_rate.mli: Erpc Transport
