lib/experiments/exp_raft.mli:
