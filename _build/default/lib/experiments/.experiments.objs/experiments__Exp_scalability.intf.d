lib/experiments/exp_scalability.mli:
