lib/experiments/exp_raft.ml: Array Erpc Harness Raft_kv Sim Stats String Transport Workload
