lib/experiments/harness.mli: Erpc Sim Stats Transport
