lib/experiments/exp_scalability.ml: Array Erpc Harness List Sim Stats Transport
