lib/experiments/harness.ml: Array Erpc Fun List Sim Stats Transport
