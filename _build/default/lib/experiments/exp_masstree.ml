type result = {
  gets_per_sec_m : float;
  get_p50_us : float;
  get_p99_us : float;
  scan_p99_us : float;
}

let get_req_type = 30
let scan_req_type = 31
let num_keys = 1_000_000
let key_width = 8
let scan_len = 128

let server_host = 0
let num_dispatch = 14
let num_workers = 2
let num_client_nodes = 8
let client_threads_per_node = 8

let populate () =
  let tree = Masstree.Tree.create () in
  (* Insert in a shuffled order so the tree shape is not worst-case. *)
  let rng = Sim.Rng.create 99L in
  let keys = Array.init num_keys Fun.id in
  for i = num_keys - 1 downto 1 do
    let j = Sim.Rng.int rng (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  Array.iter
    (fun k ->
      Masstree.Tree.insert tree
        ~key:(Workload.Keygen.encode ~width:key_width k)
        ~value:(Workload.Keygen.encode ~width:key_width k))
    keys;
  tree

let register_handlers nx tree ~workers =
  let depth = Masstree.Tree.depth tree in
  Erpc.Nexus.register_handler nx ~req_type:get_req_type ~mode:Erpc.Nexus.Dispatch (fun h ->
      let key =
        Erpc.Msgbuf.read_string (Erpc.Req_handle.get_request h) ~off:0 ~len:key_width
      in
      Erpc.Req_handle.charge h (Masstree.Tree.lookup_cost_ns ~depth);
      let value =
        match Masstree.Tree.get tree ~key with Some v -> v | None -> String.make key_width '\000'
      in
      let resp = Erpc.Req_handle.init_response h ~size:key_width in
      Erpc.Msgbuf.write_string resp ~off:0 value;
      Erpc.Req_handle.enqueue_response h resp);
  let scan_mode = if workers then Erpc.Nexus.Worker else Erpc.Nexus.Dispatch in
  Erpc.Nexus.register_handler nx ~req_type:scan_req_type ~mode:scan_mode (fun h ->
      let key =
        Erpc.Msgbuf.read_string (Erpc.Req_handle.get_request h) ~off:0 ~len:key_width
      in
      Erpc.Req_handle.charge h (Masstree.Tree.scan_cost_ns ~depth ~n:scan_len);
      let sum =
        List.fold_left
          (fun acc (_, v) -> acc + int_of_string v)
          0
          (Masstree.Tree.scan tree ~start:key ~n:scan_len)
      in
      let resp = Erpc.Req_handle.init_response h ~size:8 in
      Erpc.Msgbuf.set_u64 resp ~off:0 sum;
      Erpc.Req_handle.enqueue_response h resp)

type client = {
  rpc : Erpc.Rpc.t;
  sess : Erpc.Session.session;
  rng : Sim.Rng.t;
  get_hist : Stats.Hist.t;
  scan_hist : Stats.Hist.t;
  engine : Sim.Engine.t;
  bufs : (Erpc.Msgbuf.t * Erpc.Msgbuf.t) array;
}

let rec client_issue c slot =
  let req, resp = c.bufs.(slot) in
  let key = Workload.Keygen.encode ~width:key_width (Sim.Rng.int c.rng num_keys) in
  Erpc.Msgbuf.write_string req ~off:0 key;
  let is_scan = Sim.Rng.int c.rng 100 = 0 in
  let req_type = if is_scan then scan_req_type else get_req_type in
  let hist = if is_scan then c.scan_hist else c.get_hist in
  let t0 = Sim.Engine.now c.engine in
  Erpc.Rpc.enqueue_request c.rpc c.sess ~req_type ~req ~resp ~cont:(fun _ ->
      Stats.Hist.record hist (Sim.Time.sub (Sim.Engine.now c.engine) t0);
      client_issue c slot)

let run ?seed ?(workers = true) ?(warmup_ms = 1.0) ?(measure_ms = 3.0) () =
  let nodes = 1 + num_client_nodes in
  let cluster = Transport.Cluster.cx3 ~nodes () in
  let d =
    Harness.deploy ?seed ~workers_per_host:num_workers cluster ~threads_per_host:num_dispatch
  in
  let tree = populate () in
  register_handlers d.nexuses.(server_host) tree ~workers;
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let get_hist = Stats.Hist.create () in
  let scan_hist = Stats.Hist.create () in
  let clients =
    List.init (num_client_nodes * client_threads_per_node) (fun i ->
        let host = 1 + (i / client_threads_per_node) in
        let thr = i mod client_threads_per_node in
        let rpc = d.rpcs.(host).(thr) in
        let sess =
          Harness.connect d rpc ~remote_host:server_host ~remote_rpc_id:(i mod num_dispatch)
        in
        {
          rpc;
          sess;
          rng = Sim.Rng.split rng;
          get_hist;
          scan_hist;
          engine;
          bufs =
            Array.init 2 (fun _ ->
                (Erpc.Msgbuf.alloc ~max_size:key_width, Erpc.Msgbuf.alloc ~max_size:8));
        })
  in
  (* Two outstanding requests per client (§7.2). *)
  List.iter
    (fun c ->
      client_issue c 0;
      client_issue c 1)
    clients;
  Harness.run_ms d warmup_ms;
  Stats.Hist.clear get_hist;
  Stats.Hist.clear scan_hist;
  Harness.run_ms d measure_ms;
  {
    gets_per_sec_m = float_of_int (Stats.Hist.count get_hist) /. (measure_ms *. 1e3);
    get_p50_us = float_of_int (Stats.Hist.median get_hist) /. 1e3;
    get_p99_us = float_of_int (Stats.Hist.percentile get_hist 99.) /. 1e3;
    scan_p99_us =
      (if Stats.Hist.count scan_hist = 0 then 0.
       else float_of_int (Stats.Hist.percentile scan_hist 99.) /. 1e3);
  }

let low_load_median_us ?seed () =
  let cluster = Transport.Cluster.cx3 ~nodes:2 () in
  let d = Harness.deploy ?seed ~workers_per_host:num_workers cluster ~threads_per_host:1 in
  let tree = populate () in
  register_handlers d.nexuses.(server_host) tree ~workers:true;
  let engine = Erpc.Fabric.engine d.fabric in
  let client = d.rpcs.(1).(0) in
  let sess = Harness.connect d client ~remote_host:server_host ~remote_rpc_id:0 in
  let hist = Stats.Hist.create () in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let req = Erpc.Msgbuf.alloc ~max_size:key_width in
  let resp = Erpc.Msgbuf.alloc ~max_size:8 in
  let remaining = ref 2_000 in
  let rec issue () =
    if !remaining > 0 then begin
      decr remaining;
      Erpc.Msgbuf.write_string req ~off:0
        (Workload.Keygen.encode ~width:key_width (Sim.Rng.int rng num_keys));
      let t0 = Sim.Engine.now engine in
      Erpc.Rpc.enqueue_request client sess ~req_type:get_req_type ~req ~resp ~cont:(fun _ ->
          Stats.Hist.record hist (Sim.Time.sub (Sim.Engine.now engine) t0);
          issue ())
    end
  in
  issue ();
  Harness.run_ms d 50.0;
  float_of_int (Stats.Hist.median hist) /. 1e3
