(** Figure 5 + §6.3: scalability on the 100-node CX4 cluster.

    With T threads per node there are 100T threads; every thread creates a
    client session to every other thread, so each node hosts
    [T * (100T - 1)] client sessions and as many server sessions — 19 980
    at T = 10, the paper's "20000 connections per node". Threads keep 60
    requests of 32 B in flight in batches of 3 (as in Fig 4), to uniformly
    random remote threads; 32 credits per session. *)

type row = {
  threads_per_node : int;
  per_node_mrps : float;
  lat_p50_us : float;
  lat_p99_us : float;
  lat_p999_us : float;
  lat_p9999_us : float;
  retransmits_per_node_per_sec : float;
}

val run :
  ?seed:int64 ->
  ?nodes:int ->
  ?credits:int ->
  ?warmup_us:float ->
  ?measure_us:float ->
  threads:int ->
  unit ->
  row

(** The Fig 5 x-axis: T = 1..10 (a subset by default to bound runtime). *)
val fig5 : ?nodes:int -> ?threads_list:int list -> unit -> row list
