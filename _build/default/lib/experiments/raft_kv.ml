let raft_req_type = 20
let put_req_type = 21

let key_size = 16
let value_size = 64

let encode_put ~key ~value =
  assert (String.length key = key_size && String.length value = value_size);
  key ^ value

(* Modeled handler CPU costs (ns). *)
let raft_receive_cost = 250
let raft_submit_cost = 220
let codec_cost = 110

type server = {
  rpc : Erpc.Rpc.t;
  engine : Sim.Engine.t;
  raft : string Raft.Core.t Lazy.t;
  store : Mica.Store.t;
  peer_sessions : (int, Erpc.Session.session) Hashtbl.t;
  mutable pending_reply : string Raft.Core.msg option;
  pending_commits : (int, Erpc.Req_handle.t * Sim.Time.t) Hashtbl.t;
  commit_lat : Stats.Hist.t;
}

let rpc s = s.rpc
let raft s = Lazy.force s.raft
let store s = s.store
let is_leader s = Raft.Core.role (raft s) = Raft.Core.Leader
let commit_latencies s = s.commit_lat

let msgbuf_of_bytes b =
  let m = Erpc.Msgbuf.alloc ~max_size:(Bytes.length b) in
  Erpc.Msgbuf.write_string m ~off:0 (Bytes.to_string b);
  m

let send_raft_message s dst msg =
  match msg with
  | Raft.Core.Request_vote_resp _ | Raft.Core.Append_entries_resp _ ->
      (* Replies ride back as the eRPC response of the request being
         handled right now. *)
      s.pending_reply <- Some msg
  | Raft.Core.Request_vote _ | Raft.Core.Append_entries _ -> (
      match Hashtbl.find_opt s.peer_sessions dst with
      | None -> ()
      | Some sess ->
          let req = msgbuf_of_bytes (Raft.Codec.encode msg) in
          let resp = Erpc.Msgbuf.alloc ~max_size:64 in
          Erpc.Rpc.enqueue_request s.rpc sess ~req_type:raft_req_type ~req ~resp
            ~cont:(fun r ->
              match r with
              | Ok () ->
                  let data =
                    Bytes.of_string
                      (Erpc.Msgbuf.read_string resp ~off:0 ~len:(Erpc.Msgbuf.size resp))
                  in
                  Raft.Core.receive (raft s) (Raft.Codec.decode data)
              | Error _ -> () (* peer failed; Raft re-drives via timeouts *)))

let apply_committed s index cmd =
  let key = String.sub cmd 0 key_size in
  let value = String.sub cmd key_size value_size in
  Mica.Store.put s.store ~key ~value;
  match Hashtbl.find_opt s.pending_commits index with
  | None -> ()
  | Some (h, submitted) ->
      Hashtbl.remove s.pending_commits index;
      Stats.Hist.record s.commit_lat (Sim.Time.sub (Sim.Engine.now s.engine) submitted);
      let resp = Erpc.Req_handle.init_response h ~size:4 in
      Erpc.Msgbuf.set_u32 resp ~off:0 0;
      Erpc.Req_handle.enqueue_response h resp

let periodic_tick_ns = 500_000

let create (d : Harness.deployment) ~host ~replica_id ~replicas =
  let engine = Erpc.Fabric.engine d.fabric in
  let nx = d.nexuses.(host) in
  let rpc = d.rpcs.(host).(0) in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let rec s =
    {
      rpc;
      engine;
      raft =
        lazy
          (Raft.Core.create ~id:replica_id
             ~peers:(Array.of_list (List.init (Array.length replicas - 1) (fun i ->
                  if i < replica_id then i else i + 1)))
             Raft.Core.default_config
             ~send:(fun dst msg -> send_raft_message s dst msg)
             ~apply:(fun index cmd -> apply_committed s index cmd)
             ~random:(fun n -> Sim.Rng.int rng n));
      store = Mica.Store.create ();
      pending_reply = None;
      peer_sessions = Hashtbl.create 8;
      pending_commits = Hashtbl.create 64;
      commit_lat = Stats.Hist.create ();
    }
  in
  (* Sessions to the other replicas, keyed by replica id. *)
  Array.iteri
    (fun peer_id peer_host ->
      if peer_id <> replica_id then
        Hashtbl.replace s.peer_sessions peer_id
          (Erpc.Rpc.create_session rpc ~remote_host:peer_host ~remote_rpc_id:0 ()))
    replicas;
  (* Raft message handler: decode, feed the core, send back whatever reply
     the core produced. *)
  Erpc.Nexus.register_handler nx ~req_type:raft_req_type ~mode:Erpc.Nexus.Dispatch (fun h ->
      let req = Erpc.Req_handle.get_request h in
      let data =
        Bytes.of_string (Erpc.Msgbuf.read_string req ~off:0 ~len:(Erpc.Msgbuf.size req))
      in
      Erpc.Req_handle.charge h (codec_cost + raft_receive_cost);
      s.pending_reply <- None;
      Raft.Core.receive (raft s) (Raft.Codec.decode data);
      match s.pending_reply with
      | None ->
          (* The core always answers AE/RV; answer with an empty status if
             it ever does not, so the client slot is not leaked. *)
          let resp = Erpc.Req_handle.init_response h ~size:4 in
          Erpc.Msgbuf.set_u32 resp ~off:0 1;
          Erpc.Req_handle.enqueue_response h resp
      | Some reply ->
          s.pending_reply <- None;
          let encoded = Raft.Codec.encode reply in
          let resp = Erpc.Req_handle.init_response h ~size:(Bytes.length encoded) in
          Erpc.Msgbuf.write_string resp ~off:0 (Bytes.to_string encoded);
          Erpc.Req_handle.enqueue_response h resp);
  (* Client PUTs: submit to Raft; respond on commit (a nested-RPC style
     handler that enqueues its response later). *)
  Erpc.Nexus.register_handler nx ~req_type:put_req_type ~mode:Erpc.Nexus.Dispatch (fun h ->
      let req = Erpc.Req_handle.get_request h in
      let cmd = Erpc.Msgbuf.read_string req ~off:0 ~len:(key_size + value_size) in
      Erpc.Req_handle.charge h (raft_submit_cost + Mica.Store.insert_cost_ns);
      match Raft.Core.submit (raft s) cmd with
      | Ok index ->
          Hashtbl.replace s.pending_commits index (h, Sim.Engine.now engine)
      | Error (`Not_leader _) ->
          let resp = Erpc.Req_handle.init_response h ~size:4 in
          Erpc.Msgbuf.set_u32 resp ~off:0 2;
          Erpc.Req_handle.enqueue_response h resp);
  (* Drive Raft time (LibRaft's raft_periodic). *)
  let rec tick () =
    if not (Erpc.Nexus.dead nx) then begin
      Raft.Core.periodic (raft s) ~elapsed_ns:periodic_tick_ns;
      Sim.Engine.schedule_after engine periodic_tick_ns tick
    end
  in
  Sim.Engine.schedule_after engine periodic_tick_ns tick;
  s
