(** Table 2: median latency of 32 B eRPC RPCs vs 32 B RDMA reads between
    two nodes under the same ToR switch, per cluster. *)

type row = {
  cluster : string;
  rdma_read_us : float;
  erpc_us : float;
  erpc_p99_us : float;
}

(** Measure one cluster profile. *)
val measure : ?samples:int -> Transport.Cluster.t -> row

(** The paper's three clusters. *)
val run : ?samples:int -> unit -> row list
