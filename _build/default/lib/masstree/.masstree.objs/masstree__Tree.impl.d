lib/masstree/tree.ml: Array List String
