lib/masstree/tree.mli:
