(* B+tree with linked leaves. Capacity chosen so nodes span a few cache
   lines, like Masstree's trie-of-B+trees nodes. *)

let max_keys = 30

type node = Leaf of leaf | Internal of internal

and leaf = {
  mutable lkeys : string array;
  mutable lvals : string array;
  mutable lcount : int;
  mutable next : leaf option;
}

and internal = {
  mutable ikeys : string array;  (* separators: child i holds keys < ikeys.(i) *)
  mutable children : node array;
  mutable icount : int;  (* number of separators; children = icount + 1 *)
}

type t = { mutable root : node; mutable count : int }

let new_leaf () =
  { lkeys = Array.make max_keys ""; lvals = Array.make max_keys ""; lcount = 0; next = None }

let new_internal () =
  { ikeys = Array.make max_keys ""; children = Array.make (max_keys + 1) (Leaf (new_leaf ())); icount = 0 }

let create () = { root = Leaf (new_leaf ()); count = 0 }

(* Index of the first key in [keys.(0..count)] that is >= [key]. *)
let lower_bound keys count key =
  let lo = ref 0 and hi = ref count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index to descend into: first separator strictly greater than the
   key; equal keys go right so that separators equal leaf minima. *)
let child_index inner key =
  let lo = ref 0 and hi = ref inner.icount in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare inner.ikeys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_leaf node key =
  match node with
  | Leaf l -> l
  | Internal inner -> find_leaf inner.children.(child_index inner key) key

let get t ~key =
  let l = find_leaf t.root key in
  let i = lower_bound l.lkeys l.lcount key in
  if i < l.lcount && String.equal l.lkeys.(i) key then Some l.lvals.(i) else None

(* Split a full leaf; returns (separator, right sibling). *)
let split_leaf l =
  let right = new_leaf () in
  let mid = l.lcount / 2 in
  let moved = l.lcount - mid in
  Array.blit l.lkeys mid right.lkeys 0 moved;
  Array.blit l.lvals mid right.lvals 0 moved;
  right.lcount <- moved;
  l.lcount <- mid;
  right.next <- l.next;
  l.next <- Some right;
  (right.lkeys.(0), Leaf right)

let split_internal inner =
  let right = new_internal () in
  let mid = inner.icount / 2 in
  let sep = inner.ikeys.(mid) in
  let moved = inner.icount - mid - 1 in
  Array.blit inner.ikeys (mid + 1) right.ikeys 0 moved;
  Array.blit inner.children (mid + 1) right.children 0 (moved + 1);
  right.icount <- moved;
  inner.icount <- mid;
  (sep, Internal right)

(* Insert; returns [Some (sep, right)] when the node split. *)
let rec insert_node t node key value =
  match node with
  | Leaf l ->
      let i = lower_bound l.lkeys l.lcount key in
      if i < l.lcount && String.equal l.lkeys.(i) key then begin
        l.lvals.(i) <- value;
        None
      end
      else begin
        Array.blit l.lkeys i l.lkeys (i + 1) (l.lcount - i);
        Array.blit l.lvals i l.lvals (i + 1) (l.lcount - i);
        l.lkeys.(i) <- key;
        l.lvals.(i) <- value;
        l.lcount <- l.lcount + 1;
        t.count <- t.count + 1;
        if l.lcount = max_keys then Some (split_leaf l) else None
      end
  | Internal inner -> (
      let ci = child_index inner key in
      match insert_node t inner.children.(ci) key value with
      | None -> None
      | Some (sep, right) ->
          Array.blit inner.ikeys ci inner.ikeys (ci + 1) (inner.icount - ci);
          Array.blit inner.children (ci + 1) inner.children (ci + 2) (inner.icount - ci);
          inner.ikeys.(ci) <- sep;
          inner.children.(ci + 1) <- right;
          inner.icount <- inner.icount + 1;
          if inner.icount = max_keys then Some (split_internal inner) else None)

let insert t ~key ~value =
  match insert_node t t.root key value with
  | None -> ()
  | Some (sep, right) ->
      let root = new_internal () in
      root.ikeys.(0) <- sep;
      root.children.(0) <- t.root;
      root.children.(1) <- right;
      root.icount <- 1;
      t.root <- Internal root

let delete t ~key =
  let l = find_leaf t.root key in
  let i = lower_bound l.lkeys l.lcount key in
  if i < l.lcount && String.equal l.lkeys.(i) key then begin
    Array.blit l.lkeys (i + 1) l.lkeys i (l.lcount - i - 1);
    Array.blit l.lvals (i + 1) l.lvals i (l.lcount - i - 1);
    l.lcount <- l.lcount - 1;
    t.count <- t.count - 1;
    true
  end
  else false

let scan t ~start ~n =
  let acc = ref [] in
  let taken = ref 0 in
  let rec walk leaf i =
    if !taken < n then
      if i < leaf.lcount then begin
        acc := (leaf.lkeys.(i), leaf.lvals.(i)) :: !acc;
        incr taken;
        walk leaf (i + 1)
      end
      else match leaf.next with Some right -> walk right 0 | None -> ()
  in
  let l = find_leaf t.root start in
  walk l (lower_bound l.lkeys l.lcount start);
  List.rev !acc

let size t = t.count

let depth t =
  let rec go node acc =
    match node with Leaf _ -> acc | Internal inner -> go inner.children.(0) (acc + 1)
  in
  go t.root 1

(* Each level is a dependent cache-miss chain over a large working set
   (~110 ns with DRAM latency); leaf scans then stream keys at ~12 ns per
   key (leaf walks miss the cache on every node). *)
let lookup_cost_ns ~depth = 60 + (110 * depth)
let scan_cost_ns ~depth ~n = 60 + (110 * depth) + (80 * n)
