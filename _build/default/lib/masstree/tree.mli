(** Masstree-style ordered in-memory key-value store (Mao et al.,
    EuroSys '12) — the database index of paper §7.2.

    Implemented as a B+tree with linked leaves: point GETs descend the
    tree; SCANs walk the leaf chain, which is what makes the paper's
    128-key range sums cheap after the initial descent. Deletion removes
    the key from its leaf without rebalancing (leaves may underflow);
    lookups and scans remain correct, matching how log-structured stores
    tolerate sparse leaves.

    [lookup_cost_ns]/[scan_cost_ns] model the CPU time of the operations
    when they run inside simulated RPC handlers. *)

type t

val create : unit -> t

val insert : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val delete : t -> key:string -> bool

(** [scan t ~start ~n] returns up to [n] key-value pairs with key >=
    [start], in ascending order. *)
val scan : t -> start:string -> n:int -> (string * string) list

val size : t -> int
val depth : t -> int

(** Modeled handler cost (ns) of a point GET at the given tree depth. *)
val lookup_cost_ns : depth:int -> int

(** Modeled handler cost (ns) of scanning [n] keys at the given depth. *)
val scan_cost_ns : depth:int -> n:int -> int
