(** One-shot cancellable timer over an {!Engine}.

    Re-arming an armed timer replaces the previous deadline; stale engine
    events are suppressed with a generation counter rather than removed from
    the queue. *)

type t

val create : Engine.t -> callback:(unit -> unit) -> t

(** Arm (or re-arm) to fire at the given absolute time. *)
val arm : t -> Time.t -> unit

(** Arm (or re-arm) to fire after the given delay. *)
val arm_after : t -> Time.t -> unit

val disarm : t -> unit
val is_armed : t -> bool

(** Deadline of the armed timer. Raises [Invalid_argument] if unarmed. *)
val deadline : t -> Time.t
