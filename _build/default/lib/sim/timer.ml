type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable generation : int;
  mutable armed : bool;
  mutable deadline : Time.t;
}

let create engine ~callback =
  { engine; callback; generation = 0; armed = false; deadline = Time.zero }

let arm t at =
  t.generation <- t.generation + 1;
  t.armed <- true;
  t.deadline <- at;
  let gen = t.generation in
  Engine.schedule t.engine at (fun () ->
      if t.armed && t.generation = gen then begin
        t.armed <- false;
        t.callback ()
      end)

let arm_after t delta = arm t (Time.add (Engine.now t.engine) delta)

let disarm t =
  t.armed <- false;
  t.generation <- t.generation + 1

let is_armed t = t.armed

let deadline t =
  if not t.armed then invalid_arg "Timer.deadline: timer not armed";
  t.deadline
