type t = {
  engine : Engine.t;
  name : string;
  mutable next_free : Time.t;
  mutable busy : int;
  mutable stats_epoch : Time.t;
}

let create engine ~name =
  { engine; name; next_free = Engine.now engine; busy = 0; stats_epoch = Engine.now engine }

let name t = t.name
let next_free t = t.next_free

let start_slice t =
  let now = Engine.now t.engine in
  if t.next_free > now then t.next_free else now

let charge t ns =
  assert (ns >= 0);
  let start = start_slice t in
  t.next_free <- Time.add start ns;
  t.busy <- t.busy + ns;
  t.next_free

let busy_ns t = t.busy

let utilization t =
  let elapsed = Time.sub (Engine.now t.engine) t.stats_epoch in
  if elapsed <= 0 then 0. else min 1.0 (float_of_int t.busy /. float_of_int elapsed)

let reset_stats t =
  t.busy <- 0;
  t.stats_epoch <- Engine.now t.engine
