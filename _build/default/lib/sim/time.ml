type t = int

let zero = 0
let ns n = n
let us f = int_of_float (f *. 1e3 +. 0.5)
let ms f = int_of_float (f *. 1e6 +. 0.5)
let s f = int_of_float (f *. 1e9 +. 0.5)

let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_s t = float_of_int t /. 1e9

let add = ( + )
let sub = ( - )

let of_bytes_at_gbps bytes gbps =
  (* bits / (gbps * 1e9) seconds = bits / gbps nanoseconds *)
  let bits = float_of_int (bytes * 8) in
  int_of_float (ceil (bits /. gbps))

let compare = Int.compare

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%d ns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2f us" (to_us t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.3f ms" (to_ms t)
  else Format.fprintf fmt "%.3f s" (to_s t)
