(** A simulated hardware thread (CPU timeline).

    End-host software costs are modeled by charging nanoseconds to a CPU: a
    thread that is busy until [next_free] cannot start new work earlier.
    This is what makes "messages per second per core" a meaningful measured
    quantity in the simulation: a core saturates at 1/cost. *)

type t

val create : Engine.t -> name:string -> t

val name : t -> string

(** Earliest time at which new work may start. *)
val next_free : t -> Time.t

(** [start_slice t] is [max (now, next_free)] — when work submitted now
    would actually begin executing. *)
val start_slice : t -> Time.t

(** [charge t ns] consumes [ns] nanoseconds of CPU starting at
    [start_slice t]; returns the completion time. *)
val charge : t -> int -> Time.t

(** Total busy nanoseconds accumulated. *)
val busy_ns : t -> int

(** Utilization in [0,1] over the window since creation (or since
    [reset_stats]). *)
val utilization : t -> float

val reset_stats : t -> unit
