type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let entry_before a b =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Only called with a non-empty heap: [push] seeds the first array itself. *)
let grow t =
  let cap = Array.length t.heap in
  assert (cap > 0);
  let h = Array.make (cap * 2) t.heap.(0) in
  Array.blit t.heap 0 h 0 t.size;
  t.heap <- h

let push t time payload =
  if t.size >= Array.length t.heap then begin
    if Array.length t.heap = 0 then t.heap <- Array.make 64 { time; seq = 0; payload };
    if t.size >= Array.length t.heap then grow t
  end;
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- e;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && entry_before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && entry_before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  t.size <- 0;
  t.next_seq <- 0
