type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (next t)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (next t) land max_int in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool_with_prob t p = float t < p

let exponential t mean =
  let u = float t in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u
