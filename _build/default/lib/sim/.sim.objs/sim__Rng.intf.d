lib/sim/rng.mli:
