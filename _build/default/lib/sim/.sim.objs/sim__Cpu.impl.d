lib/sim/cpu.ml: Engine Time
