lib/sim/timer.ml: Engine Time
