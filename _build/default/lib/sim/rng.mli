(** Deterministic pseudo-random number generation (splitmix64).

    Every simulation component draws from its own [Rng.t] stream, split off
    a per-experiment master seed, so experiments are reproducible and
    component behaviour is independent of event interleaving. *)

type t

val create : int64 -> t

(** [split t] derives an independent stream from [t], advancing [t]. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Bernoulli trial with success probability [p]. *)
val bool_with_prob : t -> float -> bool

(** Exponentially distributed value with the given mean. *)
val exponential : t -> float -> float
