(** Priority queue of timestamped events (binary min-heap).

    Ties on the timestamp are broken by insertion order, so the engine is
    fully deterministic for a given seed. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> Time.t -> 'a -> unit

(** Earliest (time, event), or [None] if empty. *)
val pop : 'a t -> (Time.t * 'a) option

val peek_time : 'a t -> Time.t option
val clear : 'a t -> unit
