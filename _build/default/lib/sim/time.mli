(** Simulated time, in integer nanoseconds.

    All simulation clocks in this repository use this representation: it is
    exact, totally ordered, and immune to floating-point drift over long
    runs. 63-bit nanoseconds cover ~292 years of simulated time. *)

type t = int

val zero : t
val ns : int -> t
val us : float -> t
val ms : float -> t
val s : float -> t

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val add : t -> t -> t
val sub : t -> t -> t

(** [of_bytes_at_gbps bytes gbps] is the serialization delay of [bytes]
    bytes on a link of [gbps] gigabits per second, rounded up to a whole
    nanosecond. *)
val of_bytes_at_gbps : int -> float -> t

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
