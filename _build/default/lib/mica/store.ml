type cell = { key : string; mutable value : string; mutable next : cell option }

type t = {
  mutable table : cell option array;
  mutable mask : int;
  mutable count : int;
}

(* FNV-1a, truncated to OCaml's 63-bit int. *)
let fnv1a (s : string) =
  let h = ref 0x2bf29ce484222325 in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code s.[i]) * 0x100000001b3
  done;
  !h land max_int

let create ?(initial_buckets = 64) () =
  let n = max 4 initial_buckets in
  (* round up to a power of two *)
  let cap = ref 4 in
  while !cap < n do
    cap := !cap * 2
  done;
  { table = Array.make !cap None; mask = !cap - 1; count = 0 }

let rec find_cell cell key =
  match cell with
  | None -> None
  | Some c -> if String.equal c.key key then Some c else find_cell c.next key

let grow t =
  let old = t.table in
  let cap = 2 * Array.length old in
  t.table <- Array.make cap None;
  t.mask <- cap - 1;
  Array.iter
    (fun chain ->
      let rec reinsert = function
        | None -> ()
        | Some c ->
            let next = c.next in
            let idx = fnv1a c.key land t.mask in
            c.next <- t.table.(idx);
            t.table.(idx) <- Some c;
            reinsert next
      in
      reinsert chain)
    old

let put t ~key ~value =
  let idx = fnv1a key land t.mask in
  match find_cell t.table.(idx) key with
  | Some c -> c.value <- value
  | None ->
      t.table.(idx) <- Some { key; value; next = t.table.(idx) };
      t.count <- t.count + 1;
      if t.count > Array.length t.table then grow t

let get t ~key =
  let idx = fnv1a key land t.mask in
  match find_cell t.table.(idx) key with Some c -> Some c.value | None -> None

let mem t ~key = get t ~key <> None

let delete t ~key =
  let idx = fnv1a key land t.mask in
  let rec remove = function
    | None -> (None, false)
    | Some c when String.equal c.key key -> (c.next, true)
    | Some c ->
        let rest, removed = remove c.next in
        c.next <- rest;
        (Some c, removed)
  in
  let chain, removed = remove t.table.(idx) in
  t.table.(idx) <- chain;
  if removed then t.count <- t.count - 1;
  removed

let size t = t.count
let buckets t = Array.length t.table

let lookup_cost_ns = 60
let insert_cost_ns = 80
