(** MICA-style in-memory key-value store (Lim et al., NSDI '14) — the
    store reused by the paper's replicated key-value service (§7.1).

    A lossless chained hash table with power-of-two bucket counts, FNV-1a
    hashing and amortized doubling. Implemented from scratch (no
    [Hashtbl]) because it is one of the substrates the paper builds on.

    [lookup_cost_ns]/[insert_cost_ns] give the modeled CPU cost used when
    a store operation runs inside a simulated RPC handler: a hash + one
    cache-miss-dominated bucket walk. *)

type t

val create : ?initial_buckets:int -> unit -> t

val put : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val delete : t -> key:string -> bool
val mem : t -> key:string -> bool
val size : t -> int
val buckets : t -> int

(** Modeled handler cost of a GET (ns). *)
val lookup_cost_ns : int

(** Modeled handler cost of a PUT (ns). *)
val insert_cost_ns : int
