lib/mica/store.mli:
