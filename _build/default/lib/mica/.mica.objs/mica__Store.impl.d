lib/mica/store.ml: Array Char String
