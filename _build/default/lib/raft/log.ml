type 'cmd entry = { term : int; cmd : 'cmd }

type 'cmd t = { mutable entries : 'cmd entry array; mutable len : int }

let create () = { entries = [||]; len = 0 }

let last_index t = t.len

let term_at t index =
  if index = 0 then 0
  else if index < 1 || index > t.len then
    invalid_arg (Printf.sprintf "Log.term_at: index %d out of range (len %d)" index t.len)
  else t.entries.(index - 1).term

let last_term t = if t.len = 0 then 0 else t.entries.(t.len - 1).term

let get t index =
  if index < 1 || index > t.len then
    invalid_arg (Printf.sprintf "Log.get: index %d out of range (len %d)" index t.len);
  t.entries.(index - 1)

let append t entry =
  if t.len >= Array.length t.entries then begin
    let cap = max 16 (2 * Array.length t.entries) in
    let grown = Array.make cap entry in
    Array.blit t.entries 0 grown 0 t.len;
    t.entries <- grown
  end;
  t.entries.(t.len) <- entry;
  t.len <- t.len + 1;
  t.len

let truncate_from t from =
  if from < 1 then invalid_arg "Log.truncate_from: index must be >= 1";
  if from <= t.len then t.len <- from - 1

let entries_from t ~from ~max =
  let rec go i acc n =
    if i > t.len || n = 0 then List.rev acc else go (i + 1) (t.entries.(i - 1) :: acc) (n - 1)
  in
  go from [] max
