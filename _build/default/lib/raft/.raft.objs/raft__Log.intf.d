lib/raft/log.mli:
