lib/raft/log.ml: Array List Printf
