lib/raft/codec.mli: Core
