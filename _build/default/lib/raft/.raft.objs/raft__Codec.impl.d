lib/raft/codec.ml: Bytes Char Core Int32 List Log String
