lib/raft/core.ml: Array List Log
