lib/raft/core.mli: Log
