(** Compact binary wire codec for {!Core.msg} with [string] commands.

    The integration layer (Raft-over-eRPC, §7.1) copies these bytes into
    msgbufs; the Raft core itself never sees the encoding, mirroring how
    LibRaft delegates all marshalling to its user callbacks. *)

val encode : string Core.msg -> bytes

(** Raises [Invalid_argument] on malformed input. *)
val decode : bytes -> string Core.msg

(** Encoded size, for sizing buffers without encoding twice. *)
val encoded_size : string Core.msg -> int
