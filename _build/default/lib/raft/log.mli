(** Raft replicated log: 1-indexed entries of (term, command).

    Index 0 is the empty prefix with term 0. *)

type 'cmd entry = { term : int; cmd : 'cmd }
type 'cmd t

val create : unit -> 'cmd t

(** Index of the last entry (0 when empty). *)
val last_index : 'cmd t -> int

val last_term : 'cmd t -> int

(** Term of the entry at [index]; 0 for index 0. Raises [Invalid_argument]
    beyond the log end. *)
val term_at : 'cmd t -> int -> int

val get : 'cmd t -> int -> 'cmd entry

(** Append one entry; returns its index. *)
val append : 'cmd t -> 'cmd entry -> int

(** Remove entries with index >= [from] (conflict resolution). *)
val truncate_from : 'cmd t -> int -> unit

(** Up to [max] entries starting at [from] (inclusive). *)
val entries_from : 'cmd t -> from:int -> max:int -> 'cmd entry list
