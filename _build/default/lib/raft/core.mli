(** Raft consensus core (Ongaro & Ousterhout, ATC '14), modeled on the C
    LibRaft the paper ports to eRPC (§7.1): the protocol is a pure state
    machine whose only requirement is that "the user provide callbacks for
    sending and handling RPCs". Time advances only through [periodic], and
    randomness comes from a caller-supplied source — there are no
    dependencies on the simulator, so integrations (our eRPC one included)
    need no changes to this module.

    Scope: leader election, log replication and commitment, and follower
    log repair. Log compaction/snapshots and membership changes are out of
    scope, as in the paper's evaluation. *)

type role = Follower | Candidate | Leader

type 'cmd msg =
  | Request_vote of {
      term : int;
      candidate_id : int;
      last_log_index : int;
      last_log_term : int;
    }
  | Request_vote_resp of { term : int; vote_granted : bool; from : int }
  | Append_entries of {
      term : int;
      leader_id : int;
      prev_log_index : int;
      prev_log_term : int;
      entries : 'cmd Log.entry list;
      leader_commit : int;
    }
  | Append_entries_resp of { term : int; success : bool; from : int; match_index : int }

type config = {
  election_timeout_min_ns : int;
  election_timeout_max_ns : int;
  heartbeat_ns : int;
  max_entries_per_msg : int;
}

val default_config : config

type 'cmd t

(** [create ~id ~peers cfg ~send ~apply ~random] — [send dst msg] transmits
    a message (the integration layer serializes it however it likes);
    [apply index cmd] is invoked exactly once per committed entry, in index
    order; [random n] returns a uniform int in [0, n) for election
    jitter. *)
val create :
  id:int ->
  peers:int array ->
  config ->
  send:(int -> 'cmd msg -> unit) ->
  apply:(int -> 'cmd -> unit) ->
  random:(int -> int) ->
  'cmd t

val id : 'cmd t -> int
val role : 'cmd t -> role
val term : 'cmd t -> int
val commit_index : 'cmd t -> int
val last_applied : 'cmd t -> int

(** Current leader as known locally, if any. *)
val leader_hint : 'cmd t -> int option

val log : 'cmd t -> 'cmd Log.t

(** Feed an incoming message. *)
val receive : 'cmd t -> 'cmd msg -> unit

(** Advance protocol time: election timeouts and heartbeats. Call
    regularly (LibRaft's [raft_periodic]). *)
val periodic : 'cmd t -> elapsed_ns:int -> unit

(** Submit a command. On the leader, appends and replicates immediately,
    returning the entry's log index. *)
val submit : 'cmd t -> 'cmd -> (int, [ `Not_leader of int option ]) result
