(* Layout: 1-byte tag, then little-endian u32/u8 fields. Entries are
   (u32 term, u32 length, bytes). *)

let tag_request_vote = 0
let tag_request_vote_resp = 1
let tag_append_entries = 2
let tag_append_entries_resp = 3

let u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let encoded_size (msg : string Core.msg) =
  match msg with
  | Core.Request_vote _ -> 1 + 16
  | Core.Request_vote_resp _ -> 1 + 9
  | Core.Append_entries { entries; _ } ->
      1 + 20
      + List.fold_left (fun acc (e : string Log.entry) -> acc + 8 + String.length e.cmd) 0 entries
  | Core.Append_entries_resp _ -> 1 + 13

let encode (msg : string Core.msg) =
  let b = Bytes.create (encoded_size msg) in
  (match msg with
  | Core.Request_vote { term; candidate_id; last_log_index; last_log_term } ->
      Bytes.set b 0 (Char.chr tag_request_vote);
      u32 b 1 term;
      u32 b 5 candidate_id;
      u32 b 9 last_log_index;
      u32 b 13 last_log_term
  | Core.Request_vote_resp { term; vote_granted; from } ->
      Bytes.set b 0 (Char.chr tag_request_vote_resp);
      u32 b 1 term;
      Bytes.set b 5 (if vote_granted then '\001' else '\000');
      u32 b 6 from
  | Core.Append_entries { term; leader_id; prev_log_index; prev_log_term; entries; leader_commit }
    ->
      Bytes.set b 0 (Char.chr tag_append_entries);
      u32 b 1 term;
      u32 b 5 leader_id;
      u32 b 9 prev_log_index;
      u32 b 13 prev_log_term;
      u32 b 17 leader_commit;
      (* entries *)
      let off = ref 21 in
      let count_off = !off - 4 in
      ignore count_off;
      (* count stored below: recompute layout *)
      List.iter
        (fun (e : string Log.entry) ->
          u32 b !off e.term;
          u32 b (!off + 4) (String.length e.cmd);
          Bytes.blit_string e.cmd 0 b (!off + 8) (String.length e.cmd);
          off := !off + 8 + String.length e.cmd)
        entries
  | Core.Append_entries_resp { term; success; from; match_index } ->
      Bytes.set b 0 (Char.chr tag_append_entries_resp);
      u32 b 1 term;
      Bytes.set b 5 (if success then '\001' else '\000');
      u32 b 6 from;
      u32 b 10 match_index);
  b

let decode b : string Core.msg =
  if Bytes.length b < 1 then invalid_arg "Raft.Codec.decode: empty buffer";
  let tag = Char.code (Bytes.get b 0) in
  if tag = tag_request_vote then begin
    if Bytes.length b < 17 then invalid_arg "Raft.Codec.decode: truncated Request_vote";
    Core.Request_vote
      {
        term = get_u32 b 1;
        candidate_id = get_u32 b 5;
        last_log_index = get_u32 b 9;
        last_log_term = get_u32 b 13;
      }
  end
  else if tag = tag_request_vote_resp then begin
    if Bytes.length b < 10 then invalid_arg "Raft.Codec.decode: truncated Request_vote_resp";
    Core.Request_vote_resp
      { term = get_u32 b 1; vote_granted = Bytes.get b 5 = '\001'; from = get_u32 b 6 }
  end
  else if tag = tag_append_entries then begin
    if Bytes.length b < 21 then invalid_arg "Raft.Codec.decode: truncated Append_entries";
    let entries = ref [] in
    let off = ref 21 in
    while !off < Bytes.length b do
      if !off + 8 > Bytes.length b then invalid_arg "Raft.Codec.decode: truncated entry";
      let term = get_u32 b !off in
      let len = get_u32 b (!off + 4) in
      if !off + 8 + len > Bytes.length b then invalid_arg "Raft.Codec.decode: truncated entry";
      entries := { Log.term; cmd = Bytes.sub_string b (!off + 8) len } :: !entries;
      off := !off + 8 + len
    done;
    Core.Append_entries
      {
        term = get_u32 b 1;
        leader_id = get_u32 b 5;
        prev_log_index = get_u32 b 9;
        prev_log_term = get_u32 b 13;
        leader_commit = get_u32 b 17;
        entries = List.rev !entries;
      }
  end
  else if tag = tag_append_entries_resp then begin
    if Bytes.length b < 14 then invalid_arg "Raft.Codec.decode: truncated Append_entries_resp";
    Core.Append_entries_resp
      {
        term = get_u32 b 1;
        success = Bytes.get b 5 = '\001';
        from = get_u32 b 6;
        match_index = get_u32 b 10;
      }
  end
  else invalid_arg "Raft.Codec.decode: unknown tag"
