(** Small bit-twiddling helpers. *)

(** Count of leading zeros of a positive 63-bit OCaml int, counted within
    63 bits (so [clz 1 = 62]). Raises [Invalid_argument] for [v <= 0]. *)
val clz : int -> int

(** Position of the most significant set bit ([msb 1 = 0]). *)
val msb : int -> int
