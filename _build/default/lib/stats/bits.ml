let msb v =
  if v <= 0 then invalid_arg "Bits.msb: requires v > 0";
  let rec go v acc = if v = 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let clz v = 62 - msb v
