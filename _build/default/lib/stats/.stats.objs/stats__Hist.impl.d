lib/stats/hist.ml: Array Bits Float Format Stdlib
