lib/stats/bits.ml:
