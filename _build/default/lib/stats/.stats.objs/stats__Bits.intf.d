lib/stats/bits.mli:
