let sub_bucket_bits = 6
let sub_buckets = 1 lsl sub_bucket_bits (* 64 *)

(* Layout: indexes [0, 64) record values < 64 exactly; block b >= 1 covers
   [2^m, 2^(m+1)) with m = b + 5, split into 64 linear sub-buckets. *)
let num_blocks = 50
let num_buckets = (num_blocks + 1) * sub_buckets

type t = {
  buckets : int array;
  mutable count : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Array.make num_buckets 0; count = 0; total = 0; min_v = max_int; max_v = 0 }

let bucket_index v =
  if v < sub_buckets then v
  else begin
    let m = Bits.msb v in
    let block = m - sub_bucket_bits + 1 in
    let mantissa = (v lsr (m - sub_bucket_bits)) land (sub_buckets - 1) in
    (block * sub_buckets) + mantissa
  end

(* Midpoint of the bucket's value range. *)
let bucket_value idx =
  if idx < sub_buckets then idx
  else begin
    let block = idx / sub_buckets in
    let mantissa = idx mod sub_buckets in
    let m = block + sub_bucket_bits - 1 in
    let low = (1 lsl m) lor (mantissa lsl (m - sub_bucket_bits)) in
    let width = 1 lsl (m - sub_bucket_bits) in
    low + (width / 2)
  end

let record_n t v ~n =
  assert (n > 0);
  let v = if v < 0 then 0 else v in
  let idx = bucket_index v in
  t.buckets.(idx) <- t.buckets.(idx) + n;
  t.count <- t.count + n;
  t.total <- t.total + (v * n);
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let record t v = record_n t v ~n:1

let count t = t.count
let min t = if t.count = 0 then 0 else t.min_v
let max t = t.max_v
let total t = t.total
let mean t = if t.count = 0 then 0. else float_of_int t.total /. float_of_int t.count

let percentile t p =
  if t.count = 0 then invalid_arg "Hist.percentile: empty histogram";
  if p < 0. || p > 100. then invalid_arg "Hist.percentile: p out of range";
  let rank = int_of_float (Float.max 1. (ceil (p /. 100. *. float_of_int t.count))) in
  let acc = ref 0 in
  let result = ref t.max_v in
  (try
     for i = 0 to num_buckets - 1 do
       acc := !acc + t.buckets.(i);
       if !acc >= rank then begin
         result := bucket_value i;
         raise Exit
       end
     done
   with Exit -> ());
  (* Clamp to the observed range: bucket midpoints can exceed the true
     extremes. *)
  Stdlib.min (Stdlib.max !result t.min_v) t.max_v

let median t = percentile t 50.

let merge ~dst ~src =
  Array.iteri (fun i n -> if n > 0 then dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.count <- dst.count + src.count;
  dst.total <- dst.total + src.total;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let clear t =
  Array.fill t.buckets 0 num_buckets 0;
  t.count <- 0;
  t.total <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let pp_summary fmt t =
  if t.count = 0 then Format.fprintf fmt "(empty)"
  else
    Format.fprintf fmt "n=%d p50=%d p99=%d p99.9=%d max=%d" t.count (percentile t 50.)
      (percentile t 99.) (percentile t 99.9) t.max_v
