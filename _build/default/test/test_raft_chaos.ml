(* Randomized Raft safety testing: under random partitions, elections,
   message reordering/loss and client submissions, the core safety
   properties must hold:
   - election safety: at most one leader per term;
   - state-machine safety: no two nodes apply different commands at the
     same index;
   - apply order: every node applies indices 1,2,3,... with no gaps or
     duplicates;
   - commit monotonicity. *)

let check_bool = Alcotest.(check bool)

type world = {
  mutable nodes : string Raft.Core.t array;
  pending : (int * string Raft.Core.msg) Queue.t;
  applied : (int, (int * string) list ref) Hashtbl.t;  (* node -> newest-first *)
  leaders_by_term : (int, int) Hashtbl.t;  (* term -> leader id *)
  mutable reachable : bool array array;
}

let make_world n seed =
  let rng = Sim.Rng.create seed in
  let w =
    {
      nodes = [||];
      pending = Queue.create ();
      applied = Hashtbl.create 8;
      leaders_by_term = Hashtbl.create 8;
      reachable = Array.make_matrix n n true;
    }
  in
  w.nodes <-
    Array.init n (fun id ->
        Hashtbl.replace w.applied id (ref []);
        let peers = Array.of_list (List.filter (fun p -> p <> id) (List.init n Fun.id)) in
        Raft.Core.create ~id ~peers Raft.Core.default_config
          ~send:(fun dst msg ->
            if w.reachable.(id).(dst) then Queue.add (dst, msg) w.pending)
          ~apply:(fun index cmd ->
            let l = Hashtbl.find w.applied id in
            l := (index, cmd) :: !l)
          ~random:(fun bound -> Sim.Rng.int rng bound));
  w

let observe_leaders w =
  Array.iter
    (fun node ->
      if Raft.Core.role node = Raft.Core.Leader then begin
        let term = Raft.Core.term node in
        match Hashtbl.find_opt w.leaders_by_term term with
        | None -> Hashtbl.replace w.leaders_by_term term (Raft.Core.id node)
        | Some other ->
            if other <> Raft.Core.id node then
              Alcotest.failf "two leaders in term %d: %d and %d" term other
                (Raft.Core.id node)
      end)
    w.nodes

(* Deliver up to [k] messages, possibly dropping some. *)
let deliver_some w rng k =
  let i = ref 0 in
  while (not (Queue.is_empty w.pending)) && !i < k do
    incr i;
    let dst, msg = Queue.take w.pending in
    if Sim.Rng.int rng 100 < 90 then Raft.Core.receive w.nodes.(dst) msg;
    observe_leaders w
  done

let random_partition w rng n =
  (* Either heal everything or cut a random bidirectional set. *)
  if Sim.Rng.int rng 3 = 0 then
    w.reachable <- Array.make_matrix n n true
  else begin
    let a = Sim.Rng.int rng n and b = Sim.Rng.int rng n in
    w.reachable.(a).(b) <- false;
    w.reachable.(b).(a) <- false
  end

let check_safety w =
  (* Collect applied sequences oldest-first and compare pairwise. *)
  let seqs =
    Hashtbl.fold (fun id l acc -> (id, List.rev !l) :: acc) w.applied []
  in
  List.iter
    (fun (id, seq) ->
      (* Gapless, duplicate-free, in order. *)
      List.iteri
        (fun i (index, _) ->
          if index <> i + 1 then
            Alcotest.failf "node %d applied index %d at position %d" id index i)
        seq)
    seqs;
  List.iter
    (fun (ida, sa) ->
      List.iter
        (fun (idb, sb) ->
          if ida < idb then
            List.iteri
              (fun i (index, cmd) ->
                match List.nth_opt sb i with
                | Some (index', cmd') ->
                    if index <> index' || cmd <> cmd' then
                      Alcotest.failf "divergence at index %d between nodes %d and %d" index
                        ida idb
                | None -> ())
              sa)
        seqs)
    seqs

let run_chaos ~seed ~steps ~n =
  let w = make_world n seed in
  let rng = Sim.Rng.create (Int64.add seed 1L) in
  let submitted = ref 0 in
  for _ = 1 to steps do
    (match Sim.Rng.int rng 10 with
    | 0 | 1 ->
        (* someone's election timer expires *)
        Raft.Core.periodic
          w.nodes.(Sim.Rng.int rng n)
          ~elapsed_ns:(Raft.Core.default_config.election_timeout_max_ns + 1)
    | 2 ->
        (* heartbeats *)
        Array.iter
          (fun node ->
            Raft.Core.periodic node ~elapsed_ns:(Raft.Core.default_config.heartbeat_ns + 1))
          w.nodes
    | 3 -> random_partition w rng n
    | 4 | 5 | 6 ->
        (* a client tries to submit at a random node *)
        incr submitted;
        ignore
          (Raft.Core.submit
             w.nodes.(Sim.Rng.int rng n)
             (Printf.sprintf "cmd-%d" !submitted))
    | _ -> deliver_some w rng (1 + Sim.Rng.int rng 20));
    observe_leaders w;
    check_safety w
  done;
  (* Heal and let the cluster converge; everything still safe. *)
  w.reachable <- Array.make_matrix n n true;
  for _ = 1 to 20 do
    Array.iter
      (fun node ->
        Raft.Core.periodic node ~elapsed_ns:(Raft.Core.default_config.heartbeat_ns + 1))
      w.nodes;
    deliver_some w rng 10_000
  done;
  check_safety w;
  (* Liveness after healing: some commands committed somewhere. *)
  Array.exists (fun node -> Raft.Core.commit_index node > 0) w.nodes

let test_chaos_3 () =
  let progressed = ref 0 in
  for seed = 1 to 30 do
    if run_chaos ~seed:(Int64.of_int seed) ~steps:300 ~n:3 then incr progressed
  done;
  check_bool "most seeds make progress" true (!progressed > 20)

let test_chaos_5 () =
  let progressed = ref 0 in
  for seed = 100 to 114 do
    if run_chaos ~seed:(Int64.of_int seed) ~steps:400 ~n:5 then incr progressed
  done;
  check_bool "most seeds make progress" true (!progressed > 8)

let suite =
  [
    Alcotest.test_case "chaos: 3 nodes, 30 seeds" `Quick test_chaos_3;
    Alcotest.test_case "chaos: 5 nodes, 15 seeds" `Quick test_chaos_5;
  ]
