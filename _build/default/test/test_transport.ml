(* Sanity checks on the calibrated cluster profiles and the CC dispatch. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let profiles () =
  [
    Transport.Cluster.cx3 ();
    Transport.Cluster.cx4 ();
    Transport.Cluster.cx5 ();
    Transport.Cluster.cx5_ib100 ();
  ]

let test_profiles_well_formed () =
  List.iter
    (fun (c : Transport.Cluster.t) ->
      check_bool (c.name ^ " link rate") true (c.link_gbps > 0.);
      check_bool (c.name ^ " mtu") true (c.mtu >= 1024);
      check_bool (c.name ^ " hosts") true (c.num_hosts >= 2);
      check_bool (c.name ^ " cpu scale") true (c.cpu_scale > 0.5 && c.cpu_scale < 2.0);
      check_bool (c.name ^ " nic latencies positive") true
        (c.nic_config.tx_latency_ns > 0 && c.nic_config.rx_latency_ns > 0);
      (* The RDMA path must remain physical after the calibration delta. *)
      check_bool (c.name ^ " rdma tx nonneg") true
        (c.nic_config.tx_latency_ns - c.rdma_delta_ns >= 0);
      check_bool (c.name ^ " rdma rx nonneg") true
        (c.nic_config.rx_latency_ns + (c.nic_config.rx_jitter_ns / 2) - c.rdma_delta_ns >= 0))
    (profiles ())

let test_default_credits_is_bdp_over_mtu () =
  List.iter
    (fun (c : Transport.Cluster.t) ->
      let credits = Transport.Cluster.default_credits c in
      check_bool (c.name ^ " credits >= 2") true (credits >= 2);
      check_bool
        (Printf.sprintf "%s credits %d ~ BDP/MTU" c.name credits)
        true
        (credits = max 2 (c.bdp_bytes / c.mtu)))
    (profiles ())

let test_infiniband_profiles_lossless () =
  check_bool "CX3 lossless" true (Transport.Cluster.cx3 ()).net_config.lossless;
  check_bool "CX5-IB100 lossless" true (Transport.Cluster.cx5_ib100 ()).net_config.lossless;
  check_bool "CX4 lossy" false (Transport.Cluster.cx4 ()).net_config.lossless;
  check_bool "CX5 lossy" false (Transport.Cluster.cx5 ()).net_config.lossless

let test_session_budget_formula () =
  (* rq_size / credits sessions must be creatable, matching §4.3.1. *)
  List.iter
    (fun (c : Transport.Cluster.t) ->
      let cfg = Erpc.Config.of_cluster c in
      check_bool (c.name ^ " supports many sessions") true
        (c.nic_config.rq_size / cfg.session_credits >= 1_000))
    [ Transport.Cluster.cx4 () ]

let test_cc_dispatch () =
  let cc_timely = Erpc.Config.default_cc ~min_rtt_ns:5_000 in
  let cc_dcqcn = { cc_timely with algo = Erpc.Config.Dcqcn } in
  let t = Erpc.Cc.create cc_timely ~link_gbps:25.0 in
  let d = Erpc.Cc.create cc_dcqcn ~link_gbps:25.0 in
  check_bool "timely variant" true (match t with Erpc.Cc.Timely_cc _ -> true | _ -> false);
  check_bool "dcqcn variant" true (match d with Erpc.Cc.Dcqcn_cc _ -> true | _ -> false);
  (* Timely reacts to RTT, ignores marks below its threshold logic; DCQCN
     reacts to marks, ignores RTT. *)
  Erpc.Cc.on_sample t ~rtt_ns:2_000_000 ~marked:false ~now_ns:0;
  for i = 1 to 16 do
    Erpc.Cc.on_sample t ~rtt_ns:(2_000_000 + (i * 100_000)) ~marked:false ~now_ns:(i * 1_000)
  done;
  check_bool "timely cut on high RTT" true (Erpc.Cc.rate_bps t < 25e9);
  Erpc.Cc.on_sample d ~rtt_ns:2_000_000 ~marked:false ~now_ns:0;
  check_bool "dcqcn ignores RTT" true (Erpc.Cc.uncongested d);
  Erpc.Cc.on_sample d ~rtt_ns:10_000 ~marked:true ~now_ns:100_000;
  check_bool "dcqcn cut on mark" true (Erpc.Cc.rate_bps d < 25e9)

let test_cc_bypass_predicate () =
  let cc = Erpc.Config.default_cc ~min_rtt_ns:5_000 in
  let t = Erpc.Cc.create cc ~link_gbps:25.0 in
  check_bool "uncongested low RTT bypassable" true
    (Erpc.Cc.bypassable t ~rtt_ns:10_000 ~marked:false ~t_low_ns:50_000);
  check_bool "high RTT not bypassable" false
    (Erpc.Cc.bypassable t ~rtt_ns:90_000 ~marked:false ~t_low_ns:50_000);
  let d = Erpc.Cc.create { cc with algo = Erpc.Config.Dcqcn } ~link_gbps:25.0 in
  check_bool "unmarked bypassable for DCQCN" true
    (Erpc.Cc.bypassable d ~rtt_ns:90_000 ~marked:false ~t_low_ns:50_000);
  check_bool "marked not bypassable" false
    (Erpc.Cc.bypassable d ~rtt_ns:10_000 ~marked:true ~t_low_ns:50_000)

let test_config_min_rtt_reasonable () =
  List.iter
    (fun (c : Transport.Cluster.t) ->
      let cfg = Erpc.Config.of_cluster c in
      (* Base RTT estimates sit in the single-digit microseconds, like the
         paper's clusters (3.1-6 us). *)
      check_bool
        (Printf.sprintf "%s min_rtt %d ns" c.name cfg.cc.min_rtt_ns)
        true
        (cfg.cc.min_rtt_ns > 1_000 && cfg.cc.min_rtt_ns < 12_000))
    (profiles ())

let test_wire_overhead_matches_paper () =
  (* 32 B RPCs appear as 92 B packets (§6.3). *)
  List.iter
    (fun (c : Transport.Cluster.t) -> check_int (c.name ^ " overhead") 60 c.wire_overhead)
    (profiles ())

let suite =
  [
    Alcotest.test_case "profiles well-formed" `Quick test_profiles_well_formed;
    Alcotest.test_case "credits = BDP/MTU" `Quick test_default_credits_is_bdp_over_mtu;
    Alcotest.test_case "InfiniBand profiles lossless" `Quick test_infiniband_profiles_lossless;
    Alcotest.test_case "session budget formula" `Quick test_session_budget_formula;
    Alcotest.test_case "cc dispatch" `Quick test_cc_dispatch;
    Alcotest.test_case "cc bypass predicate" `Quick test_cc_bypass_predicate;
    Alcotest.test_case "min RTT reasonable" `Quick test_config_min_rtt_reasonable;
    Alcotest.test_case "wire overhead" `Quick test_wire_overhead_matches_paper;
  ]
