(* Tests for the network fabric: shared-buffer admission, port timing,
   switching, topologies, loss injection. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {2 Buffer pool (dynamic threshold)} *)

let test_pool_basic_admission () =
  let p = Netsim.Buffer_pool.create ~capacity_bytes:1_000 ~alpha:8.0 in
  check_bool "admit small" true (Netsim.Buffer_pool.admit p ~port_queued_bytes:0 ~size:100);
  check_int "used" 100 (Netsim.Buffer_pool.used p);
  check_int "free" 900 (Netsim.Buffer_pool.free p);
  Netsim.Buffer_pool.release p 100;
  check_int "released" 0 (Netsim.Buffer_pool.used p)

let test_pool_rejects_over_capacity () =
  let p = Netsim.Buffer_pool.create ~capacity_bytes:1_000 ~alpha:100.0 in
  check_bool "fill" true (Netsim.Buffer_pool.admit p ~port_queued_bytes:0 ~size:900);
  check_bool "reject overflow" false (Netsim.Buffer_pool.admit p ~port_queued_bytes:0 ~size:200)

let test_pool_dynamic_threshold () =
  (* alpha=1: a port may hold at most as much as remains free. *)
  let p = Netsim.Buffer_pool.create ~capacity_bytes:1_000 ~alpha:1.0 in
  (* Fill 600 from "another port"; free = 400. A port already holding 300
     may not take 200 more (300+200 > 400). *)
  check_bool "other port" true (Netsim.Buffer_pool.admit p ~port_queued_bytes:0 ~size:600);
  check_bool "DT reject" false (Netsim.Buffer_pool.admit p ~port_queued_bytes:300 ~size:200);
  check_bool "DT admit smaller" true (Netsim.Buffer_pool.admit p ~port_queued_bytes:300 ~size:100)

let test_pool_high_water_mark () =
  let p = Netsim.Buffer_pool.create ~capacity_bytes:1_000 ~alpha:8.0 in
  ignore (Netsim.Buffer_pool.admit p ~port_queued_bytes:0 ~size:700);
  Netsim.Buffer_pool.release p 700;
  check_int "max used" 700 (Netsim.Buffer_pool.max_used p)

(* {2 Port} *)

let mk_pkt ?(size = 1_000) ?(flow = 0) ~src ~dst () =
  Netsim.Packet.make ~src ~dst ~size_bytes:size ~flow_hash:flow Netsim.Packet.Empty

let test_port_serialization_timing () =
  let e = Sim.Engine.create () in
  let arrivals = ref [] in
  let port =
    Netsim.Port.create e ~name:"p" ~rate_gbps:8.0 ~extra_delay_ns:100
      ~sink:(fun _ -> arrivals := Sim.Engine.now e :: !arrivals)
      ()
  in
  (* 1000 B at 8 Gbps = 1000 ns serialization + 100 ns propagation. *)
  ignore (Netsim.Port.send port (mk_pkt ~src:0 ~dst:1 ()));
  ignore (Netsim.Port.send port (mk_pkt ~src:0 ~dst:1 ()));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "arrival times" [ 1_100; 2_100 ] (List.rev !arrivals)

let test_port_stats () =
  let e = Sim.Engine.create () in
  let port =
    Netsim.Port.create e ~name:"p" ~rate_gbps:10.0 ~extra_delay_ns:0 ~sink:(fun _ -> ()) ()
  in
  for _ = 1 to 5 do
    ignore (Netsim.Port.send port (mk_pkt ~src:0 ~dst:1 ~size:500 ()))
  done;
  Sim.Engine.run e;
  check_int "tx packets" 5 (Netsim.Port.tx_packets port);
  check_int "tx bytes" 2_500 (Netsim.Port.tx_bytes port);
  check_int "queue drained" 0 (Netsim.Port.queued_bytes port)

let test_port_drops_when_pool_full () =
  let e = Sim.Engine.create () in
  let pool = Netsim.Buffer_pool.create ~capacity_bytes:2_000 ~alpha:100.0 in
  let port =
    Netsim.Port.create e ~name:"p" ~rate_gbps:0.008 (* 1 B/us: very slow *) ~extra_delay_ns:0
      ~pool ~sink:(fun _ -> ()) ()
  in
  let sent = ref 0 in
  for _ = 1 to 5 do
    if Netsim.Port.send port (mk_pkt ~src:0 ~dst:1 ~size:1_000 ()) then incr sent
  done;
  check_int "only 2 admitted" 2 !sent;
  check_int "3 dropped" 3 (Netsim.Port.dropped_packets port);
  check_int "dropped bytes" 3_000 (Netsim.Port.dropped_bytes port)

let test_port_queue_delay () =
  let e = Sim.Engine.create () in
  let port =
    Netsim.Port.create e ~name:"p" ~rate_gbps:8.0 ~extra_delay_ns:0 ~sink:(fun _ -> ()) ()
  in
  ignore (Netsim.Port.send port (mk_pkt ~src:0 ~dst:1 ~size:1_000 ()));
  ignore (Netsim.Port.send port (mk_pkt ~src:0 ~dst:1 ~size:1_000 ()));
  check_int "2000 B at 8 Gbps" 2_000 (Netsim.Port.queue_delay port)

(* {2 Switch} *)

let test_switch_routes_by_destination () =
  let e = Sim.Engine.create () in
  let sw = Netsim.Switch.create e ~name:"sw" ~latency_ns:300 ~buffer_bytes:1_000_000 ~alpha:8.0 in
  let got = Array.make 2 0 in
  let add_port i =
    let p =
      Netsim.Port.create e ~name:(string_of_int i) ~rate_gbps:10.0 ~extra_delay_ns:0
        ~pool:(Netsim.Switch.pool sw)
        ~sink:(fun _ -> got.(i) <- got.(i) + 1)
        ()
    in
    Netsim.Switch.add_port sw p
  in
  let p0 = add_port 0 and p1 = add_port 1 in
  Netsim.Switch.set_route sw ~dst:10 ~ports:[| p0 |];
  Netsim.Switch.set_route sw ~dst:11 ~ports:[| p1 |];
  Netsim.Switch.receive sw (mk_pkt ~src:0 ~dst:10 ());
  Netsim.Switch.receive sw (mk_pkt ~src:0 ~dst:11 ());
  Netsim.Switch.receive sw (mk_pkt ~src:0 ~dst:11 ());
  Sim.Engine.run e;
  check_int "port0" 1 got.(0);
  check_int "port1" 2 got.(1)

let test_switch_no_route_raises () =
  let e = Sim.Engine.create () in
  let sw = Netsim.Switch.create e ~name:"sw" ~latency_ns:0 ~buffer_bytes:1_000 ~alpha:1.0 in
  Alcotest.check_raises "no route" (Invalid_argument "Switch sw: no route for host 5") (fun () ->
      Netsim.Switch.receive sw (mk_pkt ~src:0 ~dst:5 ()))

let test_switch_ecmp_spreads_flows () =
  let e = Sim.Engine.create () in
  let sw = Netsim.Switch.create e ~name:"sw" ~latency_ns:0 ~buffer_bytes:10_000_000 ~alpha:8.0 in
  let counts = Array.make 4 0 in
  let ports =
    Array.init 4 (fun i ->
        let p =
          Netsim.Port.create e ~name:(string_of_int i) ~rate_gbps:100.0 ~extra_delay_ns:0
            ~pool:(Netsim.Switch.pool sw)
            ~sink:(fun _ -> counts.(i) <- counts.(i) + 1)
            ()
        in
        Netsim.Switch.add_port sw p)
  in
  Netsim.Switch.set_route sw ~dst:1 ~ports;
  (* 400 flows, one packet each. *)
  for flow = 0 to 399 do
    Netsim.Switch.receive sw (mk_pkt ~src:0 ~dst:1 ~flow ())
  done;
  Sim.Engine.run e;
  Array.iteri
    (fun i c -> check_bool (Printf.sprintf "port %d got %d" i c) true (c > 50 && c < 150))
    counts;
  (* Same flow always takes the same port (no reordering across paths). *)
  let before = Array.copy counts in
  for _ = 1 to 10 do
    Netsim.Switch.receive sw (mk_pkt ~src:0 ~dst:1 ~flow:7 ())
  done;
  Sim.Engine.run e;
  let diffs = ref 0 in
  Array.iteri (fun i c -> if c <> before.(i) then incr diffs) counts;
  check_int "single port absorbed the flow" 1 !diffs

(* {2 Network topologies} *)

let test_single_switch_delivery () =
  let e = Sim.Engine.create () in
  let cfg =
    { Netsim.Network.default_config with topology = Netsim.Network.Single_switch { hosts = 4 } }
  in
  let net = Netsim.Network.create e cfg in
  check_int "hosts" 4 (Netsim.Network.num_hosts net);
  let received = Array.make 4 0 in
  for h = 0 to 3 do
    Netsim.Network.attach net ~host:h ~rx:(fun _ -> received.(h) <- received.(h) + 1)
  done;
  for dst = 1 to 3 do
    Netsim.Network.send net (mk_pkt ~src:0 ~dst ())
  done;
  Sim.Engine.run e;
  Alcotest.(check (array int)) "one each" [| 0; 1; 1; 1 |] received

let two_tier_cfg ~hosts_per_tor =
  {
    Netsim.Network.default_config with
    topology =
      Netsim.Network.Two_tier
        { tors = 3; hosts_per_tor; spines = 1; uplinks_per_tor = 2; uplink_gbps = 100.0 };
  }

let test_two_tier_all_pairs () =
  let e = Sim.Engine.create () in
  let net = Netsim.Network.create e (two_tier_cfg ~hosts_per_tor:3) in
  let n = Netsim.Network.num_hosts net in
  check_int "9 hosts" 9 n;
  let received = Array.make_matrix n n 0 in
  for h = 0 to n - 1 do
    Netsim.Network.attach net ~host:h ~rx:(fun pkt ->
        received.(pkt.Netsim.Packet.src).(h) <- received.(pkt.Netsim.Packet.src).(h) + 1)
  done;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then Netsim.Network.send net (mk_pkt ~src ~dst ~flow:(src * dst) ())
    done
  done;
  Sim.Engine.run e;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        check_int (Printf.sprintf "%d->%d" src dst) 1 received.(src).(dst)
    done
  done

let test_two_tier_same_tor () =
  let e = Sim.Engine.create () in
  let net = Netsim.Network.create e (two_tier_cfg ~hosts_per_tor:3) in
  check_bool "0,2 same tor" true (Netsim.Network.same_tor net 0 2);
  check_bool "0,3 different tor" false (Netsim.Network.same_tor net 0 3)

let test_cross_tor_slower_than_same_tor () =
  let e = Sim.Engine.create () in
  let net = Netsim.Network.create e (two_tier_cfg ~hosts_per_tor:3) in
  let arrival = Hashtbl.create 4 in
  List.iter
    (fun h -> Netsim.Network.attach net ~host:h ~rx:(fun _ -> Hashtbl.replace arrival h (Sim.Engine.now e)))
    [ 1; 3 ];
  Netsim.Network.send net (mk_pkt ~src:0 ~dst:1 ());
  Netsim.Network.send net (mk_pkt ~src:0 ~dst:3 ());
  Sim.Engine.run e;
  let t_same = Hashtbl.find arrival 1 and t_cross = Hashtbl.find arrival 3 in
  check_bool
    (Printf.sprintf "cross-ToR %d > same-ToR %d" t_cross t_same)
    true (t_cross > t_same)

let test_loss_injection () =
  let e = Sim.Engine.create () in
  let cfg =
    { Netsim.Network.default_config with topology = Netsim.Network.Single_switch { hosts = 2 } }
  in
  let net = Netsim.Network.create e cfg in
  let got = ref 0 in
  Netsim.Network.attach net ~host:1 ~rx:(fun _ -> incr got);
  Netsim.Network.attach net ~host:0 ~rx:(fun _ -> ());
  Netsim.Network.set_loss_prob net 0.5;
  let n = 10_000 in
  for _ = 1 to n do
    Netsim.Network.send net (mk_pkt ~src:0 ~dst:1 ~size:100 ())
  done;
  Sim.Engine.run e;
  check_int "conservation" n (!got + Netsim.Network.injected_losses net);
  let ratio = float_of_int !got /. float_of_int n in
  check_bool (Printf.sprintf "half delivered (%.2f)" ratio) true (abs_float (ratio -. 0.5) < 0.05)

let test_victim_port_accessor () =
  let e = Sim.Engine.create () in
  let net = Netsim.Network.create e (two_tier_cfg ~hosts_per_tor:3) in
  let port = Netsim.Network.tor_downlink_port net ~host:4 in
  check_bool "named for host" true
    (String.length (Netsim.Port.name port) > 0
    && String.length (Netsim.Port.name port) >= 2)

let suite =
  [
    Alcotest.test_case "pool admission" `Quick test_pool_basic_admission;
    Alcotest.test_case "pool capacity" `Quick test_pool_rejects_over_capacity;
    Alcotest.test_case "pool dynamic threshold" `Quick test_pool_dynamic_threshold;
    Alcotest.test_case "pool high-water mark" `Quick test_pool_high_water_mark;
    Alcotest.test_case "port serialization" `Quick test_port_serialization_timing;
    Alcotest.test_case "port stats" `Quick test_port_stats;
    Alcotest.test_case "port drops on full pool" `Quick test_port_drops_when_pool_full;
    Alcotest.test_case "port queue delay" `Quick test_port_queue_delay;
    Alcotest.test_case "switch routing" `Quick test_switch_routes_by_destination;
    Alcotest.test_case "switch no route" `Quick test_switch_no_route_raises;
    Alcotest.test_case "switch ECMP" `Quick test_switch_ecmp_spreads_flows;
    Alcotest.test_case "single switch delivery" `Quick test_single_switch_delivery;
    Alcotest.test_case "two-tier all pairs" `Quick test_two_tier_all_pairs;
    Alcotest.test_case "two-tier same_tor" `Quick test_two_tier_same_tor;
    Alcotest.test_case "cross-ToR latency" `Quick test_cross_tor_slower_than_same_tor;
    Alcotest.test_case "loss injection" `Quick test_loss_injection;
    Alcotest.test_case "victim port accessor" `Quick test_victim_port_accessor;
  ]
