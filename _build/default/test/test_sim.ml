(* Unit and property tests for the simulation substrate: time, RNG, event
   queue, engine, timers, CPU timelines. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {2 Time} *)

let test_time_conversions () =
  check_int "us" 1_500 (Sim.Time.us 1.5);
  check_int "ms" 2_000_000 (Sim.Time.ms 2.0);
  check_int "s" 3_000_000_000 (Sim.Time.s 3.0);
  Alcotest.(check (float 1e-9)) "to_us" 1.5 (Sim.Time.to_us 1_500);
  Alcotest.(check (float 1e-9)) "to_ms" 2.0 (Sim.Time.to_ms 2_000_000);
  check_int "add" 30 (Sim.Time.add 10 20);
  check_int "sub" 7 (Sim.Time.sub 17 10)

let test_serialization_delay () =
  (* 1000 bytes at 8 Gbps = 1000 ns. *)
  check_int "1000B @ 8Gbps" 1_000 (Sim.Time.of_bytes_at_gbps 1000 8.0);
  (* 92 bytes at 25 Gbps = 29.44 -> 30 ns (rounded up). *)
  check_int "92B @ 25Gbps" 30 (Sim.Time.of_bytes_at_gbps 92 25.0);
  check_int "rounding up" 1 (Sim.Time.of_bytes_at_gbps 1 1000.0)

(* {2 Rng} *)

let test_rng_determinism () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 7L in
  for _ = 1 to 100 do
    check_bool "same stream" true (Sim.Rng.next a = Sim.Rng.next b)
  done

let test_rng_split_independent () =
  let a = Sim.Rng.create 7L in
  let c = Sim.Rng.split a in
  let v1 = Sim.Rng.next a and v2 = Sim.Rng.next c in
  check_bool "split streams differ" true (v1 <> v2)

let test_rng_int_bounds () =
  let r = Sim.Rng.create 3L in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let r = Sim.Rng.create 4L in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.float r in
    check_bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_rng_uniformity () =
  let r = Sim.Rng.create 5L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Sim.Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "bucket %d count %d within 5%% of %d" i c (n / 10))
        true
        (abs (c - (n / 10)) < n / 200))
    buckets

let test_rng_bernoulli () =
  let r = Sim.Rng.create 6L in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Sim.Rng.bool_with_prob r 0.3 then incr hits
  done;
  let ratio = float_of_int !hits /. float_of_int n in
  check_bool (Printf.sprintf "p=0.3 measured %.3f" ratio) true (abs_float (ratio -. 0.3) < 0.01)

(* {2 Event queue} *)

let test_event_queue_ordering () =
  let q = Sim.Event_queue.create () in
  let rng = Sim.Rng.create 8L in
  for i = 0 to 999 do
    Sim.Event_queue.push q (Sim.Rng.int rng 10_000) i
  done;
  check_int "length" 1_000 (Sim.Event_queue.length q);
  let last = ref min_int in
  for _ = 1 to 1_000 do
    match Sim.Event_queue.pop q with
    | None -> Alcotest.fail "queue exhausted early"
    | Some (t, _) ->
        check_bool "non-decreasing" true (t >= !last);
        last := t
  done;
  check_bool "empty at end" true (Sim.Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  for i = 0 to 99 do
    Sim.Event_queue.push q 42 i
  done;
  for i = 0 to 99 do
    match Sim.Event_queue.pop q with
    | Some (42, v) -> check_int "insertion order among ties" i v
    | _ -> Alcotest.fail "wrong pop"
  done

let test_event_queue_peek () =
  let q = Sim.Event_queue.create () in
  check_bool "peek empty" true (Sim.Event_queue.peek_time q = None);
  Sim.Event_queue.push q 5 ();
  Sim.Event_queue.push q 3 ();
  check_bool "peek min" true (Sim.Event_queue.peek_time q = Some 3)

let test_event_queue_interleaved () =
  (* Property: popping after interleaved pushes still yields sorted order. *)
  let prop =
    QCheck2.Test.make ~name:"event_queue sorted under interleaving" ~count:200
      QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 1_000_000))
      (fun times ->
        let q = Sim.Event_queue.create () in
        let popped = ref [] in
        List.iteri
          (fun i t ->
            Sim.Event_queue.push q t i;
            if i mod 3 = 2 then
              match Sim.Event_queue.pop q with
              | Some (t, _) -> popped := t :: !popped
              | None -> ())
          times;
        let rec drain () =
          match Sim.Event_queue.pop q with
          | Some (t, _) ->
              popped := t :: !popped;
              drain ()
          | None -> ()
        in
        drain ();
        (* Each drain segment is sorted relative to elements popped later
           than it... the global guarantee: every popped time >= any time
           popped before it from the same queue state. Weak check: the
           total multiset is preserved. *)
        List.sort compare !popped = List.sort compare times)
  in
  QCheck_alcotest.to_alcotest prop

(* {2 Engine} *)

let test_engine_runs_in_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e 30 (fun () -> log := 30 :: !log);
  Sim.Engine.schedule e 10 (fun () -> log := 10 :: !log);
  Sim.Engine.schedule e 20 (fun () -> log := 20 :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "order" [ 10; 20; 30 ] (List.rev !log);
  check_int "clock at last event" 30 (Sim.Engine.now e)

let test_engine_schedule_past_raises () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e 100 (fun () -> ());
  Sim.Engine.run e;
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Engine.schedule: time 50 ns is before now 100 ns") (fun () ->
      Sim.Engine.schedule e 50 (fun () -> ()))

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  List.iter (fun t -> Sim.Engine.schedule e t (fun () -> fired := t :: !fired)) [ 10; 20; 30; 40 ];
  Sim.Engine.run_until e 25;
  Alcotest.(check (list int)) "fired up to horizon" [ 10; 20 ] (List.rev !fired);
  check_int "clock at horizon" 25 (Sim.Engine.now e);
  Sim.Engine.run_until e 100;
  Alcotest.(check (list int)) "rest fired" [ 10; 20; 30; 40 ] (List.rev !fired)

let test_engine_cascading_events () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Sim.Engine.schedule_after e 5 (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 10;
  Sim.Engine.run e;
  check_int "all chained events" 10 !count;
  check_int "clock" 50 (Sim.Engine.now e)

(* {2 Timer} *)

let test_timer_fires_once () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let t = Sim.Timer.create e ~callback:(fun () -> incr fired) in
  Sim.Timer.arm t 100;
  Sim.Engine.run e;
  check_int "fired once" 1 !fired;
  check_bool "disarmed after fire" false (Sim.Timer.is_armed t)

let test_timer_rearm_replaces () =
  let e = Sim.Engine.create () in
  let fired_at = ref [] in
  let t = Sim.Timer.create e ~callback:(fun () -> fired_at := Sim.Engine.now e :: !fired_at) in
  Sim.Timer.arm t 100;
  Sim.Timer.arm t 200;
  (* re-arm replaces *)
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fires only at new deadline" [ 200 ] !fired_at

let test_timer_disarm () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let t = Sim.Timer.create e ~callback:(fun () -> incr fired) in
  Sim.Timer.arm t 100;
  Sim.Timer.disarm t;
  Sim.Engine.run e;
  check_int "never fires" 0 !fired

let test_timer_disarm_then_rearm () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let t = Sim.Timer.create e ~callback:(fun () -> incr fired) in
  Sim.Timer.arm t 100;
  Sim.Timer.disarm t;
  Sim.Timer.arm_after t 300;
  Sim.Engine.run e;
  check_int "fires once after rearm" 1 !fired;
  check_int "at rearmed deadline" 300 (Sim.Engine.now e)

let test_timer_deadline () =
  let e = Sim.Engine.create () in
  let t = Sim.Timer.create e ~callback:(fun () -> ()) in
  Sim.Timer.arm t 123;
  check_int "deadline" 123 (Sim.Timer.deadline t);
  Sim.Timer.disarm t;
  Alcotest.check_raises "deadline of unarmed" (Invalid_argument "Timer.deadline: timer not armed")
    (fun () -> ignore (Sim.Timer.deadline t))

(* {2 Cpu} *)

let test_cpu_charges_extend () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c0" in
  let t1 = Sim.Cpu.charge cpu 100 in
  check_int "first charge ends at 100" 100 t1;
  let t2 = Sim.Cpu.charge cpu 50 in
  check_int "second charge is serialized" 150 t2;
  check_int "busy total" 150 (Sim.Cpu.busy_ns cpu)

let test_cpu_idle_gap () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c0" in
  ignore (Sim.Cpu.charge cpu 10);
  Sim.Engine.schedule e 1_000 (fun () -> ignore (Sim.Cpu.charge cpu 10));
  Sim.Engine.run e;
  (* Work submitted at t=1000 starts then, not at 20. *)
  check_int "next_free" 1_010 (Sim.Cpu.next_free cpu);
  check_int "busy" 20 (Sim.Cpu.busy_ns cpu)

let test_cpu_utilization () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c0" in
  Sim.Engine.schedule e 1_000 (fun () -> ());
  Sim.Engine.run e;
  ignore (Sim.Cpu.charge cpu 500);
  let u = Sim.Cpu.utilization cpu in
  check_bool (Printf.sprintf "utilization 0.5 got %.2f" u) true (abs_float (u -. 0.5) < 0.01)

let suite =
  [
    Alcotest.test_case "time conversions" `Quick test_time_conversions;
    Alcotest.test_case "serialization delay" `Quick test_serialization_delay;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "rng bernoulli" `Quick test_rng_bernoulli;
    Alcotest.test_case "event queue ordering" `Quick test_event_queue_ordering;
    Alcotest.test_case "event queue FIFO ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "event queue peek" `Quick test_event_queue_peek;
    test_event_queue_interleaved ();
    Alcotest.test_case "engine order" `Quick test_engine_runs_in_order;
    Alcotest.test_case "engine rejects past" `Quick test_engine_schedule_past_raises;
    Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
    Alcotest.test_case "engine cascading" `Quick test_engine_cascading_events;
    Alcotest.test_case "timer fires once" `Quick test_timer_fires_once;
    Alcotest.test_case "timer rearm replaces" `Quick test_timer_rearm_replaces;
    Alcotest.test_case "timer disarm" `Quick test_timer_disarm;
    Alcotest.test_case "timer disarm+rearm" `Quick test_timer_disarm_then_rearm;
    Alcotest.test_case "timer deadline" `Quick test_timer_deadline;
    Alcotest.test_case "cpu charges serialize" `Quick test_cpu_charges_extend;
    Alcotest.test_case "cpu idle gap" `Quick test_cpu_idle_gap;
    Alcotest.test_case "cpu utilization" `Quick test_cpu_utilization;
  ]
