(* Tests for message buffers: bounds, ownership transitions, zero-copy
   views, data accessors. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_alloc_defaults () =
  let m = Erpc.Msgbuf.alloc ~max_size:128 in
  check_int "max" 128 (Erpc.Msgbuf.max_size m);
  check_int "size starts at max" 128 (Erpc.Msgbuf.size m);
  check_bool "app owned" true (Erpc.Msgbuf.owner m = Erpc.Msgbuf.Owned_by_app);
  check_bool "not a view" false (Erpc.Msgbuf.is_view m)

let test_resize_bounds () =
  let m = Erpc.Msgbuf.alloc ~max_size:100 in
  Erpc.Msgbuf.resize m 50;
  check_int "resized" 50 (Erpc.Msgbuf.size m);
  Alcotest.check_raises "too large" (Invalid_argument "Msgbuf.resize: size out of bounds")
    (fun () -> Erpc.Msgbuf.resize m 101);
  Alcotest.check_raises "negative" (Invalid_argument "Msgbuf.resize: size out of bounds")
    (fun () -> Erpc.Msgbuf.resize m (-1))

let test_num_pkts () =
  let m = Erpc.Msgbuf.alloc ~max_size:5_000 in
  check_int "5000/1024 -> 5 pkts" 5 (Erpc.Msgbuf.num_pkts m ~mtu:1024);
  Erpc.Msgbuf.resize m 1024;
  check_int "exactly one MTU" 1 (Erpc.Msgbuf.num_pkts m ~mtu:1024);
  Erpc.Msgbuf.resize m 1025;
  check_int "one byte over" 2 (Erpc.Msgbuf.num_pkts m ~mtu:1024);
  Erpc.Msgbuf.resize m 0;
  check_int "empty message still one pkt" 1 (Erpc.Msgbuf.num_pkts m ~mtu:1024)

let test_string_roundtrip () =
  let m = Erpc.Msgbuf.alloc ~max_size:64 in
  Erpc.Msgbuf.write_string m ~off:10 "hello";
  check_str "roundtrip" "hello" (Erpc.Msgbuf.read_string m ~off:10 ~len:5)

let test_int_accessors () =
  let m = Erpc.Msgbuf.alloc ~max_size:64 in
  Erpc.Msgbuf.set_u32 m ~off:0 0xDEADBEEF;
  check_int "u32" 0xDEADBEEF (Erpc.Msgbuf.get_u32 m ~off:0);
  Erpc.Msgbuf.set_u64 m ~off:8 123_456_789_012_345;
  check_int "u64" 123_456_789_012_345 (Erpc.Msgbuf.get_u64 m ~off:8)

let test_bounds_checked () =
  let m = Erpc.Msgbuf.alloc ~max_size:8 in
  Alcotest.check_raises "write oob"
    (Invalid_argument "Msgbuf.write_string: out of bounds (off=5 len=5 max=8)") (fun () ->
      Erpc.Msgbuf.write_string m ~off:5 "hello");
  Alcotest.check_raises "read oob"
    (Invalid_argument "Msgbuf.read_string: out of bounds (off=0 len=9 max=8)") (fun () ->
      ignore (Erpc.Msgbuf.read_string m ~off:0 ~len:9))

let test_ownership_transitions () =
  let m = Erpc.Msgbuf.alloc ~max_size:8 in
  Erpc.Msgbuf.take_for_erpc m;
  check_bool "erpc owned" true (Erpc.Msgbuf.owner m = Erpc.Msgbuf.Owned_by_erpc);
  Alcotest.check_raises "double take"
    (Invalid_argument
       "Msgbuf: buffer already owned by eRPC (double enqueue or reuse before continuation)")
    (fun () -> Erpc.Msgbuf.take_for_erpc m);
  Erpc.Msgbuf.return_to_app m;
  check_bool "back to app" true (Erpc.Msgbuf.owner m = Erpc.Msgbuf.Owned_by_app);
  Alcotest.check_raises "double return"
    (Invalid_argument "Msgbuf: returning a buffer that eRPC does not own") (fun () ->
      Erpc.Msgbuf.return_to_app m)

let test_writes_blocked_in_flight () =
  let m = Erpc.Msgbuf.alloc ~max_size:8 in
  Erpc.Msgbuf.take_for_erpc m;
  Alcotest.check_raises "write while in flight"
    (Invalid_argument
       "Msgbuf.write_string: buffer is in flight (owned by eRPC); wait for the continuation")
    (fun () -> Erpc.Msgbuf.write_string m ~off:0 "x");
  (* Reads are allowed (the app may inspect, e.g. for logging). *)
  ignore (Erpc.Msgbuf.read_string m ~off:0 ~len:1)

let test_view_semantics () =
  let backing = Bytes.of_string "0123456789" in
  let v = Erpc.Msgbuf.view backing ~off:2 ~len:5 in
  check_bool "view flag" true (Erpc.Msgbuf.is_view v);
  check_int "view size" 5 (Erpc.Msgbuf.size v);
  check_str "view aliases backing" "23456" (Erpc.Msgbuf.read_string v ~off:0 ~len:5);
  (* Zero-copy: mutating the backing shows through. *)
  Bytes.set backing 2 'X';
  check_str "aliased" "X3456" (Erpc.Msgbuf.read_string v ~off:0 ~len:5)

let test_blit () =
  let a = Erpc.Msgbuf.alloc ~max_size:16 in
  let b = Erpc.Msgbuf.alloc ~max_size:16 in
  Erpc.Msgbuf.write_string a ~off:0 "abcdefgh";
  Erpc.Msgbuf.blit ~src:a ~src_off:2 ~dst:b ~dst_off:0 ~len:4;
  check_str "blit" "cdef" (Erpc.Msgbuf.read_string b ~off:0 ~len:4)

let test_unsafe_set_size () =
  let m = Erpc.Msgbuf.alloc ~max_size:16 in
  Erpc.Msgbuf.take_for_erpc m;
  (* library-internal resize works on eRPC-owned buffers *)
  Erpc.Msgbuf.unsafe_set_size m 7;
  check_int "internal resize" 7 (Erpc.Msgbuf.size m)

let suite =
  [
    Alcotest.test_case "alloc defaults" `Quick test_alloc_defaults;
    Alcotest.test_case "resize bounds" `Quick test_resize_bounds;
    Alcotest.test_case "num_pkts" `Quick test_num_pkts;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "int accessors" `Quick test_int_accessors;
    Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
    Alcotest.test_case "ownership transitions" `Quick test_ownership_transitions;
    Alcotest.test_case "writes blocked in flight" `Quick test_writes_blocked_in_flight;
    Alcotest.test_case "view semantics" `Quick test_view_semantics;
    Alcotest.test_case "blit" `Quick test_blit;
    Alcotest.test_case "unsafe_set_size" `Quick test_unsafe_set_size;
  ]
