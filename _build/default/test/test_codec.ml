(* Tests for the typed marshalling layer, including qcheck roundtrips. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let roundtrip c v = Codec.of_bytes c (Codec.to_bytes c v)

let test_primitives () =
  check_int "u8" 200 (roundtrip Codec.u8 200);
  check_int "u16" 60_000 (roundtrip Codec.u16 60_000);
  check_int "u32" 0xDEADBEEF (roundtrip Codec.u32 0xDEADBEEF);
  check_int "u64" 123_456_789_012_345 (roundtrip Codec.u64 123_456_789_012_345);
  check_bool "bool t" true (roundtrip Codec.bool true);
  check_bool "bool f" false (roundtrip Codec.bool false);
  Alcotest.(check string) "string" "hello" (roundtrip Codec.string "hello");
  Alcotest.(check string) "fixed" "16-byte-string!!" (roundtrip (Codec.fixed_string 16) "16-byte-string!!")

let test_range_checks () =
  Alcotest.check_raises "u8 range" (Invalid_argument "Codec.u8: out of range") (fun () ->
      ignore (Codec.to_bytes Codec.u8 256));
  Alcotest.check_raises "fixed width" (Invalid_argument "Codec.fixed_string: expected 4 bytes, got 3")
    (fun () -> ignore (Codec.to_bytes (Codec.fixed_string 4) "abc"))

let test_combinators () =
  let c = Codec.(pair u32 (list string)) in
  let v = (42, [ "a"; "bb"; "" ]) in
  check_bool "pair+list" true (roundtrip c v = v);
  let t = Codec.(triple bool u16 string) in
  let tv = (true, 7, "x") in
  check_bool "triple" true (roundtrip t tv = tv);
  check_bool "option none" true (roundtrip Codec.(option u32) None = None);
  check_bool "option some" true (roundtrip Codec.(option u32) (Some 9) = Some 9);
  check_bool "array" true (roundtrip Codec.(array u8) [| 1; 2; 3 |] = [| 1; 2; 3 |])

let test_map () =
  (* A record codec built with map. *)
  let c =
    Codec.map
      ~into:(fun (k, v) -> `Put (k, v))
      ~from:(fun (`Put (k, v)) -> (k, v))
      Codec.(pair string string)
  in
  check_bool "mapped record" true (roundtrip c (`Put ("key", "value")) = `Put ("key", "value"))

let test_sizes_exact () =
  check_int "u32 size" 4 (Codec.size Codec.u32 0);
  check_int "string size" (4 + 5) (Codec.size Codec.string "hello");
  check_int "list size" (4 + (2 * 4)) (Codec.size Codec.(list u32) [ 1; 2 ]);
  check_int "option none size" 1 (Codec.size Codec.(option u64) None)

let test_truncation_raises () =
  let b = Codec.to_bytes Codec.string "hello world" in
  let truncated = Bytes.sub b 0 6 in
  check_bool "decode error" true
    (try
       ignore (Codec.of_bytes Codec.string truncated);
       false
     with Codec.Decode_error _ -> true)

let test_msgbuf_io () =
  let c = Codec.(pair u32 string) in
  let m = Erpc.Msgbuf.alloc ~max_size:64 in
  Codec.write c m (7, "payload");
  check_int "msgbuf resized to exact size" (4 + 4 + 7) (Erpc.Msgbuf.size m);
  check_bool "read back" true (Codec.read c m = (7, "payload"))

let test_alloc_and_write () =
  let m = Codec.alloc_and_write Codec.string "x" in
  check_int "exact allocation" 5 (Erpc.Msgbuf.max_size m)

let qcheck_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 50)
        (triple (int_range 0 0xFFFFFFFF) (small_string ~gen:printable) bool))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"codec roundtrip (list of triples)" ~count:300 gen (fun v ->
         roundtrip Codec.(list (triple u32 string bool)) v = v))

let qcheck_nested =
  let c = Codec.(option (pair (list u16) string)) in
  let gen =
    QCheck2.Gen.(
      option (pair (list_size (int_range 0 20) (int_range 0 0xFFFF)) (small_string ~gen:printable)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"codec roundtrip (nested option)" ~count:300 gen (fun v ->
         roundtrip c v = v))

(* End to end: a typed RPC using the codec layer over eRPC. *)
let test_typed_rpc_over_erpc () =
  let request_codec = Codec.(pair string (list u32)) in
  let response_codec = Codec.u64 in
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  (* Server: sum the numbers if the tag matches. *)
  Erpc.Nexus.register_handler nx1 ~req_type:5 ~mode:Erpc.Nexus.Dispatch (fun h ->
      let tag, numbers = Codec.read request_codec (Erpc.Req_handle.get_request h) in
      let sum = if tag = "sum" then List.fold_left ( + ) 0 numbers else 0 in
      let resp = Erpc.Req_handle.init_response h ~size:(Codec.size response_codec sum) in
      Codec.write response_codec resp sum;
      Erpc.Req_handle.enqueue_response h resp);
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.ms 1.0);
  let req = Codec.alloc_and_write request_codec ("sum", [ 1; 2; 3; 4; 5 ]) in
  let resp = Erpc.Msgbuf.alloc ~max_size:8 in
  let answer = ref 0 in
  Erpc.Rpc.enqueue_request client sess ~req_type:5 ~req ~resp ~cont:(fun _ ->
      answer := Codec.read response_codec resp);
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 5.0));
  check_int "typed RPC answer" 15 !answer

let suite =
  [
    Alcotest.test_case "primitives" `Quick test_primitives;
    Alcotest.test_case "range checks" `Quick test_range_checks;
    Alcotest.test_case "combinators" `Quick test_combinators;
    Alcotest.test_case "map" `Quick test_map;
    Alcotest.test_case "sizes exact" `Quick test_sizes_exact;
    Alcotest.test_case "truncation raises" `Quick test_truncation_raises;
    Alcotest.test_case "msgbuf io" `Quick test_msgbuf_io;
    Alcotest.test_case "alloc_and_write" `Quick test_alloc_and_write;
    qcheck_roundtrip;
    qcheck_nested;
    Alcotest.test_case "typed RPC over eRPC" `Quick test_typed_rpc_over_erpc;
  ]
