(* Tests for workload generators. *)

let check_bool = Alcotest.(check bool)

let test_uniform_bounds () =
  let g = Workload.Keygen.uniform ~n:100 in
  let rng = Sim.Rng.create 1L in
  for _ = 1 to 10_000 do
    let k = Workload.Keygen.next g rng in
    check_bool "bounds" true (k >= 0 && k < 100)
  done

let test_uniform_covers_space () =
  let g = Workload.Keygen.uniform ~n:10 in
  let rng = Sim.Rng.create 2L in
  let seen = Array.make 10 false in
  for _ = 1 to 1_000 do
    seen.(Workload.Keygen.next g rng) <- true
  done;
  check_bool "all keys seen" true (Array.for_all Fun.id seen)

let test_zipf_bounds () =
  let g = Workload.Keygen.zipf ~n:1_000 ~theta:0.99 in
  let rng = Sim.Rng.create 3L in
  for _ = 1 to 10_000 do
    let k = Workload.Keygen.next g rng in
    check_bool "bounds" true (k >= 0 && k < 1_000)
  done

let test_zipf_is_skewed () =
  let n = 1_000 in
  let g = Workload.Keygen.zipf ~n ~theta:0.99 in
  let rng = Sim.Rng.create 4L in
  let counts = Array.make n 0 in
  let total = 100_000 in
  for _ = 1 to total do
    let k = Workload.Keygen.next g rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* YCSB zipf(0.99): the hottest key draws far more than uniform share
     (which would be 100 here). *)
  check_bool
    (Printf.sprintf "hot key %d" counts.(0))
    true
    (counts.(0) > 10 * (total / n));
  (* And the tail is cold. *)
  let tail = Array.fold_left ( + ) 0 (Array.sub counts (n / 2) (n / 2)) in
  check_bool "cold tail" true (tail < total / 4)

let test_encode () =
  Alcotest.(check string) "default width" "0000000000000042" (Workload.Keygen.encode 42);
  Alcotest.(check string) "width 8" "00000042" (Workload.Keygen.encode ~width:8 42);
  Alcotest.(check int) "fixed length" 16 (String.length (Workload.Keygen.encode 123456));
  (* Lexicographic order matches numeric order. *)
  check_bool "order preserved" true
    (String.compare (Workload.Keygen.encode 99) (Workload.Keygen.encode 100) < 0)

let suite =
  [
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "uniform coverage" `Quick test_uniform_covers_space;
    Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf skew" `Quick test_zipf_is_skewed;
    Alcotest.test_case "key encoding" `Quick test_encode;
  ]
