test/test_raft_chaos.ml: Alcotest Array Fun Hashtbl Int64 List Printf Queue Raft Sim
