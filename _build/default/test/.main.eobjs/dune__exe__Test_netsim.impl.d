test/test_netsim.ml: Alcotest Array Hashtbl List Netsim Printf Sim String
