test/test_misc.ml: Alcotest Core Erpc Format Sim String Transport
