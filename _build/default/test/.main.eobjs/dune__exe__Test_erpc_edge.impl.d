test/test_erpc_edge.ml: Alcotest Erpc Experiments List Result Sim Test_erpc_basic Transport
