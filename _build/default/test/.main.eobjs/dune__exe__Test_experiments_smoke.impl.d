test/test_experiments_smoke.ml: Alcotest Experiments Printf Rdma Transport
