test/test_erpc_config_matrix.ml: Alcotest Char Erpc List Netsim Result Sim String Test_erpc_basic Transport
