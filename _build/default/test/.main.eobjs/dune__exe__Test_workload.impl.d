test/test_workload.ml: Alcotest Array Fun Printf Sim String Workload
