test/test_erpc_protocol.ml: Alcotest Char Erpc List QCheck2 QCheck_alcotest Result Sim String Test_erpc_basic Transport
