test/test_sim.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Sim
