test/test_raft.ml: Alcotest Array Bytes Fun List Printf QCheck2 QCheck_alcotest Queue Raft Sim
