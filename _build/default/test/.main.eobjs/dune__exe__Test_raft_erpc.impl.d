test/test_raft_erpc.ml: Alcotest Array Erpc Experiments Mica Printf Raft Result String Transport Workload
