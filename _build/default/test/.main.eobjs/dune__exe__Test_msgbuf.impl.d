test/test_msgbuf.ml: Alcotest Bytes Erpc
