test/test_transport.ml: Alcotest Erpc List Printf Transport
