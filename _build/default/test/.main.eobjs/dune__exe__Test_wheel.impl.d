test/test_wheel.ml: Alcotest Erpc Hashtbl List Option QCheck2 QCheck_alcotest
