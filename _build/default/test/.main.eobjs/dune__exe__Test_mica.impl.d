test/test_mica.ml: Alcotest Hashtbl List Mica QCheck2 QCheck_alcotest
