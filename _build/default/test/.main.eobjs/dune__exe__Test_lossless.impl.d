test/test_lossless.ml: Alcotest Array Erpc Experiments List Netsim Sim Transport
