test/test_masstree.ml: Alcotest Array Fun List Map Masstree Printf QCheck2 QCheck_alcotest Seq Sim String
