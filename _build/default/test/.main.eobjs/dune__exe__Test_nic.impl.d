test/test_nic.ml: Alcotest List Netsim Nic Sim
