test/test_erpc_session_mgmt.ml: Alcotest Erpc Sim Test_erpc_basic Transport
