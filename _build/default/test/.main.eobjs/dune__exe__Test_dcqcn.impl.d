test/test_dcqcn.ml: Alcotest Erpc Experiments Netsim Printf Sim
