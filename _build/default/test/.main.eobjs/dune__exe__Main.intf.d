test/main.mli:
