test/test_erpc_basic.ml: Alcotest Char Erpc Printf Result Sim String Transport
