test/test_erpc_worker.ml: Alcotest Array Erpc List Printf Sim Transport
