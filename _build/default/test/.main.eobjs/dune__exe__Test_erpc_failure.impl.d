test/test_erpc_failure.ml: Alcotest Array Erpc Result Sim Test_erpc_basic Transport
