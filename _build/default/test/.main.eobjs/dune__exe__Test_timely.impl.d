test/test_timely.ml: Alcotest Erpc
