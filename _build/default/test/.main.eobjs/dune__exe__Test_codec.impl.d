test/test_codec.ml: Alcotest Bytes Codec Erpc List QCheck2 QCheck_alcotest Sim Transport
