test/test_erpc_loss.ml: Alcotest Char Erpc Netsim Result Sim String Test_erpc_basic Transport
