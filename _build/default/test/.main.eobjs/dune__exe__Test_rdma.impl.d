test/test_rdma.ml: Alcotest List Rdma Sim Transport
