test/test_stats.ml: Alcotest List Printf QCheck2 QCheck_alcotest Stats
