test/test_erpc_stress.ml: Alcotest Array Char Erpc List Netsim QCheck2 QCheck_alcotest Result Sim String Test_erpc_basic Transport
