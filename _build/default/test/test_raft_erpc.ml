(* Integration tests: the Raft-over-eRPC replicated KV store (§7.1). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let setup () =
  let cluster = Transport.Cluster.cx5 ~nodes:4 () in
  let d = Experiments.Harness.deploy cluster ~threads_per_host:1 in
  let replicas = [| 0; 1; 2 |] in
  let servers =
    Array.mapi
      (fun replica_id host -> Experiments.Raft_kv.create d ~host ~replica_id ~replicas)
      replicas
  in
  let deadline = ref 100 in
  while (not (Array.exists Experiments.Raft_kv.is_leader servers)) && !deadline > 0 do
    Experiments.Harness.run_ms d 5.0;
    decr deadline
  done;
  check_bool "leader elected" true (Array.exists Experiments.Raft_kv.is_leader servers);
  (d, servers)

let leader_of servers =
  match Array.find_opt Experiments.Raft_kv.is_leader servers with
  | Some s -> s
  | None -> Alcotest.fail "no leader"

let put d client sess ~key ~value =
  let req =
    Erpc.Msgbuf.alloc ~max_size:(Experiments.Raft_kv.key_size + Experiments.Raft_kv.value_size)
  in
  let resp = Erpc.Msgbuf.alloc ~max_size:4 in
  Erpc.Msgbuf.write_string req ~off:0 (Experiments.Raft_kv.encode_put ~key ~value);
  let status = ref (-1) in
  Erpc.Rpc.enqueue_request client sess ~req_type:Experiments.Raft_kv.put_req_type ~req ~resp
    ~cont:(fun r -> if Result.is_ok r then status := Erpc.Msgbuf.get_u32 resp ~off:0);
  Experiments.Harness.run_ms d 10.0;
  !status

let test_put_replicates_to_all () =
  let d, servers = setup () in
  let leader = leader_of servers in
  let leader_host = Erpc.Rpc.host (Experiments.Raft_kv.rpc leader) in
  let client = d.rpcs.(3).(0) in
  let sess = Experiments.Harness.connect d client ~remote_host:leader_host ~remote_rpc_id:0 in
  let key = Workload.Keygen.encode 1 in
  let value = String.make Experiments.Raft_kv.value_size 'x' in
  check_int "put acked" 0 (put d client sess ~key ~value);
  (* Followers apply after the next heartbeat carries the commit index. *)
  Experiments.Harness.run_ms d 10.0;
  Array.iter
    (fun s ->
      check_bool "replica has the key" true
        (Mica.Store.get (Experiments.Raft_kv.store s) ~key = Some value))
    servers

let test_put_to_follower_rejected () =
  let d, servers = setup () in
  let follower =
    match Array.find_opt (fun s -> not (Experiments.Raft_kv.is_leader s)) servers with
    | Some s -> s
    | None -> Alcotest.fail "no follower"
  in
  let follower_host = Erpc.Rpc.host (Experiments.Raft_kv.rpc follower) in
  let client = d.rpcs.(3).(0) in
  let sess = Experiments.Harness.connect d client ~remote_host:follower_host ~remote_rpc_id:0 in
  let key = Workload.Keygen.encode 2 in
  let value = String.make Experiments.Raft_kv.value_size 'y' in
  check_int "not-leader status" 2 (put d client sess ~key ~value)

let test_many_puts_sequential_consistency () =
  let d, servers = setup () in
  let leader = leader_of servers in
  let leader_host = Erpc.Rpc.host (Experiments.Raft_kv.rpc leader) in
  let client = d.rpcs.(3).(0) in
  let sess = Experiments.Harness.connect d client ~remote_host:leader_host ~remote_rpc_id:0 in
  (* Repeatedly overwrite one key; all replicas must end at the final
     value (log order = commit order). *)
  let key = Workload.Keygen.encode 7 in
  for i = 1 to 50 do
    let value = Printf.sprintf "%-64d" i in
    ignore (put d client sess ~key ~value)
  done;
  Experiments.Harness.run_ms d 20.0;
  let final = Printf.sprintf "%-64d" 50 in
  Array.iter
    (fun s ->
      check_bool "final value everywhere" true
        (Mica.Store.get (Experiments.Raft_kv.store s) ~key = Some final))
    servers;
  (* Raft logs converged. *)
  let last = Raft.Core.commit_index (Experiments.Raft_kv.raft leader) in
  check_bool "committed everything" true (last >= 50)

let suite =
  [
    Alcotest.test_case "PUT replicates to all" `Quick test_put_replicates_to_all;
    Alcotest.test_case "PUT to follower rejected" `Quick test_put_to_follower_rejected;
    Alcotest.test_case "sequential overwrites converge" `Quick
      test_many_puts_sequential_consistency;
  ]
