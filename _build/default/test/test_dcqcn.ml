(* Tests for the DCQCN extension (ECN-based congestion control) and ECN
   marking in the fabric. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cc () = { (Erpc.Config.default_cc ~min_rtt_ns:5_000) with algo = Erpc.Config.Dcqcn }

let test_starts_at_line_rate () =
  let d = Erpc.Dcqcn.create (cc ()) ~link_gbps:25.0 in
  check_bool "uncongested" true (Erpc.Dcqcn.uncongested d);
  Alcotest.(check (float 1.0)) "rate" 25e9 (Erpc.Dcqcn.rate_bps d)

let test_mark_cuts_rate () =
  let d = Erpc.Dcqcn.create (cc ()) ~link_gbps:25.0 in
  Erpc.Dcqcn.on_ack d ~marked:true ~now_ns:100_000;
  check_bool "rate cut" true (Erpc.Dcqcn.rate_bps d < 25e9);
  check_int "one cut" 1 (Erpc.Dcqcn.cuts d)

let test_cut_rate_limited_by_cnp_interval () =
  let d = Erpc.Dcqcn.create (cc ()) ~link_gbps:25.0 in
  (* Many marks within one CNP interval: only one cut. *)
  for i = 0 to 9 do
    Erpc.Dcqcn.on_ack d ~marked:true ~now_ns:(100_000 + (i * 1_000))
  done;
  check_int "one cut per interval" 1 (Erpc.Dcqcn.cuts d);
  Erpc.Dcqcn.on_ack d ~marked:true ~now_ns:200_000;
  check_int "next interval cuts again" 2 (Erpc.Dcqcn.cuts d)

let test_recovers_without_marks () =
  let d = Erpc.Dcqcn.create (cc ()) ~link_gbps:25.0 in
  for i = 0 to 4 do
    Erpc.Dcqcn.on_ack d ~marked:true ~now_ns:(100_000 + (i * 60_000))
  done;
  let low = Erpc.Dcqcn.rate_bps d in
  check_bool "cut down" true (low < 25e9);
  (* Clean acks every 60 us for 100 ms: fast recovery then additive
     increase back to line rate. *)
  for i = 1 to 1_700 do
    Erpc.Dcqcn.on_ack d ~marked:false ~now_ns:(500_000 + (i * 60_000))
  done;
  check_bool "recovered to line rate" true (Erpc.Dcqcn.uncongested d)

let test_repeated_marks_cut_deeper () =
  let d = Erpc.Dcqcn.create (cc ()) ~link_gbps:25.0 in
  Erpc.Dcqcn.on_ack d ~marked:true ~now_ns:100_000;
  let after_one = Erpc.Dcqcn.rate_bps d in
  for i = 1 to 5 do
    Erpc.Dcqcn.on_ack d ~marked:true ~now_ns:(100_000 + (i * 60_000))
  done;
  check_bool "sustained congestion cuts deeper" true (Erpc.Dcqcn.rate_bps d < after_one)

(* ECN marking at a simulated switch port. *)
let test_port_marks_when_queue_deep () =
  let e = Sim.Engine.create () in
  let marked = ref 0 and total = ref 0 in
  let port =
    Netsim.Port.create e ~name:"p" ~rate_gbps:1.0 ~extra_delay_ns:0
      ~ecn:{ Netsim.Port.kmin_bytes = 5_000; kmax_bytes = 10_000; pmax = 1.0 }
      ~sink:(fun pkt ->
        incr total;
        if pkt.Netsim.Packet.ecn then incr marked)
      ()
  in
  for _ = 1 to 20 do
    ignore
      (Netsim.Port.send port
         (Netsim.Packet.make ~src:0 ~dst:1 ~size_bytes:1_000 ~flow_hash:0 Netsim.Packet.Empty))
  done;
  Sim.Engine.run e;
  check_int "all delivered" 20 !total;
  (* Queue passes kmin after 5 packets and kmax after 10: the tail of the
     burst is deterministically marked. *)
  check_bool (Printf.sprintf "deep-queue packets marked (%d)" !marked) true (!marked >= 8)

let test_no_marks_when_disabled () =
  let e = Sim.Engine.create () in
  let marked = ref 0 in
  let port =
    Netsim.Port.create e ~name:"p" ~rate_gbps:1.0 ~extra_delay_ns:0
      ~sink:(fun pkt -> if pkt.Netsim.Packet.ecn then incr marked)
      ()
  in
  for _ = 1 to 20 do
    ignore
      (Netsim.Port.send port
         (Netsim.Packet.make ~src:0 ~dst:1 ~size_bytes:1_000 ~flow_hash:0 Netsim.Packet.Empty))
  done;
  Sim.Engine.run e;
  check_int "no ECN without config" 0 !marked

(* End to end: a DCQCN incast keeps the victim queue below the no-cc
   level. *)
let test_dcqcn_controls_incast () =
  let with_cc =
    Experiments.Exp_incast.run ~algo:Erpc.Config.Dcqcn ~degree:20 ~cc:true ~warmup_ms:10.0
      ~measure_ms:15.0 ()
  in
  let without =
    Experiments.Exp_incast.run ~degree:20 ~cc:false ~warmup_ms:10.0 ~measure_ms:15.0 ()
  in
  check_bool
    (Printf.sprintf "DCQCN cuts median queueing (%.0f vs %.0f us)" with_cc.rtt_p50_us
       without.rtt_p50_us)
    true
    (with_cc.rtt_p50_us < 0.7 *. without.rtt_p50_us)

let suite =
  [
    Alcotest.test_case "starts at line rate" `Quick test_starts_at_line_rate;
    Alcotest.test_case "mark cuts rate" `Quick test_mark_cuts_rate;
    Alcotest.test_case "CNP interval rate-limits cuts" `Quick
      test_cut_rate_limited_by_cnp_interval;
    Alcotest.test_case "recovers without marks" `Quick test_recovers_without_marks;
    Alcotest.test_case "sustained marks cut deeper" `Quick test_repeated_marks_cut_deeper;
    Alcotest.test_case "port marks deep queues" `Quick test_port_marks_when_queue_deep;
    Alcotest.test_case "no marks when disabled" `Quick test_no_marks_when_disabled;
    Alcotest.test_case "DCQCN controls incast" `Slow test_dcqcn_controls_incast;
  ]
