(* Tests for the Timely congestion-control algorithm. *)

let check_bool = Alcotest.(check bool)

let cc ?(samples_per_update = 1) () =
  { (Erpc.Config.default_cc ~min_rtt_ns:5_000) with samples_per_update }

let test_starts_uncongested () =
  let t = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  check_bool "at link rate" true (Erpc.Timely.uncongested t);
  Alcotest.(check (float 1.0)) "25 Gbps" 25e9 (Erpc.Timely.rate_bps t)

let test_low_rtt_keeps_max_rate () =
  let t = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  for _ = 1 to 100 do
    Erpc.Timely.update t ~sample_rtt_ns:10_000 (* below t_low = 50 us *)
  done;
  check_bool "still uncongested" true (Erpc.Timely.uncongested t)

let test_high_rtt_decreases_rate () =
  let t = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  for i = 1 to 20 do
    Erpc.Timely.update t ~sample_rtt_ns:(100_000 + (i * 20_000))
  done;
  check_bool "rate dropped" true (Erpc.Timely.rate_bps t < 25e9);
  check_bool "congested" true (not (Erpc.Timely.uncongested t))

let test_above_t_high_decreases () =
  let t = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  (* Flat RTT above t_high: gradient is 0, but absolute level forces MD. *)
  for _ = 1 to 50 do
    Erpc.Timely.update t ~sample_rtt_ns:2_000_000
  done;
  check_bool "rate well below max" true (Erpc.Timely.rate_bps t < 20e9)

let test_min_rate_clamp () =
  let t = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  for i = 1 to 10_000 do
    Erpc.Timely.update t ~sample_rtt_ns:(3_000_000 + (i * 1_000))
  done;
  check_bool "clamped at min rate" true (Erpc.Timely.rate_bps t >= (cc ()).min_rate_bps)

let test_recovery_after_congestion () =
  let t = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  for i = 1 to 50 do
    Erpc.Timely.update t ~sample_rtt_ns:(200_000 + (i * 10_000))
  done;
  let low = Erpc.Timely.rate_bps t in
  (* RTT back below t_low: additive increase recovers. *)
  for _ = 1 to 20_000 do
    Erpc.Timely.update t ~sample_rtt_ns:8_000
  done;
  check_bool "recovered" true (Erpc.Timely.rate_bps t > low);
  check_bool "back at max" true (Erpc.Timely.uncongested t)

let test_pacing_delay () =
  let t = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  (* 1084 wire bytes at 25 Gbps = 346.88 -> 347 ns. *)
  Alcotest.(check int) "pacing at line rate" 347 (Erpc.Timely.pacing_delay_ns t ~bytes:1084);
  Erpc.Timely.set_rate_bps t 1e9;
  Alcotest.(check int) "pacing at 1 Gbps" 8_672 (Erpc.Timely.pacing_delay_ns t ~bytes:1084)

let test_samples_per_update_batching () =
  let t = Erpc.Timely.create (cc ~samples_per_update:8 ()) ~link_gbps:25.0 in
  for _ = 1 to 7 do
    Erpc.Timely.update t ~sample_rtt_ns:2_000_000
  done;
  Alcotest.(check int) "no update before 8 samples" 0 (Erpc.Timely.updates t);
  Erpc.Timely.update t ~sample_rtt_ns:2_000_000;
  Alcotest.(check int) "one update at the 8th sample" 1 (Erpc.Timely.updates t);
  check_bool "that update acted" true (Erpc.Timely.rate_bps t < 25e9)

let test_gradient_response_proportional () =
  (* A sharply growing RTT cuts the rate faster than a slowly growing
     one. *)
  let fast = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  let slow = Erpc.Timely.create (cc ()) ~link_gbps:25.0 in
  for i = 1 to 10 do
    Erpc.Timely.update fast ~sample_rtt_ns:(60_000 + (i * 40_000));
    Erpc.Timely.update slow ~sample_rtt_ns:(60_000 + (i * 1_000))
  done;
  check_bool "steeper gradient, lower rate" true
    (Erpc.Timely.rate_bps fast < Erpc.Timely.rate_bps slow)

let suite =
  [
    Alcotest.test_case "starts uncongested" `Quick test_starts_uncongested;
    Alcotest.test_case "low RTT keeps max" `Quick test_low_rtt_keeps_max_rate;
    Alcotest.test_case "high RTT decreases" `Quick test_high_rtt_decreases_rate;
    Alcotest.test_case "above t_high decreases" `Quick test_above_t_high_decreases;
    Alcotest.test_case "min rate clamp" `Quick test_min_rate_clamp;
    Alcotest.test_case "recovery" `Quick test_recovery_after_congestion;
    Alcotest.test_case "pacing delay" `Quick test_pacing_delay;
    Alcotest.test_case "sample batching" `Quick test_samples_per_update_batching;
    Alcotest.test_case "gradient proportionality" `Quick test_gradient_response_proportional;
  ]
