(* Tests for the RDMA baseline: connection cache, verbs-like ops, and the
   Figure 1 throughput model. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {2 Connection cache (LRU)} *)

let test_cache_hits_and_misses () =
  let c = Rdma.Conn_cache.create ~capacity_entries:2 in
  check_bool "cold miss" false (Rdma.Conn_cache.access c 1);
  check_bool "hit" true (Rdma.Conn_cache.access c 1);
  check_bool "second conn" false (Rdma.Conn_cache.access c 2);
  check_bool "both resident" true (Rdma.Conn_cache.access c 1 && Rdma.Conn_cache.access c 2);
  check_int "resident" 2 (Rdma.Conn_cache.resident c)

let test_cache_lru_eviction () =
  let c = Rdma.Conn_cache.create ~capacity_entries:2 in
  ignore (Rdma.Conn_cache.access c 1);
  ignore (Rdma.Conn_cache.access c 2);
  (* Touch 1 so 2 becomes LRU; insert 3 evicts 2. *)
  ignore (Rdma.Conn_cache.access c 1);
  ignore (Rdma.Conn_cache.access c 3);
  check_bool "1 still cached" true (Rdma.Conn_cache.access c 1);
  check_bool "2 evicted" false (Rdma.Conn_cache.access c 2)

let test_cache_miss_ratio_when_oversubscribed () =
  let c = Rdma.Conn_cache.create ~capacity_entries:10 in
  let rng = Sim.Rng.create 2L in
  (* 1000 connections into a 10-entry cache: miss ratio ~ 99%. *)
  for _ = 1 to 5_000 do
    ignore (Rdma.Conn_cache.access c (Sim.Rng.int rng 1_000))
  done;
  Rdma.Conn_cache.reset_stats c;
  for _ = 1 to 20_000 do
    ignore (Rdma.Conn_cache.access c (Sim.Rng.int rng 1_000))
  done;
  check_bool "high miss ratio" true (Rdma.Conn_cache.miss_ratio c > 0.95)

let test_cache_fits_all () =
  let c = Rdma.Conn_cache.create ~capacity_entries:100 in
  for conn = 0 to 99 do
    ignore (Rdma.Conn_cache.access c conn)
  done;
  Rdma.Conn_cache.reset_stats c;
  for _ = 1 to 10 do
    for conn = 0 to 99 do
      ignore (Rdma.Conn_cache.access c conn)
    done
  done;
  Alcotest.(check (float 0.001)) "no misses when resident" 0.0 (Rdma.Conn_cache.miss_ratio c)

(* {2 QP operations} *)

let two_node_setup () =
  let cluster = Transport.Cluster.cx5_ib100 () in
  let engine = Sim.Engine.create () in
  let net = Transport.Cluster.build engine cluster in
  let cfg = Rdma.Qp.default_config cluster in
  let ep0 = Rdma.Qp.create engine net ~host:0 cfg in
  let ep1 = Rdma.Qp.create engine net ~host:1 cfg in
  (engine, ep0, ep1)

let test_read_completes () =
  let engine, ep0, _ep1 = two_node_setup () in
  let done_at = ref 0 in
  Rdma.Qp.post_read ep0 ~dst:1 ~len:32 ~completion:(fun () -> done_at := Sim.Engine.now engine);
  Sim.Engine.run engine;
  check_bool "completed" true (!done_at > 0);
  (* Small read should be a couple of microseconds. *)
  check_bool "latency band" true (!done_at > 500 && !done_at < 5_000)

let test_write_completes_and_scales_with_size () =
  let engine, ep0, _ep1 = two_node_setup () in
  let t_small = ref 0 and t_large = ref 0 in
  Rdma.Qp.post_write ep0 ~dst:1 ~len:4_096 ~completion:(fun () ->
      t_small := Sim.Engine.now engine);
  Sim.Engine.run engine;
  let start = Sim.Engine.now engine in
  Rdma.Qp.post_write ep0 ~dst:1 ~len:(1024 * 1024) ~completion:(fun () ->
      t_large := Sim.Engine.now engine - start);
  Sim.Engine.run engine;
  check_bool "large write slower" true (!t_large > !t_small);
  (* 1 MB at 100 Gbps is ~84 us of serialization. *)
  check_bool "serialization dominates" true (!t_large > 80_000 && !t_large < 200_000)

let test_reads_pipelined () =
  let engine, ep0, _ep1 = two_node_setup () in
  let completions = ref 0 in
  for _ = 1 to 16 do
    Rdma.Qp.post_read ep0 ~dst:1 ~len:32 ~completion:(fun () -> incr completions)
  done;
  Sim.Engine.run engine;
  check_int "all complete" 16 !completions

(* {2 Figure 1 model} *)

let test_read_rate_flat_then_declines () =
  let r1 = Rdma.Read_rate.run ~connections:100 () in
  let r450 = Rdma.Read_rate.run ~connections:450 () in
  let r5000 = Rdma.Read_rate.run ~connections:5_000 () in
  check_bool "flat while cached" true (abs_float (r1.rate_mops -. r450.rate_mops) < 2.0);
  check_bool "collapses beyond cache" true (r5000.rate_mops < 0.6 *. r1.rate_mops);
  check_bool "miss ratio explains it" true (r5000.miss_ratio > 0.85)

let test_read_rate_monotone () =
  let rates =
    List.map
      (fun c -> (Rdma.Read_rate.run ~connections:c ()).rate_mops)
      [ 100; 1_000; 2_000; 5_000 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a +. 0.5 >= b && non_increasing rest
    | _ -> true
  in
  check_bool "monotone non-increasing" true (non_increasing rates)

let suite =
  [
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hits_and_misses;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache oversubscribed" `Quick test_cache_miss_ratio_when_oversubscribed;
    Alcotest.test_case "cache fits all" `Quick test_cache_fits_all;
    Alcotest.test_case "read completes" `Quick test_read_completes;
    Alcotest.test_case "write scales with size" `Quick test_write_completes_and_scales_with_size;
    Alcotest.test_case "reads pipelined" `Quick test_reads_pipelined;
    Alcotest.test_case "fig1 shape" `Quick test_read_rate_flat_then_declines;
    Alcotest.test_case "fig1 monotone" `Quick test_read_rate_monotone;
  ]
