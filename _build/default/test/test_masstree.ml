(* Tests for the Masstree-style B+tree, including a model-based property
   test against Map. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module SMap = Map.Make (String)

let test_insert_get () =
  let t = Masstree.Tree.create () in
  Masstree.Tree.insert t ~key:"b" ~value:"2";
  Masstree.Tree.insert t ~key:"a" ~value:"1";
  Masstree.Tree.insert t ~key:"c" ~value:"3";
  check_bool "a" true (Masstree.Tree.get t ~key:"a" = Some "1");
  check_bool "b" true (Masstree.Tree.get t ~key:"b" = Some "2");
  check_bool "missing" true (Masstree.Tree.get t ~key:"zz" = None);
  check_int "size" 3 (Masstree.Tree.size t)

let test_update_in_place () =
  let t = Masstree.Tree.create () in
  Masstree.Tree.insert t ~key:"k" ~value:"old";
  Masstree.Tree.insert t ~key:"k" ~value:"new";
  check_bool "updated" true (Masstree.Tree.get t ~key:"k" = Some "new");
  check_int "no duplicate" 1 (Masstree.Tree.size t)

let test_many_keys_sorted_scan () =
  let t = Masstree.Tree.create () in
  let n = 50_000 in
  (* Insert in a scrambled order. *)
  let rng = Sim.Rng.create 11L in
  let keys = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Sim.Rng.int rng (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  Array.iter
    (fun k -> Masstree.Tree.insert t ~key:(Printf.sprintf "%08d" k) ~value:(string_of_int k))
    keys;
  check_int "size" n (Masstree.Tree.size t);
  check_bool "depth grew" true (Masstree.Tree.depth t >= 3);
  (* A full scan returns every key in order. *)
  let scan = Masstree.Tree.scan t ~start:"" ~n in
  check_int "scan length" n (List.length scan);
  let sorted = List.for_all2 (fun (k, _) i -> k = Printf.sprintf "%08d" i) scan (List.init n Fun.id) in
  check_bool "scan sorted and complete" true sorted

let test_scan_from_middle () =
  let t = Masstree.Tree.create () in
  for k = 0 to 999 do
    Masstree.Tree.insert t ~key:(Printf.sprintf "%04d" k) ~value:(string_of_int k)
  done;
  let scan = Masstree.Tree.scan t ~start:"0500" ~n:128 in
  check_int "scan count" 128 (List.length scan);
  check_bool "starts at 0500" true (fst (List.hd scan) = "0500");
  check_bool "ends at 0627" true (fst (List.nth scan 127) = "0627")

let test_scan_nonexistent_start () =
  let t = Masstree.Tree.create () in
  List.iter (fun k -> Masstree.Tree.insert t ~key:k ~value:k) [ "b"; "d"; "f" ];
  let scan = Masstree.Tree.scan t ~start:"c" ~n:10 in
  Alcotest.(check (list string)) "successors of absent key" [ "d"; "f" ] (List.map fst scan)

let test_scan_past_end () =
  let t = Masstree.Tree.create () in
  Masstree.Tree.insert t ~key:"a" ~value:"1";
  check_int "empty tail" 0 (List.length (Masstree.Tree.scan t ~start:"z" ~n:10))

let test_delete () =
  let t = Masstree.Tree.create () in
  for k = 0 to 99 do
    Masstree.Tree.insert t ~key:(Printf.sprintf "%03d" k) ~value:"v"
  done;
  check_bool "delete hit" true (Masstree.Tree.delete t ~key:"050");
  check_bool "gone" true (Masstree.Tree.get t ~key:"050" = None);
  check_bool "delete miss" false (Masstree.Tree.delete t ~key:"050");
  check_int "size" 99 (Masstree.Tree.size t);
  (* Scans skip deleted keys. *)
  let scan = Masstree.Tree.scan t ~start:"049" ~n:3 in
  Alcotest.(check (list string)) "scan skips deleted" [ "049"; "051"; "052" ] (List.map fst scan)

let model_based =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"masstree agrees with Map model" ~count:60
       QCheck2.Gen.(
         list_size (int_range 1 500) (triple (int_range 0 3) (int_range 0 200) small_nat))
       (fun ops ->
         let t = Masstree.Tree.create () in
         let model = ref SMap.empty in
         List.for_all
           (fun (op, k, v) ->
             let key = Printf.sprintf "%04d" k in
             let value = string_of_int v in
             match op with
             | 0 ->
                 Masstree.Tree.insert t ~key ~value;
                 model := SMap.add key value !model;
                 true
             | 1 -> Masstree.Tree.get t ~key = SMap.find_opt key !model
             | 2 ->
                 let deleted = Masstree.Tree.delete t ~key in
                 let existed = SMap.mem key !model in
                 model := SMap.remove key !model;
                 deleted = existed
             | _ ->
                 let got = List.map fst (Masstree.Tree.scan t ~start:key ~n:10) in
                 let expected =
                   SMap.to_seq !model |> Seq.map fst
                   |> Seq.filter (fun k' -> String.compare k' key >= 0)
                   |> Seq.take 10 |> List.of_seq
                 in
                 got = expected)
           ops
         && Masstree.Tree.size t = SMap.cardinal !model))

let suite =
  [
    Alcotest.test_case "insert/get" `Quick test_insert_get;
    Alcotest.test_case "update in place" `Quick test_update_in_place;
    Alcotest.test_case "50k keys, ordered scan" `Quick test_many_keys_sorted_scan;
    Alcotest.test_case "scan from middle" `Quick test_scan_from_middle;
    Alcotest.test_case "scan from absent key" `Quick test_scan_nonexistent_start;
    Alcotest.test_case "scan past end" `Quick test_scan_past_end;
    Alcotest.test_case "delete" `Quick test_delete;
    model_based;
  ]
