(* Tests for the MICA-style hash-table store, including a model-based
   property test against Hashtbl. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_put_get () =
  let s = Mica.Store.create () in
  Mica.Store.put s ~key:"a" ~value:"1";
  Mica.Store.put s ~key:"b" ~value:"2";
  check_bool "a" true (Mica.Store.get s ~key:"a" = Some "1");
  check_bool "b" true (Mica.Store.get s ~key:"b" = Some "2");
  check_bool "missing" true (Mica.Store.get s ~key:"c" = None);
  check_int "size" 2 (Mica.Store.size s)

let test_overwrite () =
  let s = Mica.Store.create () in
  Mica.Store.put s ~key:"k" ~value:"old";
  Mica.Store.put s ~key:"k" ~value:"new";
  check_bool "overwritten" true (Mica.Store.get s ~key:"k" = Some "new");
  check_int "size unchanged" 1 (Mica.Store.size s)

let test_delete () =
  let s = Mica.Store.create () in
  Mica.Store.put s ~key:"k" ~value:"v";
  check_bool "delete hit" true (Mica.Store.delete s ~key:"k");
  check_bool "gone" true (Mica.Store.get s ~key:"k" = None);
  check_bool "delete miss" false (Mica.Store.delete s ~key:"k");
  check_int "size" 0 (Mica.Store.size s)

let test_growth_preserves_entries () =
  let s = Mica.Store.create ~initial_buckets:4 () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Mica.Store.put s ~key:(string_of_int i) ~value:(string_of_int (i * 3))
  done;
  check_int "all inserted" n (Mica.Store.size s);
  check_bool "buckets grew" true (Mica.Store.buckets s > 4);
  let ok = ref true in
  for i = 0 to n - 1 do
    if Mica.Store.get s ~key:(string_of_int i) <> Some (string_of_int (i * 3)) then ok := false
  done;
  check_bool "all retrievable after growth" true !ok

let test_chain_collisions () =
  (* With 4 buckets and no growth until count > buckets, short keys chain;
     all remain reachable. *)
  let s = Mica.Store.create ~initial_buckets:4 () in
  List.iter (fun k -> Mica.Store.put s ~key:k ~value:(k ^ k)) [ "x"; "y"; "z"; "w" ];
  List.iter
    (fun k -> check_bool k true (Mica.Store.get s ~key:k = Some (k ^ k)))
    [ "x"; "y"; "z"; "w" ]

let test_empty_key_and_value () =
  let s = Mica.Store.create () in
  Mica.Store.put s ~key:"" ~value:"";
  check_bool "empty key" true (Mica.Store.get s ~key:"" = Some "")

let model_based =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"mica agrees with Hashtbl model" ~count:100
       QCheck2.Gen.(
         list_size (int_range 1 400)
           (triple (int_range 0 2) (int_range 0 50) (small_string ~gen:printable)))
       (fun ops ->
         let s = Mica.Store.create ~initial_buckets:4 () in
         let model = Hashtbl.create 16 in
         List.for_all
           (fun (op, k, v) ->
             let key = "k" ^ string_of_int k in
             match op with
             | 0 ->
                 Mica.Store.put s ~key ~value:v;
                 Hashtbl.replace model key v;
                 true
             | 1 ->
                 let got = Mica.Store.get s ~key in
                 got = Hashtbl.find_opt model key
             | _ ->
                 let deleted = Mica.Store.delete s ~key in
                 let existed = Hashtbl.mem model key in
                 Hashtbl.remove model key;
                 deleted = existed)
           ops
         && Mica.Store.size s = Hashtbl.length model))

let suite =
  [
    Alcotest.test_case "put/get" `Quick test_put_get;
    Alcotest.test_case "overwrite" `Quick test_overwrite;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "growth" `Quick test_growth_preserves_entries;
    Alcotest.test_case "collisions" `Quick test_chain_collisions;
    Alcotest.test_case "empty key/value" `Quick test_empty_key_and_value;
    model_based;
  ]
