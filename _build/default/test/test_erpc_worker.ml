(* Worker threads and nested RPCs (paper §3.1-3.2). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let short_req = 1
let long_req = 2
let front_req = 3

let run fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let connect fabric client ~remote_host =
  let sess = Erpc.Rpc.create_session client ~remote_host ~remote_rpc_id:0 () in
  run fabric 1.0;
  sess

(* A worker-mode handler burning 100 us must not block dispatch-mode
   handlers on the same Rpc (§3.2). *)
let test_long_handler_does_not_block_dispatch () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 ~num_workers:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:short_req ~mode:Erpc.Nexus.Dispatch (fun h ->
      Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:4));
  Erpc.Nexus.register_handler nx1 ~req_type:long_req ~mode:Erpc.Nexus.Worker (fun h ->
      Erpc.Req_handle.charge h 100_000;
      Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:4));
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = connect fabric client ~remote_host:1 in
  let order = ref [] in
  let issue req_type tag =
    let req = Erpc.Msgbuf.alloc ~max_size:4 in
    let resp = Erpc.Msgbuf.alloc ~max_size:4 in
    Erpc.Rpc.enqueue_request client sess ~req_type ~req ~resp ~cont:(fun _ ->
        order := tag :: !order)
  in
  issue long_req `Long;
  issue short_req `Short;
  run fabric 10.0;
  Alcotest.(check bool) "short overtakes long worker RPC" true
    (List.rev !order = [ `Short; `Long ])

(* Worker-mode handler latency includes the two-way dispatch<->worker
   handoff (~400 ns, §3.2). *)
let test_worker_handoff_adds_latency () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 ~num_workers:1 () in
  (* Same zero-cost handler registered in both modes. *)
  Erpc.Nexus.register_handler nx1 ~req_type:short_req ~mode:Erpc.Nexus.Dispatch (fun h ->
      Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:4));
  Erpc.Nexus.register_handler nx1 ~req_type:long_req ~mode:Erpc.Nexus.Worker (fun h ->
      Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:4));
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = connect fabric client ~remote_host:1 in
  let engine = Erpc.Fabric.engine fabric in
  let measure req_type =
    let req = Erpc.Msgbuf.alloc ~max_size:4 in
    let resp = Erpc.Msgbuf.alloc ~max_size:4 in
    let t0 = Sim.Engine.now engine in
    let dt = ref 0 in
    Erpc.Rpc.enqueue_request client sess ~req_type ~req ~resp ~cont:(fun _ ->
        dt := Sim.Time.sub (Sim.Engine.now engine) t0);
    run fabric 5.0;
    !dt
  in
  let dispatch_lat = measure short_req in
  let worker_lat = measure long_req in
  check_bool
    (Printf.sprintf "worker latency %d > dispatch latency %d + 150ns" worker_lat dispatch_lat)
    true
    (worker_lat > dispatch_lat + 150)

(* Jobs on one worker are serialized; two workers run in parallel. *)
let test_worker_parallelism () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 ~num_workers:2 () in
  Erpc.Nexus.register_handler nx1 ~req_type:long_req ~mode:Erpc.Nexus.Worker (fun h ->
      Erpc.Req_handle.charge h 1_000_000 (* 1 ms *);
      Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:4));
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = connect fabric client ~remote_host:1 in
  let engine = Erpc.Fabric.engine fabric in
  let t0 = Sim.Engine.now engine in
  let finished = ref 0 in
  let finish_time = ref 0 in
  for _ = 1 to 2 do
    let req = Erpc.Msgbuf.alloc ~max_size:4 in
    let resp = Erpc.Msgbuf.alloc ~max_size:4 in
    Erpc.Rpc.enqueue_request client sess ~req_type:long_req ~req ~resp ~cont:(fun _ ->
        incr finished;
        finish_time := Sim.Time.sub (Sim.Engine.now engine) t0)
  done;
  run fabric 20.0;
  check_int "both done" 2 !finished;
  (* Two 1 ms jobs on two workers: ~1 ms total, not ~2 ms. *)
  check_bool (Printf.sprintf "parallel (total %d ns)" !finish_time) true (!finish_time < 1_800_000)

(* Nested RPCs: a dispatch handler on host 1 issues its own RPC to host 2
   before responding (§3.1: the handler "need not enqueue a response
   before returning"). *)
let test_nested_rpc () =
  let cluster = Transport.Cluster.cx5 ~nodes:3 () in
  let fabric = Erpc.Fabric.create cluster in
  let nexuses = Array.init 3 (fun host -> Erpc.Nexus.create fabric ~host ()) in
  (* Backend on host 2. *)
  Erpc.Nexus.register_handler nexuses.(2) ~req_type:short_req ~mode:Erpc.Nexus.Dispatch
    (fun h ->
      let resp = Erpc.Req_handle.init_response h ~size:4 in
      Erpc.Msgbuf.set_u32 resp ~off:0 41;
      Erpc.Req_handle.enqueue_response h resp);
  let rpcs = Array.map (fun nx -> Erpc.Rpc.create nx ~rpc_id:0) nexuses in
  (* Frontend on host 1 forwards to the backend, adds one, then responds. *)
  let backend_sess = ref None in
  Erpc.Nexus.register_handler nexuses.(1) ~req_type:front_req ~mode:Erpc.Nexus.Dispatch
    (fun h ->
      let nested_req = Erpc.Msgbuf.alloc ~max_size:4 in
      let nested_resp = Erpc.Msgbuf.alloc ~max_size:4 in
      match !backend_sess with
      | None -> Alcotest.fail "backend session missing"
      | Some sess ->
          Erpc.Rpc.enqueue_request rpcs.(1) sess ~req_type:short_req ~req:nested_req
            ~resp:nested_resp
            ~cont:(fun _ ->
              let resp = Erpc.Req_handle.init_response h ~size:4 in
              Erpc.Msgbuf.set_u32 resp ~off:0 (Erpc.Msgbuf.get_u32 nested_resp ~off:0 + 1);
              Erpc.Req_handle.enqueue_response h resp));
  backend_sess := Some (Erpc.Rpc.create_session rpcs.(1) ~remote_host:2 ~remote_rpc_id:0 ());
  let sess = Erpc.Rpc.create_session rpcs.(0) ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  let req = Erpc.Msgbuf.alloc ~max_size:4 in
  let resp = Erpc.Msgbuf.alloc ~max_size:4 in
  let answer = ref 0 in
  Erpc.Rpc.enqueue_request rpcs.(0) sess ~req_type:front_req ~req ~resp ~cont:(fun _ ->
      answer := Erpc.Msgbuf.get_u32 resp ~off:0);
  run fabric 10.0;
  check_int "nested chain answered" 42 !answer

let suite =
  [
    Alcotest.test_case "worker does not block dispatch" `Quick
      test_long_handler_does_not_block_dispatch;
    Alcotest.test_case "worker handoff latency" `Quick test_worker_handoff_adds_latency;
    Alcotest.test_case "worker parallelism" `Quick test_worker_parallelism;
    Alcotest.test_case "nested RPC" `Quick test_nested_rpc;
  ]
