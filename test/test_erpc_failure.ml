(* Node-failure handling (paper Appendix B): pending requests complete
   with error codes, msgbuf ownership returns to the application, and the
   rest of the cluster keeps working. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.(echo_req_type)

let make_trio () =
  let cluster = Transport.Cluster.cx5 ~nodes:3 () in
  let fabric = Erpc.Fabric.create cluster in
  let nexuses = Array.init 3 (fun host -> Erpc.Nexus.create fabric ~host ()) in
  Array.iter
    (fun nx ->
      Erpc.Nexus.register_handler nx ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
          let n = Erpc.Msgbuf.size (Erpc.Req_handle.get_request h) in
          let resp = Erpc.Req_handle.init_response h ~size:n in
          Erpc.Req_handle.enqueue_response h resp))
    nexuses;
  let rpcs = Array.map (fun nx -> Erpc.Rpc.create nx ~rpc_id:0) nexuses in
  (fabric, rpcs)

let run fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let test_pending_requests_error_on_failure () =
  let fabric, rpcs = make_trio () in
  let sess = Erpc.Rpc.create_session rpcs.(0) ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  (* Kill the server, then issue a request: it can never be answered. *)
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  let result = ref None in
  Erpc.Rpc.enqueue_request rpcs.(0) sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r);
  Erpc.Fabric.kill_host fabric 1;
  (* Failure detection takes sm_failure_timeout (5 ms). *)
  run fabric 20.0;
  (match !result with
  | Some (Error Erpc.Err.Server_failure) -> ()
  | Some (Ok ()) -> Alcotest.fail "request to dead host completed"
  | Some (Error e) -> Alcotest.fail ("wrong error: " ^ Erpc.Err.to_string e)
  | None -> Alcotest.fail "continuation never invoked");
  (* Ownership returned: the app can reuse its buffers. *)
  Erpc.Msgbuf.write_string req ~off:0 "reusable";
  Erpc.Msgbuf.write_string resp ~off:0 "reusable"

let test_backlogged_requests_error_too () =
  let fabric, rpcs = make_trio () in
  let sess = Erpc.Rpc.create_session rpcs.(0) ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  Erpc.Fabric.kill_host fabric 1;
  let errors = ref 0 in
  (* More than the 8-slot window so some sit in the backlog. *)
  for _ = 1 to 20 do
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Rpc.enqueue_request rpcs.(0) sess ~req_type:echo ~req ~resp ~cont:(fun r ->
        match r with Error Erpc.Err.Server_failure -> incr errors | _ -> ())
  done;
  run fabric 20.0;
  check_int "every request errored, including backlogged" 20 !errors

let test_survivors_unaffected () =
  let fabric, rpcs = make_trio () in
  let sess_to_dead = Erpc.Rpc.create_session rpcs.(0) ~remote_host:1 ~remote_rpc_id:0 () in
  let sess_to_live = Erpc.Rpc.create_session rpcs.(0) ~remote_host:2 ~remote_rpc_id:0 () in
  run fabric 1.0;
  let req1 = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp1 = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request rpcs.(0) sess_to_dead ~req_type:echo ~req:req1 ~resp:resp1
    ~cont:(fun _ -> ());
  Erpc.Fabric.kill_host fabric 1;
  run fabric 20.0;
  (* The session to the live host still works. *)
  let ok = ref false in
  let req2 = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp2 = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request rpcs.(0) sess_to_live ~req_type:echo ~req:req2 ~resp:resp2
    ~cont:(fun r -> ok := Result.is_ok r);
  run fabric 10.0;
  check_bool "live session still works" true !ok;
  check_bool "dead session marked" true
    (match sess_to_dead.Erpc.Session.state with Erpc.Session.Error _ -> true | _ -> false)

let test_requests_after_failure_fail_fast () =
  let fabric, rpcs = make_trio () in
  let sess = Erpc.Rpc.create_session rpcs.(0) ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  Erpc.Fabric.kill_host fabric 1;
  run fabric 20.0 (* detection done; session now in Error state *);
  let result = ref None in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request rpcs.(0) sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r);
  run fabric 5.0;
  check_bool "fails fast with session error" true
    (match !result with Some (Error (Erpc.Err.Session_error _)) -> true | _ -> false)

let test_dead_host_stops_responding () =
  let fabric, rpcs = make_trio () in
  let sess = Erpc.Rpc.create_session rpcs.(0) ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  Erpc.Fabric.kill_host fabric 1;
  let completed = ref false in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request rpcs.(0) sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      completed := Result.is_ok r);
  run fabric 3.0 (* before the detection timeout *);
  check_bool "no response from dead host" false !completed;
  check_int "server handled nothing" 0 (Erpc.Rpc.stats rpcs.(1)).Erpc.Rpc_stats.handled

let suite =
  [
    Alcotest.test_case "pending requests error" `Quick test_pending_requests_error_on_failure;
    Alcotest.test_case "backlogged requests error" `Quick test_backlogged_requests_error_too;
    Alcotest.test_case "survivors unaffected" `Quick test_survivors_unaffected;
    Alcotest.test_case "fail fast after detection" `Quick test_requests_after_failure_fail_fast;
    Alcotest.test_case "dead host is silent" `Quick test_dead_host_stops_responding;
  ]
