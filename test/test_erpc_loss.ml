(* Packet loss and retransmission: go-back-N recovery, at-most-once
   execution, credit reclamation, data integrity under loss. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.(echo_req_type)
let make_pair = Transport_testkit.make_pair
let run = Transport_testkit.run
let connect = Transport_testkit.connect ~check:false

let test_rpc_survives_heavy_loss tp () =
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  Netsim.Network.set_loss_prob (Erpc.Fabric.net fabric) 0.2;
  let completed = ref 0 in
  for _ = 1 to 10 do
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
        if Result.is_ok r then incr completed)
  done;
  (* RTO is 5 ms; heavy loss may need several rounds. *)
  run fabric 500.0;
  check_int "all complete despite 20% loss" 10 !completed;
  check_bool "retransmissions happened" true ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits > 0)

let test_at_most_once_execution tp () =
  let handler_runs = ref 0 in
  let fabric, client, _server = make_pair ~tp ~count_handler_runs:handler_runs () in
  let sess = connect fabric client in
  Netsim.Network.set_loss_prob (Erpc.Fabric.net fabric) 0.15;
  let completed = ref 0 in
  let n = 30 in
  let rec issue i =
    if i < n then begin
      let req = Erpc.Msgbuf.alloc ~max_size:32 in
      let resp = Erpc.Msgbuf.alloc ~max_size:32 in
      Erpc.Msgbuf.set_u32 req ~off:0 i;
      Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ ->
          incr completed;
          issue (i + 1))
    end
  in
  issue 0;
  run fabric 2_000.0;
  check_int "all completed" n !completed;
  (* At-most-once: even with retransmitted requests, each request runs its
     handler exactly once. *)
  check_int "handlers ran exactly once per request" n !handler_runs;
  check_bool "loss actually exercised retransmission" true
    ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits > 0)

let test_large_transfer_integrity_under_loss tp () =
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  Netsim.Network.set_loss_prob (Erpc.Fabric.net fabric) 0.02;
  let n = 100_000 in
  let req = Erpc.Msgbuf.alloc ~max_size:n in
  let pattern = String.init n (fun i -> Char.chr ((i * 131) land 0xff)) in
  Erpc.Msgbuf.write_string req ~off:0 pattern;
  let resp = Erpc.Msgbuf.alloc ~max_size:n in
  let ok = ref false in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      ok := Result.is_ok r);
  run fabric 3_000.0;
  check_bool "completed" true !ok;
  check_bool "payload intact across retransmissions" true
    (Erpc.Msgbuf.read_string resp ~off:0 ~len:n = pattern)

let test_credits_restored_after_loss tp () =
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  Netsim.Network.set_loss_prob (Erpc.Fabric.net fabric) 0.1;
  for _ = 1 to 5 do
    let req = Erpc.Msgbuf.alloc ~max_size:8_192 in
    let resp = Erpc.Msgbuf.alloc ~max_size:8_192 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ -> ())
  done;
  run fabric 2_000.0;
  check_int "credits restored" sess.Erpc.Session.credit_limit sess.Erpc.Session.credits;
  check_int "nothing outstanding" 0 (Erpc.Session.outstanding_packets sess)

let test_loss_free_run_has_no_retransmits tp () =
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  for _ = 1 to 100 do
    let req = Erpc.Msgbuf.alloc ~max_size:1_024 in
    let resp = Erpc.Msgbuf.alloc ~max_size:1_024 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ -> ())
  done;
  run fabric 100.0;
  check_int "no spurious retransmissions" 0 ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits);
  check_int "all served" 100 ((Erpc.Rpc.stats client).Erpc.Rpc_stats.completed)

(* Network-level loss (Netsim.Network.set_loss_prob) hits both transports:
   the lossless RC transport only removes NIC descriptor drops, not fabric
   loss, so go-back-N recovery must work identically over it. *)
let suite_for tp =
  [
    Alcotest.test_case "survives 20% loss" `Quick (test_rpc_survives_heavy_loss tp);
    Alcotest.test_case "at-most-once execution" `Quick (test_at_most_once_execution tp);
    Alcotest.test_case "large transfer integrity under loss" `Quick
      (test_large_transfer_integrity_under_loss tp);
    Alcotest.test_case "credits restored after loss" `Quick
      (test_credits_restored_after_loss tp);
    Alcotest.test_case "no spurious retransmits" `Quick
      (test_loss_free_run_has_no_retransmits tp);
  ]

let suite = suite_for Transport_testkit.Raw_eth
let suite_rc = suite_for Transport_testkit.Rdma_rc
