(* Unit tests for the sharded replicated-KV service layer: shard map
   placement and leader hints, the KV/Raft wire protocol, the
   availability timeline, and the chaos harness's own invariants. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* {2 Shard map} *)

let test_shard_map_placement () =
  let map =
    Service.Shard_map.create ~shards:4 ~replication:3 ~replica_hosts:[| 0; 1; 2; 3; 4; 5 |]
  in
  check_int "shards" 4 (Service.Shard_map.shards map);
  (* Rotation: shard s lives on hosts s, s+1, s+2 (mod 6). *)
  Alcotest.(check (array int)) "group 0" [| 0; 1; 2 |] (Service.Shard_map.group map ~shard:0);
  Alcotest.(check (array int)) "group 3" [| 3; 4; 5 |] (Service.Shard_map.group map ~shard:3);
  (* Every group has exactly [replication] distinct hosts. *)
  for s = 0 to 3 do
    let g = Service.Shard_map.group map ~shard:s in
    check_int "group size" 3 (Array.length g);
    check_int "distinct hosts" 3
      (List.length (List.sort_uniq compare (Array.to_list g)))
  done;
  (* shards_on is the inverse of group. *)
  check_bool "host 1 carries shards 0,1,3… consistent with groups" true
    (List.for_all
       (fun s -> Array.exists (( = ) 1) (Service.Shard_map.group map ~shard:s))
       (Service.Shard_map.shards_on map ~host:1))

let test_shard_map_key_routing () =
  let map =
    Service.Shard_map.create ~shards:4 ~replication:3 ~replica_hosts:[| 0; 1; 2; 3; 4; 5 |]
  in
  (* Stable, in-range, and actually spreading. *)
  let seen = Array.make 4 0 in
  for i = 0 to 999 do
    let key = Workload.Keygen.encode i in
    let s = Service.Shard_map.shard_of_key map ~key in
    check_bool "shard in range" true (s >= 0 && s < 4);
    check_int "routing is stable" s (Service.Shard_map.shard_of_key map ~key);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun s n -> check_bool (Printf.sprintf "shard %d gets fair share" s) true (n > 150))
    seen

let test_shard_map_hints () =
  let map =
    Service.Shard_map.create ~shards:2 ~replication:3 ~replica_hosts:[| 0; 1; 2; 3 |]
  in
  check_bool "no hint initially" true (Service.Shard_map.leader_hint map ~shard:0 = None);
  Service.Shard_map.set_leader_hint map ~shard:0 ~host:2;
  Service.Shard_map.set_leader_hint map ~shard:1 ~host:2;
  check_bool "hint set" true (Service.Shard_map.leader_hint map ~shard:0 = Some 2);
  (* A crashed host's hints all go at once. *)
  Service.Shard_map.clear_hints_for map ~host:2;
  check_bool "hints cleared" true
    (Service.Shard_map.leader_hint map ~shard:0 = None
    && Service.Shard_map.leader_hint map ~shard:1 = None);
  Alcotest.check_raises "replication must fit the host set"
    (Invalid_argument "Shard_map.create: replication exceeds host count") (fun () ->
      ignore (Service.Shard_map.create ~shards:1 ~replication:4 ~replica_hosts:[| 0; 1 |]))

let test_fnv1a_non_negative () =
  (* The 63-bit masking bug class: hashes must never go negative, or
     [shard_of_key] indexes out of bounds. *)
  for i = 0 to 9_999 do
    check_bool "hash >= 0" true (Workload.Keygen.fnv1a (Workload.Keygen.encode i) >= 0)
  done

(* {2 Wire protocol} *)

let test_kv_proto_request_roundtrip () =
  let key = Workload.Keygen.encode 77 in
  let value = String.make Service.Kv_proto.value_size 'v' in
  let r =
    { Service.Kv_proto.op = Service.Kv_proto.Put; shard = 3; client_id = 12; seq = 345; key; value }
  in
  let m = Erpc.Msgbuf.alloc ~max_size:Service.Kv_proto.req_size in
  Service.Kv_proto.write_request m r;
  let r' = Service.Kv_proto.read_request m in
  check_bool "op" true (r'.Service.Kv_proto.op = Service.Kv_proto.Put);
  check_int "shard" 3 r'.Service.Kv_proto.shard;
  check_int "client_id" 12 r'.Service.Kv_proto.client_id;
  check_int "seq" 345 r'.Service.Kv_proto.seq;
  check_str "key" key r'.Service.Kv_proto.key;
  check_str "value" value r'.Service.Kv_proto.value

let test_kv_proto_response_roundtrip () =
  let m = Erpc.Msgbuf.alloc ~max_size:Service.Kv_proto.resp_max_size in
  Erpc.Msgbuf.resize m (Service.Kv_proto.resp_size ~value:None);
  Service.Kv_proto.write_response m ~status:(Service.Kv_proto.Not_leader (Some 4)) ~value:None;
  (match Service.Kv_proto.read_response m with
  | Service.Kv_proto.Not_leader (Some h), None -> check_int "hint host" 4 h
  | _ -> Alcotest.fail "Not_leader hint lost");
  let value = String.make Service.Kv_proto.value_size 'g' in
  let m = Erpc.Msgbuf.alloc ~max_size:Service.Kv_proto.resp_max_size in
  Erpc.Msgbuf.resize m (Service.Kv_proto.resp_size ~value:(Some value));
  Service.Kv_proto.write_response m ~status:Service.Kv_proto.Ok_ ~value:(Some value);
  match Service.Kv_proto.read_response m with
  | Service.Kv_proto.Ok_, Some v -> check_str "value round-trips" value v
  | _ -> Alcotest.fail "Ok_+value lost"

let test_kv_proto_cmd_roundtrip () =
  let key = Workload.Keygen.encode 5 in
  let value = String.make Service.Kv_proto.value_size 'q' in
  let cmd = Service.Kv_proto.encode_cmd ~client_id:7 ~seq:123 ~key ~value in
  check_int "cmd size" Service.Kv_proto.cmd_size (String.length cmd);
  let client_id, seq, key', value' = Service.Kv_proto.decode_cmd cmd in
  check_int "client_id" 7 client_id;
  check_int "seq" 123 seq;
  check_str "key" key key';
  check_str "value" value value';
  (* No-op barrier entries are recognizable and never collide with a real
     client. *)
  let nc, nseq, _, _ = Service.Kv_proto.decode_cmd (Service.Kv_proto.noop_cmd ~seq:9) in
  check_int "noop client id" Service.Kv_proto.noop_client_id nc;
  check_int "noop seq" 9 nseq

let test_raft_frame_roundtrip () =
  let msg =
    Raft.Core.Append_entries
      {
        term = 3;
        leader_id = 1;
        prev_log_index = 4;
        prev_log_term = 2;
        entries = [ { Raft.Log.term = 3; cmd = "hello-entry" } ];
        leader_commit = 4;
      }
  in
  let m = Erpc.Msgbuf.alloc ~max_size:(Service.Kv_proto.raft_frame_size msg) in
  Service.Kv_proto.write_raft_frame m ~shard:2 msg;
  let shard, msg' = Service.Kv_proto.read_raft_frame m in
  check_int "shard" 2 shard;
  match msg' with
  | Raft.Core.Append_entries { term; entries = [ e ]; _ } ->
      check_int "term" 3 term;
      check_str "entry" "hello-entry" e.Raft.Log.cmd
  | _ -> Alcotest.fail "frame did not round-trip"

(* {2 Availability timeline} *)

let test_timeline_windows_and_gaps () =
  let w = 10_000_000 in
  let tl = Obs.Timeline.create ~window_ns:w ~horizon_ns:(5 * w) in
  (* Window 0: healthy. Window 1: attempts but zero successes (a gap).
     Window 2: empty (not a gap). Windows 3-4: healthy again. *)
  Obs.Timeline.ok tl ~at_ns:100 ~latency_ns:1_000;
  Obs.Timeline.ok tl ~at_ns:200 ~latency_ns:3_000;
  Obs.Timeline.fail tl ~at_ns:(w + 1);
  Obs.Timeline.fail tl ~at_ns:(w + 2);
  Obs.Timeline.ok tl ~at_ns:(3 * w) ~latency_ns:2_000;
  Obs.Timeline.ok tl ~at_ns:(4 * w) ~latency_ns:2_000;
  check_int "gap windows" 1 (Obs.Timeline.gaps tl);
  check_int "longest gap" w (Obs.Timeline.longest_gap_ns tl);
  let windows = Obs.Timeline.windows tl in
  check_int "window count" 5 (List.length windows);
  (match windows with
  | (t0, ok0, fail0, p50, _) :: (_, ok1, fail1, _, _) :: _ ->
      check_int "w0 start" 0 t0;
      check_int "w0 ok" 2 ok0;
      check_int "w0 fail" 0 fail0;
      check_bool "w0 p50 sane" true (p50 >= 1_000 && p50 <= 3_000);
      check_int "w1 ok" 0 ok1;
      check_int "w1 fail" 2 fail1
  | _ -> Alcotest.fail "missing windows");
  check_bool "timeline JSON is well-formed" true
    (Obs.Json.validate (Obs.Json.to_string (Obs.Timeline.to_json tl)))

(* {2 Chaos harness} *)

let test_chaos_run_clean_and_deterministic () =
  let r1 =
    Experiments.Exp_kv_chaos.run_one ~scenario:Experiments.Exp_kv_chaos.Leader_crash
      ~seed:7L ()
  in
  Alcotest.(check (list string)) "no invariant violations" [] r1.violations;
  check_bool "made progress under faults" true (r1.acked > r1.issued / 2);
  check_bool "observed the injected crashes" true (r1.restarts >= 1);
  let r2 =
    Experiments.Exp_kv_chaos.run_one ~scenario:Experiments.Exp_kv_chaos.Leader_crash
      ~seed:7L ()
  in
  check_str "same seed, byte-identical fault trace" r1.trace r2.trace;
  check_int "same seed, same ack count" r1.acked r2.acked;
  check_bool "run JSON is well-formed" true
    (Obs.Json.validate (Obs.Json.to_string r1.timeline))

(* Golden fault-trace digests captured before the codec refactor moved
   Kv_proto and Raft.Wire onto schema combinators. Equality here proves
   the compact wire bytes and every CPU charge on the replicated-KV
   datapath are unchanged — the refactor is invisible to the chaos
   schedule. *)
let test_chaos_golden_digests () =
  List.iter
    (fun (seed, scenario, digest, acked) ->
      let r = Experiments.Exp_kv_chaos.run_one ~scenario ~seed () in
      check_str
        (Printf.sprintf "seed %Ld trace digest" seed)
        digest
        (Digest.to_hex (Digest.string r.trace));
      check_int (Printf.sprintf "seed %Ld acked" seed) acked r.acked)
    [
      ( 40_000L,
        Experiments.Exp_kv_chaos.Leader_crash,
        "17166b39d45b4d15fffa6838ee6f52f2",
        1200 );
      ( 40_001L,
        Experiments.Exp_kv_chaos.Tor_partition,
        "cd9fee1564d960f46788f73c862e7d1f",
        1187 );
    ]

let suite =
  [
    Alcotest.test_case "shard map: placement" `Quick test_shard_map_placement;
    Alcotest.test_case "shard map: key routing" `Quick test_shard_map_key_routing;
    Alcotest.test_case "shard map: leader hints" `Quick test_shard_map_hints;
    Alcotest.test_case "fnv1a never negative" `Quick test_fnv1a_non_negative;
    Alcotest.test_case "kv proto: request roundtrip" `Quick test_kv_proto_request_roundtrip;
    Alcotest.test_case "kv proto: response roundtrip" `Quick test_kv_proto_response_roundtrip;
    Alcotest.test_case "kv proto: command roundtrip" `Quick test_kv_proto_cmd_roundtrip;
    Alcotest.test_case "kv proto: raft frame roundtrip" `Quick test_raft_frame_roundtrip;
    Alcotest.test_case "timeline: windows and gaps" `Quick test_timeline_windows_and_gaps;
    Alcotest.test_case "kv-chaos: clean and deterministic" `Quick
      test_chaos_run_clean_and_deterministic;
    Alcotest.test_case "kv-chaos: golden trace digests" `Quick test_chaos_golden_digests;
  ]
