(* Tests for the NIC model: RX descriptors, multi-packet RQ amortization,
   unsignaled TX + flush, RX ring notification, FIFO-preserving jitter. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let two_host_net e =
  let cfg =
    { Netsim.Network.default_config with topology = Netsim.Network.Single_switch { hosts = 2 } }
  in
  Netsim.Network.create e cfg

let mk_pkt ?(size = 100) ~src ~dst () =
  Netsim.Packet.make ~src ~dst ~size_bytes:size ~flow_hash:0 Netsim.Packet.Empty

let test_rx_ring_and_poll () =
  let e = Sim.Engine.create () in
  let net = two_host_net e in
  let nic = Nic.create e net ~host:1 Nic.default_config in
  Netsim.Network.attach net ~host:1 ~rx:(fun pkt -> Nic.receive nic pkt);
  Netsim.Network.attach net ~host:0 ~rx:(fun _ -> ());
  for _ = 1 to 5 do
    Netsim.Network.send net (mk_pkt ~src:0 ~dst:1 ())
  done;
  Sim.Engine.run e;
  check_int "ring depth" 5 (Nic.rx_ring_depth nic);
  let polled = ref 0 in
  let n = Nic.poll_rx nic ~max:3 (fun _ -> incr polled) in
  check_int "poll batch" 3 n;
  check_int "callback per packet" 3 !polled;
  check_int "remaining" 2 (Nic.rx_ring_depth nic);
  check_int "rx stat" 5 (Nic.rx_packets nic)

let test_rq_exhaustion_drops () =
  let e = Sim.Engine.create () in
  let net = two_host_net e in
  let nic = Nic.create e net ~host:1 { Nic.default_config with rq_size = 3 } in
  Netsim.Network.attach net ~host:1 ~rx:(fun pkt -> Nic.receive nic pkt);
  Netsim.Network.attach net ~host:0 ~rx:(fun _ -> ());
  for _ = 1 to 5 do
    Netsim.Network.send net (mk_pkt ~src:0 ~dst:1 ())
  done;
  Sim.Engine.run e;
  check_int "3 delivered" 3 (Nic.rx_ring_depth nic);
  check_int "2 dropped with empty RQ" 2 (Nic.rx_dropped_no_desc nic);
  (* Replenishing restores delivery. *)
  ignore (Nic.replenish_rq nic 3);
  Netsim.Network.send net (mk_pkt ~src:0 ~dst:1 ());
  Sim.Engine.run e;
  check_int "delivered after replenish" 4 (Nic.rx_ring_depth nic)

let test_multi_packet_rq_amortization () =
  let e = Sim.Engine.create () in
  let net = two_host_net e in
  let mp =
    Nic.create e net ~host:0
      { Nic.default_config with multi_packet_rq = true; multi_packet_rq_stride = 512 }
  in
  let plain = Nic.create e net ~host:1 { Nic.default_config with multi_packet_rq = false } in
  (* Multi-packet RQ: cost charged once per 512 buffers. *)
  let cost_mp = ref 0 and cost_plain = ref 0 in
  for _ = 1 to 1_024 do
    cost_mp := !cost_mp + Nic.replenish_rq mp 1;
    cost_plain := !cost_plain + Nic.replenish_rq plain 1
  done;
  let unit = Nic.default_config.rq_replenish_unit_ns in
  check_int "amortized: 2 descriptor posts" (2 * unit) !cost_mp;
  check_int "per-packet posts" (1_024 * unit) !cost_plain

let test_unsignaled_tx_and_flush () =
  let e = Sim.Engine.create () in
  let net = two_host_net e in
  let nic = Nic.create e net ~host:0 { Nic.default_config with tx_latency_ns = 400 } in
  Netsim.Network.attach net ~host:1 ~rx:(fun _ -> ());
  Netsim.Network.attach net ~host:0 ~rx:(fun _ -> ());
  check_int "flush on empty queue costs only the fixed overhead"
    Nic.default_config.tx_flush_ns (Nic.flush_time_ns nic);
  Nic.post_send nic (mk_pkt ~src:0 ~dst:1 ());
  Nic.post_send nic (mk_pkt ~src:0 ~dst:1 ());
  check_int "two DMAs pending" 2 (Nic.tx_pending nic);
  (* Flush must wait for the last pending DMA plus the fixed cost. *)
  check_int "flush waits for DMA" (400 + Nic.default_config.tx_flush_ns) (Nic.flush_time_ns nic);
  Sim.Engine.run e;
  check_int "drained" 0 (Nic.tx_pending nic)

let test_rx_notify_fires_on_empty_ring_only () =
  let e = Sim.Engine.create () in
  let net = two_host_net e in
  let nic = Nic.create e net ~host:1 Nic.default_config in
  Netsim.Network.attach net ~host:1 ~rx:(fun pkt -> Nic.receive nic pkt);
  Netsim.Network.attach net ~host:0 ~rx:(fun _ -> ());
  let notifies = ref 0 in
  Nic.set_rx_notify nic (fun () -> incr notifies);
  for _ = 1 to 4 do
    Netsim.Network.send net (mk_pkt ~src:0 ~dst:1 ())
  done;
  Sim.Engine.run e;
  check_int "one notify for the burst" 1 !notifies;
  ignore (Nic.poll_rx nic ~max:10 (fun _ -> ()));
  Netsim.Network.send net (mk_pkt ~src:0 ~dst:1 ());
  Sim.Engine.run e;
  check_int "notify again after drain" 2 !notifies

let test_jitter_preserves_fifo () =
  let e = Sim.Engine.create () in
  let net = two_host_net e in
  let nic = Nic.create e net ~host:1 { Nic.default_config with rx_jitter_ns = 5_000 } in
  Netsim.Network.attach net ~host:1 ~rx:(fun pkt -> Nic.receive nic pkt);
  Netsim.Network.attach net ~host:0 ~rx:(fun _ -> ());
  (* Tag packets with distinct sizes to identify them. *)
  for i = 1 to 50 do
    Netsim.Network.send net (mk_pkt ~size:(100 + i) ~src:0 ~dst:1 ())
  done;
  Sim.Engine.run e;
  let sizes = ref [] in
  ignore (Nic.poll_rx nic ~max:100 (fun p -> sizes := p.Netsim.Packet.size_bytes :: !sizes));
  let sizes = List.rev !sizes in
  Alcotest.(check (list int)) "FIFO under jitter" (List.init 50 (fun i -> 101 + i)) sizes

let suite =
  [
    Alcotest.test_case "rx ring and poll" `Quick test_rx_ring_and_poll;
    Alcotest.test_case "RQ exhaustion drops" `Quick test_rq_exhaustion_drops;
    Alcotest.test_case "multi-packet RQ amortization" `Quick test_multi_packet_rq_amortization;
    Alcotest.test_case "unsignaled TX + flush" `Quick test_unsignaled_tx_and_flush;
    Alcotest.test_case "rx notify on empty ring" `Quick test_rx_notify_fires_on_empty_ring_only;
    Alcotest.test_case "jitter preserves FIFO" `Quick test_jitter_preserves_fifo;
  ]
