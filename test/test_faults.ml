(* Deterministic fault injection: wire checksums, targeted drops,
   duplication, reordering, link faults, partitions, crash-with-restart
   and the bounded-retransmission session reset (§4.3). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.(echo_req_type)

let make_pair ?(count_handler_runs = ref 0) () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      incr count_handler_runs;
      let req = Erpc.Req_handle.get_request h in
      let n = Erpc.Msgbuf.size req in
      let resp = Erpc.Req_handle.init_response h ~size:n in
      if n > 0 then Erpc.Msgbuf.blit ~src:req ~src_off:0 ~dst:resp ~dst_off:0 ~len:n;
      Erpc.Req_handle.enqueue_response h resp);
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  (fabric, client, server)

let run fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let connect fabric client =
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  sess

(* {2 Wire checksum} *)

let mk_hdr ?(pkt_type = Erpc.Pkthdr.Req) ?(msg_size = 8) () =
  {
    Erpc.Pkthdr.req_type = 1;
    msg_size;
    dest_session = 3;
    pkt_type;
    pkt_num = 0;
    req_num = 8;
    token = 0;
    ecn_echo = false;
  }

let mk_pkt ?pkt_type ?payload () =
  let hdr = mk_hdr ?pkt_type ?msg_size:(Option.map Bytes.length payload) () in
  Erpc.Wire.make ~src_host:0 ~dst_host:1 ~dst_rpc:0 ~wire_overhead:60 ~flow:7 ~hdr
    ?payload:(Option.map (fun b -> (b, 0, Bytes.length b)) payload)
    ()

let test_checksum_accepts_clean_packet () =
  let pkt = mk_pkt ~payload:(Bytes.of_string "hello wire") () in
  check_bool "clean packet verifies" true (Erpc.Wire.verify pkt)

let test_checksum_detects_payload_corruption () =
  (* Any single flipped payload bit must be caught. *)
  for bit = 0 to 79 do
    let pkt = mk_pkt ~payload:(Bytes.of_string "hello wire") () in
    Erpc.Wire.corrupt ~bit pkt;
    check_bool (Printf.sprintf "bit %d detected" bit) false (Erpc.Wire.verify pkt)
  done

let test_checksum_detects_header_corruption () =
  (* Header-only packets (CR) carry no payload: corruption marks the frame
     and verification must still fail. *)
  let pkt = mk_pkt ~pkt_type:Erpc.Pkthdr.Cr () in
  check_bool "clean CR verifies" true (Erpc.Wire.verify pkt);
  Erpc.Wire.corrupt pkt;
  check_bool "corrupted CR rejected" false (Erpc.Wire.verify pkt)

let test_rpc_survives_corruption () =
  let handler_runs = ref 0 in
  let fabric, client, _server = make_pair ~count_handler_runs:handler_runs () in
  let sess = connect fabric client in
  let net = Erpc.Fabric.net fabric in
  (* Flip real payload bits, like the fault injector does. *)
  let seq = ref 0 in
  Netsim.Network.set_corrupter net (fun pkt ->
      incr seq;
      Erpc.Wire.corrupt ~bit:(7 * !seq) pkt);
  Netsim.Network.set_corrupt_prob net 0.2;
  let n = 20 in
  let ok = ref 0 in
  let intact = ref 0 in
  for i = 0 to n - 1 do
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Msgbuf.set_u32 req ~off:0 (i * 7919);
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
        if Result.is_ok r then begin
          incr ok;
          if Erpc.Msgbuf.get_u32 resp ~off:0 = i * 7919 then incr intact
        end)
  done;
  run fabric 500.0;
  check_int "all completed despite corruption" n !ok;
  check_int "every response intact (corruption never accepted)" n !intact;
  check_int "handlers at most once" n !handler_runs;
  check_bool "corrupted packets were detected and dropped" true
    ((Erpc.Rpc.stats client).Erpc.Rpc_stats.rx_corrupt + (Erpc.Rpc.stats _server).Erpc.Rpc_stats.rx_corrupt > 0)

(* {2 Targeted and randomized network faults} *)

let test_drop_nth_deterministic () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  let net = Erpc.Fabric.net fabric in
  (* Delivery #1 after arming is the REQ at the server (SM messages bypass
     the simulated network). *)
  Netsim.Network.arm_drop_nth net 1;
  let done_ = ref false in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      done_ := Result.is_ok r);
  run fabric 50.0;
  check_bool "request recovered from the targeted drop" true !done_;
  check_int "exactly the armed packet was dropped" 1 (Netsim.Network.targeted_drops net);
  check_int "one retransmission" 1 ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits)

let test_duplication_at_most_once () =
  let handler_runs = ref 0 in
  let fabric, client, _server = make_pair ~count_handler_runs:handler_runs () in
  let sess = connect fabric client in
  let net = Erpc.Fabric.net fabric in
  Netsim.Network.set_dup_prob net 1.0;
  let n = 10 in
  let ok = ref 0 in
  for _ = 1 to n do
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
        if Result.is_ok r then incr ok)
  done;
  run fabric 100.0;
  check_int "all completed" n !ok;
  check_int "duplicates never re-executed handlers" n !handler_runs;
  check_bool "duplicates were actually injected" true (Netsim.Network.injected_dups net > 0)

let test_reorder_integrity () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  let net = Erpc.Fabric.net fabric in
  Netsim.Network.set_reorder net ~prob:0.3 ~max_delay_ns:5_000;
  let n = 50_000 in
  let req = Erpc.Msgbuf.alloc ~max_size:n in
  let pattern = String.init n (fun i -> Char.chr ((i * 131) land 0xff)) in
  Erpc.Msgbuf.write_string req ~off:0 pattern;
  let resp = Erpc.Msgbuf.alloc ~max_size:n in
  let ok = ref false in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      ok := Result.is_ok r);
  run fabric 3_000.0;
  check_bool "completed under reordering" true !ok;
  check_bool "reordering actually injected" true (Netsim.Network.injected_reorders net > 0);
  check_bool "payload intact" true (Erpc.Msgbuf.read_string resp ~off:0 ~len:n = pattern)

let test_link_down_then_up_recovers () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  let net = Erpc.Fabric.net fabric in
  let engine = Erpc.Fabric.engine fabric in
  Netsim.Network.set_host_link net ~host:0 false;
  check_bool "link marked down" false (Netsim.Network.host_link_up net ~host:0);
  (* Restore inside the retry budget: 12 ms < 8 RTOs x 5 ms. *)
  Sim.Engine.schedule_after engine 12_000_000 (fun () ->
      Netsim.Network.set_host_link net ~host:0 true);
  let result = ref None in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r);
  run fabric 100.0;
  check_bool "completed after link restored" true (!result = Some (Ok ()));
  check_bool "drops at the downed link" true (Netsim.Network.link_drops net > 0);
  check_bool "recovered via retransmission" true ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits > 0)

let test_partition_heals () =
  let cluster = Transport.Cluster.cx4 ~nodes:10 () in
  let fabric = Erpc.Fabric.create cluster in
  let nx = Array.init 10 (fun host -> Erpc.Nexus.create fabric ~host ()) in
  Erpc.Nexus.register_handler nx.(5) ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      let resp = Erpc.Req_handle.init_response h ~size:4 in
      Erpc.Req_handle.enqueue_response h resp);
  let client = Erpc.Rpc.create nx.(0) ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx.(5) ~rpc_id:0 in
  let sess = Erpc.Rpc.create_session client ~remote_host:5 ~remote_rpc_id:0 () in
  run fabric 1.0;
  let net = Erpc.Fabric.net fabric in
  let tor0 = Netsim.Network.host_tor_index net ~host:0 in
  let tor5 = Netsim.Network.host_tor_index net ~host:5 in
  check_bool "cross-rack pair" true (tor0 <> tor5);
  Netsim.Network.set_partition net ~tor_a:tor0 ~tor_b:tor5 true;
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.schedule_after engine 12_000_000 (fun () ->
      Netsim.Network.set_partition net ~tor_a:tor0 ~tor_b:tor5 false);
  let result = ref None in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r);
  run fabric 100.0;
  check_bool "completed once the partition healed" true (!result = Some (Ok ()));
  check_bool "partition dropped packets" true (Netsim.Network.partition_drops net > 0)

(* {2 Bounded retransmission and crash-with-restart} *)

let test_bounded_retx_resets_session () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  let cfg = Erpc.Fabric.config fabric in
  let engine = Erpc.Fabric.engine fabric in
  (* Silence the server forever without SM-plane detection: sever its link
     at the fault layer. Only bounded retransmission can end this. *)
  Netsim.Network.set_host_link (Erpc.Fabric.net fabric) ~host:1 false;
  let result = ref None in
  let done_at = ref 0 in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  let issued_at = Sim.Engine.now engine in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r;
      done_at := Sim.Engine.now engine);
  run fabric 200.0;
  (match !result with
  | Some (Error Erpc.Err.Peer_unreachable) -> ()
  | Some (Ok ()) -> Alcotest.fail "request through a dead link completed"
  | Some (Error e) -> Alcotest.fail ("wrong error: " ^ Erpc.Err.to_string e)
  | None -> Alcotest.fail "retransmitted unboundedly: continuation never ran");
  check_bool "failed within max_retransmits * rto of issue" true
    (!done_at - issued_at <= (cfg.max_retransmits * cfg.rto_ns) + cfg.rto_ns);
  check_bool "retransmit count bounded" true
    ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits < cfg.max_retransmits);
  check_int "one session reset" 1 ((Erpc.Rpc.stats client).Erpc.Rpc_stats.session_resets);
  check_int "no leaked RTO timers" 0 (Erpc.Rpc.armed_rto_count client);
  check_int "credits restored" sess.Erpc.Session.credit_limit sess.Erpc.Session.credits;
  (* Buffers are back with the application. *)
  Erpc.Msgbuf.write_string req ~off:0 "mine";
  Erpc.Msgbuf.write_string resp ~off:0 "mine"

let test_retx_warning_counter () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  Netsim.Network.set_host_link (Erpc.Fabric.net fabric) ~host:1 false;
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ -> ());
  run fabric 200.0;
  check_bool "warned when a slot burned half its retry budget" true
    ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retx_warnings > 0);
  check_bool "per-session retransmit counter exposed" true
    (sess.Erpc.Session.retransmits > 0)

let test_crash_restart_peer_unreachable () =
  let fabric, client, server = make_pair () in
  let sess = connect fabric client in
  let cfg = Erpc.Fabric.config fabric in
  let engine = Erpc.Fabric.engine fabric in
  (* Crash-with-restart faster than the SM failure timeout: peers never see
     a failure event, and the restarted server has lost all session state.
     The client must converge to Peer_unreachable on its own. *)
  let down_ns = 1_000_000 in
  check_bool "restart beats the detector" true (down_ns < cfg.sm_failure_timeout_ns);
  Erpc.Fabric.crash_host fabric 1 ~down_ns;
  let result = ref None in
  let done_at = ref 0 in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  let issued_at = Sim.Engine.now engine in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r;
      done_at := Sim.Engine.now engine);
  run fabric 200.0;
  (match !result with
  | Some (Error Erpc.Err.Peer_unreachable) -> ()
  | Some (Ok ()) -> Alcotest.fail "request to crashed-and-restarted host completed"
  | Some (Error e) -> Alcotest.fail ("wrong error: " ^ Erpc.Err.to_string e)
  | None -> Alcotest.fail "continuation never ran");
  check_bool "bounded: failed within max_retransmits * rto" true
    (!done_at - issued_at <= (cfg.max_retransmits * cfg.rto_ns) + cfg.rto_ns);
  check_bool "host is back up" false (Erpc.Fabric.host_dead fabric 1);
  check_int "restarted server lost its sessions" 0 (Erpc.Rpc.num_sessions server);
  check_int "no leaked RTO timers" 0 (Erpc.Rpc.armed_rto_count client)

let test_crash_fails_local_pending () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  let results = ref [] in
  for _ = 1 to 4 do
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
        results := r :: !results)
  done;
  (* The *client's* host crashes with requests in flight: every
     continuation must still run (exactly once), with an error. *)
  Erpc.Fabric.crash_host fabric 0 ~down_ns:2_000_000;
  run fabric 50.0;
  check_int "all continuations ran" 4 (List.length !results);
  check_bool "all failed" true (List.for_all Result.is_error !results);
  check_int "crashed client wiped its sessions" 0 (Erpc.Rpc.num_sessions client);
  check_int "no leaked RTO timers" 0 (Erpc.Rpc.armed_rto_count client)

let test_crash_restart_new_session_works () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  Erpc.Fabric.crash_host fabric 1 ~down_ns:1_000_000;
  let r1 = ref None in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r -> r1 := Some r);
  run fabric 200.0;
  check_bool "old session's request failed" true
    (match !r1 with Some (Error _) -> true | _ -> false);
  (* Service resumes: a fresh session to the restarted server works. *)
  let sess2 = connect fabric client in
  let r2 = ref None in
  let req2 = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp2 = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess2 ~req_type:echo ~req:req2 ~resp:resp2 ~cont:(fun r ->
      r2 := Some r);
  run fabric 50.0;
  check_bool "new session to restarted host serves requests" true (!r2 = Some (Ok ()))

(* {2 Injector} *)

let test_injector_refcounts_overlapping_faults () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in
  let net = Erpc.Fabric.net fabric in
  let engine = Erpc.Fabric.engine fabric in
  let inj = Faults.Injector.create fabric in
  (* Two overlapping link-down windows: the link must come back only when
     the *second* one expires. *)
  Faults.Injector.install inj
    [
      { Faults.Schedule.at_ns = 1_000; fault = Link_down { host = 0; down_ns = 10_000 } };
      { Faults.Schedule.at_ns = 5_000; fault = Link_down { host = 0; down_ns = 20_000 } };
    ];
  let probe at f = Sim.Engine.schedule engine at f in
  let up_at = Array.make 3 true in
  probe 3_000 (fun () -> up_at.(0) <- Netsim.Network.host_link_up net ~host:0);
  probe 13_000 (fun () -> up_at.(1) <- Netsim.Network.host_link_up net ~host:0);
  probe 30_000 (fun () -> up_at.(2) <- Netsim.Network.host_link_up net ~host:0);
  Sim.Engine.run engine;
  check_bool "down inside first window" false up_at.(0);
  check_bool "still down after first window expires" false up_at.(1);
  check_bool "up after the overlapping window expires" true up_at.(2);
  check_bool "trace recorded injections and reversions" true
    (Faults.Trace.length (Faults.Injector.trace inj) >= 4)

let test_schedule_random_is_deterministic () =
  let gen () =
    Faults.Schedule.random ~seed:99L ~horizon_ns:50_000_000 ~events:15 ~hosts:10 ~tors:5
  in
  let s1 = gen () and s2 = gen () in
  check_bool "same seed, same schedule" true (s1 = s2);
  check_bool "mixes several fault kinds" true (Faults.Schedule.num_kinds s1 >= 4);
  check_int "requested event count" 15 (List.length s1);
  let s3 =
    Faults.Schedule.random ~seed:100L ~horizon_ns:50_000_000 ~events:15 ~hosts:10 ~tors:5
  in
  check_bool "different seed, different schedule" true (s1 <> s3)

let suite =
  [
    Alcotest.test_case "checksum accepts clean packet" `Quick test_checksum_accepts_clean_packet;
    Alcotest.test_case "checksum detects payload corruption" `Quick
      test_checksum_detects_payload_corruption;
    Alcotest.test_case "checksum detects header corruption" `Quick
      test_checksum_detects_header_corruption;
    Alcotest.test_case "rpc survives corruption" `Quick test_rpc_survives_corruption;
    Alcotest.test_case "drop-nth is deterministic" `Quick test_drop_nth_deterministic;
    Alcotest.test_case "duplication keeps at-most-once" `Quick test_duplication_at_most_once;
    Alcotest.test_case "reorder keeps integrity" `Quick test_reorder_integrity;
    Alcotest.test_case "link down/up recovers" `Quick test_link_down_then_up_recovers;
    Alcotest.test_case "partition heals" `Quick test_partition_heals;
    Alcotest.test_case "bounded retx resets session" `Quick test_bounded_retx_resets_session;
    Alcotest.test_case "retx warning counter" `Quick test_retx_warning_counter;
    Alcotest.test_case "crash+restart -> peer unreachable" `Quick
      test_crash_restart_peer_unreachable;
    Alcotest.test_case "crash fails local pending" `Quick test_crash_fails_local_pending;
    Alcotest.test_case "restarted host serves new sessions" `Quick
      test_crash_restart_new_session_works;
    Alcotest.test_case "injector refcounts overlaps" `Quick
      test_injector_refcounts_overlapping_faults;
    Alcotest.test_case "random schedules deterministic" `Quick
      test_schedule_random_is_deterministic;
  ]
