(* Stress tests for the rare-path machinery: the rate limiter under
   retransmission (Appendix C), and randomized protocol fuzzing across
   loss rates, RTOs and message sizes. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.(echo_req_type)

let with_transport transport (cfg : Erpc.Config.t) = { cfg with Erpc.Config.transport }

let deploy ?(transport = Erpc.Config.Raw_eth) ?config () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let config =
    with_transport transport
      (match config with Some c -> c | None -> Erpc.Config.of_cluster cluster)
  in
  let fabric = Erpc.Fabric.create ~config cluster in
  let handler_runs = ref 0 in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      incr handler_runs;
      let req = Erpc.Req_handle.get_request h in
      let n = Erpc.Msgbuf.size req in
      let resp = Erpc.Req_handle.init_response h ~size:n in
      if n > 0 then Erpc.Msgbuf.blit ~src:req ~src_off:0 ~dst:resp ~dst_off:0 ~len:n;
      Erpc.Req_handle.enqueue_response h resp);
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.ms 1.0);
  (fabric, client, sess, handler_runs)

let run fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

(* Appendix C: retransmitted packets can sit in the rate limiter; eRPC
   drops responses that arrive while such references exist. Force the
   session through the wheel by congesting it (rate pinned low), inject
   loss, and verify correctness survives the interaction. *)
let test_rate_limited_retransmissions tp () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let base = Erpc.Config.of_cluster cluster in
  (* Disable the bypass so every packet goes through the Carousel wheel,
     and keep the RTO short enough to fire while packets are wheeled. *)
  let config =
    {
      base with
      opts = { base.opts with rate_limiter_bypass = false };
      (* Zero additive increase keeps the pinned rate pinned; the RTO must
         exceed the ~435 us it takes to pace a 5-packet request at
         100 Mbps, or retransmission could never outrun the pacing (real
         eRPC's 5 ms RTO maintains the same relation to its rate floor). *)
      cc = { base.cc with add_rate_bps = 0. };
      rto_ns = 600_000;
    }
  in
  let fabric, client, sess, handler_runs = deploy ~transport:tp ~config () in
  (* Pin the session's rate to 100 Mbps so every packet is wheeled. *)
  (match sess.Erpc.Session.cc with
  | Some (Erpc.Cc.Timely_cc tl) -> Erpc.Timely.set_rate_bps tl 100e6
  | _ -> Alcotest.fail "expected a Timely controller");
  Netsim.Network.set_loss_prob (Erpc.Fabric.net fabric) 0.05;
  let n = 10 in
  let completed = ref 0 in
  let rec issue i =
    if i < n then begin
      let req = Erpc.Msgbuf.alloc ~max_size:5_000 in
      let resp = Erpc.Msgbuf.alloc ~max_size:5_000 in
      Erpc.Msgbuf.set_u32 req ~off:0 i;
      Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
          if Result.is_ok r then begin
            check_int "payload survives the wheel" i (Erpc.Msgbuf.get_u32 resp ~off:0);
            incr completed
          end;
          issue (i + 1))
    end
  in
  issue 0;
  run fabric 3_000.0;
  check_int "all complete through the rate limiter" n !completed;
  check_int "at-most-once held" n !handler_runs;
  check_bool "wheel actually used" true ((Erpc.Rpc.stats client).Erpc.Rpc_stats.wheel_inserts > 0);
  check_bool "retransmissions actually happened" true ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits > 0)

(* Randomized end-to-end fuzz: loss rate, RTO, credits and sizes all vary;
   the invariants never do. *)
let protocol_fuzz tp =
  let gen =
    QCheck2.Gen.(
      pair
        (pair
           (int_range 0 40 (* loss in tenths of a percent *))
           (int_range 200 5_000 (* rto in us *)))
        (pair
           (int_range 2 32 (* credits *))
           (list_size (int_range 1 8) (int_range 1 30_000 (* message sizes *)))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"protocol fuzz (loss x rto x credits x sizes)" ~count:25 gen
       (fun ((loss_tenths, rto_us), (credits, sizes)) ->
         let cluster = Transport.Cluster.cx5 ~nodes:2 () in
         let base = Erpc.Config.of_cluster ~credits cluster in
         let config = { base with rto_ns = rto_us * 1_000 } in
         let fabric, client, sess, handler_runs = deploy ~transport:tp ~config () in
         Netsim.Network.set_loss_prob (Erpc.Fabric.net fabric)
           (float_of_int loss_tenths /. 1_000.);
         let expected = List.length sizes in
         let completed = ref 0 in
         let pending = ref sizes in
         let rec issue () =
           match !pending with
           | [] -> ()
           | size :: rest ->
               pending := rest;
               let req = Erpc.Msgbuf.alloc ~max_size:size in
               let pattern =
                 String.init size (fun j -> Char.chr ((j + size) land 0xff))
               in
               Erpc.Msgbuf.write_string req ~off:0 pattern;
               let resp = Erpc.Msgbuf.alloc ~max_size:size in
               Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp
                 ~cont:(fun r ->
                   (match r with
                   | Ok () when Erpc.Msgbuf.read_string resp ~off:0 ~len:size = pattern ->
                       incr completed
                   | _ -> ());
                   issue ())
         in
         issue ();
         run fabric 4_000.0;
         !completed = expected
         && !handler_runs = expected
         && sess.Erpc.Session.credits = sess.Erpc.Session.credit_limit
         && Erpc.Session.outstanding_packets sess = 0))

(* Sustained bidirectional churn with loss: both endpoints act as client
   and server simultaneously (the Fig 4 pattern) on a lossy link. *)
let test_bidirectional_churn_with_loss tp () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric =
    Erpc.Fabric.create ~config:(with_transport tp (Erpc.Config.of_cluster cluster)) cluster
  in
  let nexuses =
    Array.init 2 (fun host ->
        let nx = Erpc.Nexus.create fabric ~host () in
        Erpc.Nexus.register_handler nx ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
            Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:32));
        nx)
  in
  let rpcs = Array.map (fun nx -> Erpc.Rpc.create nx ~rpc_id:0) nexuses in
  let s01 = Erpc.Rpc.create_session rpcs.(0) ~remote_host:1 ~remote_rpc_id:0 () in
  let s10 = Erpc.Rpc.create_session rpcs.(1) ~remote_host:0 ~remote_rpc_id:0 () in
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.ms 1.0);
  Netsim.Network.set_loss_prob (Erpc.Fabric.net fabric) 0.01;
  let done0 = ref 0 and done1 = ref 0 in
  let n = 300 in
  let spin rpc sess counter =
    let rec issue i =
      if i < n then begin
        let req = Erpc.Msgbuf.alloc ~max_size:32 in
        let resp = Erpc.Msgbuf.alloc ~max_size:32 in
        Erpc.Rpc.enqueue_request rpc sess ~req_type:echo ~req ~resp ~cont:(fun r ->
            if Result.is_ok r then incr counter;
            issue (i + 1))
      end
    in
    issue 0
  in
  spin rpcs.(0) s01 done0;
  spin rpcs.(1) s10 done1;
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.s 3.0));
  check_int "direction 0->1 all done" n !done0;
  check_int "direction 1->0 all done" n !done1

let suite_for tp =
  [
    Alcotest.test_case "rate-limited retransmissions (Appendix C path)" `Quick
      (test_rate_limited_retransmissions tp);
    protocol_fuzz tp;
    Alcotest.test_case "bidirectional churn with loss" `Quick
      (test_bidirectional_churn_with_loss tp);
  ]

let suite = suite_for Erpc.Config.Raw_eth
let suite_rc = suite_for Erpc.Config.Rdma_rc
