(* Randomized Raft safety testing: under random partitions, elections,
   message reordering/loss and client submissions, the core safety
   properties must hold:
   - election safety: at most one leader per term;
   - state-machine safety: no two nodes apply different commands at the
     same index;
   - apply order: every node applies indices 1,2,3,... with no gaps or
     duplicates;
   - commit monotonicity. *)

let check_bool = Alcotest.(check bool)

type world = {
  mutable nodes : string Raft.Core.t array;
  pending : (int * string Raft.Core.msg) Queue.t;
  applied : (int, (int * string) list ref) Hashtbl.t;  (* node -> newest-first *)
  leaders_by_term : (int, int) Hashtbl.t;  (* term -> leader id *)
  mutable reachable : bool array array;
}

let make_world n seed =
  let rng = Sim.Rng.create seed in
  let w =
    {
      nodes = [||];
      pending = Queue.create ();
      applied = Hashtbl.create 8;
      leaders_by_term = Hashtbl.create 8;
      reachable = Array.make_matrix n n true;
    }
  in
  w.nodes <-
    Array.init n (fun id ->
        Hashtbl.replace w.applied id (ref []);
        let peers = Array.of_list (List.filter (fun p -> p <> id) (List.init n Fun.id)) in
        Raft.Core.create ~id ~peers Raft.Core.default_config
          ~send:(fun dst msg ->
            if w.reachable.(id).(dst) then Queue.add (dst, msg) w.pending)
          ~apply:(fun index cmd ->
            let l = Hashtbl.find w.applied id in
            l := (index, cmd) :: !l)
          ~random:(fun bound -> Sim.Rng.int rng bound));
  w

let observe_leaders w =
  Array.iter
    (fun node ->
      if Raft.Core.role node = Raft.Core.Leader then begin
        let term = Raft.Core.term node in
        match Hashtbl.find_opt w.leaders_by_term term with
        | None -> Hashtbl.replace w.leaders_by_term term (Raft.Core.id node)
        | Some other ->
            if other <> Raft.Core.id node then
              Alcotest.failf "two leaders in term %d: %d and %d" term other
                (Raft.Core.id node)
      end)
    w.nodes

(* Deliver up to [k] messages, possibly dropping some. *)
let deliver_some w rng k =
  let i = ref 0 in
  while (not (Queue.is_empty w.pending)) && !i < k do
    incr i;
    let dst, msg = Queue.take w.pending in
    if Sim.Rng.int rng 100 < 90 then Raft.Core.receive w.nodes.(dst) msg;
    observe_leaders w
  done

let random_partition w rng n =
  (* Either heal everything or cut a random bidirectional set. *)
  if Sim.Rng.int rng 3 = 0 then
    w.reachable <- Array.make_matrix n n true
  else begin
    let a = Sim.Rng.int rng n and b = Sim.Rng.int rng n in
    w.reachable.(a).(b) <- false;
    w.reachable.(b).(a) <- false
  end

let check_safety w =
  (* Collect applied sequences oldest-first and compare pairwise. *)
  let seqs =
    Hashtbl.fold (fun id l acc -> (id, List.rev !l) :: acc) w.applied []
  in
  List.iter
    (fun (id, seq) ->
      (* Gapless, duplicate-free, in order. *)
      List.iteri
        (fun i (index, _) ->
          if index <> i + 1 then
            Alcotest.failf "node %d applied index %d at position %d" id index i)
        seq)
    seqs;
  List.iter
    (fun (ida, sa) ->
      List.iter
        (fun (idb, sb) ->
          if ida < idb then
            List.iteri
              (fun i (index, cmd) ->
                match List.nth_opt sb i with
                | Some (index', cmd') ->
                    if index <> index' || cmd <> cmd' then
                      Alcotest.failf "divergence at index %d between nodes %d and %d" index
                        ida idb
                | None -> ())
              sa)
        seqs)
    seqs

let run_chaos ~seed ~steps ~n =
  let w = make_world n seed in
  let rng = Sim.Rng.create (Int64.add seed 1L) in
  let submitted = ref 0 in
  for _ = 1 to steps do
    (match Sim.Rng.int rng 10 with
    | 0 | 1 ->
        (* someone's election timer expires *)
        Raft.Core.periodic
          w.nodes.(Sim.Rng.int rng n)
          ~elapsed_ns:(Raft.Core.default_config.election_timeout_max_ns + 1)
    | 2 ->
        (* heartbeats *)
        Array.iter
          (fun node ->
            Raft.Core.periodic node ~elapsed_ns:(Raft.Core.default_config.heartbeat_ns + 1))
          w.nodes
    | 3 -> random_partition w rng n
    | 4 | 5 | 6 ->
        (* a client tries to submit at a random node *)
        incr submitted;
        ignore
          (Raft.Core.submit
             w.nodes.(Sim.Rng.int rng n)
             (Printf.sprintf "cmd-%d" !submitted))
    | _ -> deliver_some w rng (1 + Sim.Rng.int rng 20));
    observe_leaders w;
    check_safety w
  done;
  (* Heal and let the cluster converge; everything still safe. *)
  w.reachable <- Array.make_matrix n n true;
  for _ = 1 to 20 do
    Array.iter
      (fun node ->
        Raft.Core.periodic node ~elapsed_ns:(Raft.Core.default_config.heartbeat_ns + 1))
      w.nodes;
    deliver_some w rng 10_000
  done;
  check_safety w;
  (* Liveness after healing: some commands committed somewhere. *)
  Array.exists (fun node -> Raft.Core.commit_index node > 0) w.nodes

let test_chaos_3 () =
  let progressed = ref 0 in
  for seed = 1 to 30 do
    if run_chaos ~seed:(Int64.of_int seed) ~steps:300 ~n:3 then incr progressed
  done;
  check_bool "most seeds make progress" true (!progressed > 20)

let test_chaos_5 () =
  let progressed = ref 0 in
  for seed = 100 to 114 do
    if run_chaos ~seed:(Int64.of_int seed) ~steps:400 ~n:5 then incr progressed
  done;
  check_bool "most seeds make progress" true (!progressed > 8)

(* {2 Full-stack crash-restart during elections}

   The pure-core chaos above never exercises {!Erpc.Fabric.crash_host}:
   losing volatile state, dead sessions, and log catch-up on rejoin only
   exist in the deployed service. These tests aim crashes at the two most
   delicate moments — a candidate mid-election, and a freshly elected
   leader — and require the group to still elect, converge and serve. *)

let deploy_service () =
  let cluster = Transport.Cluster.cx5 ~nodes:4 () in
  let d = Experiments.Harness.deploy cluster ~threads_per_host:1 in
  let map = Service.Shard_map.create ~shards:1 ~replication:3 ~replica_hosts:[| 0; 1; 2 |] in
  let replicas =
    Array.map
      (fun host ->
        Service.Replica.create ~fabric:d.fabric ~nexus:d.nexuses.(host)
          ~rpc:d.rpcs.(host).(0) ~map ~host ())
      [| 0; 1; 2 |]
  in
  (d, map, replicas)

let find_role d replicas role =
  Array.find_opt
    (fun r ->
      (not (Erpc.Fabric.host_dead d.Experiments.Harness.fabric (Service.Replica.host r)))
      && Raft.Core.role (Service.Replica.raft r ~shard:0) = role)
    replicas

let wait_for d replicas role ~budget_ms =
  let budget = ref (budget_ms * 2) in
  let found = ref (find_role d replicas role) in
  while !found = None && !budget > 0 do
    Experiments.Harness.run_us d 500.0;
    decr budget;
    found := find_role d replicas role
  done;
  !found

let wait_leader d replicas ~budget_ms =
  match wait_for d replicas Raft.Core.Leader ~budget_ms with
  | Some r -> r
  | None -> Alcotest.fail "no leader elected"

let put_and_check d map replicas ~key_id ~tag =
  let client =
    Service.Kv_client.create ~fabric:d.Experiments.Harness.fabric
      ~rpc:d.Experiments.Harness.rpcs.(3).(0) ~map ~client_id:5 ()
  in
  let key = Workload.Keygen.encode key_id in
  let value = tag ^ String.make (Service.Kv_proto.value_size - String.length tag) '\000' in
  let acked = ref false in
  ignore
    (Service.Kv_client.put client ~key ~value ~deadline_ns:100_000_000 ~cont:(fun r ->
         acked := Result.is_ok r));
  let budget = ref 120 in
  while (not !acked) && !budget > 0 do
    Experiments.Harness.run_ms d 1.0;
    decr budget
  done;
  check_bool "post-chaos put acked" true !acked;
  (* Let commit propagate, then require full convergence. *)
  Experiments.Harness.run_ms d 30.0;
  Array.iter
    (fun r ->
      check_bool "replica caught up with the post-chaos write" true
        (Mica.Store.get (Service.Replica.store r ~shard:0) ~key = Some value))
    replicas

let test_crash_candidate_mid_election () =
  let d, map, replicas = deploy_service () in
  let leader = wait_leader d replicas ~budget_ms:500 in
  (* Kill the leader to force an election, then kill the first candidate
     the moment it appears: its votes are in flight, its log may be the
     longest in the group. *)
  Erpc.Fabric.crash_host d.fabric (Service.Replica.host leader) ~down_ns:50_000_000;
  (match wait_for d replicas Raft.Core.Candidate ~budget_ms:100 with
  | Some cand ->
      Erpc.Fabric.crash_host d.fabric (Service.Replica.host cand) ~down_ns:40_000_000
  | None -> Alcotest.fail "no candidate emerged after leader crash");
  (* With both crashes pending there may be < quorum until a restart;
     once hosts rejoin, a leader must emerge and serve. *)
  Experiments.Harness.run_ms d 120.0;
  ignore (wait_leader d replicas ~budget_ms:500);
  put_and_check d map replicas ~key_id:41 ~tag:"cand-crash";
  check_bool "a replica crash-restarted"
    true
    (Array.exists (fun r -> Service.Replica.restarts r >= 1) replicas);
  Array.iter Service.Replica.stop replicas

let test_crash_new_leader_after_election () =
  let d, map, replicas = deploy_service () in
  let leader = wait_leader d replicas ~budget_ms:500 in
  let first_host = Service.Replica.host leader in
  Erpc.Fabric.crash_host d.fabric first_host ~down_ns:60_000_000;
  (* The instant a successor wins, crash it too — its no-op barrier entry
     and any client traffic it accepted are at maximum risk. *)
  let successor = ref None in
  let budget = ref 400 in
  while !successor = None && !budget > 0 do
    Experiments.Harness.run_us d 500.0;
    decr budget;
    successor :=
      Array.find_opt
        (fun r ->
          Service.Replica.host r <> first_host
          && (not (Erpc.Fabric.host_dead d.fabric (Service.Replica.host r)))
          && Service.Replica.is_leader r ~shard:0)
        replicas
  done;
  (match !successor with
  | Some s -> Erpc.Fabric.crash_host d.fabric (Service.Replica.host s) ~down_ns:40_000_000
  | None -> Alcotest.fail "no successor elected after leader crash");
  Experiments.Harness.run_ms d 120.0;
  ignore (wait_leader d replicas ~budget_ms:500);
  put_and_check d map replicas ~key_id:42 ~tag:"succ-crash";
  Array.iter Service.Replica.stop replicas

let suite =
  [
    Alcotest.test_case "chaos: 3 nodes, 30 seeds" `Quick test_chaos_3;
    Alcotest.test_case "chaos: 5 nodes, 15 seeds" `Quick test_chaos_5;
    Alcotest.test_case "full stack: crash candidate mid-election" `Quick
      test_crash_candidate_mid_election;
    Alcotest.test_case "full stack: crash new leader right after election" `Quick
      test_crash_new_leader_after_election;
  ]
