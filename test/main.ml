let () =
  Alcotest.run "erpc_repro"
    [
      ("sim", Test_sim.suite);
      ("netsim", Test_netsim.suite);
      ("lossless", Test_lossless.suite);
      ("nic", Test_nic.suite);
      ("transport", Test_transport.suite);
      ("stats", Test_stats.suite);
      ("msgbuf", Test_msgbuf.suite);
      ("wheel", Test_wheel.suite);
      ("timely", Test_timely.suite);
      ("dcqcn", Test_dcqcn.suite);
      ("erpc_basic", Test_erpc_basic.suite);
      ("erpc_protocol", Test_erpc_protocol.suite);
      ("erpc_loss", Test_erpc_loss.suite);
      ("erpc_failure", Test_erpc_failure.suite);
      ("erpc_worker", Test_erpc_worker.suite);
      ("erpc_session_mgmt", Test_erpc_session_mgmt.suite);
      ("erpc_sm", Test_sm.suite);
      ("faults", Test_faults.suite);
      ("chaos", Test_chaos.suite);
      ("erpc_config_matrix", Test_erpc_config_matrix.suite);
      ("erpc_edge", Test_erpc_edge.suite);
      ("erpc_stress", Test_erpc_stress.suite);
      ("codec", Test_codec.suite);
      ("experiments_smoke", Test_experiments_smoke.suite);
      ("misc", Test_misc.suite);
      ("mica", Test_mica.suite);
      ("masstree", Test_masstree.suite);
      ("raft", Test_raft.suite);
      ("raft_chaos", Test_raft_chaos.suite);
      ("raft_erpc", Test_raft_erpc.suite);
      ("rdma", Test_rdma.suite);
      ("workload", Test_workload.suite);
    ]
