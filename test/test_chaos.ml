(* Chaos harness acceptance: >= 20 seeded fault schedules, each mixing
   >= 4 fault kinds, all recovery invariants green, and byte-identical
   traces when a seed is rerun. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_suite_invariants () =
  let s = Experiments.Chaos.run_suite ~seeds:20 () in
  check_int "20 schedules ran" 20 (List.length s.runs);
  List.iter
    (fun (r : Experiments.Chaos.run_result) ->
      Alcotest.(check (list string))
        (Printf.sprintf "seed %Ld: invariants hold" r.seed)
        [] r.violations;
      check_bool
        (Printf.sprintf "seed %Ld: >= 4 fault kinds" r.seed)
        true (r.fault_kinds >= 4);
      check_int
        (Printf.sprintf "seed %Ld: every request completed" r.seed)
        r.issued (r.ok + r.failed))
    s.runs;
  check_bool "same seed => byte-identical trace" true s.deterministic;
  (* The suite must actually exercise recovery machinery, not idle through
     a quiet network. *)
  let total f = List.fold_left (fun acc r -> acc + f r) 0 s.runs in
  check_bool "retransmissions exercised" true
    (total (fun (r : Experiments.Chaos.run_result) -> r.retransmits) > 0);
  check_bool "session resets exercised" true
    (total (fun (r : Experiments.Chaos.run_result) -> r.session_resets) > 0);
  check_bool "checksum drops exercised" true
    (total (fun (r : Experiments.Chaos.run_result) -> r.rx_corrupt) > 0);
  check_bool "some requests failed (faults bit)" true
    (total (fun (r : Experiments.Chaos.run_result) -> r.failed) > 0);
  check_bool "most requests still succeeded" true
    (total (fun (r : Experiments.Chaos.run_result) -> r.ok)
    > total (fun (r : Experiments.Chaos.run_result) -> r.failed))

let test_single_run_trace_stable () =
  let r1 = Experiments.Chaos.run_one ~seed:4242L () in
  let r2 = Experiments.Chaos.run_one ~seed:4242L () in
  check_bool "traces byte-identical" true (r1.trace = r2.trace);
  check_bool "trace non-trivial" true (String.length r1.trace > 0)

let suite =
  [
    Alcotest.test_case "20-seed suite invariants" `Quick test_suite_invariants;
    Alcotest.test_case "single-run trace stable" `Quick test_single_run_trace_stable;
  ]
