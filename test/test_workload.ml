(* Tests for workload generators. *)

let check_bool = Alcotest.(check bool)

let test_uniform_bounds () =
  let g = Workload.Keygen.uniform ~n:100 in
  let rng = Sim.Rng.create 1L in
  for _ = 1 to 10_000 do
    let k = Workload.Keygen.next g rng in
    check_bool "bounds" true (k >= 0 && k < 100)
  done

let test_uniform_covers_space () =
  let g = Workload.Keygen.uniform ~n:10 in
  let rng = Sim.Rng.create 2L in
  let seen = Array.make 10 false in
  for _ = 1 to 1_000 do
    seen.(Workload.Keygen.next g rng) <- true
  done;
  check_bool "all keys seen" true (Array.for_all Fun.id seen)

let test_zipf_bounds () =
  let g = Workload.Keygen.zipf ~n:1_000 ~theta:0.99 in
  let rng = Sim.Rng.create 3L in
  for _ = 1 to 10_000 do
    let k = Workload.Keygen.next g rng in
    check_bool "bounds" true (k >= 0 && k < 1_000)
  done

let test_zipf_is_skewed () =
  let n = 1_000 in
  let g = Workload.Keygen.zipf ~n ~theta:0.99 in
  let rng = Sim.Rng.create 4L in
  let counts = Array.make n 0 in
  let total = 100_000 in
  for _ = 1 to total do
    let k = Workload.Keygen.next g rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* YCSB zipf(0.99): the hottest key draws far more than uniform share
     (which would be 100 here). *)
  check_bool
    (Printf.sprintf "hot key %d" counts.(0))
    true
    (counts.(0) > 10 * (total / n));
  (* And the tail is cold. *)
  let tail = Array.fold_left ( + ) 0 (Array.sub counts (n / 2) (n / 2)) in
  check_bool "cold tail" true (tail < total / 4)

let test_encode () =
  Alcotest.(check string) "default width" "0000000000000042" (Workload.Keygen.encode 42);
  Alcotest.(check string) "width 8" "00000042" (Workload.Keygen.encode ~width:8 42);
  Alcotest.(check int) "fixed length" 16 (String.length (Workload.Keygen.encode 123456));
  (* Lexicographic order matches numeric order. *)
  check_bool "order preserved" true
    (String.compare (Workload.Keygen.encode 99) (Workload.Keygen.encode 100) < 0)

let test_encode_overflow () =
  (* Width is a minimum: an id wider than [width] keeps all its digits. *)
  Alcotest.(check string) "no truncation" "123456" (Workload.Keygen.encode ~width:4 123456);
  Alcotest.(check int) "overflow length" 6
    (String.length (Workload.Keygen.encode ~width:4 123456));
  Alcotest.(check string) "exact fit" "1234" (Workload.Keygen.encode ~width:4 1234);
  (* Injective even when ids straddle the width boundary. *)
  let seen = Hashtbl.create 4096 in
  for k = 0 to 9_999 do
    let s = Workload.Keygen.encode ~width:2 k in
    check_bool "distinct" false (Hashtbl.mem seen s);
    Hashtbl.replace seen s ()
  done;
  (* Default width 16 stays fixed-length up to 10^16 - 1; max_int (19
     digits) overflows to its full decimal rendering. *)
  Alcotest.(check int) "big id still 16" 16
    (String.length (Workload.Keygen.encode ((Int.shift_left 1 53) - 1)));
  Alcotest.(check string) "max_int keeps all digits" (string_of_int max_int)
    (Workload.Keygen.encode max_int);
  Alcotest.check_raises "negative id"
    (Invalid_argument "Keygen.encode: negative id") (fun () ->
      ignore (Workload.Keygen.encode (-1)))

(* ---------- statistical fit of the generators ---------- *)

(* Analytic Zipf pmf matching Keygen.zipf's parameterisation: rank 0 is
   hottest, p_i proportional to 1/(i+1)^theta. *)
let zipf_pmf n theta =
  let p = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) theta) in
  let z = Array.fold_left ( +. ) 0. p in
  Array.map (fun x -> x /. z) p

let test_zipf_matches_analytic_cdf () =
  let n = 400 and theta = 0.99 and draws = 200_000 in
  let g = Workload.Keygen.zipf ~n ~theta in
  let rng = Sim.Rng.create 7L in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Workload.Keygen.next g rng in
    counts.(k) <- counts.(k) + 1
  done;
  let pmf = zipf_pmf n theta in
  (* Kolmogorov-Smirnov distance between the empirical CDF and the
     analytic Zipf CDF. The YCSB sampler is itself an approximation
     (exact at ranks 0 and 1, interpolated beyond), so the bound covers
     both sampling noise (~1.95/sqrt(draws) = 0.004 at alpha = 0.001)
     and the approximation error. *)
  let ks = ref 0. and emp = ref 0. and ana = ref 0. in
  for i = 0 to n - 1 do
    emp := !emp +. (float_of_int counts.(i) /. float_of_int draws);
    ana := !ana +. pmf.(i);
    ks := Float.max !ks (Float.abs (!emp -. !ana))
  done;
  check_bool (Printf.sprintf "KS distance %.4f <= 0.02" !ks) true (!ks <= 0.02);
  (* The hottest key's mass matches its analytic share. *)
  let f0 = float_of_int counts.(0) /. float_of_int draws in
  check_bool
    (Printf.sprintf "hot-key mass %.4f vs analytic %.4f" f0 pmf.(0))
    true
    (Float.abs (f0 -. pmf.(0)) <= 0.01)

let walk_arrivals arr ~count =
  let ts = Array.make count 0 in
  let now = ref 0 in
  for i = 0 to count - 1 do
    now := Workload.Arrival.next_after arr ~now_ns:!now;
    ts.(i) <- !now
  done;
  ts

let test_poisson_interarrivals () =
  let rate = 1e6 (* mean gap 1000 ns *) in
  let spec = Workload.Arrival.Poisson { rate_rps = rate } in
  let arr = Workload.Arrival.make spec ~rng:(Sim.Rng.create 11L) in
  let count = 50_000 in
  let ts = walk_arrivals arr ~count in
  let gaps = Array.init (count - 1) (fun i -> ts.(i + 1) - ts.(i)) in
  Array.iter (fun g -> check_bool "strictly increasing" true (g > 0)) gaps;
  let m = 1e9 /. rate in
  let mean =
    float_of_int (Array.fold_left ( + ) 0 gaps) /. float_of_int (Array.length gaps)
  in
  (* Sample mean of exp(1000): stderr = 1000/sqrt(50k) = 4.5 ns; 2% = 20 ns. *)
  check_bool (Printf.sprintf "mean gap %.1f ~ %.1f" mean m) true
    (Float.abs (mean -. m) /. m <= 0.02);
  (* Memorylessness: survival fractions at 1x and 2x the mean match e^-1
     and e^-2 (tolerance ~4.5 sigma of the binomial proportion). *)
  let frac_above x =
    float_of_int (Array.fold_left (fun a g -> if float_of_int g > x then a + 1 else a) 0 gaps)
    /. float_of_int (Array.length gaps)
  in
  check_bool
    (Printf.sprintf "P[gap > mean] = %.4f ~ e^-1" (frac_above m))
    true
    (Float.abs (frac_above m -. exp (-1.)) <= 0.01);
  check_bool
    (Printf.sprintf "P[gap > 2 mean] = %.4f ~ e^-2" (frac_above (2. *. m)))
    true
    (Float.abs (frac_above (2. *. m) -. exp (-2.)) <= 0.01)

let test_on_off_duty_cycle () =
  let rate = 1e6 and on_ns = 40_000 and off_ns = 60_000 in
  let spec = Workload.Arrival.On_off { rate_rps = rate; on_ns; off_ns } in
  let arr = Workload.Arrival.make spec ~rng:(Sim.Rng.create 13L) in
  let count = 100_000 in
  let ts = walk_arrivals arr ~count in
  let period = on_ns + off_ns in
  (* Every arrival lands inside an on-window (never in the silent phase). *)
  Array.iter
    (fun t ->
      check_bool "in on-window" true (t mod period < on_ns);
      check_bool "active_at agrees" true
        (Workload.Arrival.active_at spec ~now_ns:t))
    ts;
  check_bool "off-phase is inactive" false
    (Workload.Arrival.active_at spec ~now_ns:(on_ns + (off_ns / 2)));
  (* Long-run realized rate = rate x duty cycle. *)
  let duty = float_of_int on_ns /. float_of_int period in
  let realized = float_of_int count /. (float_of_int ts.(count - 1) /. 1e9) in
  let expected = rate *. duty in
  check_bool
    (Printf.sprintf "realized %.0f rps ~ %.0f" realized expected)
    true
    (Float.abs (realized -. expected) /. expected <= 0.03);
  check_bool "mean_rate_rps agrees" true
    (Float.abs (Workload.Arrival.mean_rate_rps spec -. expected) <= 1e-6)

let test_ramp_trough_vs_peak () =
  let base = 1e5 and peak = 1e6 and period_ns = 1_000_000 in
  let spec = Workload.Arrival.Ramp { base_rps = base; peak_rps = peak; period_ns } in
  let arr = Workload.Arrival.make spec ~rng:(Sim.Rng.create 17L) in
  let count = 200_000 in
  let ts = walk_arrivals arr ~count in
  (* Bin arrivals by phase decile: the half-period bin (rate = peak) must
     dwarf the phase-0 bin (rate = base); analytic ratio is ~10. *)
  let bins = Array.make 10 0 in
  Array.iter
    (fun t ->
      let phase = t mod period_ns in
      bins.(phase * 10 / period_ns) <- bins.(phase * 10 / period_ns) + 1)
    ts;
  let trough = bins.(0) + bins.(9) and crest = bins.(4) + bins.(5) in
  check_bool
    (Printf.sprintf "crest %d >> trough %d" crest trough)
    true
    (crest > 3 * trough);
  (* Long-run mean is the raised-cosine average (base + peak) / 2. *)
  let realized = float_of_int count /. (float_of_int ts.(count - 1) /. 1e9) in
  let expected = Workload.Arrival.mean_rate_rps spec in
  check_bool
    (Printf.sprintf "realized %.0f rps ~ %.0f" realized expected)
    true
    (Float.abs (realized -. expected) /. expected <= 0.05)

(* ---------- determinism: same seed, same draws ---------- *)

let arrival_specs =
  [
    Workload.Arrival.Poisson { rate_rps = 5e5 };
    Workload.Arrival.On_off { rate_rps = 1e6; on_ns = 3_000; off_ns = 7_000 };
    Workload.Arrival.Ramp { base_rps = 1e5; peak_rps = 8e5; period_ns = 100_000 };
  ]

let prop_arrival_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"same seed => identical arrival sequence" ~count:50
       QCheck2.Gen.(pair (int_range 0 2) (int_bound 1_000_000))
       (fun (which, seed) ->
         let spec = List.nth arrival_specs which in
         let walk () =
           let arr =
             Workload.Arrival.make spec ~rng:(Sim.Rng.create (Int64.of_int seed))
           in
           Array.to_list (walk_arrivals arr ~count:200)
         in
         walk () = walk ()))

let keygens =
  [
    (fun () -> Workload.Keygen.uniform ~n:1024);
    (fun () -> Workload.Keygen.zipf ~n:1024 ~theta:0.99);
    (fun () ->
      Workload.Keygen.hot_shift
        ~base:(Workload.Keygen.zipf ~n:1024 ~theta:0.99)
        ~period_ns:1_000 ~stride:64);
  ]

let prop_keygen_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"same seed => identical key sequence" ~count:50
       QCheck2.Gen.(pair (int_range 0 2) (int_bound 1_000_000))
       (fun (which, seed) ->
         let g = (List.nth keygens which) () in
         let draw () =
           let rng = Sim.Rng.create (Int64.of_int seed) in
           List.init 200 (fun i ->
               Workload.Keygen.next_at g rng ~now_ns:(i * 137))
         in
         draw () = draw ()))

(* ---------- hot-key-shift semantics ---------- *)

let test_hot_shift_rotation () =
  let n = 1024 and stride = 100 and period_ns = 1_000 in
  let base = Workload.Keygen.zipf ~n ~theta:0.99 in
  let hs = Workload.Keygen.hot_shift ~base ~period_ns ~stride in
  Alcotest.(check int) "keyspace preserved" n (Workload.Keygen.space hs);
  (* Epoch e rotates the base draw by exactly e * stride (mod n): verify
     against the base generator driven by an identically seeded rng. *)
  for epoch = 0 to 7 do
    let now_ns = (epoch * period_ns) + (period_ns / 2) in
    let r1 = Sim.Rng.create 23L and r2 = Sim.Rng.create 23L in
    for _ = 1 to 100 do
      let kb = Workload.Keygen.next_at base r1 ~now_ns in
      let kh = Workload.Keygen.next_at hs r2 ~now_ns in
      Alcotest.(check int) "rotated draw" ((kb + (epoch * stride mod n)) mod n) kh
    done
  done;
  (* The hottest observed rank follows the schedule. *)
  let hottest ~now_ns =
    let rng = Sim.Rng.create 29L in
    let counts = Array.make n 0 in
    for _ = 1 to 20_000 do
      let k = Workload.Keygen.next_at hs rng ~now_ns in
      counts.(k) <- counts.(k) + 1
    done;
    let best = ref 0 in
    Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
    !best
  in
  Alcotest.(check int) "epoch 0 hot key" 0 (hottest ~now_ns:0);
  Alcotest.(check int) "epoch 3 hot key" (3 * stride mod n)
    (hottest ~now_ns:(3 * period_ns));
  Alcotest.check_raises "bad period"
    (Invalid_argument "Keygen.hot_shift: period_ns <= 0") (fun () ->
      ignore (Workload.Keygen.hot_shift ~base ~period_ns:0 ~stride:1))

let suite =
  [
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "uniform coverage" `Quick test_uniform_covers_space;
    Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf skew" `Quick test_zipf_is_skewed;
    Alcotest.test_case "key encoding" `Quick test_encode;
    Alcotest.test_case "key encoding width overflow" `Quick test_encode_overflow;
    Alcotest.test_case "zipf matches analytic CDF" `Quick test_zipf_matches_analytic_cdf;
    Alcotest.test_case "poisson interarrivals" `Quick test_poisson_interarrivals;
    Alcotest.test_case "on-off duty cycle" `Quick test_on_off_duty_cycle;
    Alcotest.test_case "ramp trough vs peak" `Quick test_ramp_trough_vs_peak;
    Alcotest.test_case "hot-key-shift rotation" `Quick test_hot_shift_rotation;
    prop_arrival_deterministic;
    prop_keygen_deterministic;
  ]
