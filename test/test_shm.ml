(* Intra-host shared-memory transport: mux routing, disabled fallback,
   crash-restart ring reset, ownership-guard faults, backpressure, the
   serialize-vs-share cost-model crossover, and the zero wire/switch
   anatomy invariant. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.echo_req_type
let run = Transport_testkit.run
let connect = Transport_testkit.connect

let shm_stats rpc =
  match Erpc.Rpc.shm_endpoint rpc with
  | Some ep -> Shm.stats ep
  | None -> Alcotest.fail "expected a shm endpoint"

(* Same-host session with shm disabled: the config gate keeps the plain
   wire transport, and the RPC still completes over the NIC loopback. *)
let test_disabled_same_host_falls_back () =
  let cluster =
    Transport.Cluster.colocate (Transport.Cluster.cx5 ~nodes:2 ()) [ [ 0; 1 ] ]
  in
  let fabric, client, _server =
    Transport_testkit.make_pair ~cluster ~config:(Erpc.Config.of_cluster cluster) ()
  in
  check_bool "no shm endpoint" true (Erpc.Rpc.shm_endpoint client = None);
  Alcotest.(check string)
    "wire transport selected" "raw_eth"
    (Transport.Iface.kind (Erpc.Rpc.transport client));
  let sess = connect fabric client in
  ignore (Transport_testkit.do_rpc fabric client sess ~req_size:32 ~resp_cap:32);
  check_bool "packets went over the NIC" true
    (Transport.Iface.tx_packets (Erpc.Rpc.transport client) > 0)

(* One endpoint, mixed session set: the mux must route the co-located
   session over the rings and the remote one over the wire. *)
let test_mux_routes_local_and_remote () =
  let cluster =
    Transport.Cluster.colocate (Transport.Cluster.cx5 ~nodes:3 ()) [ [ 0; 1 ] ]
  in
  let config = { (Erpc.Config.of_cluster cluster) with shm_enabled = true } in
  let fabric = Erpc.Fabric.create ~config cluster in
  let nexuses = Array.init 3 (fun host -> Erpc.Nexus.create fabric ~host ()) in
  Array.iter
    (fun nx ->
      Erpc.Nexus.register_handler nx ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
          let n = Erpc.Msgbuf.size (Erpc.Req_handle.get_request h) in
          let resp = Erpc.Req_handle.init_response h ~size:n in
          Erpc.Req_handle.enqueue_response h resp))
    nexuses;
  let rpcs = Array.map (fun nx -> Erpc.Rpc.create nx ~rpc_id:0) nexuses in
  let client = rpcs.(0) in
  Alcotest.(check string)
    "mux kind" "shm"
    (Transport.Iface.kind (Erpc.Rpc.transport client));
  let local = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let remote = Erpc.Rpc.create_session client ~remote_host:2 ~remote_rpc_id:0 () in
  run fabric 1.0;
  let ok_local = ref false and ok_remote = ref false in
  let issue sess ok =
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
        ok := Result.is_ok r)
  in
  issue local ok_local;
  issue remote ok_remote;
  run fabric 20.0;
  check_bool "local RPC completed" true !ok_local;
  check_bool "remote RPC completed" true !ok_remote;
  let s = shm_stats client in
  check_int "exactly the local request crossed the rings" 1 s.Shm.shm_tx;
  check_bool "the remote request went over the wire" true
    (Transport.Iface.tx_packets (Erpc.Rpc.transport rpcs.(2)) > 0);
  (* The co-located server answered over the rings too. *)
  check_int "local response crossed the rings" 1 (shm_stats rpcs.(1)).Shm.shm_tx

(* Crash-with-restart of the co-located peer, faster than the SM failure
   detector: the client converges to Peer_unreachable via bounded
   retransmission (stale session token on the restarted host), the rings
   are reset, and fresh sessions over the same rings work. *)
let test_crash_restart_colocated_peer () =
  let cluster =
    Transport.Cluster.colocate (Transport.Cluster.cx5 ~nodes:2 ()) [ [ 0; 1 ] ]
  in
  let config = { (Erpc.Config.of_cluster cluster) with shm_enabled = true } in
  let fabric, client, server =
    Transport_testkit.make_pair ~cluster ~config ()
  in
  let cfg = Erpc.Fabric.config fabric in
  let sess = connect fabric client in
  ignore (Transport_testkit.do_rpc fabric client sess ~req_size:32 ~resp_cap:32);
  let down_ns = 1_000_000 in
  check_bool "restart beats the detector" true (down_ns < cfg.sm_failure_timeout_ns);
  Erpc.Fabric.crash_host fabric 1 ~down_ns;
  let result = ref None in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r);
  run fabric 200.0;
  (match !result with
  | Some (Error Erpc.Err.Peer_unreachable) -> ()
  | Some (Ok ()) -> Alcotest.fail "request to crashed-and-restarted host completed"
  | Some (Error e) -> Alcotest.fail ("wrong error: " ^ Erpc.Err.to_string e)
  | None -> Alcotest.fail "continuation never ran");
  check_bool "host is back up" false (Erpc.Fabric.host_dead fabric 1);
  check_int "restarted server lost its sessions" 0 (Erpc.Rpc.num_sessions server);
  check_int "restart drained the server's rings" 0
    (Transport.Iface.rx_burst (Erpc.Rpc.transport server) ~max:64 (fun _ -> ()));
  (* The rings still carry traffic for a fresh session. *)
  let before = (shm_stats client).Shm.shm_tx in
  let sess2 = connect fabric client in
  ignore (Transport_testkit.do_rpc fabric client sess2 ~req_size:32 ~resp_cap:32);
  check_bool "fresh session runs over the rings" true
    ((shm_stats client).Shm.shm_tx > before)

(* MemRPC-style safety: a sender mutating an in-flight shared buffer is
   detected by the seal check, the packet is delivered corrupted (and
   dropped by the wire checksum), and go-back-N retransmission of the
   re-sealed buffer completes the RPC. *)
let test_guard_fault_detected_and_recovered () =
  let cluster =
    Transport.Cluster.colocate (Transport.Cluster.cx5 ~nodes:2 ()) [ [ 0; 1 ] ]
  in
  let config =
    {
      (Erpc.Config.of_cluster cluster) with
      shm_enabled = true;
      shm_mode = Shm.Share;
      (* Widen the in-flight window so the mutation lands mid-transit. *)
      shm_hop_ns = 10_000;
    }
  in
  let fabric, client, server = Transport_testkit.make_pair ~cluster ~config () in
  let engine = Erpc.Fabric.engine fabric in
  let sess = connect fabric client in
  let req = Erpc.Msgbuf.alloc ~max_size:64 in
  let resp = Erpc.Msgbuf.alloc ~max_size:64 in
  Erpc.Msgbuf.write_string req ~off:0 (String.make 64 'a');
  let result = ref None in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r);
  (* The request publishes within ~1 us of the enqueue and is delivered
     ~10 us later; scribble on the (shared, sealed) payload in between.
     [unsafe_bytes] bypasses the msgbuf ownership check on purpose: the
     seal guard exists precisely for senders that dodge that discipline. *)
  Sim.Engine.schedule engine
    (Sim.Time.add (Sim.Engine.now engine) 5_000)
    (fun () ->
      Bytes.blit_string "MUTATED-IN-FLIGHT" 0
        (Erpc.Msgbuf.unsafe_bytes req)
        (Erpc.Msgbuf.unsafe_offset req)
        17);
  run fabric 100.0;
  check_bool "rpc eventually completed" true (!result = Some (Ok ()));
  (* The unseal check runs on the receiving endpoint, so the fault is
     attributed to the mutating sender's peer. *)
  check_bool "ownership violation detected" true
    ((shm_stats server).Shm.guard_faults >= 1);
  check_bool "recovered via retransmission" true
    ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits > 0);
  check_bool "handoff really was by pointer" true
    ((shm_stats client).Shm.shared_tx >= 1)

(* A full destination ring stalls the sender (bounded slots, modeled
   wait) — it never drops. *)
let test_backpressure_stalls_not_drops () =
  let cluster =
    Transport.Cluster.colocate (Transport.Cluster.cx5 ~nodes:2 ()) [ [ 0; 1 ] ]
  in
  let config =
    { (Erpc.Config.of_cluster cluster) with shm_enabled = true; shm_slots = 2 }
  in
  let fabric, client, _server = Transport_testkit.make_pair ~cluster ~config () in
  let sess = connect fabric client in
  let n = 50 in
  let completed = ref 0 in
  for _ = 1 to n do
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
        if Result.is_ok r then incr completed)
  done;
  run fabric 100.0;
  check_int "every request completed" n !completed;
  check_bool "the tiny ring exerted backpressure" true
    ((shm_stats client).Shm.ring_stalls > 0);
  check_int "no retransmissions (nothing was dropped)" 0
    (Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits

(* The serialize-vs-share crossover is an emergent property of the cost
   model: flat share cost vs per-byte copy, consistent on both sides of
   the boundary and landing near 1 KB with the default constants. *)
let test_cost_model_crossover () =
  let cost = Erpc.Cost_model.default in
  let c = Experiments.Exp_shm_bench.model_crossover cost in
  let costs = Erpc.Cost_model.shm_costs cost in
  let share = costs.Shm.share_tx_ns + costs.Shm.share_rx_ns in
  check_bool "crossover lands near 1 KB" true (c >= 512 && c <= 4096);
  check_bool "below: copying is cheaper" true (costs.Shm.serialize_ns (c - 1) < share);
  check_bool "at crossover: sharing wins" true (share <= costs.Shm.serialize_ns c)

(* Intra-host anatomy: NIC/wire/switch exactly zero, transit in the
   ring/guard component, and the exact-sum invariant intact. *)
let test_anatomy_intra_host_zero_wire () =
  let r = Experiments.Exp_anatomy.run ~seed:7L ~samples:8 ~transport:`Shm () in
  check_bool "breakdowns produced" true (r.breakdowns <> []);
  List.iter
    (fun (b : Obs.Anatomy.breakdown) ->
      check_int "nic zero" 0 b.nic_ns;
      check_int "wire zero" 0 b.wire_ns;
      check_int "switch zero" 0 b.switch_ns;
      check_bool "ring transit positive" true (b.ring_ns > 0);
      check_int "components sum exactly to the total" b.total_ns
        (Obs.Anatomy.sum_components b))
    r.breakdowns

let suite =
  [
    Alcotest.test_case "disabled: same-host falls back to the wire" `Quick
      test_disabled_same_host_falls_back;
    Alcotest.test_case "mux routes local and remote sessions" `Quick
      test_mux_routes_local_and_remote;
    Alcotest.test_case "crash-restart of co-located peer" `Quick
      test_crash_restart_colocated_peer;
    Alcotest.test_case "in-flight mutation faults and recovers" `Quick
      test_guard_fault_detected_and_recovered;
    Alcotest.test_case "full ring stalls, never drops" `Quick
      test_backpressure_stalls_not_drops;
    Alcotest.test_case "serialize-vs-share crossover" `Quick test_cost_model_crossover;
    Alcotest.test_case "intra-host anatomy: zero wire/switch" `Quick
      test_anatomy_intra_host_zero_wire;
  ]
