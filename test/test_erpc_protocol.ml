(* Wire-protocol behaviour: packet counts, credits, session limits,
   backlog, multi-packet request/response interleaving.

   The whole suite is parameterized over the datapath (the shared helpers
   live in {!Transport_testkit}): the protocol must behave identically
   over the lossy raw-Ethernet NIC, the lossless RC datapath, and the
   intra-host shared-memory rings (network-level loss/corruption still
   applies to the wired ones; "lossless" only removes NIC descriptor
   drops). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.(echo_req_type)
let make_pair = Transport_testkit.make_pair
let run = Transport_testkit.run
let connect = Transport_testkit.connect
let do_rpc = Transport_testkit.do_rpc

(* Packet counts per the wire protocol (§5.1): an N-packet request with an
   M-packet response costs N + (M-1) RFRs from the client and (N-1) CRs +
   M response packets from the server. *)
let test_packet_counts_single tp () =
  let fabric, client, server = make_pair ~tp () in
  let sess = connect fabric client in
  ignore (do_rpc fabric client sess ~req_size:32 ~resp_cap:32);
  check_int "client sent 1 pkt" 1 ((Erpc.Rpc.stats client).Erpc.Rpc_stats.tx_pkts);
  check_int "server sent 1 pkt" 1 ((Erpc.Rpc.stats server).Erpc.Rpc_stats.tx_pkts)

let test_packet_counts_multi_request tp () =
  let fabric, client, server = make_pair ~tp ~resp_size:(Some 32) () in
  let sess = connect fabric client in
  (* MTU 1024: 4 KB request = 4 packets; response = 1 packet. *)
  ignore (do_rpc fabric client sess ~req_size:4_096 ~resp_cap:32);
  check_int "client: 4 request pkts" 4 ((Erpc.Rpc.stats client).Erpc.Rpc_stats.tx_pkts);
  check_int "server: 3 CRs + 1 response" 4 ((Erpc.Rpc.stats server).Erpc.Rpc_stats.tx_pkts)

let test_multi_packet_response_rfrs tp () =
  let fabric, client, server = make_pair ~tp ~resp_size:(Some 4_096) () in
  let sess = connect fabric client in
  ignore (do_rpc fabric client sess ~req_size:32 ~resp_cap:4_096);
  (* Client: 1 request + 3 RFRs; server: 4 response packets. *)
  check_int "client: req + 3 RFRs" 4 ((Erpc.Rpc.stats client).Erpc.Rpc_stats.tx_pkts);
  check_int "server: 4 response pkts" 4 ((Erpc.Rpc.stats server).Erpc.Rpc_stats.tx_pkts)

let test_credits_respected tp () =
  (* With C = 2 credits a 6-packet request must still complete, just with
     more round trips. *)
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let config = Erpc.Config.of_cluster ~credits:2 cluster in
  let fabric, client, _server = make_pair ~tp ~config ~resp_size:(Some 32) () in
  let sess = connect fabric client in
  ignore (do_rpc fabric client sess ~req_size:(6 * 1024) ~resp_cap:32)

let test_credit_invariant_restored tp () =
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  for _ = 1 to 10 do
    ignore (do_rpc fabric client sess ~req_size:2_048 ~resp_cap:2_048)
  done;
  check_int "all credits returned" sess.Erpc.Session.credit_limit sess.Erpc.Session.credits;
  check_int "no outstanding packets" 0 (Erpc.Session.outstanding_packets sess)

let test_concurrent_slots_out_of_order_completion tp () =
  (* A long (multi-packet) RPC and short RPCs on the same session: the
     short ones complete while the long one is still streaming. *)
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  let order = ref [] in
  let long_req = Erpc.Msgbuf.alloc ~max_size:(512 * 1024) in
  let long_resp = Erpc.Msgbuf.alloc ~max_size:(512 * 1024) in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req:long_req ~resp:long_resp
    ~cont:(fun _ -> order := `Long :: !order);
  let short_req = Erpc.Msgbuf.alloc ~max_size:32 in
  let short_resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req:short_req ~resp:short_resp
    ~cont:(fun _ -> order := `Short :: !order);
  run fabric 50.0;
  Alcotest.(check bool) "short completed before long" true (List.rev !order = [ `Short; `Long ])

let test_backlog_beyond_window tp () =
  (* More outstanding requests than the 8 slots: the rest are backlogged
     and all complete. *)
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  let completed = ref 0 in
  let n = 50 in
  for _ = 1 to n do
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ ->
        incr completed)
  done;
  run fabric 20.0;
  check_int "all completed" n !completed

let test_session_limit_enforced tp () =
  let cluster = Transport_testkit.cluster_for tp in
  let cfg = Transport_testkit.config_for tp (Erpc.Config.of_cluster ~credits:8 cluster) in
  (* Shrink the RQ so only 4 sessions fit: 4 * 8 = 32 descriptors. *)
  let cluster = { cluster with nic_config = { cluster.nic_config with rq_size = 32 } } in
  let fabric = Erpc.Fabric.create ~config:cfg cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let _nx1 = Erpc.Nexus.create fabric ~host:1 () in
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  for _ = 1 to 4 do
    ignore (Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 ())
  done;
  check_bool "limit raises" true
    (try
       ignore (Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 ());
       false
     with Invalid_argument _ -> true)

let test_max_msg_size_enforced tp () =
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  let req = Erpc.Msgbuf.alloc ~max_size:(9 * 1024 * 1024) in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Alcotest.check_raises "too large"
    (Invalid_argument "Rpc.enqueue_request: request exceeds the maximum message size")
    (fun () ->
      Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ -> ()))

let test_response_too_large_for_resp_buf tp () =
  let fabric, client, _server = make_pair ~tp ~resp_size:(Some 1_024) () in
  let sess = connect fabric client in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:16 (* too small for 1 KB response *) in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ -> ());
  check_bool "raises during processing" true
    (try
       run fabric 5.0;
       false
     with Invalid_argument _ -> true)

let test_data_integrity_random_sizes tp =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"echo integrity across sizes" ~count:20
       QCheck2.Gen.(int_range 1 20_000)
       (fun size ->
         let fabric, client, _server = make_pair ~tp () in
         let sess = connect fabric client in
         let req = Erpc.Msgbuf.alloc ~max_size:size in
         let pattern = String.init size (fun i -> Char.chr ((i * 31 + size) land 0xff)) in
         Erpc.Msgbuf.write_string req ~off:0 pattern;
         let resp = Erpc.Msgbuf.alloc ~max_size:size in
         let ok = ref false in
         Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
             ok := Result.is_ok r);
         run fabric 50.0;
         !ok && Erpc.Msgbuf.read_string resp ~off:0 ~len:size = pattern))

let test_unknown_req_type_never_completes tp () =
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  let called = ref false in
  Erpc.Rpc.enqueue_request client sess ~req_type:99 ~req ~resp ~cont:(fun _ -> called := true);
  run fabric 3.0;
  check_bool "no continuation for dropped unknown type" false !called

let test_two_rpcs_per_host_demux tp () =
  (* Two Rpc endpoints per host: flow steering by rpc id must route each
     session's packets to the right endpoint. *)
  let cluster = Transport_testkit.cluster_for tp in
  let fabric =
    Erpc.Fabric.create
      ~config:(Transport_testkit.config_for tp (Erpc.Config.of_cluster cluster))
      cluster
  in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:7 ~mode:Erpc.Nexus.Dispatch (fun h ->
      let resp = Erpc.Req_handle.init_response h ~size:4 in
      Erpc.Msgbuf.set_u32 resp ~off:0 7;
      Erpc.Req_handle.enqueue_response h resp);
  let c0 = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let c1 = Erpc.Rpc.create nx0 ~rpc_id:1 in
  let s0 = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let s1 = Erpc.Rpc.create nx1 ~rpc_id:1 in
  let sess0 = Erpc.Rpc.create_session c0 ~remote_host:1 ~remote_rpc_id:0 () in
  let sess1 = Erpc.Rpc.create_session c1 ~remote_host:1 ~remote_rpc_id:1 () in
  run fabric 1.0;
  let done0 = ref false and done1 = ref false in
  let mk () = (Erpc.Msgbuf.alloc ~max_size:4, Erpc.Msgbuf.alloc ~max_size:4) in
  let r0, p0 = mk () and r1, p1 = mk () in
  Erpc.Rpc.enqueue_request c0 sess0 ~req_type:7 ~req:r0 ~resp:p0 ~cont:(fun _ -> done0 := true);
  Erpc.Rpc.enqueue_request c1 sess1 ~req_type:7 ~req:r1 ~resp:p1 ~cont:(fun _ -> done1 := true);
  run fabric 5.0;
  check_bool "both completed" true (!done0 && !done1);
  check_int "s0 handled one" 1 ((Erpc.Rpc.stats s0).Erpc.Rpc_stats.handled);
  check_int "s1 handled one" 1 ((Erpc.Rpc.stats s1).Erpc.Rpc_stats.handled)

(* The whole suite runs against each Transport implementation: the wire
   protocol in Proto must behave identically over the lossy NIC-model
   transport, the lossless RC transport, and the intra-host shared-memory
   rings. *)
let suite_for tp =
  [
    Alcotest.test_case "packet count: single" `Quick (test_packet_counts_single tp);
    Alcotest.test_case "packet count: multi request (CRs)" `Quick
      (test_packet_counts_multi_request tp);
    Alcotest.test_case "packet count: multi response (RFRs)" `Quick
      (test_multi_packet_response_rfrs tp);
    Alcotest.test_case "tiny credit window" `Quick (test_credits_respected tp);
    Alcotest.test_case "credit invariant restored" `Quick (test_credit_invariant_restored tp);
    Alcotest.test_case "out-of-order slot completion" `Quick
      (test_concurrent_slots_out_of_order_completion tp);
    Alcotest.test_case "backlog beyond window" `Quick (test_backlog_beyond_window tp);
    Alcotest.test_case "session limit" `Quick (test_session_limit_enforced tp);
    Alcotest.test_case "max message size" `Quick (test_max_msg_size_enforced tp);
    Alcotest.test_case "oversized response rejected" `Quick
      (test_response_too_large_for_resp_buf tp);
    test_data_integrity_random_sizes tp;
    Alcotest.test_case "unknown req type dropped" `Quick
      (test_unknown_req_type_never_completes tp);
    Alcotest.test_case "two Rpcs per host demux" `Quick (test_two_rpcs_per_host_demux tp);
  ]

let suite = suite_for Transport_testkit.Raw_eth
let suite_rc = suite_for Transport_testkit.Rdma_rc
let suite_shm = suite_for Transport_testkit.Shm
