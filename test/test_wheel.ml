(* Tests for the Carousel timing wheel. *)

let check_int = Alcotest.(check int)

let test_delivery_order () =
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:128 in
  Erpc.Wheel.insert w ~now:0 ~at:5_000 "c";
  Erpc.Wheel.insert w ~now:0 ~at:1_000 "a";
  Erpc.Wheel.insert w ~now:0 ~at:3_000 "b";
  let got = ref [] in
  ignore (Erpc.Wheel.poll w ~now:10_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "slot order" [ "a"; "b"; "c" ] (List.rev !got)

let test_poll_only_due () =
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:128 in
  Erpc.Wheel.insert w ~now:0 ~at:2_000 "early";
  Erpc.Wheel.insert w ~now:0 ~at:50_000 "late";
  let got = ref [] in
  ignore (Erpc.Wheel.poll w ~now:10_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "only due" [ "early" ] !got;
  check_int "one pending" 1 (Erpc.Wheel.pending w);
  ignore (Erpc.Wheel.poll w ~now:60_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "late delivered" [ "late"; "early" ] !got

let test_past_entries_fire_next_poll () =
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:128 in
  ignore (Erpc.Wheel.poll w ~now:20_000 (fun _ -> ()));
  (* Insert for the "past": must still fire on the next poll, never be
     lost. *)
  Erpc.Wheel.insert w ~now:20_000 ~at:5_000 "stale";
  let got = ref [] in
  ignore (Erpc.Wheel.poll w ~now:21_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "stale fired" [ "stale" ] !got

let test_horizon_clamp () =
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:16 in
  (* Horizon is 15 us; an entry 1 second out is clamped, not lost. *)
  Erpc.Wheel.insert w ~now:0 ~at:1_000_000_000 "far";
  let got = ref [] in
  ignore (Erpc.Wheel.poll w ~now:15_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "clamped entry fired within horizon" [ "far" ] !got

let test_pending_counts () =
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:64 in
  for i = 1 to 10 do
    Erpc.Wheel.insert w ~now:0 ~at:(i * 1_000) i
  done;
  check_int "pending" 10 (Erpc.Wheel.pending w);
  let n = Erpc.Wheel.poll w ~now:5_000 (fun _ -> ()) in
  check_int "delivered" 5 n;
  check_int "left" 5 (Erpc.Wheel.pending w)

let test_wraparound () =
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:8 in
  let delivered = ref 0 in
  (* Push time far past several wheel revolutions. *)
  for round = 0 to 9 do
    let base = round * 8_000 in
    ignore (Erpc.Wheel.poll w ~now:base (fun _ -> incr delivered));
    Erpc.Wheel.insert w ~now:base ~at:(base + 3_000) round
  done;
  ignore (Erpc.Wheel.poll w ~now:100_000 (fun _ -> incr delivered));
  check_int "all delivered across wraps" 10 !delivered

let test_rollover_no_collision () =
  (* Rollover: an entry inserted one full revolution after another lands in
     the same physical slot. It must fire in its own revolution, not ride
     out with (or shadow) the earlier entry. *)
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:8 in
  Erpc.Wheel.insert w ~now:0 ~at:3_000 "rev0";
  let got = ref [] in
  ignore (Erpc.Wheel.poll w ~now:4_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "first revolution only" [ "rev0" ] !got;
  (* Same physical slot (3 mod 8), next revolution: abs slot 11. *)
  Erpc.Wheel.insert w ~now:4_000 ~at:11_000 "rev1";
  ignore (Erpc.Wheel.poll w ~now:10_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "not early" [ "rev0" ] !got;
  ignore (Erpc.Wheel.poll w ~now:11_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "fires in its own revolution" [ "rev1"; "rev0" ] !got;
  check_int "empty" 0 (Erpc.Wheel.pending w)

let test_rollover_insert_at_now () =
  (* An entry due exactly at the cursor's current slot must fire on the
     very next poll, across a slot-index wrap. *)
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:8 in
  ignore (Erpc.Wheel.poll w ~now:15_000 (fun _ -> ()));
  Erpc.Wheel.insert w ~now:16_000 ~at:16_000 "due-now";
  let got = ref [] in
  ignore (Erpc.Wheel.poll w ~now:16_000 (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "due-now fired" [ "due-now" ] !got

let test_rollover_horizon_boundary () =
  (* Insert exactly at the horizon: must clamp into the last distinct slot
     and fire exactly once (never alias slot 0 = "due immediately"... which
     would deliver too early, nor be pushed a revolution out). *)
  let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:8 in
  let h = 7_000 (* slot_ns * (num_slots - 1) *) in
  Erpc.Wheel.insert w ~now:0 ~at:h "edge";
  let got = ref [] in
  ignore (Erpc.Wheel.poll w ~now:(h - 1_000) (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "not before its slot" [] !got;
  ignore (Erpc.Wheel.poll w ~now:h (fun x -> got := x :: !got));
  Alcotest.(check (list string)) "fired at horizon" [ "edge" ] !got;
  ignore (Erpc.Wheel.poll w ~now:(h + 8_000) (fun x -> got := x :: !got));
  check_int "no ghost redelivery" 1 (List.length !got)

let test_exactly_once_across_revolutions =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wheel exact-once with advancing cursor (rollover)" ~count:100
       QCheck2.Gen.(list_size (int_range 1 200) (pair (int_range 0 50) (int_range 0 20_000)))
       (fun steps ->
         (* Interleave polls and inserts while time marches far past many
            revolutions of a small wheel. *)
         let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:8 in
         let got = Hashtbl.create 64 in
         let deliver i =
           Hashtbl.replace got i (1 + Option.value ~default:0 (Hashtbl.find_opt got i))
         in
         let now = ref 0 in
         List.iteri
           (fun i (advance, offset) ->
             now := !now + (advance * 1_000);
             ignore (Erpc.Wheel.poll w ~now:!now deliver);
             Erpc.Wheel.insert w ~now:!now ~at:(!now + offset) i)
           steps;
         ignore (Erpc.Wheel.poll w ~now:(!now + 100_000) deliver);
         List.length steps = Hashtbl.length got
         && Hashtbl.fold (fun _ c acc -> acc && c = 1) got true))

let test_exactly_once =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wheel delivers every entry exactly once" ~count:100
       QCheck2.Gen.(list_size (int_range 1 300) (int_range 0 200_000))
       (fun ats ->
         let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:64 in
         List.iteri (fun i at -> Erpc.Wheel.insert w ~now:0 ~at i) ats;
         let got = Hashtbl.create 64 in
         ignore
           (Erpc.Wheel.poll w ~now:300_000 (fun i ->
                Hashtbl.replace got i (1 + Option.value ~default:0 (Hashtbl.find_opt got i))));
         List.length ats = Hashtbl.length got
         && Hashtbl.fold (fun _ c acc -> acc && c = 1) got true))

let suite =
  [
    Alcotest.test_case "delivery order" `Quick test_delivery_order;
    Alcotest.test_case "poll only due" `Quick test_poll_only_due;
    Alcotest.test_case "past entries" `Quick test_past_entries_fire_next_poll;
    Alcotest.test_case "horizon clamp" `Quick test_horizon_clamp;
    Alcotest.test_case "pending counts" `Quick test_pending_counts;
    Alcotest.test_case "wraparound" `Quick test_wraparound;
    Alcotest.test_case "rollover: no slot collision" `Quick test_rollover_no_collision;
    Alcotest.test_case "rollover: insert at now" `Quick test_rollover_insert_at_now;
    Alcotest.test_case "rollover: horizon boundary" `Quick test_rollover_horizon_boundary;
    test_exactly_once;
    test_exactly_once_across_revolutions;
  ]
