(* Smoke tests for the experiment harnesses: short runs asserting that
   each reproduced result lands in a sane band around the paper's value.
   The full-length runs live in bench/main.exe; these keep the experiment
   code exercised by `dune runtest`. *)

let check_bool = Alcotest.(check bool)

let in_band name lo hi v =
  check_bool (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" name v lo hi) true (v >= lo && v <= hi)

let test_latency_bands () =
  let r = Experiments.Exp_latency.measure ~samples:300 (Transport.Cluster.cx5 ~nodes:2 ()) in
  in_band "CX5 RDMA read (us)" 1.6 2.4 r.rdma_read_us;
  in_band "CX5 eRPC (us)" 2.0 2.7 r.erpc_us;
  check_bool "eRPC slower than RDMA" true (r.erpc_us > r.rdma_read_us)

let test_small_rate_band () =
  let r =
    Experiments.Exp_small_rate.run ~measure_ms:1.0
      ~cluster:(Transport.Cluster.cx4 ~nodes:11 ())
      ~batch:3 ()
  in
  in_band "CX4 single-core Mrps" 4.0 6.0 r.per_thread_mrps

let test_fasst_faster_than_erpc () =
  let cluster = Transport.Cluster.cx3 () in
  let erpc = Experiments.Exp_small_rate.run ~measure_ms:1.0 ~cluster ~batch:11 () in
  let fasst = Experiments.Exp_small_rate.run_fasst ~measure_ms:1.0 ~cluster ~batch:11 () in
  check_bool "specialized system leads at large B" true
    (fasst.per_thread_mrps > erpc.per_thread_mrps)

let test_bandwidth_band () =
  let p = Experiments.Exp_bandwidth.erpc_goodput ~requests:3 ~req_size:(2 * 1024 * 1024) () in
  in_band "2 MB goodput (Gbps)" 60.0 90.0 p.goodput_gbps;
  let r = Experiments.Exp_bandwidth.rdma_write_goodput ~requests:3 ~req_size:(2 * 1024 * 1024) () in
  check_bool "eRPC within 70-100% of RDMA write" true
    (p.goodput_gbps /. r.goodput_gbps > 0.7 && p.goodput_gbps < r.goodput_gbps)

let test_loss_collapse () =
  let clean = Experiments.Exp_bandwidth.erpc_goodput ~requests:3 ~req_size:(4 * 1024 * 1024) () in
  let lossy =
    Experiments.Exp_bandwidth.erpc_goodput ~requests:3 ~loss:1e-3 ~req_size:(4 * 1024 * 1024) ()
  in
  check_bool "heavy loss collapses throughput" true
    (lossy.goodput_gbps < 0.2 *. clean.goodput_gbps);
  check_bool "via retransmissions" true (lossy.retransmits > 0)

let test_incast_cc_reduces_queueing () =
  let with_cc =
    Experiments.Exp_incast.run ~degree:20 ~cc:true ~warmup_ms:8.0 ~measure_ms:10.0 ()
  in
  let without =
    Experiments.Exp_incast.run ~degree:20 ~cc:false ~warmup_ms:8.0 ~measure_ms:10.0 ()
  in
  check_bool
    (Printf.sprintf "cc cuts p50 queueing (%.0f vs %.0f us)" with_cc.rtt_p50_us
       without.rtt_p50_us)
    true
    (with_cc.rtt_p50_us < 0.5 *. without.rtt_p50_us);
  in_band "no-cc p50 = degree x window (us)" 180. 280. without.rtt_p50_us

let test_scalability_small () =
  (* A scaled-down Fig 5: 20 nodes, 2 threads each, all-to-all. *)
  let r = Experiments.Exp_scalability.run ~nodes:20 ~threads:2 ~measure_us:400. () in
  check_bool "throughput positive" true (r.per_node_mrps > 1.0);
  in_band "median latency (us)" 8.0 25.0 r.lat_p50_us

let test_raft_band () =
  let r = Experiments.Exp_raft.run ~samples:300 () in
  in_band "replicated PUT p50 (us)" 4.0 7.0 r.client_p50_us;
  in_band "leader commit p50 (us)" 2.0 4.5 r.leader_p50_us;
  check_bool "client latency > leader commit" true (r.client_p50_us > r.leader_p50_us)

let test_rdma_fig1_band () =
  let few = Rdma.Read_rate.run ~ops:100_000 ~connections:100 () in
  let many = Rdma.Read_rate.run ~ops:100_000 ~connections:5_000 () in
  check_bool "collapse by ~half" true
    (many.rate_mops < 0.6 *. few.rate_mops && many.rate_mops > 0.3 *. few.rate_mops)

let test_cluster_load_smoke () =
  (* Scaled-down steady-Poisson scenario: every tenant makes progress,
     SLO percentiles are ordered, and the tail attribution is present. *)
  let r = Experiments.Exp_cluster_load.run_named ~seed:7L ~scale:0.25 ~horizon_ms:15.0
      "steady-poisson"
  in
  Alcotest.(check (list string)) "no violations" [] r.violations;
  List.iter
    (fun (t : Experiments.Exp_cluster_load.tenant_report) ->
      check_bool (t.tname ^ " made progress") true (t.ok > 0);
      check_bool (t.tname ^ " open-loop accounting") true
        (t.issued >= t.ok + t.failed);
      check_bool
        (Printf.sprintf "%s percentiles ordered (%.1f <= %.1f <= %.1f us)" t.tname
           t.p50_us t.p99_us t.p999_us)
        true
        (t.p50_us <= t.p99_us && t.p99_us <= t.p999_us)
      )
    r.tenants;
  check_bool "attribution present" true (r.attribution <> None);
  check_bool "JSON validates" true
    (Obs.Json.validate
       (Obs.Json.to_string (Experiments.Exp_cluster_load.to_json [ r ])))

let test_cluster_load_deterministic () =
  (* Same seed => byte-identical event traces, across all three builtin
     scenarios (the kv-chaos determinism contract, extended to the
     open-loop traffic engine). Digests are FNV-1a over every retained
     event, so any divergence in ordering, payload, or eviction shows. *)
  List.iter
    (fun (name, _) ->
      let digest () =
        (Experiments.Exp_cluster_load.run_named ~seed:11L ~scale:0.2 ~horizon_ms:10.0
           name)
          .digest
      in
      Alcotest.(check string) (name ^ " digest stable") (digest ()) (digest ()))
    Workload.Traffic_spec.builtin;
  (* And a different seed takes a different path. *)
  let d seed =
    (Experiments.Exp_cluster_load.run_named ~seed ~scale:0.2 ~horizon_ms:10.0
       "steady-poisson")
      .digest
  in
  check_bool "seed changes trace" true (d 11L <> d 12L)

let suite =
  [
    Alcotest.test_case "table2 bands" `Quick test_latency_bands;
    Alcotest.test_case "fig4 band" `Quick test_small_rate_band;
    Alcotest.test_case "fig4 FaSST ordering" `Quick test_fasst_faster_than_erpc;
    Alcotest.test_case "fig6 band" `Quick test_bandwidth_band;
    Alcotest.test_case "table4 collapse" `Quick test_loss_collapse;
    Alcotest.test_case "table5 cc effect" `Quick test_incast_cc_reduces_queueing;
    Alcotest.test_case "fig5 scaled-down" `Quick test_scalability_small;
    Alcotest.test_case "table6 bands" `Quick test_raft_band;
    Alcotest.test_case "fig1 band" `Quick test_rdma_fig1_band;
    Alcotest.test_case "cluster-load smoke" `Quick test_cluster_load_smoke;
    Alcotest.test_case "cluster-load determinism" `Quick test_cluster_load_deterministic;
  ]
