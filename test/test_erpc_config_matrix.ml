(* Semantic equivalence across optimization configurations: every
   combination of the common-case optimization flags must produce the same
   RPC results — the flags may only change costs (Table 3), never
   behaviour. Also covers the cumulative-CR protocol variant, with and
   without loss. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.(echo_req_type)

let deploy config =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create ~config cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      let req = Erpc.Req_handle.get_request h in
      let n = Erpc.Msgbuf.size req in
      let resp = Erpc.Req_handle.init_response h ~size:n in
      if n > 0 then Erpc.Msgbuf.blit ~src:req ~src_off:0 ~dst:resp ~dst_off:0 ~len:n;
      Erpc.Req_handle.enqueue_response h resp);
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.ms 1.0);
  (fabric, client, sess)

let exercise config ~loss =
  let fabric, client, sess = deploy config in
  Netsim.Network.set_loss_prob (Erpc.Fabric.net fabric) loss;
  let engine = Erpc.Fabric.engine fabric in
  (* A mix of sizes: sub-MTU, exactly MTU, multi-packet. *)
  let sizes = [ 1; 32; 1_024; 1_025; 5_000; 20_000 ] in
  let completed = ref 0 in
  List.iteri
    (fun i size ->
      let req = Erpc.Msgbuf.alloc ~max_size:size in
      let pattern = String.init size (fun j -> Char.chr ((j + (i * 37)) land 0xff)) in
      Erpc.Msgbuf.write_string req ~off:0 pattern;
      let resp = Erpc.Msgbuf.alloc ~max_size:size in
      Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
          if Result.is_ok r && Erpc.Msgbuf.read_string resp ~off:0 ~len:size = pattern then
            incr completed))
    sizes;
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 500.0));
  check_int "all RPCs completed with intact data" (List.length sizes) !completed;
  check_int "credits restored" sess.Erpc.Session.credit_limit sess.Erpc.Session.credits

let all_configs () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let base = Erpc.Config.of_cluster cluster in
  let bools = [ false; true ] in
  List.concat_map
    (fun zero_copy_rx ->
      List.concat_map
        (fun preallocated_responses ->
          List.concat_map
            (fun congestion_control ->
              List.concat_map
                (fun cumulative_crs ->
                  List.map
                    (fun batched_timestamps ->
                      {
                        base with
                        opts =
                          {
                            base.opts with
                            zero_copy_rx;
                            preallocated_responses;
                            congestion_control;
                            cumulative_crs;
                            batched_timestamps;
                          };
                      })
                    bools)
                bools)
            bools)
        bools)
    bools

let test_all_opt_combinations () =
  List.iter (fun config -> exercise config ~loss:0.) (all_configs ())

let test_all_opt_combinations_with_loss () =
  (* Loss adds retransmission to every combination; correctness must be
     unaffected. Use a subset of the matrix to bound runtime. *)
  List.iteri
    (fun i config -> if i mod 4 = 0 then exercise config ~loss:0.03)
    (all_configs ())

let test_cumulative_cr_packet_reduction () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let base = Erpc.Config.of_cluster cluster in
  let count_server_pkts cumulative =
    let config = { base with opts = { base.opts with cumulative_crs = cumulative } } in
    let fabric, client, sess = deploy config in
    let engine = Erpc.Fabric.engine fabric in
    (* 8-packet request (8 KB at MTU 1024), 32 B response. *)
    let req = Erpc.Msgbuf.alloc ~max_size:8_192 in
    let resp = Erpc.Msgbuf.alloc ~max_size:8_192 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ -> ());
    Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 10.0));
    ignore client;
    (* Count CRs via the client's RX: total client RX = CRs + response
       pkts. Response is 8 packets (echo); requests acked... count via
       stat. *)
    (Erpc.Rpc.stats client).Erpc.Rpc_stats.rx_pkts
  in
  let per_packet = count_server_pkts false in
  let cumulative = count_server_pkts true in
  (* Per-packet: 7 CRs + 8 response pkts = 15. Cumulative (stride 4):
     CRs at request pkts 3 and 6 = 2 CRs + 8 response pkts = 10. *)
  check_int "per-packet CR count" 15 per_packet;
  check_int "cumulative CR count" 10 cumulative

let suite =
  [
    Alcotest.test_case "all optimization combinations (32 configs)" `Quick
      test_all_opt_combinations;
    Alcotest.test_case "combinations under loss" `Slow test_all_opt_combinations_with_loss;
    Alcotest.test_case "cumulative CRs reduce control packets" `Quick
      test_cumulative_cr_packet_reduction;
  ]
