(* Transport-parameterized test helpers and the Transport.Iface
   conformance suite.

   The protocol and loss suites used to duplicate their pair/connect
   helpers per implementation; they are shared here instead, keyed by a
   datapath selector that also covers the intra-host shared-memory mux
   (which is not a [Config.transport_kind] — it wraps one). The
   conformance suite checks the contract every implementation must
   honor: geometry invariants, FIFO rx_burst order, replenish/reset
   semantics, and zero descriptor drops on lossless datapaths. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type tp = Raw_eth | Rdma_rc | Shm

let name = function Raw_eth -> "raw_eth" | Rdma_rc -> "rdma_rc" | Shm -> "shm"

(* The two-host CX5 pair every suite runs on; for [Shm] both hosts share
   one machine so the datapath is the shared-memory rings. *)
let cluster_for ?(nodes = 2) tp =
  let c = Transport.Cluster.cx5 ~nodes () in
  match tp with
  | Shm -> Transport.Cluster.colocate c [ List.init nodes Fun.id ]
  | Raw_eth | Rdma_rc -> c

let config_for tp (cfg : Erpc.Config.t) =
  match tp with
  | Raw_eth -> { cfg with Erpc.Config.transport = Erpc.Config.Raw_eth }
  | Rdma_rc -> { cfg with Erpc.Config.transport = Erpc.Config.Rdma_rc }
  | Shm ->
      { cfg with Erpc.Config.transport = Erpc.Config.Raw_eth; shm_enabled = true }

let echo = Test_erpc_basic.echo_req_type

let make_pair ?(tp = Raw_eth) ?cluster ?config ?(resp_size = None)
    ?(count_handler_runs = ref 0) () =
  let cluster = match cluster with Some c -> c | None -> cluster_for tp in
  let config =
    config_for tp
      (match config with Some c -> c | None -> Erpc.Config.of_cluster cluster)
  in
  let fabric = Erpc.Fabric.create ~config cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      incr count_handler_runs;
      let req = Erpc.Req_handle.get_request h in
      let n = match resp_size with Some n -> n | None -> Erpc.Msgbuf.size req in
      let resp = Erpc.Req_handle.init_response h ~size:n in
      let copy = min n (Erpc.Msgbuf.size req) in
      if copy > 0 then Erpc.Msgbuf.blit ~src:req ~src_off:0 ~dst:resp ~dst_off:0 ~len:copy;
      Erpc.Req_handle.enqueue_response h resp);
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  (fabric, client, server)

let run fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let connect ?(check = true) fabric client =
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  if check then
    check_bool "connected" true (sess.Erpc.Session.state = Erpc.Session.Connected);
  sess

let do_rpc fabric client sess ~req_size ~resp_cap =
  let req = Erpc.Msgbuf.alloc ~max_size:req_size in
  let resp = Erpc.Msgbuf.alloc ~max_size:resp_cap in
  let ok = ref false in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      ok := Result.is_ok r);
  run fabric 20.0;
  check_bool "rpc completed" true !ok;
  resp

(* {2 Conformance suite} *)

let test_geometry tp () =
  let cluster = cluster_for tp in
  let fabric, client, server = make_pair ~tp ~cluster () in
  ignore fabric;
  List.iter
    (fun rpc ->
      let t = Erpc.Rpc.transport rpc in
      check_bool "kind as selected" true (Transport.Iface.kind t = name tp);
      check_int "payload budget is the MTU" cluster.Transport.Cluster.mtu
        (Transport.Iface.max_data_per_pkt t);
      check_bool "rq_size positive" true (Transport.Iface.rq_size t > 0);
      check_bool "ring depth within the RQ budget" true
        (Transport.Iface.rx_ring_depth t >= 0
        && Transport.Iface.rx_ring_depth t <= Transport.Iface.rq_size t);
      check_bool "flush time non-negative" true (Transport.Iface.flush_time_ns t >= 0);
      (* Only link-level flow control makes a datapath lossless: true of
         the RC queue pair, false of raw Ethernet — and of the shm mux,
         which answers for the wire device it wraps. *)
      check_bool "lossless per implementation" (tp = Rdma_rc)
        (Transport.Iface.lossless t))
    [ client; server ]

let test_fifo_rx_order tp () =
  (* Concurrent single-packet requests on one session must reach the
     server handler in issue order: the transport's rx_burst is FIFO and
     the protocol preserves it. *)
  let cluster = cluster_for tp in
  let fabric = Erpc.Fabric.create ~config:(config_for tp (Erpc.Config.of_cluster cluster)) cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  let seen = ref [] in
  Erpc.Nexus.register_handler nx1 ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      let req = Erpc.Req_handle.get_request h in
      seen := Erpc.Msgbuf.get_u32 req ~off:0 :: !seen;
      let resp = Erpc.Req_handle.init_response h ~size:4 in
      Erpc.Msgbuf.blit ~src:req ~src_off:0 ~dst:resp ~dst_off:0 ~len:4;
      Erpc.Req_handle.enqueue_response h resp);
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = connect fabric client in
  let n = 16 in
  let completed = ref 0 in
  for i = 0 to n - 1 do
    let req = Erpc.Msgbuf.alloc ~max_size:4 in
    let resp = Erpc.Msgbuf.alloc ~max_size:4 in
    Erpc.Msgbuf.set_u32 req ~off:0 i;
    Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
        if Result.is_ok r then incr completed)
  done;
  run fabric 50.0;
  check_int "all completed" n !completed;
  check_bool "handler saw requests in issue order" true
    (List.rev !seen = List.init n Fun.id)

let test_replenish_reset tp () =
  let fabric, client, _server = make_pair ~tp () in
  let sess = connect fabric client in
  ignore (do_rpc fabric client sess ~req_size:32 ~resp_cap:32);
  let t = Erpc.Rpc.transport client in
  check_int "quiesced: nothing pending in TX" 0 (Transport.Iface.tx_pending t);
  check_int "quiesced: rx_burst finds nothing" 0
    (Transport.Iface.rx_burst t ~max:16 (fun _ -> ()));
  (* Restart semantics: dropping the RX ring restores the descriptor
     budget, so the datapath keeps working afterwards. *)
  Transport.Iface.reset_rx t;
  check_int "reset: rx_burst empty" 0 (Transport.Iface.rx_burst t ~max:16 (fun _ -> ()));
  ignore (do_rpc fabric client sess ~req_size:32 ~resp_cap:32);
  check_bool "replenish cost non-negative" true (Transport.Iface.replenish_rx t 0 >= 0)

let test_counters_and_drops tp () =
  let fabric, client, server = make_pair ~tp () in
  let sess = connect fabric client in
  for _ = 1 to 20 do
    ignore (do_rpc fabric client sess ~req_size:32 ~resp_cap:32)
  done;
  let ct = Erpc.Rpc.transport client and st = Erpc.Rpc.transport server in
  check_bool "client transmitted" true (Transport.Iface.tx_packets ct >= 20);
  check_bool "server received" true (Transport.Iface.rx_packets st >= 20);
  check_int "loss-free pair: every TX received" (Transport.Iface.tx_packets ct)
    (Transport.Iface.rx_packets st);
  if Transport.Iface.lossless ct then begin
    check_int "lossless: no client drops" 0 (Transport.Iface.rx_dropped ct);
    check_int "lossless: no server drops" 0 (Transport.Iface.rx_dropped st)
  end

let suite_for tp =
  [
    Alcotest.test_case "geometry invariants" `Quick (test_geometry tp);
    Alcotest.test_case "FIFO rx order" `Quick (test_fifo_rx_order tp);
    Alcotest.test_case "replenish/reset semantics" `Quick (test_replenish_reset tp);
    Alcotest.test_case "counters and drops" `Quick (test_counters_and_drops tp);
  ]

let suite = suite_for Raw_eth
let suite_rc = suite_for Rdma_rc
let suite_shm = suite_for Shm
