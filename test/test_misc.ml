(* Remaining corners: Nexus registry rules, the SM plane, wire hashing,
   engine counters. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_duplicate_handler_raises () =
  let fabric = Erpc.Fabric.create (Transport.Cluster.cx5 ~nodes:2 ()) in
  let nx = Erpc.Nexus.create fabric ~host:0 () in
  let h _ = () in
  Erpc.Nexus.register_handler nx ~req_type:9 ~mode:Erpc.Nexus.Dispatch h;
  Alcotest.check_raises "duplicate req_type"
    (Invalid_argument "Nexus.register_handler: req_type 9 already registered") (fun () ->
      Erpc.Nexus.register_handler nx ~req_type:9 ~mode:Erpc.Nexus.Worker h)

let test_duplicate_rpc_id_raises () =
  let fabric = Erpc.Fabric.create (Transport.Cluster.cx5 ~nodes:2 ()) in
  let nx = Erpc.Nexus.create fabric ~host:0 () in
  let _a = Erpc.Rpc.create nx ~rpc_id:3 in
  check_bool "duplicate rpc id" true
    (try
       ignore (Erpc.Rpc.create nx ~rpc_id:3);
       false
     with Invalid_argument _ -> true)

let test_handler_lookup () =
  let fabric = Erpc.Fabric.create (Transport.Cluster.cx5 ~nodes:2 ()) in
  let nx = Erpc.Nexus.create fabric ~host:0 () in
  Erpc.Nexus.register_handler nx ~req_type:4 ~mode:Erpc.Nexus.Worker (fun _ -> ());
  check_bool "registered" true
    (match Erpc.Nexus.handler nx 4 with Some (Erpc.Nexus.Worker, _) -> true | _ -> false);
  check_bool "unknown" true (Erpc.Nexus.handler nx 5 = None)

let test_sm_to_unknown_rpc_is_dropped () =
  let fabric = Erpc.Fabric.create (Transport.Cluster.cx5 ~nodes:2 ()) in
  let _nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let _nx1 = Erpc.Nexus.create fabric ~host:1 () in
  let client = Erpc.Rpc.create _nx0 ~rpc_id:0 in
  (* Host 1 has no Rpc 7: the connect request vanishes; the session stays
     pending and requests stay buffered rather than crashing. *)
  let connected = ref false in
  let sess =
    Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:7
      ~on_connect:(fun _ -> connected := true)
      ()
  in
  Sim.Engine.run_until (Erpc.Fabric.engine fabric) (Sim.Time.ms 5.0);
  check_bool "never connected" false !connected;
  check_bool "still pending" true (sess.Erpc.Session.state = Erpc.Session.Connect_pending)

let test_kill_host_idempotent () =
  let fabric = Erpc.Fabric.create (Transport.Cluster.cx5 ~nodes:2 ()) in
  let detections = ref 0 in
  Erpc.Fabric.on_host_failure fabric (fun _ -> incr detections);
  Erpc.Fabric.kill_host fabric 1;
  Erpc.Fabric.kill_host fabric 1;
  check_bool "dead" true (Erpc.Fabric.host_dead fabric 1);
  Sim.Engine.run_until (Erpc.Fabric.engine fabric) (Sim.Time.ms 20.0);
  check_int "single detection" 1 !detections

let test_flow_hash_properties () =
  let h1 = Erpc.Wire.flow_hash ~src_host:3 ~dst_host:7 ~sn:2 in
  let h2 = Erpc.Wire.flow_hash ~src_host:3 ~dst_host:7 ~sn:2 in
  check_int "deterministic" h1 h2;
  check_bool "non-negative" true (h1 >= 0);
  check_bool "sn-sensitive" true (h1 <> Erpc.Wire.flow_hash ~src_host:3 ~dst_host:7 ~sn:3)

let test_engine_counters () =
  let e = Sim.Engine.create () in
  for i = 1 to 5 do
    Sim.Engine.schedule e (i * 10) (fun () -> ())
  done;
  check_int "pending" 5 (Sim.Engine.pending e);
  check_int "processed" 0 (Sim.Engine.events_processed e);
  Sim.Engine.run e;
  check_int "all processed" 5 (Sim.Engine.events_processed e);
  check_int "none pending" 0 (Sim.Engine.pending e)

let test_schedule_now_runs () =
  let e = Sim.Engine.create () in
  let ran = ref false in
  Sim.Engine.schedule_after e 0 (fun () -> ran := true);
  Sim.Engine.run e;
  check_bool "zero-delay event" true !ran

let test_pkthdr_pp_and_data_bytes () =
  let hdr =
    {
      Erpc.Pkthdr.req_type = 1;
      msg_size = 2_500;
      dest_session = 0;
      pkt_type = Erpc.Pkthdr.Req;
      pkt_num = 2;
      req_num = 8;
      token = 0;
      ecn_echo = false;
    }
  in
  (* Third packet of a 2500-byte message at MTU 1024: 452 bytes. *)
  check_int "tail packet bytes" 452 (Erpc.Pkthdr.data_bytes hdr ~mtu:1024);
  check_int "ctrl packets carry no data" 0
    (Erpc.Pkthdr.data_bytes { hdr with pkt_type = Erpc.Pkthdr.Cr } ~mtu:1024);
  check_bool "pp renders" true
    (String.length (Format.asprintf "%a" Erpc.Pkthdr.pp hdr) > 0)

let test_core_alias () =
  (* The conventional lib/core entry point resolves to the eRPC library. *)
  let m = Core.Msgbuf.alloc ~max_size:8 in
  check_int "alias works" 8 (Core.Msgbuf.max_size m)

let suite =
  [
    Alcotest.test_case "duplicate handler raises" `Quick test_duplicate_handler_raises;
    Alcotest.test_case "duplicate rpc id raises" `Quick test_duplicate_rpc_id_raises;
    Alcotest.test_case "handler lookup" `Quick test_handler_lookup;
    Alcotest.test_case "SM to unknown rpc dropped" `Quick test_sm_to_unknown_rpc_is_dropped;
    Alcotest.test_case "kill host idempotent" `Quick test_kill_host_idempotent;
    Alcotest.test_case "flow hash" `Quick test_flow_hash_properties;
    Alcotest.test_case "engine counters" `Quick test_engine_counters;
    Alcotest.test_case "zero-delay schedule" `Quick test_schedule_now_runs;
    Alcotest.test_case "pkthdr helpers" `Quick test_pkthdr_pp_and_data_bytes;
    Alcotest.test_case "Core alias" `Quick test_core_alias;
  ]
