(* End-to-end tests of the eRPC core: connect, small RPC, multi-packet
   RPC, backlog, at-most-once. *)

let echo_req_type = 1

(* Two-host CX5-style fabric with an echo server on host 1. *)
let make_pair ?config () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create ?config cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:echo_req_type ~mode:Erpc.Nexus.Dispatch
    (fun h ->
      let req = Erpc.Req_handle.get_request h in
      let n = Erpc.Msgbuf.size req in
      let resp = Erpc.Req_handle.init_response h ~size:n in
      Erpc.Msgbuf.write_string resp ~off:0 (Erpc.Msgbuf.read_string req ~off:0 ~len:n);
      Erpc.Req_handle.enqueue_response h resp);
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  (fabric, client, server)

let run_for fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let connect fabric client =
  let connected = ref false in
  let sess =
    Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0
      ~on_connect:(fun r ->
        Alcotest.(check bool) "connect ok" true (Result.is_ok r);
        connected := true)
      ()
  in
  run_for fabric 1.0;
  Alcotest.(check bool) "connected" true !connected;
  sess

let test_connect () =
  let fabric, client, _server = make_pair () in
  ignore (connect fabric client)

let test_small_echo () =
  let fabric, client, server = make_pair () in
  let sess = connect fabric client in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Msgbuf.write_string req ~off:0 "hello eRPC, this is 32 bytes!!!!";
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  let done_ = ref false in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo_req_type ~req ~resp ~cont:(fun r ->
      Alcotest.(check bool) "rpc ok" true (Result.is_ok r);
      done_ := true);
  run_for fabric 1.0;
  Alcotest.(check bool) "completed" true !done_;
  Alcotest.(check string)
    "echoed" "hello eRPC, this is 32 bytes!!!!"
    (Erpc.Msgbuf.read_string resp ~off:0 ~len:32);
  Alcotest.(check int) "server handled one" 1 ((Erpc.Rpc.stats server).Erpc.Rpc_stats.handled);
  Alcotest.(check int) "client completed one" 1 ((Erpc.Rpc.stats client).Erpc.Rpc_stats.completed);
  (* Buffers returned to the app. *)
  Alcotest.(check bool) "req returned" true (Erpc.Msgbuf.owner req = Erpc.Msgbuf.Owned_by_app)

let test_latency_sane () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  let engine = Erpc.Fabric.engine fabric in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  let lat = ref 0 in
  let t0 = Sim.Engine.now engine in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo_req_type ~req ~resp ~cont:(fun _ ->
      lat := Sim.Time.sub (Sim.Engine.now engine) t0);
  run_for fabric 1.0;
  (* CX5 target is ~2.3 us; sanity band 1-6 us. *)
  Alcotest.(check bool)
    (Printf.sprintf "latency %d ns in [1000, 6000]" !lat)
    true
    (!lat >= 1_000 && !lat <= 6_000)

let test_multi_packet_echo () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  (* CX5 MTU is 1024: an 8000-byte request is 8 packets each way. *)
  let n = 8_000 in
  let req = Erpc.Msgbuf.alloc ~max_size:n in
  let pattern = String.init n (fun i -> Char.chr (((i * 7) + (i / 256)) land 0xff)) in
  Erpc.Msgbuf.write_string req ~off:0 pattern;
  let resp = Erpc.Msgbuf.alloc ~max_size:n in
  let done_ = ref false in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo_req_type ~req ~resp ~cont:(fun r ->
      Alcotest.(check bool) "rpc ok" true (Result.is_ok r);
      done_ := true);
  run_for fabric 5.0;
  Alcotest.(check bool) "completed" true !done_;
  Alcotest.(check int) "response size" n (Erpc.Msgbuf.size resp);
  Alcotest.(check string) "payload intact" pattern (Erpc.Msgbuf.read_string resp ~off:0 ~len:n)

let test_pipelined_requests () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  let total = 100 in
  let completed = ref 0 in
  for i = 0 to total - 1 do
    let req = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Msgbuf.set_u32 req ~off:0 i;
    let resp = Erpc.Msgbuf.alloc ~max_size:32 in
    Erpc.Rpc.enqueue_request client sess ~req_type:echo_req_type ~req ~resp ~cont:(fun r ->
        Alcotest.(check bool) "rpc ok" true (Result.is_ok r);
        Alcotest.(check int) "payload" i (Erpc.Msgbuf.get_u32 resp ~off:0);
        incr completed)
  done;
  run_for fabric 10.0;
  Alcotest.(check int) "all completed" total !completed

let test_ownership_violation () =
  let fabric, client, _server = make_pair () in
  let sess = connect fabric client in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo_req_type ~req ~resp ~cont:(fun _ -> ());
  (* The request is in flight: the app must not touch the msgbuf. *)
  Alcotest.check_raises "write while in flight"
    (Invalid_argument
       "Msgbuf.write_string: buffer is in flight (owned by eRPC); wait for the continuation")
    (fun () -> Erpc.Msgbuf.write_string req ~off:0 "boom");
  run_for fabric 1.0

let test_unconnected_enqueue_is_buffered () =
  let fabric, client, _server = make_pair () in
  (* Enqueue before the handshake completes: held in the backlog. *)
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let req = Erpc.Msgbuf.alloc ~max_size:32 in
  let resp = Erpc.Msgbuf.alloc ~max_size:32 in
  let done_ = ref false in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo_req_type ~req ~resp ~cont:(fun r ->
      Alcotest.(check bool) "rpc ok" true (Result.is_ok r);
      done_ := true);
  run_for fabric 2.0;
  Alcotest.(check bool) "completed after connect" true !done_

let suite =
  [
    Alcotest.test_case "connect" `Quick test_connect;
    Alcotest.test_case "small echo" `Quick test_small_echo;
    Alcotest.test_case "latency sane" `Quick test_latency_sane;
    Alcotest.test_case "multi-packet echo" `Quick test_multi_packet_echo;
    Alcotest.test_case "pipelined requests" `Quick test_pipelined_requests;
    Alcotest.test_case "ownership violation raises" `Quick test_ownership_violation;
    Alcotest.test_case "enqueue before connect" `Quick test_unconnected_enqueue_is_buffered;
  ]
