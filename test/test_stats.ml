(* Tests for the histogram and bit helpers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_bits () =
  check_int "msb 1" 0 (Stats.Bits.msb 1);
  check_int "msb 2" 1 (Stats.Bits.msb 2);
  check_int "msb 255" 7 (Stats.Bits.msb 255);
  check_int "msb 256" 8 (Stats.Bits.msb 256);
  check_int "clz 1" 62 (Stats.Bits.clz 1);
  Alcotest.check_raises "msb 0" (Invalid_argument "Bits.msb: requires v > 0") (fun () ->
      ignore (Stats.Bits.msb 0))

let test_hist_empty () =
  let h = Stats.Hist.create () in
  check_int "count" 0 (Stats.Hist.count h);
  Alcotest.check_raises "percentile of empty"
    (Invalid_argument "Hist.percentile: empty histogram") (fun () ->
      ignore (Stats.Hist.percentile h 50.))

let test_hist_small_values_exact () =
  let h = Stats.Hist.create () in
  for v = 0 to 63 do
    Stats.Hist.record h v
  done;
  check_int "min" 0 (Stats.Hist.min h);
  check_int "max" 63 (Stats.Hist.max h);
  check_int "p50 exact below 64" 31 (Stats.Hist.percentile h 50.);
  check_int "p100" 63 (Stats.Hist.percentile h 100.)

let test_hist_known_median () =
  let h = Stats.Hist.create () in
  for _ = 1 to 100 do
    Stats.Hist.record h 10
  done;
  for _ = 1 to 10 do
    Stats.Hist.record h 1_000_000
  done;
  check_int "median ignores tail" 10 (Stats.Hist.median h);
  check_bool "p99.9 in tail" true (Stats.Hist.percentile h 99.9 > 900_000)

let test_hist_relative_error () =
  let h = Stats.Hist.create () in
  let values = [ 100; 1_000; 12_345; 999_999; 5_000_000; 123_456_789 ] in
  List.iter
    (fun v ->
      Stats.Hist.clear h;
      Stats.Hist.record h v;
      let got = Stats.Hist.median h in
      let err = abs_float (float_of_int (got - v) /. float_of_int v) in
      check_bool (Printf.sprintf "value %d -> %d (err %.3f)" v got err) true (err < 0.02))
    values

let test_hist_percentile_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"percentiles are monotone" ~count:100
       QCheck2.Gen.(list_size (int_range 1 500) (int_range 0 10_000_000))
       (fun values ->
         let h = Stats.Hist.create () in
         List.iter (Stats.Hist.record h) values;
         let ps = [ 1.; 10.; 25.; 50.; 75.; 90.; 99.; 99.9; 100. ] in
         let qs = List.map (Stats.Hist.percentile h) ps in
         let rec monotone = function
           | a :: (b :: _ as rest) -> a <= b && monotone rest
           | _ -> true
         in
         monotone qs))

let test_hist_percentile_bounds =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"percentiles within [min,max]" ~count:100
       QCheck2.Gen.(list_size (int_range 1 500) (int_range 0 10_000_000))
       (fun values ->
         let h = Stats.Hist.create () in
         List.iter (Stats.Hist.record h) values;
         let lo = Stats.Hist.min h and hi = Stats.Hist.max h in
         List.for_all
           (fun p ->
             let q = Stats.Hist.percentile h p in
             q >= lo && q <= hi)
           [ 0.1; 50.; 99.99 ]))

let test_hist_mean_total () =
  let h = Stats.Hist.create () in
  List.iter (Stats.Hist.record h) [ 10; 20; 30 ];
  check_int "total" 60 (Stats.Hist.total h);
  Alcotest.(check (float 0.001)) "mean" 20.0 (Stats.Hist.mean h)

let test_hist_merge () =
  let a = Stats.Hist.create () and b = Stats.Hist.create () in
  List.iter (Stats.Hist.record a) [ 1; 2; 3 ];
  List.iter (Stats.Hist.record b) [ 1_000; 2_000 ];
  Stats.Hist.merge ~dst:a ~src:b;
  check_int "merged count" 5 (Stats.Hist.count a);
  check_int "merged min" 1 (Stats.Hist.min a);
  check_bool "merged max" true (Stats.Hist.max a >= 2_000)

let test_hist_record_n_and_clear () =
  let h = Stats.Hist.create () in
  Stats.Hist.record_n h 42 ~n:1_000;
  check_int "bulk count" 1_000 (Stats.Hist.count h);
  check_int "bulk median" 42 (Stats.Hist.median h);
  Stats.Hist.clear h;
  check_int "cleared" 0 (Stats.Hist.count h)

(* Magnitude-uniform generator: exercises every histogram block, not just
   the small values a uniform int generator lands on. *)
let gen_any_magnitude =
  QCheck2.Gen.(
    int_range 0 55 >>= fun e ->
    int_range 0 ((1 lsl e) - 1) >|= fun m -> (1 lsl e) lor m)

let test_bucket_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"bucket_value (bucket_index v) within 2^-6 of v" ~count:1_000
       gen_any_magnitude (fun v ->
         let got = Stats.Hist.bucket_value (Stats.Hist.bucket_index v) in
         if v < 64 then got = v else abs (got - v) * 64 <= v))

let test_bucket_value_fixpoint () =
  (* Every bucket's representative value falls back into that bucket. *)
  for idx = 0 to Stats.Hist.num_buckets - 1 do
    let v = Stats.Hist.bucket_value idx in
    check_int (Printf.sprintf "bucket %d fixpoint" idx) idx (Stats.Hist.bucket_index v)
  done

let test_hist_merge_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"merge preserves count/total/min/max" ~count:200
       QCheck2.Gen.(
         pair
           (list_size (int_range 0 80) (int_range 0 10_000_000))
           (list_size (int_range 0 80) (int_range 0 10_000_000)))
       (fun (xs, ys) ->
         let a = Stats.Hist.create () and b = Stats.Hist.create () in
         List.iter (Stats.Hist.record a) xs;
         List.iter (Stats.Hist.record b) ys;
         Stats.Hist.merge ~dst:a ~src:b;
         let all = xs @ ys in
         Stats.Hist.count a = List.length all
         && Stats.Hist.total a = List.fold_left ( + ) 0 all
         && Stats.Hist.min a = List.fold_left min (if all = [] then 0 else max_int) all
         && Stats.Hist.max a = List.fold_left max 0 all))

let test_hist_median_approximates_true_median =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"median within 2% of true median" ~count:50
       QCheck2.Gen.(list_size (int_range 11 400) (int_range 1 1_000_000))
       (fun values ->
         let h = Stats.Hist.create () in
         List.iter (Stats.Hist.record h) values;
         let sorted = List.sort compare values in
         let true_median = List.nth sorted ((List.length values - 1) / 2) in
         let got = Stats.Hist.median h in
         (* Allow bucket resolution error plus one rank of slack. *)
         let upper = List.nth sorted (min (List.length values - 1) (List.length values / 2)) in
         let lo = float_of_int true_median *. 0.97 in
         let hi = float_of_int upper *. 1.03 in
         float_of_int got >= lo -. 1. && float_of_int got <= hi +. 1.))

let suite =
  [
    Alcotest.test_case "bits" `Quick test_bits;
    Alcotest.test_case "hist empty" `Quick test_hist_empty;
    Alcotest.test_case "hist small exact" `Quick test_hist_small_values_exact;
    Alcotest.test_case "hist known median" `Quick test_hist_known_median;
    Alcotest.test_case "hist relative error" `Quick test_hist_relative_error;
    test_hist_percentile_monotone;
    test_hist_percentile_bounds;
    Alcotest.test_case "hist mean/total" `Quick test_hist_mean_total;
    Alcotest.test_case "hist merge" `Quick test_hist_merge;
    Alcotest.test_case "hist record_n/clear" `Quick test_hist_record_n_and_clear;
    test_bucket_roundtrip;
    Alcotest.test_case "bucket value fixpoint" `Quick test_bucket_value_fixpoint;
    test_hist_merge_preserves;
    test_hist_median_approximates_true_median;
  ]
