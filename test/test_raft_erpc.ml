(* Integration tests: the sharded replicated-KV service (§7.1) — Raft
   groups over eRPC behind the smart client's redirect/retry loop. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let setup () =
  let cluster = Transport.Cluster.cx5 ~nodes:4 () in
  let d = Experiments.Harness.deploy cluster ~threads_per_host:1 in
  let map = Service.Shard_map.create ~shards:1 ~replication:3 ~replica_hosts:[| 0; 1; 2 |] in
  let replicas =
    Array.map
      (fun host ->
        Service.Replica.create ~fabric:d.fabric ~nexus:d.nexuses.(host)
          ~rpc:d.rpcs.(host).(0) ~map ~host ())
      [| 0; 1; 2 |]
  in
  let deadline = ref 100 in
  while
    (not (Array.exists (fun r -> Service.Replica.is_leader r ~shard:0) replicas))
    && !deadline > 0
  do
    Experiments.Harness.run_ms d 5.0;
    decr deadline
  done;
  check_bool "leader elected" true
    (Array.exists (fun r -> Service.Replica.is_leader r ~shard:0) replicas);
  (d, map, replicas)

let leader_of replicas =
  match Array.find_opt (fun r -> Service.Replica.is_leader r ~shard:0) replicas with
  | Some r -> r
  | None -> Alcotest.fail "no leader"

let value_of s = s ^ String.make (Service.Kv_proto.value_size - String.length s) '\000'

(* Raw request straight at one replica, bypassing the smart client — for
   asserting on the wire-visible status codes. *)
let raw_put d client sess ~client_id ~seq ~key ~value =
  let req = Erpc.Msgbuf.alloc ~max_size:Service.Kv_proto.req_size in
  Service.Kv_proto.write_request req
    { Service.Kv_proto.op = Service.Kv_proto.Put; shard = 0; client_id; seq; key; value };
  let resp = Erpc.Msgbuf.alloc ~max_size:Service.Kv_proto.resp_max_size in
  let status = ref None in
  Erpc.Rpc.enqueue_request client sess ~req_type:Service.Kv_proto.kv_req_type ~req ~resp
    ~cont:(fun r ->
      if Result.is_ok r then status := Some (fst (Service.Kv_proto.read_response resp)));
  Experiments.Harness.run_ms d 10.0;
  !status

let test_put_replicates_to_all () =
  let d, map, replicas = setup () in
  let client =
    Service.Kv_client.create ~fabric:d.fabric ~rpc:d.rpcs.(3).(0) ~map ~client_id:1 ()
  in
  let key = Workload.Keygen.encode 1 in
  let value = value_of "x" in
  let acked = ref false in
  ignore
    (Service.Kv_client.put client ~key ~value ~deadline_ns:50_000_000 ~cont:(fun r ->
         acked := Result.is_ok r));
  Experiments.Harness.run_ms d 20.0;
  check_bool "put acked" true !acked;
  (* Followers apply once the next heartbeat carries the commit index. *)
  Array.iter
    (fun r ->
      check_bool "replica has the key" true
        (Mica.Store.get (Service.Replica.store r ~shard:0) ~key = Some value))
    replicas;
  Array.iter Service.Replica.stop replicas

let test_put_to_follower_redirects () =
  let d, _map, replicas = setup () in
  let leader_host = Service.Replica.host (leader_of replicas) in
  let follower =
    match
      Array.find_opt (fun r -> not (Service.Replica.is_leader r ~shard:0)) replicas
    with
    | Some r -> r
    | None -> Alcotest.fail "no follower"
  in
  let client = d.rpcs.(3).(0) in
  let sess =
    Experiments.Harness.connect d client
      ~remote_host:(Service.Replica.host follower)
      ~remote_rpc_id:0
  in
  let key = Workload.Keygen.encode 2 in
  (match raw_put d client sess ~client_id:1 ~seq:0 ~key ~value:(value_of "y") with
  | Some (Service.Kv_proto.Not_leader hint) ->
      (* A settled follower knows who leads and says so. *)
      check_int "redirect names the leader" leader_host
        (Option.value hint ~default:(-1))
  | s ->
      Alcotest.failf "expected Not_leader, got %s"
        (match s with
        | None -> "no response"
        | Some Service.Kv_proto.Ok_ -> "Ok"
        | Some (Service.Kv_proto.Retry _) -> "Retry"
        | Some Service.Kv_proto.Not_found -> "Not_found"
        | Some (Service.Kv_proto.Not_leader _) -> "?"));
  Array.iter Service.Replica.stop replicas

let test_many_puts_sequential_consistency () =
  let d, map, replicas = setup () in
  let client =
    Service.Kv_client.create ~fabric:d.fabric ~rpc:d.rpcs.(3).(0) ~map ~client_id:1 ()
  in
  (* Repeatedly overwrite one key; all replicas must end at the final
     value (log order = commit order). *)
  let key = Workload.Keygen.encode 7 in
  let remaining = ref 50 in
  let rec issue i =
    if i <= 50 then
      ignore
        (Service.Kv_client.put client ~key
           ~value:(value_of (Printf.sprintf "%d" i))
           ~deadline_ns:50_000_000
           ~cont:(fun _ ->
             decr remaining;
             issue (i + 1)))
  in
  issue 1;
  let budget = ref 200 in
  while !remaining > 0 && !budget > 0 do
    Experiments.Harness.run_ms d 1.0;
    decr budget
  done;
  check_int "all puts acked" 0 !remaining;
  Experiments.Harness.run_ms d 20.0;
  let final = value_of "50" in
  Array.iter
    (fun r ->
      check_bool "final value everywhere" true
        (Mica.Store.get (Service.Replica.store r ~shard:0) ~key = Some final))
    replicas;
  let leader = leader_of replicas in
  check_bool "committed everything" true
    (Raft.Core.commit_index (Service.Replica.raft leader ~shard:0) >= 50);
  Array.iter Service.Replica.stop replicas

let test_duplicate_seq_applies_once () =
  let d, _map, replicas = setup () in
  let leader = leader_of replicas in
  let applies = ref 0 in
  Array.iter
    (fun r ->
      Service.Replica.set_on_apply r
        (fun ~shard:_ ~incarnation:_ ~client_id ~seq:_ ->
          if client_id = 9 then incr applies))
    replicas;
  let client = d.rpcs.(3).(0) in
  let sess =
    Experiments.Harness.connect d client ~remote_host:(Service.Replica.host leader)
      ~remote_rpc_id:0
  in
  let key = Workload.Keygen.encode 3 in
  (* The same (client_id, seq) put twice — a retry of an already-committed
     write. The second submission must be re-acked without re-applying. *)
  check_bool "first put acked" true
    (raw_put d client sess ~client_id:9 ~seq:0 ~key ~value:(value_of "z")
    = Some Service.Kv_proto.Ok_);
  check_bool "duplicate re-acked" true
    (raw_put d client sess ~client_id:9 ~seq:0 ~key ~value:(value_of "z")
    = Some Service.Kv_proto.Ok_);
  Experiments.Harness.run_ms d 10.0;
  (* 3 replicas x 1 effective apply; the duplicate hit the dedup table. *)
  check_int "applied once per replica" 3 !applies;
  check_bool "leader counted the dedup hit" true
    (Service.Replica.dedup_hits leader >= 1);
  Array.iter Service.Replica.stop replicas

let test_leader_crash_failover () =
  let d, map, replicas = setup () in
  let old_leader = leader_of replicas in
  let old_host = Service.Replica.host old_leader in
  let client =
    Service.Kv_client.create ~fabric:d.fabric ~rpc:d.rpcs.(3).(0) ~map ~client_id:1 ()
  in
  (* Seed the leader hint so the first post-crash attempt hits the corpse. *)
  Service.Shard_map.set_leader_hint map ~shard:0 ~host:old_host;
  Erpc.Fabric.crash_host d.fabric old_host ~down_ns:60_000_000;
  let key = Workload.Keygen.encode 4 in
  let value = value_of "failover" in
  let acked = ref false in
  ignore
    (Service.Kv_client.put client ~key ~value ~deadline_ns:100_000_000 ~cont:(fun r ->
         acked := Result.is_ok r));
  let budget = ref 120 in
  while (not !acked) && !budget > 0 do
    Experiments.Harness.run_ms d 1.0;
    decr budget
  done;
  check_bool "put survives leader crash" true !acked;
  let survivors =
    Array.to_list replicas
    |> List.filter (fun r -> Service.Replica.host r <> old_host)
  in
  check_bool "new leader is a survivor" true
    (List.exists (fun r -> Service.Replica.is_leader r ~shard:0) survivors);
  Experiments.Harness.run_ms d 20.0;
  List.iter
    (fun r ->
      check_bool "survivor has the key" true
        (Mica.Store.get (Service.Replica.store r ~shard:0) ~key = Some value))
    survivors;
  check_bool "client retried" true (Service.Kv_client.retries client >= 1);
  Array.iter Service.Replica.stop replicas

let suite =
  [
    Alcotest.test_case "PUT replicates to all" `Quick test_put_replicates_to_all;
    Alcotest.test_case "PUT to follower redirects to leader" `Quick
      test_put_to_follower_redirects;
    Alcotest.test_case "sequential overwrites converge" `Quick
      test_many_puts_sequential_consistency;
    Alcotest.test_case "duplicate seq applies once" `Quick test_duplicate_seq_applies_once;
    Alcotest.test_case "leader crash fails over" `Quick test_leader_crash_failover;
  ]
