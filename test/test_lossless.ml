(* PFC-style lossless fabrics (InfiniBand CX3): congested ports pause
   instead of dropping, so eRPC sees zero congestion loss — while the same
   traffic on a lossy fabric drops and recovers via go-back-N. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_pkt ?(size = 1_000) ~src ~dst () =
  Netsim.Packet.make ~src ~dst ~size_bytes:size ~flow_hash:0 Netsim.Packet.Empty

let test_lossless_port_never_drops () =
  let e = Sim.Engine.create () in
  let pool = Netsim.Buffer_pool.create ~capacity_bytes:2_000 ~alpha:100.0 in
  let delivered = ref 0 in
  let port =
    Netsim.Port.create e ~name:"p" ~rate_gbps:0.008 ~extra_delay_ns:0 ~pool ~lossless:true
      ~sink:(fun _ -> incr delivered)
      ()
  in
  for _ = 1 to 10 do
    ignore (Netsim.Port.send port (mk_pkt ~src:0 ~dst:1 ()))
  done;
  check_int "no drops" 0 (Netsim.Port.dropped_packets port);
  check_bool "pauses happened instead" true (Netsim.Port.pause_events port > 0);
  Sim.Engine.run e;
  check_int "everything eventually delivered" 10 !delivered

let test_lossy_port_drops_same_load () =
  let e = Sim.Engine.create () in
  let pool = Netsim.Buffer_pool.create ~capacity_bytes:2_000 ~alpha:100.0 in
  let port =
    Netsim.Port.create e ~name:"p" ~rate_gbps:0.008 ~extra_delay_ns:0 ~pool
      ~sink:(fun _ -> ())
      ()
  in
  for _ = 1 to 10 do
    ignore (Netsim.Port.send port (mk_pkt ~src:0 ~dst:1 ()))
  done;
  check_bool "drops on the lossy port" true (Netsim.Port.dropped_packets port > 0)

(* The CX3 profile (InfiniBand) carries an incast without a single fabric
   drop; the same incast on CX4 without congestion control fills the
   dynamic buffer but also survives (buffer >> BDP — the paper's central
   observation). *)
let test_cx3_incast_has_zero_fabric_drops () =
  let cluster = Transport.Cluster.cx3 ~nodes:10 () in
  let config =
    let base = Erpc.Config.of_cluster ~credits:32 cluster in
    { base with opts = { base.opts with congestion_control = false } }
  in
  let d =
    Experiments.Harness.deploy ~config cluster ~threads_per_host:1
      ~register:(Experiments.Harness.register_echo ~resp_size:32)
  in
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let drivers =
    List.init 9 (fun i ->
        let client = d.rpcs.(i + 1).(0) in
        let sess = Experiments.Harness.connect d client ~remote_host:0 ~remote_rpc_id:0 in
        Experiments.Harness.make_driver ~req_size:(1024 * 1024) ~resp_size:32
          ~rng:(Sim.Rng.split rng) ~rpc:client ~sessions:[| sess |] ~window:1 ())
  in
  List.iter Experiments.Harness.start_driver drivers;
  Experiments.Harness.run_ms d 10.0;
  check_int "no fabric drops on InfiniBand" 0 (Netsim.Network.fabric_drops (Erpc.Fabric.net d.fabric));
  check_int "no retransmissions" 0
    (List.fold_left ( + ) 0
       (List.init 9 (fun i -> (Erpc.Rpc.stats d.rpcs.(i + 1).(0)).Erpc.Rpc_stats.retransmits)));
  check_bool "and real progress was made" true (Experiments.Harness.total_completed d > 0)

let suite =
  [
    Alcotest.test_case "lossless port never drops" `Quick test_lossless_port_never_drops;
    Alcotest.test_case "lossy port drops same load" `Quick test_lossy_port_drops_same_load;
    Alcotest.test_case "CX3 incast: zero fabric drops" `Quick
      test_cx3_incast_has_zero_fabric_drops;
  ]
