(* Tests for the schema/codec layer: per-backend roundtrips, golden wire
   bytes (the service's frozen formats), strict prefix/corruption fuzzing,
   typed msgbuf integration, and typed RPC end-to-end (flat backend and
   NIC-offload included). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let roundtrip ?backend c v = Codec.of_bytes ?backend c (Codec.to_bytes ?backend c v)

let hex b =
  String.concat ""
    (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

(* {2 Primitives and combinators (compact)} *)

let test_primitives () =
  check_int "u8" 200 (roundtrip Codec.u8 200);
  check_int "u16" 60_000 (roundtrip Codec.u16 60_000);
  check_int "u32" 0xDEADBEEF (roundtrip Codec.u32 0xDEADBEEF);
  check_int "u64" 123_456_789_012_345 (roundtrip Codec.u64 123_456_789_012_345);
  check_bool "bool t" true (roundtrip Codec.bool true);
  check_bool "bool f" false (roundtrip Codec.bool false);
  check_str "string" "hello" (roundtrip Codec.string "hello");
  check_str "fixed" "16-byte-string!!" (roundtrip (Codec.fixed_string 16) "16-byte-string!!");
  check_str "bounded" "abc" (roundtrip (Codec.bounded_string 8) "abc")

let test_range_checks () =
  Alcotest.check_raises "u8 range" (Invalid_argument "Codec.u8: out of range") (fun () ->
      ignore (Codec.to_bytes Codec.u8 256));
  Alcotest.check_raises "fixed width"
    (Invalid_argument "Codec.fixed_string: expected 4 bytes, got 3") (fun () ->
      ignore (Codec.to_bytes (Codec.fixed_string 4) "abc"));
  Alcotest.check_raises "bounded overflow"
    (Invalid_argument "Codec.bounded_string: 5 bytes exceeds capacity 4") (fun () ->
      ignore (Codec.to_bytes (Codec.bounded_string 4) "abcde"))

let test_combinators () =
  let c = Codec.(pair u32 (list string)) in
  let v = (42, [ "a"; "bb"; "" ]) in
  check_bool "pair+list" true (roundtrip c v = v);
  let t = Codec.(triple bool u16 string) in
  let tv = (true, 7, "x") in
  check_bool "triple" true (roundtrip t tv = tv);
  check_bool "option none" true (roundtrip Codec.(option u32) None = None);
  check_bool "option some" true (roundtrip Codec.(option u32) (Some 9) = Some 9);
  check_bool "array" true (roundtrip Codec.(array u8) [| 1; 2; 3 |] = [| 1; 2; 3 |]);
  check_bool "tail_list" true
    (roundtrip Codec.(tail_list (pair u16 string)) [ (1, "a"); (2, "") ]
    = [ (1, "a"); (2, "") ]);
  check_bool "tail_option none" true (roundtrip Codec.(tail_option u32) None = None);
  check_bool "tail_option some" true (roundtrip Codec.(tail_option u32) (Some 5) = Some 5)

let test_map () =
  let c =
    Codec.map
      ~into:(fun (k, v) -> `Put (k, v))
      ~from:(fun (`Put (k, v)) -> (k, v))
      Codec.(pair string string)
  in
  check_bool "mapped record" true (roundtrip c (`Put ("key", "value")) = `Put ("key", "value"))

let test_sizes_exact () =
  check_int "u32 size" 4 (Codec.size Codec.u32 0);
  check_int "string size" (4 + 5) (Codec.size Codec.string "hello");
  check_int "list size" (4 + (2 * 4)) (Codec.size Codec.(list u32) [ 1; 2 ]);
  check_int "option none size" 1 (Codec.size Codec.(option u64) None);
  check_int "checksum adds 4" (4 + 5 + 4) (Codec.size (Codec.with_checksum Codec.string) "hello");
  (* size = compact encoded_size, and the buffer really is that long. *)
  let c = Codec.(pair u16 (list bool)) in
  let v = (9, [ true; false; true ]) in
  check_int "encoded_size" (Codec.size c v) (Codec.encoded_size ~backend:Codec.Compact c v);
  check_int "to_bytes length" (Codec.size c v) (Bytes.length (Codec.to_bytes c v))

let test_bounds () =
  check_bool "string unbounded" true (Codec.bound Codec.string = None);
  check_bool "fixed bounded" true (Codec.bound (Codec.fixed_string 8) = Some 8);
  check_bool "pair bound" true (Codec.bound Codec.(pair u32 u16) = Some 6);
  check_bool "bounded_string bound" true (Codec.bound (Codec.bounded_string 10) = Some 14);
  check_bool "list unbounded" true (Codec.bound Codec.(list u8) = None)

let test_truncation_raises () =
  let b = Codec.to_bytes Codec.string "hello world" in
  let truncated = Bytes.sub b 0 6 in
  check_bool "decode error" true
    (try
       ignore (Codec.of_bytes Codec.string truncated);
       false
     with Codec.Decode_error _ -> true)

let test_trailing_bytes_raise () =
  let b = Codec.to_bytes Codec.u16 7 in
  let padded = Bytes.cat b (Bytes.make 1 '\000') in
  check_bool "trailing garbage rejected" true
    (try
       ignore (Codec.of_bytes Codec.u16 padded);
       false
     with Codec.Decode_error _ -> true)

(* {2 Variants} *)

type shape = Dot | Line of int | Label of string

let shape_codec =
  let open Codec in
  variant ~name:"shape"
    [
      case ~tag:0 (fixed_string 0)
        ~inj:(fun _ -> Dot)
        ~proj:(function Dot -> Some "" | _ -> None);
      case ~tag:1 u32 ~inj:(fun n -> Line n) ~proj:(function Line n -> Some n | _ -> None);
      case ~tag:2 string
        ~inj:(fun s -> Label s)
        ~proj:(function Label s -> Some s | _ -> None);
    ]

let test_variant () =
  List.iter
    (fun v -> check_bool "variant roundtrip" true (roundtrip shape_codec v = v))
    [ Dot; Line 77; Label "axis" ];
  check_bool "unknown tag" true
    (try
       ignore (Codec.of_bytes shape_codec (Bytes.make 5 '\009'));
       false
     with Codec.Decode_error _ -> true);
  (* bound = 1 + max case bound only when every case is bounded; [string]
     is not, so the variant is unbounded. *)
  check_bool "variant unbounded" true (Codec.bound shape_codec = None)

(* {2 Checksummed frames} *)

let test_with_checksum () =
  let c = Codec.with_checksum Codec.(pair u32 string) in
  let v = (7, "payload") in
  check_bool "roundtrip" true (roundtrip c v = v);
  let b = Codec.to_bytes c v in
  Bytes.set b 5 (Char.chr (Char.code (Bytes.get b 5) lxor 0x40));
  check_bool "corruption detected" true
    (try
       ignore (Codec.of_bytes c b);
       false
     with Codec.Decode_error _ -> true)

(* {2 Flat backend} *)

let flat_schema = Codec.(pair (pair u32 u16) (pair (fixed_string 8) (bounded_string 12)))
let flat_value = ((0xCAFE, 77), ("8-bytes!", "short"))

let test_flat_roundtrip () =
  check_bool "flat capable" true (Codec.flat_capable flat_schema);
  check_bool "flat roundtrip" true (roundtrip ~backend:Codec.Flat flat_schema flat_value = flat_value);
  check_int "flat size is fixed" (Codec.flat_size flat_schema)
    (Bytes.length (Codec.to_bytes ~backend:Codec.Flat flat_schema flat_value));
  check_int "flat size = 4+2+8+(4+12)" (4 + 2 + 8 + 4 + 12) (Codec.flat_size flat_schema);
  (* Short value lengths encode deterministically (slack zero-filled). *)
  check_bool "deterministic"  true
    (Codec.to_bytes ~backend:Codec.Flat flat_schema flat_value
    = Codec.to_bytes ~backend:Codec.Flat flat_schema flat_value);
  check_bool "string not flat capable" true (not (Codec.flat_capable Codec.string));
  Alcotest.check_raises "flat on unbounded"
    (Invalid_argument "Codec.encoded_size: codec has no flat layout (unbounded field?)")
    (fun () -> ignore (Codec.encoded_size ~backend:Codec.Flat Codec.string "x"))

let test_flat_wrong_length_raises () =
  let b = Codec.to_bytes ~backend:Codec.Flat flat_schema flat_value in
  check_bool "truncated flat rejected" true
    (try
       ignore (Codec.of_bytes ~backend:Codec.Flat flat_schema (Bytes.sub b 0 (Bytes.length b - 1)));
       false
     with Codec.Decode_error _ -> true)

let test_flat_lazy_access () =
  check_int "leaf count" 4 (Codec.flat_leaves flat_schema);
  let b = Codec.to_bytes ~backend:Codec.Flat flat_schema flat_value in
  check_int "leaf 0 int" 0xCAFE (Codec.get_leaf_int flat_schema b ~base:0 ~leaf:0);
  check_int "leaf 1 int" 77 (Codec.get_leaf_int flat_schema b ~base:0 ~leaf:1);
  check_str "leaf 2 string" "8-bytes!" (Codec.get_leaf_string flat_schema b ~base:0 ~leaf:2);
  check_str "leaf 3 string" "short" (Codec.get_leaf_string flat_schema b ~base:0 ~leaf:3);
  check_int "leaf_bytes of u32" 4 (Codec.leaf_bytes flat_schema ~leaf:0);
  Alcotest.check_raises "string leaf as int"
    (Invalid_argument "Codec.get_leaf_int: leaf is not an integer") (fun () ->
      ignore (Codec.get_leaf_int flat_schema b ~base:0 ~leaf:2))

(* {2 QCheck: roundtrips and fuzzing} *)

let qcheck_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 50)
        (triple (int_range 0 0xFFFFFFFF) (small_string ~gen:printable) bool))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"codec roundtrip (list of triples)" ~count:300 gen (fun v ->
         roundtrip Codec.(list (triple u32 string bool)) v = v))

let qcheck_nested =
  let c = Codec.(option (pair (list u16) string)) in
  let gen =
    QCheck2.Gen.(
      option (pair (list_size (int_range 0 20) (int_range 0 0xFFFF)) (small_string ~gen:printable)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"codec roundtrip (nested option)" ~count:300 gen (fun v ->
         roundtrip c v = v))

let qcheck_flat_roundtrip =
  let gen =
    QCheck2.Gen.(
      pair
        (pair (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFF))
        (pair
           (string_size ~gen:printable (return 8))
           (string_size ~gen:printable (int_range 0 12))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"flat roundtrip" ~count:300 gen (fun v ->
         roundtrip ~backend:Codec.Flat flat_schema v = v
         && roundtrip ~backend:Codec.Compact flat_schema v = v))

(* Strict prefix property: for codecs without tail fields, no strict
   prefix of a valid encoding is itself valid — decode must raise
   [Decode_error] (and nothing else) for every one. *)
let prefix_cases =
  [
    ("string", Codec.to_bytes Codec.string "hello world");
    ("pair", Codec.to_bytes Codec.(pair u32 string) (7, "payload"));
    ("list", Codec.to_bytes Codec.(list u16) [ 1; 2; 3 ]);
    ("variant", Codec.to_bytes shape_codec (Label "edge"));
    ("checksum", Codec.to_bytes (Codec.with_checksum Codec.string) "hello");
    ("flat", Codec.to_bytes ~backend:Codec.Flat flat_schema flat_value);
  ]

let decode_of_name name =
  match name with
  | "string" -> fun b -> ignore (Codec.of_bytes Codec.string b)
  | "pair" -> fun b -> ignore (Codec.of_bytes Codec.(pair u32 string) b)
  | "list" -> fun b -> ignore (Codec.of_bytes Codec.(list u16) b)
  | "variant" -> fun b -> ignore (Codec.of_bytes shape_codec b)
  | "checksum" -> fun b -> ignore (Codec.of_bytes (Codec.with_checksum Codec.string) b)
  | "flat" -> fun b -> ignore (Codec.of_bytes ~backend:Codec.Flat flat_schema b)
  | _ -> assert false

let test_prefix_fuzz () =
  List.iter
    (fun (name, b) ->
      let decode = decode_of_name name in
      decode b (* the full encoding must decode *);
      for n = 0 to Bytes.length b - 1 do
        match decode (Bytes.sub b 0 n) with
        | () -> Alcotest.failf "%s: prefix of %d/%d bytes decoded" name n (Bytes.length b)
        | exception Codec.Decode_error _ -> ()
        | exception e ->
            Alcotest.failf "%s: prefix of %d bytes raised %s" name n (Printexc.to_string e)
      done)
    prefix_cases

(* Corruption property: flipping any single byte either still decodes (to
   possibly different data) or raises [Decode_error] — never any other
   exception. *)
let test_corruption_fuzz () =
  List.iter
    (fun (name, b) ->
      let decode = decode_of_name name in
      for i = 0 to Bytes.length b - 1 do
        for bit = 0 to 7 do
          let b' = Bytes.copy b in
          Bytes.set b' i (Char.chr (Char.code (Bytes.get b' i) lxor (1 lsl bit)));
          match decode b' with
          | () -> ()
          | exception Codec.Decode_error _ -> ()
          | exception e ->
              Alcotest.failf "%s: corrupt byte %d bit %d raised %s" name i bit
                (Printexc.to_string e)
        done
      done)
    prefix_cases

(* {2 Golden wire bytes}

   These are the exact encodings the hand-rolled marshalling produced
   before the codec refactor. They are the service's frozen wire formats:
   a change here breaks same-seed chaos-trace reproducibility. *)

let key16 = "0123456789abcdef"
let ramp64 = String.init 64 (fun i -> Char.chr (32 + i))

let test_golden_kv_request () =
  let req op value =
    { Service.Kv_proto.op; shard = 3; client_id = 7; seq = 42; key = key16; value }
  in
  check_str "PUT"
    ("0000000003000000070000002a00000030313233343536373839616263646566"
    ^ hex (Bytes.of_string ramp64))
    (hex (Codec.to_bytes Service.Kv_proto.request_codec (req Service.Kv_proto.Put ramp64)));
  check_str "GET (value zero-padded)"
    ("0100000003000000070000002a00000030313233343536373839616263646566"
    ^ String.concat "" (List.init 64 (fun _ -> "00")))
    (hex (Codec.to_bytes Service.Kv_proto.request_codec (req Service.Kv_proto.Get "")))

let test_golden_kv_response () =
  let enc status value = hex (Codec.to_bytes Service.Kv_proto.response_codec (status, value)) in
  check_str "Ok none" "0000000000000000" (enc Service.Kv_proto.Ok_ None);
  check_str "Ok value"
    ("0000000000000000" ^ String.concat "" (List.init 64 (fun _ -> "76")))
    (enc Service.Kv_proto.Ok_ (Some (String.make 64 'v')));
  check_str "Not_leader hint" "0100000005000000" (enc (Service.Kv_proto.Not_leader (Some 4)) None);
  check_str "Retry none" "0200000000000000" (enc (Service.Kv_proto.Retry None) None);
  check_str "Not_found" "0300000000000000" (enc Service.Kv_proto.Not_found None)

let test_golden_kv_cmd () =
  check_str "cmd"
    ("070000002a00000030313233343536373839616263646566"
    ^ String.concat "" (List.init 64 (fun _ -> "77")))
    (hex
       (Bytes.of_string
          (Service.Kv_proto.encode_cmd ~client_id:7 ~seq:42 ~key:key16 ~value:(String.make 64 'w'))));
  check_str "noop"
    ("ffffffff09000000" ^ String.concat "" (List.init 80 (fun _ -> "00")))
    (hex (Bytes.of_string (Service.Kv_proto.noop_cmd ~seq:9)));
  let client_id, seq, key, value = Service.Kv_proto.decode_cmd (Service.Kv_proto.noop_cmd ~seq:9) in
  check_bool "noop decodes" true
    (client_id = Service.Kv_proto.noop_client_id && seq = 9
    && key = String.make 16 '\000'
    && value = String.make 64 '\000')

let test_golden_raft () =
  let enc msg = hex (Raft.Wire.encode msg) in
  check_str "Request_vote" "0005000000020000001100000004000000"
    (enc
       (Raft.Core.Request_vote
          { term = 5; candidate_id = 2; last_log_index = 17; last_log_term = 4 }));
  check_str "Request_vote_resp" "01050000000101000000"
    (enc (Raft.Core.Request_vote_resp { term = 5; vote_granted = true; from = 1 }));
  check_str "Append_entries"
    ("020600000000000000030000000200000003000000060000000500000068656c6c6f06000000000000000700000064000000"
    ^ String.concat "" (List.init 100 (fun _ -> "7a")))
    (enc
       (Raft.Core.Append_entries
          {
            term = 6;
            leader_id = 0;
            prev_log_index = 3;
            prev_log_term = 2;
            leader_commit = 3;
            entries =
              [
                { Raft.Log.term = 6; cmd = "hello" };
                { Raft.Log.term = 6; cmd = "" };
                { Raft.Log.term = 7; cmd = String.make 100 'z' };
              ];
          }));
  check_str "Append_entries_resp" "030600000000020000000b000000"
    (enc (Raft.Core.Append_entries_resp { term = 6; success = false; from = 2; match_index = 11 }))

let test_golden_raft_frame () =
  let msg =
    Raft.Core.Append_entries
      {
        term = 2;
        leader_id = 1;
        prev_log_index = 0;
        prev_log_term = 0;
        leader_commit = 0;
        entries = [ { Raft.Log.term = 2; cmd = "cmd-bytes" } ];
      }
  in
  check_str "frame"
    "020000000202000000010000000000000000000000000000000200000009000000636d642d6279746573"
    (hex (Codec.to_bytes Service.Kv_proto.raft_frame_codec (2, msg)));
  check_int "frame size" (4 + Raft.Wire.encoded_size msg) (Service.Kv_proto.raft_frame_size msg)

let test_kv_request_flat_leaves () =
  (* The KV request schema is all fixed-width, so the flat backend can
     address its 6 leaves without a full decode. *)
  check_bool "flat capable" true (Codec.flat_capable Service.Kv_proto.request_codec);
  check_int "leaves" 6 (Codec.flat_leaves Service.Kv_proto.request_codec);
  let r =
    { Service.Kv_proto.op = Service.Kv_proto.Put; shard = 3; client_id = 7; seq = 42; key = key16; value = ramp64 }
  in
  let b = Codec.to_bytes ~backend:Codec.Flat Service.Kv_proto.request_codec r in
  check_bool "flat = compact bytes" true (b = Codec.to_bytes Service.Kv_proto.request_codec r);
  check_int "seq leaf" 42 (Codec.get_leaf_int Service.Kv_proto.request_codec b ~base:0 ~leaf:3);
  check_str "key leaf" key16 (Codec.get_leaf_string Service.Kv_proto.request_codec b ~base:0 ~leaf:4)

(* {2 Typed msgbuf integration} *)

let test_typed_write_semantics () =
  let c = Codec.(pair u32 string) in
  let m = Erpc.Msgbuf.alloc ~max_size:64 in
  Erpc.Typed.write c m (7, "payload");
  check_int "msgbuf resized to exact size" (4 + 4 + 7) (Erpc.Msgbuf.size m);
  check_bool "read back" true (Erpc.Typed.read c m = (7, "payload"));
  (* Re-use with a smaller value: shrinks again. *)
  Erpc.Typed.write c m (1, "");
  check_int "shrinks" 8 (Erpc.Msgbuf.size m);
  (* Over capacity: raises without touching the buffer. *)
  let small = Erpc.Msgbuf.alloc ~max_size:4 in
  check_bool "capacity raise" true
    (try
       Erpc.Typed.write c small (1, "too long");
       false
     with Invalid_argument _ -> true);
  check_int "untouched" 4 (Erpc.Msgbuf.size small);
  (* In-flight (eRPC-owned) buffers are rejected up front. *)
  let view = Erpc.Msgbuf.view (Bytes.make 16 '\000') ~off:0 ~len:16 in
  Alcotest.check_raises "in flight"
    (Invalid_argument "Typed.write: msgbuf is in flight (eRPC-owned)") (fun () ->
      Erpc.Typed.write c view (1, ""))

let test_typed_write_checksum_compose () =
  (* Regression: [with_checksum] must see the exact encoded extent, so
     resize-to-exact has to happen before the checksum trailer is read
     back. An oversized buffer must not perturb the frame. *)
  let c = Codec.with_checksum Codec.(pair u32 string) in
  let m = Erpc.Msgbuf.alloc ~max_size:256 in
  Erpc.Typed.write c m (9, "checked");
  check_int "sized to frame" (4 + 4 + 7 + 4) (Erpc.Msgbuf.size m);
  check_bool "verifies" true (Erpc.Typed.read c m = (9, "checked"));
  (* Corrupt one body byte through the raw view: decode must fail. *)
  let b = Erpc.Msgbuf.unsafe_bytes m in
  let off = Erpc.Msgbuf.unsafe_offset m in
  Bytes.set b (off + 4) 'X';
  check_bool "corruption detected" true
    (try
       ignore (Erpc.Typed.read c m);
       false
     with Codec.Decode_error _ -> true)

let test_alloc_and_write () =
  let m = Erpc.Typed.alloc_and_write Codec.string "x" in
  check_int "exact allocation" 5 (Erpc.Msgbuf.max_size m);
  check_str "contents" "x" (Erpc.Typed.read Codec.string m)

(* {2 Typed RPC end-to-end} *)

let sum_req_codec = Codec.(pair (bounded_string 8) (list u32))
let sum_resp_codec = Codec.u64

let run_sum_rpc ?config () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create ?config cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:5 ~mode:Erpc.Nexus.Dispatch (fun h ->
      let tag, numbers = Erpc.Typed.read_request h sum_req_codec in
      let sum = if tag = "sum" then List.fold_left ( + ) 0 numbers else 0 in
      Erpc.Typed.respond h sum_resp_codec sum);
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.ms 1.0);
  let answer = ref (Error (Erpc.Err.Session_error "never ran")) in
  Erpc.Typed.enqueue_request client sess ~req_type:5 ~req_codec:sum_req_codec
    ~resp_codec:sum_resp_codec
    ("sum", [ 1; 2; 3; 4; 5 ])
    ~cont:(fun r -> answer := r);
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 5.0));
  !answer

let test_typed_rpc_over_erpc () =
  match run_sum_rpc () with
  | Ok sum -> check_int "typed RPC answer" 15 sum
  | Error e -> Alcotest.failf "typed RPC failed: %s" (Erpc.Err.to_string e)

let test_typed_rpc_offload () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let config = { (Erpc.Config.of_cluster cluster) with codec_offload = true } in
  match run_sum_rpc ~config () with
  | Ok sum -> check_int "offloaded answer" 15 sum
  | Error e -> Alcotest.failf "offloaded RPC failed: %s" (Erpc.Err.to_string e)

(* Flat backend end-to-end, including lazy per-leaf access on the server:
   the handler touches two of the three fields and responds from them. *)
let flat_req_codec = Codec.(pair (pair u32 u32) (fixed_string 8))

let test_typed_rpc_flat_lazy () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let config = { (Erpc.Config.of_cluster cluster) with codec_backend = Codec.Flat } in
  let fabric = Erpc.Fabric.create ~config cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  let was_lazy = ref false in
  Erpc.Nexus.register_handler nx1 ~req_type:6 ~mode:Erpc.Nexus.Dispatch (fun h ->
      let v = Erpc.Typed.view_request h flat_req_codec in
      was_lazy := Erpc.Typed.is_lazy v;
      let a = Erpc.Typed.view_int v ~leaf:0 ~fallback:(fun ((a, _), _) -> a) in
      let b = Erpc.Typed.view_int v ~leaf:1 ~fallback:(fun ((_, b), _) -> b) in
      Erpc.Typed.respond h Codec.u64 (a + b));
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.ms 1.0);
  let answer = ref 0 in
  Erpc.Typed.enqueue_request client sess ~req_type:6 ~req_codec:flat_req_codec
    ~resp_codec:Codec.u64
    ((40, 2), "abcdefgh")
    ~cont:(function Ok sum -> answer := sum | Error _ -> ());
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 5.0));
  check_int "flat RPC answer" 42 !answer;
  check_bool "server view was lazy" true !was_lazy

let suite =
  [
    Alcotest.test_case "primitives" `Quick test_primitives;
    Alcotest.test_case "range checks" `Quick test_range_checks;
    Alcotest.test_case "combinators" `Quick test_combinators;
    Alcotest.test_case "map" `Quick test_map;
    Alcotest.test_case "sizes exact" `Quick test_sizes_exact;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "truncation raises" `Quick test_truncation_raises;
    Alcotest.test_case "trailing bytes raise" `Quick test_trailing_bytes_raise;
    Alcotest.test_case "variant" `Quick test_variant;
    Alcotest.test_case "with_checksum" `Quick test_with_checksum;
    Alcotest.test_case "flat roundtrip" `Quick test_flat_roundtrip;
    Alcotest.test_case "flat wrong length" `Quick test_flat_wrong_length_raises;
    Alcotest.test_case "flat lazy access" `Quick test_flat_lazy_access;
    qcheck_roundtrip;
    qcheck_nested;
    qcheck_flat_roundtrip;
    Alcotest.test_case "prefix fuzz" `Quick test_prefix_fuzz;
    Alcotest.test_case "corruption fuzz" `Quick test_corruption_fuzz;
    Alcotest.test_case "golden kv request" `Quick test_golden_kv_request;
    Alcotest.test_case "golden kv response" `Quick test_golden_kv_response;
    Alcotest.test_case "golden kv cmd" `Quick test_golden_kv_cmd;
    Alcotest.test_case "golden raft" `Quick test_golden_raft;
    Alcotest.test_case "golden raft frame" `Quick test_golden_raft_frame;
    Alcotest.test_case "kv request flat leaves" `Quick test_kv_request_flat_leaves;
    Alcotest.test_case "typed write semantics" `Quick test_typed_write_semantics;
    Alcotest.test_case "typed write + checksum" `Quick test_typed_write_checksum_compose;
    Alcotest.test_case "alloc_and_write" `Quick test_alloc_and_write;
    Alcotest.test_case "typed RPC over eRPC" `Quick test_typed_rpc_over_erpc;
    Alcotest.test_case "typed RPC offloaded" `Quick test_typed_rpc_offload;
    Alcotest.test_case "typed RPC flat lazy" `Quick test_typed_rpc_flat_lazy;
  ]
