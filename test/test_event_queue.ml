(* Tests for the engine's event queue: the production timing wheel
   checked against the legacy binary heap as an oracle. Both must pop
   the exact same sequence for the same pushes — that equivalence is
   what makes [Sim.Event_queue.set_default_impl] trace-invariant. *)

let check_int = Alcotest.(check int)

let impls = [ ("wheel", Sim.Event_queue.Wheel); ("binheap", Sim.Event_queue.Binheap) ]

(* Drain a queue into a [(time, payload) list]. *)
let drain q =
  let rec go acc =
    match Sim.Event_queue.pop q with
    | None -> List.rev acc
    | Some (t, v) -> go ((t, v) :: acc)
  in
  go []

let test_same_time_fifo () =
  List.iter
    (fun (name, impl) ->
      let q = Sim.Event_queue.create ~impl () in
      (* Three bursts at the same timestamp, interleaved with other times:
         ties must pop in push order. *)
      for i = 0 to 99 do
        Sim.Event_queue.push q 500 (1_000 + i);
        Sim.Event_queue.push q 100 (2_000 + i);
        Sim.Event_queue.push q 500 (1_100 + i)
      done;
      let got = drain q in
      let at t = List.filter_map (fun (t', v) -> if t = t' then Some v else None) got in
      let expect_500 =
        List.concat_map (fun i -> [ 1_000 + i; 1_100 + i ]) (List.init 100 Fun.id)
      in
      Alcotest.(check (list int)) (name ^ ": t=100 FIFO") (List.init 100 (fun i -> 2_000 + i)) (at 100);
      Alcotest.(check (list int)) (name ^ ": t=500 FIFO") expect_500 (at 500);
      check_int (name ^ ": drained") 300 (List.length got))
    impls

let test_clear () =
  List.iter
    (fun (name, impl) ->
      let q = Sim.Event_queue.create ~impl () in
      for i = 0 to 50 do
        Sim.Event_queue.push q (i * 7) i;
        (* Some far beyond the wheel window, to land in the overflow heap. *)
        Sim.Event_queue.push q ((i * 7) + 1_000_000) i
      done;
      Sim.Event_queue.clear q;
      Alcotest.(check bool) (name ^ ": empty after clear") true (Sim.Event_queue.is_empty q);
      check_int (name ^ ": length 0") 0 (Sim.Event_queue.length q);
      Alcotest.(check bool) (name ^ ": no pop") true (Sim.Event_queue.pop q = None);
      (* The queue must be fully usable after clear. *)
      Sim.Event_queue.push q 9 1;
      Sim.Event_queue.push q 3 2;
      Alcotest.(check (list (pair int int))) (name ^ ": reusable") [ (3, 2); (9, 1) ] (drain q))
    impls

let test_pop_if_before () =
  List.iter
    (fun (name, impl) ->
      let q = Sim.Event_queue.create ~impl () in
      Sim.Event_queue.push q 10 "a";
      Sim.Event_queue.push q 20 "b";
      Sim.Event_queue.push q 20 "b2";
      Sim.Event_queue.push q 30 "c";
      let check_str = Alcotest.(check string) in
      (* Horizon below the minimum: nothing pops, queue untouched. *)
      check_str (name ^ ": too early") "none" (Sim.Event_queue.pop_if_before q 9 ~default:"none");
      check_int (name ^ ": untouched") 4 (Sim.Event_queue.length q);
      check_str (name ^ ": at min") "a" (Sim.Event_queue.pop_if_before q 10 ~default:"none");
      check_int (name ^ ": last_time") 10 (Sim.Event_queue.last_time q);
      (* Ties under the horizon pop in push order. *)
      check_str (name ^ ": tie 1") "b" (Sim.Event_queue.pop_if_before q 25 ~default:"none");
      check_str (name ^ ": tie 2") "b2" (Sim.Event_queue.pop_if_before q 25 ~default:"none");
      check_str (name ^ ": above horizon") "none" (Sim.Event_queue.pop_if_before q 25 ~default:"none");
      check_str (name ^ ": final") "c" (Sim.Event_queue.pop_if_before q 1_000_000 ~default:"none");
      Alcotest.(check bool) (name ^ ": drained") true (Sim.Event_queue.is_empty q))
    impls

let test_window_boundary () =
  (* The wheel covers a 16384 ns window past the last popped time; events
     beyond it sit in an overflow heap and migrate in as the window
     advances. Straddle the boundary repeatedly and check order (and
     same-time FIFO across the wheel/heap seam) against the binheap. *)
  let build impl =
    let q = Sim.Event_queue.create ~impl () in
    let boundary = 16_384 in
    List.iteri
      (fun i off ->
        Sim.Event_queue.push q off (2 * i);
        Sim.Event_queue.push q off ((2 * i) + 1))
      [
        boundary - 1; boundary; boundary + 1; 0; boundary * 3; 1;
        boundary - 1; boundary * 2; boundary; 5; (boundary * 2) + 1; boundary * 10;
      ];
    (* Pop a few to advance the window (migrating heap entries in), then
       push more events behind and beyond the new window. *)
    let popped = ref [] in
    for _ = 1 to 6 do
      match Sim.Event_queue.pop q with
      | Some (t, v) -> popped := (t, v) :: !popped
      | None -> Alcotest.fail "queue exhausted early"
    done;
    List.iteri
      (fun i off -> Sim.Event_queue.push q off (100 + i))
      [ 2; boundary + 2; (boundary * 4) + 7; 3; boundary * 4 ];
    List.rev_append !popped (drain q)
  in
  let wheel = build Sim.Event_queue.Wheel in
  let heap = build Sim.Event_queue.Binheap in
  Alcotest.(check (list (pair int int))) "wheel = binheap across window boundary" heap wheel

(* Random push/pop interleavings: the wheel must agree with the binheap
   oracle event-for-event, including tie order and interleaved pops that
   advance the window mid-stream. *)
let test_equivalence_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wheel matches binheap on random interleavings" ~count:200
       QCheck2.Gen.(
         list_size (int_range 1 400)
           (oneof
              [
                (* push at a small offset (in-window) *)
                map (fun t -> `Push t) (int_range 0 1_000);
                (* push far out (overflow heap) *)
                map (fun t -> `Push t) (int_range 16_000 200_000);
                return `Pop;
              ]))
       (fun ops ->
         let run impl =
           let q = Sim.Event_queue.create ~impl () in
           let log = ref [] in
           (* Times are relative to the last popped time so pushes stay
              valid (an engine never schedules in the past) while still
              straddling the window. *)
           List.iteri
             (fun i op ->
               match op with
               | `Push dt ->
                   let now = if Sim.Event_queue.is_empty q then 0 else Sim.Event_queue.last_time q in
                   Sim.Event_queue.push q (now + dt) i
               | `Pop -> (
                   match Sim.Event_queue.pop q with
                   | Some (t, v) -> log := (t, v) :: !log
                   | None -> log := (-1, -1) :: !log))
             ops;
           List.rev_append !log (drain q)
         in
         run Sim.Event_queue.Wheel = run Sim.Event_queue.Binheap))

(* {2 Whole-simulator properties} *)

(* The two implementations must produce byte-identical traces on a full
   chaos run — same events, same order, same simulated results. *)
let test_cross_impl_trace_identity () =
  let run impl =
    Sim.Event_queue.set_default_impl impl;
    Fun.protect ~finally:(fun () -> Sim.Event_queue.set_default_impl Sim.Event_queue.Wheel)
    @@ fun () -> Experiments.Chaos.run_one ~seed:4242L ()
  in
  let w = run Sim.Event_queue.Wheel in
  let b = run Sim.Event_queue.Binheap in
  Alcotest.(check string) "trace identical across impls" b.Experiments.Chaos.trace w.trace;
  check_int "same event count" b.events w.events;
  Alcotest.(check (list string)) "no invariant violations" [] w.violations

(* Allocation budget: the pooled datapath plus the wheel's cell free-list
   keep steady-state cost near 6 minor-heap words per event (closures for
   RPC continuations, timer records); the budget of 8 leaves headroom for
   GC jitter only. A regression that reintroduces per-packet or per-event
   boxing blows well past this. *)
let test_allocation_budget () =
  let run () =
    let cluster = Transport.Cluster.cx4 ~nodes:4 () in
    let d =
      Experiments.Harness.deploy ~seed:7L cluster ~threads_per_host:1
        ~register:(Experiments.Harness.register_echo ~resp_size:32)
    in
    let drivers =
      Array.init 3 (fun h ->
          let rpc = d.rpcs.(h).(0) in
          let sessions =
            [| Experiments.Harness.connect d rpc ~remote_host:3 ~remote_rpc_id:0 |]
          in
          Experiments.Harness.make_driver
            ~rng:(Sim.Rng.split (Sim.Engine.rng (Erpc.Fabric.engine d.fabric)))
            ~rpc ~sessions ~window:8 ~req_size:1024 ())
    in
    Array.iter Experiments.Harness.start_driver drivers;
    Experiments.Harness.run_ms d 2.0;
    Sim.Engine.events_processed (Erpc.Fabric.engine d.fabric)
  in
  (* Warm once so one-time pool/table growth is excluded, as in bench-sim. *)
  ignore (run ());
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let events = run () in
  let words = Gc.minor_words () -. w0 in
  let per_event = words /. float_of_int events in
  if per_event > 8. then
    Alcotest.failf "allocation budget blown: %.1f minor words/event (budget 8)" per_event

(* The wheel-occupancy gauge (partition load-imbalance observability):
   it must track how many wheel slots hold pending events and drain back
   to zero with the queue. *)
let test_wheel_occupancy_gauge () =
  let e = Sim.Engine.create ~seed:1L () in
  Sim.Engine.schedule e 10 (fun () -> ());
  Sim.Engine.schedule e 5_000 (fun () -> ());
  let occ () = Obs.Metrics.max_gauge (Sim.Engine.metrics e) ~name:"sim.wheel_occupancy" in
  Alcotest.(check bool) "gauge sees pending events" true (occ () >= 1.);
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "gauge drains to zero" 0.0 (occ ())

let suite =
  [
    Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "wheel occupancy gauge" `Quick test_wheel_occupancy_gauge;
    Alcotest.test_case "clear semantics" `Quick test_clear;
    Alcotest.test_case "pop_if_before" `Quick test_pop_if_before;
    Alcotest.test_case "wheel window boundary" `Quick test_window_boundary;
    test_equivalence_qcheck;
    Alcotest.test_case "cross-impl trace identity" `Quick test_cross_impl_trace_identity;
    Alcotest.test_case "allocation budget" `Quick test_allocation_budget;
  ]
