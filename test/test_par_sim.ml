(* Domain-parallel simulation (Sim.Partition + Exp_par_sim + Par_sweep):
   the whole point of the PDES tier is that domain count is invisible in
   the results, so nearly every test here is an equality between a
   sequential and a parallel execution of the same seeded work.

   [ERPC_TEST_DOMAINS] (default 2) sets the parallel side, letting CI
   force the suite through a given domain count without editing tests. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let forced_domains =
  match Sys.getenv_opt "ERPC_TEST_DOMAINS" with
  | Some s -> (try Stdlib.max 1 (int_of_string s) with _ -> 2)
  | None -> 2

(* {2 Kernel: lookahead boundary and tie-breaks} *)

(* A message timestamped exactly [now + lookahead] — the tightest send the
   kernel admits — must be delivered, and must run before a local event at
   the same timestamp (messages win ties). *)
let run_boundary ~domains =
  let order = ref [] in
  let g : int Sim.Partition.t = Sim.Partition.create ~seed:7L ~parts:2 () in
  let la = 100 in
  Sim.Partition.connect g ~src:0 ~dst:1 ~lookahead:la;
  Sim.Partition.on_receive g 1 (fun ~ts ~src:_ payload ->
      order := Printf.sprintf "msg:%d@%d" payload ts :: !order);
  Sim.Engine.schedule (Sim.Partition.engine g 1) la (fun () ->
      order := Printf.sprintf "local@%d" (Sim.Engine.now (Sim.Partition.engine g 1)) :: !order);
  Sim.Engine.schedule (Sim.Partition.engine g 0) 0 (fun () ->
      Sim.Partition.send g ~src:0 ~dst:1 ~ts:la 42);
  (* A second message landing exactly on the run horizon must still be
     delivered (run is inclusive of the horizon, like Engine.run_until). *)
  Sim.Engine.schedule (Sim.Partition.engine g 0) 100 (fun () ->
      Sim.Partition.send g ~src:0 ~dst:1 ~ts:200 43);
  Sim.Partition.run ~domains ~horizon:200 g;
  (List.rev !order, Sim.Partition.messages_delivered g)

let test_lookahead_boundary () =
  let seq, delivered = run_boundary ~domains:1 in
  check_int "both boundary messages delivered" 2 delivered;
  Alcotest.(check (list string))
    "message at now+lookahead runs before the same-ts local event"
    [ "msg:42@100"; "local@100"; "msg:43@200" ]
    seq;
  let par, delivered_par = run_boundary ~domains:forced_domains in
  check_int "parallel run delivers the same messages" delivered delivered_par;
  Alcotest.(check (list string)) "parallel run executes the same order" seq par

(* {2 Trace merge: invariance to sharding}

   Obs.Trace.merge's contract: when every pid's event stream lives in
   exactly one shard, the merged digest does not depend on how pids were
   assigned to shards. Model an engine per shard by recording that
   shard's events in timestamp order (stable within a pid), which is
   exactly what a partitioned run produces. *)

let merged_digest_for ~nparts events =
  let shards = Array.init nparts (fun _ -> Obs.Trace.create ~capacity:4096 ()) in
  let per_shard = Array.make nparts [] in
  List.iter
    (fun ((pid, _, _) as e) ->
      let s = pid mod nparts in
      per_shard.(s) <- e :: per_shard.(s))
    events;
  Array.iteri
    (fun s evs ->
      (* Stable sort by ts only: per-pid relative order (generation order)
         survives, pids interleave by timestamp — an engine's record order. *)
      let arr = Array.of_list (List.rev evs) in
      Array.stable_sort (fun (_, a, _) (_, b, _) -> compare a b) arr;
      Array.iter
        (fun (pid, ts, tag) ->
          Obs.Trace.instant shards.(s) ~ts ~cat:"q" ~name:(string_of_int tag) ~pid
            ~tid:0 [])
        arr)
    per_shard;
  Obs.Trace.merged_digest (Array.to_list shards)

let qcheck_merge_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"merged trace digest invariant to partition count"
       ~count:200
       QCheck2.Gen.(
         pair
           (list_size (int_range 0 120)
              (triple (int_range 0 7) (int_range 0 50) (int_range 0 1000)))
           (pair (int_range 1 6) (int_range 1 6)))
       (fun (events, (k1, k2)) ->
         merged_digest_for ~nparts:k1 events = merged_digest_for ~nparts:k2 events))

(* {2 End-to-end: par-bench digest equality, >= 5 seeds} *)

let test_par_sim_digest_equality () =
  List.iter
    (fun seed ->
      let run domains =
        Experiments.Exp_par_sim.run_one ~seed ~racks:2 ~hosts_per_rack:2
          ~horizon_ms:1.0 ~domains ()
      in
      let r1 = run 1 in
      let rn = run forced_domains in
      check_string
        (Printf.sprintf "seed %Ld: merged digest equal across domain counts" seed)
        r1.digest rn.digest;
      check_int (Printf.sprintf "seed %Ld: same event total" seed) r1.events rn.events;
      Alcotest.(check (list int))
        (Printf.sprintf "seed %Ld: same per-partition event counts" seed)
        r1.part_events rn.part_events;
      check_bool
        (Printf.sprintf "seed %Ld: workload actually ran" seed)
        true
        (r1.requests > 0 && r1.responses > 0))
    [ 1L; 2L; 3L; 4L; 5L ]

(* {2 Par_sweep: jobs=1 vs jobs=N equality for the replication suites} *)

let test_chaos_jobs_equality () =
  let s1 = Experiments.Chaos.run_suite ~seeds:5 ~jobs:1 () in
  let sn = Experiments.Chaos.run_suite ~seeds:5 ~jobs:forced_domains () in
  check_int "same run count" (List.length s1.runs) (List.length sn.runs);
  check_bool "both deterministic" true (s1.deterministic && sn.deterministic);
  List.iter2
    (fun (a : Experiments.Chaos.run_result) (b : Experiments.Chaos.run_result) ->
      check_string (Printf.sprintf "seed %Ld: identical trace" a.seed) a.trace b.trace)
    s1.runs sn.runs

let test_kv_chaos_jobs_equality () =
  let s1 = Experiments.Exp_kv_chaos.run_suite ~seeds:5 ~jobs:1 () in
  let sn = Experiments.Exp_kv_chaos.run_suite ~seeds:5 ~jobs:forced_domains () in
  check_int "same run count" (List.length s1.runs) (List.length sn.runs);
  check_bool "both deterministic" true (s1.deterministic && sn.deterministic);
  List.iter2
    (fun (a : Experiments.Exp_kv_chaos.run_result)
         (b : Experiments.Exp_kv_chaos.run_result) ->
      check_string (Printf.sprintf "seed %Ld: identical trace" a.seed) a.trace b.trace)
    s1.runs sn.runs

let test_cluster_load_jobs_equality () =
  List.iter
    (fun seed ->
      let run jobs =
        Experiments.Exp_cluster_load.run_all ~seed ~scale:0.2 ~horizon_ms:5.0 ~jobs ()
      in
      List.iter2
        (fun (a : Experiments.Exp_cluster_load.result)
             (b : Experiments.Exp_cluster_load.result) ->
          check_string
            (Printf.sprintf "seed %Ld %s: identical digest" seed a.scenario)
            a.digest b.digest)
        (run 1) (run forced_domains))
    [ 3L; 5L; 7L; 11L; 13L ]

(* {2 Par_sweep mechanics} *)

let test_par_sweep_order_and_exn () =
  Alcotest.(check (array int))
    "results in task order" [| 0; 10; 20; 30; 40; 50; 60 |]
    (Experiments.Par_sweep.map ~jobs:forced_domains 7 (fun i -> i * 10));
  Alcotest.(check (array int)) "empty" [||] (Experiments.Par_sweep.map ~jobs:4 0 (fun i -> i));
  match Experiments.Par_sweep.map ~jobs:forced_domains 5 (fun i ->
            if i = 3 then failwith "task-3" else i)
  with
  | _ -> Alcotest.fail "expected task exception to propagate"
  | exception Failure m -> check_string "task exception re-raised in caller" "task-3" m

let suite =
  [
    Alcotest.test_case "kernel lookahead boundary + tie-break" `Quick
      test_lookahead_boundary;
    qcheck_merge_invariant;
    Alcotest.test_case "par-bench digests equal across domains (5 seeds)" `Quick
      test_par_sim_digest_equality;
    Alcotest.test_case "chaos suite identical under --jobs (5 seeds)" `Quick
      test_chaos_jobs_equality;
    Alcotest.test_case "kv-chaos suite identical under --jobs (5 seeds)" `Quick
      test_kv_chaos_jobs_equality;
    Alcotest.test_case "cluster-load identical under --jobs (5 seeds)" `Quick
      test_cluster_load_jobs_equality;
    Alcotest.test_case "Par_sweep order and exception plumbing" `Quick
      test_par_sweep_order_and_exn;
  ]
