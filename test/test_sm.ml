(* Session-management plane: handshake state transitions, refusals, the
   failure/crash transitions into [Error], and SM message formatting. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let echo = Test_erpc_basic.(echo_req_type)

let make_pair () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:4));
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  (fabric, client, server)

let run fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let state_name (s : Erpc.Session.conn_state) =
  match s with
  | Connect_pending -> "pending"
  | Connected -> "connected"
  | Error _ -> "error"
  | Destroyed -> "destroyed"

let test_handshake_transitions () =
  let fabric, client, server = make_pair () in
  let connected = ref false in
  let sess =
    Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0
      ~on_connect:(fun r -> connected := Result.is_ok r)
      ()
  in
  (* Before any SM round trip: awaiting the server's Connect_resp. *)
  check_str "starts pending" "pending" (state_name sess.state);
  check_bool "callback not yet run" false !connected;
  run fabric 1.0;
  check_str "connected after handshake" "connected" (state_name sess.state);
  check_bool "on_connect saw success" true !connected;
  (* The server materialized its half of the session. *)
  check_int "server-side session exists" 1 (Erpc.Rpc.num_sessions server)

let test_connect_refused_enters_error () =
  let fabric, client, _server = make_pair () in
  (* No Rpc with id 7 exists on host 1: Fabric delivers the Connect_req
     nowhere... use an existing Rpc id but a host with no session budget
     instead: simplest refusal is connecting to a live Rpc whose budget is
     exhausted; exercise the plain refusal path via a bad rpc id and the
     failure-detection timeout instead. *)
  let refused = ref None in
  let sess =
    Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:7
      ~on_connect:(fun r -> refused := Some r)
      ()
  in
  check_str "starts pending" "pending" (state_name sess.state);
  (* A request enqueued while pending parks in the backlog. *)
  let req = Erpc.Msgbuf.alloc ~max_size:8 in
  let resp = Erpc.Msgbuf.alloc ~max_size:8 in
  let cont_result = ref None in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      cont_result := Some r);
  run fabric 1.0;
  (* The Connect_req vanished (no such sink); the session stays pending
     until something resolves it — nothing should have leaked meanwhile. *)
  check_str "unresolvable connect still pending" "pending" (state_name sess.state);
  check_bool "no phantom connect callback" true (!refused = None);
  check_bool "backlogged request still parked" true (!cont_result = None)

let test_peer_failure_transitions_to_error () =
  let fabric, client, _server = make_pair () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  check_str "connected" "connected" (state_name sess.state);
  Erpc.Fabric.kill_host fabric 1;
  run fabric 20.0;
  check_str "error after failure detection" "error" (state_name sess.state);
  (* Enqueue on an errored session: fails asynchronously, exactly once. *)
  let results = ref [] in
  let req = Erpc.Msgbuf.alloc ~max_size:8 in
  let resp = Erpc.Msgbuf.alloc ~max_size:8 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      results := r :: !results);
  run fabric 1.0;
  check_int "continuation ran once" 1 (List.length !results);
  check_bool "with an error" true (List.for_all Result.is_error !results)

let test_local_crash_transitions_to_error () =
  let fabric, client, _server = make_pair () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  Erpc.Fabric.crash_host fabric 0 ~down_ns:1_000_000;
  check_str "own crash puts sessions in error" "error" (state_name sess.state);
  run fabric 10.0;
  check_bool "host back up" false (Erpc.Fabric.host_dead fabric 0);
  check_str "restart does not resurrect sessions" "error" (state_name sess.state)

let test_destroy_transitions () =
  let fabric, client, _server = make_pair () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  Erpc.Rpc.destroy_session client sess;
  check_str "destroy is asynchronous" "connected" (state_name sess.state);
  run fabric 1.0;
  check_str "destroyed once acked" "destroyed" (state_name sess.state)

let test_sm_message_formatting () =
  let fmt m = Format.asprintf "%a" Erpc.Sm.pp m in
  check_str "connect req"
    "ConnectReq(h3/r1 sn=4 tok=17 credits=8)"
    (fmt
       (Erpc.Sm.Connect_req
          { client_host = 3; client_rpc = 1; client_sn = 4; token = 17; credits = 8 }));
  check_str "connect resp ok" "ConnectResp(csn=4 ssn=9)"
    (fmt (Erpc.Sm.Connect_resp { client_sn = 4; result = Ok 9 }));
  check_str "connect resp err" "ConnectResp(csn=4 error=budget)"
    (fmt (Erpc.Sm.Connect_resp { client_sn = 4; result = Error "budget" }));
  check_str "disconnect" "Disconnect(ssn=9 csn=4)"
    (fmt (Erpc.Sm.Disconnect { server_sn = 9; client_sn = 4 }));
  check_str "disconnect ack" "DisconnectAck(csn=4)"
    (fmt (Erpc.Sm.Disconnect_ack { client_sn = 4 }))

let suite =
  [
    Alcotest.test_case "handshake transitions" `Quick test_handshake_transitions;
    Alcotest.test_case "unresolvable connect stays pending" `Quick
      test_connect_refused_enters_error;
    Alcotest.test_case "peer failure -> error" `Quick test_peer_failure_transitions_to_error;
    Alcotest.test_case "local crash -> error" `Quick test_local_crash_transitions_to_error;
    Alcotest.test_case "destroy transitions" `Quick test_destroy_transitions;
    Alcotest.test_case "sm message formatting" `Quick test_sm_message_formatting;
  ]
