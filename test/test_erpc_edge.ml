(* Edge cases: spurious RTOs (false loss positives), zero-length messages,
   same-host sessions, determinism across runs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.(echo_req_type)

let with_transport transport (cfg : Erpc.Config.t) = { cfg with Erpc.Config.transport }

let deploy ?(transport = Erpc.Config.Raw_eth) ?config () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let config =
    with_transport transport
      (match config with Some c -> c | None -> Erpc.Config.of_cluster cluster)
  in
  let fabric = Erpc.Fabric.create ~config cluster in
  let handler_runs = ref 0 in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  List.iter
    (fun nx ->
      Erpc.Nexus.register_handler nx ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
          incr handler_runs;
          let req = Erpc.Req_handle.get_request h in
          let n = Erpc.Msgbuf.size req in
          let resp = Erpc.Req_handle.init_response h ~size:n in
          if n > 0 then Erpc.Msgbuf.blit ~src:req ~src_off:0 ~dst:resp ~dst_off:0 ~len:n;
          Erpc.Req_handle.enqueue_response h resp))
    [ nx0; nx1 ];
  (fabric, Erpc.Rpc.create nx0 ~rpc_id:0, Erpc.Rpc.create nx1 ~rpc_id:0, handler_runs)

let run fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

(* An RTO far below the RTT produces false loss positives on every RPC:
   duplicates flood the server, yet at-most-once semantics and completion
   must survive (§5.3's "induced loss" discussion). *)
let test_spurious_rto_at_most_once tp () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let config = { (Erpc.Config.of_cluster cluster) with rto_ns = 1_000 (* 1 us << RTT *) } in
  let fabric, client, _server, handler_runs = deploy ~transport:tp ~config () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  let n = 20 in
  let completed = ref 0 in
  let rec issue i =
    if i < n then begin
      let req = Erpc.Msgbuf.alloc ~max_size:2_048 in
      let resp = Erpc.Msgbuf.alloc ~max_size:2_048 in
      Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
          if Result.is_ok r then incr completed;
          issue (i + 1))
    end
  in
  issue 0;
  run fabric 100.0;
  check_int "all completed" n !completed;
  check_bool "spurious retransmissions occurred" true ((Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits > 0);
  check_int "handlers still ran exactly once each" n !handler_runs

let test_zero_length_request tp () =
  let fabric, client, _server, _ = deploy ~transport:tp () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  let req = Erpc.Msgbuf.alloc ~max_size:16 in
  Erpc.Msgbuf.resize req 0;
  let resp = Erpc.Msgbuf.alloc ~max_size:16 in
  let ok = ref false in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      ok := Result.is_ok r);
  run fabric 5.0;
  check_bool "zero-length RPC completes" true !ok;
  check_int "zero-length response" 0 (Erpc.Msgbuf.size resp)

let test_same_host_session tp () =
  (* Two Rpc endpoints on one host talking through the ToR and back. *)
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric =
    Erpc.Fabric.create ~config:(with_transport tp (Erpc.Config.of_cluster cluster)) cluster
  in
  let nx = Erpc.Nexus.create fabric ~host:0 () in
  Erpc.Nexus.register_handler nx ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:4));
  let a = Erpc.Rpc.create nx ~rpc_id:0 in
  let _b = Erpc.Rpc.create nx ~rpc_id:1 in
  let sess = Erpc.Rpc.create_session a ~remote_host:0 ~remote_rpc_id:1 () in
  run fabric 1.0;
  let req = Erpc.Msgbuf.alloc ~max_size:4 in
  let resp = Erpc.Msgbuf.alloc ~max_size:4 in
  let ok = ref false in
  Erpc.Rpc.enqueue_request a sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      ok := Result.is_ok r);
  run fabric 5.0;
  check_bool "same-host RPC via the ToR" true !ok

let test_determinism_across_runs () =
  let snapshot () =
    let r =
      Experiments.Exp_small_rate.run ~seed:7L ~measure_ms:0.5
        ~cluster:(Transport.Cluster.cx5 ~nodes:4 ())
        ~batch:3 ()
    in
    (r.total_rpcs, r.retransmits)
  in
  let a = snapshot () and b = snapshot () in
  check_bool "identical seeded runs" true (a = b);
  let c =
    let r =
      Experiments.Exp_small_rate.run ~seed:8L ~measure_ms:0.5
        ~cluster:(Transport.Cluster.cx5 ~nodes:4 ())
        ~batch:3 ()
    in
    (r.total_rpcs, r.retransmits)
  in
  check_bool "different seed perturbs the schedule" true (a <> c || fst a > 0)

(* The determinism test exercises the experiment harness, which picks its
   own transport from the config; it is not parameterized. *)
let suite_for tp =
  [
    Alcotest.test_case "spurious RTO keeps at-most-once" `Quick
      (test_spurious_rto_at_most_once tp);
    Alcotest.test_case "zero-length request" `Quick (test_zero_length_request tp);
    Alcotest.test_case "same-host session" `Quick (test_same_host_session tp);
  ]

let suite =
  suite_for Erpc.Config.Raw_eth
  @ [ Alcotest.test_case "determinism across runs" `Quick test_determinism_across_runs ]

let suite_rc = suite_for Erpc.Config.Rdma_rc
