(* Observability subsystem: event-trace ring, Chrome JSON export, the JSON
   builder/validator, the metrics registry, latency anatomy, and the
   determinism contract (same seed => byte-identical trace). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_ring_eviction () =
  let tr = Obs.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Trace.instant tr ~ts:i ~cat:"t" ~name:"e" ~pid:0 ~tid:0 []
  done;
  check_int "length capped" 4 (Obs.Trace.length tr);
  check_int "dropped counted" 2 (Obs.Trace.dropped tr);
  let ts = List.map (fun (e : Obs.Trace.ev) -> e.ts) (Obs.Trace.events tr) in
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5; 6 ] ts

let test_disabled_trace () =
  let tr = Obs.Trace.disabled in
  check_bool "disabled" false (Obs.Trace.enabled tr);
  Obs.Trace.instant tr ~ts:1 ~cat:"t" ~name:"e" ~pid:0 ~tid:0 [];
  Obs.Trace.register_process tr ~pid:0 "p";
  check_int "register_track is a no-op" 0 (Obs.Trace.register_track tr ~pid:0 "x");
  check_int "nothing recorded" 0 (Obs.Trace.length tr);
  check_int "nothing dropped" 0 (Obs.Trace.dropped tr)

let test_chrome_export_validates () =
  let tr = Obs.Trace.create ~capacity:64 () in
  Obs.Trace.register_process tr ~pid:0 "network";
  let tid = Obs.Trace.register_track tr ~pid:0 "port \"x\"\\y" in
  check_int "tids start at 1" 1 tid;
  Obs.Trace.instant tr ~ts:1_234 ~cat:"net" ~name:"enq" ~pid:0 ~tid
    [ ("id", Obs.Trace.I 7); ("why", Obs.Trace.S "quote\"back\\slash\ntab\t") ];
  Obs.Trace.complete tr ~ts:2_000 ~dur:500 ~cat:"rpc" ~name:"handler" ~pid:1 ~tid:0
    [ ("gbps", Obs.Trace.F 12.5) ];
  Obs.Trace.counter tr ~ts:3_000 ~cat:"net" ~name:"queue" ~pid:0
    [ ("bytes", Obs.Trace.I 4096) ];
  let s = Obs.Trace.to_chrome_string tr in
  check_bool "chrome trace is well-formed JSON" true (Obs.Json.validate s);
  check_bool "ns as fixed-point us" true
    (let sub = {|"ts":1.234|} in
     let rec find i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || find (i + 1))
     in
     find 0)

let test_json_builder_and_validator () =
  let j =
    Obs.Json.(
      Obj
        [
          ("s", Str "a\"b\\c\n\x01");
          ("n", Int (-42));
          ("f", Float 0.125);
          ("nan", Float nan);
          ("l", Arr [ Null; Bool true; Bool false; Obj [] ]);
        ])
  in
  let s = Obs.Json.to_string j in
  check_bool "builder output validates" true (Obs.Json.validate s);
  check_string "non-finite floats clamp to 0" "0" (Obs.Json.float_repr nan);
  List.iter
    (fun ok -> check_bool ("valid: " ^ ok) true (Obs.Json.validate ok))
    [ "null"; " [1,2,3] "; {|{"a":[{"b":-1.5e-3}]}|}; {|""|}; "[]" ];
  List.iter
    (fun bad -> check_bool ("invalid: " ^ bad) false (Obs.Json.validate bad))
    [
      "";
      "{";
      "[1,]";
      {|{"a":1,}|};
      {|{"a" 1}|};
      "tru";
      "01";
      "1 2";
      {|{"a":}|};
      "[1,2";
      {|"unterminated|};
      {|"bad \x escape"|};
    ]

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let n = ref 3 in
  Obs.Metrics.counter m ~name:"c" ~labels:[ ("k", "b") ] (fun () -> !n);
  Obs.Metrics.counter m ~name:"c" ~labels:[ ("k", "a") ] (fun () -> 10);
  Obs.Metrics.gauge m ~name:"g" ~labels:[ ("i", "0") ] (fun () -> 1.5);
  Obs.Metrics.gauge m ~name:"g" ~labels:[ ("i", "1") ] (fun () -> 9.0);
  let h = Stats.Hist.create () in
  Stats.Hist.record h 100;
  Obs.Metrics.histogram m ~name:"h" h;
  n := 5;
  (* Pull-based: the snapshot sees the counter's current value, sorted by
     (name, labels). *)
  let names =
    List.map
      (fun (s : Obs.Metrics.sample) ->
        (s.s_name, List.map snd s.s_labels))
      (Obs.Metrics.snapshot m)
  in
  Alcotest.(check (list (pair string (list string))))
    "sorted snapshot"
    [ ("c", [ "a" ]); ("c", [ "b" ]); ("g", [ "0" ]); ("g", [ "1" ]); ("h", []) ]
    names;
  (match Obs.Metrics.find m ~name:"c" ~labels:[ ("k", "b") ] with
  | Some { s_value = Obs.Metrics.Sample_counter v; _ } -> check_int "live value" 5 v
  | _ -> Alcotest.fail "counter not found");
  check_int "fold_counters sums" 15
    (Obs.Metrics.fold_counters m ~name:"c" (fun acc _ v -> acc + v) 0);
  Alcotest.(check (float 1e-9)) "max_gauge" 9.0 (Obs.Metrics.max_gauge m ~name:"g");
  (* Re-registering the same (name, labels) replaces the source. *)
  Obs.Metrics.counter m ~name:"c" ~labels:[ ("k", "a") ] (fun () -> 11);
  check_int "replace on re-register" 16
    (Obs.Metrics.fold_counters m ~name:"c" (fun acc _ v -> acc + v) 0);
  check_bool "metrics JSON validates" true
    (Obs.Json.validate (Obs.Json.to_string (Obs.Metrics.to_json m)))

let test_anatomy_sums_exactly () =
  let r = Experiments.Exp_anatomy.run ~samples:16 () in
  check_bool "sampled RPCs analyzed" true (List.length r.breakdowns >= 8);
  List.iter
    (fun (b : Obs.Anatomy.breakdown) ->
      check_int
        (Printf.sprintf "req %d: components sum to end-to-end" b.req)
        b.total_ns
        (Obs.Anatomy.sum_components b);
      (* 32 B request and response both ride 92 B wire packets; on a quiet
         single-switch net the fabric time is exactly the model's
         prediction, so the switch-queue residual is zero. *)
      check_int
        (Printf.sprintf "req %d: wire matches cost-model prediction" b.req)
        (2 * r.predicted_wire_ns 92)
        b.wire_ns;
      check_int (Printf.sprintf "req %d: no switch queueing" b.req) 0 b.switch_ns;
      check_int (Printf.sprintf "req %d: no pacing" b.req) 0 b.pacing_ns;
      check_bool "total positive" true (b.total_ns > 0))
    r.breakdowns

let test_anatomy_typed_nonzero_codec_terms () =
  (* A typed echo must surface all four codec components, they must be
     carved out of (not added on top of) the enclosing software intervals,
     and the breakdown must still sum exactly to end-to-end. *)
  let r = Experiments.Exp_anatomy.run ~samples:16 ~typed:true () in
  check_bool "sampled RPCs analyzed" true (List.length r.breakdowns >= 8);
  List.iter
    (fun (b : Obs.Anatomy.breakdown) ->
      check_int
        (Printf.sprintf "req %d: typed components sum to end-to-end" b.req)
        b.total_ns
        (Obs.Anatomy.sum_components b);
      check_bool "req serialize charged" true (b.req_ser_ns > 0);
      check_bool "req deserialize charged" true (b.req_deser_ns > 0);
      check_bool "resp serialize charged" true (b.resp_ser_ns > 0);
      check_bool "resp deserialize charged" true (b.resp_deser_ns > 0);
      check_bool "client tx residual nonneg" true (b.client_tx_ns >= 0);
      check_bool "server residual nonneg" true (b.server_ns >= 0);
      check_bool "client rx residual nonneg" true (b.client_rx_ns >= 0))
    r.breakdowns;
  (* Untyped runs keep all codec terms at zero. *)
  let u = Experiments.Exp_anatomy.run ~samples:8 () in
  List.iter
    (fun (b : Obs.Anatomy.breakdown) ->
      check_int "untyped: no ser" 0 b.req_ser_ns;
      check_int "untyped: no deser" 0 (b.req_deser_ns + b.resp_ser_ns + b.resp_deser_ns))
    u.breakdowns

let test_anatomy_sums_under_open_loop_load () =
  (* The exact-sum invariant must survive pacing and queueing: drive the
     bursty mixed-size scenario open-loop (synchronized on-off bursts +
     64 kB transfers guarantee switch queueing) and re-check every
     client-host breakdown. *)
  let scenario = Workload.Traffic_spec.bursty_mixed ~scale:0.25 ~horizon_ms:10.0 () in
  let r = Experiments.Exp_cluster_load.run ~seed:5L scenario in
  check_bool
    (Printf.sprintf "enough RPCs analyzed (%d)" r.analyzed_rpcs)
    true (r.analyzed_rpcs >= 50);
  List.iter
    (fun (b : Obs.Anatomy.breakdown) ->
      check_int
        (Printf.sprintf "req %d: components sum to end-to-end under load" b.req)
        b.total_ns
        (Obs.Anatomy.sum_components b);
      check_bool "total positive" true (b.total_ns > 0))
    r.breakdowns;
  (* Open-loop bursts actually produce queueing, unlike the quiet
     closed-loop anatomy run where switch_ns is exactly zero. *)
  check_bool "switch queueing observed" true
    (List.exists (fun (b : Obs.Anatomy.breakdown) -> b.switch_ns > 0) r.breakdowns)

let test_anatomy_attribution () =
  let scenario = Workload.Traffic_spec.bursty_mixed ~scale:0.25 ~horizon_ms:10.0 () in
  let r = Experiments.Exp_cluster_load.run ~seed:5L scenario in
  match r.attribution with
  | None -> Alcotest.fail "no attribution from a loaded run"
  | Some a ->
      check_int "samples = analyzed RPCs" r.analyzed_rpcs a.samples;
      check_bool "percentiles ordered" true
        (a.p50_total_ns <= a.p99_total_ns && a.p99_total_ns <= a.p999_total_ns);
      List.iter
        (fun (label, v) -> check_bool (label ^ " p50 nonneg") true (v >= 0))
        a.p50_ns;
      List.iter
        (fun (label, v) -> check_bool (label ^ " p99 nonneg") true (v >= 0))
        a.p99_ns;
      check_bool "p50 dominant is a component" true
        (List.mem_assoc a.p50_dominant a.p50_ns);
      check_bool "p99 dominant is a component" true
        (List.mem_assoc a.p99_dominant a.p99_ns);
      (* The dominant component holds the band's largest mean. *)
      let is_max parts dom =
        List.for_all (fun (_, v) -> v <= List.assoc dom parts) parts
      in
      check_bool "p50 dominant maximal" true (is_max a.p50_ns a.p50_dominant);
      check_bool "p99 dominant maximal" true (is_max a.p99_ns a.p99_dominant);
      check_bool "attribution JSON validates" true
        (Obs.Json.validate (Obs.Json.to_string (Obs.Anatomy.attribution_to_json a)))

let test_trace_digest () =
  let mk () =
    let tr = Obs.Trace.create ~capacity:8 () in
    Obs.Trace.instant tr ~ts:1 ~cat:"a" ~name:"x" ~pid:0 ~tid:0
      [ ("i", Obs.Trace.I 7); ("f", Obs.Trace.F 1.5); ("s", Obs.Trace.S "v") ];
    Obs.Trace.complete tr ~ts:2 ~dur:3 ~cat:"b" ~name:"y" ~pid:1 ~tid:2 [];
    tr
  in
  let d1 = Obs.Trace.digest (mk ()) and d2 = Obs.Trace.digest (mk ()) in
  check_string "digest deterministic" d1 d2;
  check_int "16 hex chars" 16 (String.length d1);
  String.iter
    (fun c ->
      check_bool "hex" true ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    d1;
  (* Any perturbation — payload, timestamp, or eviction count — changes it. *)
  let tr = mk () in
  Obs.Trace.instant tr ~ts:9 ~cat:"a" ~name:"x" ~pid:0 ~tid:0 [];
  check_bool "extra event changes digest" true (Obs.Trace.digest tr <> d1);
  let full = Obs.Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Obs.Trace.instant full ~ts:i ~cat:"a" ~name:"x" ~pid:0 ~tid:0 []
  done;
  let shifted = Obs.Trace.create ~capacity:2 () in
  for i = 2 to 5 do
    Obs.Trace.instant shifted ~ts:i ~cat:"a" ~name:"x" ~pid:0 ~tid:0 []
  done;
  (* Same retained events (ts 4,5) but different drop counts must differ. *)
  check_bool "dropped count folded in" true
    (Obs.Trace.digest full <> Obs.Trace.digest shifted)

let test_same_seed_traces_identical () =
  let run () =
    let r = Experiments.Exp_anatomy.run ~samples:8 () in
    Obs.Trace.to_chrome_string r.trace
  in
  check_string "same-seed anatomy traces byte-identical" (run ()) (run ())

let test_same_seed_incast_traces_identical () =
  let run () =
    let tr = Obs.Trace.create ~capacity:(1 lsl 18) () in
    let (_ : Experiments.Exp_incast.row) =
      Experiments.Exp_incast.run ~trace:tr ~degree:3 ~warmup_ms:0.5 ~measure_ms:0.5
        ~cc:true ()
    in
    Obs.Trace.to_chrome_string tr
  in
  let a = run () and b = run () in
  check_bool "trace non-trivial" true (String.length a > 10_000);
  check_string "same-seed incast traces byte-identical" a b

let test_trace_covers_categories () =
  let tr = Obs.Trace.create ~capacity:(1 lsl 18) () in
  (* Degree 4 over >= 2 ms: enough congestion for Timely to take RTT
     samples, so the "cc" category shows up. *)
  let r =
    Experiments.Exp_incast.run ~trace:tr ~degree:4 ~warmup_ms:1.0 ~measure_ms:1.0 ~cc:true
      ()
  in
  check_bool "buffer peak observed" true (r.switch_buffer_peak_bytes > 0);
  let seen = Hashtbl.create 8 in
  Obs.Trace.iter tr (fun e -> Hashtbl.replace seen e.cat ());
  List.iter
    (fun cat -> check_bool ("category " ^ cat) true (Hashtbl.mem seen cat))
    [ "pkt"; "sslot"; "cc"; "net"; "nic"; "rpc" ]

let suite =
  [
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "disabled trace" `Quick test_disabled_trace;
    Alcotest.test_case "chrome export validates" `Quick test_chrome_export_validates;
    Alcotest.test_case "json builder+validator" `Quick test_json_builder_and_validator;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "anatomy sums exactly" `Quick test_anatomy_sums_exactly;
    Alcotest.test_case "anatomy: typed codec terms" `Quick
      test_anatomy_typed_nonzero_codec_terms;
    Alcotest.test_case "anatomy sums under open-loop load" `Quick
      test_anatomy_sums_under_open_loop_load;
    Alcotest.test_case "anatomy tail attribution" `Quick test_anatomy_attribution;
    Alcotest.test_case "trace digest" `Quick test_trace_digest;
    Alcotest.test_case "same-seed trace identical" `Quick test_same_seed_traces_identical;
    Alcotest.test_case "same-seed incast identical" `Quick
      test_same_seed_incast_traces_identical;
    Alcotest.test_case "trace covers categories" `Quick test_trace_covers_categories;
  ]
