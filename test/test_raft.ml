(* Tests for the Raft core: elections, replication, commitment, log
   repair, safety under partitions — driven over an in-memory message bus
   with controllable delivery, plus Log unit tests and codec roundtrips. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {2 In-memory cluster harness} *)

type cluster = {
  mutable nodes : string Raft.Core.t array;
  inbox : (int * string Raft.Core.msg) Queue.t;
  mutable applied : (int * string) list array;  (* newest first *)
  mutable cut : (int * int) list;  (* (src, dst) pairs whose messages drop *)
}

let make_cluster ?(n = 3) () =
  let rng = Sim.Rng.create 123L in
  let cluster = { nodes = [||]; inbox = Queue.create (); applied = Array.make n []; cut = [] } in
  cluster.nodes <-
    Array.init n (fun id ->
        let peers = Array.of_list (List.filter (fun p -> p <> id) (List.init n Fun.id)) in
        Raft.Core.create ~id ~peers Raft.Core.default_config
          ~send:(fun dst msg ->
            if not (List.mem (id, dst) cluster.cut) then Queue.add (dst, msg) cluster.inbox)
          ~apply:(fun index cmd ->
            cluster.applied.(id) <- (index, cmd) :: cluster.applied.(id))
          ~random:(fun bound -> Sim.Rng.int rng bound));
  cluster

(* Deliver queued messages until quiescent (sends may trigger sends). *)
let deliver c =
  let budget = ref 100_000 in
  while (not (Queue.is_empty c.inbox)) && !budget > 0 do
    decr budget;
    let dst, msg = Queue.take c.inbox in
    Raft.Core.receive c.nodes.(dst) msg
  done;
  Alcotest.(check bool) "message storm bounded" true (!budget > 0)

(* Expire node [id]'s election timeout. *)
let force_election c id =
  Raft.Core.periodic c.nodes.(id)
    ~elapsed_ns:(Raft.Core.default_config.election_timeout_max_ns + 1)

let elect c id =
  force_election c id;
  deliver c;
  Alcotest.(check bool)
    (Printf.sprintf "node %d led" id)
    true
    (Raft.Core.role c.nodes.(id) = Raft.Core.Leader)

let heartbeat c id =
  Raft.Core.periodic c.nodes.(id) ~elapsed_ns:(Raft.Core.default_config.heartbeat_ns + 1);
  deliver c

let leaders c =
  Array.to_list c.nodes |> List.filter (fun n -> Raft.Core.role n = Raft.Core.Leader)

(* {2 Elections} *)

let test_single_node_self_elects () =
  let c = make_cluster ~n:1 () in
  force_election c 0;
  check_bool "leader" true (Raft.Core.role c.nodes.(0) = Raft.Core.Leader)

let test_three_node_election () =
  let c = make_cluster () in
  elect c 0;
  check_int "term 1" 1 (Raft.Core.term c.nodes.(0));
  check_bool "others follow" true
    (Raft.Core.role c.nodes.(1) = Raft.Core.Follower
    && Raft.Core.role c.nodes.(2) = Raft.Core.Follower);
  check_bool "leader known" true (Raft.Core.leader_hint c.nodes.(1) = Some 0)

let test_at_most_one_leader_per_term () =
  let c = make_cluster () in
  (* Two simultaneous candidates: delivery happens only after both have
     started their elections. *)
  force_election c 0;
  force_election c 1;
  deliver c;
  check_bool "at most one leader" true (List.length (leaders c) <= 1)

let test_stale_candidate_rejected () =
  let c = make_cluster () in
  elect c 0;
  ignore (Raft.Core.submit c.nodes.(0) "x");
  deliver c;
  (* Node 2's log is as long; node 1 tries an election with an equal log:
     fine. But a candidate with a shorter log must lose: truncate is not
     exposed, so instead verify that after replication all logs match and
     re-election by an up-to-date node succeeds. *)
  force_election c 1;
  deliver c;
  check_bool "up-to-date candidate can win" true
    (Raft.Core.role c.nodes.(1) = Raft.Core.Leader);
  check_bool "old leader stepped down" true (Raft.Core.role c.nodes.(0) = Raft.Core.Follower)

(* {2 Replication and commitment} *)

let test_replicate_and_commit () =
  let c = make_cluster () in
  elect c 0;
  (match Raft.Core.submit c.nodes.(0) "cmd-1" with
  | Ok index -> check_int "first index" 1 index
  | Error _ -> Alcotest.fail "leader rejected submit");
  deliver c;
  check_int "leader committed" 1 (Raft.Core.commit_index c.nodes.(0));
  Alcotest.(check (list (pair int string))) "leader applied" [ (1, "cmd-1") ] c.applied.(0);
  (* Followers learn the commit index with the next AppendEntries. *)
  heartbeat c 0;
  Alcotest.(check (list (pair int string))) "follower applied" [ (1, "cmd-1") ] c.applied.(1)

let test_follower_rejects_submit () =
  let c = make_cluster () in
  elect c 0;
  match Raft.Core.submit c.nodes.(1) "nope" with
  | Ok _ -> Alcotest.fail "follower accepted a command"
  | Error (`Not_leader hint) -> check_bool "points at leader" true (hint = Some 0)

let test_pipeline_many_commands () =
  let c = make_cluster () in
  elect c 0;
  for i = 1 to 200 do
    ignore (Raft.Core.submit c.nodes.(0) (Printf.sprintf "c%d" i));
    if i mod 7 = 0 then deliver c
  done;
  deliver c;
  heartbeat c 0;
  check_int "all committed" 200 (Raft.Core.commit_index c.nodes.(0));
  Array.iteri
    (fun id applied ->
      check_int (Printf.sprintf "node %d applied all" id) 200 (List.length applied);
      (* Exactly-once, in order. *)
      List.iteri
        (fun i (index, cmd) ->
          check_int "index order" (200 - i) index;
          check_bool "right command" true (cmd = Printf.sprintf "c%d" (200 - i)))
        applied)
    c.applied

let test_commit_with_one_follower_down () =
  let c = make_cluster () in
  elect c 0;
  c.cut <- [ (0, 2); (2, 0) ];
  ignore (Raft.Core.submit c.nodes.(0) "majority-only");
  deliver c;
  check_int "committed with 2/3" 1 (Raft.Core.commit_index c.nodes.(0));
  check_int "node 2 has nothing" 0 (Raft.Core.commit_index c.nodes.(2));
  (* Heal the partition: the next heartbeat repairs node 2. *)
  c.cut <- [];
  heartbeat c 0;
  heartbeat c 0;
  check_int "node 2 caught up" 1 (Raft.Core.commit_index c.nodes.(2))

let test_no_commit_without_majority () =
  let c = make_cluster () in
  elect c 0;
  c.cut <- [ (0, 1); (0, 2); (1, 0); (2, 0) ];
  ignore (Raft.Core.submit c.nodes.(0) "isolated");
  deliver c;
  check_int "not committed" 0 (Raft.Core.commit_index c.nodes.(0))

(* {2 Log repair} *)

let test_conflicting_entries_truncated () =
  let c = make_cluster () in
  elect c 0;
  (* Leader 0 appends locally but is cut off from everyone. *)
  c.cut <- [ (0, 1); (0, 2); (1, 0); (2, 0) ];
  ignore (Raft.Core.submit c.nodes.(0) "orphan-1");
  ignore (Raft.Core.submit c.nodes.(0) "orphan-2");
  deliver c;
  (* New leader elected among 1,2; commits different entries. *)
  force_election c 1;
  deliver c;
  check_bool "node 1 leads" true (Raft.Core.role c.nodes.(1) = Raft.Core.Leader);
  ignore (Raft.Core.submit c.nodes.(1) "real-1");
  deliver c;
  (* Heal: node 0 must discard its orphans and adopt the new log. *)
  c.cut <- [];
  heartbeat c 1;
  heartbeat c 1;
  let log0 = Raft.Core.log c.nodes.(0) in
  check_int "node 0 log repaired" 1 (Raft.Log.last_index log0);
  check_bool "orphans replaced" true ((Raft.Log.get log0 1).cmd = "real-1");
  (* Orphaned commands were never applied anywhere. *)
  Array.iter
    (fun applied ->
      check_bool "no orphan applied" true
        (not (List.exists (fun (_, cmd) -> cmd = "orphan-1" || cmd = "orphan-2") applied)))
    c.applied

let test_term_monotonic_across_elections () =
  let c = make_cluster () in
  elect c 0;
  let t1 = Raft.Core.term c.nodes.(0) in
  force_election c 1;
  deliver c;
  let t2 = Raft.Core.term c.nodes.(1) in
  check_bool "terms increase" true (t2 > t1);
  Array.iter (fun n -> check_int "all agree on term" t2 (Raft.Core.term n)) c.nodes

(* {2 Log module} *)

let test_log_basics () =
  let l = Raft.Log.create () in
  check_int "empty last index" 0 (Raft.Log.last_index l);
  check_int "term at 0" 0 (Raft.Log.term_at l 0);
  check_int "append 1" 1 (Raft.Log.append l { term = 1; cmd = "a" });
  check_int "append 2" 2 (Raft.Log.append l { term = 1; cmd = "b" });
  check_int "last term" 1 (Raft.Log.last_term l);
  check_bool "get" true ((Raft.Log.get l 2).cmd = "b");
  Alcotest.check_raises "get out of range" (Invalid_argument "Log.get: index 3 out of range (len 2)")
    (fun () -> ignore (Raft.Log.get l 3))

let test_log_truncate () =
  let l = Raft.Log.create () in
  for i = 1 to 5 do
    ignore (Raft.Log.append l { term = i; cmd = string_of_int i })
  done;
  Raft.Log.truncate_from l 3;
  check_int "truncated" 2 (Raft.Log.last_index l);
  check_int "tail term" 2 (Raft.Log.last_term l);
  (* Truncate beyond the end is a no-op. *)
  Raft.Log.truncate_from l 10;
  check_int "no-op" 2 (Raft.Log.last_index l)

let test_log_entries_from () =
  let l = Raft.Log.create () in
  for i = 1 to 10 do
    ignore (Raft.Log.append l { term = 1; cmd = string_of_int i })
  done;
  let es = Raft.Log.entries_from l ~from:4 ~max:3 in
  Alcotest.(check (list string)) "window" [ "4"; "5"; "6" ]
    (List.map (fun (e : string Raft.Log.entry) -> e.cmd) es);
  check_int "tail clamp" 2 (List.length (Raft.Log.entries_from l ~from:9 ~max:5))

(* {2 Codec} *)

let msg_gen : string Raft.Core.msg QCheck2.Gen.t =
  let open QCheck2.Gen in
  let nat31 = int_range 0 0x3FFFFFFF in
  oneof
    [
      (let* term = nat31 and* candidate_id = nat31 and* lli = nat31 and* llt = nat31 in
       return
         (Raft.Core.Request_vote
            { term; candidate_id; last_log_index = lli; last_log_term = llt }));
      (let* term = nat31 and* vote_granted = bool and* from = nat31 in
       return (Raft.Core.Request_vote_resp { term; vote_granted; from }));
      (let* term = nat31
       and* leader_id = nat31
       and* prev_log_index = nat31
       and* prev_log_term = nat31
       and* leader_commit = nat31
       and* entries =
         list_size (int_range 0 5)
           (let* t = nat31 and* cmd = small_string ~gen:printable in
            return { Raft.Log.term = t; cmd })
       in
       return
         (Raft.Core.Append_entries
            { term; leader_id; prev_log_index; prev_log_term; entries; leader_commit }));
      (let* term = nat31 and* success = bool and* from = nat31 and* match_index = nat31 in
       return (Raft.Core.Append_entries_resp { term; success; from; match_index }));
    ]

let codec_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"codec roundtrip" ~count:500 msg_gen (fun msg ->
         Raft.Wire.decode (Raft.Wire.encode msg) = msg))

let decodes_to_error name b =
  match Raft.Wire.decode b with
  | _ -> Alcotest.failf "%s: expected Codec.Decode_error" name
  | exception Codec.Decode_error _ -> ()

let test_codec_rejects_garbage () =
  decodes_to_error "empty" Bytes.empty;
  decodes_to_error "unknown tag" (Bytes.make 8 '\255');
  decodes_to_error "truncated" (Bytes.make 3 '\000')

let suite =
  [
    Alcotest.test_case "single node self-elects" `Quick test_single_node_self_elects;
    Alcotest.test_case "three-node election" `Quick test_three_node_election;
    Alcotest.test_case "at most one leader per term" `Quick test_at_most_one_leader_per_term;
    Alcotest.test_case "re-election by up-to-date node" `Quick test_stale_candidate_rejected;
    Alcotest.test_case "replicate and commit" `Quick test_replicate_and_commit;
    Alcotest.test_case "follower rejects submit" `Quick test_follower_rejects_submit;
    Alcotest.test_case "pipeline 200 commands" `Quick test_pipeline_many_commands;
    Alcotest.test_case "commit with follower down" `Quick test_commit_with_one_follower_down;
    Alcotest.test_case "no commit without majority" `Quick test_no_commit_without_majority;
    Alcotest.test_case "conflicting entries truncated" `Quick test_conflicting_entries_truncated;
    Alcotest.test_case "terms monotonic" `Quick test_term_monotonic_across_elections;
    Alcotest.test_case "log basics" `Quick test_log_basics;
    Alcotest.test_case "log truncate" `Quick test_log_truncate;
    Alcotest.test_case "log entries_from" `Quick test_log_entries_from;
    codec_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
  ]
