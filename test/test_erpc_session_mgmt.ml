(* Session-management plane: connect/disconnect lifecycle and the credit
   budget it frees (paper §4.3.1, Appendix B). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo = Test_erpc_basic.(echo_req_type)

let make_pair () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let fabric = Erpc.Fabric.create cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  Erpc.Nexus.register_handler nx1 ~req_type:echo ~mode:Erpc.Nexus.Dispatch (fun h ->
      Erpc.Req_handle.enqueue_response h (Erpc.Req_handle.init_response h ~size:4));
  (fabric, Erpc.Rpc.create nx0 ~rpc_id:0, Erpc.Rpc.create nx1 ~rpc_id:0)

let run fabric ms =
  let engine = Erpc.Fabric.engine fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let test_disconnect_lifecycle () =
  let fabric, client, server = make_pair () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  check_int "client has one session" 1 (Erpc.Rpc.num_sessions client);
  check_int "server has one session" 1 (Erpc.Rpc.num_sessions server);
  Erpc.Rpc.destroy_session client sess;
  run fabric 1.0;
  check_bool "destroyed" true (sess.Erpc.Session.state = Erpc.Session.Destroyed);
  check_int "client freed" 0 (Erpc.Rpc.num_sessions client);
  check_int "server freed" 0 (Erpc.Rpc.num_sessions server)

let test_disconnect_with_pending_raises () =
  let fabric, client, _server = make_pair () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  let req = Erpc.Msgbuf.alloc ~max_size:4 in
  let resp = Erpc.Msgbuf.alloc ~max_size:4 in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun _ -> ());
  Alcotest.check_raises "pending request blocks disconnect"
    (Invalid_argument "Rpc.destroy_session: session has pending requests") (fun () ->
      Erpc.Rpc.destroy_session client sess);
  run fabric 2.0;
  (* After completion, teardown succeeds. *)
  Erpc.Rpc.destroy_session client sess;
  run fabric 1.0;
  check_bool "destroyed after drain" true (sess.Erpc.Session.state = Erpc.Session.Destroyed)

let test_disconnect_frees_budget () =
  (* Session limit reached; destroying one frees room for a new one. *)
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let cfg = Erpc.Config.of_cluster ~credits:8 cluster in
  let cluster = { cluster with nic_config = { cluster.nic_config with rq_size = 16 } } in
  let fabric = Erpc.Fabric.create ~config:cfg cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let nx1 = Erpc.Nexus.create fabric ~host:1 () in
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _server = Erpc.Rpc.create nx1 ~rpc_id:0 in
  let s1 = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let _s2 = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  (let engine = Erpc.Fabric.engine fabric in
   Sim.Engine.run_until engine (Sim.Time.ms 1.0));
  check_bool "third rejected" true
    (try
       ignore (Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 ());
       false
     with Invalid_argument _ -> true);
  Erpc.Rpc.destroy_session client s1;
  (let engine = Erpc.Fabric.engine fabric in
   Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 1.0)));
  let s3 = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  (let engine = Erpc.Fabric.engine fabric in
   Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 1.0)));
  check_bool "slot reused" true (s3.Erpc.Session.state = Erpc.Session.Connected)

let test_destroy_during_handshake_raises () =
  let fabric, client, _server = make_pair () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  (* No engine run yet: the Connect_resp has not arrived, so the server-side
     session number is unknown and teardown cannot name the peer state. *)
  check_bool "still connecting" true (sess.Erpc.Session.state = Erpc.Session.Connect_pending);
  Alcotest.check_raises "destroy during handshake"
    (Invalid_argument "Rpc.destroy_session: handshake still in flight") (fun () ->
      Erpc.Rpc.destroy_session client sess);
  (* Once the handshake completes, the same call succeeds. *)
  run fabric 1.0;
  Erpc.Rpc.destroy_session client sess;
  run fabric 1.0;
  check_bool "destroyed after handshake" true
    (sess.Erpc.Session.state = Erpc.Session.Destroyed)

let test_budget_raise_message () =
  (* §4.3.1: sessions x credits must fit in the RQ. With credits=8 and
     rq_size=16 the third session breaks the bound; the diagnostic names
     the exact arithmetic. *)
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let cfg = Erpc.Config.of_cluster ~credits:8 cluster in
  let cluster = { cluster with nic_config = { cluster.nic_config with rq_size = 16 } } in
  let fabric = Erpc.Fabric.create ~config:cfg cluster in
  let nx0 = Erpc.Nexus.create fabric ~host:0 () in
  let _nx1 = Erpc.Nexus.create fabric ~host:1 () in
  let client = Erpc.Rpc.create nx0 ~rpc_id:0 in
  let _s1 = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  let _s2 = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  Alcotest.check_raises "budget diagnostic"
    (Invalid_argument
       "Rpc.create_session: session limit reached (3 sessions x 8 credits vs RQ size 16)")
    (fun () -> ignore (Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 ()))

let test_server_rejects_over_budget_connect () =
  (* The same budget check runs on the server when accepting a Connect_req;
     a full server answers Connect_resp Error and the client's session
     lands in the Error state with its on_connect told why. *)
  let cluster = Transport.Cluster.cx5 ~nodes:3 () in
  let cfg = Erpc.Config.of_cluster ~credits:8 cluster in
  let cluster = { cluster with nic_config = { cluster.nic_config with rq_size = 16 } } in
  let fabric = Erpc.Fabric.create ~config:cfg cluster in
  let nx = Array.init 3 (fun host -> Erpc.Nexus.create fabric ~host ()) in
  let rpc = Array.map (fun n -> Erpc.Rpc.create n ~rpc_id:0) nx in
  (* Fill host 1's budget with sessions to host 2. *)
  let _ = Erpc.Rpc.create_session rpc.(1) ~remote_host:2 ~remote_rpc_id:0 () in
  let _ = Erpc.Rpc.create_session rpc.(1) ~remote_host:2 ~remote_rpc_id:0 () in
  run fabric 1.0;
  let result = ref None in
  let sess =
    Erpc.Rpc.create_session rpc.(0) ~remote_host:1 ~remote_rpc_id:0
      ~on_connect:(fun r -> result := Some r)
      ()
  in
  run fabric 1.0;
  check_bool "on_connect got the rejection" true
    (match !result with Some (Error (Erpc.Err.Session_error _)) -> true | _ -> false);
  check_bool "session in error state" true
    (match sess.Erpc.Session.state with Erpc.Session.Error _ -> true | _ -> false);
  check_int "server kept its two sessions" 2 (Erpc.Rpc.num_sessions rpc.(1))

let test_reuse_after_disconnect_errors () =
  let fabric, client, _server = make_pair () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  Erpc.Rpc.destroy_session client sess;
  run fabric 1.0;
  let req = Erpc.Msgbuf.alloc ~max_size:4 in
  let resp = Erpc.Msgbuf.alloc ~max_size:4 in
  let result = ref None in
  Erpc.Rpc.enqueue_request client sess ~req_type:echo ~req ~resp ~cont:(fun r ->
      result := Some r);
  run fabric 1.0;
  check_bool "request on destroyed session errors" true
    (match !result with Some (Error (Erpc.Err.Session_error _)) -> true | _ -> false)

let test_double_destroy_raises () =
  let fabric, client, _server = make_pair () in
  let sess = Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0 () in
  run fabric 1.0;
  Erpc.Rpc.destroy_session client sess;
  run fabric 1.0;
  Alcotest.check_raises "double destroy"
    (Invalid_argument "Rpc.destroy_session: already destroyed") (fun () ->
      Erpc.Rpc.destroy_session client sess)

let suite =
  [
    Alcotest.test_case "disconnect lifecycle" `Quick test_disconnect_lifecycle;
    Alcotest.test_case "pending blocks disconnect" `Quick test_disconnect_with_pending_raises;
    Alcotest.test_case "disconnect frees budget" `Quick test_disconnect_frees_budget;
    Alcotest.test_case "destroy during handshake raises" `Quick
      test_destroy_during_handshake_raises;
    Alcotest.test_case "budget raise names the arithmetic" `Quick test_budget_raise_message;
    Alcotest.test_case "server rejects over-budget connect" `Quick
      test_server_rejects_over_budget_connect;
    Alcotest.test_case "destroyed session rejects requests" `Quick
      test_reuse_after_disconnect_errors;
    Alcotest.test_case "double destroy raises" `Quick test_double_destroy_raises;
  ]
