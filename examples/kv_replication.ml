(* Replicated key-value store: sharded Raft groups over eRPC (§7.1).

   Builds the failover KV service on a CX5-like cluster: three replica
   hosts carry two 3-way replicated Raft groups, with eRPC as the only
   transport (the Raft module itself is used unmodified — exactly the
   paper's LibRaft port). A smart client routes each PUT to the right
   shard's leader, following redirects and retrying under a deadline;
   mid-run the example crashes the leader of shard 0 to show failover.

   Run with: dune exec examples/kv_replication.exe *)

let () =
  let cluster = Transport.Cluster.cx5 ~nodes:4 () in
  let d = Experiments.Harness.deploy cluster ~threads_per_host:1 in
  let map = Service.Shard_map.create ~shards:2 ~replication:3 ~replica_hosts:[| 0; 1; 2 |] in
  let replicas =
    Array.map
      (fun host ->
        Service.Replica.create ~fabric:d.fabric ~nexus:d.nexuses.(host)
          ~rpc:d.rpcs.(host).(0) ~map ~host ())
      [| 0; 1; 2 |]
  in

  (* Wait until every shard has elected. *)
  let all_elected () =
    List.for_all
      (fun shard ->
        Array.exists (fun r -> Service.Replica.is_leader r ~shard) replicas)
      [ 0; 1 ]
  in
  let rec wait_leaders tries =
    if all_elected () then ()
    else if tries = 0 then failwith "no leader elected"
    else begin
      Experiments.Harness.run_ms d 5.0;
      wait_leaders (tries - 1)
    end
  in
  wait_leaders 100;
  List.iter
    (fun shard ->
      Array.iter
        (fun r ->
          if Service.Replica.is_leader r ~shard then
            Printf.printf "shard %d led by host %d (term %d)\n" shard
              (Service.Replica.host r)
              (Raft.Core.term (Service.Replica.raft r ~shard)))
        replicas)
    [ 0; 1 ];

  (* Smart client on host 3 issues replicated PUTs across both shards. *)
  let client =
    Service.Kv_client.create ~fabric:d.fabric ~rpc:d.rpcs.(3).(0) ~map ~client_id:1 ()
  in
  let engine = Erpc.Fabric.engine d.fabric in
  let n_puts = 1_000 in
  let acked = ref 0 and failed = ref 0 in
  let crash_at = n_puts / 2 in
  let leader0 () =
    Array.find_opt (fun r -> Service.Replica.is_leader r ~shard:0) replicas
  in
  let rec put_loop i =
    if i < n_puts then begin
      (* Halfway through, kill shard 0's leader mid-stream: the client
         rides out the election with retries and redirects. *)
      if i = crash_at then begin
        match leader0 () with
        | Some r ->
            Printf.printf "crashing shard-0 leader (host %d) at PUT %d...\n"
              (Service.Replica.host r) i;
            Erpc.Fabric.crash_host d.fabric (Service.Replica.host r)
              ~down_ns:30_000_000
        | None -> ()
      end;
      let key = Workload.Keygen.encode i in
      let value = Printf.sprintf "%-64d" i in
      ignore
        (Service.Kv_client.put client ~key ~value ~deadline_ns:50_000_000
           ~cont:(fun r ->
             (match r with Ok () -> incr acked | Error _ -> incr failed);
             put_loop (i + 1)))
    end
  in
  put_loop 0;
  Experiments.Harness.run_ms d 400.0;

  let hist = Service.Kv_client.latencies client in
  Printf.printf "replicated %d PUTs (%d failed): p50=%.1f us p99=%.1f us (paper: 5.5 / 6.3 us)\n"
    !acked !failed
    (float_of_int (Stats.Hist.median hist) /. 1e3)
    (float_of_int (Stats.Hist.percentile hist 99.) /. 1e3);
  Printf.printf "client retries=%d redirects=%d\n"
    (Service.Kv_client.retries client)
    (Service.Kv_client.redirects client);

  (* All replicas applied the same data per shard. *)
  Experiments.Harness.run_ms d 50.0;
  List.iter
    (fun shard ->
      let sizes =
        Array.to_list replicas
        |> List.map (fun r -> Mica.Store.size (Service.Replica.store r ~shard))
      in
      Printf.printf "shard %d stores: %s\n" shard
        (String.concat " " (List.map string_of_int sizes)))
    [ 0; 1 ];
  Array.iter Service.Replica.stop replicas;
  ignore (Sim.Engine.run engine)
