(* Regenerates every table and figure of the paper's evaluation (§6-§7).

   Each section prints the paper-reported numbers next to the values
   measured on this reproduction's simulated substrate. Absolute numbers
   need not coincide (the substrate is a calibrated simulator, not the
   authors' testbed); the shape — who wins, by what factor, where behaviour
   changes — is the reproduction target.

   `main.exe micro` additionally runs Bechamel microbenchmarks over the hot
   datapath kernels (event queue, timing wheel, Timely, histogram, MICA,
   Masstree, Raft codec), one Test.make per kernel. `main.exe all` runs
   everything. *)

let section title = Printf.printf "\n==== %s ====\n%!" title

let fig1 () =
  section "Figure 1: RDMA read rate vs connections per NIC";
  Printf.printf "%-12s %-14s %-12s %s\n" "connections" "rate (M/s)" "miss ratio"
    "(paper: flat to a few hundred, then ~50% loss by 5000)";
  List.iter
    (fun conns ->
      let r = Rdma.Read_rate.run ~connections:conns () in
      Printf.printf "%-12d %-14.1f %-12.2f\n%!" conns r.rate_mops r.miss_ratio)
    [ 1; 50; 100; 200; 450; 1000; 2000; 3000; 4000; 5000 ]

let table2 () =
  section "Table 2: median latency of 32 B RPCs vs RDMA reads (same ToR)";
  Printf.printf "%-8s %-18s %-18s %s\n" "Cluster" "RDMA read (us)" "eRPC (us)"
    "paper (RDMA / eRPC)";
  let paper = [ ("CX3", (1.7, 2.1)); ("CX4", (2.9, 3.7)); ("CX5", (2.0, 2.3)) ] in
  List.iter
    (fun (r : Experiments.Exp_latency.row) ->
      let p_rdma, p_erpc = List.assoc r.cluster paper in
      Printf.printf "%-8s %-18.1f %-18.1f %.1f / %.1f\n%!" r.cluster r.rdma_read_us r.erpc_us
        p_rdma p_erpc)
    (Experiments.Exp_latency.run ~samples:1_000 ())

let fig4 () =
  section "Figure 4: single-core small-RPC rate (Mrps), B requests/batch";
  Printf.printf "%-6s %-12s %-12s %-12s %s\n" "B" "FaSST(CX3)" "eRPC(CX3)" "eRPC(CX4)"
    "paper: FaSST 3.9/4.4/4.8, eRPC CX3 3.7/3.8/3.9, CX4 5.0/4.9/4.8";
  List.iter
    (fun batch ->
      let fasst =
        Experiments.Exp_small_rate.run_fasst ~cluster:(Transport.Cluster.cx3 ()) ~batch ()
      in
      let cx3 = Experiments.Exp_small_rate.run ~cluster:(Transport.Cluster.cx3 ()) ~batch () in
      let cx4 =
        Experiments.Exp_small_rate.run ~cluster:(Transport.Cluster.cx4 ~nodes:11 ()) ~batch ()
      in
      Printf.printf "%-6d %-12.2f %-12.2f %-12.2f\n%!" batch fasst.per_thread_mrps
        cx3.per_thread_mrps cx4.per_thread_mrps)
    [ 3; 5; 11 ]

let table3 () =
  section "Table 3: factor analysis of common-case optimizations (CX4, B=3)";
  Printf.printf "%-44s %-10s %-8s %s\n" "Action" "RPC rate" "% loss" "paper (rate, loss)";
  let paper =
    [
      (4.96, "");
      (4.84, "2.4%");
      (4.52, "6.6%");
      (4.30, "4.8%");
      (4.06, "5.6%");
      (3.55, "12.6%");
      (3.05, "14.0%");
    ]
  in
  let rows = Experiments.Exp_small_rate.factor_analysis () in
  (* The trailing "Typed codec" and "Transport" rows are not part of the
     paper's cumulative table: each re-runs the baseline with a different
     datapath (typed serialization, RDMA RC, mixed local/remote shm), so
     they get their own section (loss vs the baseline). *)
  let has_prefix p label =
    String.length label >= String.length p && String.sub label 0 (String.length p) = p
  in
  let cumulative, extra_rows =
    List.partition
      (fun (label, _) ->
        not (has_prefix "Typed codec" label || has_prefix "Transport" label))
      rows
  in
  let prev = ref None in
  List.iteri
    (fun i (label, (r : Experiments.Exp_small_rate.result)) ->
      let loss =
        match !prev with
        | None -> ""
        | Some p -> Printf.sprintf "%.1f%%" ((p -. r.per_thread_mrps) /. p *. 100.)
      in
      prev := Some r.per_thread_mrps;
      let p_rate, p_loss = List.nth paper i in
      Printf.printf "%-44s %-10.2f %-8s (%.2f M/s, %s)\n%!" label r.per_thread_mrps loss p_rate
        p_loss)
    cumulative;
  let baseline =
    match cumulative with (_, r) :: _ -> Some r.Experiments.Exp_small_rate.per_thread_mrps | [] -> None
  in
  List.iter
    (fun (label, (r : Experiments.Exp_small_rate.result)) ->
      let loss =
        match baseline with
        | Some b when b > 0. ->
            Printf.sprintf "%.1f%%" ((b -. r.per_thread_mrps) /. b *. 100.)
        | _ -> ""
      in
      Printf.printf "%-44s %-10.2f %-8s (vs baseline)\n%!" label r.per_thread_mrps loss)
    extra_rows;
  (* §6.2 text: disabling congestion control entirely gives 5.44 Mrps (9%
     total CC overhead). *)
  let cluster = Transport.Cluster.cx4 ~nodes:11 () in
  let base = Erpc.Config.of_cluster cluster in
  let config = { base with opts = { base.opts with congestion_control = false } } in
  let r = Experiments.Exp_small_rate.run ~config ~cluster ~batch:3 () in
  Printf.printf "%-44s %-10.2f %-8s (5.44 M/s, 9%% overhead)\n%!"
    "Disable congestion control entirely" r.per_thread_mrps ""

let fig5 ?(threads_list = [ 1; 2; 4 ]) () =
  section "Figure 5 / §6.3: scalability on 100 nodes (latency in us)";
  Printf.printf "%-4s %-12s %-8s %-8s %-8s %-8s %s\n" "T" "Mrps/node" "p50" "p99" "p99.9"
    "p99.99" "(paper: p50 12.7 at T=1; p99.99 < 700 at T=10; 12.3 Mrps/node)";
  List.iter
    (fun (r : Experiments.Exp_scalability.row) ->
      Printf.printf "%-4d %-12.1f %-8.1f %-8.1f %-8.1f %-8.1f\n%!" r.threads_per_node
        r.per_node_mrps r.lat_p50_us r.lat_p99_us r.lat_p999_us r.lat_p9999_us)
    (Experiments.Exp_scalability.fig5 ~threads_list ())

let fig6 () =
  section "Figure 6: large-RPC goodput over 100 Gbps (one core)";
  Printf.printf "%-10s %-12s %-14s %-10s %s\n" "size" "eRPC(Gbps)" "RDMAwr(Gbps)" "ratio"
    "(paper: eRPC peaks at 75 Gbps; >=70% of RDMA write for >=32 kB)";
  List.iter
    (fun (size, (e : Experiments.Exp_bandwidth.point), (r : Experiments.Exp_bandwidth.point)) ->
      Printf.printf "%-10d %-12.1f %-14.1f %-10.2f\n%!" size e.goodput_gbps r.goodput_gbps
        (e.goodput_gbps /. r.goodput_gbps))
    (Experiments.Exp_bandwidth.fig6 ())

let table4 () =
  section "Table 4: 8 MB request throughput under injected packet loss";
  Printf.printf "%-10s %-12s %s\n" "loss" "Gbps" "(paper: 73 / 71 / 57 / 18 / 2.5)";
  List.iter
    (fun (loss, (p : Experiments.Exp_bandwidth.point)) ->
      Printf.printf "%-10.0e %-12.1f (retransmissions: %d)\n%!" loss p.goodput_gbps
        p.retransmits)
    (Experiments.Exp_bandwidth.table4 ())

let table5 () =
  section "Table 5: incast congestion control (CX4)";
  Printf.printf "%-8s %-6s %-12s %-10s %-10s %s\n" "degree" "cc" "bw (Gbps)" "p50 (us)"
    "p99 (us)" "paper (bw, p50, p99)";
  let paper =
    [
      ((20, true), (21.8, 39, 67));
      ((20, false), (23.1, 202, 204));
      ((50, true), (18.4, 34, 174));
      ((50, false), (23.0, 524, 524));
      ((100, true), (22.8, 349, 969));
      ((100, false), (23.0, 1056, 1060));
    ]
  in
  List.iter
    (fun (r : Experiments.Exp_incast.row) ->
      let p_bw, p50, p99 = List.assoc (r.degree, r.cc) paper in
      Printf.printf "%-8d %-6b %-12.1f %-10.0f %-10.0f (%.1f, %d, %d)\n%!" r.degree r.cc
        r.total_gbps r.rtt_p50_us r.rtt_p99_us p_bw p50 p99)
    (Experiments.Exp_incast.table5 ~measure_ms:25.0 ());
  let bg = Experiments.Exp_incast.with_background ~degree:100 ~measure_ms:25.0 () in
  Printf.printf
    "§6.5 background 64 kB RPCs during 100-way incast: p50=%.0f us p99=%.0f us (paper p99 274)\n%!"
    bg.bg_p50_us bg.bg_p99_us

let table6 () =
  section "Table 6: replicated PUT latency (3-way replication)";
  let r = Experiments.Exp_raft.run ~samples:2_000 () in
  Printf.printf "%-36s %-10s %-10s\n" "System" "p50 (us)" "p99 (us)";
  Printf.printf "%-36s %-10.1f %-10s (paper-reported)\n" "NetChain (client, P4 switches)" 9.7 "-";
  Printf.printf "%-36s %-10.1f %-10.1f (measured here; paper 5.5 / 6.3)\n"
    "Raft over eRPC (client)" r.client_p50_us r.client_p99_us;
  Printf.printf "%-36s %-10.1f %-10.1f (paper-reported)\n" "ZabFPGA (leader commit)" 3.0 3.0;
  Printf.printf "%-36s %-10.1f %-10.1f (measured here; paper 3.1 / 3.4)\n%!"
    "Raft over eRPC (leader commit)" r.leader_p50_us r.leader_p99_us

let masstree () =
  section "§7.2: Masstree over eRPC (CX3, 14 dispatch + 2 worker threads)";
  let lo = Experiments.Exp_masstree.low_load_median_us () in
  let r = Experiments.Exp_masstree.run () in
  let r2 = Experiments.Exp_masstree.run ~workers:false () in
  Printf.printf "GET rate:                 %.1f M/s   (paper 14.3 M/s)\n" r.gets_per_sec_m;
  Printf.printf "GET p99 (with workers):   %.1f us    (paper 12 us)\n" r.get_p99_us;
  Printf.printf "GET p99 (dispatch only):  %.1f us    (paper 26 us)\n" r2.get_p99_us;
  Printf.printf "GET median at low load:   %.1f us    (paper 2.7 us)\n%!" lo

(* {2 Ablations of DESIGN.md's key design decisions} *)

let ablations () =
  section "Ablation: client-driven protocol (RFR latency penalty, §5.1)";
  (* A multi-packet REQUEST streams under client control with no extra
     round trips; a multi-packet RESPONSE needs one RFR per further packet
     after response packet 0. The latency gap is the cost of keeping the
     server passive. *)
  let latency ~req_size ~resp_size =
    let cluster = Transport.Cluster.cx5 ~nodes:2 () in
    let d =
      Experiments.Harness.deploy cluster ~threads_per_host:1
        ~register:(Experiments.Harness.register_echo ~resp_size)
    in
    let client = d.rpcs.(0).(0) in
    let sess = Experiments.Harness.connect d client ~remote_host:1 ~remote_rpc_id:0 in
    let engine = Erpc.Fabric.engine d.fabric in
    let req = Erpc.Msgbuf.alloc ~max_size:req_size in
    let resp = Erpc.Msgbuf.alloc ~max_size:(max 32 resp_size) in
    let lat = ref 0 in
    let remaining = ref 200 in
    let rec issue () =
      if !remaining > 0 then begin
        decr remaining;
        let t0 = Sim.Engine.now engine in
        Erpc.Rpc.enqueue_request client sess ~req_type:Experiments.Harness.echo_req_type ~req
          ~resp
          ~cont:(fun _ ->
            lat := Sim.Time.sub (Sim.Engine.now engine) t0;
            issue ())
      end
    in
    issue ();
    Experiments.Harness.run_ms d 50.0;
    float_of_int !lat /. 1e3
  in
  List.iter
    (fun pkts ->
      let size = pkts * 1024 in
      let big_req = latency ~req_size:size ~resp_size:32 in
      let big_resp = latency ~req_size:32 ~resp_size:size in
      Printf.printf
        "%d-packet message: request-heavy %.1f us, response-heavy %.1f us (+%.0f%% RFR penalty)
%!"
        pkts big_req big_resp
        ((big_resp -. big_req) /. big_req *. 100.))
    [ 2; 4; 8; 32; 64 ];
  Printf.printf
    "(the penalty is ~one RTT, so it shrinks with message size; the paper's <20%% at 4+\n\
    \ packets refers to its 4 kB InfiniBand MTU, i.e. 16+ kB messages: see the 32 kB row)\n";

  section "Ablation: session credits = BDP/MTU (§4.3.1)";
  (* Too few credits throttle a single flow below line rate; more credits
     than BDP/MTU only add switch queueing under incast. *)
  Printf.printf "%-8s %-18s %-22s
" "credits" "1-flow Gbps" "20-way incast p50 (us)";
  List.iter
    (fun credits ->
      let bw = (Experiments.Exp_bandwidth.erpc_goodput ~credits ~requests:4
                  ~req_size:(4 * 1024 * 1024) ()).goodput_gbps in
      let incast =
        Experiments.Exp_incast.run ~credits ~degree:20 ~cc:false ~warmup_ms:10.0
          ~measure_ms:10.0 ()
      in
      Printf.printf "%-8d %-18.1f %-22.0f
%!" credits bw incast.rtt_p50_us)
    [ 2; 8; 32; 64 ];

  section "Ablation: go-back-N retransmission timeout (§5.2.3)";
  (* The 5 ms RTO is conservative because dynamic-buffer switches can add
     milliseconds of queueing; shorter RTOs recover faster under loss but
     risk spurious retransmissions under queueing. *)
  Printf.printf "%-10s %-14s %s
" "RTO" "Gbps @1e-4" "(8 MB requests)";
  List.iter
    (fun rto_ms ->
      let cluster = Transport.Cluster.cx5_ib100 () in
      let config =
        { (Erpc.Config.of_cluster ~credits:32 cluster) with
          rto_ns = int_of_float (rto_ms *. 1e6) }
      in
      (* Inline variant of Exp_bandwidth.erpc_goodput with a custom RTO. *)
      let d =
        Experiments.Harness.deploy ~config cluster ~threads_per_host:1
          ~register:(Experiments.Harness.register_echo ~resp_size:32)
      in
      Netsim.Network.set_loss_prob (Erpc.Fabric.net d.fabric) 1e-4;
      let client = d.rpcs.(0).(0) in
      let sess = Experiments.Harness.connect d client ~remote_host:1 ~remote_rpc_id:0 in
      let engine = Erpc.Fabric.engine d.fabric in
      let req_size = 8 * 1024 * 1024 in
      let req = Erpc.Msgbuf.alloc ~max_size:req_size in
      let resp = Erpc.Msgbuf.alloc ~max_size:32 in
      let remaining = ref 20 in
      let t0 = Sim.Engine.now engine in
      let t_end = ref t0 in
      let rec issue () =
        if !remaining > 0 then begin
          decr remaining;
          Erpc.Rpc.enqueue_request client sess ~req_type:Experiments.Harness.echo_req_type
            ~req ~resp
            ~cont:(fun _ ->
              t_end := Sim.Engine.now engine;
              issue ())
        end
      in
      issue ();
      let guard = ref 500 in
      while !remaining > 0 && !guard > 0 do
        Experiments.Harness.run_ms d 10.0;
        decr guard
      done;
      let gbps = float_of_int (20 * req_size * 8) /. float_of_int (Sim.Time.sub !t_end t0) in
      Printf.printf "%-10s %-14.1f
%!" (Printf.sprintf "%.0f ms" rto_ms) gbps)
    [ 1.0; 5.0; 20.0 ];

  section "Ablation: cumulative credit returns (§6.4 future work)";
  (* One CR per [cr_stride] request packets: fewer control packets on the
     wire and less per-packet work at the CPU-bound server. *)
  Printf.printf "%-14s %-14s %-16s
" "mode" "8 MB Gbps" "server tx pkts";
  List.iter
    (fun cumulative ->
      let cluster = Transport.Cluster.cx5_ib100 () in
      let base = Erpc.Config.of_cluster ~credits:32 cluster in
      let config = { base with opts = { base.opts with cumulative_crs = cumulative } } in
      let d =
        Experiments.Harness.deploy ~config cluster ~threads_per_host:1
          ~register:(Experiments.Harness.register_echo ~resp_size:32)
      in
      let client = d.rpcs.(0).(0) in
      let server = d.rpcs.(1).(0) in
      let sess = Experiments.Harness.connect d client ~remote_host:1 ~remote_rpc_id:0 in
      let engine = Erpc.Fabric.engine d.fabric in
      let req_size = 8 * 1024 * 1024 in
      let req = Erpc.Msgbuf.alloc ~max_size:req_size in
      let resp = Erpc.Msgbuf.alloc ~max_size:32 in
      let remaining = ref 6 in
      let t0 = ref Sim.Time.zero and t1 = ref Sim.Time.zero in
      let rec issue () =
        if !remaining > 0 then begin
          if !remaining = 5 then t0 := Sim.Engine.now engine;
          decr remaining;
          Erpc.Rpc.enqueue_request client sess ~req_type:Experiments.Harness.echo_req_type
            ~req ~resp
            ~cont:(fun _ ->
              t1 := Sim.Engine.now engine;
              issue ())
        end
      in
      issue ();
      let guard = ref 300 in
      while !remaining > 0 && !guard > 0 do
        Experiments.Harness.run_ms d 10.0;
        decr guard
      done;
      let gbps = float_of_int (5 * req_size * 8) /. float_of_int (Sim.Time.sub !t1 !t0) in
      Printf.printf "%-14s %-14.1f %-16d
%!"
        (if cumulative then "cumulative" else "per-packet")
        gbps ((Erpc.Rpc.stats server).Erpc.Rpc_stats.tx_pkts))
    [ false; true ];

  section "Ablation: Timely vs DCQCN (the extension the paper could not run, §5.2.1)";
  Printf.printf "%-8s %-12s %-10s %-10s
" "algo" "bw (Gbps)" "p50 (us)" "p99 (us)";
  List.iter
    (fun (algo, name) ->
      let r =
        Experiments.Exp_incast.run ~algo ~degree:50 ~cc:true ~warmup_ms:15.0 ~measure_ms:25.0
          ()
      in
      Printf.printf "%-8s %-12.1f %-10.0f %-10.0f
%!" name r.total_gbps r.rtt_p50_us
        r.rtt_p99_us)
    [ (Erpc.Config.Timely, "Timely"); (Erpc.Config.Dcqcn, "DCQCN") ]

(* {2 Bechamel microbenchmarks} *)

let micro () =
  let open Bechamel in
  let event_queue_kernel =
    let rng = Sim.Rng.create 1L in
    let q = Sim.Event_queue.create () in
    Staged.stage (fun () ->
        for i = 0 to 63 do
          Sim.Event_queue.push q (Sim.Rng.int rng 1_000_000) i
        done;
        for _ = 0 to 63 do
          ignore (Sim.Event_queue.pop q)
        done)
  in
  let wheel_kernel =
    let w = Erpc.Wheel.create ~slot_ns:1_000 ~num_slots:4096 in
    let now = ref 0 in
    Staged.stage (fun () ->
        for i = 0 to 63 do
          Erpc.Wheel.insert w ~now:!now ~at:(!now + (i * 500)) i
        done;
        now := !now + 40_000;
        ignore (Erpc.Wheel.poll w ~now:!now (fun _ -> ())))
  in
  let timely_kernel =
    let cc = Erpc.Config.default_cc ~min_rtt_ns:5_000 in
    let tl = Erpc.Timely.create { cc with samples_per_update = 1 } ~link_gbps:25.0 in
    let i = ref 0 in
    Staged.stage (fun () ->
        incr i;
        Erpc.Timely.update tl ~sample_rtt_ns:(40_000 + (!i * 7919 mod 20_000)))
  in
  let hist_kernel =
    let h = Stats.Hist.create () in
    let i = ref 0 in
    Staged.stage (fun () ->
        incr i;
        Stats.Hist.record h (!i * 2654435761 land 0xFFFFF))
  in
  let mica_kernel =
    let s = Mica.Store.create () in
    for k = 0 to 9_999 do
      Mica.Store.put s ~key:(Workload.Keygen.encode k) ~value:"0123456789abcdef"
    done;
    let i = ref 0 in
    Staged.stage (fun () ->
        incr i;
        ignore (Mica.Store.get s ~key:(Workload.Keygen.encode (!i mod 10_000))))
  in
  let masstree_kernel =
    let t = Masstree.Tree.create () in
    for k = 0 to 9_999 do
      Masstree.Tree.insert t ~key:(Workload.Keygen.encode k) ~value:"v"
    done;
    let i = ref 0 in
    Staged.stage (fun () ->
        incr i;
        ignore (Masstree.Tree.get t ~key:(Workload.Keygen.encode (!i mod 10_000))))
  in
  let codec_kernel =
    let msg =
      Raft.Core.Append_entries
        {
          term = 7;
          leader_id = 1;
          prev_log_index = 41;
          prev_log_term = 6;
          leader_commit = 40;
          entries = [ { Raft.Log.term = 7; cmd = String.make 80 'x' } ];
        }
    in
    Staged.stage (fun () -> ignore (Raft.Wire.decode (Raft.Wire.encode msg)))
  in
  let tests =
    [
      Test.make ~name:"event_queue push+pop x64" event_queue_kernel;
      Test.make ~name:"wheel insert+poll x64" wheel_kernel;
      Test.make ~name:"timely update" timely_kernel;
      Test.make ~name:"hist record" hist_kernel;
      Test.make ~name:"mica get (10k keys)" mica_kernel;
      Test.make ~name:"masstree get (10k keys)" masstree_kernel;
      Test.make ~name:"raft codec roundtrip" codec_kernel;
    ]
  in
  section "Bechamel microbenchmarks (ns per run)";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "%-32s %12.1f ns\n%!" name est
          | _ -> Printf.printf "%-32s (no estimate)\n%!" name)
        results)
    tests

(* Full-scale multi-tenant SLO sweep: all three builtin scenarios at the
   default population and horizon, with the determinism rerun enabled. *)
let cluster_load_json () =
  let results = Experiments.Exp_cluster_load.run_all ~rerun_check:true () in
  List.iter (Format.printf "%a@." Experiments.Exp_cluster_load.pp_result) results;
  let oc = open_out "BENCH_cluster_load.json" in
  output_string oc (Obs.Json.to_string (Experiments.Exp_cluster_load.to_json results));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_cluster_load.json\n%!"

(* Machine-readable results for CI tracking: one JSON file per headline
   benchmark, written to the current directory. Hand-rolled printing — the
   values are numbers and fixed cluster names, no escaping needed. *)
let bench_json () =
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  in
  let rows_obj name unit rows =
    Printf.sprintf "{\n  \"benchmark\": %S,\n  \"unit\": %S,\n  \"rows\": [\n%s\n  ]\n}\n"
      name unit (String.concat ",\n" rows)
  in
  let small_rate =
    List.map
      (fun batch ->
        let r =
          Experiments.Exp_small_rate.run ~cluster:(Transport.Cluster.cx4 ~nodes:11 ()) ~batch ()
        in
        Printf.sprintf
          "    { \"cluster\": \"CX4\", \"batch\": %d, \"per_thread_mrps\": %.4f, \
           \"total_rpcs\": %d, \"retransmits\": %d }"
          batch r.per_thread_mrps r.total_rpcs r.retransmits)
      [ 3; 5; 11 ]
  in
  write "BENCH_small_rate.json" (rows_obj "small_rate" "Mrps" small_rate);
  let latency =
    List.map
      (fun (r : Experiments.Exp_latency.row) ->
        Printf.sprintf "    { \"cluster\": %S, \"rdma_read_us\": %.3f, \"erpc_us\": %.3f }"
          r.cluster r.rdma_read_us r.erpc_us)
      (Experiments.Exp_latency.run ~samples:1_000 ())
  in
  write "BENCH_latency.json" (rows_obj "latency" "us" latency);
  cluster_load_json ()

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match arg with
  | "fig1" -> fig1 ()
  | "table2" -> table2 ()
  | "fig4" -> fig4 ()
  | "table3" -> table3 ()
  | "fig5" -> fig5 ()
  | "fig5full" -> fig5 ~threads_list:[ 1; 2; 4; 6; 8; 10 ] ()
  | "fig6" -> fig6 ()
  | "table4" -> table4 ()
  | "table5" -> table5 ()
  | "table6" -> table6 ()
  | "masstree" -> masstree ()
  | "ablations" -> ablations ()
  | "micro" -> micro ()
  | "cluster-load" -> cluster_load_json ()
  | "json" -> bench_json ()
  | "all" ->
      fig1 ();
      table2 ();
      fig4 ();
      table3 ();
      fig5 ();
      fig6 ();
      table4 ();
      table5 ();
      table6 ();
      masstree ();
      ablations ();
      micro ()
  | other ->
      Printf.eprintf
        "unknown bench %S; use \
         fig1|table2|fig4|table3|fig5|fig5full|fig6|table4|table5|table6|masstree|micro|json|all\n"
        other;
      exit 1
