(* erpc_sim: parameterized command-line runner for individual experiments.

   `bench/main.exe` regenerates the paper's tables and figures with fixed
   parameters; this tool exposes the same experiments with the knobs open
   (cluster, degree, credits, loss rate, congestion-control algorithm, ...)
   for exploration. *)

open Cmdliner

let cluster_conv =
  let parse = function
    | "cx3" -> Ok `Cx3
    | "cx4" -> Ok `Cx4
    | "cx5" -> Ok `Cx5
    | "cx5-ib100" -> Ok `Cx5_ib100
    | s -> Error (`Msg (Printf.sprintf "unknown cluster %S (cx3|cx4|cx5|cx5-ib100)" s))
  in
  let print fmt c =
    Format.pp_print_string fmt
      (match c with `Cx3 -> "cx3" | `Cx4 -> "cx4" | `Cx5 -> "cx5" | `Cx5_ib100 -> "cx5-ib100")
  in
  Arg.conv (parse, print)

let build_cluster ?nodes = function
  | `Cx3 -> Transport.Cluster.cx3 ?nodes ()
  | `Cx4 -> Transport.Cluster.cx4 ?nodes ()
  | `Cx5 -> Transport.Cluster.cx5 ?nodes ()
  | `Cx5_ib100 -> Transport.Cluster.cx5_ib100 ()

let cluster_arg default =
  Arg.(value & opt cluster_conv default & info [ "cluster" ] ~docv:"NAME" ~doc:"Cluster profile.")

let nodes_arg =
  Arg.(value & opt (some int) None & info [ "nodes" ] ~docv:"N" ~doc:"Override node count.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit machine-readable JSON (the bench BENCH_*.json schema).")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "OCaml domains to fan independent runs across (results are identical to \
           --jobs 1; see Par_sweep).")

(* The bench BENCH_*.json schema: one object per benchmark with labeled
   rows. *)
let print_bench_json ~benchmark ~unit rows =
  print_string
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("benchmark", Obs.Json.Str benchmark);
            ("unit", Obs.Json.Str unit);
            ("rows", Obs.Json.Arr rows);
          ]));
  print_newline ()

(* latency *)
let latency_cmd =
  let run cluster nodes samples =
    let c = build_cluster ?nodes cluster in
    let r = Experiments.Exp_latency.measure ~samples c in
    Printf.printf "%s: RDMA read %.1f us, eRPC %.1f us (p99 %.1f us)\n" r.cluster r.rdma_read_us
      r.erpc_us r.erpc_p99_us
  in
  let samples =
    Arg.(value & opt int 2_000 & info [ "samples" ] ~docv:"N" ~doc:"RPCs to measure.")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Table 2: median 32 B RPC vs RDMA-read latency")
    Term.(const run $ cluster_arg `Cx5 $ nodes_arg $ samples)

(* rate *)
let rate_cmd =
  let run cluster nodes batch window fasst json =
    let c = build_cluster ?nodes cluster in
    let r =
      if fasst then Experiments.Exp_small_rate.run_fasst ~cluster:c ~batch ()
      else Experiments.Exp_small_rate.run ~cluster:c ~window ~batch ()
    in
    if json then
      print_bench_json ~benchmark:"small_rate" ~unit:"Mrps"
        [
          Obs.Json.Obj
            [
              ("cluster", Obs.Json.Str c.name);
              ("batch", Obs.Json.Int batch);
              ("per_thread_mrps", Obs.Json.Float r.per_thread_mrps);
              ("total_rpcs", Obs.Json.Int r.total_rpcs);
              ("retransmits", Obs.Json.Int r.retransmits);
            ];
        ]
    else
      Printf.printf "%s B=%d: %.2f Mrps/thread (%d RPCs, %d retransmits)\n" c.name batch
        r.per_thread_mrps r.total_rpcs r.retransmits
  in
  let batch = Arg.(value & opt int 3 & info [ "batch" ] ~docv:"B" ~doc:"Requests per batch.") in
  let window =
    Arg.(value & opt int 60 & info [ "window" ] ~docv:"N" ~doc:"Requests in flight per thread.")
  in
  let fasst =
    Arg.(value & flag & info [ "fasst" ] ~doc:"Run the FaSST-like specialized baseline.")
  in
  Cmd.v
    (Cmd.info "rate" ~doc:"Figure 4: single-core small-RPC rate")
    Term.(const run $ cluster_arg `Cx4 $ nodes_arg $ batch $ window $ fasst $ json_arg)

(* bandwidth *)
let bandwidth_cmd =
  let run req_size credits loss requests json =
    let p = Experiments.Exp_bandwidth.erpc_goodput ~credits ~requests ~loss ~req_size () in
    if json then
      print_bench_json ~benchmark:"bandwidth" ~unit:"Gbps"
        [
          Obs.Json.Obj
            [
              ("req_size", Obs.Json.Int p.req_size);
              ("loss", Obs.Json.Float loss);
              ("goodput_gbps", Obs.Json.Float p.goodput_gbps);
              ("retransmits", Obs.Json.Int p.retransmits);
            ];
        ]
    else
      Printf.printf "%d-byte requests: %.1f Gbps (%d retransmissions)\n" req_size
        p.goodput_gbps p.retransmits
  in
  let req_size =
    Arg.(value & opt int (8 * 1024 * 1024) & info [ "size" ] ~docv:"BYTES" ~doc:"Request size.")
  in
  let credits =
    Arg.(value & opt int 32 & info [ "credits" ] ~docv:"C" ~doc:"Session credits.")
  in
  let loss =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Injected packet-loss rate.")
  in
  let requests =
    Arg.(value & opt int 8 & info [ "requests" ] ~docv:"N" ~doc:"Requests to measure.")
  in
  Cmd.v
    (Cmd.info "bandwidth" ~doc:"Figure 6 / Table 4: large-RPC goodput over 100 Gbps")
    Term.(const run $ req_size $ credits $ loss $ requests $ json_arg)

(* incast *)
let incast_row (r : Experiments.Exp_incast.row) =
  Obs.Json.Obj
    [
      ("degree", Obs.Json.Int r.degree);
      ("cc", Obs.Json.Bool r.cc);
      ("total_gbps", Obs.Json.Float r.total_gbps);
      ("rtt_p50_us", Obs.Json.Float r.rtt_p50_us);
      ("rtt_p99_us", Obs.Json.Float r.rtt_p99_us);
      ("switch_buffer_peak_bytes", Obs.Json.Int r.switch_buffer_peak_bytes);
      ("retransmits", Obs.Json.Int r.retransmits);
    ]

let incast_cmd =
  let run degree credits cc dcqcn measure_ms json =
    let algo = if dcqcn then Erpc.Config.Dcqcn else Erpc.Config.Timely in
    let r = Experiments.Exp_incast.run ~credits ~algo ~degree ~cc ~measure_ms () in
    if json then print_bench_json ~benchmark:"incast" ~unit:"Gbps" [ incast_row r ]
    else
      Printf.printf
        "%d-way incast (cc=%b%s): %.1f Gbps, RTT p50=%.0f us p99=%.0f us, buffer peak %d \
         kB, %d retransmits\n"
        r.degree r.cc
        (if dcqcn then ", DCQCN" else "")
        r.total_gbps r.rtt_p50_us r.rtt_p99_us
        (r.switch_buffer_peak_bytes / 1024)
        r.retransmits
  in
  let degree = Arg.(value & opt int 20 & info [ "degree" ] ~docv:"N" ~doc:"Incast degree.") in
  let credits =
    Arg.(value & opt int 32 & info [ "credits" ] ~docv:"C" ~doc:"Session credits.")
  in
  let cc =
    Arg.(value & opt bool true & info [ "cc" ] ~docv:"BOOL" ~doc:"Enable congestion control.")
  in
  let dcqcn = Arg.(value & flag & info [ "dcqcn" ] ~doc:"Use DCQCN instead of Timely.") in
  let measure =
    Arg.(value & opt float 30.0 & info [ "measure-ms" ] ~docv:"MS" ~doc:"Measured window.")
  in
  Cmd.v
    (Cmd.info "incast" ~doc:"Table 5: incast congestion control")
    Term.(const run $ degree $ credits $ cc $ dcqcn $ measure $ json_arg)

(* scalability *)
let scalability_cmd =
  let run nodes threads =
    let r = Experiments.Exp_scalability.run ?nodes ~threads () in
    Printf.printf
      "T=%d: %.1f Mrps/node; latency p50=%.1f p99=%.1f p99.9=%.1f p99.99=%.1f us; retx/s=%.0f\n"
      r.threads_per_node r.per_node_mrps r.lat_p50_us r.lat_p99_us r.lat_p999_us r.lat_p9999_us
      r.retransmits_per_node_per_sec
  in
  let threads =
    Arg.(value & opt int 1 & info [ "threads" ] ~docv:"T" ~doc:"Threads per node.")
  in
  Cmd.v
    (Cmd.info "scalability" ~doc:"Figure 5: 100-node scalability")
    Term.(const run $ nodes_arg $ threads)

(* raft *)
let raft_cmd =
  let run samples seed json out =
    let r = Experiments.Exp_raft.run ~samples () in
    Printf.printf
      "replicated PUT: client p50=%.1f p99=%.1f us; leader commit p50=%.1f p99=%.1f us (%d puts, %d errors)\n"
      r.client_p50_us r.client_p99_us r.leader_p50_us r.leader_p99_us r.puts r.errors;
    if json || out <> None then begin
      let doc =
        Obs.Json.Obj
          [
            ("benchmark", Obs.Json.Str "raft_kv");
            ("unit", Obs.Json.Str "us");
            ( "rows",
              Obs.Json.Arr
                [
                  Obs.Json.Obj
                    [
                      ("row", Obs.Json.Str "table6");
                      ("client_p50_us", Obs.Json.Float r.client_p50_us);
                      ("client_p99_us", Obs.Json.Float r.client_p99_us);
                      ("leader_p50_us", Obs.Json.Float r.leader_p50_us);
                      ("leader_p99_us", Obs.Json.Float r.leader_p99_us);
                      ("puts", Obs.Json.Int r.puts);
                      ("errors", Obs.Json.Int r.errors);
                    ];
                  Obs.Json.Obj
                    [
                      ("row", Obs.Json.Str "sharded_baseline");
                      ("detail", Experiments.Exp_kv_chaos.baseline_json ~seed ());
                    ];
                ] );
          ]
      in
      let s = Obs.Json.to_string doc in
      match out with
      | None ->
          print_string s;
          print_newline ()
      | Some file ->
          let oc = open_out file in
          output_string oc s;
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote %s\n" file
    end
  in
  let samples = Arg.(value & opt int 3_000 & info [ "samples" ] ~docv:"N" ~doc:"PUTs.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the BENCH_raft_kv.json document here.")
  in
  Cmd.v
    (Cmd.info "raft" ~doc:"Table 6: 3-way replicated PUT latency (Raft over eRPC)")
    Term.(const run $ samples $ seed_arg $ json_arg $ out)

(* kv-chaos *)
let kv_chaos_cmd =
  let run seeds verbose json out jobs =
    let s = Experiments.Exp_kv_chaos.run_suite ~seeds ~jobs () in
    List.iter
      (fun r ->
        Format.printf "%a@." Experiments.Exp_kv_chaos.pp_run r;
        if verbose then print_string r.Experiments.Exp_kv_chaos.trace)
      s.runs;
    let bad =
      List.filter (fun r -> r.Experiments.Exp_kv_chaos.violations <> []) s.runs
      |> List.length
    in
    Printf.printf "%d/%d schedules clean; deterministic=%b\n" (seeds - bad) seeds
      s.deterministic;
    (if json || out <> None then
       let str = Obs.Json.to_string (Experiments.Exp_kv_chaos.suite_to_json s) in
       match out with
       | None ->
           print_string str;
           print_newline ()
       | Some file ->
           let oc = open_out file in
           output_string oc str;
           output_char oc '\n';
           close_out oc;
           Printf.printf "wrote %s\n" file);
    if bad > 0 || not s.deterministic then exit 1
  in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Seeded fault schedules to run.")
  in
  let verbose = Arg.(value & flag & info [ "trace" ] ~doc:"Print each run's fault trace.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report here.")
  in
  Cmd.v
    (Cmd.info "kv-chaos"
       ~doc:
         "Replicated-KV failover chaos: availability timeline, tail latency and \
          exactly-once invariants under leader crashes, partitions and rolling restarts")
    Term.(const run $ seeds $ verbose $ json_arg $ out $ jobs_arg)

(* cluster-load *)
let cluster_load_cmd =
  let run scenario scale horizon_ms rerun seed json out jobs =
    let names =
      match scenario with
      | "all" -> List.map fst Workload.Traffic_spec.builtin
      | s when List.mem_assoc s Workload.Traffic_spec.builtin -> [ s ]
      | s ->
          failwith
            (Printf.sprintf "unknown scenario %S (all|%s)" s
               (String.concat "|" (List.map fst Workload.Traffic_spec.builtin)))
    in
    let results =
      if scenario = "all" then
        Experiments.Exp_cluster_load.run_all ~seed ~scale ~horizon_ms
          ~rerun_check:rerun ~jobs ()
      else
        List.map
          (fun name ->
            let r =
              Experiments.Exp_cluster_load.run_named ~seed ~scale ~horizon_ms name
            in
            if not rerun then r
            else
              let r2 =
                Experiments.Exp_cluster_load.run_named ~seed ~scale ~horizon_ms name
              in
              if r2.Experiments.Exp_cluster_load.digest
                 = r.Experiments.Exp_cluster_load.digest
              then r
              else
                {
                  r with
                  violations =
                    r.violations
                    @ [
                        Printf.sprintf "nondeterministic: rerun digest %s <> %s"
                          r2.Experiments.Exp_cluster_load.digest
                          r.Experiments.Exp_cluster_load.digest;
                      ];
                })
          names
    in
    List.iter (Format.printf "%a@." Experiments.Exp_cluster_load.pp_result) results;
    (if json || out <> None then
       let str =
         Obs.Json.to_string (Experiments.Exp_cluster_load.to_json results)
       in
       match out with
       | None ->
           print_string str;
           print_newline ()
       | Some file ->
           let oc = open_out file in
           output_string oc str;
           output_char oc '\n';
           close_out oc;
           Printf.printf "wrote %s\n" file);
    let bad =
      List.filter
        (fun r -> r.Experiments.Exp_cluster_load.violations <> [])
        results
      |> List.length
    in
    if bad > 0 then exit 1
  in
  let scenario =
    Arg.(
      value & opt string "all"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Scenario: all|steady-poisson|hot-key-shift|bursty-mixed|local-mesh.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F" ~doc:"Population scale factor on tenant source counts.")
  in
  let horizon =
    Arg.(
      value & opt float 100.0
      & info [ "horizon-ms" ] ~docv:"MS" ~doc:"Measured open-loop window per scenario.")
  in
  let rerun =
    Arg.(
      value & flag
      & info [ "rerun" ]
          ~doc:"Run each scenario twice and fail if same-seed trace digests differ.")
  in
  Cmd.v
    (Cmd.info "cluster-load"
       ~doc:
         "Multi-tenant open-loop traffic (Poisson/bursty/hot-key-shift tenants over KV + \
          echo) with per-tenant P50/P99/P99.9 SLOs and P99 tail attribution")
    Term.(const run $ scenario $ scale $ horizon $ rerun $ seed_arg $ json_arg
          $ Arg.(
              value
              & opt (some string) None
              & info [ "out" ] ~docv:"FILE" ~doc:"Write BENCH_cluster_load.json here.")
          $ jobs_arg)

(* shm-bench *)
let shm_bench_cmd =
  let run samples rerun seed json out =
    let r = Experiments.Exp_shm_bench.run ~seed ~samples ~rerun_check:rerun () in
    Format.printf "%a" Experiments.Exp_shm_bench.pp_result r;
    (if json || out <> None then
       let str = Obs.Json.to_string (Experiments.Exp_shm_bench.to_json r) in
       match out with
       | None ->
           print_string str;
           print_newline ()
       | Some file ->
           let oc = open_out file in
           output_string oc str;
           output_char oc '\n';
           close_out oc;
           Printf.printf "wrote %s\n" file);
    if r.violations <> [] then exit 1
  in
  let samples =
    Arg.(
      value & opt int 24
      & info [ "samples" ] ~docv:"N" ~doc:"Sequential RPCs per (payload, mode) cell.")
  in
  let rerun =
    Arg.(
      value & flag
      & info [ "rerun" ]
          ~doc:"Run each cell twice and fail if same-seed trace digests differ.")
  in
  Cmd.v
    (Cmd.info "shm-bench"
       ~doc:
         "Intra-host serialize-vs-share benchmark: payload sweep over the shared-memory \
          rings with crossover, anatomy-zero and determinism checks")
    Term.(const run $ samples $ rerun $ seed_arg $ json_arg
          $ Arg.(
              value
              & opt (some string) None
              & info [ "out" ] ~docv:"FILE" ~doc:"Write BENCH_shm.json here."))

(* masstree *)
let masstree_cmd =
  let run workers =
    let r = Experiments.Exp_masstree.run ~workers () in
    Printf.printf "Masstree: %.1f M GET/s, GET p50=%.1f us p99=%.1f us, SCAN p99=%.1f us\n"
      r.gets_per_sec_m r.get_p50_us r.get_p99_us r.scan_p99_us
  in
  let workers =
    Arg.(value & opt bool true & info [ "workers" ] ~docv:"BOOL" ~doc:"Run scans in workers.")
  in
  Cmd.v
    (Cmd.info "masstree" ~doc:"§7.2: Masstree over eRPC")
    Term.(const run $ workers)

(* chaos *)
let chaos_cmd =
  let run seeds events requests verbose jobs =
    let s = Experiments.Chaos.run_suite ~seeds ~events ~requests ~jobs () in
    List.iter
      (fun r ->
        Format.printf "%a@." Experiments.Chaos.pp_run r;
        if verbose then print_string r.Experiments.Chaos.trace)
      s.runs;
    let bad =
      List.filter (fun r -> r.Experiments.Chaos.violations <> []) s.runs |> List.length
    in
    Printf.printf "%d/%d schedules clean; deterministic=%b\n" (seeds - bad) seeds
      s.deterministic;
    if bad > 0 || not s.deterministic then exit 1
  in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Seeded schedules to run.")
  in
  let events =
    Arg.(value & opt int 12 & info [ "events" ] ~docv:"N" ~doc:"Fault events per schedule.")
  in
  let requests =
    Arg.(value & opt int 120 & info [ "requests" ] ~docv:"N" ~doc:"RPCs issued per run.")
  in
  let verbose = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.") in
  Cmd.v
    (Cmd.info "chaos" ~doc:"Fault-injection chaos suite: invariants under seeded fault schedules")
    Term.(const run $ seeds $ events $ requests $ verbose $ jobs_arg)

(* anatomy *)
let anatomy_cmd =
  let run samples req_size typed backend offload transport seed json =
    let backend =
      match backend with
      | "compact" -> Codec.Compact
      | "flat" -> Codec.Flat
      | s -> failwith (Printf.sprintf "unknown codec backend %S (compact|flat)" s)
    in
    let transports =
      match transport with
      | "all" -> [ ("raw_eth", `Raw_eth); ("rdma_rc", `Rdma_rc); ("shm", `Shm) ]
      | "raw_eth" -> [ ("raw_eth", `Raw_eth) ]
      | "rdma_rc" -> [ ("rdma_rc", `Rdma_rc) ]
      | "shm" -> [ ("shm", `Shm) ]
      | s ->
          failwith
            (Printf.sprintf "unknown transport %S (all|raw_eth|rdma_rc|shm)" s)
    in
    let results =
      List.map
        (fun (name, tp) ->
          ( name,
            Experiments.Exp_anatomy.run ~seed ~samples ~req_size ~typed ~backend
              ~offload ~transport:tp () ))
        transports
    in
    if json then
      print_bench_json ~benchmark:"anatomy" ~unit:"ns"
        (List.concat_map
           (fun (name, (r : Experiments.Exp_anatomy.result)) ->
             List.map
               (fun (b : Obs.Anatomy.breakdown) ->
                 Obs.Json.Obj
                   (("transport", Obs.Json.Str name)
                   :: ("req", Obs.Json.Int b.req)
                   :: ("total_ns", Obs.Json.Int b.total_ns)
                   :: List.map
                        (fun (label, v) -> (label, Obs.Json.Int v))
                        (Obs.Anatomy.components b)))
               r.breakdowns)
           results)
    else
      List.iter
        (fun (name, (r : Experiments.Exp_anatomy.result)) ->
          Format.printf "transport %s:@.%a" name Obs.Anatomy.pp_table r.breakdowns)
        results
  in
  let samples =
    Arg.(value & opt int 32 & info [ "samples" ] ~docv:"N" ~doc:"Sequential RPCs to sample.")
  in
  let req_size =
    Arg.(value & opt int 32 & info [ "size" ] ~docv:"BYTES" ~doc:"Request size.")
  in
  let typed =
    Arg.(
      value & flag
      & info [ "typed" ] ~doc:"Issue typed (schema-carrying) echoes so ser/deser appear.")
  in
  let backend =
    Arg.(
      value & opt string "compact"
      & info [ "backend" ] ~docv:"B" ~doc:"Codec backend for --typed (compact|flat).")
  in
  let offload =
    Arg.(value & flag & info [ "offload" ] ~doc:"Model NIC-offloaded codec for --typed.")
  in
  let transport =
    Arg.(
      value & opt string "raw_eth"
      & info [ "transport" ] ~docv:"T"
          ~doc:
            "Datapath: raw_eth|rdma_rc|shm, or all to run the three-transport anatomy \
             in one command.")
  in
  Cmd.v
    (Cmd.info "anatomy"
       ~doc:"Latency anatomy: decompose quiet-network RPC latency into components")
    Term.(
      const run $ samples $ req_size $ typed $ backend $ offload $ transport $ seed_arg
      $ json_arg)

(* trace *)
let trace_cmd =
  let run exp out capacity seed degree warmup_ms measure_ms =
    let tr = Obs.Trace.create ~capacity () in
    (match exp with
    | `Incast ->
        let r =
          Experiments.Exp_incast.run ~seed ~trace:tr ~degree ~warmup_ms ~measure_ms
            ~cc:true ()
        in
        Printf.printf "incast degree=%d: %.1f Gbps, buffer peak %d kB, %d retransmits\n"
          r.degree r.total_gbps
          (r.switch_buffer_peak_bytes / 1024)
          r.retransmits
    | `Rate ->
        let c = Transport.Cluster.cx4 ~nodes:11 () in
        let r =
          Experiments.Exp_small_rate.run ~seed ~trace:tr ~cluster:c ~batch:3
            ~measure_ms ()
        in
        Printf.printf "rate: %.2f Mrps/thread\n" r.per_thread_mrps
    | `Bandwidth ->
        let p =
          Experiments.Exp_bandwidth.erpc_goodput ~seed ~trace:tr ~requests:4
            ~req_size:(1024 * 1024) ()
        in
        Printf.printf "bandwidth: %.1f Gbps\n" p.goodput_gbps
    | `Anatomy ->
        let r = Experiments.Exp_anatomy.run ~seed ~trace:tr () in
        Format.printf "%a" Obs.Anatomy.pp_table r.breakdowns);
    Obs.Trace.write_chrome_file tr out;
    let contents =
      let ic = open_in_bin out in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    if not (Obs.Json.validate contents) then begin
      Printf.eprintf "error: %s is not well-formed JSON\n" out;
      exit 1
    end;
    let by_cat = Hashtbl.create 16 in
    Obs.Trace.iter tr (fun e ->
        Hashtbl.replace by_cat e.cat
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_cat e.cat)));
    let cats = Hashtbl.fold (fun c n acc -> (c, n) :: acc) by_cat [] in
    List.iter
      (fun (c, n) -> Printf.printf "  %-8s %d events\n" c n)
      (List.sort compare cats);
    Printf.printf "wrote %s: %d events (%d evicted), valid JSON\n" out (Obs.Trace.length tr)
      (Obs.Trace.dropped tr)
  in
  let exp_conv =
    let parse = function
      | "incast" -> Ok `Incast
      | "rate" -> Ok `Rate
      | "bandwidth" -> Ok `Bandwidth
      | "anatomy" -> Ok `Anatomy
      | s -> Error (`Msg (Printf.sprintf "unknown experiment %S (incast|rate|bandwidth|anatomy)" s))
    in
    let print fmt e =
      Format.pp_print_string fmt
        (match e with
        | `Incast -> "incast"
        | `Rate -> "rate"
        | `Bandwidth -> "bandwidth"
        | `Anatomy -> "anatomy")
    in
    Arg.conv (parse, print)
  in
  let exp =
    Arg.(value & opt exp_conv `Incast & info [ "exp" ] ~docv:"NAME" ~doc:"Experiment to trace.")
  in
  let out =
    Arg.(value & opt string "trace.json" & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let capacity =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "capacity" ] ~docv:"N" ~doc:"Trace ring capacity (events).")
  in
  let degree =
    Arg.(value & opt int 10 & info [ "degree" ] ~docv:"N" ~doc:"Incast degree.")
  in
  let warmup =
    Arg.(value & opt float 5.0 & info [ "warmup-ms" ] ~docv:"MS" ~doc:"Warmup window.")
  in
  let measure =
    Arg.(value & opt float 5.0 & info [ "measure-ms" ] ~docv:"MS" ~doc:"Measured window.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run an experiment with event tracing on and write a Chrome/Perfetto trace")
    Term.(const run $ exp $ out $ capacity $ seed_arg $ degree $ warmup $ measure)

(* bench-sim *)
let bench_sim_cmd =
  let run workloads impls out seed rerun =
    let impls =
      List.map
        (fun s ->
          match Experiments.Bench_sim.impl_of_name s with
          | Some i -> i
          | None -> failwith (Printf.sprintf "unknown impl %S (wheel|binheap)" s))
        impls
    in
    let rows =
      List.concat_map
        (fun workload ->
          List.map
            (fun impl -> Experiments.Bench_sim.run_one ~workload ~impl ~seed)
            impls)
        workloads
    in
    (* --rerun determinism gate (same idiom as shm-bench/cluster-load):
       run every row a second time and require identical end-state
       digests; timings may differ, the simulation must not. *)
    let violations =
      if not rerun then []
      else
        List.filter_map
          (fun (r : Experiments.Bench_sim.row) ->
            let impl =
              Option.get (Experiments.Bench_sim.impl_of_name r.impl)
            in
            let r2 =
              Experiments.Bench_sim.run_one ~workload:r.workload ~impl ~seed
            in
            if r2.digest = r.digest then None
            else
              Some
                (Printf.sprintf "%s/%s: rerun digest %s <> %s" r.workload r.impl
                   r2.digest r.digest))
          rows
    in
    List.iter
      (fun (r : Experiments.Bench_sim.row) ->
        Printf.printf "%-10s %-8s %8.3f s  %9d events  %10.0f ev/s  %6.1f words/ev\n"
          r.workload r.impl r.wall_s r.events r.events_per_sec r.minor_words_per_event)
      rows;
    (* Speedup summary per workload (production wheel vs binheap baseline). *)
    List.iter
      (fun w ->
        let find impl =
          List.find_opt
            (fun (r : Experiments.Bench_sim.row) -> r.workload = w && r.impl = impl)
            rows
        in
        match (find "wheel", find "binheap") with
        | Some wh, Some bh when bh.events_per_sec > 0. ->
            Printf.printf "%-10s wheel/binheap speedup: %.2fx\n" w
              (wh.events_per_sec /. bh.events_per_sec)
        | _ -> ())
      workloads;
    (match out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Obs.Json.to_string (Experiments.Bench_sim.to_json rows));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" file);
    if violations <> [] then begin
      List.iter (Printf.eprintf "DETERMINISM VIOLATION: %s\n") violations;
      exit 1
    end
    else if rerun then Printf.printf "rerun digests identical for all %d rows\n" (List.length rows)
  in
  let workloads =
    Arg.(
      value
      & opt (list string) Experiments.Bench_sim.workload_names
      & info [ "workloads" ] ~docv:"W,.." ~doc:"Workloads to run (incast|rate|bandwidth|chaos).")
  in
  let impls =
    Arg.(
      value
      & opt (list string) [ "binheap"; "wheel" ]
      & info [ "impls" ] ~docv:"I,.." ~doc:"Event-queue implementations (wheel|binheap).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the BENCH_sim_events.json document here.")
  in
  let rerun =
    Arg.(
      value & flag
      & info [ "rerun" ]
          ~doc:
            "Run every row twice and fail (exit 1) if any same-seed rerun's end-state \
             digest differs.")
  in
  Cmd.v
    (Cmd.info "bench-sim"
       ~doc:"Simulator throughput: events/s and allocation per event, wheel vs binheap")
    Term.(const run $ workloads $ impls $ out $ seed_arg $ rerun)

(* par-bench *)
let par_bench_cmd =
  let run seed racks hosts sources rate_rps local_frac horizon_ms domains json out =
    let domains_list =
      List.map
        (fun s ->
          match int_of_string_opt (String.trim s) with
          | Some d when d >= 1 -> d
          | _ -> failwith (Printf.sprintf "bad domain count %S" s))
        (String.split_on_char ',' domains)
    in
    let b =
      Experiments.Exp_par_sim.run_bench ~seed ~racks ~hosts_per_rack:hosts ~sources
        ~rate_rps ~local_frac ~horizon_ms ~domains_list ()
    in
    Printf.printf "par-bench: %d racks x %d hosts, %.1f ms horizon, host_cores=%d\n"
      racks hosts horizon_ms b.host_cores;
    List.iter
      (fun (r : Experiments.Exp_par_sim.result) ->
        Printf.printf
          "domains=%d  %9d events  %7d crossed  %7.3f s  %10.0f ev/s  %5.2fx  %s  parts=[%s]\n"
          r.domains r.events r.msgs_crossed r.wall_s r.events_per_sec
          (Experiments.Exp_par_sim.speedup_vs_1dom b r)
          r.digest
          (String.concat ";" (List.map string_of_int r.part_events)))
      b.rows;
    (match b.rows with
    | r :: _ ->
        Printf.printf "workload: %d requests, %d responses, p50=%.1fus p99=%.1fus\n"
          r.requests r.responses r.p50_us r.p99_us
    | [] -> ());
    (if json || out <> None then
       let str = Obs.Json.to_string (Experiments.Exp_par_sim.to_json b) in
       match out with
       | None ->
           print_string str;
           print_newline ()
       | Some file ->
           let oc = open_out file in
           output_string oc str;
           output_char oc '\n';
           close_out oc;
           Printf.printf "wrote %s\n" file);
    if b.violations <> [] then begin
      List.iter (Printf.eprintf "DETERMINISM VIOLATION: %s\n") b.violations;
      exit 1
    end
    else Printf.printf "digest identical across domain counts\n"
  in
  let racks =
    Arg.(value & opt int 4 & info [ "racks" ] ~docv:"N" ~doc:"Racks (= partitions).")
  in
  let hosts =
    Arg.(value & opt int 4 & info [ "hosts" ] ~docv:"N" ~doc:"Hosts per rack.")
  in
  let sources =
    Arg.(
      value & opt int 2
      & info [ "sources" ] ~docv:"N" ~doc:"Open-loop request sources per host.")
  in
  let rate =
    Arg.(
      value & opt float 80_000.
      & info [ "rate" ] ~docv:"RPS" ~doc:"Poisson arrival rate per source.")
  in
  let local_frac =
    Arg.(
      value & opt float 0.5
      & info [ "local-frac" ] ~docv:"F" ~doc:"Fraction of requests staying in-rack.")
  in
  let horizon =
    Arg.(
      value & opt float 5.0
      & info [ "horizon-ms" ] ~docv:"MS" ~doc:"Simulated horizon per run.")
  in
  let domains =
    Arg.(
      value & opt string "1,2,4"
      & info [ "domains" ] ~docv:"D,.."
          ~doc:"Domain counts to sweep; digests must match across all of them.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the BENCH_par_sim.json document here.")
  in
  Cmd.v
    (Cmd.info "par-bench"
       ~doc:
         "Domain-parallel simulator throughput: the same seeded rack-partitioned \
          workload under each domain count, with a digest-equality gate")
    Term.(
      const run $ seed_arg $ racks $ hosts $ sources $ rate $ local_frac $ horizon
      $ domains $ json_arg $ out)

(* sweep *)
let sweep_cmd =
  let run suite seeds jobs =
    let t0 = Unix.gettimeofday () in
    let failures = ref [] in
    let note name bad det =
      Printf.printf "%-12s %d/%d clean, deterministic=%b\n" name (seeds - bad) seeds det;
      if bad > 0 || not det then failures := name :: !failures
    in
    let run_chaos () =
      let s = Experiments.Chaos.run_suite ~seeds ~jobs () in
      note "chaos"
        (List.length (List.filter (fun r -> r.Experiments.Chaos.violations <> []) s.runs))
        s.deterministic
    in
    let run_kv () =
      let s = Experiments.Exp_kv_chaos.run_suite ~seeds ~jobs () in
      note "kv-chaos"
        (List.length
           (List.filter (fun r -> r.Experiments.Exp_kv_chaos.violations <> []) s.runs))
        s.deterministic
    in
    let run_cluster () =
      let rs = Experiments.Exp_cluster_load.run_all ~rerun_check:true ~jobs () in
      let bad =
        List.length
          (List.filter (fun r -> r.Experiments.Exp_cluster_load.violations <> []) rs)
      in
      Printf.printf "%-12s %d/%d scenarios clean (rerun-checked)\n" "cluster-load"
        (List.length rs - bad) (List.length rs);
      if bad > 0 then failures := "cluster-load" :: !failures
    in
    (match suite with
    | "chaos" -> run_chaos ()
    | "kv-chaos" -> run_kv ()
    | "cluster-load" -> run_cluster ()
    | "all" ->
        run_chaos ();
        run_kv ();
        run_cluster ()
    | s -> failwith (Printf.sprintf "unknown suite %S (chaos|kv-chaos|cluster-load|all)" s));
    Printf.printf "sweep done in %.1f s (jobs=%d)\n" (Unix.gettimeofday () -. t0) jobs;
    if !failures <> [] then exit 1
  in
  let suite =
    Arg.(
      value & opt string "all"
      & info [ "suite" ] ~docv:"NAME" ~doc:"Suite to sweep (chaos|kv-chaos|cluster-load|all).")
  in
  let seeds =
    Arg.(
      value & opt int 20
      & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per suite (chaos and kv-chaos).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Fan independent seeded replications of the chaos/kv-chaos/cluster-load \
          suites across OCaml domains; output is identical to a sequential run")
    Term.(const run $ suite $ seeds $ jobs_arg)

(* codec-bench *)
let codec_bench_cmd =
  let run iters measure_ms json out seed =
    let rows = Experiments.Exp_codec_bench.run ~seed ~iters ~measure_ms () in
    if json then
      print_bench_json ~benchmark:"codec" ~unit:"ns/op"
        (List.map Experiments.Exp_codec_bench.row_json rows)
    else Experiments.Exp_codec_bench.pp_table Format.std_formatter rows;
    match out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Obs.Json.to_string (Experiments.Exp_codec_bench.to_json rows));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" file
  in
  let iters =
    Arg.(
      value & opt int 100_000
      & info [ "iters" ] ~docv:"N" ~doc:"Wall-clock encode/decode iterations per row.")
  in
  let measure =
    Arg.(
      value & opt float 2.0
      & info [ "measure-ms" ] ~docv:"MS" ~doc:"Simulated measurement window per row.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the BENCH_codec.json document here.")
  in
  Cmd.v
    (Cmd.info "codec-bench"
       ~doc:
         "Typed-codec cost: encode/decode ns/op, modeled charge, and simulated Mrps per \
          backend x schema x offload")
    Term.(const run $ iters $ measure $ json_arg $ out $ seed_arg)

(* session-scale *)
let session_scale_cmd =
  let print_row (r : Experiments.Exp_session_scale.result) =
    Printf.printf
      "%6d sessions: %.2f Mrps, p50=%.1f us p99=%.1f us (%d RPCs, %d events, %.2f s)\n"
      r.sessions r.mrps r.lat_p50_us r.lat_p99_us r.completed r.events r.wall_s
  in
  let run sessions sweep measure_ms window seed =
    if sweep then
      List.iter print_row
        (Experiments.Exp_session_scale.sweep ~seed ~window ~measure_ms ())
    else print_row (Experiments.Exp_session_scale.run ~seed ~window ~measure_ms ~sessions ())
  in
  let sessions =
    Arg.(value & opt int 20_000 & info [ "sessions" ] ~docv:"N" ~doc:"Sessions to open.")
  in
  let sweep =
    Arg.(value & flag & info [ "sweep" ] ~doc:"Sweep 100..20,000 sessions instead.")
  in
  let measure =
    Arg.(value & opt float 2.0 & info [ "measure-ms" ] ~docv:"MS" ~doc:"Measured window.")
  in
  let window =
    Arg.(value & opt int 64 & info [ "window" ] ~docv:"N" ~doc:"Requests in flight.")
  in
  Cmd.v
    (Cmd.info "session-scale"
       ~doc:"Fig. 7: one Rpc serving up to 20,000 sessions at constant per-session state")
    Term.(const run $ sessions $ sweep $ measure $ window $ seed_arg)

(* rdma-scalability *)
let rdma_cmd =
  let run connections =
    let r = Rdma.Read_rate.run ~connections () in
    Printf.printf "%d connections: %.1f M reads/s (miss ratio %.2f)\n" r.connections r.rate_mops
      r.miss_ratio
  in
  let conns =
    Arg.(value & opt int 5_000 & info [ "connections" ] ~docv:"N" ~doc:"Connections per NIC.")
  in
  Cmd.v
    (Cmd.info "rdma-scalability" ~doc:"Figure 1: RDMA read rate vs connection count")
    Term.(const run $ conns)

let () =
  let info =
    Cmd.info "erpc_sim" ~version:"1.0"
      ~doc:"Run eRPC-reproduction experiments with open parameters"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            latency_cmd;
            rate_cmd;
            bandwidth_cmd;
            incast_cmd;
            anatomy_cmd;
            trace_cmd;
            scalability_cmd;
            raft_cmd;
            masstree_cmd;
            chaos_cmd;
            kv_chaos_cmd;
            bench_sim_cmd;
            par_bench_cmd;
            sweep_cmd;
            codec_bench_cmd;
            session_scale_cmd;
            rdma_cmd;
            cluster_load_cmd;
            shm_bench_cmd;
          ]))
