(** Wire codec for {!Core.msg} with [string] commands, built on the
    shared {!Codec} schema layer (compact backend; wire bytes identical to
    the original hand-rolled encoder).

    The integration layer (Raft-over-eRPC, §7.1) writes these schemas into
    msgbufs; the Raft core itself never sees the encoding, mirroring how
    LibRaft delegates all marshalling to its user callbacks. *)

(** The message schema, for embedding in larger frames (e.g. the KV
    service's shard-routed Raft frame) or typed-RPC use. *)
val msg_codec : string Core.msg Codec.t

val entry_codec : string Log.entry Codec.t

val encode : string Core.msg -> bytes

(** Raises {!Codec.Decode_error} on malformed input. *)
val decode : bytes -> string Core.msg

(** Encoded size, for sizing buffers without encoding twice. *)
val encoded_size : string Core.msg -> int
