type role = Follower | Candidate | Leader

type 'cmd msg =
  | Request_vote of {
      term : int;
      candidate_id : int;
      last_log_index : int;
      last_log_term : int;
    }
  | Request_vote_resp of { term : int; vote_granted : bool; from : int }
  | Append_entries of {
      term : int;
      leader_id : int;
      prev_log_index : int;
      prev_log_term : int;
      entries : 'cmd Log.entry list;
      leader_commit : int;
    }
  | Append_entries_resp of { term : int; success : bool; from : int; match_index : int }

type config = {
  election_timeout_min_ns : int;
  election_timeout_max_ns : int;
  heartbeat_ns : int;
  max_entries_per_msg : int;
}

let default_config =
  {
    election_timeout_min_ns = 10_000_000;
    election_timeout_max_ns = 20_000_000;
    heartbeat_ns = 2_000_000;
    max_entries_per_msg = 64;
  }

(* Persistent state (paper Figure 2): the core reads and writes the record
   in place, so keeping it across a simulated crash and passing it back to
   [create] models a node restarting from disk. *)
type 'cmd stable = {
  mutable s_term : int;
  mutable s_voted_for : int option;
  s_log : 'cmd Log.t;
}

let stable () = { s_term = 0; s_voted_for = None; s_log = Log.create () }
let stable_term s = s.s_term
let stable_voted_for s = s.s_voted_for
let stable_log s = s.s_log

type 'cmd t = {
  id : int;
  peers : int array;
  cfg : config;
  send : int -> 'cmd msg -> unit;
  apply : int -> 'cmd -> unit;
  random : int -> int;
  notify : unit -> unit;
  stable : 'cmd stable;
  mutable role : role;
  mutable leader : int option;
  mutable commit_index : int;
  mutable last_applied : int;
  mutable election_elapsed : int;
  mutable election_deadline : int;
  mutable heartbeat_elapsed : int;
  mutable votes : int;
  (* Leader replication state, indexed like [peers]. *)
  mutable next_index : int array;
  mutable match_index : int array;
}

let fresh_election_deadline t =
  t.cfg.election_timeout_min_ns
  + t.random (max 1 (t.cfg.election_timeout_max_ns - t.cfg.election_timeout_min_ns))

let create ~id ~peers ?stable:st ?(notify = fun () -> ()) cfg ~send ~apply ~random =
  let st = match st with Some s -> s | None -> stable () in
  let t =
    {
      id;
      peers;
      cfg;
      send;
      apply;
      random;
      notify;
      stable = st;
      role = Follower;
      leader = None;
      commit_index = 0;
      last_applied = 0;
      election_elapsed = 0;
      election_deadline = 0;
      heartbeat_elapsed = 0;
      votes = 0;
      next_index = Array.make (Array.length peers) 1;
      match_index = Array.make (Array.length peers) 0;
    }
  in
  t.election_deadline <- fresh_election_deadline t;
  t

let id t = t.id
let role t = t.role
let term t = t.stable.s_term
let commit_index t = t.commit_index
let last_applied t = t.last_applied
let leader_hint t = t.leader
let log t = t.stable.s_log
let stable_of t = t.stable

(* Role/leadership transitions funnel through these two so that [notify]
   fires exactly when the externally observable leadership view changes. *)
let set_role t role =
  if t.role <> role then begin
    t.role <- role;
    t.notify ()
  end

let set_leader t leader =
  if t.leader <> leader then begin
    t.leader <- leader;
    t.notify ()
  end

let apply_committed t =
  while t.last_applied < t.commit_index do
    t.last_applied <- t.last_applied + 1;
    t.apply t.last_applied (Log.get t.stable.s_log t.last_applied).cmd
  done

let become_follower t term =
  set_role t Follower;
  if term > t.stable.s_term then begin
    t.stable.s_term <- term;
    t.stable.s_voted_for <- None
  end;
  t.election_elapsed <- 0;
  t.election_deadline <- fresh_election_deadline t

let peer_slot t peer =
  let rec go i = if t.peers.(i) = peer then i else go (i + 1) in
  go 0

let send_append_entries t ~peer =
  let slot = peer_slot t peer in
  let next = t.next_index.(slot) in
  let prev = next - 1 in
  let entries = Log.entries_from t.stable.s_log ~from:next ~max:t.cfg.max_entries_per_msg in
  t.send peer
    (Append_entries
       {
         term = t.stable.s_term;
         leader_id = t.id;
         prev_log_index = prev;
         prev_log_term = Log.term_at t.stable.s_log prev;
         entries;
         leader_commit = t.commit_index;
       })

let broadcast_append_entries t = Array.iter (fun p -> send_append_entries t ~peer:p) t.peers

let become_leader t =
  set_role t Leader;
  set_leader t (Some t.id);
  t.heartbeat_elapsed <- 0;
  let last = Log.last_index t.stable.s_log in
  Array.iteri
    (fun i _ ->
      t.next_index.(i) <- last + 1;
      t.match_index.(i) <- 0)
    t.peers;
  broadcast_append_entries t

let start_election t =
  set_role t Candidate;
  t.stable.s_term <- t.stable.s_term + 1;
  t.stable.s_voted_for <- Some t.id;
  t.votes <- 1;
  set_leader t None;
  t.election_elapsed <- 0;
  t.election_deadline <- fresh_election_deadline t;
  let last_log_index = Log.last_index t.stable.s_log in
  let last_log_term = Log.last_term t.stable.s_log in
  Array.iter
    (fun p ->
      t.send p
        (Request_vote
           { term = t.stable.s_term; candidate_id = t.id; last_log_index; last_log_term }))
    t.peers;
  (* Single-node group: immediately a leader. *)
  if Array.length t.peers = 0 then become_leader t

(* Median match index across the cluster = highest index replicated on a
   majority. Only entries of the current term commit directly (§5.4.2). *)
let try_advance_commit t =
  let n = Array.length t.peers + 1 in
  let matches = Array.make n (Log.last_index t.stable.s_log) in
  Array.blit t.match_index 0 matches 1 (Array.length t.peers);
  Array.sort compare matches;
  let majority_match = matches.(n - ((n / 2) + 1)) in
  if
    majority_match > t.commit_index
    && Log.term_at t.stable.s_log majority_match = t.stable.s_term
  then begin
    t.commit_index <- majority_match;
    apply_committed t
  end

let handle_request_vote t ~term ~candidate_id ~last_log_index ~last_log_term =
  if term > t.stable.s_term then become_follower t term;
  let up_to_date =
    last_log_term > Log.last_term t.stable.s_log
    || (last_log_term = Log.last_term t.stable.s_log
       && last_log_index >= Log.last_index t.stable.s_log)
  in
  let grant =
    term >= t.stable.s_term && up_to_date
    && (match t.stable.s_voted_for with None -> true | Some v -> v = candidate_id)
  in
  if grant then begin
    t.stable.s_voted_for <- Some candidate_id;
    t.election_elapsed <- 0
  end;
  t.send candidate_id
    (Request_vote_resp { term = t.stable.s_term; vote_granted = grant; from = t.id })

let handle_vote_resp t ~term ~vote_granted ~from:_ =
  if term > t.stable.s_term then become_follower t term
  else if t.role = Candidate && term = t.stable.s_term && vote_granted then begin
    t.votes <- t.votes + 1;
    let majority = ((Array.length t.peers + 1) / 2) + 1 in
    if t.votes >= majority then become_leader t
  end

let handle_append_entries t ~term ~leader_id ~prev_log_index ~prev_log_term ~entries
    ~leader_commit =
  if term < t.stable.s_term then
    t.send leader_id
      (Append_entries_resp
         { term = t.stable.s_term; success = false; from = t.id; match_index = 0 })
  else begin
    become_follower t term;
    set_leader t (Some leader_id);
    let log = t.stable.s_log in
    let log_ok =
      prev_log_index <= Log.last_index log && Log.term_at log prev_log_index = prev_log_term
    in
    if not log_ok then
      t.send leader_id
        (Append_entries_resp
           { term = t.stable.s_term; success = false; from = t.id; match_index = 0 })
    else begin
      (* Append entries, resolving conflicts by truncation. *)
      let idx = ref prev_log_index in
      List.iter
        (fun (entry : _ Log.entry) ->
          incr idx;
          if !idx <= Log.last_index log then begin
            if Log.term_at log !idx <> entry.term then begin
              Log.truncate_from log !idx;
              ignore (Log.append log entry)
            end
          end
          else ignore (Log.append log entry))
        entries;
      let match_index = !idx in
      if leader_commit > t.commit_index then begin
        t.commit_index <- min leader_commit match_index;
        apply_committed t
      end;
      t.send leader_id
        (Append_entries_resp
           { term = t.stable.s_term; success = true; from = t.id; match_index })
    end
  end

let handle_append_resp t ~term ~success ~from ~match_index =
  if term > t.stable.s_term then become_follower t term
  else if t.role = Leader && term = t.stable.s_term then begin
    let slot = peer_slot t from in
    if success then begin
      if match_index > t.match_index.(slot) then t.match_index.(slot) <- match_index;
      t.next_index.(slot) <- max t.next_index.(slot) (match_index + 1);
      try_advance_commit t;
      (* Keep streaming if the follower is still behind. *)
      if t.next_index.(slot) <= Log.last_index t.stable.s_log then
        send_append_entries t ~peer:from
    end
    else begin
      (* Log mismatch: back off and retry. *)
      t.next_index.(slot) <- max 1 (t.next_index.(slot) - 1);
      send_append_entries t ~peer:from
    end
  end

let receive t msg =
  match msg with
  | Request_vote { term; candidate_id; last_log_index; last_log_term } ->
      handle_request_vote t ~term ~candidate_id ~last_log_index ~last_log_term
  | Request_vote_resp { term; vote_granted; from } -> handle_vote_resp t ~term ~vote_granted ~from
  | Append_entries { term; leader_id; prev_log_index; prev_log_term; entries; leader_commit } ->
      handle_append_entries t ~term ~leader_id ~prev_log_index ~prev_log_term ~entries
        ~leader_commit
  | Append_entries_resp { term; success; from; match_index } ->
      handle_append_resp t ~term ~success ~from ~match_index

let periodic t ~elapsed_ns =
  match t.role with
  | Leader ->
      t.heartbeat_elapsed <- t.heartbeat_elapsed + elapsed_ns;
      if t.heartbeat_elapsed >= t.cfg.heartbeat_ns then begin
        t.heartbeat_elapsed <- 0;
        broadcast_append_entries t
      end
  | Follower | Candidate ->
      t.election_elapsed <- t.election_elapsed + elapsed_ns;
      if t.election_elapsed >= t.election_deadline then start_election t

let submit t cmd =
  match t.role with
  | Leader ->
      let index = Log.append t.stable.s_log { term = t.stable.s_term; cmd } in
      broadcast_append_entries t;
      (* Single-node group commits immediately. *)
      try_advance_commit t;
      Ok index
  | Follower | Candidate -> Error (`Not_leader t.leader)
