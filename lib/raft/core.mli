(** Raft consensus core (Ongaro & Ousterhout, ATC '14), modeled on the C
    LibRaft the paper ports to eRPC (§7.1): the protocol is a pure state
    machine whose only requirement is that "the user provide callbacks for
    sending and handling RPCs". Time advances only through [periodic], and
    randomness comes from a caller-supplied source — there are no
    dependencies on the simulator, so integrations (our eRPC one included)
    need no changes to this module.

    Scope: leader election, log replication and commitment, and follower
    log repair. Log compaction/snapshots and membership changes are out of
    scope, as in the paper's evaluation. *)

type role = Follower | Candidate | Leader

type 'cmd msg =
  | Request_vote of {
      term : int;
      candidate_id : int;
      last_log_index : int;
      last_log_term : int;
    }
  | Request_vote_resp of { term : int; vote_granted : bool; from : int }
  | Append_entries of {
      term : int;
      leader_id : int;
      prev_log_index : int;
      prev_log_term : int;
      entries : 'cmd Log.entry list;
      leader_commit : int;
    }
  | Append_entries_resp of { term : int; success : bool; from : int; match_index : int }

type config = {
  election_timeout_min_ns : int;
  election_timeout_max_ns : int;
  heartbeat_ns : int;
  max_entries_per_msg : int;
}

val default_config : config

(** {2 Stable storage}

    Raft's safety argument requires [currentTerm], [votedFor] and the log
    to survive crashes (Figure 2 of the paper: "persistent state"). A
    {!stable} record models that disk: the core reads and writes it in
    place, so an integration that keeps the record across a simulated
    crash and passes it back to {!create} restarts the node exactly where
    stable storage left it — as a follower, with volatile state
    (commit index, role, leadership) rebuilt through the protocol. *)
type 'cmd stable

(** Fresh, empty stable storage (term 0, no vote, empty log). *)
val stable : unit -> 'cmd stable

val stable_term : 'cmd stable -> int
val stable_voted_for : 'cmd stable -> int option
val stable_log : 'cmd stable -> 'cmd Log.t

type 'cmd t

(** [create ~id ~peers cfg ~send ~apply ~random] — [send dst msg] transmits
    a message (the integration layer serializes it however it likes);
    [apply index cmd] is invoked exactly once per committed entry, in index
    order; [random n] returns a uniform int in [0, n) for election
    jitter.

    [?stable] supplies persistent state from a previous incarnation (see
    {!stable}); omitting it is a first boot. [?notify] is invoked whenever
    the node's role or its view of the current leader changes — the hook
    replication services use to fail over pending client operations and
    publish leadership to clients. It must not call back into the core. *)
val create :
  id:int ->
  peers:int array ->
  ?stable:'cmd stable ->
  ?notify:(unit -> unit) ->
  config ->
  send:(int -> 'cmd msg -> unit) ->
  apply:(int -> 'cmd -> unit) ->
  random:(int -> int) ->
  'cmd t

val id : 'cmd t -> int
val role : 'cmd t -> role
val term : 'cmd t -> int
val commit_index : 'cmd t -> int
val last_applied : 'cmd t -> int

(** The node's stable storage — the same record passed to (or created by)
    {!create}. Keep it across a crash and pass it to the next
    incarnation's {!create}. *)
val stable_of : 'cmd t -> 'cmd stable

(** Current leader as known locally, if any. *)
val leader_hint : 'cmd t -> int option

val log : 'cmd t -> 'cmd Log.t

(** Feed an incoming message. *)
val receive : 'cmd t -> 'cmd msg -> unit

(** Advance protocol time: election timeouts and heartbeats. Call
    regularly (LibRaft's [raft_periodic]). *)
val periodic : 'cmd t -> elapsed_ns:int -> unit

(** Submit a command. On the leader, appends and replicates immediately,
    returning the entry's log index. *)
val submit : 'cmd t -> 'cmd -> (int, [ `Not_leader of int option ]) result
