(* Wire layout (unchanged from the hand-rolled encoder): 1-byte tag, then
   little-endian u32/u8 fields. Entries are (u32 term, u32 length, bytes)
   with no count prefix, read to the end of the message. *)

let entry_codec : string Log.entry Codec.t =
  Codec.map
    ~into:(fun (term, cmd) -> { Log.term; cmd })
    ~from:(fun (e : string Log.entry) -> (e.term, e.cmd))
    (Codec.pair Codec.u32 Codec.string)

let msg_codec : string Core.msg Codec.t =
  let open Codec in
  let rv =
    case ~tag:0
      (pair (pair u32 u32) (pair u32 u32))
      ~inj:(fun ((term, candidate_id), (last_log_index, last_log_term)) ->
        Core.Request_vote { term; candidate_id; last_log_index; last_log_term })
      ~proj:(function
        | Core.Request_vote { term; candidate_id; last_log_index; last_log_term } ->
            Some ((term, candidate_id), (last_log_index, last_log_term))
        | _ -> None)
  in
  let rvr =
    case ~tag:1 (triple u32 bool u32)
      ~inj:(fun (term, vote_granted, from) ->
        Core.Request_vote_resp { term; vote_granted; from })
      ~proj:(function
        | Core.Request_vote_resp { term; vote_granted; from } ->
            Some (term, vote_granted, from)
        | _ -> None)
  in
  let ae =
    case ~tag:2
      (pair (pair (pair u32 u32) (pair u32 u32)) (pair u32 (tail_list entry_codec)))
      ~inj:(fun
          (((term, leader_id), (prev_log_index, prev_log_term)), (leader_commit, entries)) ->
        Core.Append_entries
          { term; leader_id; prev_log_index; prev_log_term; leader_commit; entries })
      ~proj:(function
        | Core.Append_entries
            { term; leader_id; prev_log_index; prev_log_term; leader_commit; entries } ->
            Some
              (((term, leader_id), (prev_log_index, prev_log_term)), (leader_commit, entries))
        | _ -> None)
  in
  let aer =
    case ~tag:3
      (pair (triple u32 bool u32) u32)
      ~inj:(fun ((term, success, from), match_index) ->
        Core.Append_entries_resp { term; success; from; match_index })
      ~proj:(function
        | Core.Append_entries_resp { term; success; from; match_index } ->
            Some ((term, success, from), match_index)
        | _ -> None)
  in
  variant ~name:"Raft.Wire.msg" [ rv; rvr; ae; aer ]

let encoded_size msg = Codec.size msg_codec msg
let encode msg = Codec.to_bytes msg_codec msg
let decode b = Codec.of_bytes msg_codec b
