type t = {
  fabric : Erpc.Fabric.t;
  net : Netsim.Network.t;
  engine : Sim.Engine.t;
  trace : Trace.t;
  link_depth : (int, int) Hashtbl.t;
  partition_depth : (int * int, int) Hashtbl.t;
  mutable corrupt_active : float list;
  mutable dup_active : float list;
  mutable reorder_active : (float * int) list;
  jitter_active : (int, int list) Hashtbl.t;
  mutable corrupt_seq : int;
  mutable injected : int;
}

let create ?(trace = Trace.create ()) fabric =
  let net = Erpc.Fabric.net fabric in
  let t =
    {
      fabric;
      net;
      engine = Erpc.Fabric.engine fabric;
      trace;
      link_depth = Hashtbl.create 8;
      partition_depth = Hashtbl.create 8;
      corrupt_active = [];
      dup_active = [];
      reorder_active = [];
      jitter_active = Hashtbl.create 8;
      corrupt_seq = 0;
      injected = 0;
    }
  in
  (* Payload-aware corruption: flip a real payload bit (varying per packet)
     so the wire checksum is genuinely exercised, not just a flag check. *)
  Netsim.Network.set_corrupter net (fun pkt ->
      t.corrupt_seq <- t.corrupt_seq + 1;
      Erpc.Wire.corrupt ~bit:(7 * t.corrupt_seq) pkt);
  t

let trace t = t.trace
let injected t = t.injected
let note t msg = Trace.record t.trace ~at_ns:(Sim.Engine.now t.engine) msg
let after t d f = Sim.Engine.schedule_after t.engine d f

let rec remove_one x = function
  | [] -> []
  | y :: tl -> if y = x then tl else y :: remove_one x tl

(* Overlapping events targeting the same resource are refcounted: a link
   comes back up only when every [Link_down]/flap cycle covering it has
   expired, and a probability knob resets only when its last interval
   ends (until then the strongest active interval wins). *)

let link_down t host =
  let d = Option.value ~default:0 (Hashtbl.find_opt t.link_depth host) in
  Hashtbl.replace t.link_depth host (d + 1);
  if d = 0 then Netsim.Network.set_host_link t.net ~host false

let link_up t host =
  match Hashtbl.find_opt t.link_depth host with
  | None | Some 0 -> ()
  | Some d ->
      Hashtbl.replace t.link_depth host (d - 1);
      if d = 1 then Netsim.Network.set_host_link t.net ~host true

let norm_pair a b = if a <= b then (a, b) else (b, a)

let partition t tor_a tor_b =
  let key = norm_pair tor_a tor_b in
  let d = Option.value ~default:0 (Hashtbl.find_opt t.partition_depth key) in
  Hashtbl.replace t.partition_depth key (d + 1);
  if d = 0 then Netsim.Network.set_partition t.net ~tor_a ~tor_b true

let heal t tor_a tor_b =
  let key = norm_pair tor_a tor_b in
  match Hashtbl.find_opt t.partition_depth key with
  | None | Some 0 -> ()
  | Some d ->
      Hashtbl.replace t.partition_depth key (d - 1);
      if d = 1 then Netsim.Network.set_partition t.net ~tor_a ~tor_b false

let refresh_corrupt t =
  Netsim.Network.set_corrupt_prob t.net (List.fold_left Stdlib.max 0.0 t.corrupt_active)

let refresh_dup t =
  Netsim.Network.set_dup_prob t.net (List.fold_left Stdlib.max 0.0 t.dup_active)

let refresh_reorder t =
  let prob, max_delay_ns =
    List.fold_left
      (fun (bp, bd) (p, d) -> if p > bp then (p, d) else (bp, bd))
      (0.0, 0) t.reorder_active
  in
  Netsim.Network.set_reorder t.net ~prob ~max_delay_ns

let refresh_jitter t host =
  let extras = Option.value ~default:[] (Hashtbl.find_opt t.jitter_active host) in
  Netsim.Network.set_host_extra_delay t.net ~host (List.fold_left Stdlib.max 0 extras)

let apply t (ev : Schedule.event) =
  t.injected <- t.injected + 1;
  note t ("inject " ^ Schedule.fault_to_string ev.fault);
  match ev.fault with
  | Link_down { host; down_ns } ->
      link_down t host;
      after t down_ns (fun () ->
          note t (Printf.sprintf "restore link host=%d" host);
          link_up t host)
  | Link_flap { host; period_ns; cycles } ->
      for i = 0 to cycles - 1 do
        after t (i * period_ns) (fun () -> link_down t host);
        after t ((i * period_ns) + Stdlib.max 1 (period_ns / 2)) (fun () -> link_up t host)
      done;
      after t (cycles * period_ns) (fun () ->
          note t (Printf.sprintf "flap done host=%d" host))
  | Partition { tor_a; tor_b; heal_ns } ->
      partition t tor_a tor_b;
      after t heal_ns (fun () ->
          note t (Printf.sprintf "heal partition tors=%d,%d" tor_a tor_b);
          heal t tor_a tor_b)
  | Corrupt { prob; duration_ns } ->
      t.corrupt_active <- prob :: t.corrupt_active;
      refresh_corrupt t;
      after t duration_ns (fun () ->
          note t "corrupt off";
          t.corrupt_active <- remove_one prob t.corrupt_active;
          refresh_corrupt t)
  | Duplicate { prob; duration_ns } ->
      t.dup_active <- prob :: t.dup_active;
      refresh_dup t;
      after t duration_ns (fun () ->
          note t "duplicate off";
          t.dup_active <- remove_one prob t.dup_active;
          refresh_dup t)
  | Reorder { prob; max_delay_ns; duration_ns } ->
      t.reorder_active <- (prob, max_delay_ns) :: t.reorder_active;
      refresh_reorder t;
      after t duration_ns (fun () ->
          note t "reorder off";
          t.reorder_active <- remove_one (prob, max_delay_ns) t.reorder_active;
          refresh_reorder t)
  | Jitter { host; extra_ns; duration_ns } ->
      Hashtbl.replace t.jitter_active host
        (extra_ns :: Option.value ~default:[] (Hashtbl.find_opt t.jitter_active host));
      refresh_jitter t host;
      after t duration_ns (fun () ->
          note t (Printf.sprintf "jitter off host=%d" host);
          Hashtbl.replace t.jitter_active host
            (remove_one extra_ns
               (Option.value ~default:[] (Hashtbl.find_opt t.jitter_active host)));
          refresh_jitter t host)
  | Crash { host; down_ns } -> Erpc.Fabric.crash_host t.fabric host ~down_ns
  | Drop_nth { n } -> Netsim.Network.arm_drop_nth t.net n

let install t schedule =
  let base = Sim.Engine.now t.engine in
  List.iter
    (fun (ev : Schedule.event) ->
      Sim.Engine.schedule t.engine (Sim.Time.add base ev.at_ns) (fun () -> apply t ev))
    (Schedule.sort schedule)
