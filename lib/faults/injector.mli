(** Compiles a {!Schedule} into simulator events against a deployment.

    Each schedule event is scheduled (relative to install time) to apply
    its fault and, where the fault has a duration, to revert it. Every
    application and reversion is stamped into the injector's {!Trace}, so
    two runs of the same seed can be compared byte-for-byte.

    Overlapping events on the same resource compose safely: link state is
    refcounted and probability knobs keep the strongest active interval
    until the last one expires.

    Creating an injector installs a payload-aware corrupter into the
    network (see {!Netsim.Network.set_corrupter}): chosen packets get a
    real payload bit flipped — varying per packet — so receivers' wire
    checksums are exercised rather than a mere "corrupted" flag. *)

type t

val create : ?trace:Trace.t -> Erpc.Fabric.t -> t

(** Schedule every event of the fault schedule, relative to now. *)
val install : t -> Schedule.t -> unit

val trace : t -> Trace.t

(** Schedule events applied so far. *)
val injected : t -> int
