type fault =
  | Link_down of { host : int; down_ns : int }
  | Link_flap of { host : int; period_ns : int; cycles : int }
  | Partition of { tor_a : int; tor_b : int; heal_ns : int }
  | Corrupt of { prob : float; duration_ns : int }
  | Duplicate of { prob : float; duration_ns : int }
  | Reorder of { prob : float; max_delay_ns : int; duration_ns : int }
  | Jitter of { host : int; extra_ns : int; duration_ns : int }
  | Crash of { host : int; down_ns : int }
  | Drop_nth of { n : int }

type event = { at_ns : int; fault : fault }
type t = event list

let fault_to_string = function
  | Link_down { host; down_ns } -> Printf.sprintf "link_down host=%d down=%d" host down_ns
  | Link_flap { host; period_ns; cycles } ->
      Printf.sprintf "link_flap host=%d period=%d cycles=%d" host period_ns cycles
  | Partition { tor_a; tor_b; heal_ns } ->
      Printf.sprintf "partition tors=%d,%d heal=%d" tor_a tor_b heal_ns
  | Corrupt { prob; duration_ns } -> Printf.sprintf "corrupt p=%.3f dur=%d" prob duration_ns
  | Duplicate { prob; duration_ns } ->
      Printf.sprintf "duplicate p=%.3f dur=%d" prob duration_ns
  | Reorder { prob; max_delay_ns; duration_ns } ->
      Printf.sprintf "reorder p=%.3f max_delay=%d dur=%d" prob max_delay_ns duration_ns
  | Jitter { host; extra_ns; duration_ns } ->
      Printf.sprintf "jitter host=%d extra=%d dur=%d" host extra_ns duration_ns
  | Crash { host; down_ns } -> Printf.sprintf "crash host=%d down=%d" host down_ns
  | Drop_nth { n } -> Printf.sprintf "drop_nth n=%d" n

let fault_kind = function
  | Link_down _ -> "link_down"
  | Link_flap _ -> "link_flap"
  | Partition _ -> "partition"
  | Corrupt _ -> "corrupt"
  | Duplicate _ -> "duplicate"
  | Reorder _ -> "reorder"
  | Jitter _ -> "jitter"
  | Crash _ -> "crash"
  | Drop_nth _ -> "drop_nth"

let num_kinds t =
  List.sort_uniq compare (List.map (fun ev -> fault_kind ev.fault) t) |> List.length

let sort t = List.stable_sort (fun a b -> compare a.at_ns b.at_ns) t

let pp_event fmt ev = Format.fprintf fmt "@%d %s" ev.at_ns (fault_to_string ev.fault)

let pp fmt t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_event fmt (sort t)

(* Random schedule generation. Every draw comes from one splitmix64 stream
   seeded by [seed], so the schedule is a pure function of its arguments —
   rerunning a seed reproduces the exact fault sequence. Durations are kept
   short relative to [horizon_ns] so the network heals and traffic can
   quiesce; crash downtimes are chosen both below and above the SM failure
   timeout so schedules exercise both the detected-failure and the
   silent-restart recovery paths. *)
let random ~seed ~horizon_ns ~events ~hosts ~tors =
  if events < 0 then invalid_arg "Schedule.random: negative event count";
  if hosts < 1 then invalid_arg "Schedule.random: need at least one host";
  let rng = Sim.Rng.create seed in
  let duration () = 1 + Sim.Rng.int rng (Stdlib.max 1 (horizon_ns / 8)) in
  let host () = Sim.Rng.int rng hosts in
  let gen _ =
    let at_ns = Sim.Rng.int rng (Stdlib.max 1 (horizon_ns * 3 / 4)) in
    let fault =
      match Sim.Rng.int rng 9 with
      | 0 -> Link_down { host = host (); down_ns = duration () }
      | 1 ->
          Link_flap
            {
              host = host ();
              period_ns = Stdlib.max 2 (duration () / 4);
              cycles = 2 + Sim.Rng.int rng 3;
            }
      | 2 when tors > 1 ->
          let a = Sim.Rng.int rng tors in
          let b = (a + 1 + Sim.Rng.int rng (tors - 1)) mod tors in
          Partition { tor_a = a; tor_b = b; heal_ns = duration () }
      | 3 ->
          Corrupt { prob = 0.01 +. (0.1 *. Sim.Rng.float rng); duration_ns = duration () }
      | 4 ->
          Duplicate { prob = 0.02 +. (0.15 *. Sim.Rng.float rng); duration_ns = duration () }
      | 5 ->
          Reorder
            {
              prob = 0.05 +. (0.2 *. Sim.Rng.float rng);
              max_delay_ns = 500 + Sim.Rng.int rng 5_000;
              duration_ns = duration ();
            }
      | 6 ->
          Jitter
            {
              host = host ();
              extra_ns = 1_000 + Sim.Rng.int rng 20_000;
              duration_ns = duration ();
            }
      | 7 -> Crash { host = host (); down_ns = duration () }
      | _ -> Drop_nth { n = 1 + Sim.Rng.int rng 50 }
    in
    { at_ns; fault }
  in
  sort (List.init events gen)
