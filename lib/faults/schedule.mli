(** Declarative fault schedules: [at t, inject fault f (for duration d)].

    A schedule is data, not behavior — the {!Injector} compiles it into
    simulator events against a deployment. Keeping the two separate makes
    schedules printable, comparable and generatable from a seed, which is
    what the chaos harness's determinism contract is built on. *)

type fault =
  | Link_down of { host : int; down_ns : int }
      (** access link down, restored after [down_ns] *)
  | Link_flap of { host : int; period_ns : int; cycles : int }
      (** [cycles] down/up cycles: down for [period_ns / 2], up for the
          rest of each period *)
  | Partition of { tor_a : int; tor_b : int; heal_ns : int }
      (** sever the ToR pair, heal after [heal_ns] *)
  | Corrupt of { prob : float; duration_ns : int }
      (** per-delivery bit-corruption probability while active *)
  | Duplicate of { prob : float; duration_ns : int }
  | Reorder of { prob : float; max_delay_ns : int; duration_ns : int }
      (** bounded reordering: delayed packets are overtaken by later ones *)
  | Jitter of { host : int; extra_ns : int; duration_ns : int }
      (** delay spike on every delivery at [host] *)
  | Crash of { host : int; down_ns : int }
      (** crash-with-restart; the host loses all session state *)
  | Drop_nth of { n : int }  (** drop the n-th next delivery, counted from the event time *)

type event = { at_ns : int; fault : fault }
type t = event list

val fault_to_string : fault -> string

(** Stable kind tag ("crash", "corrupt", ...), for coverage accounting. *)
val fault_kind : fault -> string

(** Distinct fault kinds present in the schedule. *)
val num_kinds : t -> int

(** Stable sort by injection time. *)
val sort : t -> t

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

(** [random ~seed ~horizon_ns ~events ~hosts ~tors] draws [events] faults
    with injection times in the first three quarters of [horizon_ns] and
    durations at most an eighth of it (so the run can quiesce). The result
    is a pure function of the arguments. *)
val random : seed:int64 -> horizon_ns:int -> events:int -> hosts:int -> tors:int -> t
