type t = { mutable entries : (int * string) list; mutable n : int }

let create () = { entries = []; n = 0 }

let record t ~at_ns msg =
  t.entries <- (at_ns, msg) :: t.entries;
  t.n <- t.n + 1

let length t = t.n
let entries t = List.rev t.entries

let to_string t =
  let buf = Buffer.create (64 * t.n) in
  List.iter
    (fun (at, msg) ->
      Buffer.add_string buf (string_of_int at);
      Buffer.add_char buf ' ';
      Buffer.add_string buf msg;
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let pp fmt t =
  List.iter (fun (at, msg) -> Format.fprintf fmt "%d %s@." at msg) (entries t)
