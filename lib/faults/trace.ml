(* The fault trace is now a view over the unified Obs event log: fault
   applications/reversions and harness checkpoints are instants in the
   "faults" category, so a chaos run's fault timeline and its packet-level
   trace share one buffer and one code path. The canonical [to_string]
   rendering (one "<ns> <message>" line per entry) is unchanged, preserving
   the byte-identical-trace determinism contract chaos reruns compare. *)

type t = Obs.Trace.t

(* Large enough that no chaos scenario evicts fault entries; eviction would
   silently break byte-equality between runs of different lengths. *)
let create ?(capacity = 1 lsl 16) () = Obs.Trace.create ~capacity ()

let of_obs t = t
let to_obs t = t

let record t ~at_ns msg =
  Obs.Trace.instant t ~ts:at_ns ~cat:"faults" ~name:msg ~pid:0 ~tid:0 []

let entries t =
  List.filter_map
    (fun (e : Obs.Trace.ev) ->
      if e.cat = "faults" then Some (e.ts, e.name) else None)
    (Obs.Trace.events t)

let length t =
  let n = ref 0 in
  Obs.Trace.iter t (fun e -> if e.cat = "faults" then incr n);
  !n

let to_string t =
  let buf = Buffer.create 1024 in
  Obs.Trace.iter t (fun e ->
      if e.cat = "faults" then begin
        Buffer.add_string buf (string_of_int e.ts);
        Buffer.add_char buf ' ';
        Buffer.add_string buf e.name;
        Buffer.add_char buf '\n'
      end);
  Buffer.contents buf

let pp fmt t =
  List.iter (fun (at, msg) -> Format.fprintf fmt "%d %s@." at msg) (entries t)
