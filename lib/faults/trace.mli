(** Append-only event trace with simulated-time stamps.

    The determinism contract of the fault framework is expressed over
    traces: running the same schedule against the same seeded deployment
    must produce a byte-identical [to_string]. Both the {!Injector} (fault
    applications and reversions) and harnesses (request completions,
    invariant checkpoints) write into the same trace. *)

type t

val create : unit -> t
val record : t -> at_ns:int -> string -> unit
val length : t -> int

(** Entries in recording order. *)
val entries : t -> (int * string) list

(** Canonical one-entry-per-line rendering, used for byte equality. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
