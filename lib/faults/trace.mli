(** Fault-event trace with simulated-time stamps — a "faults"-category view
    over the unified {!Obs.Trace} event log.

    The determinism contract of the fault framework is expressed over
    traces: running the same schedule against the same seeded deployment
    must produce a byte-identical [to_string]. Both the {!Injector} (fault
    applications and reversions) and harnesses (request completions,
    invariant checkpoints) write into the same trace; because the type is
    an {!Obs.Trace.t}, the same buffer can simultaneously collect packet,
    sslot and CC events and export everything as one Chrome trace. *)

type t = Obs.Trace.t

val create : ?capacity:int -> unit -> t
(** An enabled event trace (default capacity 2^16 events). *)

val of_obs : Obs.Trace.t -> t
val to_obs : t -> Obs.Trace.t

val record : t -> at_ns:int -> string -> unit
(** Record a fault event: an instant in category ["faults"]. *)

val length : t -> int
(** Number of fault entries (other categories are not counted). *)

(** Fault entries in recording order. *)
val entries : t -> (int * string) list

(** Canonical one-entry-per-line rendering, used for byte equality. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
