(** Lossless RC transport ([Transport.Iface.S] over the RDMA machinery).

    The InfiniBand-style datapath (paper §3): deterministic TX/RX pipeline
    latencies derived from {!Qp.default_config}, a {!Conn_cache} lookup on
    every TX (a miss adds [conn_miss_ns] while connection state is fetched
    over PCIe — the Figure-1 connection-scalability effect), and link-level
    flow control, so the transport itself never drops a packet.

    [cache] shares a connection cache between endpoints on the same NIC;
    by default each endpoint gets its own 450-entry cache. *)

val create :
  ?conn_miss_ns:int ->
  ?cache:Conn_cache.t ->
  Sim.Engine.t ->
  Netsim.Network.t ->
  host:int ->
  Transport.Cluster.t ->
  Transport.Iface.t
