(* Lossless RC transport: the InfiniBand-style datapath of paper §3.

   Reuses the RDMA layer's machinery rather than the userspace-NIC model:
   per-packet TX/RX latencies come from the verbs-endpoint timing
   ({!Qp.default_config}: the UD-path NIC latencies minus the RDMA
   hardware-path delta, with RX jitter collapsed to its mean — the RC
   pipeline is deterministic), and TX passes through the NIC's
   connection-state cache ({!Conn_cache}): a miss stalls the descriptor
   while connection state is fetched from host memory over PCIe, the
   Figure-1 scalability cliff.

   Lossless means link-level flow control: the fabric never drops for
   want of a receive descriptor, so [rx_dropped] is always 0 and arriving
   packets are delivered even when the RQ is momentarily behind. Loss
   injected by the network model (corruption, partitions, switch faults)
   still reaches the protocol, which recovers exactly as over the lossy
   transport. *)

module Impl = struct
  type t = {
    engine : Sim.Engine.t;
    net : Netsim.Network.t;
    host : int;
    mtu : int;
    rq_size_ : int;
    tx_ns : int;
    rx_ns : int;
    tx_flush_ns : int;
    conn_miss_ns : int;
    cache : Conn_cache.t;
    rx_ring : Netsim.Packet.t Sim.Ring.t;
    (* FIFO pipelines consumed by the preallocated [rx_done]/[tx_done]
       events: the per-packet hops allocate no closures. *)
    rx_fly : Netsim.Packet.t Sim.Ring.t;
    tx_fly : Netsim.Packet.t Sim.Ring.t;
    mutable rx_done : unit -> unit;
    mutable tx_done : unit -> unit;
    mutable rx_notify : unit -> unit;
    mutable rx_last_delivery : Sim.Time.t;
    mutable tx_last_enter : Sim.Time.t;
    mutable tx_last_done : Sim.Time.t;
    mutable tx_pending_ : int;
    stride : int;
    replenish_unit_ns : int;
    mutable replenish_partial : int;
    mutable rx_packets_ : int;
    mutable tx_packets_ : int;
    trace : Obs.Trace.t;
    pid : int;
    tid : int;  (* the host's "nic" device track *)
  }

  let kind = "rdma_rc"
  let lossless _ = true
  let max_data_per_pkt t = t.mtu
  let rq_size t = t.rq_size_

  let tx_complete t =
    let pkt = Sim.Ring.take t.tx_fly in
    t.tx_pending_ <- t.tx_pending_ - 1;
    Netsim.Network.send t.net pkt

  let tx_burst t pkt =
    (* Connection-state lookup in NIC SRAM; a miss fetches ~375 B of RC
       state over PCIe before the descriptor can be processed. *)
    let hit = Conn_cache.access t.cache ((t.host * 65_537) + pkt.Netsim.Packet.dst) in
    let lat = t.tx_ns + if hit then 0 else t.conn_miss_ns in
    t.tx_pending_ <- t.tx_pending_ + 1;
    t.tx_packets_ <- t.tx_packets_ + 1;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"nic" ~name:"tx"
        ~pid:t.pid ~tid:t.tid
        [ ("id", Obs.Trace.I pkt.Netsim.Packet.trace_id) ];
    let now = Sim.Engine.now t.engine in
    (* Descriptors enter the wire in post order even when a hit follows a
       miss: the send queue is FIFO. *)
    let enter = max (Sim.Time.add now lat) t.tx_last_enter in
    t.tx_last_enter <- enter;
    if enter > t.tx_last_done then t.tx_last_done <- enter;
    Sim.Ring.push t.tx_fly pkt;
    Sim.Engine.schedule t.engine enter t.tx_done

  let tx_pending t = t.tx_pending_

  let flush_time_ns t =
    let now = Sim.Engine.now t.engine in
    let wait = if t.tx_pending_ > 0 then max 0 (Sim.Time.sub t.tx_last_done now) else 0 in
    wait + t.tx_flush_ns

  let rx_burst t ~max f =
    let n = ref 0 in
    while !n < max && not (Sim.Ring.is_empty t.rx_ring) do
      incr n;
      f (Sim.Ring.take t.rx_ring)
    done;
    !n

  let rx_ring_depth t = Sim.Ring.length t.rx_ring
  let set_rx_notify t f = t.rx_notify <- f

  let replenish_rx t n =
    assert (n >= 0);
    (* RECVs are re-posted in multi-packet strides like the UD path; the
       cost is the same amortized descriptor work. *)
    let total = t.replenish_partial + n in
    let posts = total / t.stride in
    t.replenish_partial <- total mod t.stride;
    posts * t.replenish_unit_ns

  let rx_complete t =
    let pkt = Sim.Ring.take t.rx_fly in
    t.rx_packets_ <- t.rx_packets_ + 1;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"nic" ~name:"rx"
        ~pid:t.pid ~tid:t.tid
        [ ("id", Obs.Trace.I pkt.Netsim.Packet.trace_id) ];
    let was_empty = Sim.Ring.is_empty t.rx_ring in
    Sim.Ring.push t.rx_ring pkt;
    if was_empty then t.rx_notify ()

  let receive t pkt =
    (* Fixed RX pipeline delay, FIFO delivery, and — lossless — never a
       drop: link-level flow control backpressures the sender instead. *)
    let now = Sim.Engine.now t.engine in
    let at = max (Sim.Time.add now t.rx_ns) t.rx_last_delivery in
    t.rx_last_delivery <- at;
    Sim.Ring.push t.rx_fly pkt;
    Sim.Engine.schedule t.engine at t.rx_done

  let reset_rx t =
    while not (Sim.Ring.is_empty t.rx_ring) do
      Netsim.Packet.free (Sim.Ring.take t.rx_ring)
    done;
    t.replenish_partial <- 0

  let rx_packets t = t.rx_packets_
  let tx_packets t = t.tx_packets_
  let rx_dropped (_ : t) = 0
end

let create ?(conn_miss_ns = 120) ?cache engine net ~host (cluster : Transport.Cluster.t) =
  let qp = Qp.default_config cluster in
  let nic = cluster.nic_config in
  let trace = Sim.Engine.trace engine in
  let pid = Obs.Trace.host_pid host in
  Obs.Trace.register_process trace ~pid (Printf.sprintf "host%d" host);
  let tid = Obs.Trace.register_track trace ~pid "nic" in
  let t =
    {
      Impl.engine;
      net;
      host;
      mtu = cluster.mtu;
      rq_size_ = nic.Nic.rq_size;
      tx_ns = qp.Qp.nic_tx_ns;
      rx_ns = qp.Qp.nic_rx_ns;
      tx_flush_ns = nic.Nic.tx_flush_ns;
      conn_miss_ns;
      cache = (match cache with Some c -> c | None -> Conn_cache.create_default ());
      rx_ring = Sim.Ring.create ~capacity:64 ~dummy:Netsim.Packet.nil ();
      rx_fly = Sim.Ring.create ~capacity:64 ~dummy:Netsim.Packet.nil ();
      tx_fly = Sim.Ring.create ~capacity:64 ~dummy:Netsim.Packet.nil ();
      rx_done = (fun () -> ());
      tx_done = (fun () -> ());
      rx_notify = (fun () -> ());
      rx_last_delivery = Sim.Time.zero;
      tx_last_enter = Sim.Time.zero;
      tx_last_done = Sim.Time.zero;
      tx_pending_ = 0;
      stride = nic.Nic.multi_packet_rq_stride;
      replenish_unit_ns = nic.Nic.rq_replenish_unit_ns;
      replenish_partial = 0;
      rx_packets_ = 0;
      tx_packets_ = 0;
      trace;
      pid;
      tid;
    }
  in
  t.Impl.rx_done <- (fun () -> Impl.rx_complete t);
  t.Impl.tx_done <- (fun () -> Impl.tx_complete t);
  Transport.Iface.T ((module Impl : Transport.Iface.S with type t = Impl.t), t)
