(** Log-linear histogram (HDR-style) for non-negative integer samples.

    64 linear sub-buckets per power of two give ~1.6% relative precision at
    any magnitude with a small fixed footprint, so recording a sample is a
    couple of arithmetic operations — cheap enough for per-packet RTTs. *)

type t

val create : unit -> t

val record : t -> int -> unit
val record_n : t -> int -> n:int -> unit

val count : t -> int
val min : t -> int
val max : t -> int
val mean : t -> float
val total : t -> int

(** [percentile t p] with [p] in [0,100]. Raises [Invalid_argument] on an
    empty histogram. Returns a representative value of the bucket containing
    the requested rank. *)
val percentile : t -> float -> int

val median : t -> int

(** Merge [src] into [dst]. *)
val merge : dst:t -> src:t -> unit

(** {2 Bucket layout} — exposed for property tests and exporters. *)

val num_buckets : int

val bucket_index : int -> int
(** Bucket holding a (non-negative) sample value. *)

val bucket_value : int -> int
(** Representative (midpoint) value of a bucket; values below 64 are exact,
    larger ones within [2^-6] relative error of any sample in the bucket. *)

val clear : t -> unit

(** "p50=… p99=… p99.9=… max=…" one-line summary. *)
val pp_summary : Format.formatter -> t -> unit
