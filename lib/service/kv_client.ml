type error = [ `Deadline | `Failed of string ]

(* A session stuck in [Connect_pending] longer than this is assumed to
   have lost its handshake to a crash (SM messages to dead hosts vanish)
   and is replaced on next use. Normal handshakes complete in microseconds
   of simulated time. *)
let connect_grace_ns = 2_000_000

type t = {
  fabric : Erpc.Fabric.t;
  rpc : Erpc.Rpc.t;
  engine : Sim.Engine.t;
  map : Shard_map.t;
  client_id : int;
  backoff_base_ns : int;
  backoff_max_ns : int;
  attempt_timeout_ns : int;
  rng : Sim.Rng.t;
  mutable seq : int;
  sessions : (int, Erpc.Session.session * Sim.Time.t) Hashtbl.t;  (** by host *)
  mutable ok : int;
  mutable deadline_exceeded : int;
  mutable retries : int;
  mutable redirects : int;
  lat : Stats.Hist.t;
}

let create ~fabric ~rpc ~map ~client_id ?(backoff_base_ns = 500_000)
    ?(backoff_max_ns = 8_000_000) ?(attempt_timeout_ns = 5_000_000) () =
  let engine = Erpc.Fabric.engine fabric in
  {
    fabric;
    rpc;
    engine;
    map;
    client_id;
    backoff_base_ns;
    backoff_max_ns;
    attempt_timeout_ns;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    seq = 0;
    sessions = Hashtbl.create 8;
    ok = 0;
    deadline_exceeded = 0;
    retries = 0;
    redirects = 0;
    lat = Stats.Hist.create ();
  }

let ok t = t.ok
let deadline_exceeded t = t.deadline_exceeded
let retries t = t.retries
let redirects t = t.redirects
let latencies t = t.lat

let session_to t host =
  let fresh () =
    let sess = Erpc.Rpc.create_session t.rpc ~remote_host:host ~remote_rpc_id:0 () in
    Hashtbl.replace t.sessions host (sess, Sim.Engine.now t.engine);
    sess
  in
  match Hashtbl.find_opt t.sessions host with
  | Some (sess, _) when sess.Erpc.Session.state = Erpc.Session.Connected -> sess
  | Some (sess, born) when sess.Erpc.Session.state = Erpc.Session.Connect_pending ->
      if Sim.Time.sub (Sim.Engine.now t.engine) born > connect_grace_ns then fresh ()
      else sess
  | _ -> fresh ()

let invalidate_session t host = Hashtbl.remove t.sessions host

let pad_value v =
  let n = String.length v in
  if n > Kv_proto.value_size then invalid_arg "Kv_client: value too large"
  else if n = Kv_proto.value_size then v
  else v ^ String.make (Kv_proto.value_size - n) '\000'

(* The generic retry loop both operations run on. [finish] fires exactly
   once: the deadline event is armed up front and independent of any
   attempt, so an attempt wedged on a half-open connection cannot stall
   the operation past its deadline. *)
let exec t ~(request : Kv_proto.request) ~deadline_ns
    ~(finish : (Kv_proto.status * string option, error) result -> unit) =
  let shard = request.shard in
  let group = Shard_map.group t.map ~shard in
  let started = Sim.Engine.now t.engine in
  let deadline_abs = Sim.Time.add started deadline_ns in
  let done_ = ref false in
  Sim.Engine.schedule t.engine deadline_abs (fun () ->
      if not !done_ then begin
        done_ := true;
        t.deadline_exceeded <- t.deadline_exceeded + 1;
        finish (Error `Deadline)
      end);
  (* Consecutive redirects since the last success/backoff. Two replicas
     with stale views of each other (common mid-partition: a follower
     still naming the isolated old leader) would otherwise ping-pong the
     client at network speed until the deadline. *)
  let chase = ref 0 in
  let rec attempt n ~forced =
    if not !done_ then begin
      let target =
        match forced with
        | Some h -> h
        | None -> (
            match Shard_map.leader_hint t.map ~shard with
            | Some h -> h
            | None -> group.(n mod Array.length group))
      in
      let sess = session_to t target in
      (* Each attempt carries its own timeout: a request parked behind a
         handshake whose Connect_req died with the target (SM messages to
         dead hosts vanish) gets no transport-level failure signal at all,
         and would otherwise sit wedged until the operation deadline. The
         late continuation, if any, finds [settled] and is ignored — a
         duplicate landing is what the (client_id, seq) dedup absorbs. *)
      let settled = ref false in
      Sim.Engine.schedule_after t.engine t.attempt_timeout_ns (fun () ->
          if (not !done_) && not !settled then begin
            settled := true;
            invalidate_session t target;
            Shard_map.clear_hints_for t.map ~host:target;
            backoff (n + 1)
          end);
      (* [~charge:false]: the service's handler-cost constants already
         model (de)serialization; double-charging would shift every chaos
         trace. The typed layer still owns encode/decode + buffer sizing. *)
      Erpc.Typed.enqueue_request t.rpc sess ~req_type:Kv_proto.kv_req_type
        ~req_codec:Kv_proto.request_codec ~resp_codec:Kv_proto.response_codec
        ~backend:Codec.Compact ~charge:false request
        ~cont:(fun r ->
          if (not !done_) && not !settled then begin
            settled := true;
            match r with
            | Ok (((Kv_proto.Ok_ | Kv_proto.Not_found), _) as outcome) ->
                done_ := true;
                t.ok <- t.ok + 1;
                Shard_map.set_leader_hint t.map ~shard ~host:target;
                Stats.Hist.record t.lat (Sim.Time.sub (Sim.Engine.now t.engine) started);
                finish (Ok outcome)
            | Ok (Kv_proto.Not_leader (Some h), _) ->
                (* Follow the redirect immediately: the hint names the
                   live leader in the common case, and a wrong hint
                   just feeds back here — but only a bounded number of
                   times before conceding the hints are stale and
                   backing off. *)
                t.redirects <- t.redirects + 1;
                Shard_map.set_leader_hint t.map ~shard ~host:h;
                incr chase;
                if !chase <= 3 then attempt (n + 1) ~forced:(Some h)
                else begin
                  Shard_map.clear_leader_hint t.map ~shard;
                  backoff (n + 1)
                end
            | Ok (Kv_proto.Not_leader None, _) ->
                Shard_map.clear_leader_hint t.map ~shard;
                backoff (n + 1)
            | Ok (Kv_proto.Retry hint, _) ->
                (match hint with
                | Some h -> Shard_map.set_leader_hint t.map ~shard ~host:h
                | None -> ());
                backoff (n + 1)
            | Error _ ->
                (* Transport-level failure: the target may be down — stop
                   trusting sessions and hints that point at it. *)
                invalidate_session t target;
                Shard_map.clear_hints_for t.map ~host:target;
                backoff (n + 1)
          end)
    end
  and backoff n =
    chase := 0;
    t.retries <- t.retries + 1;
    let exp = t.backoff_base_ns lsl min n 16 in
    let delay =
      min t.backoff_max_ns (max t.backoff_base_ns exp)
      + Sim.Rng.int t.rng t.backoff_base_ns
    in
    Sim.Engine.schedule_after t.engine delay (fun () -> attempt n ~forced:None)
  in
  attempt 0 ~forced:None

let put t ~key ~value ~deadline_ns ~cont =
  assert (String.length key = Kv_proto.key_size);
  let seq = t.seq in
  t.seq <- t.seq + 1;
  let request =
    {
      Kv_proto.op = Kv_proto.Put;
      shard = Shard_map.shard_of_key t.map ~key;
      client_id = t.client_id;
      seq;
      key;
      value = pad_value value;
    }
  in
  exec t ~request ~deadline_ns ~finish:(function
    | Ok _ -> cont (Ok ())
    | Error e -> cont (Error e));
  seq

let get t ~key ~deadline_ns ~cont =
  assert (String.length key = Kv_proto.key_size);
  let seq = t.seq in
  t.seq <- t.seq + 1;
  let request =
    {
      Kv_proto.op = Kv_proto.Get;
      shard = Shard_map.shard_of_key t.map ~key;
      client_id = t.client_id;
      seq;
      key;
      value = "";
    }
  in
  exec t ~request ~deadline_ns ~finish:(function
    | Ok (Kv_proto.Ok_, v) -> cont (Ok v)
    | Ok _ -> cont (Ok None)
    | Error e -> cont (Error e));
  seq
