(** Shard map: the client- and replica-shared view of data placement.

    Keys hash (FNV-1a) onto [shards] Raft groups; group [g] is replicated
    on [replication] consecutive hosts of the replica ring starting at
    offset [g], so with 6 hosts and 4 three-way groups every host serves
    1–3 groups and a single host failure degrades several groups without
    killing any — the standard chained-placement used by sharded stores.

    The map also carries *leader hints*: a smart client's best guess at
    each group's current leader, updated from [Not_leader] redirects and
    cleared when a host is observed failing. Hints are an optimization,
    never a correctness input — a stale hint costs one redirect. *)

type t

(** [create ~shards ~replication ~replica_hosts] places [shards] groups
    over the host ring. Requires [replication <= Array.length
    replica_hosts]. *)
val create : shards:int -> replication:int -> replica_hosts:int array -> t

val shards : t -> int
val replication : t -> int

(** All replica hosts, in ring order. *)
val replica_hosts : t -> int array

(** Hosts replicating shard [shard], primary position first. *)
val group : t -> shard:int -> int array

(** The shard owning [key]. *)
val shard_of_key : t -> key:string -> int

(** Shards with a replica on [host], ascending. *)
val shards_on : t -> host:int -> int list

(** Current leader hint for [shard], if any. *)
val leader_hint : t -> shard:int -> int option

val set_leader_hint : t -> shard:int -> host:int -> unit
val clear_leader_hint : t -> shard:int -> unit

(** Forget every hint pointing at [host] (e.g. it was seen crashing). *)
val clear_hints_for : t -> host:int -> unit
