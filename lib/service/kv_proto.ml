let raft_req_type = 20
let kv_req_type = 21

let key_size = 16
let value_size = 64

type op = Put | Get

type request = {
  op : op;
  shard : int;
  client_id : int;
  seq : int;
  key : string;
  value : string;
}

type status =
  | Ok_
  | Not_leader of int option
  | Retry of int option
  | Not_found

(* Request: op(4) shard(4) client_id(4) seq(4) key value. GETs carry a
   zero-filled value region so one fixed layout serves both ops. *)
let req_size = 16 + key_size + value_size

let write_request m (r : request) =
  Erpc.Msgbuf.set_u32 m ~off:0 (match r.op with Put -> 0 | Get -> 1);
  Erpc.Msgbuf.set_u32 m ~off:4 r.shard;
  Erpc.Msgbuf.set_u32 m ~off:8 r.client_id;
  Erpc.Msgbuf.set_u32 m ~off:12 r.seq;
  Erpc.Msgbuf.write_string m ~off:16 r.key;
  Erpc.Msgbuf.write_string m ~off:(16 + key_size)
    (if String.length r.value = value_size then r.value
     else String.make value_size '\000')

let read_request m =
  {
    op = (match Erpc.Msgbuf.get_u32 m ~off:0 with 0 -> Put | _ -> Get);
    shard = Erpc.Msgbuf.get_u32 m ~off:4;
    client_id = Erpc.Msgbuf.get_u32 m ~off:8;
    seq = Erpc.Msgbuf.get_u32 m ~off:12;
    key = Erpc.Msgbuf.read_string m ~off:16 ~len:key_size;
    value = Erpc.Msgbuf.read_string m ~off:(16 + key_size) ~len:value_size;
  }

(* Response: status(4) hint(4) [value]. The hint encodes host+1 so 0 can
   mean "no hint". *)
let resp_max_size = 8 + value_size

let resp_size ~value = match value with None -> 8 | Some _ -> 8 + value_size

let status_code = function
  | Ok_ -> 0
  | Not_leader _ -> 1
  | Retry _ -> 2
  | Not_found -> 3

let hint_code = function
  | Not_leader (Some h) | Retry (Some h) -> h + 1
  | _ -> 0

let write_response m ~status ~value =
  Erpc.Msgbuf.set_u32 m ~off:0 (status_code status);
  Erpc.Msgbuf.set_u32 m ~off:4 (hint_code status);
  match value with None -> () | Some v -> Erpc.Msgbuf.write_string m ~off:8 v

let read_response m =
  let hint =
    match Erpc.Msgbuf.get_u32 m ~off:4 with 0 -> None | h -> Some (h - 1)
  in
  let status =
    match Erpc.Msgbuf.get_u32 m ~off:0 with
    | 0 -> Ok_
    | 1 -> Not_leader hint
    | 2 -> Retry hint
    | _ -> Not_found
  in
  let value =
    if Erpc.Msgbuf.size m >= 8 + value_size then
      Some (Erpc.Msgbuf.read_string m ~off:8 ~len:value_size)
    else None
  in
  (status, value)

(* Replicated command: client_id(4) seq(4) key value, as a string so the
   Raft core and codec stay command-agnostic. *)
let cmd_size = 8 + key_size + value_size

let put_u32_str b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32_str s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let encode_cmd ~client_id ~seq ~key ~value =
  assert (String.length key = key_size && String.length value = value_size);
  let b = Bytes.create cmd_size in
  put_u32_str b 0 client_id;
  put_u32_str b 4 seq;
  Bytes.blit_string key 0 b 8 key_size;
  Bytes.blit_string value 0 b (8 + key_size) value_size;
  Bytes.unsafe_to_string b

let noop_client_id = 0xffff_ffff

let noop_cmd ~seq =
  encode_cmd ~client_id:noop_client_id ~seq
    ~key:(String.make key_size '\000')
    ~value:(String.make value_size '\000')

let decode_cmd s =
  ( get_u32_str s 0,
    get_u32_str s 4,
    String.sub s 8 key_size,
    String.sub s (8 + key_size) value_size )

(* Raft frame: shard(4) ^ codec bytes. *)
let raft_frame_size msg = 4 + Raft.Codec.encoded_size msg

let write_raft_frame m ~shard msg =
  let encoded = Raft.Codec.encode msg in
  Erpc.Msgbuf.set_u32 m ~off:0 shard;
  Erpc.Msgbuf.write_string m ~off:4 (Bytes.to_string encoded)

let read_raft_frame m =
  let shard = Erpc.Msgbuf.get_u32 m ~off:0 in
  let data =
    Bytes.of_string (Erpc.Msgbuf.read_string m ~off:4 ~len:(Erpc.Msgbuf.size m - 4))
  in
  (shard, Raft.Codec.decode data)
