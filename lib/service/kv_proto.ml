let raft_req_type = 20
let kv_req_type = 21

let key_size = 16
let value_size = 64

type op = Put | Get

type request = {
  op : op;
  shard : int;
  client_id : int;
  seq : int;
  key : string;
  value : string;
}

type status =
  | Ok_
  | Not_leader of int option
  | Retry of int option
  | Not_found

(* Every schema below is pinned to the compact backend: these are the
   service's frozen wire formats (same-seed chaos traces must stay
   byte-identical across refactors), independent of whatever backend the
   endpoint's [Config.codec_backend] selects for typed workloads. *)
let backend = Codec.Compact

(* Request: op(4) shard(4) client_id(4) seq(4) key value. GETs carry a
   zero-filled value region so one fixed layout serves both ops. *)
let req_size = 16 + key_size + value_size

let request_codec : request Codec.t =
  let open Codec in
  map
    ~into:(fun (((opc, shard), (client_id, seq)), (key, value)) ->
      { op = (if opc = 0 then Put else Get); shard; client_id; seq; key; value })
    ~from:(fun r ->
      ( ( ((match r.op with Put -> 0 | Get -> 1), r.shard),
          (r.client_id, r.seq) ),
        ( r.key,
          if String.length r.value = value_size then r.value
          else String.make value_size '\000' ) ))
    (pair
       (pair (pair u32 u32) (pair u32 u32))
       (pair (fixed_string key_size) (fixed_string value_size)))

let write_request m (r : request) = Erpc.Typed.write ~backend request_codec m r
let read_request m = Erpc.Typed.read ~backend request_codec m

(* Response: status(4) hint(4) [value]. The hint encodes host+1 so 0 can
   mean "no hint"; the value region is present iff the message has bytes
   past the 8-byte header. *)
let resp_max_size = 8 + value_size

let resp_size ~value = match value with None -> 8 | Some _ -> 8 + value_size

let status_code = function
  | Ok_ -> 0
  | Not_leader _ -> 1
  | Retry _ -> 2
  | Not_found -> 3

let hint_code = function
  | Not_leader (Some h) | Retry (Some h) -> h + 1
  | _ -> 0

let response_codec : (status * string option) Codec.t =
  let open Codec in
  map
    ~into:(fun ((code, hintc), value) ->
      let hint = if hintc = 0 then None else Some (hintc - 1) in
      let status =
        match code with 0 -> Ok_ | 1 -> Not_leader hint | 2 -> Retry hint | _ -> Not_found
      in
      (status, value))
    ~from:(fun (status, value) -> ((status_code status, hint_code status), value))
    (pair (pair u32 u32) (tail_option (fixed_string value_size)))

let write_response m ~status ~value =
  Erpc.Typed.write ~backend response_codec m (status, value)

let read_response m = Erpc.Typed.read ~backend response_codec m

(* Replicated command: client_id(4) seq(4) key value, as a string so the
   Raft core and wire format stay command-agnostic. *)
let cmd_size = 8 + key_size + value_size

let cmd_codec : (int * int * string * string) Codec.t =
  let open Codec in
  map
    ~into:(fun ((client_id, seq), (key, value)) -> (client_id, seq, key, value))
    ~from:(fun (client_id, seq, key, value) -> ((client_id, seq), (key, value)))
    (pair (pair u32 u32) (pair (fixed_string key_size) (fixed_string value_size)))

let encode_cmd ~client_id ~seq ~key ~value =
  Bytes.unsafe_to_string (Codec.to_bytes ~backend cmd_codec (client_id, seq, key, value))

let noop_client_id = 0xffff_ffff

let noop_cmd ~seq =
  encode_cmd ~client_id:noop_client_id ~seq
    ~key:(String.make key_size '\000')
    ~value:(String.make value_size '\000')

let decode_cmd s = Codec.of_bytes ~backend cmd_codec (Bytes.of_string s)

(* Raft frame: shard(4) ^ message bytes. *)
let raft_frame_codec : (int * string Raft.Core.msg) Codec.t =
  Codec.pair Codec.u32 Raft.Wire.msg_codec

let raft_frame_size msg = Codec.size raft_frame_codec (0, msg)

let write_raft_frame m ~shard msg =
  Erpc.Typed.write ~backend raft_frame_codec m (shard, msg)

let read_raft_frame m = Erpc.Typed.read ~backend raft_frame_codec m
