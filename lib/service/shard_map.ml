type t = {
  shards : int;
  replication : int;
  replica_hosts : int array;
  leaders : int option array;  (** hints, indexed by shard *)
}

let create ~shards ~replication ~replica_hosts =
  if replication > Array.length replica_hosts then
    invalid_arg "Shard_map.create: replication exceeds host count";
  assert (shards > 0 && replication > 0);
  { shards; replication; replica_hosts; leaders = Array.make shards None }

let shards t = t.shards
let replication t = t.replication
let replica_hosts t = t.replica_hosts

let group t ~shard =
  let n = Array.length t.replica_hosts in
  Array.init t.replication (fun i -> t.replica_hosts.((shard + i) mod n))

let shard_of_key t ~key = Workload.Keygen.fnv1a key mod t.shards

let shards_on t ~host =
  List.filter
    (fun s -> Array.exists (( = ) host) (group t ~shard:s))
    (List.init t.shards Fun.id)

let leader_hint t ~shard = t.leaders.(shard)
let set_leader_hint t ~shard ~host = t.leaders.(shard) <- Some host
let clear_leader_hint t ~shard = t.leaders.(shard) <- None

let clear_hints_for t ~host =
  Array.iteri (fun s l -> if l = Some host then t.leaders.(s) <- None) t.leaders
