(** Smart client for the sharded replicated-KV service.

    Owns a {!Shard_map}, routes each key to its Raft group, and drives
    every operation through a retry loop built for failover:

    - *redirects*: a [Not_leader] response with a leader hint re-targets
      the very next attempt (no backoff) and caches the hint in the map;
    - *retries*: transport errors, [Retry], and hintless [Not_leader]
      responses back off exponentially (base doubling per attempt, capped,
      plus seeded jitter) and rotate through the group's replicas;
    - *deadlines*: every operation carries an absolute deadline. A
      deadline event fires independently of any in-flight attempt, so an
      operation stuck on a half-open connection still completes (as
      [`Deadline]) on time — late attempt outcomes are discarded;
    - *exactly-once*: each operation is stamped with this client's id and
      a fresh sequence number; replicas deduplicate, so a PUT retried
      across leaders applies once no matter how many attempts raced.

    All asynchrony runs on the deployment's simulation engine; callbacks
    fire exactly once per operation. *)

type t

(** [create ~fabric ~rpc ~map ~client_id ()] — [client_id] must be unique
    across clients of the same service for dedup to be sound.

    [?backoff_base_ns] (default 500 µs) and [?backoff_max_ns] (default
    8 ms) bound the retry backoff. *)
val create :
  fabric:Erpc.Fabric.t ->
  rpc:Erpc.Rpc.t ->
  map:Shard_map.t ->
  client_id:int ->
  ?backoff_base_ns:int ->
  ?backoff_max_ns:int ->
  ?attempt_timeout_ns:int ->
  (* per-attempt timeout (default 5 ms): bounds attempts wedged on a
     handshake to a dead host, which produce no transport error *)
  unit ->
  t

type error = [ `Deadline | `Failed of string ]

(** [put t ~key ~value ~deadline_ns ~cont] writes [value] (padded to the
    service's value size) under [key]. [deadline_ns] is relative to now.
    [cont] fires exactly once. Returns the operation's sequence number —
    [(client_id, seq)] identifies the write in replica logs. *)
val put :
  t ->
  key:string ->
  value:string ->
  deadline_ns:int ->
  cont:((unit, error) result -> unit) ->
  int

(** [get t ~key ~deadline_ns ~cont] reads from the shard's current
    leader; [Ok None] is a confirmed miss. Returns the sequence number. *)
val get :
  t ->
  key:string ->
  deadline_ns:int ->
  cont:((string option, error) result -> unit) ->
  int

(** {2 Stats} *)

val ok : t -> int
val deadline_exceeded : t -> int

(** Attempts re-issued after a backoff (errors/[Retry]). *)
val retries : t -> int

(** Immediate re-targets from [Not_leader] hints. *)
val redirects : t -> int

(** End-to-end latency (ns) of successful operations. *)
val latencies : t -> Stats.Hist.t
