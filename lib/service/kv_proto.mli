(** Wire protocol of the sharded replicated-KV service, defined as
    {!Codec} schemas (compact backend pinned — these layouts are frozen;
    same-seed chaos traces must stay byte-identical across refactors).

    Two request types share every replica host:

    - [raft_req_type]: replica-to-replica Raft transport. The frame is the
      4-byte shard id followed by {!Raft.Wire} bytes; the response carries
      the Raft reply the core produced while handling it (AE/RV responses
      ride back as eRPC responses, halving message count exactly as the
      paper's Raft-over-eRPC integration does in §7.1).

    - [kv_req_type]: client operations. Every request names its shard and
      carries a (client id, sequence number) pair; the pair rides inside
      replicated PUT commands so replicas can deduplicate retries — the
      exactly-once contract the smart client's retry loop relies on.

    All integers are little-endian u32. *)

val raft_req_type : int
val kv_req_type : int

val key_size : int
val value_size : int

(** {2 Client operations} *)

type op = Put | Get

type request = {
  op : op;
  shard : int;
  client_id : int;
  seq : int;
  key : string;  (** [key_size] bytes *)
  value : string;  (** [value_size] bytes; ignored (empty) for GET *)
}

(** Response status codes. [Not_leader] and [Retry] carry an optional
    leader hint (a host id) when the replica knows one. *)
type status =
  | Ok_
  | Not_leader of int option
  | Retry of int option
  | Not_found

val req_size : int
val resp_max_size : int

(** Schema of {!request}: op(4) shard(4) client_id(4) seq(4) key value,
    with GET values zero-padded to [value_size]. Flat-capable. *)
val request_codec : request Codec.t

(** Schema of [(status, value)]: status(4) hint(4), value present iff
    bytes remain past the header (so the codec is compact-only). *)
val response_codec : (status * string option) Codec.t

val write_request : Erpc.Msgbuf.t -> request -> unit
val read_request : Erpc.Msgbuf.t -> request

(** Exact response size for a status/value pair; allocate or
    [init_response] with this before {!write_response}. *)
val resp_size : value:string option -> int

val write_response : Erpc.Msgbuf.t -> status:status -> value:string option -> unit

(** [read_response m] is [(status, value)]. *)
val read_response : Erpc.Msgbuf.t -> status * string option

(** {2 Replicated commands}

    A PUT is replicated as a fixed-layout string command:
    client_id(4) ^ seq(4) ^ key ^ value. *)

val cmd_size : int

(** Schema of [(client_id, seq, key, value)] commands. *)
val cmd_codec : (int * int * string * string) Codec.t

val encode_cmd : client_id:int -> seq:int -> key:string -> value:string -> string

(** Reserved client id of leader no-op barrier entries. A freshly elected
    leader replicates one no-op so that entries from previous terms become
    committable under §5.4.2 (the LibRaft/etcd idiom); replicas apply it
    as "do nothing". Real clients never use this id. *)
val noop_client_id : int

(** A no-op command with the given (node-local) sequence number. *)
val noop_cmd : seq:int -> string

val decode_cmd : string -> int * int * string * string
(** [(client_id, seq, key, value)]. Raises {!Codec.Decode_error} on a
    malformed command. *)

(** {2 Raft frames} *)

(** Schema of [(shard, msg)] frames: shard(4) ^ {!Raft.Wire.msg_codec}
    bytes. *)
val raft_frame_codec : (int * string Raft.Core.msg) Codec.t

(** Exact frame size for a message: 4 bytes of shard id plus the codec
    bytes. *)
val raft_frame_size : string Raft.Core.msg -> int

val write_raft_frame : Erpc.Msgbuf.t -> shard:int -> string Raft.Core.msg -> unit
val read_raft_frame : Erpc.Msgbuf.t -> int * string Raft.Core.msg
