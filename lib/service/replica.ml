(* Modeled handler CPU costs (ns), carried over from the single-group
   integration. *)
let raft_receive_cost = 250
let raft_submit_cost = 220
let codec_cost = 110

let periodic_tick_ns = 500_000

type shard_state = {
  shard : int;
  group : int array;  (** hosts; array position = Raft id *)
  self_id : int;
  mutable core : string Raft.Core.t option;
  mutable store : Mica.Store.t;
  mutable dedup : (int * int, unit) Hashtbl.t;  (** (client_id, seq) applied *)
  pending : (int, Erpc.Req_handle.t * Sim.Time.t) Hashtbl.t;  (** log index *)
}

type t = {
  host : int;
  fabric : Erpc.Fabric.t;
  nexus : Erpc.Nexus.t;
  rpc : Erpc.Rpc.t;
  engine : Sim.Engine.t;
  map : Shard_map.t;
  rng : Sim.Rng.t;
  raft_cfg : Raft.Core.config;
  shard_states : shard_state array;  (** ascending shard order *)
  peer_sessions : (int, Erpc.Session.session) Hashtbl.t;  (** keyed by host *)
  mutable pending_reply : (int * string Raft.Core.msg) option;
  commit_lat : Stats.Hist.t;
  trace : Obs.Trace.t;
  mutable incarnation : int;
  mutable stopped : bool;
  mutable raft_drops : int;
  mutable dedup_hits : int;
  mutable restarts : int;
  mutable noop_seq : int;
  mutable on_apply : shard:int -> incarnation:int -> client_id:int -> seq:int -> unit;
}

let host t = t.host
let rpc t = t.rpc
let shards t = Array.to_list (Array.map (fun st -> st.shard) t.shard_states)
let commit_latencies t = t.commit_lat
let raft_drops t = t.raft_drops
let dedup_hits t = t.dedup_hits
let restarts t = t.restarts
let incarnation t = t.incarnation
let set_on_apply t f = t.on_apply <- f
let stop t = t.stopped <- true

let core st =
  match st.core with Some c -> c | None -> failwith "Replica: core not ready"

let state_for t shard =
  (* At most a handful of shards per host: linear scan beats hashing. *)
  let rec go i =
    if i >= Array.length t.shard_states then None
    else if t.shard_states.(i).shard = shard then Some t.shard_states.(i)
    else go (i + 1)
  in
  go 0

let state_exn t shard =
  match state_for t shard with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Replica: shard %d not on host %d" shard t.host)

let is_leader t ~shard =
  match state_for t shard with
  | Some st -> Raft.Core.role (core st) = Raft.Core.Leader
  | None -> false

let raft t ~shard = core (state_exn t shard)
let store t ~shard = (state_exn t shard).store

(* Leader hint as a host id, from this shard's core. *)
let hint_host st =
  match Raft.Core.leader_hint (core st) with
  | Some id when id < Array.length st.group -> Some st.group.(id)
  | _ -> None

let respond h ~status ~value =
  let resp = Erpc.Req_handle.init_response h ~size:(Kv_proto.resp_size ~value) in
  Kv_proto.write_response resp ~status ~value;
  Erpc.Req_handle.enqueue_response h resp

(* Fail every pending PUT of a shard we no longer lead: the entries may
   still commit under the new leader, but *we* can't acknowledge them, so
   the client must retry (dedup makes the retry safe). Sorted index order
   keeps the response sequence independent of Hashtbl internals. *)
let fail_pending st =
  if Hashtbl.length st.pending > 0 then begin
    let idxs = Hashtbl.fold (fun i _ acc -> i :: acc) st.pending [] in
    let hint = hint_host st in
    List.iter
      (fun i ->
        let h, _ = Hashtbl.find st.pending i in
        Hashtbl.remove st.pending i;
        respond h ~status:(Kv_proto.Retry hint) ~value:None)
      (List.sort compare idxs)
  end

let on_leadership_change t st =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.instant t.trace
      ~ts:(Sim.Engine.now t.engine)
      ~cat:"service" ~name:"leadership"
      ~pid:(Obs.Trace.host_pid t.host) ~tid:0
      [
        ("shard", Obs.Trace.I st.shard);
        ( "role",
          Obs.Trace.S
            (match Raft.Core.role (core st) with
            | Raft.Core.Leader -> "leader"
            | Raft.Core.Candidate -> "candidate"
            | Raft.Core.Follower -> "follower") );
      ];
  if Raft.Core.role (core st) <> Raft.Core.Leader then fail_pending st
  else begin
    (* Newly elected: replicate a no-op barrier so entries inherited from
       previous terms become committable (§5.4.2 only lets a leader count
       majorities for current-term entries — the LibRaft/etcd idiom).
       Deferred one event: notify fires from inside the core's role
       transition, before leader replication state is initialized. *)
    t.noop_seq <- t.noop_seq + 1;
    let seq = t.noop_seq in
    Sim.Engine.schedule_after t.engine 0 (fun () ->
        if
          (not (Erpc.Nexus.dead t.nexus))
          && Raft.Core.role (core st) = Raft.Core.Leader
        then ignore (Raft.Core.submit (core st) (Kv_proto.noop_cmd ~seq)))
  end

let apply_cmd t st index cmd =
  let client_id, seq, key, value = Kv_proto.decode_cmd cmd in
  if client_id = Kv_proto.noop_client_id then ()
  else if Hashtbl.mem st.dedup (client_id, seq) then t.dedup_hits <- t.dedup_hits + 1
  else begin
    Hashtbl.replace st.dedup (client_id, seq) ();
    Mica.Store.put st.store ~key ~value;
    t.on_apply ~shard:st.shard ~incarnation:t.incarnation ~client_id ~seq
  end;
  match Hashtbl.find_opt st.pending index with
  | None -> ()
  | Some (h, submitted) ->
      Hashtbl.remove st.pending index;
      Stats.Hist.record t.commit_lat (Sim.Time.sub (Sim.Engine.now t.engine) submitted);
      respond h ~status:Kv_proto.Ok_ ~value:None

let session_to t dst_host =
  match Hashtbl.find_opt t.peer_sessions dst_host with
  | Some sess
    when sess.Erpc.Session.state = Erpc.Session.Connected
         || sess.Erpc.Session.state = Erpc.Session.Connect_pending ->
      Some sess
  | _ ->
      if Erpc.Fabric.host_dead t.fabric dst_host then None
      else begin
        Hashtbl.remove t.peer_sessions dst_host;
        let sess =
          Erpc.Rpc.create_session t.rpc ~remote_host:dst_host ~remote_rpc_id:0 ()
        in
        Hashtbl.replace t.peer_sessions dst_host sess;
        Some sess
      end

(* A Raft message we cannot put on the wire right now. Raft's timeout
   machinery re-drives the exchange, but chaos debugging needs to *see*
   the drop: count it and stamp the trace. *)
let drop_raft t st ~dst_host =
  t.raft_drops <- t.raft_drops + 1;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.instant t.trace
      ~ts:(Sim.Engine.now t.engine)
      ~cat:"service" ~name:"raft_drop"
      ~pid:(Obs.Trace.host_pid t.host) ~tid:0
      [ ("shard", Obs.Trace.I st.shard); ("dst", Obs.Trace.I dst_host) ]

let send_raft t st dst msg =
  match msg with
  | Raft.Core.Request_vote_resp _ | Raft.Core.Append_entries_resp _ ->
      (* Ride back as the eRPC response of the frame being handled. *)
      t.pending_reply <- Some (st.shard, msg)
  | Raft.Core.Request_vote _ | Raft.Core.Append_entries _ -> (
      let dst_host = st.group.(dst) in
      match session_to t dst_host with
      | None -> drop_raft t st ~dst_host
      | Some sess ->
          let req = Erpc.Msgbuf.alloc ~max_size:(Kv_proto.raft_frame_size msg) in
          Kv_proto.write_raft_frame req ~shard:st.shard msg;
          let resp = Erpc.Msgbuf.alloc ~max_size:256 in
          Erpc.Rpc.enqueue_request t.rpc sess ~req_type:Kv_proto.raft_req_type ~req
            ~resp ~cont:(fun r ->
              match r with
              | Ok () when Erpc.Msgbuf.size resp > 4 ->
                  let shard, reply = Kv_proto.read_raft_frame resp in
                  (* Feed whatever core now owns the shard: a restart in
                     the meantime swapped in a new incarnation, which must
                     see the reply (or safely ignore its stale term). *)
                  (match state_for t shard with
                  | Some st -> Raft.Core.receive (core st) reply
                  | None -> ())
              | Ok () -> () (* peer had no core for the shard: nothing to feed *)
              | Error _ -> () (* peer failed; Raft re-drives via timeouts *)))

let raft_config t = t.raft_cfg

let make_core t st ?stable () =
  let peers =
    Array.of_list
      (List.filter (fun i -> i <> st.self_id)
         (List.init (Array.length st.group) Fun.id))
  in
  Raft.Core.create ~id:st.self_id ~peers ?stable
    ~notify:(fun () -> on_leadership_change t st)
    (raft_config t)
    ~send:(fun dst msg -> send_raft t st dst msg)
    ~apply:(fun index cmd -> apply_cmd t st index cmd)
    ~random:(fun n -> Sim.Rng.int t.rng n)

(* Crash: every piece of volatile state is gone — stores, dedup tables,
   sessions, client handles. Only each core's stable record (the modeled
   disk) may survive into the next incarnation. *)
let on_killed t =
  Array.iter
    (fun st ->
      Hashtbl.reset st.pending (* handles died with the host; never respond *))
    t.shard_states;
  Hashtbl.reset t.peer_sessions;
  t.pending_reply <- None

(* Restart: rebuild each shard from stable storage. The fresh core boots a
   follower with the persisted term/vote/log; as the commit index is
   re-learned from the group, [apply] replays the log into the fresh store
   and dedup table — log catch-up *is* state recovery. *)
let on_restarted t =
  t.restarts <- t.restarts + 1;
  t.incarnation <- t.incarnation + 1;
  Array.iter
    (fun st ->
      let stable = Raft.Core.stable_of (core st) in
      st.store <- Mica.Store.create ();
      st.dedup <- Hashtbl.create 256;
      st.core <- Some (make_core t st ~stable ()))
    t.shard_states;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.instant t.trace
      ~ts:(Sim.Engine.now t.engine)
      ~cat:"service" ~name:"replica_restart"
      ~pid:(Obs.Trace.host_pid t.host) ~tid:0
      [ ("incarnation", Obs.Trace.I t.incarnation) ]

let register_handlers t =
  Erpc.Nexus.register_handler t.nexus ~req_type:Kv_proto.raft_req_type
    ~mode:Erpc.Nexus.Dispatch (fun h ->
      let req = Erpc.Req_handle.get_request h in
      let shard, msg = Kv_proto.read_raft_frame req in
      Erpc.Req_handle.charge h (codec_cost + raft_receive_cost);
      match state_for t shard with
      | None ->
          (* Misrouted frame: answer so the sender's slot is freed. *)
          let resp = Erpc.Req_handle.init_response h ~size:4 in
          Erpc.Msgbuf.set_u32 resp ~off:0 1;
          Erpc.Req_handle.enqueue_response h resp
      | Some st -> (
          t.pending_reply <- None;
          Raft.Core.receive (core st) msg;
          let reply = t.pending_reply in
          t.pending_reply <- None;
          match reply with
          | Some (s, r) when s = shard ->
              let resp =
                Erpc.Req_handle.init_response h ~size:(Kv_proto.raft_frame_size r)
              in
              Kv_proto.write_raft_frame resp ~shard:s r;
              Erpc.Req_handle.enqueue_response h resp
          | _ ->
              let resp = Erpc.Req_handle.init_response h ~size:4 in
              Erpc.Msgbuf.set_u32 resp ~off:0 1;
              Erpc.Req_handle.enqueue_response h resp));
  Erpc.Nexus.register_handler t.nexus ~req_type:Kv_proto.kv_req_type
    ~mode:Erpc.Nexus.Dispatch (fun h ->
      let r = Kv_proto.read_request (Erpc.Req_handle.get_request h) in
      match state_for t r.shard with
      | None -> respond h ~status:(Kv_proto.Retry None) ~value:None
      | Some st -> (
          match r.op with
          | Kv_proto.Get ->
              Erpc.Req_handle.charge h Mica.Store.lookup_cost_ns;
              if Raft.Core.role (core st) <> Raft.Core.Leader then
                respond h ~status:(Kv_proto.Not_leader (hint_host st)) ~value:None
              else (
                match Mica.Store.get st.store ~key:r.key with
                | Some v -> respond h ~status:Kv_proto.Ok_ ~value:(Some v)
                | None -> respond h ~status:Kv_proto.Not_found ~value:None)
          | Kv_proto.Put -> (
              Erpc.Req_handle.charge h (raft_submit_cost + Mica.Store.insert_cost_ns);
              if Hashtbl.mem st.dedup (r.client_id, r.seq) then begin
                (* Retry of an already-applied PUT: re-ack, no new entry. *)
                t.dedup_hits <- t.dedup_hits + 1;
                respond h ~status:Kv_proto.Ok_ ~value:None
              end
              else
                let cmd =
                  Kv_proto.encode_cmd ~client_id:r.client_id ~seq:r.seq ~key:r.key
                    ~value:r.value
                in
                match Raft.Core.submit (core st) cmd with
                | Ok index ->
                    Hashtbl.replace st.pending index (h, Sim.Engine.now t.engine)
                | Error (`Not_leader _) ->
                    respond h ~status:(Kv_proto.Not_leader (hint_host st)) ~value:None)))

let create ~fabric ~nexus ~rpc ~map ~host ?(raft_config = Raft.Core.default_config) ()
    =
  let engine = Erpc.Fabric.engine fabric in
  let my_shards = Shard_map.shards_on map ~host in
  if my_shards = [] then
    invalid_arg (Printf.sprintf "Replica.create: no shards on host %d" host);
  let shard_states =
    Array.of_list
      (List.map
         (fun shard ->
           let group = Shard_map.group map ~shard in
           let self_id =
             match Array.to_list group |> List.mapi (fun i h -> (i, h))
                   |> List.find_opt (fun (_, h) -> h = host)
             with
             | Some (i, _) -> i
             | None -> assert false
           in
           {
             shard;
             group;
             self_id;
             core = None;
             store = Mica.Store.create ();
             dedup = Hashtbl.create 256;
             pending = Hashtbl.create 64;
           })
         my_shards)
  in
  let t =
    {
      host;
      fabric;
      nexus;
      rpc;
      engine;
      map;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      raft_cfg = raft_config;
      shard_states;
      peer_sessions = Hashtbl.create 8;
      pending_reply = None;
      commit_lat = Stats.Hist.create ();
      trace = Sim.Engine.trace engine;
      incarnation = 0;
      stopped = false;
      raft_drops = 0;
      dedup_hits = 0;
      restarts = 0;
      noop_seq = 0;
      on_apply = (fun ~shard:_ ~incarnation:_ ~client_id:_ ~seq:_ -> ());
    }
  in
  Array.iter (fun st -> st.core <- Some (make_core t st ())) t.shard_states;
  register_handlers t;
  Erpc.Fabric.on_host_killed fabric (fun h ->
      if h = t.host then on_killed t else Hashtbl.remove t.peer_sessions h);
  Erpc.Fabric.on_host_restart fabric (fun h ->
      if h = t.host then on_restarted t else Hashtbl.remove t.peer_sessions h);
  let metrics = Sim.Engine.metrics engine in
  let labels = [ ("host", string_of_int host) ] in
  Obs.Metrics.counter metrics ~name:"service.raft_drops" ~labels (fun () ->
      t.raft_drops);
  Obs.Metrics.counter metrics ~name:"service.dedup_hits" ~labels (fun () ->
      t.dedup_hits);
  Obs.Metrics.counter metrics ~name:"service.restarts" ~labels (fun () -> t.restarts);
  Obs.Metrics.histogram metrics ~name:"service.commit_ns" ~labels t.commit_lat;
  (* Drive Raft time (LibRaft's raft_periodic). One perpetual loop per
     node: it no-ops while the host is down — the *new* incarnation's
     cores need the very next tick after restart — and stops only when the
     experiment quiesces via [stop]. *)
  let rec tick () =
    if not t.stopped then begin
      if not (Erpc.Nexus.dead t.nexus) then
        Array.iter
          (fun st -> Raft.Core.periodic (core st) ~elapsed_ns:periodic_tick_ns)
          t.shard_states;
      Sim.Engine.schedule_after engine periodic_tick_ns tick
    end
  in
  Sim.Engine.schedule_after engine periodic_tick_ns tick;
  t
