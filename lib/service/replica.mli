(** Replica node of the sharded replicated-KV service (paper §7.1, grown
    from the single-group Raft-over-eRPC integration into a service).

    One [Replica.t] runs on each replica host and serves every Raft group
    the {!Shard_map} places there: per shard a Raft core, a MICA store,
    and a retry-dedup table keyed by (client id, sequence number) so a PUT
    that is retried by the smart client applies exactly once — the check
    runs both at submit (fast path: an already-applied retry is re-acked
    without a new log entry) and at apply (an already-applied duplicate
    log entry mutates nothing).

    Fault behavior:
    - leadership changes fire a Raft [notify] hook: pending client PUTs
      that can no longer commit here are failed over with [Retry] plus a
      leader hint, instead of hanging until the client's deadline;
    - a crash ({!Erpc.Fabric.crash_host}) drops all volatile state —
      stores, dedup tables, sessions, pending handles. Restart rebuilds
      each core from its surviving {!Raft.Core.stable} record (the modeled
      disk) and replays the committed log into a fresh store as the commit
      index is re-learned from the group;
    - Raft messages that cannot be sent because the peer is dead or the
      session is gone are *counted* ([raft_drops]) and traced, never
      silently dropped.

    Metrics (registered on the engine's registry): [service.raft_drops],
    [service.dedup_hits], [service.restarts] (counters, labeled by host)
    and [service.commit_ns] (histogram per host). *)

type t

(** [create ~fabric ~nexus ~rpc ~map ~host ()] builds the node and
    registers the service's two request handlers on [nexus]. Only call on
    hosts the map actually places shards on. [?raft_config] overrides
    election/heartbeat timing (default {!Raft.Core.default_config}). *)
val create :
  fabric:Erpc.Fabric.t ->
  nexus:Erpc.Nexus.t ->
  rpc:Erpc.Rpc.t ->
  map:Shard_map.t ->
  host:int ->
  ?raft_config:Raft.Core.config ->
  unit ->
  t

val host : t -> int
val rpc : t -> Erpc.Rpc.t

(** Shards this node replicates, ascending. *)
val shards : t -> int list

val is_leader : t -> shard:int -> bool

(** This node's Raft core for [shard]. Raises if the shard is not here. *)
val raft : t -> shard:int -> string Raft.Core.t

(** This node's store for [shard] (replays rebuild it after restarts). *)
val store : t -> shard:int -> Mica.Store.t

(** Commit latency (ns) of PUTs committed while this node led, all
    shards merged. *)
val commit_latencies : t -> Stats.Hist.t

(** Raft messages dropped because no peer session could carry them. *)
val raft_drops : t -> int

(** Duplicate (client id, seq) submissions and log entries suppressed. *)
val dedup_hits : t -> int

(** Crash-restart cycles this node has been through. *)
val restarts : t -> int

(** Monotone incarnation number: 0 at boot, +1 per restart. *)
val incarnation : t -> int

(** Observer invoked on every *effective* store application (duplicates
    excluded), with the incarnation that performed it — chaos harnesses
    use it to prove no write applies twice within an incarnation. *)
val set_on_apply :
  t -> (shard:int -> incarnation:int -> client_id:int -> seq:int -> unit) -> unit

(** Stop the periodic Raft driver so a finished experiment can drain its
    event queue. *)
val stop : t -> unit
