(** Round-robin pool of {!Kv_client}s for open-loop load driving.

    One smart client per (host rpc x slot): operations are dispatched
    round-robin so concurrent open-loop arrivals spread across client ids
    (each with its own dedup sequence space and retry state) and across
    client hosts. Client ids are [base_client_id .. base_client_id +
    size - 1]; pools sharing a service must use disjoint id ranges for
    exactly-once dedup to stay sound. Dispatch order is deterministic, so
    same-seed runs issue the same operation on the same client. *)

type t

(** [create ~fabric ~map ~rpcs ~base_client_id ~clients_per_rpc ()] builds
    [Array.length rpcs * clients_per_rpc] clients, cycling hosts first so
    consecutive operations leave different hosts. Optional knobs are passed
    through to {!Kv_client.create}. *)
val create :
  fabric:Erpc.Fabric.t ->
  map:Shard_map.t ->
  rpcs:Erpc.Rpc.t array ->
  base_client_id:int ->
  clients_per_rpc:int ->
  ?backoff_base_ns:int ->
  ?backoff_max_ns:int ->
  ?attempt_timeout_ns:int ->
  unit ->
  t

val size : t -> int

(** Next pool slot's client, advancing the round-robin cursor. Exposed so
    callers can pin an operation sequence to a client when needed. *)
val next_client : t -> Kv_client.t

(** [put]/[get] dispatch on the next client; see {!Kv_client.put}. *)
val put :
  t ->
  key:string ->
  value:string ->
  deadline_ns:int ->
  cont:((unit, Kv_client.error) result -> unit) ->
  unit

val get :
  t ->
  key:string ->
  deadline_ns:int ->
  cont:((string option, Kv_client.error) result -> unit) ->
  unit

(** {2 Aggregated stats} (summed / merged over the pool) *)

val ok : t -> int
val deadline_exceeded : t -> int
val retries : t -> int
val redirects : t -> int

(** Freshly merged end-to-end latency histogram of successful ops. *)
val latencies : t -> Stats.Hist.t
