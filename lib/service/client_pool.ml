type t = { clients : Kv_client.t array; mutable cursor : int }

let create ~fabric ~map ~rpcs ~base_client_id ~clients_per_rpc ?backoff_base_ns
    ?backoff_max_ns ?attempt_timeout_ns () =
  if Array.length rpcs = 0 then invalid_arg "Client_pool.create: no rpcs";
  if clients_per_rpc <= 0 then invalid_arg "Client_pool.create: clients_per_rpc <= 0";
  let hosts = Array.length rpcs in
  let clients =
    Array.init (hosts * clients_per_rpc) (fun i ->
        (* Host-major cycling: slot i lives on rpc (i mod hosts), so the
           round-robin cursor alternates source hosts. *)
        Kv_client.create ~fabric ~rpc:rpcs.(i mod hosts) ~map
          ~client_id:(base_client_id + i) ?backoff_base_ns ?backoff_max_ns
          ?attempt_timeout_ns ())
  in
  { clients; cursor = 0 }

let size t = Array.length t.clients

let next_client t =
  let c = t.clients.(t.cursor) in
  t.cursor <- (t.cursor + 1) mod Array.length t.clients;
  c

let put t ~key ~value ~deadline_ns ~cont =
  ignore (Kv_client.put (next_client t) ~key ~value ~deadline_ns ~cont : int)

let get t ~key ~deadline_ns ~cont =
  ignore (Kv_client.get (next_client t) ~key ~deadline_ns ~cont : int)

let sum f t = Array.fold_left (fun acc c -> acc + f c) 0 t.clients

let ok = sum Kv_client.ok
let deadline_exceeded = sum Kv_client.deadline_exceeded
let retries = sum Kv_client.retries
let redirects = sum Kv_client.redirects

let latencies t =
  let h = Stats.Hist.create () in
  Array.iter (fun c -> Stats.Hist.merge ~dst:h ~src:(Kv_client.latencies c)) t.clients;
  h
