(** Multi-tenant traffic specifications: populations of open-loop sources
    composed from {!Arrival} processes and {!Keygen} key streams.

    A {!tenant} models one simulated user population: [sources] independent
    arrival streams (each its own rng split, all sharing the tenant's
    arrival spec and so phase-synchronized on bursts), a key stream, and
    the service the traffic targets — small echo RPCs, large transfers, or
    the replicated-KV service. A {!scenario} is a named set of tenants plus
    a measurement horizon; {!builtin} provides the three standard cluster
    scenarios the SLO harness reports against. Specs are pure data:
    instantiation (rng splits, session pools) is the experiment's job. *)

type service =
  | Echo of { req_size : int; resp_size : int }
      (** Closed echo RPC against the harness echo handler: [req_size]
          bytes out, [resp_size] back. Multi-MTU sizes model large
          transfers. *)
  | Kv of { get_pct : int }
      (** Replicated-KV traffic: each arrival is a GET with probability
          [get_pct]% (else a PUT) against the sharded Raft service. *)

type tenant = {
  tname : string;
  sources : int;  (** independent open-loop arrival streams *)
  arrival : Arrival.spec;  (** per-source arrival process *)
  keygen : Keygen.t;  (** key stream ([Kv] tenants only) *)
  service : service;
  max_outstanding : int;
      (** client-side concurrency cap: arrivals beyond it are shed (counted,
          not issued) so one overloaded tenant cannot exhaust msgbufs *)
}

type scenario = { sname : string; tenants : tenant list; horizon_ns : int }

(** Aggregate long-run offered load of a tenant, in requests per second. *)
val offered_rps : tenant -> float

(** {2 Standard scenarios}

    Each takes [?scale] (default 1.0) multiplying every tenant's source
    count (floored at 1) and [?horizon_ms] (default 100.0) — CI smokes run
    scaled down, benchmarks at full scale. *)

(** "steady-poisson": two tenants, small-RPC KV (uniform keys) and small
    echo, both Poisson — the baseline the bursty scenarios are read
    against. *)
val steady_poisson : ?scale:float -> ?horizon_ms:float -> unit -> scenario

(** "hot-key-shift": Zipf(0.99)-skewed KV tenant whose hot spot rotates
    through the keyspace every 25 ms, over a background echo tenant. *)
val hot_key_shift : ?scale:float -> ?horizon_ms:float -> unit -> scenario

(** "bursty-mixed": on-off (MMPP-style) KV and small-echo tenants with
    synchronized burst windows, plus a large-transfer tenant whose 64 kB
    requests collide with the small-RPC tail. *)
val bursty_mixed : ?scale:float -> ?horizon_ms:float -> unit -> scenario

(** "local-mesh": a microservice-mesh echo tenant plus a KV tenant. The
    cluster-load experiment colocates part of the client tier with the
    echo servers for this scenario, so echo sessions split between the
    intra-host shared-memory transport and the wire while KV traffic
    stays fully remote. *)
val local_mesh : ?scale:float -> ?horizon_ms:float -> unit -> scenario

val builtin : (string * (?scale:float -> ?horizon_ms:float -> unit -> scenario)) list

(** Look up a builtin by scenario name. *)
val of_name : ?scale:float -> ?horizon_ms:float -> string -> scenario option
