type spec =
  | Poisson of { rate_rps : float }
  | On_off of { rate_rps : float; on_ns : int; off_ns : int }
  | Ramp of { base_rps : float; peak_rps : float; period_ns : int }

type t = { spec : spec; rng : Sim.Rng.t }

let validate = function
  | Poisson { rate_rps } -> if rate_rps <= 0. then invalid_arg "Arrival: rate_rps <= 0"
  | On_off { rate_rps; on_ns; off_ns } ->
      if rate_rps <= 0. then invalid_arg "Arrival: rate_rps <= 0";
      if on_ns <= 0 then invalid_arg "Arrival: on_ns <= 0";
      if off_ns < 0 then invalid_arg "Arrival: off_ns < 0"
  | Ramp { base_rps; peak_rps; period_ns } ->
      if base_rps <= 0. then invalid_arg "Arrival: base_rps <= 0";
      if peak_rps < base_rps then invalid_arg "Arrival: peak_rps < base_rps";
      if period_ns <= 0 then invalid_arg "Arrival: period_ns <= 0"

let make spec ~rng =
  validate spec;
  { spec; rng }

let spec t = t.spec

(* Mean interarrival gap in ns at [rate] rps, at least 1 ns so sequences
   are strictly increasing. *)
let exp_gap_ns rng rate = max 1 (int_of_float (Sim.Rng.exponential rng (1e9 /. rate)))

(* Raised-cosine diurnal profile: base at phase 0, peak at half period. *)
let ramp_rate ~base_rps ~peak_rps ~period_ns now_ns =
  let phase = float_of_int (now_ns mod period_ns) /. float_of_int period_ns in
  base_rps +. ((peak_rps -. base_rps) *. 0.5 *. (1. -. cos (2. *. Float.pi *. phase)))

let rate_at spec ~now_ns =
  match spec with
  | Poisson { rate_rps } -> rate_rps
  | On_off { rate_rps; on_ns; off_ns } ->
      if now_ns mod (on_ns + off_ns) < on_ns then rate_rps else 0.
  | Ramp { base_rps; peak_rps; period_ns } ->
      ramp_rate ~base_rps ~peak_rps ~period_ns now_ns

let active_at spec ~now_ns =
  match spec with
  | On_off { on_ns; off_ns; _ } -> now_ns mod (on_ns + off_ns) < on_ns
  | Poisson _ | Ramp _ -> true

let mean_rate_rps = function
  | Poisson { rate_rps } -> rate_rps
  | On_off { rate_rps; on_ns; off_ns } ->
      rate_rps *. (float_of_int on_ns /. float_of_int (on_ns + off_ns))
  | Ramp { base_rps; peak_rps; _ } -> 0.5 *. (base_rps +. peak_rps)

let next_after t ~now_ns =
  if now_ns < 0 then invalid_arg "Arrival.next_after: now_ns < 0";
  match t.spec with
  | Poisson { rate_rps } -> now_ns + exp_gap_ns t.rng rate_rps
  | On_off { rate_rps; on_ns; off_ns } ->
      (* Exact two-state modulation with deterministic phase windows: map
         wall time to accumulated on-time, draw the exponential gap there,
         and map back. Off-windows contribute no on-time, so arrivals never
         land in them and the on-window process is exactly Poisson. *)
      let period = on_ns + off_ns in
      let active_of_wall t_ns =
        let full = t_ns / period and rem = t_ns mod period in
        (full * on_ns) + min rem on_ns
      in
      let wall_of_active a_ns =
        (* Inverse restricted to on-windows: active time a maps to the a-th
           nanosecond of on-time. [rem = 0] lands on an on-window start. *)
        let full = a_ns / on_ns and rem = a_ns mod on_ns in
        (full * period) + rem
      in
      let a = active_of_wall now_ns + exp_gap_ns t.rng rate_rps in
      let arrival = wall_of_active a in
      (* [active_of_wall] is flat across off-windows, so an off-window
         [now_ns] can map back to the *start* of the window it sits in;
         the gap >= 1 ns guarantees progress past any in-window point. *)
      if arrival > now_ns then arrival else now_ns + 1
  | Ramp { base_rps; peak_rps; period_ns } ->
      (* Ogata thinning against the constant envelope [peak_rps]: propose
         Poisson(peak) candidates, accept with probability
         rate(candidate)/peak. Acceptance probability is >= base/peak > 0,
         so this terminates; the iteration cap is unreachable paranoia. *)
      let rec propose t_ns budget =
        let cand = t_ns + exp_gap_ns t.rng peak_rps in
        if budget = 0 then cand
        else
          let accept =
            Sim.Rng.float t.rng
            < ramp_rate ~base_rps ~peak_rps ~period_ns cand /. peak_rps
          in
          if accept then cand else propose cand (budget - 1)
      in
      propose now_ns 100_000
