type t =
  | Uniform of int
  | Zipf of { n : int; alpha : float; zetan : float; eta : float; theta : float }

let uniform ~n =
  assert (n > 0);
  Uniform n

let zeta n theta =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !acc

let zipf ~n ~theta =
  assert (n > 0 && theta > 0. && theta < 1.);
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta = (1. -. Float.pow (2. /. float_of_int n) (1. -. theta)) /. (1. -. (zeta2 /. zetan)) in
  Zipf { n; alpha; zetan; eta; theta }

let next t rng =
  match t with
  | Uniform n -> Sim.Rng.int rng n
  | Zipf { n; alpha; zetan; eta; theta } ->
      let u = Sim.Rng.float rng in
      let uz = u *. zetan in
      if uz < 1. then 0
      else if uz < 1. +. Float.pow 0.5 theta then 1
      else
        let v = float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.) alpha in
        min (n - 1) (int_of_float v)

let encode ?(width = 16) k = Printf.sprintf "%0*d" width k

(* 64-bit FNV-1a, truncated to OCaml's positive int range. Used wherever a
   key must map to a stable partition (shard maps, future load balancers):
   the placement is then a pure function of the key bytes, identical on
   clients and replicas. *)
let fnv1a s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    s;
  (* Mask to OCaml's 63-bit native int: [Int64.to_int] of anything in
     [2^62, 2^63) would wrap negative. *)
  Int64.to_int !h land max_int
