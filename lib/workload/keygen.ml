type t =
  | Uniform of int
  | Zipf of { n : int; alpha : float; zetan : float; eta : float; theta : float }
  | Hot_shift of { base : t; period_ns : int; stride : int; n : int }

let uniform ~n =
  assert (n > 0);
  Uniform n

let zeta n theta =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !acc

let zipf ~n ~theta =
  assert (n > 0 && theta > 0. && theta < 1.);
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta = (1. -. Float.pow (2. /. float_of_int n) (1. -. theta)) /. (1. -. (zeta2 /. zetan)) in
  Zipf { n; alpha; zetan; eta; theta }

let space = function
  | Uniform n -> n
  | Zipf { n; _ } -> n
  | Hot_shift { n; _ } -> n

let hot_shift ~base ~period_ns ~stride =
  if period_ns <= 0 then invalid_arg "Keygen.hot_shift: period_ns <= 0";
  if stride <= 0 then invalid_arg "Keygen.hot_shift: stride <= 0";
  Hot_shift { base; period_ns; stride; n = space base }

let rec next_at t rng ~now_ns =
  match t with
  | Uniform n -> Sim.Rng.int rng n
  | Zipf { n; alpha; zetan; eta; theta } ->
      let u = Sim.Rng.float rng in
      let uz = u *. zetan in
      if uz < 1. then 0
      else if uz < 1. +. Float.pow 0.5 theta then 1
      else
        let v = float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.) alpha in
        min (n - 1) (int_of_float v)
  | Hot_shift { base; period_ns; stride; n } ->
      (* Reduce the epoch count mod n before multiplying so the rotation
         never overflows, no matter how long the simulation runs. *)
      let shift = now_ns / period_ns mod n * stride mod n in
      (next_at base rng ~now_ns + shift) mod n

let next t rng = next_at t rng ~now_ns:0

let encode ?(width = 16) k =
  if k < 0 then invalid_arg "Keygen.encode: negative id";
  (* Ids wider than [width] keep all their digits (see the .mli): padding
     is a floor, never a truncation, so encoding stays injective. *)
  Printf.sprintf "%0*d" width k

(* 64-bit FNV-1a, truncated to OCaml's positive int range. Used wherever a
   key must map to a stable partition (shard maps, future load balancers):
   the placement is then a pure function of the key bytes, identical on
   clients and replicas. *)
let fnv1a s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    s;
  (* Mask to OCaml's 63-bit native int: [Int64.to_int] of anything in
     [2^62, 2^63) would wrap negative. *)
  Int64.to_int !h land max_int
