type service =
  | Echo of { req_size : int; resp_size : int }
  | Kv of { get_pct : int }

type tenant = {
  tname : string;
  sources : int;
  arrival : Arrival.spec;
  keygen : Keygen.t;
  service : service;
  max_outstanding : int;
}

type scenario = { sname : string; tenants : tenant list; horizon_ns : int }

let offered_rps t = float_of_int t.sources *. Arrival.mean_rate_rps t.arrival

let num_keys = 4096

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))
let ms f = int_of_float (f *. 1e6)

(* Per-source rates are modest; populations supply the aggregate. 16
   sources x 2500 rps = 40 krps per tenant at scale 1. *)

let steady_poisson ?(scale = 1.0) ?(horizon_ms = 100.0) () =
  {
    sname = "steady-poisson";
    horizon_ns = ms horizon_ms;
    tenants =
      [
        {
          tname = "kv-steady";
          sources = scaled scale 16;
          arrival = Arrival.Poisson { rate_rps = 2_500. };
          keygen = Keygen.uniform ~n:num_keys;
          service = Kv { get_pct = 50 };
          max_outstanding = 256;
        };
        {
          tname = "echo-small";
          sources = scaled scale 16;
          arrival = Arrival.Poisson { rate_rps = 2_500. };
          keygen = Keygen.uniform ~n:num_keys;
          service = Echo { req_size = 32; resp_size = 32 };
          max_outstanding = 256;
        };
      ];
  }

let hot_key_shift ?(scale = 1.0) ?(horizon_ms = 100.0) () =
  {
    sname = "hot-key-shift";
    horizon_ns = ms horizon_ms;
    tenants =
      [
        {
          tname = "kv-hot";
          sources = scaled scale 16;
          arrival = Arrival.Poisson { rate_rps = 2_500. };
          keygen =
            Keygen.hot_shift
              ~base:(Keygen.zipf ~n:num_keys ~theta:0.99)
              ~period_ns:(ms 25.0) ~stride:(num_keys / 4);
          service = Kv { get_pct = 80 };
          max_outstanding = 256;
        };
        {
          tname = "echo-small";
          sources = scaled scale 8;
          arrival = Arrival.Poisson { rate_rps = 2_500. };
          keygen = Keygen.uniform ~n:num_keys;
          service = Echo { req_size = 32; resp_size = 32 };
          max_outstanding = 256;
        };
      ];
  }

let bursty_mixed ?(scale = 1.0) ?(horizon_ms = 100.0) () =
  {
    sname = "bursty-mixed";
    horizon_ns = ms horizon_ms;
    tenants =
      [
        {
          tname = "kv-bursty";
          sources = scaled scale 16;
          (* 4 ms bursts at 8 krps, 6 ms quiet: 40% duty, 3.2 krps mean
             per source. All sources burst in phase. *)
          arrival =
            Arrival.On_off { rate_rps = 8_000.; on_ns = ms 4.0; off_ns = ms 6.0 };
          keygen = Keygen.zipf ~n:num_keys ~theta:0.99;
          service = Kv { get_pct = 50 };
          max_outstanding = 256;
        };
        {
          tname = "echo-bursty";
          sources = scaled scale 16;
          arrival =
            Arrival.On_off { rate_rps = 8_000.; on_ns = ms 4.0; off_ns = ms 6.0 };
          keygen = Keygen.uniform ~n:num_keys;
          service = Echo { req_size = 32; resp_size = 32 };
          max_outstanding = 256;
        };
        {
          tname = "bulk-transfer";
          sources = scaled scale 4;
          (* Diurnal ramp of 64 kB transfers: quiet troughs, ~2 krps
             peaks per source that land on top of the small-RPC bursts. *)
          arrival =
            Arrival.Ramp { base_rps = 200.; peak_rps = 2_000.; period_ns = ms 50.0 };
          keygen = Keygen.uniform ~n:num_keys;
          service = Echo { req_size = 64 * 1024; resp_size = 32 };
          max_outstanding = 32;
        };
      ];
  }

let local_mesh ?(scale = 1.0) ?(horizon_ms = 100.0) () =
  {
    sname = "local-mesh";
    horizon_ns = ms horizon_ms;
    tenants =
      [
        {
          (* Microservice-mesh RPCs: the experiment colocates part of the
             client tier with the echo tier, so this tenant's sessions mix
             intra-host (shared-memory ring) and cross-host (wire) paths. *)
          tname = "echo-mesh";
          sources = scaled scale 16;
          arrival = Arrival.Poisson { rate_rps = 2_500. };
          keygen = Keygen.uniform ~n:num_keys;
          service = Echo { req_size = 32; resp_size = 32 };
          max_outstanding = 256;
        };
        {
          tname = "kv-remote";
          sources = scaled scale 16;
          arrival = Arrival.Poisson { rate_rps = 2_500. };
          keygen = Keygen.uniform ~n:num_keys;
          service = Kv { get_pct = 50 };
          max_outstanding = 256;
        };
      ];
  }

let builtin =
  [
    ("steady-poisson", steady_poisson);
    ("hot-key-shift", hot_key_shift);
    ("bursty-mixed", bursty_mixed);
    ("local-mesh", local_mesh);
  ]

let of_name ?scale ?horizon_ms name =
  List.assoc_opt name builtin |> Option.map (fun f -> f ?scale ?horizon_ms ())
