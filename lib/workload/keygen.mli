(** Key generators for KV workloads. *)

type t

(** Uniform over [0, n). *)
val uniform : n:int -> t

(** YCSB-style Zipfian over [0, n) with skew [theta] (0.99 is the YCSB
    default). Rank 0 is the hottest key. *)
val zipf : n:int -> theta:float -> t

(** [hot_shift ~base ~period_ns ~stride] rotates [base]'s keyspace by
    [stride] ranks every [period_ns] of simulation time: at time [t] the
    draw is [(draw_base + (t / period_ns) * stride) mod n]. Over a Zipfian
    base this moves the hot spot through the keyspace on a fixed schedule —
    the "hot key migrates" scenario cache layers and shard balancers must
    survive. The schedule is anchored at t = 0 and is a pure function of
    the timestamp, so all sources see the same hot key at the same time. *)
val hot_shift : base:t -> period_ns:int -> stride:int -> t

(** Size of the keyspace, [n]. *)
val space : t -> int

(** [next_at t rng ~now_ns] draws a key for an operation issued at
    simulation time [now_ns] (which only [hot_shift] inspects). *)
val next_at : t -> Sim.Rng.t -> now_ns:int -> int

(** [next t rng] = [next_at t rng ~now_ns:0]. *)
val next : t -> Sim.Rng.t -> int

(** Fixed-width printable key encoding (16 bytes by default, like the
    paper's 16 B keys): the decimal rendering of [k], zero-padded on the
    left to [width] bytes. [width] is a minimum, not a truncation: an id
    whose decimal rendering needs more than [width] digits yields a longer
    string — distinct ids always encode to distinct keys, but such
    overflowing keys break the fixed-length and lexicographic-order
    guarantees, so size the keyspace to fit (the default 16 covers ids up
    to 10^16 - 1; OCaml's max_int needs 19). Raises [Invalid_argument] on
    negative ids. *)
val encode : ?width:int -> int -> string

(** 64-bit FNV-1a of the key bytes, truncated to a non-negative int. A
    stable, seed-independent hash for key-to-partition placement, so
    clients and replicas agree on shard ownership by construction. *)
val fnv1a : string -> int
