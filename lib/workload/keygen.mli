(** Key generators for KV workloads. *)

type t

(** Uniform over [0, n). *)
val uniform : n:int -> t

(** YCSB-style Zipfian over [0, n) with skew [theta] (0.99 is the YCSB
    default). *)
val zipf : n:int -> theta:float -> t

val next : t -> Sim.Rng.t -> int

(** Fixed-width printable key encoding (16 bytes by default, like the
    paper's 16 B keys). *)
val encode : ?width:int -> int -> string

(** 64-bit FNV-1a of the key bytes, truncated to a non-negative int. A
    stable, seed-independent hash for key-to-partition placement, so
    clients and replicas agree on shard ownership by construction. *)
val fnv1a : string -> int
