(** Open-loop arrival-process generators.

    Each generator produces a strictly increasing sequence of arrival
    timestamps, independent of service completions — the defining property
    of open-loop load (requests keep coming whether or not the system keeps
    up, so queueing shows up as latency, not as reduced offered load).

    All randomness comes from the generator's own {!Sim.Rng.t} stream, so a
    given [(spec, seed)] pair always yields the same arrival sequence
    regardless of what else the simulation interleaves. Phase boundaries
    (on/off windows, ramp position) are pure functions of the timestamp, so
    two sources with the same spec but different seeds share synchronized
    bursts — the correlated behaviour that makes open-loop bursts hurt. *)

type spec =
  | Poisson of { rate_rps : float }
      (** Memoryless arrivals: exponential interarrival gaps with mean
          [1e9 /. rate_rps] ns. *)
  | On_off of { rate_rps : float; on_ns : int; off_ns : int }
      (** Bursty two-state (MMPP-style) source: Poisson at [rate_rps]
          during deterministic on-windows of [on_ns], silent for [off_ns],
          repeating with period [on_ns + off_ns] anchored at t = 0. The
          long-run mean rate is [rate_rps * duty] where
          [duty = on_ns / (on_ns + off_ns)]. *)
  | Ramp of { base_rps : float; peak_rps : float; period_ns : int }
      (** Diurnal rate ramp: inhomogeneous Poisson whose instantaneous
          rate follows a raised cosine from [base_rps] (at t = 0 mod
          period) up to [peak_rps] (at half period) and back, sampled by
          thinning against [peak_rps]. *)

type t

(** [make spec ~rng] instantiates a generator owning [rng]. Rates must be
    positive; on/off windows and the ramp period must be positive (and
    [peak_rps >= base_rps]). *)
val make : spec -> rng:Sim.Rng.t -> t

val spec : t -> spec

(** [next_after t ~now_ns] draws the next arrival time, strictly greater
    than [now_ns]. Feeding back the returned timestamp walks the arrival
    sequence; the sequence depends only on the spec, the rng stream, and
    the starting timestamp. *)
val next_after : t -> now_ns:int -> int

(** Analytic long-run mean rate of a spec, in arrivals per second — for
    sizing populations and sanity checks. *)
val mean_rate_rps : spec -> float

(** Instantaneous rate at a timestamp (phase-dependent for [On_off] and
    [Ramp]; constant for [Poisson]). *)
val rate_at : spec -> now_ns:int -> float

(** True iff a source with this spec can emit at [now_ns] (always true
    except inside an [On_off] off-window). *)
val active_at : spec -> now_ns:int -> bool
