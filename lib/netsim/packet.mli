(** Network packets.

    The body is an extensible variant so higher layers (eRPC, RDMA) attach
    their own typed contents without the network caring; [size_bytes] is the
    on-wire size used for serialization and buffering. *)

type body = ..
type body += Empty

type t = {
  src : int;  (** source host id *)
  dst : int;  (** destination host id *)
  size_bytes : int;  (** on-wire size including all headers *)
  flow_hash : int;  (** ECMP key: packets of a flow take the same path *)
  body : body;
  mutable sent_at : Sim.Time.t;  (** stamped by the network on first hop *)
  mutable ecn : bool;  (** congestion-experienced mark (RED/ECN at switches) *)
  mutable corrupted : bool;
      (** physical-layer bit errors that hit bits outside the typed payload
          (e.g. header fields); receivers must treat the packet as failing
          its wire checksum *)
  mutable trace_id : int;
      (** 0 = untraced; otherwise a trace-scoped id stamped by the sender so
          NIC/port/delivery trace events can be joined back to the
          protocol-level packet description *)
}

val make : src:int -> dst:int -> size_bytes:int -> flow_hash:int -> body -> t
