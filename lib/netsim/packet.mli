(** Network packets.

    The body is an extensible variant so higher layers (eRPC, RDMA) attach
    their own typed contents without the network caring; [size_bytes] is the
    on-wire size used for serialization and buffering.

    Packets are reference-counted so they can be recycled through a
    free-list instead of allocated per send (see [Erpc.Wire.create_pool]):
    the creator hands out one reference, anything that delivers the same
    packet twice (duplicate injection) takes another with {!retain}, and
    every terminal point of the datapath — protocol RX, or any drop —
    calls {!free}. Packets built by {!make} are unpooled: {!free} on them
    is a no-op beyond the count, so generic network code may free
    unconditionally. *)

type body = ..
type body += Empty

type t = {
  mutable src : int;  (** source host id *)
  mutable dst : int;  (** destination host id *)
  mutable size_bytes : int;  (** on-wire size including all headers *)
  mutable flow_hash : int;  (** ECMP key: packets of a flow take the same path *)
  mutable body : body;
  mutable sent_at : Sim.Time.t;  (** stamped by the network on first hop *)
  mutable ecn : bool;  (** congestion-experienced mark (RED/ECN at switches) *)
  mutable corrupted : bool;
      (** physical-layer bit errors; receivers must treat the packet as
          failing its wire checksum *)
  mutable trace_id : int;
      (** 0 = untraced; otherwise a trace-scoped id stamped by the sender so
          NIC/port/delivery trace events can be joined back to the
          protocol-level packet description *)
  mutable refs : int;  (** live references; {!free} recycles at zero *)
  mutable release : t -> unit;
      (** recycler invoked when [refs] hits zero; no-op for unpooled
          packets *)
  mutable pool_next : t;  (** intrusive free-list link ([nil]-terminated) *)
}

(** Sentinel packet: free-list terminator and [Ring] dummy. Never enters
    the network. *)
val nil : t

val make : src:int -> dst:int -> size_bytes:int -> flow_hash:int -> body -> t

(** Reset transit state ([sent_at], [ecn], [corrupted], [trace_id]) and
    addressing on a recycled packet; sets [refs] to 1. The caller rewrites
    the body contents itself. *)
val reinit : t -> src:int -> dst:int -> size_bytes:int -> flow_hash:int -> unit

(** Take an extra reference (e.g. before delivering a duplicate). *)
val retain : t -> unit

(** Drop one reference; at zero the packet returns to its pool. Safe on
    unpooled packets and on [nil]. *)
val free : t -> unit

(** The default [release]: does nothing (unpooled packets). *)
val no_release : t -> unit

(** {2 Partition-boundary transfer}

    Pooled packets are recycled by in-place mutation, so the record itself
    must never cross a domain boundary. A [transfer] is the immutable
    snapshot that does: the sending partition snapshots with
    {!to_transfer} (then frees its packet locally), and the receiving
    partition rehydrates with {!of_transfer} from its own single-domain
    {!pool}. The body crosses by reference and must be immutable once
    sent; [trace_id] deliberately does not cross (trace ids are
    shard-scoped). *)

type transfer = {
  x_src : int;
  x_dst : int;
  x_size_bytes : int;
  x_flow_hash : int;
  x_body : body;
  x_sent_at : Sim.Time.t;
  x_ecn : bool;
  x_corrupted : bool;
}

val to_transfer : t -> transfer

type pool
(** Free-list of rehydration packets. Owned by one partition (one domain);
    never shared. *)

val create_pool : unit -> pool

val of_transfer : pool -> transfer -> t
(** A live packet carrying the snapshot, with one reference; {!free}
    returns it to [pool]. *)
