type t = {
  engine : Sim.Engine.t;
  name : string;
  latency_ns : int;
  pool : Buffer_pool.t;
  mutable ports : Port.t array;
  mutable num_ports : int;
  routes : (int, int array) Hashtbl.t;
  (* Packets crossing the switching fabric, paired with their egress port
     index. The transit latency is constant, so the preallocated [on_hop]
     event pops in scheduling order — no per-packet closure. *)
  transit : Packet.t Sim.Ring.t;
  transit_port : int Sim.Ring.t;
  mutable on_hop : unit -> unit;
}

let hop t =
  let pkt = Sim.Ring.take t.transit in
  let pi = Sim.Ring.take t.transit_port in
  ignore (Port.send t.ports.(pi) pkt)

let create engine ~name ~latency_ns ~buffer_bytes ~alpha =
  let t =
    {
      engine;
      name;
      latency_ns;
      pool = Buffer_pool.create ~capacity_bytes:buffer_bytes ~alpha;
      ports = [||];
      num_ports = 0;
      routes = Hashtbl.create 64;
      transit = Sim.Ring.create ~capacity:64 ~dummy:Packet.nil ();
      transit_port = Sim.Ring.create ~capacity:64 ~dummy:0 ();
      on_hop = (fun () -> ());
    }
  in
  t.on_hop <- (fun () -> hop t);
  let m = Sim.Engine.metrics engine in
  let labels = [ ("switch", name) ] in
  Obs.Metrics.gauge m ~name:"switch.buffer_used" ~labels (fun () ->
      float_of_int (Buffer_pool.used t.pool));
  Obs.Metrics.gauge m ~name:"switch.buffer_max" ~labels (fun () ->
      float_of_int (Buffer_pool.max_used t.pool));
  t

let name t = t.name
let pool t = t.pool

let add_port t port =
  if t.num_ports >= Array.length t.ports then begin
    let cap = max 8 (2 * Array.length t.ports) in
    let ports = Array.make cap port in
    Array.blit t.ports 0 ports 0 t.num_ports;
    t.ports <- ports
  end;
  t.ports.(t.num_ports) <- port;
  t.num_ports <- t.num_ports + 1;
  t.num_ports - 1

let port t i =
  assert (i >= 0 && i < t.num_ports);
  t.ports.(i)

let num_ports t = t.num_ports

let set_route t ~dst ~ports = Hashtbl.replace t.routes dst ports

let receive t pkt =
  match Hashtbl.find_opt t.routes pkt.Packet.dst with
  | None ->
      invalid_arg
        (Printf.sprintf "Switch %s: no route for host %d" t.name pkt.Packet.dst)
  | Some candidates ->
      let n = Array.length candidates in
      let idx = if n = 1 then 0 else pkt.Packet.flow_hash mod n in
      Sim.Ring.push t.transit pkt;
      Sim.Ring.push t.transit_port candidates.(idx);
      Sim.Engine.schedule_after t.engine t.latency_ns t.on_hop

let dropped_packets t =
  let total = ref 0 in
  for i = 0 to t.num_ports - 1 do
    total := !total + Port.dropped_packets t.ports.(i)
  done;
  !total

let max_buffer_used t = Buffer_pool.max_used t.pool
