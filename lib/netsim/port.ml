type ecn_config = { kmin_bytes : int; kmax_bytes : int; pmax : float }

type t = {
  engine : Sim.Engine.t;
  name : string;
  rate_gbps : float;
  extra_delay_ns : int;
  pool : Buffer_pool.t option;
  ecn : ecn_config option;
  lossless : bool;
  rng : Sim.Rng.t;
  sink : Packet.t -> unit;
  queue : Packet.t Sim.Ring.t;
  (* FIFO stages consumed by the preallocated [on_ser_done]/[on_arrive]
     events: at most one packet serializes at a time, and cable flight
     times are constant, so both stages pop in scheduling order and no
     per-packet closure is ever allocated. *)
  ser_fly : Packet.t Sim.Ring.t;
  out_fly : Packet.t Sim.Ring.t;
  mutable on_ser_done : unit -> unit;
  mutable on_arrive : unit -> unit;
  mutable queued_bytes : int;
  mutable draining : bool;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped_packets : int;
  mutable dropped_bytes : int;
  mutable pause_events : int;
  mutable max_queued_bytes : int;
  trace : Obs.Trace.t;
  tid : int;  (* this port's thread track under the network pid *)
}

(* Queue-occupancy counter sample; rendered by Perfetto as a per-port area
   chart (switch-buffer occupancy under incast, Table 5's "buffer"). *)
let trace_queue t ts =
  Obs.Trace.counter t.trace ~ts ~cat:"net" ~name:t.name ~pid:Obs.Trace.net_pid
    [
      ("queued_bytes", Obs.Trace.I t.queued_bytes);
      ( "pool_used",
        Obs.Trace.I (match t.pool with Some p -> Buffer_pool.used p | None -> 0) );
    ]

let serialization t pkt = Sim.Time.of_bytes_at_gbps pkt.Packet.size_bytes t.rate_gbps

let rec drain t =
  if Sim.Ring.is_empty t.queue then t.draining <- false
  else begin
    let pkt = Sim.Ring.take t.queue in
    let ser = serialization t pkt in
    Sim.Ring.push t.ser_fly pkt;
    Sim.Engine.schedule_after t.engine ser t.on_ser_done
  end

and ser_done t =
  let pkt = Sim.Ring.take t.ser_fly in
  t.queued_bytes <- t.queued_bytes - pkt.Packet.size_bytes;
  (match t.pool with Some pool -> Buffer_pool.release pool pkt.Packet.size_bytes | None -> ());
  t.tx_packets <- t.tx_packets + 1;
  t.tx_bytes <- t.tx_bytes + pkt.Packet.size_bytes;
  if Obs.Trace.enabled t.trace then trace_queue t (Sim.Engine.now t.engine);
  Sim.Ring.push t.out_fly pkt;
  Sim.Engine.schedule_after t.engine t.extra_delay_ns t.on_arrive;
  drain t

and arrive t = t.sink (Sim.Ring.take t.out_fly)

let create engine ~name ~rate_gbps ~extra_delay_ns ?pool ?ecn ?(lossless = false) ~sink () =
  let trace = Sim.Engine.trace engine in
  Obs.Trace.register_process trace ~pid:Obs.Trace.net_pid "network";
  let tid = Obs.Trace.register_track trace ~pid:Obs.Trace.net_pid name in
  let t =
    {
      engine;
      name;
      rate_gbps;
      extra_delay_ns;
      pool;
      ecn;
      lossless;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      sink;
      queue = Sim.Ring.create ~capacity:64 ~dummy:Packet.nil ();
      ser_fly = Sim.Ring.create ~capacity:4 ~dummy:Packet.nil ();
      out_fly = Sim.Ring.create ~capacity:16 ~dummy:Packet.nil ();
      on_ser_done = (fun () -> ());
      on_arrive = (fun () -> ());
      queued_bytes = 0;
      draining = false;
      tx_packets = 0;
      tx_bytes = 0;
      dropped_packets = 0;
      dropped_bytes = 0;
      pause_events = 0;
      max_queued_bytes = 0;
      trace;
      tid;
    }
  in
  t.on_ser_done <- (fun () -> ser_done t);
  t.on_arrive <- (fun () -> arrive t);
  let m = Sim.Engine.metrics engine in
  let labels = [ ("port", name) ] in
  Obs.Metrics.counter m ~name:"port.tx_pkts" ~labels (fun () -> t.tx_packets);
  Obs.Metrics.counter m ~name:"port.dropped_pkts" ~labels (fun () -> t.dropped_packets);
  Obs.Metrics.counter m ~name:"port.pause_events" ~labels (fun () -> t.pause_events);
  Obs.Metrics.gauge m ~name:"port.queued_bytes" ~labels (fun () ->
      float_of_int t.queued_bytes);
  Obs.Metrics.gauge m ~name:"port.max_queued_bytes" ~labels (fun () ->
      float_of_int t.max_queued_bytes);
  t

let send t pkt =
  let size = pkt.Packet.size_bytes in
  let admitted =
    match t.pool with
    | None -> true
    | Some pool ->
        let ok = Buffer_pool.admit pool ~port_queued_bytes:t.queued_bytes ~size in
        if (not ok) && t.lossless then begin
          (* PFC: a lossless fabric pauses the sender instead of dropping;
             modeled as forced admission with the pause counted. Pause
             propagation (HOL blocking, deadlocks) is out of scope. *)
          t.pause_events <- t.pause_events + 1;
          if Obs.Trace.enabled t.trace then
            Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"net"
              ~name:"pause" ~pid:Obs.Trace.net_pid ~tid:t.tid
              [ ("id", Obs.Trace.I pkt.Packet.trace_id) ];
          Buffer_pool.admit ~force:true pool ~port_queued_bytes:t.queued_bytes ~size
        end
        else ok
  in
  if admitted then begin
    (* RED-style ECN marking on the instantaneous queue (DCQCN's switch
       side). *)
    (match t.ecn with
    | Some { kmin_bytes; kmax_bytes; pmax } ->
        if t.queued_bytes > kmin_bytes then begin
          let p =
            if t.queued_bytes >= kmax_bytes then 1.0
            else
              pmax
              *. (float_of_int (t.queued_bytes - kmin_bytes)
                 /. float_of_int (max 1 (kmax_bytes - kmin_bytes)))
          in
          if Sim.Rng.bool_with_prob t.rng p then pkt.Packet.ecn <- true
        end
    | None -> ());
    Sim.Ring.push t.queue pkt;
    t.queued_bytes <- t.queued_bytes + size;
    if t.queued_bytes > t.max_queued_bytes then t.max_queued_bytes <- t.queued_bytes;
    if Obs.Trace.enabled t.trace then begin
      let ts = Sim.Engine.now t.engine in
      Obs.Trace.instant t.trace ~ts ~cat:"net" ~name:"enq"
        ~pid:Obs.Trace.net_pid ~tid:t.tid
        [ ("id", Obs.Trace.I pkt.Packet.trace_id); ("size", Obs.Trace.I size) ];
      trace_queue t ts
    end;
    if not t.draining then begin
      t.draining <- true;
      drain t
    end;
    true
  end
  else begin
    t.dropped_packets <- t.dropped_packets + 1;
    t.dropped_bytes <- t.dropped_bytes + size;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"net"
        ~name:"drop" ~pid:Obs.Trace.net_pid ~tid:t.tid
        [
          ("id", Obs.Trace.I pkt.Packet.trace_id);
          ("size", Obs.Trace.I size);
          ("reason", Obs.Trace.S "buffer");
        ];
    Packet.free pkt;
    false
  end

let name t = t.name
let queued_bytes t = t.queued_bytes
let queued_packets t = Sim.Ring.length t.queue

let queue_delay t =
  Sim.Time.of_bytes_at_gbps t.queued_bytes t.rate_gbps

let rate_gbps t = t.rate_gbps
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let dropped_packets t = t.dropped_packets
let dropped_bytes t = t.dropped_bytes
let pause_events t = t.pause_events
let max_queued_bytes t = t.max_queued_bytes

let reset_stats t =
  t.tx_packets <- 0;
  t.tx_bytes <- 0;
  t.dropped_packets <- 0;
  t.dropped_bytes <- 0;
  t.max_queued_bytes <- t.queued_bytes
