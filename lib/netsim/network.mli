(** Whole-network fabric: topology construction, host attachment, loss
    injection.

    Supported topologies:
    - [Single_switch]: all hosts under one ToR (CX3/CX5-style testbeds);
    - [Two_tier]: ToRs + spines with ECMP and configurable oversubscription
      (the paper's 100-node CX4 CloudLab cluster: 5 ToRs with 25 GbE
      downlinks and 100 GbE uplinks, 2:1 oversubscribed).

    Hosts are identified by dense integer ids. Each host registers an RX
    callback; [send] injects a packet at the source host's NIC TX port.
    Bernoulli packet loss (for Table 4) is applied at final delivery. *)

type topology =
  | Single_switch of { hosts : int }
  | Two_tier of {
      tors : int;
      hosts_per_tor : int;
      spines : int;
      uplinks_per_tor : int;
      uplink_gbps : float;
    }

type config = {
  topology : topology;
  link_gbps : float;  (** host-to-ToR link rate *)
  cable_ns : int;  (** per-hop propagation delay *)
  switch_latency_ns : int;  (** cut-through port-to-port latency *)
  switch_buffer_bytes : int;
  buffer_alpha : float;  (** dynamic-threshold alpha *)
  ecn : Port.ecn_config option;
      (** when set, switch egress ports ECN-mark packets (the paper's
          clusters lacked this; our simulated switches support it, which is
          what enables the DCQCN extension) *)
  lossless : bool;
      (** PFC-style lossless fabric: congested switch ports pause (modeled
          as forced buffer admission) instead of dropping — the InfiniBand
          CX3 cluster *)
}

val default_config : config

type t

val create : Sim.Engine.t -> config -> t

val num_hosts : t -> int
val config : t -> config

(** [attach t ~host ~rx] registers the receive callback for [host].
    Packets surviving loss injection are delivered to [rx]. *)
val attach : t -> host:int -> rx:(Packet.t -> unit) -> unit

(** Inject a packet at [pkt.src]'s NIC TX port. *)
val send : t -> Packet.t -> unit

(** Delivery-time Bernoulli loss probability (default 0). *)
val set_loss_prob : t -> float -> unit

val injected_losses : t -> int

(** {2 Deterministic fault injection}

    These hooks are driven by the [faults] library's schedule compiler.
    All randomized faults (loss, corruption, duplication, reordering) draw
    from the network's seeded RNG stream in a fixed order, so a given
    engine seed and fault schedule always produce the same packet-level
    outcome. *)

(** Take a host's access link down ([false]) or back up ([true]). While
    down, packets from and to the host are dropped at the fault layer. *)
val set_host_link : t -> host:int -> bool -> unit

val host_link_up : t -> host:int -> bool

(** Sever (or heal) connectivity between two ToRs: packets whose endpoints
    sit under the severed pair are dropped. A ToR partitioned from itself
    ([tor_a = tor_b]) isolates intra-rack traffic too. *)
val set_partition : t -> tor_a:int -> tor_b:int -> bool -> unit

(** Per-delivery corruption probability. A corrupted packet is mangled by
    the installed corrupter ({!set_corrupter}; the default sets
    {!Packet.t.corrupted}) and still delivered — receivers must detect it
    with a wire checksum. *)
val set_corrupt_prob : t -> float -> unit

(** Install the function that mangles a packet chosen for corruption.
    Higher layers install a payload-aware corrupter that flips real bits so
    wire checksums are genuinely exercised. *)
val set_corrupter : t -> (Packet.t -> unit) -> unit

(** Per-delivery duplication probability; the duplicate arrives 50 ns after
    the original. *)
val set_dup_prob : t -> float -> unit

(** Bounded reordering: with probability [prob], delay a packet's delivery
    by 1..[max_delay_ns] ns so later packets overtake it. *)
val set_reorder : t -> prob:float -> max_delay_ns:int -> unit

(** Delay-jitter spike: add [extra_ns] to every delivery at [host]
    (0 clears). *)
val set_host_extra_delay : t -> host:int -> int -> unit

(** [arm_drop_nth t n] deterministically drops the [n]-th next final
    delivery (1-based, counted from now, across all hosts) — lets protocol
    tests target a specific packet instead of sweeping seeds. May be armed
    multiple times. *)
val arm_drop_nth : t -> int -> unit

(** Fault-layer drop/injection counters. *)

val link_drops : t -> int
val partition_drops : t -> int
val targeted_drops : t -> int
val injected_dups : t -> int
val injected_corruptions : t -> int
val injected_reorders : t -> int

(** The ToR index a host sits under (0 for single-switch topologies). *)
val host_tor_index : t -> host:int -> int

(** The ToR egress port facing [host] — where incast queueing happens. *)
val tor_downlink_port : t -> host:int -> Port.t

(** The host's own NIC TX port. *)
val host_tx_port : t -> host:int -> Port.t

(** All switches, for drop/buffer statistics. *)
val switches : t -> Switch.t list

(** Total packets dropped in the fabric by buffer admission. *)
val fabric_drops : t -> int

(** True if the two hosts sit under the same ToR. *)
val same_tor : t -> int -> int -> bool
