type body = ..
type body += Empty

type t = {
  src : int;
  dst : int;
  size_bytes : int;
  flow_hash : int;
  body : body;
  mutable sent_at : Sim.Time.t;
  mutable ecn : bool;
  mutable corrupted : bool;
      (* physical-layer bit errors outside the typed payload (header bits);
         receivers treat it as a checksum mismatch *)
  mutable trace_id : int;
      (* 0 = untraced; otherwise an Obs.Trace.fresh_id stamped by the
         sender so per-layer trace events can be joined per packet *)
}

let make ~src ~dst ~size_bytes ~flow_hash body =
  assert (size_bytes > 0);
  {
    src;
    dst;
    size_bytes;
    flow_hash;
    body;
    sent_at = Sim.Time.zero;
    ecn = false;
    corrupted = false;
    trace_id = 0;
  }
