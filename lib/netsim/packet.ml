type body = ..
type body += Empty

type t = {
  mutable src : int;
  mutable dst : int;
  mutable size_bytes : int;
  mutable flow_hash : int;
  mutable body : body;
  mutable sent_at : Sim.Time.t;
  mutable ecn : bool;
  mutable corrupted : bool;
      (* physical-layer bit errors (modeled as a flag; see Erpc.Wire);
         receivers treat it as a checksum mismatch *)
  mutable trace_id : int;
      (* 0 = untraced; otherwise an Obs.Trace.fresh_id stamped by the
         sender so per-layer trace events can be joined per packet *)
  mutable refs : int;
      (* in-flight reference count; [free] recycles at zero. Unpooled
         packets have a no-op [release], so [free] is harmless on them. *)
  mutable release : t -> unit;
  mutable pool_next : t;  (* intrusive free-list link, [nil]-terminated *)
}

let no_release (_ : t) = ()

let rec nil =
  {
    src = 0;
    dst = 0;
    size_bytes = 1;
    flow_hash = 0;
    body = Empty;
    sent_at = 0;
    ecn = false;
    corrupted = false;
    trace_id = 0;
    refs = 0;
    release = no_release;
    pool_next = nil;
  }

let make ~src ~dst ~size_bytes ~flow_hash body =
  assert (size_bytes > 0);
  {
    src;
    dst;
    size_bytes;
    flow_hash;
    body;
    sent_at = Sim.Time.zero;
    ecn = false;
    corrupted = false;
    trace_id = 0;
    refs = 1;
    release = no_release;
    pool_next = nil;
  }

(* Reset the transit state of a recycled packet. The caller has already
   rewritten [body]'s contents in place. *)
let reinit t ~src ~dst ~size_bytes ~flow_hash =
  assert (size_bytes > 0);
  t.src <- src;
  t.dst <- dst;
  t.size_bytes <- size_bytes;
  t.flow_hash <- flow_hash;
  t.sent_at <- Sim.Time.zero;
  t.ecn <- false;
  t.corrupted <- false;
  t.trace_id <- 0;
  t.refs <- 1

let retain t = t.refs <- t.refs + 1

let free t =
  if t.refs > 0 then begin
    t.refs <- t.refs - 1;
    if t.refs = 0 then t.release t
  end
