type body = ..
type body += Empty

type t = {
  mutable src : int;
  mutable dst : int;
  mutable size_bytes : int;
  mutable flow_hash : int;
  mutable body : body;
  mutable sent_at : Sim.Time.t;
  mutable ecn : bool;
  mutable corrupted : bool;
      (* physical-layer bit errors (modeled as a flag; see Erpc.Wire);
         receivers treat it as a checksum mismatch *)
  mutable trace_id : int;
      (* 0 = untraced; otherwise an Obs.Trace.fresh_id stamped by the
         sender so per-layer trace events can be joined per packet *)
  mutable refs : int;
      (* in-flight reference count; [free] recycles at zero. Unpooled
         packets have a no-op [release], so [free] is harmless on them. *)
  mutable release : t -> unit;
  mutable pool_next : t;  (* intrusive free-list link, [nil]-terminated *)
}

let no_release (_ : t) = ()

let rec nil =
  {
    src = 0;
    dst = 0;
    size_bytes = 1;
    flow_hash = 0;
    body = Empty;
    sent_at = 0;
    ecn = false;
    corrupted = false;
    trace_id = 0;
    refs = 0;
    release = no_release;
    pool_next = nil;
  }

let make ~src ~dst ~size_bytes ~flow_hash body =
  assert (size_bytes > 0);
  {
    src;
    dst;
    size_bytes;
    flow_hash;
    body;
    sent_at = Sim.Time.zero;
    ecn = false;
    corrupted = false;
    trace_id = 0;
    refs = 1;
    release = no_release;
    pool_next = nil;
  }

(* Reset the transit state of a recycled packet. The caller has already
   rewritten [body]'s contents in place. *)
let reinit t ~src ~dst ~size_bytes ~flow_hash =
  assert (size_bytes > 0);
  t.src <- src;
  t.dst <- dst;
  t.size_bytes <- size_bytes;
  t.flow_hash <- flow_hash;
  t.sent_at <- Sim.Time.zero;
  t.ecn <- false;
  t.corrupted <- false;
  t.trace_id <- 0;
  t.refs <- 1

let retain t = t.refs <- t.refs + 1

let free t =
  if t.refs > 0 then begin
    t.refs <- t.refs - 1;
    if t.refs = 0 then t.release t
  end

(* {2 Partition-boundary transfer}

   Intrusive free-lists cannot cross OCaml domains: a pooled packet is
   recycled by mutation on its owner's domain, so handing the record
   itself to another partition would race. A [transfer] is the immutable
   snapshot that crosses instead; the receiving partition rehydrates it
   from its own [pool]. The [body] is carried by reference — bodies sent
   across a partition boundary must themselves be immutable (or never
   mutated after send), which holds for the value-typed bodies used by
   the partitioned experiments. *)

type transfer = {
  x_src : int;
  x_dst : int;
  x_size_bytes : int;
  x_flow_hash : int;
  x_body : body;
  x_sent_at : Sim.Time.t;
  x_ecn : bool;
  x_corrupted : bool;
}

let to_transfer t =
  {
    x_src = t.src;
    x_dst = t.dst;
    x_size_bytes = t.size_bytes;
    x_flow_hash = t.flow_hash;
    x_body = t.body;
    x_sent_at = t.sent_at;
    x_ecn = t.ecn;
    x_corrupted = t.corrupted;
  }

(* Single-domain free-list of rehydration packets, one per partition. *)
type pool = { mutable free_head : t }

let create_pool () = { free_head = nil }

let pool_release pool t =
  t.body <- Empty;
  t.pool_next <- pool.free_head;
  pool.free_head <- t

let of_transfer pool x =
  let p =
    if pool.free_head != nil then begin
      let p = pool.free_head in
      pool.free_head <- p.pool_next;
      p.pool_next <- nil;
      reinit p ~src:x.x_src ~dst:x.x_dst ~size_bytes:x.x_size_bytes
        ~flow_hash:x.x_flow_hash;
      p
    end
    else begin
      let p =
        make ~src:x.x_src ~dst:x.x_dst ~size_bytes:x.x_size_bytes
          ~flow_hash:x.x_flow_hash Empty
      in
      p.release <- (fun t -> pool_release pool t);
      p
    end
  in
  p.body <- x.x_body;
  p.sent_at <- x.x_sent_at;
  p.ecn <- x.x_ecn;
  p.corrupted <- x.x_corrupted;
  p
