type topology =
  | Single_switch of { hosts : int }
  | Two_tier of {
      tors : int;
      hosts_per_tor : int;
      spines : int;
      uplinks_per_tor : int;
      uplink_gbps : float;
    }

type config = {
  topology : topology;
  link_gbps : float;
  cable_ns : int;
  switch_latency_ns : int;
  switch_buffer_bytes : int;
  buffer_alpha : float;
  ecn : Port.ecn_config option;  (* ECN marking at switch egress ports *)
  lossless : bool;  (* PFC-style lossless fabric (InfiniBand) *)
}

let default_config =
  {
    topology = Single_switch { hosts = 2 };
    link_gbps = 25.0;
    cable_ns = 100;
    switch_latency_ns = 300;
    switch_buffer_bytes = 12 * 1024 * 1024;
    buffer_alpha = 8.0;
    ecn = None;
    lossless = false;
  }

type host = {
  mutable rx : Packet.t -> unit;
  tx_port : Port.t;
  tor : Switch.t;
  tor_downlink : int;  (* port index on [tor] facing this host *)
  tor_index : int;
}

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  hosts : host array;
  switch_list : Switch.t list;
  rng : Sim.Rng.t;
  mutable loss_prob : float;
  mutable injected_losses : int;
  (* deterministic fault-injection state (lib/faults drives these) *)
  link_up : bool array;  (* per-host access-link state *)
  partitions : (int * int, unit) Hashtbl.t;  (* severed ToR pairs *)
  extra_delay_ns : int array;  (* per-host delivery delay spike *)
  mutable corrupt_prob : float;
  mutable corrupter : Packet.t -> unit;
  mutable dup_prob : float;
  mutable reorder_prob : float;
  mutable reorder_max_ns : int;
  mutable delivery_count : int;
  mutable armed_drops : int list;  (* absolute delivery indexes to drop *)
  mutable link_drops : int;
  mutable partition_drops : int;
  mutable targeted_drops : int;
  mutable injected_dups : int;
  mutable injected_corruptions : int;
  mutable injected_reorders : int;
}

let tor_pair a b = if a <= b then (a, b) else (b, a)

let partitioned t src dst =
  Hashtbl.length t.partitions > 0
  && Hashtbl.mem t.partitions
       (tor_pair t.hosts.(src).tor_index t.hosts.(dst).tor_index)

(* Observe-only delivery/drop events; tid 0 of the network pid is the
   delivery track. *)
let trace_drop t pkt reason =
  let tr = Sim.Engine.trace t.engine in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~ts:(Sim.Engine.now t.engine) ~cat:"net" ~name:"drop"
      ~pid:Obs.Trace.net_pid ~tid:0
      [ ("id", Obs.Trace.I pkt.Packet.trace_id); ("reason", Obs.Trace.S reason) ]

let trace_deliver t host_id pkt =
  let tr = Sim.Engine.trace t.engine in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~ts:(Sim.Engine.now t.engine) ~cat:"net" ~name:"deliver"
      ~pid:Obs.Trace.net_pid ~tid:0
      [ ("id", Obs.Trace.I pkt.Packet.trace_id); ("dst", Obs.Trace.I host_id) ]

(* Final-delivery fault pipeline. Order is fixed so that a given seed and
   fault schedule always consume the RNG identically: targeted drop, link
   state, partition, Bernoulli loss, corruption, then reorder/jitter delay
   and duplication. *)
let deliver t host_id pkt =
  let h = t.hosts.(host_id) in
  t.delivery_count <- t.delivery_count + 1;
  let n = t.delivery_count in
  if List.mem n t.armed_drops then begin
    t.armed_drops <- List.filter (fun m -> m <> n) t.armed_drops;
    t.targeted_drops <- t.targeted_drops + 1;
    trace_drop t pkt "targeted";
    Packet.free pkt
  end
  else if not (t.link_up.(pkt.Packet.src) && t.link_up.(host_id)) then begin
    t.link_drops <- t.link_drops + 1;
    trace_drop t pkt "link";
    Packet.free pkt
  end
  else if partitioned t pkt.Packet.src host_id then begin
    t.partition_drops <- t.partition_drops + 1;
    trace_drop t pkt "partition";
    Packet.free pkt
  end
  else if t.loss_prob > 0. && Sim.Rng.bool_with_prob t.rng t.loss_prob then begin
    t.injected_losses <- t.injected_losses + 1;
    trace_drop t pkt "loss";
    Packet.free pkt
  end
  else begin
    if t.corrupt_prob > 0. && Sim.Rng.bool_with_prob t.rng t.corrupt_prob then begin
      t.corrupter pkt;
      t.injected_corruptions <- t.injected_corruptions + 1
    end;
    let delay = ref t.extra_delay_ns.(host_id) in
    if t.reorder_prob > 0. && Sim.Rng.bool_with_prob t.rng t.reorder_prob then begin
      (* Bounded reordering: hold this packet back so later packets of the
         flow overtake it at the receiver. *)
      t.injected_reorders <- t.injected_reorders + 1;
      delay := !delay + 1 + Sim.Rng.int t.rng (max 1 t.reorder_max_ns)
    end;
    (* Decide duplication before the first delivery: a direct [h.rx] may
       free (and recycle) the packet synchronously, so the duplicate's
       extra reference must be taken while ours is still live. [h.rx]
       never consumes this RNG stream, so the draw order is unchanged. *)
    let dup = t.dup_prob > 0. && Sim.Rng.bool_with_prob t.rng t.dup_prob in
    if dup then Packet.retain pkt;
    if !delay = 0 then begin
      trace_deliver t host_id pkt;
      h.rx pkt
    end
    else
      Sim.Engine.schedule_after t.engine !delay (fun () ->
          trace_deliver t host_id pkt;
          h.rx pkt);
    if dup then begin
      (* The duplicate trails the original by a hair, like a replayed
         frame arriving back-to-back; the extra reference taken above is
         released by the second RX. *)
      t.injected_dups <- t.injected_dups + 1;
      Sim.Engine.schedule_after t.engine (!delay + 50) (fun () ->
          trace_deliver t host_id pkt;
          h.rx pkt)
    end
  end

let unattached_rx _pkt = invalid_arg "Network: packet delivered to unattached host"

(* Builds one ToR with [host_ids] below it. Returns the per-host record
   list. Downlink egress ports deliver to hosts; host TX ports feed the
   ToR's ingress. *)
let build_tor t_ref engine cfg ~name ~tor_index ~host_ids switch =
  List.map
    (fun host_id ->
      let downlink =
        Port.create engine
          ~name:(Printf.sprintf "%s->h%d" name host_id)
          ~rate_gbps:cfg.link_gbps ~extra_delay_ns:cfg.cable_ns
          ~pool:(Switch.pool switch) ?ecn:cfg.ecn ~lossless:cfg.lossless
          ~sink:(fun pkt -> deliver (Lazy.force t_ref) host_id pkt)
          ()
      in
      let downlink_idx = Switch.add_port switch downlink in
      Switch.set_route switch ~dst:host_id ~ports:[| downlink_idx |];
      let tx_port =
        Port.create engine
          ~name:(Printf.sprintf "h%d->%s" host_id name)
          ~rate_gbps:cfg.link_gbps ~extra_delay_ns:cfg.cable_ns
          ~sink:(fun pkt -> Switch.receive switch pkt)
          ()
      in
      (host_id, { rx = unattached_rx; tx_port; tor = switch; tor_downlink = downlink_idx; tor_index }))
    host_ids

let create engine cfg =
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let rec t =
    lazy
      (let hosts, switch_list =
         match cfg.topology with
         | Single_switch { hosts = n } ->
             let sw =
               Switch.create engine ~name:"sw0" ~latency_ns:cfg.switch_latency_ns
                 ~buffer_bytes:cfg.switch_buffer_bytes ~alpha:cfg.buffer_alpha
             in
             let host_ids = List.init n Fun.id in
             let assoc = build_tor t engine cfg ~name:"sw0" ~tor_index:0 ~host_ids sw in
             let arr = Array.make n (snd (List.hd assoc)) in
             List.iter (fun (id, h) -> arr.(id) <- h) assoc;
             (arr, [ sw ])
         | Two_tier { tors; hosts_per_tor; spines; uplinks_per_tor; uplink_gbps } ->
             let n = tors * hosts_per_tor in
             let spine_switches =
               Array.init spines (fun s ->
                   Switch.create engine
                     ~name:(Printf.sprintf "spine%d" s)
                     ~latency_ns:cfg.switch_latency_ns ~buffer_bytes:cfg.switch_buffer_bytes
                     ~alpha:cfg.buffer_alpha)
             in
             let tor_switches =
               Array.init tors (fun i ->
                   Switch.create engine
                     ~name:(Printf.sprintf "tor%d" i)
                     ~latency_ns:cfg.switch_latency_ns ~buffer_bytes:cfg.switch_buffer_bytes
                     ~alpha:cfg.buffer_alpha)
             in
             let assoc = ref [] in
             Array.iteri
               (fun i tor ->
                 let host_ids = List.init hosts_per_tor (fun j -> (i * hosts_per_tor) + j) in
                 assoc := build_tor t engine cfg ~name:(Printf.sprintf "tor%d" i) ~tor_index:i ~host_ids tor @ !assoc;
                 (* Uplinks: [uplinks_per_tor] ports, spread round-robin
                    across spines; ECMP hashes flows over all of them. Each
                    uplink is mirrored by a spine-side downlink of the same
                    rate, so the fabric is symmetric. *)
                 let spine_downlinks = Array.map (fun _ -> ref []) spine_switches in
                 let uplink_ports =
                   Array.init uplinks_per_tor (fun u ->
                       let si = u mod spines in
                       let spine = spine_switches.(si) in
                       let p =
                         Port.create engine
                           ~name:(Printf.sprintf "tor%d-up%d" i u)
                           ~rate_gbps:uplink_gbps ~extra_delay_ns:cfg.cable_ns
                           ~pool:(Switch.pool tor) ?ecn:cfg.ecn ~lossless:cfg.lossless
                           ~sink:(fun pkt -> Switch.receive spine pkt)
                           ()
                       in
                       let down =
                         Port.create engine
                           ~name:(Printf.sprintf "%s->tor%d.%d" (Switch.name spine) i u)
                           ~rate_gbps:uplink_gbps ~extra_delay_ns:cfg.cable_ns
                           ~pool:(Switch.pool spine) ?ecn:cfg.ecn ~lossless:cfg.lossless
                           ~sink:(fun pkt -> Switch.receive tor pkt)
                           ()
                       in
                       spine_downlinks.(si) := Switch.add_port spine down :: !(spine_downlinks.(si));
                       Switch.add_port tor p)
                 in
                 (* Remote hosts route over the uplinks. *)
                 for dst = 0 to n - 1 do
                   if dst / hosts_per_tor <> i then
                     Switch.set_route tor ~dst ~ports:uplink_ports
                 done;
                 Array.iteri
                   (fun si spine ->
                     match !(spine_downlinks.(si)) with
                     | [] -> ()
                     | ports ->
                         let ports = Array.of_list ports in
                         List.iter
                           (fun host_id -> Switch.set_route spine ~dst:host_id ~ports)
                           (List.init hosts_per_tor (fun j -> (i * hosts_per_tor) + j)))
                   spine_switches)
               tor_switches;
             let arr = Array.make n (snd (List.hd !assoc)) in
             List.iter (fun (id, h) -> arr.(id) <- h) !assoc;
             (arr, Array.to_list tor_switches @ Array.to_list spine_switches)
       in
       {
         engine;
         cfg;
         hosts;
         switch_list;
         rng;
         loss_prob = 0.;
         injected_losses = 0;
         link_up = Array.make (Array.length hosts) true;
         partitions = Hashtbl.create 4;
         extra_delay_ns = Array.make (Array.length hosts) 0;
         corrupt_prob = 0.;
         corrupter = (fun pkt -> pkt.Packet.corrupted <- true);
         dup_prob = 0.;
         reorder_prob = 0.;
         reorder_max_ns = 0;
         delivery_count = 0;
         armed_drops = [];
         link_drops = 0;
         partition_drops = 0;
         targeted_drops = 0;
         injected_dups = 0;
         injected_corruptions = 0;
         injected_reorders = 0;
       })
  in
  Lazy.force t

let num_hosts t = Array.length t.hosts
let config t = t.cfg

let attach t ~host ~rx = t.hosts.(host).rx <- rx

let send t pkt =
  if not t.link_up.(pkt.Packet.src) then begin
    t.link_drops <- t.link_drops + 1;
    trace_drop t pkt "link_tx";
    Packet.free pkt
  end
  else begin
    pkt.Packet.sent_at <- Sim.Engine.now t.engine;
    ignore (Port.send t.hosts.(pkt.Packet.src).tx_port pkt)
  end

let set_loss_prob t p = t.loss_prob <- p
let injected_losses t = t.injected_losses

(* {2 Fault injection} *)

let set_host_link t ~host up = t.link_up.(host) <- up
let host_link_up t ~host = t.link_up.(host)

let set_partition t ~tor_a ~tor_b severed =
  let key = tor_pair tor_a tor_b in
  if severed then Hashtbl.replace t.partitions key ()
  else Hashtbl.remove t.partitions key

let set_corrupt_prob t p = t.corrupt_prob <- p

let set_corrupter t f = t.corrupter <- f

let set_dup_prob t p = t.dup_prob <- p

let set_reorder t ~prob ~max_delay_ns =
  t.reorder_prob <- prob;
  t.reorder_max_ns <- max_delay_ns

let set_host_extra_delay t ~host extra_ns = t.extra_delay_ns.(host) <- extra_ns

let arm_drop_nth t n =
  if n < 1 then invalid_arg "Network.arm_drop_nth: n must be >= 1";
  t.armed_drops <- (t.delivery_count + n) :: t.armed_drops

let link_drops t = t.link_drops
let partition_drops t = t.partition_drops
let targeted_drops t = t.targeted_drops
let injected_dups t = t.injected_dups
let injected_corruptions t = t.injected_corruptions
let injected_reorders t = t.injected_reorders
let host_tor_index t ~host = t.hosts.(host).tor_index

let tor_downlink_port t ~host =
  let h = t.hosts.(host) in
  Switch.port h.tor h.tor_downlink

let host_tx_port t ~host = t.hosts.(host).tx_port

let switches t = t.switch_list

let fabric_drops t =
  List.fold_left (fun acc sw -> acc + Switch.dropped_packets sw) 0 t.switch_list

let same_tor t a b = t.hosts.(a).tor_index = t.hosts.(b).tor_index
