type config = {
  tx_latency_ns : int;
  rx_latency_ns : int;
  rx_jitter_ns : int;
  tx_flush_ns : int;
  rq_size : int;
  multi_packet_rq : bool;
  multi_packet_rq_stride : int;
  rq_replenish_unit_ns : int;
}

let default_config =
  {
    tx_latency_ns = 300;
    rx_latency_ns = 250;
    rx_jitter_ns = 0;
    tx_flush_ns = 2_000;
    rq_size = 4096;
    multi_packet_rq = true;
    multi_packet_rq_stride = 512;
    rq_replenish_unit_ns = 7;
  }

type t = {
  engine : Sim.Engine.t;
  net : Netsim.Network.t;
  host : int;
  cfg : config;
  rng : Sim.Rng.t;
  mutable rx_last_delivery : Sim.Time.t;
  mutable tx_pending : int;
  mutable tx_last_done : Sim.Time.t;
  rx_ring : Netsim.Packet.t Sim.Ring.t;
  (* Packets in the modeled DMA pipelines, consumed FIFO by the
     preallocated [rx_done]/[tx_done] events so the per-packet hops
     allocate no closures. *)
  rx_fly : Netsim.Packet.t Sim.Ring.t;
  tx_fly : Netsim.Packet.t Sim.Ring.t;
  mutable rx_done : unit -> unit;
  mutable tx_done : unit -> unit;
  mutable rx_notify : unit -> unit;
  mutable rq_available : int;
  mutable replenish_partial : int;
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable rx_dropped_no_desc : int;
  trace : Obs.Trace.t;
  pid : int;
  tid : int;  (* the host's "nic" thread track *)
}

(* RX DMA pipeline completion: drop if no descriptor, else ring the packet
   for the owner's poll. Deliveries are forced FIFO, so the in-flight ring
   pops in the same order the completions were scheduled. *)
let rx_complete t =
  let pkt = Sim.Ring.take t.rx_fly in
  if t.rq_available <= 0 then begin
    t.rx_dropped_no_desc <- t.rx_dropped_no_desc + 1;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"nic"
        ~name:"rx_drop" ~pid:t.pid ~tid:t.tid
        [
          ("id", Obs.Trace.I pkt.Netsim.Packet.trace_id);
          ("reason", Obs.Trace.S "no_desc");
        ];
    Netsim.Packet.free pkt
  end
  else begin
    t.rq_available <- t.rq_available - 1;
    t.rx_packets <- t.rx_packets + 1;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"nic"
        ~name:"rx" ~pid:t.pid ~tid:t.tid
        [ ("id", Obs.Trace.I pkt.Netsim.Packet.trace_id) ];
    let was_empty = Sim.Ring.is_empty t.rx_ring in
    Sim.Ring.push t.rx_ring pkt;
    if was_empty then t.rx_notify ()
  end

let on_network_rx t pkt =
  (* DMA write + CQE after rx_latency_ns (plus bounded jitter from PCIe and
     DMA-batching variability); drop if no descriptor. Delivery stays FIFO:
     jitter may delay, never reorder. *)
  let jitter = if t.cfg.rx_jitter_ns > 0 then Sim.Rng.int t.rng (t.cfg.rx_jitter_ns + 1) else 0 in
  let now = Sim.Engine.now t.engine in
  let at = max (now + t.cfg.rx_latency_ns + jitter) t.rx_last_delivery in
  t.rx_last_delivery <- at;
  Sim.Ring.push t.rx_fly pkt;
  Sim.Engine.schedule t.engine at t.rx_done

let tx_complete t =
  let pkt = Sim.Ring.take t.tx_fly in
  t.tx_pending <- t.tx_pending - 1;
  Netsim.Network.send t.net pkt

let create engine net ~host cfg =
  let trace = Sim.Engine.trace engine in
  let pid = Obs.Trace.host_pid host in
  Obs.Trace.register_process trace ~pid (Printf.sprintf "host%d" host);
  let tid = Obs.Trace.register_track trace ~pid "nic" in
  let t =
    {
      engine;
      net;
      host;
      cfg;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      rx_last_delivery = Sim.Time.zero;
      tx_pending = 0;
      tx_last_done = Sim.Time.zero;
      rx_ring = Sim.Ring.create ~capacity:64 ~dummy:Netsim.Packet.nil ();
      rx_fly = Sim.Ring.create ~capacity:64 ~dummy:Netsim.Packet.nil ();
      tx_fly = Sim.Ring.create ~capacity:64 ~dummy:Netsim.Packet.nil ();
      rx_done = (fun () -> ());
      tx_done = (fun () -> ());
      rx_notify = (fun () -> ());
      rq_available = cfg.rq_size;
      replenish_partial = 0;
      rx_packets = 0;
      tx_packets = 0;
      rx_dropped_no_desc = 0;
      trace;
      pid;
      tid;
    }
  in
  t.rx_done <- (fun () -> rx_complete t);
  t.tx_done <- (fun () -> tx_complete t);
  let m = Sim.Engine.metrics engine in
  let labels = [ ("host", string_of_int host) ] in
  Obs.Metrics.counter m ~name:"nic.rx_pkts" ~labels (fun () -> t.rx_packets);
  Obs.Metrics.counter m ~name:"nic.tx_pkts" ~labels (fun () -> t.tx_packets);
  Obs.Metrics.counter m ~name:"nic.rx_dropped_no_desc" ~labels (fun () ->
      t.rx_dropped_no_desc);
  t

let receive t pkt = on_network_rx t pkt

let host t = t.host
let config t = t.cfg

let post_send t pkt =
  t.tx_pending <- t.tx_pending + 1;
  t.tx_packets <- t.tx_packets + 1;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"nic" ~name:"tx"
      ~pid:t.pid ~tid:t.tid
      [ ("id", Obs.Trace.I pkt.Netsim.Packet.trace_id) ];
  let done_at = Sim.Time.add (Sim.Engine.now t.engine) t.cfg.tx_latency_ns in
  if done_at > t.tx_last_done then t.tx_last_done <- done_at;
  Sim.Ring.push t.tx_fly pkt;
  Sim.Engine.schedule_after t.engine t.cfg.tx_latency_ns t.tx_done

let tx_pending t = t.tx_pending

let flush_time_ns t =
  let now = Sim.Engine.now t.engine in
  let wait = if t.tx_pending > 0 then max 0 (Sim.Time.sub t.tx_last_done now) else 0 in
  wait + t.cfg.tx_flush_ns

let poll_rx t ~max f =
  let n = ref 0 in
  while !n < max && not (Sim.Ring.is_empty t.rx_ring) do
    incr n;
    f (Sim.Ring.take t.rx_ring)
  done;
  !n

let rx_ring_depth t = Sim.Ring.length t.rx_ring
let set_rx_notify t f = t.rx_notify <- f

let replenish_rq t n =
  assert (n >= 0);
  t.rq_available <- min t.cfg.rq_size (t.rq_available + n);
  if t.cfg.multi_packet_rq then begin
    let total = t.replenish_partial + n in
    let posts = total / t.cfg.multi_packet_rq_stride in
    t.replenish_partial <- total mod t.cfg.multi_packet_rq_stride;
    posts * t.cfg.rq_replenish_unit_ns
  end
  else n * t.cfg.rq_replenish_unit_ns

let clear_rx t =
  (* Packets stranded in the ring die with the crashed process. *)
  while not (Sim.Ring.is_empty t.rx_ring) do
    Netsim.Packet.free (Sim.Ring.take t.rx_ring)
  done;
  t.rq_available <- t.cfg.rq_size;
  t.replenish_partial <- 0

let rq_available t = t.rq_available
let rx_packets t = t.rx_packets
let tx_packets t = t.tx_packets
let rx_dropped_no_desc t = t.rx_dropped_no_desc
