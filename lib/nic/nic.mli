(** Userspace-NIC model: the packet I/O device an {!Erpc.Rpc} endpoint owns.

    Models the mechanisms eRPC's design depends on (§4.1, Appendix A):

    - a TX queue whose descriptors are {e unsignaled}: the host never learns
      when DMA completes, except by an explicit [flush] (the paper's ~2 µs
      TX-queue flush used on retransmission and node failure);
    - an RX queue (RQ) of pre-posted descriptors: an arriving packet with no
      available descriptor is dropped, which is why eRPC sizes session
      credits against [rq_size];
    - multi-packet RQ descriptors: with the optimization on, descriptor
      replenishment costs CPU once per [multi_packet_rq_stride] packets
      instead of per packet (the CPU charge is made by the caller via
      {!replenish_cost_ns});
    - an RX ring polled by the owner; a simulation-only [rx_notify] hook
      stands in for busy polling and lets the owner schedule its event loop
      activation.

    Fixed [tx_latency_ns]/[rx_latency_ns] model DMA + NIC processing and are
    part of the ~850 ns per-host latency adder the paper measures (§6.1). *)

type config = {
  tx_latency_ns : int;  (** descriptor fetch + payload DMA read + pipeline *)
  rx_latency_ns : int;  (** payload DMA write + CQE *)
  rx_jitter_ns : int;  (** uniform extra RX delay in [0, jitter] (PCIe/DMA batching) *)
  tx_flush_ns : int;  (** extra cost of a TX DMA queue flush (~2 µs) *)
  rq_size : int;  (** receive descriptors *)
  multi_packet_rq : bool;
  multi_packet_rq_stride : int;  (** packet buffers per RQ descriptor (512) *)
  rq_replenish_unit_ns : int;  (** CPU cost of re-posting one descriptor *)
}

val default_config : config

type t

(** Create a NIC endpoint. The caller is responsible for routing received
    packets into it with {!receive} (real deployments steer flows to
    per-Rpc queues by UDP port; our {!Erpc.Nexus} plays that role). *)
val create : Sim.Engine.t -> Netsim.Network.t -> host:int -> config -> t

val host : t -> int
val config : t -> config

(** Ingress from the network: models the RX DMA pipeline, then either
    drops (no RQ descriptor) or appends to the RX ring. *)
val receive : t -> Netsim.Packet.t -> unit

(** {2 TX path} *)

(** Post a packet for transmission (unsignaled). It enters the wire after
    [tx_latency_ns] plus the NIC TX port's own queueing. *)
val post_send : t -> Netsim.Packet.t -> unit

(** Number of TX descriptors whose DMA has not yet completed. *)
val tx_pending : t -> int

(** [flush_time_ns t] is the simulated time needed to flush the TX DMA
    queue right now: time until the last pending DMA completes, plus the
    fixed flush overhead. The caller charges this to its CPU. *)
val flush_time_ns : t -> int

(** {2 RX path} *)

(** Poll up to [max] packets DMA-ed to host memory, invoking the callback
    on each in FIFO order; returns the count polled. *)
val poll_rx : t -> max:int -> (Netsim.Packet.t -> unit) -> int

val rx_ring_depth : t -> int

(** Simulation hook: invoked whenever a packet lands in an empty RX ring. *)
val set_rx_notify : t -> (unit -> unit) -> unit

(** Re-post [n] receive descriptors; returns the modeled CPU cost in ns
    (amortized when multi-packet RQ descriptors are enabled). *)
val replenish_rq : t -> int -> int

val rq_available : t -> int

(** Drop everything in the RX ring and restore the full descriptor count —
    the restarted driver after a host crash re-posts its RQ from scratch at
    no modeled cost. *)
val clear_rx : t -> unit

(** {2 Statistics} *)

val rx_packets : t -> int
val tx_packets : t -> int
val rx_dropped_no_desc : t -> int
