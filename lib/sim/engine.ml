type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  master_rng : Rng.t;
  mutable executed : int;
  mutable trace : Obs.Trace.t;
  metrics : Obs.Metrics.t;
}

let create ?(seed = 42L) ?queue_impl () =
  {
    queue = Event_queue.create ?impl:queue_impl ();
    clock = Time.zero;
    master_rng = Rng.create seed;
    executed = 0;
    trace = Obs.Trace.disabled;
    metrics = Obs.Metrics.create ();
  }

let now t = t.clock
let rng t = t.master_rng
let trace t = t.trace
let set_trace t tr = t.trace <- tr
let metrics t = t.metrics

let schedule t at f =
  if at < t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule: time %a is before now %a" Time.pp at Time.pp t.clock);
  Event_queue.push t.queue at f

let schedule_after t delta f = schedule t (Time.add t.clock delta) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      t.executed <- t.executed + 1;
      f ();
      true

(* Sentinel for the fused pop: a statically allocated closure no caller
   can accidentally schedule (closures without free variables are unique
   per definition site). *)
let null_event () = ()

let run_until t horizon =
  let q = t.queue in
  let continue = ref true in
  while !continue do
    let f = Event_queue.pop_if_before q horizon ~default:null_event in
    if f == null_event then continue := false
    else begin
      t.clock <- Event_queue.last_time q;
      t.executed <- t.executed + 1;
      f ()
    end
  done;
  if t.clock < horizon then t.clock <- horizon

let run t =
  let q = t.queue in
  let continue = ref true in
  while !continue do
    let f = Event_queue.pop_if_before q max_int ~default:null_event in
    if f == null_event then continue := false
    else begin
      t.clock <- Event_queue.last_time q;
      t.executed <- t.executed + 1;
      f ()
    end
  done

let events_processed t = t.executed
let pending t = Event_queue.length t.queue
