type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  master_rng : Rng.t;
  mutable executed : int;
  mutable trace : Obs.Trace.t;
  metrics : Obs.Metrics.t;
}

let create ?(seed = 42L) ?queue_impl () =
  let t =
    {
      queue = Event_queue.create ?impl:queue_impl ();
      clock = Time.zero;
      master_rng = Rng.create seed;
      executed = 0;
      trace = Obs.Trace.disabled;
      metrics = Obs.Metrics.create ();
    }
  in
  (* Queue-shape gauges: pending event count plus the wheel's occupied-slot
     load factor. Sampled per engine, so on a partitioned run each
     partition's registry exposes its own load — imbalance is observable. *)
  Obs.Metrics.gauge t.metrics ~name:"sim.queue_depth" (fun () ->
      float_of_int (Event_queue.length t.queue));
  Obs.Metrics.gauge t.metrics ~name:"sim.wheel_occupancy" (fun () ->
      float_of_int (Event_queue.occupied_slots t.queue));
  t

let now t = t.clock
let rng t = t.master_rng
let trace t = t.trace
let set_trace t tr = t.trace <- tr
let metrics t = t.metrics

let schedule t at f =
  if at < t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule: time %a is before now %a" Time.pp at Time.pp t.clock);
  Event_queue.push t.queue at f

let schedule_after t delta f = schedule t (Time.add t.clock delta) f

(* PDES hook: a partition runner delivering a cross-partition message moves
   the clock to the message timestamp before invoking the handler, exactly
   as [step] does for a popped local event. *)
let advance_clock t at =
  if at < t.clock then
    invalid_arg
      (Format.asprintf "Engine.advance_clock: time %a is before now %a" Time.pp at
         Time.pp t.clock);
  t.clock <- at

let next_event_time t = Event_queue.peek_time t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      t.executed <- t.executed + 1;
      f ();
      true

(* Sentinel for the fused pop: a statically allocated closure no caller
   can accidentally schedule (closures without free variables are unique
   per definition site). *)
let null_event () = ()

let run_until t horizon =
  let q = t.queue in
  let continue = ref true in
  while !continue do
    let f = Event_queue.pop_if_before q horizon ~default:null_event in
    if f == null_event then continue := false
    else begin
      t.clock <- Event_queue.last_time q;
      t.executed <- t.executed + 1;
      f ()
    end
  done;
  if t.clock < horizon then t.clock <- horizon

let run t =
  let q = t.queue in
  let continue = ref true in
  while !continue do
    let f = Event_queue.pop_if_before q max_int ~default:null_event in
    if f == null_event then continue := false
    else begin
      t.clock <- Event_queue.last_time q;
      t.executed <- t.executed + 1;
      f ()
    end
  done

let events_processed t = t.executed
let pending t = Event_queue.length t.queue
