type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  master_rng : Rng.t;
  mutable executed : int;
  mutable trace : Obs.Trace.t;
  metrics : Obs.Metrics.t;
}

let create ?(seed = 42L) () =
  {
    queue = Event_queue.create ();
    clock = Time.zero;
    master_rng = Rng.create seed;
    executed = 0;
    trace = Obs.Trace.disabled;
    metrics = Obs.Metrics.create ();
  }

let now t = t.clock
let rng t = t.master_rng
let trace t = t.trace
let set_trace t tr = t.trace <- tr
let metrics t = t.metrics

let schedule t at f =
  if at < t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule: time %a is before now %a" Time.pp at Time.pp t.clock);
  Event_queue.push t.queue at f

let schedule_after t delta f = schedule t (Time.add t.clock delta) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      t.executed <- t.executed + 1;
      f ();
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some at when at <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon

let events_processed t = t.executed
let pending t = Event_queue.length t.queue
