type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* entries beyond [size] are [nil] *)
  mutable size : int;
  mutable next_seq : int;
  mutable last : Time.t;
}

(* Shared inert entry used to pad the backing array. Its payload is never
   read: every slot below [size] holds a real entry. Padding with a single
   sentinel (rather than a live entry, as the old implementation did) is
   what keeps popped closures from being pinned against GC. *)
let nil : 'a entry = { time = min_int; seq = min_int; payload = Obj.magic 0 }

let initial_capacity = 64

let create () =
  { heap = Array.make initial_capacity nil; size = 0; next_seq = 0; last = Time.zero }

let is_empty t = t.size = 0
let length t = t.size
let last_time t = t.last

let entry_before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let h = Array.make (2 * Array.length t.heap) nil in
  Array.blit t.heap 0 h 0 t.size;
  t.heap <- h

let push t time payload =
  if t.size >= Array.length t.heap then grow t;
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- e;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && entry_before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && entry_before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

(* Remove the root. The vacated tail slot is reset to [nil] so the dead
   entry (and the closure it boxes) is garbage immediately. *)
let remove_top t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- nil;
    sift_down t
  end
  else t.heap.(0) <- nil

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    remove_top t;
    t.last <- top.time;
    Some (top.time, top.payload)
  end

let pop_if_before t horizon ~default =
  if t.size = 0 then default
  else begin
    let top = t.heap.(0) in
    if top.time > horizon then default
    else begin
      remove_top t;
      t.last <- top.time;
      top.payload
    end
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  Array.fill t.heap 0 t.size nil;
  t.size <- 0;
  t.next_seq <- 0
