(** Priority queue of timestamped events.

    Ties on the timestamp are broken by insertion order, so the engine is
    fully deterministic for a given seed.

    Two interchangeable implementations share this interface: the
    production {!Timing_wheel} (calendar queue with a cell free-list;
    steady-state scheduling allocates nothing) and the legacy {!Binheap}
    (the original boxed-entry binary heap, kept as reference oracle and
    pre-overhaul baseline for [bench-sim]). Both pop the exact same
    sequence for the same pushes, so traces are byte-identical across
    implementations. *)

type impl = Wheel | Binheap

(** Implementation used by [create] when [?impl] is not given. Defaults
    to [Wheel]; flipping it (e.g. around a benchmark or an A/B test) has
    no effect on observable event order. *)
val set_default_impl : impl -> unit

type 'a t

val create : ?impl:impl -> unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> Time.t -> 'a -> unit

(** Earliest (time, event), or [None] if empty. *)
val pop : 'a t -> (Time.t * 'a) option

(** [pop_if_before t horizon ~default] pops and returns the earliest
    payload if its time is [<= horizon]; otherwise returns [default] and
    leaves the queue untouched. Allocation-free — this is the engine's
    fused peek+pop. Read the popped event's timestamp with {!last_time}. *)
val pop_if_before : 'a t -> Time.t -> default:'a -> 'a

(** Timestamp of the most recently popped event. *)
val last_time : 'a t -> Time.t

val peek_time : 'a t -> Time.t option
val clear : 'a t -> unit

val occupied_slots : 'a t -> int
(** Occupied calendar slots for the wheel (its load factor); falls back to
    {!length} for the binheap. Snapshot-time sampling only. *)
