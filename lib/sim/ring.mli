(** Growable circular FIFO with a preallocated backing array.

    Unlike [Queue.t], steady-state push/take allocates nothing: elements
    live in an array that doubles on overflow, and vacated slots are reset
    to [dummy] so consumed elements are not pinned against GC. Used for
    the simulator's in-flight packet queues (port serialization, switch
    transit, NIC rings). *)

type 'a t

(** [create ~dummy ()] makes an empty ring. [dummy] pads unused slots and
    must never be interpreted as an element. *)
val create : ?capacity:int -> dummy:'a -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** Remove and return the oldest element. Raises [Invalid_argument] if
    empty. *)
val take : 'a t -> 'a

val take_opt : 'a t -> 'a option
val clear : 'a t -> unit
