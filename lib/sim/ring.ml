type 'a t = {
  mutable buf : 'a array;
  mutable head : int; (* next element to take *)
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let cap = max 2 capacity in
  { buf = Array.make cap dummy; head = 0; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let b = Array.make (2 * cap) t.dummy in
  let tail_len = min t.len (cap - t.head) in
  Array.blit t.buf t.head b 0 tail_len;
  Array.blit t.buf 0 b tail_len (t.len - tail_len);
  t.buf <- b;
  t.head <- 0

let push t x =
  if t.len = Array.length t.buf then grow t;
  let i = t.head + t.len in
  let cap = Array.length t.buf in
  t.buf.(if i >= cap then i - cap else i) <- x;
  t.len <- t.len + 1

let take t =
  if t.len = 0 then invalid_arg "Ring.take: empty";
  let x = t.buf.(t.head) in
  t.buf.(t.head) <- t.dummy;
  t.head <- (if t.head + 1 = Array.length t.buf then 0 else t.head + 1);
  t.len <- t.len - 1;
  x

let take_opt t = if t.len = 0 then None else Some (take t)

let clear t =
  while t.len > 0 do
    ignore (take t)
  done
