(* Conservative parallel discrete-event simulation (PDES) across OCaml 5
   domains.

   The cluster is split into [n] logical partitions, each owning a full
   {!Engine} (its own timing wheel, RNG stream, trace shard, metrics
   registry). Cross-partition traffic travels through SPSC {!Channel}
   rings; each directed link carries a [lookahead] — the minimum latency
   any message on that link can have — and the classic
   Chandy–Misra–Bryant rule bounds how far a partition may run ahead:

     safe(p) = min over in-links of the sender's announced bound,

   where a bound is the sender's promise that every message it will ever
   send on that link arrives no earlier than the bound. A partition only
   executes work strictly below its [safe] horizon, so no message can
   arrive in its past, and positive lookahead guarantees global progress
   (the partition holding the globally-minimal timestamp can always run).

   Determinism is the load-bearing property. Partitions are LOGICAL and
   fixed by the topology; [~domains] only chooses how many OS threads
   execute them (partition [i] runs on domain [i mod domains]). The
   per-partition event order is defined entirely by data that is
   identical under any domain count:

   - local events pop from the partition's own queue in (time, seq) order;
   - cross-partition messages are FIFO per channel (send timestamps on a
     channel must be nondecreasing — asserted), staged on arrival, and
     consumed by explicit comparison against the local queue: the
     earliest staged message wins ties against local events, and ties
     between channels go to the lower-indexed in-link;
   - the [safe] gate only decides when a partition *pauses*; it never
     reorders what the partition processes, because everything below
     [safe] is already staged or local (any not-yet-visible message has
     timestamp >= its link's bound >= safe).

   Hence same-seed runs produce byte-identical per-partition traces — and
   byte-identical merged digests — for any [~domains].

   Domain-safety inventory: each partition's engine, stage queues and
   producer backlogs are touched only by the domain that owns the
   partition; the only shared mutable state is the SPSC rings and the
   per-link bound/sent counters, all [Atomic]. A producer whose ring is
   full parks messages in a private backlog (never spins — with several
   partitions multiplexed on one domain, spinning would starve the
   consumer) and caps its announced bound at the oldest unflushed
   timestamp so the promise stays truthful. *)

(* "No more messages, ever" — far beyond any horizon, with headroom so
   [bound + lookahead] cannot overflow. *)
let inf_ts = max_int / 4

type 'a msg = { m_ts : int; m_seq : int; m_payload : 'a }

type 'a conn = {
  c_src : int;
  c_dst : int;
  c_lookahead : int;
  ring : 'a msg Channel.t;
  bound : int Atomic.t; (* producer's promise: no future arrival < bound *)
  sent : int Atomic.t;
  received : int Atomic.t;
  (* producer-owned *)
  backlog : 'a msg Queue.t; (* overflow when the ring is full; FIFO *)
  mutable last_ts : int; (* per-channel send monotonicity check *)
  mutable next_seq : int;
  mutable announced : int; (* last bound written; bounds only increase *)
  (* consumer-owned *)
  stage : 'a msg Queue.t; (* drained from the ring, awaiting processing *)
  mutable known_bound : int; (* consumer's cache of [bound] *)
}

type 'a part = {
  id : int;
  engine : Engine.t;
  mutable ins : 'a conn array; (* connect order; tie-break rank *)
  mutable outs : 'a conn array;
  mutable handler : (ts:Time.t -> src:int -> 'a -> unit) option;
  mutable msgs_in : int; (* cross-partition messages delivered *)
  mutable done_ : bool; (* horizon reached; owner-domain only *)
}

type 'a t = {
  parts : 'a part array;
  mutable horizon : Time.t; (* set by [run] *)
  done_count : int Atomic.t;
  mutable ran : bool;
}

let create ?(seed = 42L) ~parts:n () =
  if n < 1 then invalid_arg "Partition.create: need at least one partition";
  let master = Rng.create seed in
  let parts =
    Array.init n (fun id ->
        {
          id;
          engine = Engine.create ~seed:(Rng.next master) ();
          ins = [||];
          outs = [||];
          handler = None;
          msgs_in = 0;
          done_ = false;
        })
  in
  { parts; horizon = inf_ts; done_count = Atomic.make 0; ran = false }

let num_parts t = Array.length t.parts
let engine t i = t.parts.(i).engine

let connect ?(capacity = 1024) t ~src ~dst ~lookahead =
  if src = dst then invalid_arg "Partition.connect: src = dst";
  if lookahead < 1 then
    invalid_arg "Partition.connect: lookahead must be >= 1 ns (progress guarantee)";
  let c =
    {
      c_src = src;
      c_dst = dst;
      c_lookahead = lookahead;
      ring = Channel.create ~capacity;
      bound = Atomic.make lookahead;
      sent = Atomic.make 0;
      received = Atomic.make 0;
      backlog = Queue.create ();
      last_ts = 0;
      next_seq = 0;
      announced = lookahead;
      stage = Queue.create ();
      known_bound = lookahead;
    }
  in
  let p = t.parts.(src) and q = t.parts.(dst) in
  if Array.exists (fun c -> c.c_dst = dst) p.outs then
    invalid_arg "Partition.connect: duplicate link";
  p.outs <- Array.append p.outs [| c |];
  q.ins <- Array.append q.ins [| c |]

let on_receive t i f = t.parts.(i).handler <- Some f

let lookahead t ~src ~dst =
  match Array.find_opt (fun c -> c.c_dst = dst) t.parts.(src).outs with
  | Some c -> c.c_lookahead
  | None -> invalid_arg "Partition.lookahead: no such link"

let send t ~src ~dst ~ts payload =
  let p = t.parts.(src) in
  match Array.find_opt (fun c -> c.c_dst = dst) p.outs with
  | None -> invalid_arg "Partition.send: no link; connect src dst first"
  | Some c ->
      let now = Engine.now p.engine in
      if ts < now + c.c_lookahead then
        invalid_arg
          (Printf.sprintf
             "Partition.send: ts %d violates lookahead %d (now %d on %d->%d)" ts
             c.c_lookahead now src dst);
      if ts < c.last_ts then
        invalid_arg
          (Printf.sprintf "Partition.send: non-monotone ts %d (< %d) on %d->%d" ts
             c.last_ts src dst);
      c.last_ts <- ts;
      let m = { m_ts = ts; m_seq = c.next_seq; m_payload = payload } in
      c.next_seq <- c.next_seq + 1;
      Atomic.incr c.sent;
      (* FIFO: once anything is backlogged, everything goes behind it. *)
      if not (Queue.is_empty c.backlog && Channel.try_push c.ring m) then
        Queue.push m c.backlog

(* --- the per-partition scheduling pass (owner domain only) --- *)

(* Read the link's announced bound *before* draining the ring: any message
   pushed before that bound was written is then guaranteed visible in the
   drain (both are seq-cst writes in program order on the producer). *)
let drain_conn c =
  let b = Atomic.get c.bound in
  if b > c.known_bound then c.known_bound <- b;
  let rec loop () =
    match Channel.pop c.ring with
    | Some m ->
        Atomic.incr c.received;
        Queue.push m c.stage;
        loop ()
    | None -> ()
  in
  loop ()

let safe_of p =
  Array.fold_left (fun acc c -> min acc c.known_bound) inf_ts p.ins

(* Earliest staged message over all in-links; ties go to the first link in
   [ins] order (strict [<]), which is fixed at connect time. *)
let staged_min p =
  let best = ref None and best_ts = ref max_int in
  Array.iter
    (fun c ->
      match Queue.peek_opt c.stage with
      | Some m when m.m_ts < !best_ts ->
          best := Some c;
          best_ts := m.m_ts
      | _ -> ())
    p.ins;
  (!best, !best_ts)

let local_min p =
  match Engine.next_event_time p.engine with Some ts -> ts | None -> max_int

let process_loop t p ~safe =
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    let best, best_ts = staged_min p in
    let local_ts = local_min p in
    let cand = if best_ts < local_ts then best_ts else local_ts in
    if cand >= safe || cand > t.horizon then continue := false
    else begin
      (* Messages win ties against local events — part of the merge rule,
         so the interleave never depends on which pass staged what. *)
      (if best_ts <= local_ts then
         match best with
         | Some c ->
             let m = Queue.pop c.stage in
             Engine.advance_clock p.engine m.m_ts;
             p.msgs_in <- p.msgs_in + 1;
             (match p.handler with
             | Some f -> f ~ts:m.m_ts ~src:c.c_src m.m_payload
             | None ->
                 invalid_arg
                   (Printf.sprintf "Partition: no receiver on partition %d" p.id))
         | None -> assert false
       else ignore (Engine.step p.engine));
      progressed := true
    end
  done;
  !progressed

(* Announce, for every out-link, a (monotone) lower bound on the arrival
   time of any message this partition could still send: it cannot process
   anything before min(next staged, next local, safe), and every send at
   processing time [tp] arrives at >= tp + lookahead. Once that floor
   clears the horizon the partition will never run again, so it promises
   "never" — capped by the oldest unflushed backlog message, which is
   already committed but not yet visible to the consumer. *)
let announce t p =
  let progressed = ref false in
  let _, best_ts = staged_min p in
  let local_ts = local_min p in
  let safe = safe_of p in
  let nb = min (min best_ts local_ts) safe in
  let nb = if nb > t.horizon then inf_ts else nb in
  Array.iter
    (fun c ->
      let rec flush () =
        match Queue.peek_opt c.backlog with
        | Some m when Channel.try_push c.ring m ->
            ignore (Queue.pop c.backlog);
            flush ()
        | _ -> ()
      in
      flush ();
      let pending_min =
        match Queue.peek_opt c.backlog with Some m -> m.m_ts | None -> inf_ts
      in
      let v = min (min (nb + c.c_lookahead) pending_min) inf_ts in
      if v > c.announced then begin
        c.announced <- v;
        Atomic.set c.bound v;
        progressed := true
      end)
    p.outs;
  !progressed

let maybe_done t p =
  if not p.done_ then begin
    let _, best_ts = staged_min p in
    let local_ts = local_min p in
    let safe = safe_of p in
    let backlogs_clear = Array.for_all (fun c -> Queue.is_empty c.backlog) p.outs in
    if best_ts > t.horizon && local_ts > t.horizon && safe > t.horizon && backlogs_clear
    then begin
      p.done_ <- true;
      Atomic.incr t.done_count
    end
  end

let pass t p =
  if p.done_ then false
  else begin
    Array.iter drain_conn p.ins;
    let safe = safe_of p in
    let progressed = process_loop t p ~safe in
    let announced = announce t p in
    maybe_done t p;
    progressed || announced
  end

let run ?(domains = 1) ~horizon t =
  if t.ran then invalid_arg "Partition.run: already ran";
  if horizon < 0 || horizon >= inf_ts then invalid_arg "Partition.run: bad horizon";
  if domains < 1 then invalid_arg "Partition.run: domains must be >= 1";
  t.ran <- true;
  t.horizon <- horizon;
  let nparts = Array.length t.parts in
  let worker d () =
    let mine =
      Array.of_list
        (List.filter
           (fun p -> p.id mod domains = d)
           (Array.to_list t.parts))
    in
    (* Fruitless sweeps first spin (cheap when a peer on another core is
       about to advance a bound), then sleep: with more domains than
       cores, a pure spin burns its whole scheduler quantum while the
       domain holding the next bound waits for the CPU. *)
    let idle_sweeps = ref 0 in
    while Atomic.get t.done_count < nparts do
      let progress = ref false in
      Array.iter (fun p -> if pass t p then progress := true) mine;
      if !progress then idle_sweeps := 0
      else begin
        incr idle_sweeps;
        if !idle_sweeps <= 64 then Domain.cpu_relax () else Unix.sleepf 20e-6
      end
    done
  in
  let spawned =
    Array.init (min domains nparts - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  Array.iter Domain.join spawned;
  (* Mirror [Engine.run_until]: leave every clock parked on the horizon. *)
  Array.iter (fun p -> Engine.advance_clock p.engine horizon) t.parts

let part_events t i =
  let p = t.parts.(i) in
  Engine.events_processed p.engine + p.msgs_in

let messages_delivered t =
  Array.fold_left (fun acc p -> acc + p.msgs_in) 0 t.parts

let events_processed t =
  Array.fold_left
    (fun acc p -> acc + Engine.events_processed p.engine + p.msgs_in)
    0 t.parts
