(** Discrete-event simulation engine.

    Events are thunks executed in timestamp order (FIFO among equal
    timestamps). A single engine drives one experiment; all randomness comes
    from streams split off the engine's master RNG, so a given seed fully
    determines the run. *)

type t

(** [queue_impl] selects the event-queue implementation (defaults to the
    current {!Event_queue.set_default_impl} setting); both implementations
    execute identical event sequences. *)
val create : ?seed:int64 -> ?queue_impl:Event_queue.impl -> unit -> t

(** Current simulated time. *)
val now : t -> Time.t

(** Master RNG; use [Rng.split] to derive per-component streams. *)
val rng : t -> Rng.t

(** Engine-scoped event trace. Defaults to [Obs.Trace.disabled]; components
    cache this at creation time and guard hooks with [Obs.Trace.enabled],
    so install the trace (via [set_trace]) before building the cluster. *)
val trace : t -> Obs.Trace.t

val set_trace : t -> Obs.Trace.t -> unit

(** Engine-scoped metrics registry; components register counters, gauges
    and histograms into it at creation time. *)
val metrics : t -> Obs.Metrics.t

(** [schedule t at f] runs [f] at absolute time [at]. [at] must not be in
    the past. *)
val schedule : t -> Time.t -> (unit -> unit) -> unit

(** [schedule_after t delta f] runs [f] at [now t + delta]. *)
val schedule_after : t -> Time.t -> (unit -> unit) -> unit

(** Execute the single earliest event. Returns [false] when no events
    remain. *)
val step : t -> bool

(** [advance_clock t at] moves the clock forward to [at] without executing
    anything — the {!Partition} runner's hook for delivering a
    cross-partition message at its arrival timestamp. [at] must not be in
    the past. *)
val advance_clock : t -> Time.t -> unit

(** Timestamp of the earliest pending event, or [None] if the queue is
    empty. *)
val next_event_time : t -> Time.t option

(** Run until the event queue is empty. *)
val run : t -> unit

(** Run events with timestamp <= the given horizon; the clock is advanced to
    the horizon afterwards. *)
val run_until : t -> Time.t -> unit

(** Number of events executed so far. *)
val events_processed : t -> int

(** Number of events pending. *)
val pending : t -> int
