(** Calendar-queue scheduler: timing wheel + overflow heap + cell free-list.

    Near-future events (within a ~16 us window of the last popped time) go
    into a 1 ns-granularity timing wheel with O(1) push and pop; far-future
    events wait in an overflow min-heap and migrate into the wheel as the
    window advances. Ties on the timestamp are broken by insertion order
    ([seq]) exactly as in {!Binheap}, including across the wheel/heap
    boundary, so the two implementations pop identical sequences. Cells
    are recycled through a free-list: steady-state push/pop allocates
    nothing. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> Time.t -> 'a -> unit

(** Earliest (time, event), or [None] if empty. *)
val pop : 'a t -> (Time.t * 'a) option

(** [pop_if_before t horizon ~default] pops and returns the earliest
    payload if its time is [<= horizon]; otherwise returns [default] and
    leaves the queue untouched. Allocation-free. Read the popped event's
    timestamp with {!last_time}. *)
val pop_if_before : 'a t -> Time.t -> default:'a -> 'a

(** Timestamp of the most recently popped event. *)
val last_time : 'a t -> Time.t

val peek_time : 'a t -> Time.t option
val clear : 'a t -> unit

val occupied_slots : 'a t -> int
(** Number of non-empty wheel slots (excludes the overflow heap) — the
    calendar-queue load factor backing the [sim.wheel_occupancy] gauge.
    O(bitmap words); intended for snapshot-time sampling, not hot paths. *)
