(* Calendar-queue scheduler: a timing wheel of 1 ns slots for the near
   future, an overflow min-heap for everything else, and a free-list of
   event cells so steady-state scheduling allocates nothing.

   The wheel covers the half-open window [base, base + wheel_size). Every
   cell stored in the wheel has a timestamp inside the window, so slot
   index [time land mask] is injective on timestamps and every cell in a
   slot shares the same timestamp — a slot's list is kept in [seq] order,
   which makes same-time FIFO exact. [base] only ever advances to the
   timestamp of a popped event (the global minimum), which keeps the
   window invariant without ever re-hashing live cells.

   Events that land outside the window — far-future timers, or
   behind-the-window pushes (the engine never makes these, but the
   structure stays a general priority queue) — go to the overflow heap,
   ordered by (time, seq). On every pop, heap entries that have come into
   the window migrate to the wheel, merged into their slot by [seq], so
   FIFO ties hold across the boundary too.

   Occupancy is tracked by a three-level bitmap (32 slots per word), so
   finding the next non-empty slot is a handful of shifts even when the
   wheel is sparse. *)

type 'a cell = {
  mutable time : Time.t;
  mutable seq : int;
  mutable payload : 'a;
  mutable next : 'a cell; (* slot chain, heap padding, or free-list link *)
}

let wheel_bits = 14
let wheel_size = 1 lsl wheel_bits (* 16384 ns window *)
let mask = wheel_size - 1
let l0_words = wheel_size / 32 (* 512 *)
let l1_words = l0_words / 32 (* 16 *)

type 'a t = {
  nil : 'a cell; (* per-queue sentinel: end-of-chain, empty slot, heap pad *)
  head : 'a cell array; (* slot chains, [seq]-ordered *)
  tail : 'a cell array;
  l0 : int array; (* bit s land 31 of word s lsr 5: slot s occupied *)
  l1 : int array; (* bit w land 31 of word w lsr 5: l0.(w) <> 0 *)
  mutable l2 : int; (* bit w1: l1.(w1) <> 0 *)
  mutable base : Time.t; (* window start; advances to each popped time *)
  mutable wheel_count : int;
  mutable heap : 'a cell array; (* overflow min-heap by (time, seq) *)
  mutable heap_size : int;
  mutable free : 'a cell; (* free-list through [next] *)
  mutable next_seq : int;
  mutable last : Time.t;
}

let create () =
  let rec nil = { time = min_int; seq = min_int; payload = Obj.magic 0; next = nil } in
  {
    nil;
    head = Array.make wheel_size nil;
    tail = Array.make wheel_size nil;
    l0 = Array.make l0_words 0;
    l1 = Array.make l1_words 0;
    l2 = 0;
    base = Time.zero;
    wheel_count = 0;
    heap = Array.make 64 nil;
    heap_size = 0;
    free = nil;
    next_seq = 0;
    last = Time.zero;
  }

let is_empty t = t.wheel_count = 0 && t.heap_size = 0
let length t = t.wheel_count + t.heap_size
let last_time t = t.last

(* Count of set bits in a word holding a 32-bit occupancy mask. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

(* Occupied wheel slots (not cells): the calendar-queue load factor.
   Snapshot-time only — walks the 512-word l0 bitmap. *)
let occupied_slots t =
  let n = ref 0 in
  for w = 0 to l0_words - 1 do
    n := !n + popcount32 t.l0.(w)
  done;
  !n

let alloc_cell t time seq payload =
  let c = t.free in
  if c != t.nil then begin
    t.free <- c.next;
    c.time <- time;
    c.seq <- seq;
    c.payload <- payload;
    c.next <- t.nil;
    c
  end
  else { time; seq; payload; next = t.nil }

let free_cell t c =
  c.payload <- Obj.magic 0;
  c.next <- t.free;
  t.free <- c

(* --- occupancy bitmap --- *)

let bit_set t s =
  let w = s lsr 5 in
  let old = t.l0.(w) in
  t.l0.(w) <- old lor (1 lsl (s land 31));
  if old = 0 then begin
    let w1 = w lsr 5 in
    let old1 = t.l1.(w1) in
    t.l1.(w1) <- old1 lor (1 lsl (w land 31));
    if old1 = 0 then t.l2 <- t.l2 lor (1 lsl w1)
  end

let bit_clear t s =
  let w = s lsr 5 in
  let v = t.l0.(w) land lnot (1 lsl (s land 31)) in
  t.l0.(w) <- v;
  if v = 0 then begin
    let w1 = w lsr 5 in
    let v1 = t.l1.(w1) land lnot (1 lsl (w land 31)) in
    t.l1.(w1) <- v1;
    if v1 = 0 then t.l2 <- t.l2 land lnot (1 lsl w1)
  end

(* Index of the least significant set bit of a non-zero 32-bit value. *)
let lowest_bit x =
  let b = x land -x in
  let i = ref 0 in
  if b land 0xFFFF0000 <> 0 then i := 16;
  if b land 0xFF00FF00 <> 0 then i := !i + 8;
  if b land 0xF0F0F0F0 <> 0 then i := !i + 4;
  if b land 0xCCCCCCCC <> 0 then i := !i + 2;
  if b land 0xAAAAAAAA <> 0 then i := !i + 1;
  !i

(* First occupied slot index >= s0, or -1. *)
let find_from t s0 =
  let w0 = s0 lsr 5 in
  let m = t.l0.(w0) land (-1 lsl (s0 land 31)) in
  if m <> 0 then (w0 lsl 5) lor lowest_bit m
  else begin
    let w1i = w0 lsr 5 in
    let m1 = t.l1.(w1i) land (-1 lsl ((w0 land 31) + 1)) in
    if m1 <> 0 then begin
      let w = (w1i lsl 5) lor lowest_bit m1 in
      (w lsl 5) lor lowest_bit t.l0.(w)
    end
    else begin
      let m2 = t.l2 land (-1 lsl (w1i + 1)) in
      if m2 <> 0 then begin
        let w1 = lowest_bit m2 in
        let w = (w1 lsl 5) lor lowest_bit t.l1.(w1) in
        (w lsl 5) lor lowest_bit t.l0.(w)
      end
      else -1
    end
  end

(* Slot of the wheel's earliest cell. Only valid when [wheel_count > 0]:
   scan forward from [base]'s slot, wrapping once — timestamps increase
   with slot distance from [base] because the window is exactly one lap. *)
let wheel_min_slot t =
  let s = find_from t (t.base land mask) in
  if s >= 0 then s else find_from t 0

(* --- overflow heap (cells, ordered by (time, seq)) --- *)

let cell_before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow_heap t =
  let h = Array.make (2 * Array.length t.heap) t.nil in
  Array.blit t.heap 0 h 0 t.heap_size;
  t.heap <- h

let heap_push t c =
  if t.heap_size >= Array.length t.heap then grow_heap t;
  let i = ref t.heap_size in
  t.heap_size <- t.heap_size + 1;
  t.heap.(!i) <- c;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if cell_before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let heap_sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.heap_size && cell_before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.heap_size && cell_before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let heap_remove_top t =
  let top = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    t.heap.(t.heap_size) <- t.nil;
    heap_sift_down t
  end
  else t.heap.(0) <- t.nil;
  top

(* --- wheel slot insertion --- *)

let slot_append t s c =
  if t.head.(s) == t.nil then begin
    t.head.(s) <- c;
    t.tail.(s) <- c;
    bit_set t s
  end
  else begin
    t.tail.(s).next <- c;
    t.tail.(s) <- c
  end;
  t.wheel_count <- t.wheel_count + 1

(* Heap-to-wheel migration must merge by [seq]: a cell that waited in the
   heap can carry a smaller seq than same-time cells pushed straight into
   the slot after the window advanced. *)
let slot_insert_sorted t c =
  let s = c.time land mask in
  if t.head.(s) == t.nil || c.seq > t.tail.(s).seq then slot_append t s c
  else if c.seq < t.head.(s).seq then begin
    c.next <- t.head.(s);
    t.head.(s) <- c;
    t.wheel_count <- t.wheel_count + 1
  end
  else begin
    let p = ref t.head.(s) in
    while c.seq > !p.next.seq do
      p := !p.next
    done;
    c.next <- !p.next;
    !p.next <- c;
    t.wheel_count <- t.wheel_count + 1
  end

let in_window t time = time >= t.base && time - t.base < wheel_size

let transfer_in_window t =
  while t.heap_size > 0 && in_window t t.heap.(0).time do
    slot_insert_sorted t (heap_remove_top t)
  done

(* --- public operations --- *)

let push t time payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* An empty queue re-anchors the window, so a burst of activity far from
     the current base still runs through the wheel, not the heap. *)
  if t.wheel_count = 0 && t.heap_size = 0 then t.base <- time;
  let c = alloc_cell t time seq payload in
  if in_window t time then slot_append t (time land mask) c else heap_push t c

(* Detach and return the earliest cell if its time is <= horizon, else
   [t.nil]. The caller owns the returned cell and must free it. *)
let rec pop_cell_if_le t horizon =
  if t.heap_size > 0 && t.heap.(0).time < t.base then begin
    (* A behind-the-window push: it beats anything in the wheel. *)
    if t.heap.(0).time > horizon then t.nil else heap_remove_top t
  end
  else begin
    transfer_in_window t;
    if t.wheel_count > 0 then begin
      let s = wheel_min_slot t in
      let c = t.head.(s) in
      if c.time > horizon then t.nil
      else begin
        t.head.(s) <- c.next;
        if c.next == t.nil then begin
          t.tail.(s) <- t.nil;
          bit_clear t s
        end;
        t.wheel_count <- t.wheel_count - 1;
        t.base <- c.time;
        c
      end
    end
    else if t.heap_size > 0 then begin
      (* Everything pending lies beyond the window: jump the window there. *)
      if t.heap.(0).time > horizon then t.nil
      else begin
        t.base <- t.heap.(0).time;
        pop_cell_if_le t horizon
      end
    end
    else t.nil
  end

let pop_if_before t horizon ~default =
  let c = pop_cell_if_le t horizon in
  if c == t.nil then default
  else begin
    t.last <- c.time;
    let payload = c.payload in
    free_cell t c;
    payload
  end

let pop t =
  let c = pop_cell_if_le t max_int in
  if c == t.nil then None
  else begin
    t.last <- c.time;
    let time = c.time and payload = c.payload in
    free_cell t c;
    Some (time, payload)
  end

let peek_time t =
  if is_empty t then None
  else begin
    let hm = if t.heap_size > 0 then t.heap.(0).time else max_int in
    let wm = if t.wheel_count > 0 then t.head.(wheel_min_slot t).time else max_int in
    Some (min hm wm)
  end

let clear t =
  if t.wheel_count > 0 then
    for s = 0 to wheel_size - 1 do
      let c = ref t.head.(s) in
      while !c != t.nil do
        let next = !c.next in
        free_cell t !c;
        c := next
      done;
      t.head.(s) <- t.nil;
      t.tail.(s) <- t.nil
    done;
  Array.fill t.l0 0 l0_words 0;
  Array.fill t.l1 0 l1_words 0;
  t.l2 <- 0;
  t.wheel_count <- 0;
  for i = 0 to t.heap_size - 1 do
    free_cell t t.heap.(i);
    t.heap.(i) <- t.nil
  done;
  t.heap_size <- 0;
  t.base <- Time.zero;
  t.next_seq <- 0
