(** Lock-free single-producer single-consumer bounded ring.

    The cross-domain message pipe under {!Partition}: exactly one domain
    may push and exactly one may pop. Non-blocking on both ends —
    [try_push] returns [false] when full instead of spinning, because a
    producer and its consumer can share a domain. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to the next power of two. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Publish one value; [false] if the ring is full. Producer side only. *)

val pop : 'a t -> 'a option
(** Take the oldest value, or [None] if empty. Consumer side only. *)

val length : 'a t -> int
(** Published-but-unpopped count; exact at either endpoint, a snapshot
    elsewhere. *)

val is_empty : 'a t -> bool
