(* Single-producer single-consumer bounded ring over [Atomic] slots.

   The producer writes the slot before publishing the new tail; the
   consumer reads the tail before reading the slot. All accesses are
   sequentially consistent ([Atomic.get]/[Atomic.set]), so a consumer
   that observes tail = k also observes every slot write below k — the
   standard SPSC publication argument, with no fences spelled by hand.

   Capacity is rounded up to a power of two so the index wrap is a mask.
   [try_push] refuses when full rather than blocking: with several
   logical partitions multiplexed onto one domain, a spinning producer
   would starve the consumer it is waiting on (see {!Partition}, which
   keeps a producer-side backlog instead). *)

type 'a t = {
  slots : 'a option Atomic.t array;
  mask : int;
  head : int Atomic.t; (* consumer cursor; slot indices < head are free *)
  tail : int Atomic.t; (* producer cursor; slot indices < tail are published *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Channel.create: capacity must be >= 1";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.init !cap (fun _ -> Atomic.make None);
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let try_push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    Atomic.set t.slots.(tail land t.mask) (Some v);
    Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head = tail then None
  else begin
    let slot = t.slots.(head land t.mask) in
    let v = Atomic.get slot in
    (* Clear the slot so the ring never pins a popped payload for the GC. *)
    Atomic.set slot None;
    Atomic.set t.head (head + 1);
    v
  end

let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
