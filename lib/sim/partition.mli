(** Conservative parallel discrete-event simulation (PDES) over OCaml 5
    domains.

    A group of [n] logical partitions, each owning its own {!Engine}
    (timing wheel, RNG stream, trace shard), exchanges timestamped
    messages over lock-free SPSC channels. Each directed link declares a
    [lookahead]: the minimum latency of any message sent on it. Classic
    null-message (Chandy–Misra–Bryant) bounds let every partition run
    ahead only while its next step is strictly below the minimum bound
    announced by its in-links, which makes the execution both deadlock-free
    (lookahead is required positive) and deterministic.

    Partitions are logical and fixed by the caller's topology; [~domains]
    in {!run} only maps them onto OS domains (partition [i] runs on domain
    [i mod domains]). The processed event interleave per partition is
    defined by timestamps, per-link FIFO order and a fixed tie-break
    (messages before local events, lower-indexed in-link first), never by
    scheduling — so same-seed runs are byte-identical for any domain
    count. See DESIGN.md §13. *)

type 'a t

val create : ?seed:int64 -> parts:int -> unit -> 'a t
(** [n] partitions, each with an engine seeded from a deterministic split
    of [seed]. *)

val num_parts : 'a t -> int

val engine : 'a t -> int -> Engine.t
(** Partition [i]'s private engine. Schedule setup events, install traces
    and draw RNG streams through this — only from the main domain before
    {!run}, or from partition [i]'s own handlers during it. *)

val connect : ?capacity:int -> 'a t -> src:int -> dst:int -> lookahead:Time.t -> unit
(** Declare the directed link [src -> dst]. [lookahead] (>= 1 ns) is the
    minimum delay of any message sent on the link; larger lookahead means
    less synchronization. [capacity] sizes the ring (overflow falls back
    to an unbounded producer-side backlog, so capacity only affects
    throughput). *)

val on_receive : 'a t -> int -> (ts:Time.t -> src:int -> 'a -> unit) -> unit
(** Install partition [i]'s message handler. It runs on [i]'s owning
    domain with [i]'s engine clock already advanced to [ts]. *)

val send : 'a t -> src:int -> dst:int -> ts:Time.t -> 'a -> unit
(** Send a message arriving at [ts]. Must satisfy
    [ts >= now(src) + lookahead(src, dst)], and timestamps on a given link
    must be nondecreasing; both are checked. Call only from partition
    [src]'s domain (setup code or its handlers/events). *)

val lookahead : 'a t -> src:int -> dst:int -> Time.t

val run : ?domains:int -> horizon:Time.t -> 'a t -> unit
(** Run every partition up to and including [horizon] on [domains] OS
    domains (default 1), then park all clocks on the horizon, mirroring
    {!Engine.run_until}. Single-shot: a group cannot be run twice. *)

val events_processed : 'a t -> int
(** Total events executed: local engine events plus delivered
    cross-partition messages, summed over partitions. *)

val part_events : 'a t -> int -> int
(** Events executed by partition [i] (local + delivered messages) — the
    per-partition load-balance view. *)

val messages_delivered : 'a t -> int
(** Cross-partition messages delivered, summed over links. *)
