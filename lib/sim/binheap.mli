(** Binary min-heap of timestamped events — the reference scheduler.

    Ties on the timestamp are broken by insertion order ([seq]), so a run
    is fully deterministic for a given seed. This is the original engine
    scheduler, kept as the oracle for property tests, cross-implementation
    byte-identity checks, and the pre/post comparison in [bench-sim]; the
    production scheduler is {!Timing_wheel}. Compared to the original it
    pads the backing array with an inert sentinel (popped entries no
    longer pin their closures against GC) and sizes the array at creation
    instead of re-checking on every push. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> Time.t -> 'a -> unit

(** Earliest (time, event), or [None] if empty. *)
val pop : 'a t -> (Time.t * 'a) option

(** [pop_if_before t horizon ~default] pops and returns the earliest
    payload if its time is [<= horizon]; otherwise returns [default] and
    leaves the queue untouched. Allocation-free. Read the popped event's
    timestamp with {!last_time}. *)
val pop_if_before : 'a t -> Time.t -> default:'a -> 'a

(** Timestamp of the most recently popped event. *)
val last_time : 'a t -> Time.t

val peek_time : 'a t -> Time.t option
val clear : 'a t -> unit
