type impl = Wheel | Binheap

let default_impl = ref Wheel
let set_default_impl i = default_impl := i

type 'a t = W of 'a Timing_wheel.t | H of 'a Binheap.t

let create ?impl () =
  match match impl with Some i -> i | None -> !default_impl with
  | Wheel -> W (Timing_wheel.create ())
  | Binheap -> H (Binheap.create ())

let is_empty = function W q -> Timing_wheel.is_empty q | H q -> Binheap.is_empty q
let length = function W q -> Timing_wheel.length q | H q -> Binheap.length q

let push t time payload =
  match t with
  | W q -> Timing_wheel.push q time payload
  | H q -> Binheap.push q time payload

let pop = function W q -> Timing_wheel.pop q | H q -> Binheap.pop q

let pop_if_before t horizon ~default =
  match t with
  | W q -> Timing_wheel.pop_if_before q horizon ~default
  | H q -> Binheap.pop_if_before q horizon ~default

(* Wheel load factor; the binheap has no calendar structure, so its
   occupancy degenerates to its length. *)
let occupied_slots = function
  | W q -> Timing_wheel.occupied_slots q
  | H q -> Binheap.length q

let last_time = function W q -> Timing_wheel.last_time q | H q -> Binheap.last_time q
let peek_time = function W q -> Timing_wheel.peek_time q | H q -> Binheap.peek_time q
let clear = function W q -> Timing_wheel.clear q | H q -> Binheap.clear q
