(* Simulator-throughput bench: how fast does the discrete-event engine
   chew through events, and how much does each event allocate?

   Unlike the paper experiments (which measure *simulated* metrics —
   Gbps, Mrps, RTTs), this bench measures the simulator itself: CPU
   seconds, events per wall-clock second, and minor-heap words per event.
   Each workload runs under both event-queue implementations
   ({!Sim.Event_queue.Wheel}, the production timing wheel, and
   {!Sim.Event_queue.Binheap}, the pre-overhaul boxed binary heap kept as
   baseline); both execute identical event sequences, so the simulated
   results agree and any delta is pure scheduler cost. *)

type row = {
  workload : string;
  impl : string;  (* "wheel" | "binheap" *)
  wall_s : float;
  events : int;
  events_per_sec : float;
  minor_words_per_event : float;
  digest : string;  (* deterministic run fingerprint, for the --rerun gate *)
}

let impl_name = function Sim.Event_queue.Wheel -> "wheel" | Sim.Event_queue.Binheap -> "binheap"

let impl_of_name = function
  | "wheel" -> Some Sim.Event_queue.Wheel
  | "binheap" -> Some Sim.Event_queue.Binheap
  | _ -> None

(* {2 Workloads}

   Small, fixed-seed deployments chosen to stress different engine
   behaviours: incast (deep port queues, CC timers), rate (small-RPC
   pipelining, the Fig. 4 shape), bandwidth (multi-packet messages,
   credit ping-pong) and chaos (fault schedules: retransmission timers,
   crashes, partitions). Each returns the number of events executed. *)

let connect_all d ~(pairs : (Erpc.Rpc.t * int) array) =
  Array.map
    (fun (rpc, remote_host) -> Harness.connect d rpc ~remote_host ~remote_rpc_id:0)
    pairs

(* Deterministic end-state fingerprint for the [--rerun] gate: simulated
   clock, event count and aggregate RPC stats. Everything here derives
   from simulation state, so a same-seed rerun must reproduce it
   byte-for-byte. *)
let deploy_fingerprint (d : Harness.deployment) ~events =
  let engine = Erpc.Fabric.engine d.fabric in
  let all = Array.to_list d.rpcs |> List.concat_map Array.to_list in
  let sum f = List.fold_left (fun acc r -> acc + f (Erpc.Rpc.stats r)) 0 all in
  Printf.sprintf "now=%d events=%d handled=%d retx=%d resets=%d corrupt=%d"
    (Sim.Engine.now engine) events
    (sum (fun s -> s.Erpc.Rpc_stats.handled))
    (sum (fun s -> s.Erpc.Rpc_stats.retransmits))
    (sum (fun s -> s.Erpc.Rpc_stats.session_resets))
    (sum (fun s -> s.Erpc.Rpc_stats.rx_corrupt))

let incast ~seed () =
  let degree = 10 in
  let cluster = Transport.Cluster.cx4 ~nodes:(degree + 1) () in
  let d =
    Harness.deploy ~seed cluster ~threads_per_host:1
      ~register:(Harness.register_echo ~resp_size:32)
  in
  let victim = degree in
  let drivers =
    Array.init degree (fun h ->
        let rpc = d.rpcs.(h).(0) in
        let sessions = connect_all d ~pairs:[| (rpc, victim) |] in
        Harness.make_driver
          ~rng:(Sim.Rng.split (Sim.Engine.rng (Erpc.Fabric.engine d.fabric)))
          ~rpc ~sessions ~window:16 ~req_size:1024 ())
  in
  Array.iter Harness.start_driver drivers;
  Harness.run_ms d 5.0;
  let events = Sim.Engine.events_processed (Erpc.Fabric.engine d.fabric) in
  (events, deploy_fingerprint d ~events)

let rate ~seed () =
  let cluster = Transport.Cluster.cx4 ~nodes:2 () in
  let d =
    Harness.deploy ~seed cluster ~threads_per_host:1 ~register:Harness.register_echo
  in
  let rpc = d.rpcs.(0).(0) in
  let sessions = connect_all d ~pairs:[| (rpc, 1) |] in
  let driver =
    Harness.make_driver
      ~rng:(Sim.Rng.split (Sim.Engine.rng (Erpc.Fabric.engine d.fabric)))
      ~rpc ~sessions ~window:60 ~batch:3 ~req_size:32 ()
  in
  Harness.start_driver driver;
  Harness.run_ms d 5.0;
  let events = Sim.Engine.events_processed (Erpc.Fabric.engine d.fabric) in
  (events, deploy_fingerprint d ~events)

let bandwidth ~seed () =
  let cluster = Transport.Cluster.cx4 ~nodes:2 () in
  let d =
    Harness.deploy ~seed cluster ~threads_per_host:1
      ~register:(Harness.register_echo ~resp_size:32)
  in
  let rpc = d.rpcs.(0).(0) in
  let sessions = connect_all d ~pairs:[| (rpc, 1) |] in
  let driver =
    Harness.make_driver
      ~rng:(Sim.Rng.split (Sim.Engine.rng (Erpc.Fabric.engine d.fabric)))
      ~rpc ~sessions ~window:2 ~req_size:(256 * 1024) ()
  in
  Harness.start_driver driver;
  Harness.run_ms d 5.0;
  let events = Sim.Engine.events_processed (Erpc.Fabric.engine d.fabric) in
  (events, deploy_fingerprint d ~events)

let chaos ~seed () =
  let total = ref 0 in
  let buf = Buffer.create 256 in
  for i = 0 to 2 do
    let r = Chaos.run_one ~seed:(Int64.add seed (Int64.of_int (7_919 * i))) () in
    total := !total + r.Chaos.events;
    (* The chaos trace is the run's canonical identity; hash it rather
       than carrying megabytes of text into the fingerprint. *)
    Buffer.add_string buf (Digest.to_hex (Digest.string r.Chaos.trace));
    Buffer.add_char buf '|'
  done;
  (!total, Buffer.contents buf)

let workloads =
  [ ("incast", incast); ("rate", rate); ("bandwidth", bandwidth); ("chaos", chaos) ]

let workload_names = List.map fst workloads

(* {2 Measurement} *)

let run_one ~workload ~impl ~seed =
  let f =
    match List.assoc_opt workload workloads with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Bench_sim.run_one: unknown workload %S" workload)
  in
  Sim.Event_queue.set_default_impl impl;
  Fun.protect ~finally:(fun () -> Sim.Event_queue.set_default_impl Sim.Event_queue.Wheel)
  @@ fun () ->
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Sys.time () in
  let events, fingerprint = f ~seed () in
  let wall_s = Sys.time () -. t0 in
  let words = Gc.minor_words () -. w0 in
  {
    workload;
    impl = impl_name impl;
    wall_s;
    events;
    events_per_sec = (if wall_s > 0. then float_of_int events /. wall_s else 0.);
    minor_words_per_event = (if events > 0 then words /. float_of_int events else 0.);
    digest =
      Digest.to_hex
        (Digest.string (Printf.sprintf "%s/%s:%s" workload (impl_name impl) fingerprint));
  }

let run_all ?(seed = 42L) ?(impls = [ Sim.Event_queue.Binheap; Sim.Event_queue.Wheel ]) () =
  List.concat_map
    (fun (workload, _) -> List.map (fun impl -> run_one ~workload ~impl ~seed) impls)
    workloads

let row_json r =
  Obs.Json.Obj
    [
      ("workload", Obs.Json.Str r.workload);
      ("impl", Obs.Json.Str r.impl);
      ("wall_s", Obs.Json.Float r.wall_s);
      ("events", Obs.Json.Int r.events);
      ("events_per_sec", Obs.Json.Float r.events_per_sec);
      ("minor_words_per_event", Obs.Json.Float r.minor_words_per_event);
      ("digest", Obs.Json.Str r.digest);
    ]

(* [domains]/[host_cores]/[speedup_vs_1dom] mirror BENCH_par_sim.json so
   downstream tooling can join the two documents: this bench is the
   single-domain engine, so domains is 1 and the speedup trivially 1.0. *)
let to_json rows =
  Obs.Json.Obj
    [
      ("benchmark", Obs.Json.Str "sim_events");
      ("unit", Obs.Json.Str "events/s");
      ("domains", Obs.Json.Int 1);
      ("host_cores", Obs.Json.Int (Domain.recommended_domain_count ()));
      ("speedup_vs_1dom", Obs.Json.Float 1.0);
      ("rows", Obs.Json.Arr (List.map row_json rows));
    ]
