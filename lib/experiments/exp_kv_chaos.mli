(** Failover-chaos harness for the sharded replicated-KV service.

    Deploys {!Service} on a CX4-like two-tier cluster — six replica hosts
    across three ToRs carrying four 3-way Raft groups, two client hosts
    running smart clients — waits for every group to elect, then drives a
    seeded open-loop PUT/GET mix straight through a fault scenario:

    - [Leader_crash]: crash the current leader of two groups mid-load
      (crash-with-restart, the second below the detection timeout);
    - [Tor_partition]: sever ToR pairs, isolating replicas from quorum;
    - [Rolling_restart]: crash-restart every replica host in sequence;
    - [Hot_shard]: Zipfian keys concentrating load on one group, whose
      leader then crashes.

    Reported per run: an availability timeline ({!Obs.Timeline}, 10 ms
    windows with per-window P50/P99), end-to-end tail latency, retry /
    redirect / drop / dedup counters, and the service invariants —

    - no acknowledged write lost: every client-acked (client id, seq) is
      in the committed log of *all* its group's replicas;
    - no write applied twice: the per-incarnation apply observer saw each
      (client id, seq) mutate a store at most once, despite retries;
    - convergence: per group, equal commit indexes, byte-equal committed
      logs, fully applied, and every replica's store byte-equal to a
      dedup-replay of the committed log.

    Determinism: {!run_suite} executes every seed twice and compares
    fault-trace renderings byte-for-byte. *)

type scenario = Leader_crash | Tor_partition | Rolling_restart | Hot_shard

val scenario_name : scenario -> string

type run_result = {
  seed : int64;
  scenario : scenario;
  issued : int;
  acked : int;  (** client-visible successes (PUT acks + GET replies) *)
  failed : int;  (** deadline-exceeded operations *)
  retries : int;
  redirects : int;
  raft_drops : int;  (** Raft sends suppressed while peers were down *)
  dedup_hits : int;  (** duplicate submissions/entries suppressed *)
  restarts : int;  (** replica crash-restart cycles observed *)
  p50_us : float;
  p99_us : float;
  commit_p50_us : float;  (** leader commit latency, all groups merged *)
  commit_p99_us : float;
  gap_windows : int;  (** 10 ms windows with attempts but zero successes *)
  longest_gap_ms : float;
  violations : string list;
  trace : string;  (** canonical fault-trace rendering (byte-comparable) *)
  timeline : Obs.Json.t;
  events : int;
}

val run_one : ?scenario:scenario -> seed:int64 -> unit -> run_result

type suite_result = {
  runs : run_result list;
  deterministic : bool;  (** every seed's rerun produced an identical trace *)
}

(** [run_suite ~seeds ()] runs [seeds] schedules (default 20) cycling
    through the four scenarios, each twice for the determinism check.
    [~jobs] fans the seeds across that many OCaml domains; results stay
    in seed order, so the report is identical for any [jobs]. *)
val run_suite : ?seeds:int -> ?jobs:int -> unit -> suite_result

val pp_run : Format.formatter -> run_result -> unit

(** Full JSON report: per-run totals, invariants and timelines. *)
val suite_to_json : suite_result -> Obs.Json.t

(** The no-fault baseline for the bench trajectory: commit latency and
    availability with no chaos, as
    [{"commit_p50_us":..,"commit_p99_us":..,"client_p50_us":..,
      "client_p99_us":..,"acked":..,"gap_windows":..}]. *)
val baseline_json : ?seed:int64 -> unit -> Obs.Json.t
