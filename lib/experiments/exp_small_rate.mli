(** Figure 4 (single-core small-RPC rate with B requests per batch) and
    Table 3 (factor analysis of the common-case optimizations).

    Setup mirrors §6.2: one thread per node; every thread is both client
    and server; each thread keeps [window] (60) 32 B requests in flight,
    issued in batches of [batch] to uniformly random remote threads. *)

type result = {
  per_thread_mrps : float;  (** client request rate per thread *)
  total_rpcs : int;
  retransmits : int;
}

val run :
  ?seed:int64 ->
  ?config:Erpc.Config.t ->
  ?cost:Erpc.Cost_model.t ->
  ?trace:Obs.Trace.t ->
  ?window:int ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  ?per_batch_cost_ns:int ->
  cluster:Transport.Cluster.t ->
  batch:int ->
  unit ->
  result

(** A FaSST-like specialized RPC baseline: same substrate, congestion
    control off, and a cost model stripped of eRPC's generality (no msgbuf
    machinery, no CC hooks, no preallocation checks). *)
val run_fasst :
  ?seed:int64 ->
  ?trace:Obs.Trace.t ->
  ?window:int ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  cluster:Transport.Cluster.t ->
  batch:int ->
  unit ->
  result

(** As {!run}, but issuing typed requests (fixed-width 24 B schema) via
    {!Erpc.Typed}, so schema (de)serialization is charged on the datapath
    under [backend] and the NIC [offload] toggle. *)
val run_typed :
  ?seed:int64 ->
  ?window:int ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  cluster:Transport.Cluster.t ->
  backend:Codec.backend ->
  offload:bool ->
  batch:int ->
  unit ->
  result

(** Table 3 factor analysis on CX4 with B=3: optimizations disabled
    cumulatively, in the paper's order, starting with the baseline.
    Extended with non-cumulative "Typed codec" rows (the baseline re-run
    with typed requests under each codec backend, with and without NIC
    offload) and "Transport" rows (the baseline on the RDMA RC datapath,
    and on a pairwise-colocated cluster where the shared-memory transport
    carries the intra-host share of the mesh). Returns (label, result)
    rows. *)
val factor_analysis :
  ?seed:int64 -> ?measure_ms:float -> unit -> (string * result) list
