(* Codec benchmark ([erpc_sim codec-bench]): per backend x payload schema
   x offload toggle, measure

   - wall-clock encode/decode ns/op of the codec implementation itself
     (tight loop over a preallocated buffer, [Sys.time]-based), and
   - the *modeled* per-message costs the simulator charges, plus the
     simulated end-to-end small-RPC rate a typed echo workload reaches
     under that codec configuration.

   The wall-clock columns benchmark this repository's code; the modeled
   columns are the simulator's claim about an eRPC-class implementation.
   Comparing Compact vs Flat vs offload rows reproduces the ablation shape
   of Dagger/RPCAcc-style NIC-offloaded serialization studies. *)

type row = {
  backend : string;
  schema : string;
  offload : bool;
  wire_bytes : int;
  leaves : int;
  encode_ns : float;  (** wall-clock ns per encode *)
  decode_ns : float;  (** wall-clock ns per decode *)
  model_encode_ns : int;  (** modeled CPU (or offload) charge per encode *)
  model_decode_ns : int;
  sim_mrps : float;  (** simulated typed-echo rate under this config *)
}

type packed = P : string * 'a Codec.t * 'a -> packed

let schemas =
  [
    P ("fixed24", Harness.schema_fixed, Harness.value_fixed);
    P ("var64", Harness.schema_var, Harness.value_var);
  ]

let backends = [ Codec.Compact; Codec.Flat ]

let time_ns_per_op iters f =
  f () (* warm *);
  let t0 = Sys.time () in
  for _ = 1 to iters do
    f ()
  done;
  (Sys.time () -. t0) *. 1e9 /. float_of_int iters

let sim_mrps ~seed ~backend ~offload ~measure_ms (P (_, codec, value)) =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let config =
    {
      (Erpc.Config.of_cluster cluster) with
      codec_backend = backend;
      codec_offload = offload;
    }
  in
  let d =
    Harness.deploy ~seed ~config cluster ~threads_per_host:1
      ~register:(Harness.register_typed_echo codec)
  in
  let rpc = d.rpcs.(0).(0) in
  let sessions = [| Harness.connect d rpc ~remote_host:1 ~remote_rpc_id:0 |] in
  let rng = Sim.Rng.split (Sim.Engine.rng (Erpc.Fabric.engine d.fabric)) in
  let driver =
    Harness.make_typed_driver ~codec ~value ~rng ~rpc ~sessions ~window:16 ~batch:1 ()
  in
  Harness.start_typed_driver driver;
  Harness.run_ms d 0.5 (* warmup *);
  let before = Harness.typed_driver_completed driver in
  Harness.run_ms d measure_ms;
  let after = Harness.typed_driver_completed driver in
  float_of_int (after - before) /. (measure_ms *. 1e-3) /. 1e6

let run_one ?(seed = 1L) ?(iters = 100_000) ?(measure_ms = 2.0)
    ?(cost = Erpc.Cost_model.default) ~backend ~offload (P (name, codec, value) as p) =
  let bytes = Codec.encoded_size ~backend codec value in
  let leaves = Codec.encoded_leaves ~backend codec value in
  let buf = Bytes.make bytes '\000' in
  ignore (Codec.encode ~backend codec buf 0 value);
  let encode_ns = time_ns_per_op iters (fun () -> ignore (Codec.encode ~backend codec buf 0 value)) in
  let decode_ns =
    time_ns_per_op iters (fun () -> ignore (Codec.decode ~backend codec buf ~off:0 ~len:bytes))
  in
  {
    backend = Codec.backend_name backend;
    schema = name;
    offload;
    wire_bytes = bytes;
    leaves;
    encode_ns;
    decode_ns;
    model_encode_ns = Erpc.Cost_model.codec_cost cost ~deser:false ~backend ~offload ~leaves ~bytes;
    model_decode_ns = Erpc.Cost_model.codec_cost cost ~deser:true ~backend ~offload ~leaves ~bytes;
    sim_mrps = sim_mrps ~seed ~backend ~offload ~measure_ms p;
  }

let run ?seed ?iters ?measure_ms ?cost () =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun backend ->
          List.map
            (fun offload -> run_one ?seed ?iters ?measure_ms ?cost ~backend ~offload p)
            [ false; true ])
        backends)
    schemas

let row_json r =
  Obs.Json.Obj
    [
      ("backend", Obs.Json.Str r.backend);
      ("schema", Obs.Json.Str r.schema);
      ("offload", Obs.Json.Bool r.offload);
      ("wire_bytes", Obs.Json.Int r.wire_bytes);
      ("leaves", Obs.Json.Int r.leaves);
      ("encode_ns", Obs.Json.Float r.encode_ns);
      ("decode_ns", Obs.Json.Float r.decode_ns);
      ("model_encode_ns", Obs.Json.Int r.model_encode_ns);
      ("model_decode_ns", Obs.Json.Int r.model_decode_ns);
      ("sim_mrps", Obs.Json.Float r.sim_mrps);
    ]

let to_json rows =
  Obs.Json.Obj
    [
      ("benchmark", Obs.Json.Str "codec");
      ("unit", Obs.Json.Str "ns/op");
      ("rows", Obs.Json.Arr (List.map row_json rows));
    ]

let pp_table fmt rows =
  Format.fprintf fmt "%-8s %-8s %-8s %6s %6s %10s %10s %10s %10s %9s@." "backend" "schema"
    "offload" "bytes" "leaves" "enc ns/op" "dec ns/op" "model enc" "model dec" "sim Mrps";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-8s %-8s %-8s %6d %6d %10.1f %10.1f %10d %10d %9.3f@."
        r.backend r.schema
        (if r.offload then "on" else "off")
        r.wire_bytes r.leaves r.encode_ns r.decode_ns r.model_encode_ns r.model_decode_ns
        r.sim_mrps)
    rows
