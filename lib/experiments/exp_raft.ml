type result = {
  client_p50_us : float;
  client_p99_us : float;
  leader_p50_us : float;
  leader_p99_us : float;
  puts : int;
  errors : int;
}

let num_keys = 1_000_000
let deadline_ns = 50_000_000

let run ?seed ?(samples = 3_000) () =
  let cluster = Transport.Cluster.cx5 ~nodes:4 () in
  let d = Harness.deploy ?seed cluster ~threads_per_host:1 in
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let map =
    Service.Shard_map.create ~shards:1 ~replication:3 ~replica_hosts:[| 0; 1; 2 |]
  in
  let replicas =
    Array.map
      (fun host ->
        Service.Replica.create ~fabric:d.fabric ~nexus:d.nexuses.(host)
          ~rpc:d.rpcs.(host).(0) ~map ~host ())
      [| 0; 1; 2 |]
  in
  (* Let the group elect a leader. *)
  let deadline = ref 100 in
  while
    (not (Array.exists (fun r -> Service.Replica.is_leader r ~shard:0) replicas))
    && !deadline > 0
  do
    Harness.run_ms d 5.0;
    decr deadline
  done;
  if not (Array.exists (fun r -> Service.Replica.is_leader r ~shard:0) replicas) then
    failwith "Exp_raft: no leader elected";
  let client =
    Service.Kv_client.create ~fabric:d.fabric ~rpc:d.rpcs.(3).(0) ~map ~client_id:1 ()
  in
  let value = String.make Service.Kv_proto.value_size 'v' in
  let errors = ref 0 in
  let remaining = ref samples in
  let rec issue () =
    if !remaining > 0 then begin
      decr remaining;
      let key = Workload.Keygen.encode (Sim.Rng.int rng num_keys) in
      ignore
        (Service.Kv_client.put client ~key ~value ~deadline_ns ~cont:(fun r ->
             (match r with Ok () -> () | Error _ -> incr errors);
             issue ()))
    end
  in
  issue ();
  let budget = ref 4_000 in
  while !remaining > 0 && !budget > 0 do
    Harness.run_ms d 1.0;
    decr budget
  done;
  let hist = Service.Kv_client.latencies client in
  let puts = Stats.Hist.count hist in
  (* An all-error run used to fall out of here as a silently empty
     histogram; refuse to report nonsense. *)
  if puts = 0 then failwith "Exp_raft: every PUT failed";
  let commit = Stats.Hist.create () in
  Array.iter
    (fun r -> Stats.Hist.merge ~dst:commit ~src:(Service.Replica.commit_latencies r))
    replicas;
  Array.iter Service.Replica.stop replicas;
  {
    client_p50_us = float_of_int (Stats.Hist.median hist) /. 1e3;
    client_p99_us = float_of_int (Stats.Hist.percentile hist 99.) /. 1e3;
    leader_p50_us = float_of_int (Stats.Hist.median commit) /. 1e3;
    leader_p99_us = float_of_int (Stats.Hist.percentile commit 99.) /. 1e3;
    puts;
    errors = !errors;
  }
