type tenant_report = {
  tname : string;
  service : string;
  sources : int;
  offered_rps : float;
  issued : int;
  ok : int;
  failed : int;
  shed : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  retries : int;
  redirects : int;
  timeline : Obs.Json.t;
}

type result = {
  scenario : string;
  seed : int64;
  horizon_ns : int;
  tenants : tenant_report list;
  attribution : Obs.Anatomy.attribution option;
  analyzed_rpcs : int;
  digest : string;
  events : int;
  violations : string list;
  breakdowns : Obs.Anatomy.breakdown list;
}

(* Layout: CX4 two-tier, 2 hosts per ToR. KV replicas span ToRs 0-2 (so
   shard quorums cross racks), echo servers fill ToR 3, clients ToRs 4-5 —
   every request crosses the spine, like a real multi-rack service. *)
let nodes = 12
let replica_hosts = [| 0; 1; 2; 3; 4; 5 |]
let echo_hosts = [| 6; 7 |]
let client_hosts = [| 8; 9; 10; 11 |]
let shards = 4
let replication = 3

let window_ns = 5_000_000
let kv_deadline_ns = 20_000_000
let settle_ns = 60_000_000
let echo_req_type_base = 16

(* Per-tenant driving state; [issue] fires one arrival (or sheds it). *)
type tenant_state = {
  spec : Workload.Traffic_spec.tenant;
  hist : Stats.Hist.t;
  timeline : Obs.Timeline.t;
  mutable issued : int;
  mutable ok : int;
  mutable failed : int;
  mutable shed : int;
  mutable outstanding : int;
  issue : now_rel:int -> unit;
  stats : unit -> int * int;  (** retries, redirects *)
}

let pctl h p =
  if Stats.Hist.count h = 0 then 0. else float_of_int (Stats.Hist.percentile h p) /. 1e3

let run ?(seed = 42L) ?(trace_capacity = 1 lsl 18)
    (scenario : Workload.Traffic_spec.scenario) =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* "local-mesh" models a microservice mesh: clients 8 and 9 share a
     machine with the echo servers, so their echo sessions split between
     the shared-memory rings (to the co-resident server) and the wire (to
     the other one), while clients 10-11 and all KV traffic stay fully
     remote. *)
  let local_mesh = scenario.Workload.Traffic_spec.sname = "local-mesh" in
  let cluster = Transport.Cluster.cx4 ~nodes () in
  let cluster =
    if local_mesh then Transport.Cluster.colocate cluster [ [ 6; 8 ]; [ 7; 9 ] ]
    else cluster
  in
  let config =
    let base = Erpc.Config.of_cluster cluster in
    if local_mesh then { base with Erpc.Config.shm_enabled = true } else base
  in
  let trace = Obs.Trace.create ~capacity:trace_capacity () in
  let d = Harness.deploy ~seed ~config ~trace cluster ~threads_per_host:1 in
  let engine = Erpc.Fabric.engine d.fabric in
  (* Replicated-KV service on hosts 0-5, exactly the kv-chaos deployment. *)
  let map = Service.Shard_map.create ~shards ~replication ~replica_hosts in
  let replicas =
    Array.map
      (fun host ->
        Service.Replica.create ~fabric:d.fabric ~nexus:d.nexuses.(host)
          ~rpc:d.rpcs.(host).(0) ~map ~host ())
      replica_hosts
  in
  (* Echo service: one req_type per echo tenant, so each tenant gets its
     own response size (a 64 kB transfer is acked with 32 B, not echoed). *)
  List.iteri
    (fun ti (t : Workload.Traffic_spec.tenant) ->
      match t.service with
      | Workload.Traffic_spec.Echo { resp_size; _ } ->
          Array.iter
            (fun h ->
              Harness.register_echo ~req_type:(echo_req_type_base + ti) ~resp_size
                d.nexuses.(h))
            echo_hosts
      | Workload.Traffic_spec.Kv _ -> ())
    scenario.tenants;
  (* Bootstrap: every shard elects before the measured window opens. *)
  let all_elected () =
    List.for_all
      (fun shard ->
        Array.exists (fun r -> Service.Replica.is_leader r ~shard) replicas)
      (List.init shards Fun.id)
  in
  let budget = ref 100 in
  while (not (all_elected ())) && !budget > 0 do
    Harness.run_ms d 5.0;
    decr budget
  done;
  if not (all_elected ()) then violate "bootstrap: not every shard elected a leader";
  (* Measurement epoch: set once instantiation (which runs the engine to
     connect echo sessions) is done; completion callbacks read it to place
     samples on the timeline. *)
  let t0_ref = ref 0 in
  (* Instantiate tenants. Creation order (tenant list order, then source
     index) fixes every rng split, so runs are reproducible. *)
  let states =
    List.mapi
      (fun ti (t : Workload.Traffic_spec.tenant) ->
        let hist = Stats.Hist.create () in
        let timeline = Obs.Timeline.create ~window_ns ~horizon_ns:scenario.horizon_ns in
        match t.service with
        | Workload.Traffic_spec.Kv { get_pct } ->
            let pool =
              Service.Client_pool.create ~fabric:d.fabric ~map
                ~rpcs:(Array.map (fun h -> d.rpcs.(h).(0)) client_hosts)
                ~base_client_id:(1 + (ti * 64))
                ~clients_per_rpc:1 ()
            in
            let krng = Sim.Rng.split (Sim.Engine.rng engine) in
            let rec st =
              {
                spec = t;
                hist;
                timeline;
                issued = 0;
                ok = 0;
                failed = 0;
                shed = 0;
                outstanding = 0;
                issue =
                  (fun ~now_rel ->
                    if st.outstanding >= t.max_outstanding then st.shed <- st.shed + 1
                    else begin
                      st.issued <- st.issued + 1;
                      st.outstanding <- st.outstanding + 1;
                      let key =
                        Workload.Keygen.encode
                          (Workload.Keygen.next_at t.keygen krng ~now_ns:now_rel)
                      in
                      let started = Sim.Engine.now engine in
                      let finish okp =
                        st.outstanding <- st.outstanding - 1;
                        let now = Sim.Engine.now engine in
                        let lat = Sim.Time.sub now started in
                        let at_ns = Sim.Time.sub now !t0_ref in
                        if okp then begin
                          st.ok <- st.ok + 1;
                          Stats.Hist.record hist lat;
                          Obs.Timeline.ok timeline ~at_ns ~latency_ns:lat
                        end
                        else begin
                          st.failed <- st.failed + 1;
                          Obs.Timeline.fail timeline ~at_ns
                        end
                      in
                      if Sim.Rng.int krng 100 < get_pct then
                        Service.Client_pool.get pool ~key ~deadline_ns:kv_deadline_ns
                          ~cont:(fun r -> finish (Result.is_ok r))
                      else
                        let value = Printf.sprintf "t%d-%08d" ti st.issued in
                        Service.Client_pool.put pool ~key ~value
                          ~deadline_ns:kv_deadline_ns ~cont:(fun r ->
                            finish (Result.is_ok r))
                    end);
                stats =
                  (fun () ->
                    (Service.Client_pool.retries pool, Service.Client_pool.redirects pool));
              }
            in
            st
        | Workload.Traffic_spec.Echo { req_size; resp_size } ->
            let req_type = echo_req_type_base + ti in
            (* Sessions from every client host to every echo server; the
               per-op cursor alternates both source and destination. *)
            let endpoints =
              Array.concat
                (List.map
                   (fun ch ->
                     let rpc = d.rpcs.(ch).(0) in
                     Array.map
                       (fun eh ->
                         (rpc, Harness.connect d rpc ~remote_host:eh ~remote_rpc_id:0))
                       echo_hosts)
                   (Array.to_list client_hosts))
            in
            let bufs =
              ref
                (List.init t.max_outstanding (fun _ ->
                     ( Erpc.Msgbuf.alloc ~max_size:req_size,
                       Erpc.Msgbuf.alloc ~max_size:resp_size )))
            in
            let cursor = ref 0 in
            let rec st =
              {
                spec = t;
                hist;
                timeline;
                issued = 0;
                ok = 0;
                failed = 0;
                shed = 0;
                outstanding = 0;
                issue =
                  (fun ~now_rel:_ ->
                    match !bufs with
                    | [] -> st.shed <- st.shed + 1
                    | (req, resp) :: rest ->
                        bufs := rest;
                        st.issued <- st.issued + 1;
                        st.outstanding <- st.outstanding + 1;
                        Erpc.Msgbuf.resize req req_size;
                        let rpc, sess = endpoints.(!cursor) in
                        cursor := (!cursor + 1) mod Array.length endpoints;
                        let started = Sim.Engine.now engine in
                        Erpc.Rpc.enqueue_request rpc sess ~req_type ~req ~resp
                          ~cont:(fun r ->
                            st.outstanding <- st.outstanding - 1;
                            bufs := (req, resp) :: !bufs;
                            let now = Sim.Engine.now engine in
                            let lat = Sim.Time.sub now started in
                            let at_ns = Sim.Time.sub now !t0_ref in
                            if Result.is_ok r then begin
                              st.ok <- st.ok + 1;
                              Stats.Hist.record hist lat;
                              Obs.Timeline.ok timeline ~at_ns ~latency_ns:lat
                            end
                            else begin
                              st.failed <- st.failed + 1;
                              Obs.Timeline.fail timeline ~at_ns
                            end))
                  ;
                stats = (fun () -> (0, 0));
              }
            in
            st)
      scenario.tenants
  in
  (* Open-loop sources: each walks its arrival process from t0 (all phase
     windows anchored there) and fires regardless of completions. *)
  let t0 = Sim.Engine.now engine in
  t0_ref := t0;
  List.iter
    (fun st ->
      for _src = 1 to st.spec.Workload.Traffic_spec.sources do
        let arng = Sim.Rng.split (Sim.Engine.rng engine) in
        let arr = Workload.Arrival.make st.spec.Workload.Traffic_spec.arrival ~rng:arng in
        let rec arm now_rel =
          let next = Workload.Arrival.next_after arr ~now_ns:now_rel in
          if next < scenario.horizon_ns then
            Sim.Engine.schedule engine (Sim.Time.add t0 next) (fun () ->
                st.issue ~now_rel:next;
                arm next)
        in
        arm 0
      done)
    states;
  Sim.Engine.run_until engine (Sim.Time.add t0 scenario.horizon_ns);
  Sim.Engine.run_until engine (Sim.Time.add t0 (scenario.horizon_ns + settle_ns));
  Array.iter Service.Replica.stop replicas;
  Sim.Engine.run engine;
  (* Tail attribution over client-host RPCs (KV front-end + echo; the
     replicas' internal Raft traffic originates below [client_hosts] and is
     excluded so the attribution reflects what tenants experience). *)
  let breakdowns =
    List.filter
      (fun (b : Obs.Anatomy.breakdown) -> b.host >= client_hosts.(0))
      (Obs.Anatomy.analyze
         ~wire_ns:(Exp_anatomy.predictor cluster)
         (Obs.Trace.events trace))
  in
  let reports =
    List.map
      (fun st ->
        let retries, redirects = st.stats () in
        (* issued = 0 just means the horizon was too short for this
           tenant's offered rate (smoke runs); issued > 0 with zero
           successes is a real outage. *)
        if st.issued > 0 && st.ok = 0 then
          violate "tenant %s: issued %d operations, none succeeded"
            st.spec.Workload.Traffic_spec.tname st.issued;
        {
          tname = st.spec.Workload.Traffic_spec.tname;
          service =
            (match st.spec.Workload.Traffic_spec.service with
            | Workload.Traffic_spec.Kv _ -> "kv"
            | Workload.Traffic_spec.Echo _ -> "echo");
          sources = st.spec.Workload.Traffic_spec.sources;
          offered_rps = Workload.Traffic_spec.offered_rps st.spec;
          issued = st.issued;
          ok = st.ok;
          failed = st.failed;
          shed = st.shed;
          mean_us =
            (if Stats.Hist.count st.hist = 0 then 0. else Stats.Hist.mean st.hist /. 1e3);
          p50_us = pctl st.hist 50.;
          p99_us = pctl st.hist 99.;
          p999_us = pctl st.hist 99.9;
          retries;
          redirects;
          timeline = Obs.Timeline.to_json st.timeline;
        })
      states
  in
  {
    scenario = scenario.sname;
    seed;
    horizon_ns = scenario.horizon_ns;
    tenants = reports;
    attribution = Obs.Anatomy.attribute breakdowns;
    analyzed_rpcs = List.length breakdowns;
    digest = Obs.Trace.digest trace;
    events = Sim.Engine.events_processed engine;
    violations = List.rev !violations;
    breakdowns;
  }

let run_named ?seed ?scale ?horizon_ms name =
  match Workload.Traffic_spec.of_name ?scale ?horizon_ms name with
  | Some s -> run ?seed s
  | None -> invalid_arg (Printf.sprintf "Exp_cluster_load: unknown scenario %S" name)

(* Scenarios are independent (each builds its own engine and cluster),
   so [~jobs] fans them across domains; Par_sweep keeps scenario order,
   so the report is identical for any [jobs]. *)
let run_all ?seed ?scale ?horizon_ms ?(rerun_check = false) ?jobs () =
  let names = Array.of_list (List.map fst Workload.Traffic_spec.builtin) in
  Par_sweep.list ?jobs (Array.length names) (fun i ->
      let name = names.(i) in
      let r = run_named ?seed ?scale ?horizon_ms name in
      if not rerun_check then r
      else
        let r2 = run_named ?seed ?scale ?horizon_ms name in
        if r2.digest = r.digest then r
        else
          {
            r with
            violations =
              r.violations
              @ [
                  Printf.sprintf "nondeterministic: rerun digest %s <> %s" r2.digest
                    r.digest;
                ];
          })

let pp_result fmt r =
  Format.fprintf fmt "scenario %s (seed=%Ld, %d events, %d RPCs analyzed)@." r.scenario
    r.seed r.events r.analyzed_rpcs;
  List.iter
    (fun t ->
      Format.fprintf fmt
        "  %-14s %-5s %3d src %8.0f rps  issued=%-6d ok=%-6d failed=%-4d shed=%-4d \
         p50=%.1fus p99=%.1fus p99.9=%.1fus@."
        t.tname t.service t.sources t.offered_rps t.issued t.ok t.failed t.shed t.p50_us
        t.p99_us t.p999_us)
    r.tenants;
  (match r.attribution with
  | Some a ->
      Format.fprintf fmt
        "  tail: p50=%.1fus (%s) p99=%.1fus (%s) p99.9=%.1fus over %d samples@."
        (float_of_int a.p50_total_ns /. 1e3)
        a.p50_dominant
        (float_of_int a.p99_total_ns /. 1e3)
        a.p99_dominant
        (float_of_int a.p999_total_ns /. 1e3)
        a.samples
  | None -> Format.fprintf fmt "  tail: no complete RPCs in retained trace@.");
  if r.violations <> [] then
    Format.fprintf fmt "  VIOLATIONS: %s@." (String.concat "; " r.violations)

let tenant_to_json t =
  Obs.Json.Obj
    [
      ("tenant", Obs.Json.Str t.tname);
      ("service", Obs.Json.Str t.service);
      ("sources", Obs.Json.Int t.sources);
      ("offered_rps", Obs.Json.Float t.offered_rps);
      ("issued", Obs.Json.Int t.issued);
      ("ok", Obs.Json.Int t.ok);
      ("failed", Obs.Json.Int t.failed);
      ("shed", Obs.Json.Int t.shed);
      ("mean_us", Obs.Json.Float t.mean_us);
      ("p50_us", Obs.Json.Float t.p50_us);
      ("p99_us", Obs.Json.Float t.p99_us);
      ("p999_us", Obs.Json.Float t.p999_us);
      ("retries", Obs.Json.Int t.retries);
      ("redirects", Obs.Json.Int t.redirects);
      ("timeline", t.timeline);
    ]

let result_to_json r =
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.Str r.scenario);
      ("seed", Obs.Json.Int (Int64.to_int r.seed));
      ("horizon_ns", Obs.Json.Int r.horizon_ns);
      ("digest", Obs.Json.Str r.digest);
      ("events", Obs.Json.Int r.events);
      ("analyzed_rpcs", Obs.Json.Int r.analyzed_rpcs);
      ("tenants", Obs.Json.Arr (List.map tenant_to_json r.tenants));
      ( "attribution",
        match r.attribution with
        | Some a -> Obs.Anatomy.attribution_to_json a
        | None -> Obs.Json.Null );
      ("violations", Obs.Json.Arr (List.map (fun v -> Obs.Json.Str v) r.violations));
    ]

let to_json rs =
  Obs.Json.Obj
    [
      ("benchmark", Obs.Json.Str "cluster_load");
      ("unit", Obs.Json.Str "us");
      ("rows", Obs.Json.Arr (List.map result_to_json rs));
    ]
