(* Fig. 7-style session scalability: eRPC's constant-size per-session
   state (no per-connection NIC queue pairs — datagram transport plus
   credit windows drawn from one shared RQ) means one Rpc can serve tens
   of thousands of sessions. A single client Rpc opens [sessions]
   sessions to one server Rpc on the CX4 cluster (RQ = 2^20 descriptors,
   so 20,000 sessions x 32 credits fits the §4.3.1 budget), completes
   every handshake, then drives a closed-loop small-RPC workload spread
   uniformly over all sessions.

   This doubles as a stress test for the simulator overhaul: tens of
   thousands of live sessions exercise the timing wheel's overflow heap
   (RTO timers land far outside the 16us wheel window) and the packet
   pool under heavy reuse. *)

type result = {
  sessions : int;
  completed : int;  (** client RPCs finished in the measured window *)
  mrps : float;  (** simulated millions of requests per second *)
  lat_p50_us : float;
  lat_p99_us : float;
  events : int;  (** simulator events executed for the whole run *)
  wall_s : float;  (** CPU seconds for the whole run *)
}

let run ?(seed = 42L) ?(req_size = 32) ?(window = 64) ?(measure_ms = 2.0) ~sessions () =
  if sessions < 1 then invalid_arg "Exp_session_scale.run: sessions must be >= 1";
  let t0 = Sys.time () in
  let cluster = Transport.Cluster.cx4 ~nodes:2 () in
  let d =
    Harness.deploy ~seed cluster ~threads_per_host:1 ~register:Harness.register_echo
  in
  let engine = Erpc.Fabric.engine d.fabric in
  let client = d.rpcs.(0).(0) in
  (* Open every session up front, then run the fabric until all
     handshakes complete; connecting one at a time would cost [sessions]
     separate drains. *)
  let status = Array.make sessions None in
  let sess =
    Array.init sessions (fun i ->
        Erpc.Rpc.create_session client ~remote_host:1 ~remote_rpc_id:0
          ~on_connect:(fun r -> status.(i) <- Some r)
          ())
  in
  let rec wait tries =
    if Array.exists (fun s -> s = None) status then
      if tries = 0 then failwith "Exp_session_scale: handshakes did not complete"
      else begin
        Harness.run_ms d 1.0;
        wait (tries - 1)
      end
  in
  wait 200;
  Array.iteri
    (fun i s ->
      match s with
      | Some (Ok ()) -> ()
      | Some (Error e) ->
          failwith (Printf.sprintf "Exp_session_scale: session %d: %s" i (Erpc.Err.to_string e))
      | None -> assert false)
    status;
  let latencies = Stats.Hist.create () in
  let driver =
    Harness.make_driver ~latencies ~rng:(Sim.Rng.split (Sim.Engine.rng engine)) ~rpc:client
      ~sessions:sess ~window ~req_size ()
  in
  Harness.start_driver driver;
  (* Warmup fills the window; then measure. *)
  Harness.run_ms d 1.0;
  let c0 = Harness.driver_completed driver in
  Harness.run_ms d measure_ms;
  let completed = Harness.driver_completed driver - c0 in
  {
    sessions;
    completed;
    mrps = float_of_int completed /. (measure_ms *. 1e-3) /. 1e6;
    lat_p50_us = float_of_int (Stats.Hist.percentile latencies 50.0) /. 1e3;
    lat_p99_us = float_of_int (Stats.Hist.percentile latencies 99.0) /. 1e3;
    events = Sim.Engine.events_processed engine;
    wall_s = Sys.time () -. t0;
  }

let sweep_points = [ 100; 1_000; 5_000; 10_000; 20_000 ]

let sweep ?seed ?req_size ?window ?measure_ms () =
  List.map (fun sessions -> run ?seed ?req_size ?window ?measure_ms ~sessions ()) sweep_points
