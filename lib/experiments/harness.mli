(** Shared machinery for the paper's experiments: deployments, echo
    servers, closed-loop request drivers, and measurement phases. *)

type deployment = {
  fabric : Erpc.Fabric.t;
  cluster : Transport.Cluster.t;
  nexuses : Erpc.Nexus.t array;  (** one per host *)
  rpcs : Erpc.Rpc.t array array;  (** [rpcs.(host).(thread)] *)
}

(** Build a fabric and one Nexus per host with [threads_per_host] Rpcs
    each. [register] is called on each Nexus to install request handlers
    before any Rpc is created. *)
val deploy :
  ?seed:int64 ->
  ?config:Erpc.Config.t ->
  ?cost:Erpc.Cost_model.t ->
  ?trace:Obs.Trace.t ->
  ?workers_per_host:int ->
  ?register:(Erpc.Nexus.t -> unit) ->
  Transport.Cluster.t ->
  threads_per_host:int ->
  deployment

(** Advance simulated time by [ms] milliseconds. *)
val run_ms : deployment -> float -> unit

(** Advance simulated time by [us] microseconds. *)
val run_us : deployment -> float -> unit

val now : deployment -> Sim.Time.t

(** The standard echo request handler used by microbenchmarks: responds
    with [resp_size] bytes (default: the request's size). *)
val echo_req_type : int

val register_echo : ?req_type:int -> ?resp_size:int -> Erpc.Nexus.t -> unit

(** Connect [rpc] to a remote Rpc and run the handshake to completion.
    Raises on failure. *)
val connect :
  deployment -> Erpc.Rpc.t -> remote_host:int -> remote_rpc_id:int -> Erpc.Session.session

(** A closed-loop driver keeping [window] requests of [req_size] bytes in
    flight from [rpc], spread over [sessions] chosen uniformly at random,
    issued in batches of [batch]. Completion latencies (ns) are recorded in
    [latencies] when provided. Call {!start_driver} once; it keeps issuing
    until the simulation stops being run. *)
type driver

val make_driver :
  ?latencies:Stats.Hist.t ->
  ?req_size:int ->
  ?resp_size:int ->
  ?batch:int ->
  ?per_batch_cost_ns:int ->
  ?req_type:int ->
  rng:Sim.Rng.t ->
  rpc:Erpc.Rpc.t ->
  sessions:Erpc.Session.session array ->
  window:int ->
  unit ->
  driver

val start_driver : driver -> unit
val driver_completed : driver -> int

(** {2 Typed workloads}

    Schema-driven counterparts of the echo workload: the server decodes
    the request and re-encodes it as the response through {!Erpc.Typed},
    charging modeled (de)serialization per the endpoint's configured codec
    backend and offload toggle. *)

val typed_echo_req_type : int

(** Benchmark schemas, both flat-capable: [schema_fixed] is all
    fixed-width (24 wire bytes, 3 leaves); [schema_var] carries a
    variable-length payload in a 64-byte bounded field. *)
val schema_fixed : ((int * int) * string) Codec.t

val value_fixed : (int * int) * string
val schema_var : (int * string) Codec.t
val value_var : int * string

(** Install a typed echo handler: decode with [codec], respond with the
    decoded value re-encoded. *)
val register_typed_echo : ?req_type:int -> 'a Codec.t -> Erpc.Nexus.t -> unit

(** As {!driver}, but issuing typed requests carrying [value] under
    [codec], with serialization charged on the datapath. *)
type typed_driver

val make_typed_driver :
  ?latencies:Stats.Hist.t ->
  ?batch:int ->
  ?per_batch_cost_ns:int ->
  ?req_type:int ->
  codec:'a Codec.t ->
  value:'a ->
  rng:Sim.Rng.t ->
  rpc:Erpc.Rpc.t ->
  sessions:Erpc.Session.session array ->
  window:int ->
  unit ->
  typed_driver

val start_typed_driver : typed_driver -> unit
val typed_driver_completed : typed_driver -> int

(** Sum of completed client RPCs across all threads of a deployment. *)
val total_completed : deployment -> int
