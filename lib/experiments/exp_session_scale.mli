(** Fig. 7-style session scalability ([erpc_sim session-scale]).

    One client Rpc opens up to 20,000 sessions to one server Rpc on the
    CX4 cluster and drives a closed-loop small-RPC workload spread over
    all of them. eRPC's per-session state is constant-size (shared RQ,
    no per-connection queue pairs), so the rate should hold roughly flat
    as sessions grow — unlike RDMA's Fig. 1 cliff. *)

type result = {
  sessions : int;
  completed : int;  (** client RPCs finished in the measured window *)
  mrps : float;  (** simulated millions of requests per second *)
  lat_p50_us : float;
  lat_p99_us : float;
  events : int;  (** simulator events executed for the whole run *)
  wall_s : float;  (** CPU seconds for the whole run *)
}

(** Open [sessions] sessions, complete every handshake, warm up for
    1 ms of simulated time, then measure for [measure_ms] (default 2).
    Raises if any handshake fails. *)
val run :
  ?seed:int64 ->
  ?req_size:int ->
  ?window:int ->
  ?measure_ms:float ->
  sessions:int ->
  unit ->
  result

(** The sweep used by [--sweep]: 100 to 20,000 sessions. *)
val sweep_points : int list

val sweep :
  ?seed:int64 -> ?req_size:int -> ?window:int -> ?measure_ms:float -> unit -> result list
