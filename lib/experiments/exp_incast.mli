(** Table 5 (incast congestion control) and the §6.5 background-traffic
    experiment.

    [degree] client nodes each send one 8 MB-request flow at a single
    victim node on the CX4 cluster. Queueing builds at the victim's ToR
    downlink; per-packet RTTs measured at the clients proxy the switch
    queue length, exactly as in the paper. With congestion control off,
    each flow keeps a full credit window (32 packets) outstanding, so the
    queue sits at [degree * 32 * MTU] — the paper's no-cc RTTs. With
    Timely on, rates back off and the queue shrinks. *)

type row = {
  degree : int;
  cc : bool;
  total_gbps : float;  (** aggregate delivery rate at the victim *)
  rtt_p50_us : float;
  rtt_p99_us : float;
  switch_buffer_peak_bytes : int;
      (** deepest any switch buffer pool got, via the metrics registry *)
  retransmits : int;  (** total client retransmissions across all Rpcs *)
}

val run :
  ?seed:int64 ->
  ?trace:Obs.Trace.t ->
  ?credits:int ->
  ?algo:Erpc.Config.cc_algo ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  degree:int ->
  cc:bool ->
  unit ->
  row
(** [?trace] installs an event trace on the deployment's engine, capturing
    packet/sslot/CC/switch-buffer events for the whole run. *)

(** The six Table 5 rows: 20/50/100-way, cc and no-cc. *)
val table5 : ?measure_ms:float -> unit -> row list

(** §6.5: pairs of non-victim nodes exchange latency-sensitive 64 kB RPCs
    (one outstanding) while a [degree]-way incast runs. Returns the p99
    latency (us) of the latency-sensitive RPCs. *)
type bg_result = {
  bg_degree : int;
  bg_p50_us : float;
  bg_p99_us : float;
}

val with_background : ?seed:int64 -> ?measure_ms:float -> degree:int -> unit -> bg_result
