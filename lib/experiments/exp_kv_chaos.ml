type scenario = Leader_crash | Tor_partition | Rolling_restart | Hot_shard

let scenario_name = function
  | Leader_crash -> "leader-crash"
  | Tor_partition -> "tor-partition"
  | Rolling_restart -> "rolling-restart"
  | Hot_shard -> "hot-shard"

type run_result = {
  seed : int64;
  scenario : scenario;
  issued : int;
  acked : int;
  failed : int;
  retries : int;
  redirects : int;
  raft_drops : int;
  dedup_hits : int;
  restarts : int;
  p50_us : float;
  p99_us : float;
  commit_p50_us : float;
  commit_p99_us : float;
  gap_windows : int;
  longest_gap_ms : float;
  violations : string list;
  trace : string;
  timeline : Obs.Json.t;
  events : int;
}

(* Layout: cx4 two-tier, 2 hosts per ToR. Replica hosts 0-5 span ToRs
   0-2, so a ToR partition cuts real quorums; clients live on ToR 3. *)
let nodes = 10
let replica_hosts = [| 0; 1; 2; 3; 4; 5 |]
let client_hosts = [| 6; 7 |]
let shards = 4
let replication = 3

let horizon_ns = 300_000_000
let window_ns = 10_000_000
let op_gap_ns = 500_000
let deadline_ns = 40_000_000
let settle_ns = 80_000_000
let num_keys = 400

let ms n = n * 1_000_000

type ctx = {
  d : Harness.deployment;
  engine : Sim.Engine.t;
  map : Service.Shard_map.t;
  replicas : Service.Replica.t array;  (** indexed like [replica_hosts] *)
  ftrace : Faults.Trace.t;
  injector : Faults.Injector.t;
}

let leader_host ctx ~shard =
  match
    Array.find_opt (fun r -> Service.Replica.is_leader r ~shard) ctx.replicas
  with
  | Some r -> Service.Replica.host r
  | None -> (Service.Shard_map.group ctx.map ~shard).(0)

(* Crash whoever leads [shard] when the event fires — the dynamic fault a
   static schedule can't express. *)
let crash_leader ctx ~shard ~down_ns =
  let h = leader_host ctx ~shard in
  Faults.Trace.record ctx.ftrace
    ~at_ns:(Sim.Engine.now ctx.engine)
    (Printf.sprintf "crash-leader shard=%d host=%d down_ns=%d" shard h down_ns);
  Erpc.Fabric.crash_host ctx.d.fabric h ~down_ns

let install_faults ctx ~scenario ~seed =
  let shard0 = Int64.to_int (Int64.rem seed (Int64.of_int shards)) in
  match scenario with
  | Leader_crash ->
      (* One slow crash (detected by the management plane) and one fast
         restart (invisible to it: peers must recover via bounded
         retransmission), on different groups, both mid-load. *)
      Sim.Engine.schedule_after ctx.engine (ms 60) (fun () ->
          crash_leader ctx ~shard:shard0 ~down_ns:(ms 30));
      Sim.Engine.schedule_after ctx.engine (ms 150) (fun () ->
          crash_leader ctx ~shard:((shard0 + 1) mod shards) ~down_ns:(ms 4))
  | Tor_partition ->
      Faults.Injector.install ctx.injector
        [
          {
            Faults.Schedule.at_ns = ms 60;
            fault = Faults.Schedule.Partition { tor_a = 0; tor_b = 1; heal_ns = ms 50 };
          };
          {
            Faults.Schedule.at_ns = ms 150;
            fault = Faults.Schedule.Partition { tor_a = 1; tor_b = 2; heal_ns = ms 40 };
          };
        ]
  | Rolling_restart ->
      Faults.Injector.install ctx.injector
        (List.init
           (Array.length replica_hosts)
           (fun i ->
             {
               Faults.Schedule.at_ns = ms (40 + (25 * i));
               fault =
                 Faults.Schedule.Crash
                   {
                     host = replica_hosts.(i);
                     down_ns = (if i mod 2 = 0 then ms 8 else ms 4);
                   };
             }))
  | Hot_shard ->
      (* Load is Zipfian (set up by the caller); crash the group that owns
         the hottest key while it soaks the skew. *)
      let hot_shard =
        Service.Shard_map.shard_of_key ctx.map ~key:(Workload.Keygen.encode 0)
      in
      Sim.Engine.schedule_after ctx.engine (ms 70) (fun () ->
          crash_leader ctx ~shard:hot_shard ~down_ns:(ms 30))

(* {2 Invariant checks} *)

let committed_cmds r ~shard =
  let core = Service.Replica.raft r ~shard in
  let log = Raft.Core.log core in
  let ci = Raft.Core.commit_index core in
  List.init ci (fun i ->
      let e = Raft.Log.get log (i + 1) in
      (e.Raft.Log.term, e.Raft.Log.cmd))

let check_invariants ctx ~acked ~applied violations =
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  Array.iter
    (fun h ->
      if Erpc.Fabric.host_dead ctx.d.fabric h then
        violate "host %d still dead after settle" h)
    replica_hosts;
  (* Per group: logs converged, fully applied, stores = dedup replay. *)
  for shard = 0 to shards - 1 do
    let group = Service.Shard_map.group ctx.map ~shard in
    let members =
      Array.map
        (fun h ->
          match
            Array.find_opt (fun r -> Service.Replica.host r = h) ctx.replicas
          with
          | Some r -> r
          | None -> failwith "replica node missing")
        group
    in
    let logs = Array.map (fun r -> committed_cmds r ~shard) members in
    Array.iteri
      (fun i r ->
        let core = Service.Replica.raft r ~shard in
        if Raft.Core.commit_index core <> List.length logs.(0) then
          violate "shard %d: commit index diverges at replica %d (%d vs %d)" shard
            group.(i)
            (Raft.Core.commit_index core)
            (List.length logs.(0));
        if Raft.Core.last_applied core <> Raft.Core.commit_index core then
          violate "shard %d: replica %d applied %d < committed %d" shard group.(i)
            (Raft.Core.last_applied core) (Raft.Core.commit_index core);
        if i > 0 && logs.(i) <> logs.(0) then
          violate "shard %d: committed log of replica %d diverges" shard group.(i))
      members;
    if List.length logs.(0) = 0 then violate "shard %d: nothing committed" shard;
    (* Reference state: replay the committed log with dedup, as replicas
       must have. *)
    let ref_store = Hashtbl.create 256 in
    let seen = Hashtbl.create 256 in
    List.iter
      (fun (_, cmd) ->
        let client_id, seq, key, value = Service.Kv_proto.decode_cmd cmd in
        if client_id <> Service.Kv_proto.noop_client_id then
          if not (Hashtbl.mem seen (client_id, seq)) then begin
            Hashtbl.replace seen (client_id, seq) ();
            Hashtbl.replace ref_store key value
          end)
      logs.(0);
    let ref_keys =
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) ref_store [])
    in
    Array.iteri
      (fun i r ->
        let store = Service.Replica.store r ~shard in
        if Mica.Store.size store <> List.length ref_keys then
          violate "shard %d: replica %d store has %d keys, replay has %d" shard
            group.(i) (Mica.Store.size store) (List.length ref_keys);
        List.iter
          (fun k ->
            if Mica.Store.get store ~key:k <> Some (Hashtbl.find ref_store k) then
              violate "shard %d: replica %d diverges on key %S" shard group.(i) k)
          ref_keys)
      members;
    (* No acknowledged write lost: every client-acked (client_id, seq) of
       this shard is in the (identical) committed logs. *)
    List.iter
      (fun (s, client_id, seq) ->
        if s = shard && not (Hashtbl.mem seen (client_id, seq)) then
          violate "shard %d: acked write c%d/%d missing from committed log" shard
            client_id seq)
      acked
  done;
  (* No write applied twice: the observer saw every (client, seq) mutate
     a given incarnation's store at most once. *)
  let dups =
    Hashtbl.fold (fun k n acc -> if n > 1 then (k, n) :: acc else acc) applied []
  in
  List.iter
    (fun ((host, inc, shard, client_id, seq), n) ->
      violate "double apply: host=%d inc=%d shard=%d c%d/%d applied %d times" host
        inc shard client_id seq n)
    (List.sort compare dups)

(* {2 One run} *)

let run ~seed ~fault_scenario () =
  let cluster = Transport.Cluster.cx4 ~nodes () in
  let d = Harness.deploy ~seed cluster ~threads_per_host:1 in
  let engine = Erpc.Fabric.engine d.fabric in
  let map = Service.Shard_map.create ~shards ~replication ~replica_hosts in
  let replicas =
    Array.map
      (fun host ->
        Service.Replica.create ~fabric:d.fabric ~nexus:d.nexuses.(host)
          ~rpc:d.rpcs.(host).(0) ~map ~host ())
      replica_hosts
  in
  let ftrace = Faults.Trace.create () in
  let injector = Faults.Injector.create ~trace:ftrace d.fabric in
  let ctx = { d; engine; map; replicas; ftrace; injector } in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* Apply observer: counts effective store mutations per incarnation. *)
  let applied = Hashtbl.create 4096 in
  Array.iter
    (fun r ->
      let host = Service.Replica.host r in
      Service.Replica.set_on_apply r (fun ~shard ~incarnation ~client_id ~seq ->
          let k = (host, incarnation, shard, client_id, seq) in
          Hashtbl.replace applied k
            (1 + Option.value ~default:0 (Hashtbl.find_opt applied k))))
    replicas;
  (* Bootstrap: every group must elect before the measured window. *)
  let all_elected () =
    List.for_all
      (fun shard ->
        Array.exists (fun r -> Service.Replica.is_leader r ~shard) replicas)
      (List.init shards Fun.id)
  in
  let budget = ref 100 in
  while (not (all_elected ())) && !budget > 0 do
    Harness.run_ms d 5.0;
    decr budget
  done;
  if not (all_elected ()) then violate "bootstrap: not every shard elected a leader";
  let t0 = Sim.Engine.now engine in
  Faults.Trace.record ftrace ~at_ns:t0
    (Printf.sprintf "kv-chaos seed=%Ld scenario=%s" seed
       (match fault_scenario with Some s -> scenario_name s | None -> "none"));
  let timeline = Obs.Timeline.create ~window_ns ~horizon_ns in
  let clients =
    Array.mapi
      (fun i host ->
        Service.Kv_client.create ~fabric:d.fabric ~rpc:d.rpcs.(host).(0) ~map
          ~client_id:(i + 1) ())
      client_hosts
  in
  let keygens =
    Array.map
      (fun _ ->
        let g =
          match fault_scenario with
          | Some Hot_shard -> Workload.Keygen.zipf ~n:num_keys ~theta:0.99
          | _ -> Workload.Keygen.uniform ~n:num_keys
        in
        (g, Sim.Rng.split (Sim.Engine.rng engine)))
      client_hosts
  in
  (match fault_scenario with
  | Some s -> install_faults ctx ~scenario:s ~seed
  | None -> ());
  let issued = ref 0 and acked_n = ref 0 and failed = ref 0 in
  let acked = ref [] in
  let ops_per_client = horizon_ns / op_gap_ns in
  Array.iteri
    (fun ci client ->
      let client_id = ci + 1 in
      let keygen, krng = keygens.(ci) in
      for j = 0 to ops_per_client - 1 do
        Sim.Engine.schedule engine (Sim.Time.add t0 (j * op_gap_ns)) (fun () ->
            incr issued;
            let key = Workload.Keygen.encode (Workload.Keygen.next keygen krng) in
            let started = Sim.Engine.now engine in
            let finish tag ok =
              let now = Sim.Engine.now engine in
              let at_ns = Sim.Time.sub now t0 in
              if ok then begin
                incr acked_n;
                Obs.Timeline.ok timeline ~at_ns ~latency_ns:(Sim.Time.sub now started)
              end
              else begin
                incr failed;
                Obs.Timeline.fail timeline ~at_ns
              end;
              Faults.Trace.record ftrace ~at_ns:now tag
            in
            if j mod 5 = 4 then begin
              (* Continuations fire on later engine events, never within
                 the call, so the seq cell is filled before any use. *)
              let seq = ref 0 in
              seq :=
                Service.Kv_client.get client ~key ~deadline_ns ~cont:(fun r ->
                    finish
                      (Printf.sprintf "get c%d/%d %s" client_id !seq
                         (match r with
                         | Ok (Some _) -> "hit"
                         | Ok None -> "miss"
                         | Error `Deadline -> "deadline"
                         | Error (`Failed e) -> "err:" ^ e))
                      (Result.is_ok r))
            end
            else begin
              let shard = Service.Shard_map.shard_of_key map ~key in
              let value = Printf.sprintf "c%d-%06d" client_id j in
              let seq = ref 0 in
              seq :=
                Service.Kv_client.put client ~key ~value ~deadline_ns ~cont:(fun r ->
                    (match r with
                    | Ok () -> acked := (shard, client_id, !seq) :: !acked
                    | Error _ -> ());
                    finish
                      (Printf.sprintf "put c%d/%d %s" client_id !seq
                         (match r with
                         | Ok () -> "ok"
                         | Error `Deadline -> "deadline"
                         | Error (`Failed e) -> "err:" ^ e))
                      (Result.is_ok r))
            end)
      done)
    clients;
  (* Measured window, then settle: deadlines fire, restarted replicas
     catch up, commit indexes propagate. *)
  Sim.Engine.run_until engine (Sim.Time.add t0 horizon_ns);
  Sim.Engine.run_until engine (Sim.Time.add t0 (horizon_ns + settle_ns));
  Array.iter Service.Replica.stop replicas;
  Sim.Engine.run engine;
  check_invariants ctx ~acked:!acked ~applied violations;
  if !acked_n = 0 then violate "no operation ever succeeded";
  let sum f = Array.fold_left (fun a r -> a + f r) 0 replicas in
  let lat = Stats.Hist.create () in
  Array.iter
    (fun c -> Stats.Hist.merge ~dst:lat ~src:(Service.Kv_client.latencies c))
    clients;
  let commit = Stats.Hist.create () in
  Array.iter
    (fun r -> Stats.Hist.merge ~dst:commit ~src:(Service.Replica.commit_latencies r))
    replicas;
  let pctl h p =
    if Stats.Hist.count h = 0 then 0. else float_of_int (Stats.Hist.percentile h p) /. 1e3
  in
  Faults.Trace.record ftrace
    ~at_ns:(Sim.Engine.now engine)
    (Printf.sprintf "quiesce issued=%d acked=%d failed=%d drops=%d dedup=%d restarts=%d"
       !issued !acked_n !failed
       (sum Service.Replica.raft_drops)
       (sum Service.Replica.dedup_hits)
       (sum Service.Replica.restarts));
  {
    seed;
    scenario = (match fault_scenario with Some s -> s | None -> Leader_crash);
    issued = !issued;
    acked = !acked_n;
    failed = !failed;
    retries = Array.fold_left (fun a c -> a + Service.Kv_client.retries c) 0 clients;
    redirects =
      Array.fold_left (fun a c -> a + Service.Kv_client.redirects c) 0 clients;
    raft_drops = sum Service.Replica.raft_drops;
    dedup_hits = sum Service.Replica.dedup_hits;
    restarts = sum Service.Replica.restarts;
    p50_us = pctl lat 50.;
    p99_us = pctl lat 99.;
    commit_p50_us = pctl commit 50.;
    commit_p99_us = pctl commit 99.;
    gap_windows = Obs.Timeline.gaps timeline;
    longest_gap_ms = float_of_int (Obs.Timeline.longest_gap_ns timeline) /. 1e6;
    violations = List.rev !violations;
    trace = Faults.Trace.to_string ftrace;
    timeline = Obs.Timeline.to_json timeline;
    events = Sim.Engine.events_processed engine;
  }

let run_one ?(scenario = Leader_crash) ~seed () =
  run ~seed ~fault_scenario:(Some scenario) ()

type suite_result = { runs : run_result list; deterministic : bool }

let scenarios = [| Leader_crash; Tor_partition; Rolling_restart; Hot_shard |]

(* Seeds are independent (each run builds its own cluster and engine),
   so [~jobs] fans them across domains; Par_sweep returns results in
   seed order, keeping the report identical to a sequential run. *)
let run_suite ?(seeds = 20) ?jobs () =
  let pairs =
    Par_sweep.list ?jobs seeds (fun i ->
        let seed = Int64.of_int (40_000 + (104_729 * i)) in
        let scenario = scenarios.(i mod Array.length scenarios) in
        let r1 = run_one ~scenario ~seed () in
        let r2 = run_one ~scenario ~seed () in
        (r1, r1.trace = r2.trace))
  in
  {
    runs = List.map fst pairs;
    deterministic = List.for_all snd pairs;
  }

let pp_run fmt r =
  Format.fprintf fmt
    "seed=%Ld %-15s issued=%d acked=%d failed=%d retries=%d redirects=%d drops=%d \
     dedup=%d restarts=%d p50=%.1fus p99=%.1fus gaps=%d(max %.0fms) %s"
    r.seed (scenario_name r.scenario) r.issued r.acked r.failed r.retries r.redirects
    r.raft_drops r.dedup_hits r.restarts r.p50_us r.p99_us r.gap_windows
    r.longest_gap_ms
    (if r.violations = [] then "PASS"
     else "VIOLATIONS: " ^ String.concat "; " r.violations)

let run_to_json r =
  Obs.Json.Obj
    [
      ("seed", Obs.Json.Int (Int64.to_int r.seed));
      ("scenario", Obs.Json.Str (scenario_name r.scenario));
      ("issued", Obs.Json.Int r.issued);
      ("acked", Obs.Json.Int r.acked);
      ("failed", Obs.Json.Int r.failed);
      ("retries", Obs.Json.Int r.retries);
      ("redirects", Obs.Json.Int r.redirects);
      ("raft_drops", Obs.Json.Int r.raft_drops);
      ("dedup_hits", Obs.Json.Int r.dedup_hits);
      ("restarts", Obs.Json.Int r.restarts);
      ("p50_us", Obs.Json.Float r.p50_us);
      ("p99_us", Obs.Json.Float r.p99_us);
      ("commit_p50_us", Obs.Json.Float r.commit_p50_us);
      ("commit_p99_us", Obs.Json.Float r.commit_p99_us);
      ("gap_windows", Obs.Json.Int r.gap_windows);
      ("longest_gap_ms", Obs.Json.Float r.longest_gap_ms);
      ("violations", Obs.Json.Arr (List.map (fun v -> Obs.Json.Str v) r.violations));
      ("timeline", r.timeline);
    ]

let suite_to_json s =
  Obs.Json.Obj
    [
      ("deterministic", Obs.Json.Bool s.deterministic);
      ("runs", Obs.Json.Arr (List.map run_to_json s.runs));
    ]

let baseline_json ?(seed = 42L) () =
  let r = run ~seed ~fault_scenario:None () in
  Obs.Json.Obj
    [
      ("seed", Obs.Json.Int (Int64.to_int seed));
      ("commit_p50_us", Obs.Json.Float r.commit_p50_us);
      ("commit_p99_us", Obs.Json.Float r.commit_p99_us);
      ("client_p50_us", Obs.Json.Float r.p50_us);
      ("client_p99_us", Obs.Json.Float r.p99_us);
      ("acked", Obs.Json.Int r.acked);
      ("failed", Obs.Json.Int r.failed);
      ("gap_windows", Obs.Json.Int r.gap_windows);
      ("violations", Obs.Json.Arr (List.map (fun v -> Obs.Json.Str v) r.violations));
      ("timeline", r.timeline);
    ]
