type result = {
  per_thread_mrps : float;
  total_rpcs : int;
  retransmits : int;
}

let run ?seed ?config ?cost ?trace ?(window = 60) ?(warmup_ms = 1.0) ?(measure_ms = 4.0)
    ?(per_batch_cost_ns = 0) ~(cluster : Transport.Cluster.t) ~batch () =
  let d =
    Harness.deploy ?seed ?config ?cost ?trace cluster ~threads_per_host:1
      ~register:(Harness.register_echo ~resp_size:32)
  in
  let n = cluster.num_hosts in
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  (* All-to-all sessions: thread i -> every other thread. *)
  let sessions =
    Array.init n (fun src ->
        Array.init (n - 1) (fun j ->
            let dst = if j < src then j else j + 1 in
            Erpc.Rpc.create_session d.rpcs.(src).(0) ~remote_host:dst ~remote_rpc_id:0 ()))
  in
  Harness.run_ms d 1.0 (* connect handshakes *);
  Array.iter
    (Array.iter (fun (s : Erpc.Session.session) ->
         if s.state <> Erpc.Session.Connected then failwith "session not connected"))
    sessions;
  let drivers =
    Array.init n (fun src ->
        Harness.make_driver ~batch ~per_batch_cost_ns ~rng:(Sim.Rng.split rng)
          ~rpc:d.rpcs.(src).(0) ~sessions:sessions.(src) ~window ())
  in
  Array.iter Harness.start_driver drivers;
  Harness.run_ms d warmup_ms;
  let before = Harness.total_completed d in
  Harness.run_ms d measure_ms;
  let after = Harness.total_completed d in
  let total = after - before in
  let retransmits =
    Array.fold_left
      (fun acc per_host -> acc + (Erpc.Rpc.stats per_host.(0)).Erpc.Rpc_stats.retransmits)
      0 d.rpcs
  in
  {
    per_thread_mrps = float_of_int total /. float_of_int n /. (measure_ms *. 1e6) *. 1e3;
    total_rpcs = total;
    retransmits;
  }

(* FaSST is specialized: no congestion control, no large-message or
   generality machinery. We model that as eRPC with CC off and a leaner
   datapath cost profile (measured FaSST costs are lower per packet since
   there is no header generality, no msgbuf layering, no CC hooks). *)
let fasst_cost (cluster : Transport.Cluster.t) =
  {
    (Erpc.Cost_model.for_cluster cluster) with
    rx_pkt = 24;
    tx_data_pkt = 22;
    enqueue_request = 10;
    handler_dispatch = 10;
    continuation = 8;
    memcpy_fixed = 6;
    credit_logic = 2;
  }

let run_fasst ?seed ?trace ?window ?warmup_ms ?measure_ms
    ~(cluster : Transport.Cluster.t) ~batch () =
  let config =
    let base = Erpc.Config.of_cluster cluster in
    { base with opts = { base.opts with congestion_control = false } }
  in
  (* FaSST rings one doorbell per batch of B requests; the fixed cost
     amortizes with B, which is why its rate grows with batch size. *)
  run ?seed ~config ~cost:(fasst_cost cluster) ?trace ?window ?warmup_ms ?measure_ms
    ~per_batch_cost_ns:210 ~cluster ~batch ()

(* Same all-to-all mesh as [run], but issuing typed requests (fixed-width
   24 B schema) so serialization rides the datapath under the configured
   backend / offload toggle. *)
let run_typed ?seed ?(window = 60) ?(warmup_ms = 1.0) ?(measure_ms = 4.0)
    ~(cluster : Transport.Cluster.t) ~backend ~offload ~batch () =
  let config =
    {
      (Erpc.Config.of_cluster cluster) with
      codec_backend = backend;
      codec_offload = offload;
    }
  in
  let codec = Harness.schema_fixed and value = Harness.value_fixed in
  let d =
    Harness.deploy ?seed ~config cluster ~threads_per_host:1
      ~register:(Harness.register_typed_echo codec)
  in
  let n = cluster.num_hosts in
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let sessions =
    Array.init n (fun src ->
        Array.init (n - 1) (fun j ->
            let dst = if j < src then j else j + 1 in
            Erpc.Rpc.create_session d.rpcs.(src).(0) ~remote_host:dst ~remote_rpc_id:0 ()))
  in
  Harness.run_ms d 1.0 (* connect handshakes *);
  Array.iter
    (Array.iter (fun (s : Erpc.Session.session) ->
         if s.state <> Erpc.Session.Connected then failwith "session not connected"))
    sessions;
  let drivers =
    Array.init n (fun src ->
        Harness.make_typed_driver ~batch ~codec ~value ~rng:(Sim.Rng.split rng)
          ~rpc:d.rpcs.(src).(0) ~sessions:sessions.(src) ~window ())
  in
  Array.iter Harness.start_typed_driver drivers;
  Harness.run_ms d warmup_ms;
  let before = Harness.total_completed d in
  Harness.run_ms d measure_ms;
  let after = Harness.total_completed d in
  let total = after - before in
  let retransmits =
    Array.fold_left
      (fun acc per_host -> acc + (Erpc.Rpc.stats per_host.(0)).Erpc.Rpc_stats.retransmits)
      0 d.rpcs
  in
  {
    per_thread_mrps = float_of_int total /. float_of_int n /. (measure_ms *. 1e6) *. 1e3;
    total_rpcs = total;
    retransmits;
  }

let factor_analysis ?seed ?measure_ms () =
  let cluster = Transport.Cluster.cx4 ~nodes:11 () in
  let base = Erpc.Config.of_cluster cluster in
  let open Erpc.Config in
  (* Cumulative disabling, in Table 3's order. *)
  let steps =
    [
      ("Baseline (with congestion control)", Fun.id);
      ("Disable batched RTT timestamps", fun o -> { o with batched_timestamps = false });
      ("Disable Timely bypass", fun o -> { o with timely_bypass = false });
      ("Disable rate limiter bypass", fun o -> { o with rate_limiter_bypass = false });
      ("Disable multi-packet RQ", fun o -> { o with multi_packet_rq = false });
      ("Disable preallocated responses", fun o -> { o with preallocated_responses = false });
      ("Disable 0-copy request processing", fun o -> { o with zero_copy_rx = false });
    ]
  in
  let _, rows =
    List.fold_left
      (fun (opts, acc) (label, f) ->
        let opts = f opts in
        let config = { base with opts } in
        let r = run ?seed ~config ?measure_ms ~cluster ~batch:3 () in
        (opts, (label, r) :: acc))
      (base.opts, [])
      steps
  in
  (* Typed-serialization rows: not cumulative with the steps above — each
     re-runs the full-optimization baseline with schema-driven requests
     under the named codec configuration, isolating the datapath cost of
     typed (de)serialization. *)
  let codec_rows =
    List.map
      (fun (label, backend, offload) ->
        (label, run_typed ?seed ?measure_ms ~cluster ~backend ~offload ~batch:3 ()))
      [
        ("Typed codec: compact backend", Codec.Compact, false);
        ("Typed codec: flat backend", Codec.Flat, false);
        ("Typed codec: compact + NIC offload", Codec.Compact, true);
        ("Typed codec: flat + NIC offload", Codec.Flat, true);
      ]
  in
  (* Transport rows: also non-cumulative — the full-optimization baseline
     re-run on each alternate datapath. The shm row colocates hosts in
     pairs, so the all-to-all mesh mixes intra-host (shared-memory ring)
     and cross-host (wire) sessions on every endpoint. *)
  let transport_rows =
    let rdma_config = { base with transport = Rdma_rc } in
    let shm_cluster =
      Transport.Cluster.colocate cluster [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ]; [ 8; 9 ] ]
    in
    let shm_config = { (of_cluster shm_cluster) with shm_enabled = true } in
    [
      ( "Transport: RDMA RC (lossless)",
        run ?seed ~config:rdma_config ?measure_ms ~cluster ~batch:3 () );
      ( "Transport: shm mixed local/remote",
        run ?seed ~config:shm_config ?measure_ms ~cluster:shm_cluster ~batch:3 () );
    ]
  in
  List.rev_append rows (codec_rows @ transport_rows)
