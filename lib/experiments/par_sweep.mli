(** Domain-parallel replication runner: run [n] independent seeded tasks
    on up to [jobs] OCaml domains and return results in task order, so
    output is identical to a sequential run. Tasks must be self-contained
    (own engine, cluster, trace) — true of every [run_one] in this
    library. [jobs <= 1] runs inline with no domains spawned. A task
    exception is re-raised in the caller after all workers join. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
val list : ?jobs:int -> int -> (int -> 'a) -> 'a list
