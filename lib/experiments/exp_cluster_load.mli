(** Cluster-scale multi-tenant open-loop traffic with tail-SLO reporting.

    Drives {!Workload.Traffic_spec} scenarios against a CX4 two-tier
    cluster running both the echo harness and the PR-5 sharded
    replicated-KV service: N tenant populations of open-loop sources
    (Poisson / bursty on-off / diurnal-ramp arrivals, uniform / Zipf /
    hot-key-shift key streams, mixed small-RPC + large-transfer traffic)
    issue operations on a fixed schedule regardless of completions, so
    overload surfaces as tail latency rather than reduced offered load.

    Outputs per tenant: issued/ok/failed/shed counts, P50/P99/P99.9 SLO
    latencies, and an availability {!Obs.Timeline}; per scenario: a
    {!Obs.Anatomy.attribution} naming the component that dominates P99
    vs P50 ("where does the tail come from"), computed from the run's
    event trace over client-host RPCs. Runs are deterministic: the same
    seed reproduces the identical event trace, checked via
    {!Obs.Trace.digest}. *)

type tenant_report = {
  tname : string;
  service : string;  (** "kv" or "echo" *)
  sources : int;
  offered_rps : float;  (** analytic open-loop offered load *)
  issued : int;
  ok : int;
  failed : int;  (** errors + missed deadlines *)
  shed : int;  (** arrivals dropped at the client-side concurrency cap *)
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  retries : int;  (** KV client retries (0 for echo) *)
  redirects : int;  (** KV leader redirects (0 for echo) *)
  timeline : Obs.Json.t;  (** availability windows with per-window P50/P99 *)
}

type result = {
  scenario : string;
  seed : int64;
  horizon_ns : int;
  tenants : tenant_report list;
  attribution : Obs.Anatomy.attribution option;
      (** client-host RPC tail attribution; [None] if the trace retained no
          complete single-packet RPCs *)
  analyzed_rpcs : int;  (** breakdowns behind [attribution] *)
  digest : string;  (** {!Obs.Trace.digest} of the run's event trace *)
  events : int;  (** engine events processed *)
  violations : string list;  (** empty on a clean run *)
  breakdowns : Obs.Anatomy.breakdown list;
      (** the per-RPC breakdowns behind [attribution], for invariant checks
          (each sums exactly to its end-to-end latency) *)
}

(** [run ~seed scenario] deploys the cluster (6 replica hosts, 2 echo
    servers, 4 client hosts; 4 Raft shards x 3-way replication), boots
    every shard's leader election, then drives the scenario open-loop for
    its horizon plus a settle window. [trace_capacity] bounds the event
    ring (default [2^18]; older events are evicted deterministically). *)
val run :
  ?seed:int64 -> ?trace_capacity:int -> Workload.Traffic_spec.scenario -> result

(** Run a named builtin scenario (see {!Workload.Traffic_spec.builtin}).
    Raises [Invalid_argument] on an unknown name. *)
val run_named :
  ?seed:int64 -> ?scale:float -> ?horizon_ms:float -> string -> result

(** All builtin scenarios in order. With [rerun_check] (default false),
    each scenario runs twice and a digest mismatch is recorded as a
    violation on that scenario's result. [~jobs] fans the scenarios
    across that many OCaml domains; results stay in scenario order, so
    the report is identical for any [jobs]. *)
val run_all :
  ?seed:int64 -> ?scale:float -> ?horizon_ms:float -> ?rerun_check:bool ->
  ?jobs:int -> unit -> result list

val pp_result : Format.formatter -> result -> unit

(** One row of the [BENCH_cluster_load.json] document. *)
val result_to_json : result -> Obs.Json.t

(** The full document: [{"benchmark":"cluster_load","unit":"us","rows":[...]}]. *)
val to_json : result list -> Obs.Json.t
