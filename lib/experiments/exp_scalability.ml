type row = {
  threads_per_node : int;
  per_node_mrps : float;
  lat_p50_us : float;
  lat_p99_us : float;
  lat_p999_us : float;
  lat_p9999_us : float;
  retransmits_per_node_per_sec : float;
}

let run ?seed ?(nodes = 100) ?(credits = 32) ?(warmup_us = 300.) ?(measure_us = 700.) ~threads
    () =
  let cluster = Transport.Cluster.cx4 ~nodes () in
  let config = Erpc.Config.of_cluster ~credits cluster in
  let d =
    Harness.deploy ?seed ~config cluster ~threads_per_host:threads
      ~register:(Harness.register_echo ~resp_size:32)
  in
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let total_threads = nodes * threads in
  let hist = Stats.Hist.create () in
  (* Every thread opens a client session to every other thread. *)
  let drivers = ref [] in
  for host = 0 to nodes - 1 do
    for thr = 0 to threads - 1 do
      let self = (host * threads) + thr in
      let sessions =
        Array.init (total_threads - 1) (fun j ->
            let peer = if j < self then j else j + 1 in
            Erpc.Rpc.create_session d.rpcs.(host).(thr) ~remote_host:(peer / threads)
              ~remote_rpc_id:(peer mod threads) ())
      in
      drivers :=
        Harness.make_driver ~latencies:hist ~batch:3 ~rng:(Sim.Rng.split rng)
          ~rpc:d.rpcs.(host).(thr) ~sessions ~window:60 ()
        :: !drivers
    done
  done;
  (* Let the connection storm settle. *)
  Harness.run_ms d 2.0;
  List.iter Harness.start_driver !drivers;
  Harness.run_us d warmup_us;
  Stats.Hist.clear hist;
  let completed0 = Harness.total_completed d in
  let retx0 =
    Array.fold_left
      (fun acc per_host ->
        Array.fold_left (fun acc rpc -> acc + (Erpc.Rpc.stats rpc).Erpc.Rpc_stats.retransmits) acc per_host)
      0 d.rpcs
  in
  Harness.run_us d measure_us;
  let completed1 = Harness.total_completed d in
  let retx1 =
    Array.fold_left
      (fun acc per_host ->
        Array.fold_left (fun acc rpc -> acc + (Erpc.Rpc.stats rpc).Erpc.Rpc_stats.retransmits) acc per_host)
      0 d.rpcs
  in
  let secs = measure_us /. 1e6 in
  let pct p = float_of_int (Stats.Hist.percentile hist p) /. 1e3 in
  {
    threads_per_node = threads;
    per_node_mrps = float_of_int (completed1 - completed0) /. float_of_int nodes /. secs /. 1e6;
    lat_p50_us = pct 50.;
    lat_p99_us = pct 99.;
    lat_p999_us = pct 99.9;
    lat_p9999_us = pct 99.99;
    retransmits_per_node_per_sec = float_of_int (retx1 - retx0) /. float_of_int nodes /. secs;
  }

let fig5 ?nodes ?(threads_list = [ 1; 2; 4; 6; 8; 10 ]) () =
  List.map (fun threads -> run ?nodes ~threads ()) threads_list
