(* Serialize-vs-share shared-memory benchmark ([erpc_sim shm-bench]).

   Two endpoints colocated on one machine exchange echo RPCs over the
   {!Shm} rings, sweeping payload size under each handoff discipline
   (Serialize / Share / Auto). Per cell we report the mean end-to-end
   latency and its anatomy components — NIC/wire/switch must be exactly
   zero since nothing touches the fabric — plus the endpoint's
   shared/serialized counters, so the Auto rows exhibit the crossover:
   below it every message is copied, above it handed off by pointer.

   The crossover is also derived analytically from the cost model (the
   smallest payload whose flat share cost undercuts the per-byte copy),
   and the measured Auto rows must agree with it cell by cell. The sweep
   runs on a 4096 B MTU profile so payloads straddling the ~1 KB
   crossover stay single-packet (the share decision is per packet). *)

type row = {
  payload : int;
  mode : string;
  rpcs : int;  (** breakdowns analyzed (single-packet round trips) *)
  mean_ns : float;  (** mean end-to-end latency *)
  ring_ns : float;  (** mean ring/guard component *)
  nic_ns : float;
  wire_ns : float;
  switch_ns : float;
  shared_tx : int;  (** client messages handed off by pointer *)
  serialized_tx : int;  (** client messages copied into the ring *)
  guard_faults : int;
  digest : string;  (** trace digest of this cell's run *)
}

type result = {
  rows : row list;
  crossover_payload : int;
      (** smallest payload where the cost model prefers sharing *)
  measured_crossover : int option;
      (** smallest swept payload whose Auto cell actually shared *)
  violations : string list;
}

let default_payloads = [ 64; 256; 512; 1024; 1536; 2048; 4096 ]
let modes = [ (Shm.Serialize, "serialize"); (Shm.Share, "share"); (Shm.Auto, "auto") ]

(* Mirror of the Auto decision in [Shm.shm_tx]: share iff the flat
   descriptor + guard cost does not exceed the modeled copy. *)
let model_crossover cost =
  let costs = Erpc.Cost_model.shm_costs cost in
  let share = costs.Shm.share_tx_ns + costs.Shm.share_rx_ns in
  let rec find b =
    if b > 1 lsl 20 then max_int
    else if share <= costs.Shm.serialize_ns b then b
    else find (b + 1)
  in
  find 1

let run_cell ~seed ~samples ~payload ~(mode : Shm.mode) ~mode_name () =
  let cluster =
    Transport.Cluster.colocate (Transport.Cluster.cx3 ~nodes:2 ()) [ [ 0; 1 ] ]
  in
  let config =
    { (Erpc.Config.of_cluster cluster) with shm_enabled = true; shm_mode = mode }
  in
  let trace = Obs.Trace.create ~capacity:(1 lsl 15) () in
  let d =
    Harness.deploy ~seed ~config ~trace cluster ~threads_per_host:1
      ~register:(fun nx -> Harness.register_echo nx)
  in
  let client = d.rpcs.(0).(0) in
  let sess = Harness.connect d client ~remote_host:1 ~remote_rpc_id:0 in
  let req = Erpc.Msgbuf.alloc ~max_size:payload in
  let resp = Erpc.Msgbuf.alloc ~max_size:payload in
  let remaining = ref samples in
  let rec issue () =
    if !remaining > 0 then begin
      decr remaining;
      Erpc.Msgbuf.resize req payload;
      Erpc.Rpc.enqueue_request client sess ~req_type:Harness.echo_req_type ~req ~resp
        ~cont:(fun _ -> issue ())
    end
  in
  issue ();
  Harness.run_ms d (1.0 +. (0.01 *. float_of_int samples));
  let wire_ns = Exp_anatomy.predictor cluster in
  let breakdowns = Obs.Anatomy.analyze ~wire_ns (Obs.Trace.events trace) in
  let n = List.length breakdowns in
  let mean f =
    if n = 0 then 0.
    else
      float_of_int (List.fold_left (fun acc b -> acc + f b) 0 breakdowns)
      /. float_of_int n
  in
  let s =
    match Erpc.Rpc.shm_endpoint client with
    | Some ep -> Shm.stats ep
    | None -> failwith "shm-bench: shm endpoint missing"
  in
  {
    payload;
    mode = mode_name;
    rpcs = n;
    mean_ns = mean (fun (b : Obs.Anatomy.breakdown) -> b.total_ns);
    ring_ns = mean (fun b -> b.ring_ns);
    nic_ns = mean (fun b -> b.nic_ns);
    wire_ns = mean (fun b -> b.wire_ns);
    switch_ns = mean (fun b -> b.switch_ns);
    shared_tx = s.shared_tx;
    serialized_tx = s.serialized_tx;
    guard_faults = s.guard_faults;
    digest = Obs.Trace.digest trace;
  }

let check ~crossover rows =
  List.concat_map
    (fun r ->
      let e cond msg = if cond then [] else [ Printf.sprintf "%s/%d: %s" r.mode r.payload msg ] in
      e (r.rpcs > 0) "no breakdowns analyzed"
      @ e (r.nic_ns = 0. && r.wire_ns = 0. && r.switch_ns = 0.)
          "intra-host anatomy has nonzero NIC/wire/switch"
      @ e (r.ring_ns > 0.) "intra-host anatomy has zero ring component"
      @ e (r.guard_faults = 0) "unexpected guard faults"
      @
      match r.mode with
      | "serialize" -> e (r.shared_tx = 0) "Serialize mode shared a message"
      | "share" -> e (r.shared_tx > 0) "Share mode never shared"
      | _ ->
          e
            (if r.payload >= crossover then r.shared_tx > 0 else r.shared_tx = 0)
            (Printf.sprintf "Auto disagrees with model crossover (%d B)" crossover))
    rows

let run ?(seed = 1L) ?(samples = 24) ?(payloads = default_payloads) ?(rerun_check = false)
    () =
  let cost =
    Erpc.Cost_model.for_cluster (Transport.Cluster.cx3 ~nodes:2 ())
  in
  let crossover = model_crossover cost in
  let cells =
    List.concat_map
      (fun payload ->
        List.map (fun (mode, mode_name) -> (payload, mode, mode_name)) modes)
      payloads
  in
  let rows =
    List.map
      (fun (payload, mode, mode_name) -> run_cell ~seed ~samples ~payload ~mode ~mode_name ())
      cells
  in
  let rerun_violations =
    if not rerun_check then []
    else
      List.map2
        (fun (payload, mode, mode_name) (r : row) ->
          let r2 = run_cell ~seed ~samples ~payload ~mode ~mode_name () in
          if r2.digest = r.digest then []
          else
            [
              Printf.sprintf "%s/%d: nondeterministic, rerun digest %s <> %s" mode_name
                payload r2.digest r.digest;
            ])
        cells rows
      |> List.concat
  in
  let measured_crossover =
    List.filter_map
      (fun r -> if r.mode = "auto" && r.shared_tx > 0 then Some r.payload else None)
      rows
    |> function
    | [] -> None
    | l -> Some (List.fold_left min max_int l)
  in
  { rows; crossover_payload = crossover; measured_crossover;
    violations = check ~crossover rows @ rerun_violations }

let row_json r =
  Obs.Json.Obj
    [
      ("payload", Obs.Json.Int r.payload);
      ("mode", Obs.Json.Str r.mode);
      ("rpcs", Obs.Json.Int r.rpcs);
      ("mean_ns", Obs.Json.Float r.mean_ns);
      ("ring_ns", Obs.Json.Float r.ring_ns);
      ("nic_ns", Obs.Json.Float r.nic_ns);
      ("wire_ns", Obs.Json.Float r.wire_ns);
      ("switch_ns", Obs.Json.Float r.switch_ns);
      ("shared_tx", Obs.Json.Int r.shared_tx);
      ("serialized_tx", Obs.Json.Int r.serialized_tx);
      ("guard_faults", Obs.Json.Int r.guard_faults);
      ("digest", Obs.Json.Str r.digest);
    ]

let to_json (r : result) =
  Obs.Json.Obj
    [
      ("benchmark", Obs.Json.Str "shm");
      ("unit", Obs.Json.Str "ns");
      ("crossover_payload", Obs.Json.Int r.crossover_payload);
      ( "measured_crossover",
        match r.measured_crossover with
        | Some p -> Obs.Json.Int p
        | None -> Obs.Json.Null );
      ("violations", Obs.Json.Arr (List.map (fun v -> Obs.Json.Str v) r.violations));
      ("rows", Obs.Json.Arr (List.map row_json r.rows));
    ]

let pp_result fmt (r : result) =
  Format.fprintf fmt "shm serialize-vs-share: model crossover at %d B (measured: %s)@."
    r.crossover_payload
    (match r.measured_crossover with Some p -> string_of_int p ^ " B" | None -> "none");
  Format.fprintf fmt "%8s %-10s %5s %10s %10s %7s %7s %7s@." "payload" "mode" "rpcs"
    "mean ns" "ring ns" "shared" "copied" "faults";
  List.iter
    (fun row ->
      Format.fprintf fmt "%8d %-10s %5d %10.0f %10.0f %7d %7d %7d@." row.payload row.mode
        row.rpcs row.mean_ns row.ring_ns row.shared_tx row.serialized_tx row.guard_faults)
    r.rows;
  List.iter (fun v -> Format.fprintf fmt "VIOLATION: %s@." v) r.violations
