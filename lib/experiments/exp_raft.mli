(** Table 6: latency of replicated PUTs on a 3-way Raft group over eRPC
    (paper §7.1), vs the published numbers of NetChain (P4 switches) and
    ZabFPGA (FPGA consensus), which the paper also quotes rather than
    reruns.

    Setup: CX5-like cluster; one {!Service} shard replicated on three
    hosts, one client host running the smart client; 16 B keys, 64 B
    values, keys uniform over one million; one outstanding PUT. *)

type result = {
  client_p50_us : float;  (** measured at client, like NetChain's *)
  client_p99_us : float;
  leader_p50_us : float;  (** leader commit latency, like ZabFPGA's *)
  leader_p99_us : float;
  puts : int;  (** PUTs acknowledged *)
  errors : int;  (** PUTs that failed or missed their deadline *)
}

(** Raises if no leader emerges or every PUT fails — a silent all-error
    run previously reported empty histograms as success. *)
val run : ?seed:int64 -> ?samples:int -> unit -> result
