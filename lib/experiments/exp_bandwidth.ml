type point = {
  req_size : int;
  goodput_gbps : float;
  retransmits : int;
}

let erpc_goodput ?(credits = 32) ?(requests = 8) ?(loss = 0.) ?seed ?trace ~req_size () =
  let cluster = Transport.Cluster.cx5_ib100 () in
  let config = Erpc.Config.of_cluster ~credits cluster in
  let d =
    Harness.deploy ?seed ?trace ~config cluster ~threads_per_host:1
      ~register:(Harness.register_echo ~resp_size:32)
  in
  Netsim.Network.set_loss_prob (Erpc.Fabric.net d.fabric) loss;
  let client = d.rpcs.(0).(0) in
  let sess = Harness.connect d client ~remote_host:1 ~remote_rpc_id:0 in
  let engine = Erpc.Fabric.engine d.fabric in
  let req = Erpc.Msgbuf.alloc ~max_size:req_size in
  let resp = Erpc.Msgbuf.alloc ~max_size:(max 32 req_size) in
  let remaining = ref (requests + 1) (* one warmup *) in
  let measured_from = ref Sim.Time.zero in
  let finished_at = ref Sim.Time.zero in
  let rec issue () =
    if !remaining > 0 then begin
      (* The measured window starts when the first post-warmup request is
         issued. *)
      if !remaining = requests then measured_from := Sim.Engine.now engine;
      decr remaining;
      Erpc.Rpc.enqueue_request client sess ~req_type:Harness.echo_req_type ~req ~resp
        ~cont:(fun _ ->
          finished_at := Sim.Engine.now engine;
          issue ())
    end
  in
  issue ();
  (* 8 MB at worst-case Table 4 loss rates can take seconds of simulated
     time per request. *)
  let deadline = ref 2000 in
  while !remaining > 0 && !deadline > 0 do
    Harness.run_ms d 10.0;
    decr deadline
  done;
  let elapsed = Sim.Time.sub !finished_at !measured_from in
  let bits = float_of_int (req_size * 8 * requests) in
  {
    req_size;
    goodput_gbps = (if elapsed <= 0 then 0. else bits /. float_of_int elapsed);
    retransmits = (Erpc.Rpc.stats client).Erpc.Rpc_stats.retransmits;
  }

let rdma_write_goodput ?(requests = 8) ~req_size () =
  let cluster = Transport.Cluster.cx5_ib100 () in
  let engine = Sim.Engine.create () in
  let net = Transport.Cluster.build engine cluster in
  let cfg = Rdma.Qp.default_config cluster in
  let ep0 = Rdma.Qp.create engine net ~host:0 cfg in
  let _ep1 = Rdma.Qp.create engine net ~host:1 cfg in
  let remaining = ref (requests + 1) in
  let measured_from = ref Sim.Time.zero in
  let finished_at = ref Sim.Time.zero in
  let rec issue () =
    if !remaining > 0 then begin
      if !remaining = requests then measured_from := Sim.Engine.now engine;
      decr remaining;
      Rdma.Qp.post_write ep0 ~dst:1 ~len:req_size ~completion:(fun () ->
          finished_at := Sim.Engine.now engine;
          issue ())
    end
  in
  issue ();
  Sim.Engine.run engine;
  let elapsed = Sim.Time.sub !finished_at !measured_from in
  let bits = float_of_int (req_size * 8 * requests) in
  {
    req_size;
    goodput_gbps = (if elapsed <= 0 then 0. else bits /. float_of_int elapsed);
    retransmits = 0;
  }

let fig6 ?requests () =
  let sizes =
    [ 512; 2048; 8192; 32768; 131072; 524288; 2097152; 8388608 ]
  in
  List.map
    (fun req_size ->
      ( req_size,
        erpc_goodput ?requests ~req_size (),
        rdma_write_goodput ?requests ~req_size () ))
    sizes

let table4 ?(requests = 40) () =
  List.map
    (fun loss -> (loss, erpc_goodput ~requests ~loss ~req_size:(8 * 1024 * 1024) ()))
    [ 1e-7; 1e-6; 1e-5; 1e-4; 1e-3 ]
