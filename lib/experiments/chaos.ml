type run_result = {
  seed : int64;
  issued : int;
  ok : int;
  failed : int;
  injected : int;
  fault_kinds : int;
  retransmits : int;
  session_resets : int;
  rx_corrupt : int;
  violations : string list;
  trace : string;
  events : int;
}

let topology_tors (cluster : Transport.Cluster.t) =
  match cluster.net_config.topology with
  | Netsim.Network.Two_tier { tors; _ } -> tors
  | Netsim.Network.Single_switch _ -> 1

(* Draw a schedule that actually mixes fault kinds: a handful of events
   over nine kinds occasionally collapses onto two or three, which would
   leave recovery paths untested. The retry is a deterministic function of
   the seed, so reruns stay reproducible. *)
let pick_schedule ~seed ~horizon_ns ~events ~hosts ~tors =
  let rec go s tries =
    let sched = Faults.Schedule.random ~seed:s ~horizon_ns ~events ~hosts ~tors in
    if Faults.Schedule.num_kinds sched >= 4 || tries = 0 then sched
    else go (Int64.add s 1_000_003L) (tries - 1)
  in
  go seed 100

let run_one ?(hosts = 10) ?(events = 12) ?(requests = 120) ?(horizon_ns = 60_000_000) ~seed
    () =
  let cluster = Transport.Cluster.cx4 ~nodes:hosts () in
  let d =
    Harness.deploy ~seed cluster ~threads_per_host:1 ~register:(fun nx ->
        Harness.register_echo nx)
  in
  let engine = Erpc.Fabric.engine d.fabric in
  let trace = Faults.Trace.create () in
  let injector = Faults.Injector.create ~trace d.fabric in
  (* Two client sessions per host — a rack neighbour and a cross-rack peer,
     so partitions and crashes both land on live traffic. Connect before
     any fault fires: handshake loss is Test_erpc_failure territory; here
     we chaos-test the data plane. *)
  let sessions =
    Array.init hosts (fun h ->
        let rpc = d.rpcs.(h).(0) in
        [|
          Harness.connect d rpc ~remote_host:((h + 1) mod hosts) ~remote_rpc_id:0;
          Harness.connect d rpc ~remote_host:((h + (hosts / 2)) mod hosts) ~remote_rpc_id:0;
        |])
  in
  let schedule =
    pick_schedule ~seed ~horizon_ns ~events ~hosts ~tors:(topology_tors cluster)
  in
  Faults.Injector.install injector schedule;
  (* Stagger issuance across the fault window so requests meet every phase
     of the schedule. *)
  let completions = Array.make requests 0 in
  let ok = ref 0 and failed = ref 0 in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let gap_ns = Stdlib.max 1 (horizon_ns * 3 / 4 / Stdlib.max 1 requests) in
  for j = 0 to requests - 1 do
    Sim.Engine.schedule_after engine (j * gap_ns) (fun () ->
        let h = j mod hosts in
        let rpc = d.rpcs.(h).(0) in
        let sess = sessions.(h).(j / hosts mod 2) in
        let req = Erpc.Msgbuf.alloc ~max_size:32 in
        let resp = Erpc.Msgbuf.alloc ~max_size:32 in
        Erpc.Msgbuf.set_u32 req ~off:0 j;
        Erpc.Rpc.enqueue_request rpc sess ~req_type:Harness.echo_req_type ~req ~resp
          ~cont:(fun r ->
            completions.(j) <- completions.(j) + 1;
            (match r with
            | Ok () ->
                incr ok;
                if Erpc.Msgbuf.get_u32 resp ~off:0 <> j then
                  violate "req %d: response payload mismatch" j
            | Error _ -> incr failed);
            Faults.Trace.record trace
              ~at_ns:(Sim.Engine.now engine)
              (Printf.sprintf "done req=%d %s" j
                 (match r with
                 | Ok () -> "ok"
                 | Error e -> "err:" ^ Erpc.Err.to_string e))))
  done;
  (* Quiesce: drain the event queue completely. Terminates because
     retransmission is bounded — before bounded retx, a crashed peer meant
     retransmitting forever. *)
  Sim.Engine.run engine;
  (* {2 Invariants} *)
  Array.iteri
    (fun j n -> if n <> 1 then violate "req %d completed %d times (want exactly 1)" j n)
    completions;
  let all_rpcs = Array.to_list d.rpcs |> List.concat_map Array.to_list in
  let armed = List.fold_left (fun acc r -> acc + Erpc.Rpc.armed_rto_count r) 0 all_rpcs in
  if armed <> 0 then violate "%d armed RTO timers leaked after quiesce" armed;
  Array.iter
    (Array.iter (fun (sess : Erpc.Session.session) ->
         if sess.credits <> sess.credit_limit then
           violate "session sn=%d: credits %d <> limit %d (leak)" sess.sn sess.credits
             sess.credit_limit))
    sessions;
  let stat f = List.fold_left (fun acc r -> acc + f (Erpc.Rpc.stats r)) 0 all_rpcs in
  let handled = stat (fun s -> s.Erpc.Rpc_stats.handled) in
  if handled > requests then
    violate "handlers ran %d times for %d requests (at-most-once broken)" handled requests;
  let retransmits = stat (fun s -> s.Erpc.Rpc_stats.retransmits) in
  let session_resets = stat (fun s -> s.Erpc.Rpc_stats.session_resets) in
  let rx_corrupt = stat (fun s -> s.Erpc.Rpc_stats.rx_corrupt) in
  Faults.Trace.record trace
    ~at_ns:(Sim.Engine.now engine)
    (Printf.sprintf "quiesce ok=%d failed=%d retx=%d resets=%d corrupt=%d" !ok !failed
       retransmits session_resets rx_corrupt);
  {
    seed;
    issued = requests;
    ok = !ok;
    failed = !failed;
    injected = Faults.Injector.injected injector;
    fault_kinds = Faults.Schedule.num_kinds schedule;
    retransmits;
    session_resets;
    rx_corrupt;
    violations = List.rev !violations;
    trace = Faults.Trace.to_string trace;
    events = Sim.Engine.events_processed engine;
  }

type suite_result = {
  runs : run_result list;
  deterministic : bool;  (** every seed's rerun produced a byte-identical trace *)
}

(* Each seed is a self-contained pair of runs (own cluster, engine and
   trace), so the suite fans out across domains under [~jobs]; results
   come back in seed order, making the report independent of [jobs]. *)
let run_suite ?(seeds = 20) ?hosts ?events ?requests ?horizon_ns ?jobs () =
  let pairs =
    Par_sweep.list ?jobs seeds (fun i ->
        let seed = Int64.of_int (1_000 + (7_919 * i)) in
        let r1 = run_one ?hosts ?events ?requests ?horizon_ns ~seed () in
        let r2 = run_one ?hosts ?events ?requests ?horizon_ns ~seed () in
        (r1, r1.trace = r2.trace))
  in
  {
    runs = List.map fst pairs;
    deterministic = List.for_all snd pairs;
  }

let pp_run fmt r =
  Format.fprintf fmt
    "seed=%Ld issued=%d ok=%d failed=%d faults=%d kinds=%d retx=%d resets=%d corrupt=%d %s"
    r.seed r.issued r.ok r.failed r.injected r.fault_kinds r.retransmits r.session_resets
    r.rx_corrupt
    (if r.violations = [] then "PASS"
     else "VIOLATIONS: " ^ String.concat "; " r.violations)
