type result = {
  breakdowns : Obs.Anatomy.breakdown list;
  trace : Obs.Trace.t;
  predicted_wire_ns : int -> int;
}

let predictor (cluster : Transport.Cluster.t) =
  let cfg = cluster.net_config in
  fun size ->
    let ser = Sim.Time.of_bytes_at_gbps size cfg.link_gbps in
    (2 * (ser + cfg.cable_ns)) + cfg.switch_latency_ns

let run ?seed ?trace ?(samples = 32) ?(req_size = 32) ?(typed = false)
    ?(backend = Codec.Compact) ?(offload = false) ?(transport = `Raw_eth) () =
  let cluster = Transport.Cluster.cx5 ~nodes:2 () in
  let cluster =
    match transport with
    | `Shm -> Transport.Cluster.colocate cluster [ [ 0; 1 ] ]
    | `Raw_eth | `Rdma_rc -> cluster
  in
  let trace =
    match trace with Some tr -> tr | None -> Obs.Trace.create ~capacity:(1 lsl 16) ()
  in
  let config =
    { (Erpc.Config.of_cluster cluster) with codec_backend = backend; codec_offload = offload }
  in
  let config =
    match transport with
    | `Raw_eth -> config
    | `Rdma_rc -> { config with Erpc.Config.transport = Erpc.Config.Rdma_rc }
    | `Shm -> { config with Erpc.Config.shm_enabled = true }
  in
  let register nx =
    if typed then Harness.register_typed_echo Harness.schema_fixed nx
    else Harness.register_echo ~resp_size:32 nx
  in
  let d = Harness.deploy ?seed ~config ~trace cluster ~threads_per_host:1 ~register in
  let client = d.rpcs.(0).(0) in
  let sess = Harness.connect d client ~remote_host:1 ~remote_rpc_id:0 in
  let req = Erpc.Msgbuf.alloc ~max_size:req_size in
  let resp = Erpc.Msgbuf.alloc ~max_size:(max 32 req_size) in
  (* Strictly sequential: one request outstanding, the next issued only
     after the previous completes, so the network is quiet and every
     sampled latency decomposes against an idle fabric. *)
  let remaining = ref samples in
  let rec issue () =
    if !remaining > 0 then begin
      decr remaining;
      if typed then
        let codec = Harness.schema_fixed in
        Erpc.Typed.enqueue_request client sess ~req_type:Harness.typed_echo_req_type
          ~req_codec:codec ~resp_codec:codec Harness.value_fixed ~cont:(fun _ -> issue ())
      else
        Erpc.Rpc.enqueue_request client sess ~req_type:Harness.echo_req_type ~req ~resp
          ~cont:(fun _ -> issue ())
    end
  in
  issue ();
  Harness.run_ms d (1.0 +. (0.05 *. float_of_int samples));
  let predicted_wire_ns = predictor cluster in
  let breakdowns = Obs.Anatomy.analyze ~wire_ns:predicted_wire_ns (Obs.Trace.events trace) in
  { breakdowns; trace; predicted_wire_ns }
