(* par-bench: throughput of the partitioned simulator itself.

   A cluster-load-style multi-host workload runs on the rack-partitioned
   fabric ({!Transport.Partitioned}): every host drives open-loop Poisson
   request sources at peers (a configurable fraction stays intra-rack,
   the rest crosses the partition seam), servers answer after a
   size-dependent service time, and clients record end-to-end latency.
   The same seeded run executes under different [--domains] counts; rows
   report aggregate events/s, wall-clock speedup versus one domain, and
   the merged trace digest, which must be byte-identical at every domain
   count — partitions are logical, domains only execute them.

   Like bench-sim, this measures the *simulator* (events per wall second),
   not the modeled system; unlike bench-sim it must use wall-clock time,
   because CPU seconds sum over domains and would hide any speedup. *)

type Netsim.Packet.body +=
  | Par_req of { req_id : int; client : int; issued_ns : int; size : int }
  | Par_resp of { req_id : int; issued_ns : int }

type result = {
  domains : int;
  racks : int;
  hosts : int;
  horizon_ms : float;
  events : int;
  msgs_crossed : int;
  wall_s : float;
  events_per_sec : float;
  digest : string;
  part_events : int list;
  requests : int;
  responses : int;
  p50_us : float;
  p99_us : float;
}

type host_state = {
  hist : Stats.Hist.t;
  mutable issued : int;
  mutable completed : int;
}

let resp_bytes = 64
let service_ns size = 2_000 + (size / 4)

let run_one ?(seed = 42L) ?(racks = 4) ?(hosts_per_rack = 4) ?(sources = 2)
    ?(rate_rps = 80_000.0) ?(local_frac = 0.5) ?(req_bytes = 512)
    ?(horizon_ms = 5.0) ~domains () =
  let fab =
    Transport.Partitioned.create ~seed ~inter_rack_ns:500
      ~trace_capacity:(1 lsl 16) ~racks ~hosts_per_rack ()
  in
  let n = Transport.Partitioned.num_hosts fab in
  let states = Array.init n (fun _ -> { hist = Stats.Hist.create (); issued = 0; completed = 0 }) in
  let horizon = int_of_float (horizon_ms *. 1e6) in
  (* Build rack by rack, host by host: RNG stream derivation order is part
     of the seed contract. *)
  for p = 0 to racks - 1 do
    let engine = Transport.Partitioned.engine fab p in
    let tr = Sim.Engine.trace engine in
    for j = 0 to hosts_per_rack - 1 do
      let host = (p * hosts_per_rack) + j in
      let st = states.(host) in
      let pick_rng = Sim.Rng.split (Sim.Engine.rng engine) in
      Obs.Trace.register_process tr ~pid:(Obs.Trace.host_pid host)
        (Printf.sprintf "host%d" host);
      (* Server + client RX. *)
      Transport.Partitioned.attach fab ~host
        ~rx:(fun pkt ->
          (match pkt.Netsim.Packet.body with
          | Par_req { req_id; client; issued_ns; size } ->
              let respond () =
                let resp =
                  Netsim.Packet.make ~src:host ~dst:client ~size_bytes:resp_bytes
                    ~flow_hash:(req_id lxor 0x5bd1e995)
                    (Par_resp { req_id; issued_ns })
                in
                Transport.Partitioned.send fab resp
              in
              Sim.Engine.schedule_after engine (service_ns size) respond
          | Par_resp { req_id; issued_ns } ->
              let lat = Sim.Engine.now engine - issued_ns in
              Stats.Hist.record st.hist lat;
              st.completed <- st.completed + 1;
              if Obs.Trace.enabled tr then
                Obs.Trace.instant tr ~ts:(Sim.Engine.now engine) ~cat:"par"
                  ~name:"done" ~pid:(Obs.Trace.host_pid host) ~tid:0
                  [ ("id", Obs.Trace.I req_id); ("lat", Obs.Trace.I lat) ]
          | _ -> ());
          Netsim.Packet.free pkt);
      (* Open-loop sources. *)
      for s = 0 to sources - 1 do
        let arr =
          Workload.Arrival.make
            (Workload.Arrival.Poisson { rate_rps })
            ~rng:(Sim.Rng.split (Sim.Engine.rng engine))
        in
        let rec fire at =
          if at <= horizon then
            Sim.Engine.schedule engine at (fun () ->
                let local = Sim.Rng.float pick_rng < local_frac in
                let dst =
                  if local && hosts_per_rack > 1 then begin
                    (* A random rack-mate other than ourselves. *)
                    let k = Sim.Rng.int pick_rng (hosts_per_rack - 1) in
                    let cand = (p * hosts_per_rack) + k in
                    if cand >= host then cand + 1 else cand
                  end
                  else if racks > 1 then begin
                    (* A random host in a random other rack. *)
                    let r = Sim.Rng.int pick_rng (racks - 1) in
                    let r = if r >= p then r + 1 else r in
                    (r * hosts_per_rack) + Sim.Rng.int pick_rng hosts_per_rack
                  end
                  else (host + 1) mod n
                in
                let size = 64 + Sim.Rng.int pick_rng (max 1 (req_bytes - 64)) in
                let req_id = (host * 1_000_000) + (s * 200_000) + st.issued in
                st.issued <- st.issued + 1;
                if Obs.Trace.enabled tr then
                  Obs.Trace.instant tr ~ts:at ~cat:"par" ~name:"req"
                    ~pid:(Obs.Trace.host_pid host) ~tid:0
                    [ ("id", Obs.Trace.I req_id); ("dst", Obs.Trace.I dst) ];
                let pkt =
                  Netsim.Packet.make ~src:host ~dst ~size_bytes:size
                    ~flow_hash:(req_id * 2_654_435_761)
                    (Par_req { req_id; client = host; issued_ns = at; size })
                in
                Transport.Partitioned.send fab pkt;
                fire (Workload.Arrival.next_after arr ~now_ns:at))
        in
        fire (Workload.Arrival.next_after arr ~now_ns:0)
      done
    done
  done;
  let t0 = Unix.gettimeofday () in
  Transport.Partitioned.run ~domains ~horizon fab;
  let wall_s = Unix.gettimeofday () -. t0 in
  let events = Transport.Partitioned.events_processed fab in
  let all = Stats.Hist.create () in
  Array.iter (fun st -> Stats.Hist.merge ~dst:all ~src:st.hist) states;
  {
    domains;
    racks;
    hosts = n;
    horizon_ms;
    events;
    msgs_crossed = Transport.Partitioned.messages_delivered fab;
    wall_s;
    events_per_sec = (if wall_s > 0. then float_of_int events /. wall_s else 0.);
    digest = Transport.Partitioned.merged_digest fab;
    part_events = List.init racks (fun p -> Transport.Partitioned.part_events fab p);
    requests = Array.fold_left (fun acc st -> acc + st.issued) 0 states;
    responses = Array.fold_left (fun acc st -> acc + st.completed) 0 states;
    p50_us = float_of_int (Stats.Hist.percentile all 50.0) /. 1e3;
    p99_us = float_of_int (Stats.Hist.percentile all 99.0) /. 1e3;
  }

(* {2 The domain sweep} *)

type bench = {
  rows : result list;
  violations : string list;  (** digest mismatches across domain counts *)
  host_cores : int;
}

let run_bench ?seed ?racks ?hosts_per_rack ?sources ?rate_rps ?local_frac
    ?req_bytes ?horizon_ms ?(domains_list = [ 1; 2; 4 ]) () =
  let rows =
    List.map
      (fun domains ->
        run_one ?seed ?racks ?hosts_per_rack ?sources ?rate_rps ?local_frac
          ?req_bytes ?horizon_ms ~domains ())
      domains_list
  in
  let violations =
    match rows with
    | [] -> []
    | base :: rest ->
        List.filter_map
          (fun r ->
            if String.equal r.digest base.digest then None
            else
              Some
                (Printf.sprintf
                   "digest mismatch: domains %d -> %s, domains %d -> %s"
                   base.domains base.digest r.domains r.digest))
          rest
  in
  { rows; violations; host_cores = Domain.recommended_domain_count () }

let speedup_vs_1dom bench r =
  match List.find_opt (fun b -> b.domains = 1) bench.rows with
  | Some base when r.wall_s > 0. -> base.wall_s /. r.wall_s
  | _ -> 1.0

let row_json bench r =
  Obs.Json.Obj
    [
      ("domains", Obs.Json.Int r.domains);
      ("racks", Obs.Json.Int r.racks);
      ("hosts", Obs.Json.Int r.hosts);
      ("horizon_ms", Obs.Json.Float r.horizon_ms);
      ("events", Obs.Json.Int r.events);
      ("msgs_crossed", Obs.Json.Int r.msgs_crossed);
      ("wall_s", Obs.Json.Float r.wall_s);
      ("events_per_sec", Obs.Json.Float r.events_per_sec);
      ("speedup_vs_1dom", Obs.Json.Float (speedup_vs_1dom bench r));
      ("digest", Obs.Json.Str r.digest);
      ( "digest_equal",
        Obs.Json.Bool
          (match bench.rows with
          | base :: _ -> String.equal r.digest base.digest
          | [] -> true) );
      ("part_events", Obs.Json.Arr (List.map (fun e -> Obs.Json.Int e) r.part_events));
      ("requests", Obs.Json.Int r.requests);
      ("responses", Obs.Json.Int r.responses);
      ("p50_us", Obs.Json.Float r.p50_us);
      ("p99_us", Obs.Json.Float r.p99_us);
    ]

let to_json bench =
  Obs.Json.Obj
    [
      ("benchmark", Obs.Json.Str "par_sim");
      ("unit", Obs.Json.Str "events/s");
      ("host_cores", Obs.Json.Int bench.host_cores);
      ("domains", Obs.Json.Arr (List.map (fun r -> Obs.Json.Int r.domains) bench.rows));
      ( "violations",
        Obs.Json.Arr (List.map (fun v -> Obs.Json.Str v) bench.violations) );
      ("rows", Obs.Json.Arr (List.map (row_json bench) bench.rows));
    ]
