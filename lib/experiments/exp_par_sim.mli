(** par-bench ([erpc_sim par-bench]): throughput of the domain-partitioned
    simulator on a cluster-load-style multi-host workload.

    The same seeded run executes under each requested domain count; rows
    report aggregate events per wall-clock second, speedup versus one
    domain, per-partition event counts (load balance), and the merged
    trace digest — asserted byte-identical across domain counts, since
    partitions are logical and domains only execute them. *)

type Netsim.Packet.body +=
  | Par_req of { req_id : int; client : int; issued_ns : int; size : int }
  | Par_resp of { req_id : int; issued_ns : int }

type result = {
  domains : int;
  racks : int;
  hosts : int;
  horizon_ms : float;
  events : int;  (** local events + cross-partition deliveries *)
  msgs_crossed : int;
  wall_s : float;  (** wall clock, not CPU seconds: domains overlap *)
  events_per_sec : float;
  digest : string;  (** merged {!Obs.Trace} digest over all rack shards *)
  part_events : int list;
  requests : int;
  responses : int;
  p50_us : float;
  p99_us : float;
}

val run_one :
  ?seed:int64 ->
  ?racks:int ->
  ?hosts_per_rack:int ->
  ?sources:int ->
  ?rate_rps:float ->
  ?local_frac:float ->
  ?req_bytes:int ->
  ?horizon_ms:float ->
  domains:int ->
  unit ->
  result

type bench = {
  rows : result list;
  violations : string list;  (** digest mismatches across domain counts *)
  host_cores : int;  (** [Domain.recommended_domain_count] on this machine *)
}

val run_bench :
  ?seed:int64 ->
  ?racks:int ->
  ?hosts_per_rack:int ->
  ?sources:int ->
  ?rate_rps:float ->
  ?local_frac:float ->
  ?req_bytes:int ->
  ?horizon_ms:float ->
  ?domains_list:int list ->
  unit ->
  bench
(** One seeded run per entry of [domains_list] (default [[1; 2; 4]]);
    digests are checked against the first entry. *)

val speedup_vs_1dom : bench -> result -> float

val to_json : bench -> Obs.Json.t
(** The BENCH_par_sim.json document (benchmark ["par_sim"]), with
    [host_cores], [domains] and per-row [speedup_vs_1dom] metadata. *)
