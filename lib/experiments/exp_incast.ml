type row = {
  degree : int;
  cc : bool;
  total_gbps : float;
  rtt_p50_us : float;
  rtt_p99_us : float;
  switch_buffer_peak_bytes : int;
  retransmits : int;
}

let victim = 0

let setup ?seed ?trace ?(credits = 32) ?(algo = Erpc.Config.Timely) ~degree ~cc () =
  (* Enough hosts for the victim plus [degree] clients; the CX4 profile
     spreads them over 5 ToRs, so most flows cross the spine and converge
     on the victim's ToR downlink. *)
  let nodes = max 16 (degree + 1) in
  let cluster = Transport.Cluster.cx4 ~nodes () in
  (* DCQCN needs ECN-marking switches (the extension the paper could not
     run, §5.2.1). *)
  let cluster =
    if algo = Erpc.Config.Dcqcn then
      {
        cluster with
        net_config =
          {
            cluster.net_config with
            ecn =
              Some
                { Netsim.Port.kmin_bytes = 50_000; kmax_bytes = 300_000; pmax = 0.01 };
          };
      }
    else cluster
  in
  let config =
    let base = Erpc.Config.of_cluster ~credits cluster in
    {
      base with
      cc = { base.cc with algo };
      opts = { base.opts with congestion_control = cc };
    }
  in
  let d =
    Harness.deploy ?seed ?trace ~config cluster ~threads_per_host:1
      ~register:(fun nx ->
        Harness.register_echo ~resp_size:32 nx;
        (* Full-size echo used by the background latency-sensitive RPCs. *)
        Harness.register_echo ~req_type:2 nx)
  in
  d

let run ?seed ?trace ?credits ?algo ?(warmup_ms = 20.0) ?(measure_ms = 40.0) ~degree ~cc
    () =
  let d = setup ?seed ?trace ?credits ?algo ~degree ~cc () in
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let rtt_hist = Stats.Hist.create () in
  let drivers =
    List.init degree (fun i ->
        let client = d.rpcs.(i + 1).(0) in
        let sess = Harness.connect d client ~remote_host:victim ~remote_rpc_id:0 in
        Harness.make_driver ~req_size:(8 * 1024 * 1024) ~resp_size:32 ~rng:(Sim.Rng.split rng)
          ~rpc:client ~sessions:[| sess |] ~window:1 ())
  in
  List.iter Harness.start_driver drivers;
  Harness.run_ms d warmup_ms;
  (* Collect client-side per-packet RTTs only during the measured window. *)
  List.iteri
    (fun i _ -> Erpc.Rpc.set_rtt_probe d.rpcs.(i + 1).(0) (Stats.Hist.record rtt_hist))
    drivers;
  let port = Netsim.Network.tor_downlink_port (Erpc.Fabric.net d.fabric) ~host:victim in
  let bytes0 = Netsim.Port.tx_bytes port in
  Harness.run_ms d measure_ms;
  let bytes1 = Netsim.Port.tx_bytes port in
  (* Pull congestion evidence from the metrics registry: the deepest any
     switch buffer pool got, and total client retransmissions. *)
  let metrics = Sim.Engine.metrics engine in
  let switch_buffer_peak_bytes =
    int_of_float (Obs.Metrics.max_gauge metrics ~name:"switch.buffer_max")
  in
  let retransmits =
    Obs.Metrics.fold_counters metrics ~name:"rpc.retransmits"
      (fun acc _labels v -> acc + v)
      0
  in
  {
    degree;
    cc;
    total_gbps = float_of_int ((bytes1 - bytes0) * 8) /. (measure_ms *. 1e6);
    rtt_p50_us = float_of_int (Stats.Hist.median rtt_hist) /. 1e3;
    rtt_p99_us = float_of_int (Stats.Hist.percentile rtt_hist 99.) /. 1e3;
    switch_buffer_peak_bytes;
    retransmits;
  }

let table5 ?measure_ms () =
  List.concat_map
    (fun degree ->
      [ run ?measure_ms ~degree ~cc:true (); run ?measure_ms ~degree ~cc:false () ])
    [ 20; 50; 100 ]

type bg_result = {
  bg_degree : int;
  bg_p50_us : float;
  bg_p99_us : float;
}

let with_background ?seed ?(measure_ms = 40.0) ~degree () =
  let d = setup ?seed ~degree ~cc:true () in
  let engine = Erpc.Fabric.engine d.fabric in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let incast_drivers =
    List.init degree (fun i ->
        let client = d.rpcs.(i + 1).(0) in
        let sess = Harness.connect d client ~remote_host:victim ~remote_rpc_id:0 in
        Harness.make_driver ~req_size:(8 * 1024 * 1024) ~resp_size:32 ~rng:(Sim.Rng.split rng)
          ~rpc:client ~sessions:[| sess |] ~window:1 ())
  in
  (* Latency-sensitive pairs: non-victim nodes (1,2), (3,4), ... exchange
     64 kB request/response RPCs, one outstanding. *)
  let lat_hist = Stats.Hist.create () in
  let n = Array.length d.rpcs in
  let bg_drivers =
    let rec pairs i acc =
      if i + 1 >= n then acc
      else
        let client = d.rpcs.(i).(0) in
        let sess = Harness.connect d client ~remote_host:(i + 1) ~remote_rpc_id:0 in
        let drv =
          Harness.make_driver ~latencies:lat_hist ~req_size:(64 * 1024)
            ~resp_size:(64 * 1024) ~req_type:2 ~rng:(Sim.Rng.split rng) ~rpc:client
            ~sessions:[| sess |] ~window:1 ()
        in
        pairs (i + 2) (drv :: acc)
    in
    pairs 1 []
  in
  List.iter Harness.start_driver incast_drivers;
  List.iter Harness.start_driver bg_drivers;
  Harness.run_ms d 20.0;
  Stats.Hist.clear lat_hist;
  Harness.run_ms d measure_ms;
  {
    bg_degree = degree;
    bg_p50_us = float_of_int (Stats.Hist.median lat_hist) /. 1e3;
    bg_p99_us = float_of_int (Stats.Hist.percentile lat_hist 99.) /. 1e3;
  }
