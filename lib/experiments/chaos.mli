(** Chaos harness: seeded fault schedules against a live RPC workload.

    Each run deploys a two-tier CX4-style cluster, connects client sessions
    on every host, issues a staggered echo workload, compiles a random
    fault schedule (mixing at least four fault kinds) through
    {!Faults.Injector}, drains the simulation to quiescence and then checks
    the recovery invariants:

    - every issued request completes {e exactly} once ([Ok] or [Error]);
    - completed responses carry intact payloads (corruption was detected,
      never silently accepted);
    - no armed RTO timer survives quiescence;
    - every session's credits return to its credit limit;
    - request handlers ran at most once per issued request.

    Because retransmission is bounded, quiescence is guaranteed even when a
    peer crashes and never answers. Running the same seed twice must yield
    a byte-identical trace. *)

type run_result = {
  seed : int64;
  issued : int;
  ok : int;
  failed : int;
  injected : int;  (** schedule events applied *)
  fault_kinds : int;  (** distinct fault kinds in the schedule *)
  retransmits : int;
  session_resets : int;
  rx_corrupt : int;  (** packets dropped by wire-checksum verification *)
  violations : string list;  (** empty iff all invariants held *)
  trace : string;
  events : int;  (** simulator events executed by the run (for [bench-sim]) *)
}

val run_one :
  ?hosts:int ->
  ?events:int ->
  ?requests:int ->
  ?horizon_ns:int ->
  seed:int64 ->
  unit ->
  run_result

type suite_result = {
  runs : run_result list;
  deterministic : bool;  (** every seed's rerun produced a byte-identical trace *)
}

(** [run_suite ~seeds ()] runs [seeds] schedules, each twice (for the
    determinism check). [~jobs] fans the seeds across that many OCaml
    domains via {!Par_sweep}; each seed is self-contained, and results
    are returned in seed order, so the report is identical for any
    [jobs]. *)
val run_suite :
  ?seeds:int ->
  ?hosts:int ->
  ?events:int ->
  ?requests:int ->
  ?horizon_ns:int ->
  ?jobs:int ->
  unit ->
  suite_result

val pp_run : Format.formatter -> run_result -> unit
