(* Domain-parallel replication: fan independent seeded replications of
   existing experiments across OCaml domains ([erpc_sim sweep], and the
   [--domains] flag on chaos/kv-chaos/cluster-load).

   This is the embarrassingly-parallel tier of the PDES work: each task
   builds its own engine, cluster and trace, so tasks share no mutable
   state (the one cross-run global, [Sim.Event_queue.default_impl], is
   only read; [Obs.Trace.disabled] is never written). A shared atomic
   cursor deals tasks to workers, results land at their own index, and
   the caller receives them in task order — so reports and digests are
   identical to a sequential run, just computed on more cores. *)

let map ?(jobs = 1) n f =
  if n < 0 then invalid_arg "Par_sweep.map: negative task count";
  if jobs <= 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some (match f i with v -> Ok v | exception e -> Error e)
      done
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let list ?jobs n f = Array.to_list (map ?jobs n f)
