(** Figure 6 (large-RPC goodput vs request size, eRPC vs RDMA write over
    100 Gbps) and Table 4 (8 MB request throughput under injected packet
    loss).

    Setup mirrors §6.4: one client thread sends R-byte requests to one
    server thread and keeps a single request outstanding; the server
    replies with 32 B; 32 credits per session. *)

type point = {
  req_size : int;
  goodput_gbps : float;
  retransmits : int;
}

(** eRPC goodput for one request size. [requests] round trips are timed
    after one warmup request. *)
val erpc_goodput :
  ?credits:int ->
  ?requests:int ->
  ?loss:float ->
  ?seed:int64 ->
  ?trace:Obs.Trace.t ->
  req_size:int ->
  unit ->
  point

(** RDMA-write goodput for one request size (one outstanding write). *)
val rdma_write_goodput : ?requests:int -> req_size:int -> unit -> point

(** The Fig 6 sweep: powers of two from 0.5 kB to 8 MB. Returns
    (size, eRPC, RDMA) triples. *)
val fig6 : ?requests:int -> unit -> (int * point * point) list

(** The Table 4 sweep: 8 MB requests at loss rates 1e-7 .. 1e-3. *)
val table4 : ?requests:int -> unit -> (float * point) list
