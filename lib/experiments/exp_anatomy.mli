(** RPC latency anatomy on a quiet network (Table 3's latency breakdown).

    Two CX5 hosts, one 32 B echo RPC outstanding at a time: every sampled
    latency decomposes into client/NIC/wire/switch/server components
    against an idle fabric, so the wire component matches the cost-model
    prediction exactly and the switch-queue residual is zero. *)

type result = {
  breakdowns : Obs.Anatomy.breakdown list;
  trace : Obs.Trace.t;  (** the full event trace, exportable to Chrome JSON *)
  predicted_wire_ns : int -> int;
      (** one-direction fabric time for a packet of the given wire size *)
}

(** [predictor cluster] is the pure one-direction fabric-time model for a
    single-switch cluster: serialization at the link rate on both the host
    uplink and the switch downlink, two cable hops, and the switch's
    cut-through forwarding latency. *)
val predictor : Transport.Cluster.t -> int -> int

(** When [typed] (default false), the echo carries a fixed-width typed
    schema through {!Erpc.Typed} under [backend] / [offload], so the
    breakdowns gain nonzero serialize/deserialize components.

    [transport] selects the datapath under the same workload (the
    three-transport anatomy): [`Raw_eth] (default) is the lossy UDP NIC,
    [`Rdma_rc] the lossless RDMA RC queue pair, and [`Shm] colocates the
    two endpoints on one machine so every RPC crosses the shared-memory
    rings — the breakdowns then show NIC/wire/switch exactly zero with
    the transit in [ring_ns]. *)
val run :
  ?seed:int64 ->
  ?trace:Obs.Trace.t ->
  ?samples:int ->
  ?req_size:int ->
  ?typed:bool ->
  ?backend:Codec.backend ->
  ?offload:bool ->
  ?transport:[ `Raw_eth | `Rdma_rc | `Shm ] ->
  unit ->
  result
