(** Serialize-vs-share shared-memory benchmark ([erpc_sim shm-bench]).

    Two colocated endpoints exchange echo RPCs over the {!Shm} rings,
    sweeping payload size under each handoff discipline. Every cell
    checks the intra-host anatomy invariant (NIC/wire/switch components
    exactly zero, transit in the ring/guard component), and the Auto
    cells must flip from copying to pointer-passing exactly at the cost
    model's crossover payload. *)

type row = {
  payload : int;
  mode : string;  (** "serialize" | "share" | "auto" *)
  rpcs : int;  (** breakdowns analyzed (single-packet round trips) *)
  mean_ns : float;  (** mean end-to-end latency *)
  ring_ns : float;  (** mean ring/guard component *)
  nic_ns : float;
  wire_ns : float;
  switch_ns : float;
  shared_tx : int;  (** client messages handed off by pointer *)
  serialized_tx : int;  (** client messages copied into the ring *)
  guard_faults : int;
  digest : string;  (** trace digest of this cell's run *)
}

type result = {
  rows : row list;
  crossover_payload : int;
      (** smallest payload where the cost model prefers sharing *)
  measured_crossover : int option;
      (** smallest swept payload whose Auto cell actually shared *)
  violations : string list;  (** empty on a clean run *)
}

(** The analytic crossover: smallest payload whose flat share cost
    (descriptor + seal + unseal + ownership check) does not exceed the
    modeled per-byte copy. Mirrors the [Auto] decision in {!Shm}. *)
val model_crossover : Erpc.Cost_model.t -> int

(** [run ()] sweeps [payloads] x (serialize | share | auto). With
    [rerun_check] each cell runs twice and a differing same-seed trace
    digest is reported as a violation. *)
val run :
  ?seed:int64 ->
  ?samples:int ->
  ?payloads:int list ->
  ?rerun_check:bool ->
  unit ->
  result

val to_json : result -> Obs.Json.t
val pp_result : Format.formatter -> result -> unit
