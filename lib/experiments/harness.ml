type deployment = {
  fabric : Erpc.Fabric.t;
  cluster : Transport.Cluster.t;
  nexuses : Erpc.Nexus.t array;
  rpcs : Erpc.Rpc.t array array;
}

let deploy ?seed ?config ?cost ?trace ?(workers_per_host = 1) ?(register = fun _ -> ())
    (cluster : Transport.Cluster.t) ~threads_per_host =
  let fabric = Erpc.Fabric.create ?seed ?config ?cost ?trace cluster in
  let nexuses =
    Array.init cluster.num_hosts (fun host ->
        let nx = Erpc.Nexus.create fabric ~host ~num_workers:workers_per_host () in
        register nx;
        nx)
  in
  let rpcs =
    Array.map
      (fun nx -> Array.init threads_per_host (fun i -> Erpc.Rpc.create nx ~rpc_id:i))
      nexuses
  in
  { fabric; cluster; nexuses; rpcs }

let run_ms d ms =
  let engine = Erpc.Fabric.engine d.fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let run_us d us =
  let engine = Erpc.Fabric.engine d.fabric in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.us us))

let now d = Sim.Engine.now (Erpc.Fabric.engine d.fabric)

let echo_req_type = 1

let register_echo ?(req_type = echo_req_type) ?resp_size nx =
  Erpc.Nexus.register_handler nx ~req_type ~mode:Erpc.Nexus.Dispatch (fun h ->
      let req = Erpc.Req_handle.get_request h in
      let n = match resp_size with Some n -> n | None -> Erpc.Msgbuf.size req in
      let resp = Erpc.Req_handle.init_response h ~size:n in
      (* Echo back as much request data as fits, so tests can check
         integrity. *)
      let copy = min n (Erpc.Msgbuf.size req) in
      if copy > 0 then
        Erpc.Msgbuf.blit ~src:req ~src_off:0 ~dst:resp ~dst_off:0 ~len:copy;
      Erpc.Req_handle.enqueue_response h resp)

let connect d rpc ~remote_host ~remote_rpc_id =
  let status = ref None in
  let sess =
    Erpc.Rpc.create_session rpc ~remote_host ~remote_rpc_id
      ~on_connect:(fun r -> status := Some r)
      ()
  in
  (* The handshake is two SM messages; run a little beyond that. *)
  let rec wait tries =
    if !status = None && tries > 0 then begin
      run_us d 100.;
      wait (tries - 1)
    end
  in
  wait 100;
  (match !status with
  | Some (Ok ()) -> ()
  | Some (Error e) -> failwith ("Harness.connect: " ^ Erpc.Err.to_string e)
  | None -> failwith "Harness.connect: handshake did not complete");
  sess

type driver = {
  req_type : int;
  rng : Sim.Rng.t;
  rpc : Erpc.Rpc.t;
  sessions : Erpc.Session.session array;
  window : int;
  batch : int;
  req_size : int;
  per_batch_cost_ns : int;
  latencies : Stats.Hist.t option;
  bufs : (Erpc.Msgbuf.t * Erpc.Msgbuf.t) array;
  engine : Sim.Engine.t;
  mutable ready : int list;  (** free buffer-pair indexes awaiting a batch *)
  mutable completed : int;
}

let make_driver ?latencies ?(req_size = 32) ?(resp_size = 32) ?(batch = 1)
    ?(per_batch_cost_ns = 0) ?(req_type = echo_req_type) ~rng ~rpc ~sessions ~window () =
  assert (window > 0 && batch > 0 && Array.length sessions > 0);
  {
    req_type;
    rng;
    rpc;
    sessions;
    window;
    batch;
    req_size;
    per_batch_cost_ns;
    latencies;
    bufs =
      Array.init window (fun _ ->
          ( Erpc.Msgbuf.alloc ~max_size:(max 1 req_size),
            Erpc.Msgbuf.alloc ~max_size:(max 1 resp_size) ));
    engine = Erpc.Fabric.engine (Erpc.Rpc.nexus rpc |> Erpc.Nexus.fabric);
    ready = List.init window Fun.id;
    completed = 0;
  }

let rec issue_ready t =
  (* Issue in batches of [batch]: wait until a full batch of buffer pairs
     is free (the tail end of the run issues partial batches never — they
     stay pending, which only matters at shutdown). *)
  while List.length t.ready >= t.batch do
    let rec take n acc rest =
      if n = 0 then (acc, rest)
      else match rest with [] -> (acc, []) | x :: tl -> take (n - 1) (x :: acc) tl
    in
    let batch_idx, rest = take t.batch [] t.ready in
    t.ready <- rest;
    (* Per-batch fixed cost (doorbell batching in specialized systems). *)
    if t.per_batch_cost_ns > 0 then
      ignore (Sim.Cpu.charge (Erpc.Rpc.cpu t.rpc) t.per_batch_cost_ns);
    List.iter (fun idx -> issue_one t idx) batch_idx
  done

and issue_one t idx =
  let req, resp = t.bufs.(idx) in
  Erpc.Msgbuf.resize req t.req_size;
  let sess = t.sessions.(Sim.Rng.int t.rng (Array.length t.sessions)) in
  let t0 = Sim.Engine.now t.engine in
  Erpc.Rpc.enqueue_request t.rpc sess ~req_type:t.req_type ~req ~resp ~cont:(fun r ->
      (match r with
      | Ok () -> (
          t.completed <- t.completed + 1;
          match t.latencies with
          | Some h -> Stats.Hist.record h (Sim.Time.sub (Sim.Engine.now t.engine) t0)
          | None -> ())
      | Error _ -> ());
      t.ready <- idx :: t.ready;
      issue_ready t)

let start_driver t = issue_ready t
let driver_completed t = t.completed

(* {2 Typed workloads}

   Schema-driven counterparts of the echo workload, for exercising the
   codec backends end-to-end: the server decodes the request and re-encodes
   it as the response, charging modeled (de)serialization cost per the
   endpoint's [Config.codec_backend] / [codec_offload]. *)

let typed_echo_req_type = 2

(* Benchmark schemas. Both are flat-capable so every backend x schema
   combination is valid; [schema_fixed] is all fixed-width (the flat
   backend's best case, lazy-access friendly), [schema_var] carries a
   variable-length payload in a bounded field. *)
let schema_fixed : ((int * int) * string) Codec.t =
  Codec.(pair (pair u32 u32) (fixed_string 16))

let value_fixed = ((7, 42), "0123456789abcdef")

let schema_var : (int * string) Codec.t = Codec.(pair u32 (bounded_string 64))
let value_var = (9, String.make 32 'x')

let register_typed_echo (type a) ?(req_type = typed_echo_req_type) (codec : a Codec.t) nx
    =
  Erpc.Nexus.register_handler nx ~req_type ~mode:Erpc.Nexus.Dispatch (fun h ->
      let v = Erpc.Typed.read_request h codec in
      Erpc.Typed.respond h codec v)

type typed_driver = { td_start : unit -> unit; td_completed : unit -> int }

let make_typed_driver (type a) ?latencies ?(batch = 1) ?(per_batch_cost_ns = 0)
    ?(req_type = typed_echo_req_type) ~(codec : a Codec.t) ~(value : a) ~rng ~rpc
    ~sessions ~window () =
  assert (window > 0 && batch > 0 && Array.length sessions > 0);
  let engine = Erpc.Fabric.engine (Erpc.Rpc.nexus rpc |> Erpc.Nexus.fabric) in
  let backend = fst (Erpc.Rpc.codec_mode rpc) in
  let max_size = Codec.encoded_size ~backend codec value in
  let bufs =
    Array.init window (fun _ ->
        (Erpc.Msgbuf.alloc ~max_size, Erpc.Msgbuf.alloc ~max_size))
  in
  let ready = ref (List.init window Fun.id) in
  let completed = ref 0 in
  let rec issue_ready () =
    while List.length !ready >= batch do
      let rec take n acc rest =
        if n = 0 then (acc, rest)
        else match rest with [] -> (acc, []) | x :: tl -> take (n - 1) (x :: acc) tl
      in
      let batch_idx, rest = take batch [] !ready in
      ready := rest;
      if per_batch_cost_ns > 0 then
        ignore (Sim.Cpu.charge (Erpc.Rpc.cpu rpc) per_batch_cost_ns);
      List.iter issue_one batch_idx
    done
  and issue_one idx =
    let req_buf, resp_buf = bufs.(idx) in
    let sess = sessions.(Sim.Rng.int rng (Array.length sessions)) in
    let t0 = Sim.Engine.now engine in
    Erpc.Typed.enqueue_request rpc sess ~req_type ~req_codec:codec ~resp_codec:codec
      ~req_buf ~resp_buf value ~cont:(fun r ->
        (match r with
        | Ok _ -> (
            incr completed;
            match latencies with
            | Some h -> Stats.Hist.record h (Sim.Time.sub (Sim.Engine.now engine) t0)
            | None -> ())
        | Error _ -> ());
        ready := idx :: !ready;
        issue_ready ())
  in
  { td_start = issue_ready; td_completed = (fun () -> !completed) }

let start_typed_driver t = t.td_start ()
let typed_driver_completed t = t.td_completed ()

let total_completed d =
  Array.fold_left
    (fun acc per_host ->
      Array.fold_left (fun acc rpc -> acc + (Erpc.Rpc.stats rpc).Erpc.Rpc_stats.completed) acc per_host)
    0 d.rpcs
