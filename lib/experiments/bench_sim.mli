(** Simulator-throughput bench ([erpc_sim bench-sim]).

    Measures the simulator itself rather than the simulated system: CPU
    seconds, events per wall-clock second, and minor-heap words allocated
    per event, over a set of fixed-seed workloads (incast, small-RPC
    rate, bandwidth, chaos). Each workload runs under both event-queue
    implementations — the production {!Sim.Event_queue.Wheel} and the
    pre-overhaul {!Sim.Event_queue.Binheap} baseline — which execute
    identical event sequences, so any difference is pure scheduler and
    allocation cost. *)

type row = {
  workload : string;
  impl : string;  (** ["wheel"] or ["binheap"] *)
  wall_s : float;  (** CPU seconds ([Sys.time]) for the whole run *)
  events : int;  (** simulator events executed *)
  events_per_sec : float;
  minor_words_per_event : float;
      (** minor-heap words allocated per event ([Gc.minor_words] delta) *)
  digest : string;
      (** deterministic fingerprint of the run's end state (simulated
          clock, event count, aggregate RPC stats; chaos hashes its
          trace). A same-seed rerun must reproduce it exactly — the
          [bench-sim --rerun] gate asserts this. *)
}

val impl_name : Sim.Event_queue.impl -> string
val impl_of_name : string -> Sim.Event_queue.impl option

(** Names accepted by [run_one]'s [~workload]. *)
val workload_names : string list

(** Run one workload under one event-queue implementation. Resets the
    default implementation back to [Wheel] afterwards. *)
val run_one : workload:string -> impl:Sim.Event_queue.impl -> seed:int64 -> row

(** All workloads under all [impls] (default: binheap then wheel). *)
val run_all : ?seed:int64 -> ?impls:Sim.Event_queue.impl list -> unit -> row list

(** The BENCH_*.json document for a list of rows
    (benchmark ["sim_events"]). *)
val to_json : row list -> Obs.Json.t
