(** Codec benchmark ([erpc_sim codec-bench]): backend x payload schema x
    NIC-offload toggle. Each row carries wall-clock encode/decode ns/op of
    the codec implementation itself, the per-message cost the simulator's
    {!Erpc.Cost_model} charges for the same operation, and the simulated
    end-to-end typed-echo rate under that codec configuration. *)

type row = {
  backend : string;
  schema : string;
  offload : bool;
  wire_bytes : int;
  leaves : int;
  encode_ns : float;  (** wall-clock ns per encode *)
  decode_ns : float;  (** wall-clock ns per decode *)
  model_encode_ns : int;  (** modeled CPU (or offload) charge per encode *)
  model_decode_ns : int;
  sim_mrps : float;  (** simulated typed-echo rate under this config *)
}

(** Full sweep: {Compact, Flat} x {fixed24, var64} x offload {off, on} = 8
    rows. [iters] controls the wall-clock loops (default 100k);
    [measure_ms] the simulated measurement window (default 2 ms). *)
val run :
  ?seed:int64 ->
  ?iters:int ->
  ?measure_ms:float ->
  ?cost:Erpc.Cost_model.t ->
  unit ->
  row list

val row_json : row -> Obs.Json.t
val to_json : row list -> Obs.Json.t
val pp_table : Format.formatter -> row list -> unit
