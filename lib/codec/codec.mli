(** Typed marshalling on top of eRPC msgbufs.

    The paper deliberately keeps eRPC's API at the level of opaque
    DMA-capable buffers: "a library that provides marshalling and
    unmarshalling can be used as a layer on top of eRPC" (§3.1). This is
    that layer: composable codecs with exact wire sizes, writing directly
    into msgbufs (no intermediate buffer, preserving the zero-copy story).

    Encoding is little-endian and length-prefixed for variable-size data.
    [read] validates bounds and raises [Decode_error] on malformed or
    truncated input. *)

exception Decode_error of string

type 'a t

(** {2 Primitives} *)

val u8 : int t
val u16 : int t
val u32 : int t
val u64 : int t
val bool : bool t

(** Fixed-width byte string (no length prefix). *)
val fixed_string : int -> string t

(** Length-prefixed (u32) variable string. *)
val string : string t

(** {2 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** u32-count-prefixed list. *)
val list : 'a t -> 'a list t

val option : 'a t -> 'a option t
val array : 'a t -> 'a array t

(** [map ~into ~from c] builds a codec for a richer type from codec [c]. *)
val map : into:('a -> 'b) -> from:('b -> 'a) -> 'a t -> 'b t

(** [with_checksum c] appends a u32 FNV-1a checksum of the encoded body;
    [read] verifies it and raises {!Decode_error} on mismatch — app-level
    end-to-end integrity on top of the per-packet wire checksum. *)
val with_checksum : 'a t -> 'a t

(** {2 Sizes} *)

(** Exact encoded size of a value. *)
val size : 'a t -> 'a -> int

(** {2 Msgbuf I/O} *)

(** [write c msgbuf v] resizes [msgbuf] to the encoded size and writes [v]
    at offset 0. Raises if the buffer is too small or in flight. *)
val write : 'a t -> Erpc.Msgbuf.t -> 'a -> unit

(** [read c msgbuf] decodes a value from offset 0. *)
val read : 'a t -> Erpc.Msgbuf.t -> 'a

(** [alloc_and_write c v] allocates an exactly-sized msgbuf holding [v]. *)
val alloc_and_write : 'a t -> 'a -> Erpc.Msgbuf.t

(** {2 Raw I/O (for tests and non-msgbuf uses)} *)

val to_bytes : 'a t -> 'a -> bytes
val of_bytes : 'a t -> bytes -> 'a
