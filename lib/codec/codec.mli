(** Typed wire codecs with pluggable backends.

    The paper deliberately keeps eRPC's API at the level of opaque
    DMA-capable buffers: "a library that provides marshalling and
    unmarshalling can be used as a layer on top of eRPC" (§3.1). This is
    that layer. A ['a t] describes how to put values of type ['a] on the
    wire; two backends share each schema:

    - {!Compact}: the length-prefixed little-endian binary layout.
      Variable-size fields cost only what they use; every codec supports
      it, and its wire bytes are identical to the pre-refactor codec.
    - {!Flat}: a fixed-offset layout in which every field (a "leaf") lives
      at a statically known offset, enabling {e lazy} per-field access via
      {!get_leaf_int}/{!get_leaf_string} without decoding the whole
      message. Only codecs built purely from bounded pieces support it
      (see {!flat_capable}).

    Codecs also report a per-value {e leaf count} — the number of
    primitive fields touched by an encode or decode — which is what the
    simulator's cost model charges per field, plus the byte footprint for
    bulk-copy charges.

    Decoding failures (truncation, bad tags, checksum mismatch, trailing
    bytes) raise {!Decode_error}; they never raise [Invalid_argument] or
    return garbage. [Invalid_argument] is reserved for caller bugs: values
    out of range for their field, codecs used with a backend they don't
    support, leaf indices out of range.

    Msgbuf integration lives in [Erpc.Typed] (this library is beneath the
    transport so both [erpc] and plain data code can use it). *)

exception Decode_error of string

type backend = Compact | Flat

val backend_name : backend -> string

type 'a t

(** {1 Primitives} *)

val u8 : int t
val u16 : int t
val u32 : int t
val u64 : int t
val bool : bool t

val fixed_string : int -> string t
(** Exactly [n] bytes, no length prefix. Writing a string of any other
    length raises [Invalid_argument]. *)

val string : string t
(** u32 length + bytes. Unbounded, hence no flat layout. *)

val bounded_string : int -> string t
(** Same compact wire format as {!string}, but with a declared capacity
    [cap]. The flat layout reserves [4 + cap] bytes (u32 length + storage,
    slack zero-filled). Writing more than [cap] bytes raises
    [Invalid_argument]; decoding a length > [cap] raises {!Decode_error}. *)

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val map : into:('a -> 'b) -> from:('b -> 'a) -> 'a t -> 'b t
(** [map ~into ~from c] builds a codec for a richer type from codec [c]. *)

val list : 'a t -> 'a list t
(** u32-count-prefixed list. Compact only. *)

val array : 'a t -> 'a array t

val tail_list : 'a t -> 'a list t
(** Elements with {e no} count prefix, read until the end of the message.
    Only valid as the final field of a schema. Compact only. *)

val option : 'a t -> 'a option t
(** Presence byte + payload. The flat layout zero-fills the payload region
    when absent, keeping the footprint fixed. *)

val tail_option : 'a t -> 'a option t
(** Presence encoded by message length: [Some] iff any bytes remain before
    the end of the message. Only valid as the final field of a schema.
    Compact only. *)

(** {1 Tagged unions} *)

type 'a case

val case : tag:int -> 'b t -> inj:('b -> 'a) -> proj:('a -> 'b option) -> 'a case
(** One constructor of a variant: a u8 [tag] (unique within the variant)
    followed by the payload. [proj] returns [Some] iff the value belongs
    to this case. *)

val variant : name:string -> 'a case list -> 'a t
(** Compact only. Decoding an unknown tag raises {!Decode_error}. *)

(** {1 Integrity} *)

val with_checksum : 'a t -> 'a t
(** [with_checksum c] appends a u32 FNV-1a checksum of the encoded body;
    eager decodes verify it and raise {!Decode_error} on mismatch —
    app-level end-to-end integrity on top of the per-packet wire checksum.
    Wire bytes are identical to the pre-refactor codec. Note: lazy leaf
    access on a flat checksummed message deliberately skips verification —
    only full {!decode} checks. *)

(** {1 Sizes} *)

val size : 'a t -> 'a -> int
(** Exact compact encoded size of a value. *)

val bound : 'a t -> int option
(** Static upper bound on the compact size, when one exists. *)

val encoded_size : backend:backend -> 'a t -> 'a -> int
val leaf_count : 'a t -> 'a -> int
val encoded_leaves : backend:backend -> 'a t -> 'a -> int
val flat_capable : 'a t -> bool

val flat_size : 'a t -> int
(** Fixed wire footprint under {!Flat}. Raises [Invalid_argument] if the
    codec has no flat layout. *)

val flat_leaves : 'a t -> int
(** Number of addressable leaves under {!Flat}. *)

(** {1 Encode / decode} *)

val encode : backend:backend -> 'a t -> bytes -> int -> 'a -> int
(** [encode ~backend c b off v] writes [v] at [off] and returns the end
    offset. The caller must have sized [b] via {!encoded_size}; [Flat]
    bounds-checks first and raises [Invalid_argument] on a too-small
    buffer without touching it. *)

val decode : backend:backend -> 'a t -> bytes -> off:int -> len:int -> 'a
(** Decodes exactly the [len] bytes at [off]. [Compact] requires full
    consumption — trailing bytes raise {!Decode_error}, as does any
    truncated or malformed prefix. [Flat] requires [len = flat_size]. *)

val to_bytes : ?backend:backend -> 'a t -> 'a -> bytes
val of_bytes : ?backend:backend -> 'a t -> bytes -> 'a

(** {1 Lazy field access} (flat layouts only)

    Fields are addressed positionally by leaf index, in declaration
    order. [base] is the offset of the message within [b]. Access
    validates bounds and field content, raising {!Decode_error} on
    corrupt data — but touches only that field's bytes, which is the
    point: the cost model charges one leaf, not the whole message. *)

val get_leaf_int : 'a t -> bytes -> base:int -> leaf:int -> int
(** Integer leaves ([u8]/[u16]/[u32]/[u64]/[bool] — bool reads as 0/1). *)

val get_leaf_string : 'a t -> bytes -> base:int -> leaf:int -> string
(** String leaves ([fixed_string]/[bounded_string]). *)

val leaf_bytes : 'a t -> leaf:int -> int
(** Wire footprint of one leaf — what a lazy access's byte charge is
    based on. *)

(** {1 Checksums} *)

val bytes_checksum : bytes -> off:int -> len:int -> int
(** FNV-1a over a byte range; identical constants to
    [Erpc.Pkthdr.bytes_checksum], so checksummed wire bytes are unchanged
    by this library's independence from the transport. *)
