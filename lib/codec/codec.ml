exception Decode_error of string

type backend = Compact | Flat

let backend_name = function Compact -> "compact" | Flat -> "flat"

let fail msg = raise (Decode_error msg)

(* FNV-1a over bytes; constants match [Erpc.Pkthdr.bytes_checksum] exactly so
   [with_checksum] wire bytes are unchanged by this module's independence
   from the transport library. *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3
let fnv_step h v = (h lxor v) * fnv_prime land max_int

let bytes_checksum b ~off ~len =
  let h = ref fnv_offset in
  for i = off to off + len - 1 do
    h := fnv_step !h (Char.code (Bytes.unsafe_get b i))
  done;
  !h

(* {2 Leaf metadata}

   A "leaf" is one primitive field as seen by the cost model: encoding or
   decoding a message costs per-leaf work plus bulk byte movement. Flat
   layouts additionally record each leaf's fixed offset, which is what makes
   lazy positional access possible. *)

type leaf_kind =
  | L_u8
  | L_u16
  | L_u32
  | L_u64
  | L_bool
  | L_fixed of int
  | L_bounded of int  (* u32 length + [cap] bytes of storage *)

type leaf = { l_off : int; l_kind : leaf_kind }

let leaf_width = function
  | L_u8 | L_bool -> 1
  | L_u16 -> 2
  | L_u32 -> 4
  | L_u64 -> 8
  | L_fixed n -> n
  | L_bounded cap -> 4 + cap

type 'a flat = {
  f_size : int;  (* fixed wire footprint *)
  f_write : bytes -> int -> 'a -> unit;  (* bounds pre-checked by caller *)
  f_read : bytes -> int -> 'a;  (* bounds pre-checked; content may still fail *)
  f_leaves : leaf array;  (* declaration order, offsets relative to base *)
}

(* A codec is an exact-size function, limit-aware writers/readers over a
   bytes buffer (compact backend), a per-value leaf count for the cost
   model, a static compact-size bound when one exists, and optionally a
   fixed-offset flat layout. Writers return the next offset; readers return
   (value, next offset) and never read at or past [limit]. *)
type 'a t = {
  size : 'a -> int;
  write : bytes -> int -> 'a -> int;
  read : bytes -> limit:int -> int -> 'a * int;
  leaves : 'a -> int;
  bound : int option;
  flat : 'a flat option;
}

let need b ~limit off n what =
  if off < 0 || off + n > limit || off + n > Bytes.length b then
    fail
      (Printf.sprintf "truncated %s at offset %d (need %d, have %d)" what off n
         (min limit (Bytes.length b) - off))

(* {2 Primitives} *)

let prim ~kind ~n ~what ~wr ~rd =
  {
    size = (fun _ -> n);
    write =
      (fun b off v ->
        wr b off v;
        off + n);
    read =
      (fun b ~limit off ->
        need b ~limit off n what;
        (rd b off, off + n));
    leaves = (fun _ -> 1);
    bound = Some n;
    flat = Some { f_size = n; f_write = wr; f_read = rd; f_leaves = [| { l_off = 0; l_kind = kind } |] };
  }

let u8 =
  prim ~kind:L_u8 ~n:1 ~what:"u8"
    ~wr:(fun b off v ->
      if v < 0 || v > 0xFF then invalid_arg "Codec.u8: out of range";
      Bytes.set_uint8 b off v)
    ~rd:(fun b off -> Bytes.get_uint8 b off)

let u16 =
  prim ~kind:L_u16 ~n:2 ~what:"u16"
    ~wr:(fun b off v ->
      if v < 0 || v > 0xFFFF then invalid_arg "Codec.u16: out of range";
      Bytes.set_uint16_le b off v)
    ~rd:(fun b off -> Bytes.get_uint16_le b off)

let u32 =
  prim ~kind:L_u32 ~n:4 ~what:"u32"
    ~wr:(fun b off v ->
      if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.u32: out of range";
      Bytes.set_int32_le b off (Int32.of_int v))
    ~rd:(fun b off -> Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF)

let u64 =
  prim ~kind:L_u64 ~n:8 ~what:"u64"
    ~wr:(fun b off v -> Bytes.set_int64_le b off (Int64.of_int v))
    ~rd:(fun b off -> Int64.to_int (Bytes.get_int64_le b off))

let bool =
  prim ~kind:L_bool ~n:1 ~what:"bool"
    ~wr:(fun b off v -> Bytes.set_uint8 b off (if v then 1 else 0))
    ~rd:(fun b off ->
      match Bytes.get_uint8 b off with
      | 0 -> false
      | 1 -> true
      | n -> fail (Printf.sprintf "invalid bool byte %d" n))

let fixed_string n =
  let wr b off s =
    if String.length s <> n then
      invalid_arg
        (Printf.sprintf "Codec.fixed_string: expected %d bytes, got %d" n (String.length s));
    Bytes.blit_string s 0 b off n
  in
  {
    size = (fun _ -> n);
    write =
      (fun b off s ->
        wr b off s;
        off + n);
    read =
      (fun b ~limit off ->
        need b ~limit off n "fixed_string";
        (Bytes.sub_string b off n, off + n));
    leaves = (fun _ -> 1);
    bound = Some n;
    flat =
      Some
        {
          f_size = n;
          f_write = wr;
          f_read = (fun b off -> Bytes.sub_string b off n);
          f_leaves = [| { l_off = 0; l_kind = L_fixed n } |];
        };
  }

let string =
  {
    size = (fun s -> 4 + String.length s);
    write =
      (fun b off s ->
        let off = u32.write b off (String.length s) in
        Bytes.blit_string s 0 b off (String.length s);
        off + String.length s);
    read =
      (fun b ~limit off ->
        let n, off = u32.read b ~limit off in
        need b ~limit off n "string body";
        (Bytes.sub_string b off n, off + n));
    leaves = (fun _ -> 1);
    bound = None;
    flat = None;
  }

(* Same compact wire format as [string], but with a declared capacity, which
   gives it a flat layout: u32 length at a fixed offset followed by [cap]
   reserved bytes (slack zero-filled so encodes stay deterministic). *)
let bounded_string cap =
  let check s =
    if String.length s > cap then
      invalid_arg
        (Printf.sprintf "Codec.bounded_string: %d bytes exceeds capacity %d" (String.length s)
           cap)
  in
  {
    size =
      (fun s ->
        check s;
        4 + String.length s);
    write =
      (fun b off s ->
        check s;
        let off = u32.write b off (String.length s) in
        Bytes.blit_string s 0 b off (String.length s);
        off + String.length s);
    read =
      (fun b ~limit off ->
        let n, off = u32.read b ~limit off in
        if n > cap then fail (Printf.sprintf "bounded_string length %d exceeds capacity %d" n cap);
        need b ~limit off n "bounded_string body";
        (Bytes.sub_string b off n, off + n));
    leaves = (fun _ -> 1);
    bound = Some (4 + cap);
    flat =
      Some
        {
          f_size = 4 + cap;
          f_write =
            (fun b off s ->
              check s;
              let n = String.length s in
              ignore (u32.write b off n);
              Bytes.blit_string s 0 b (off + 4) n;
              Bytes.fill b (off + 4 + n) (cap - n) '\000');
          f_read =
            (fun b off ->
              let n = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF in
              if n > cap then
                fail (Printf.sprintf "bounded_string length %d exceeds capacity %d" n cap);
              Bytes.sub_string b (off + 4) n);
          f_leaves = [| { l_off = 0; l_kind = L_bounded cap } |];
        };
  }

(* {2 Combinators} *)

let shift_leaves d ls = Array.map (fun l -> { l with l_off = l.l_off + d }) ls

let pair a b =
  {
    size = (fun (x, y) -> a.size x + b.size y);
    write =
      (fun buf off (x, y) ->
        let off = a.write buf off x in
        b.write buf off y);
    read =
      (fun buf ~limit off ->
        let x, off = a.read buf ~limit off in
        let y, off = b.read buf ~limit off in
        ((x, y), off));
    leaves = (fun (x, y) -> a.leaves x + b.leaves y);
    bound = (match (a.bound, b.bound) with Some m, Some n -> Some (m + n) | _ -> None);
    flat =
      (match (a.flat, b.flat) with
      | Some fa, Some fb ->
          Some
            {
              f_size = fa.f_size + fb.f_size;
              f_write =
                (fun buf off (x, y) ->
                  fa.f_write buf off x;
                  fb.f_write buf (off + fa.f_size) y);
              f_read =
                (fun buf off ->
                  let x = fa.f_read buf off in
                  let y = fb.f_read buf (off + fa.f_size) in
                  (x, y));
              f_leaves = Array.append fa.f_leaves (shift_leaves fa.f_size fb.f_leaves);
            }
      | _ -> None);
  }

let map ~into ~from c =
  {
    size = (fun v -> c.size (from v));
    write = (fun buf off v -> c.write buf off (from v));
    read =
      (fun buf ~limit off ->
        let x, off = c.read buf ~limit off in
        (into x, off));
    leaves = (fun v -> c.leaves (from v));
    bound = c.bound;
    flat =
      (match c.flat with
      | Some f ->
          Some
            {
              f_size = f.f_size;
              f_write = (fun buf off v -> f.f_write buf off (from v));
              f_read = (fun buf off -> into (f.f_read buf off));
              f_leaves = f.f_leaves;
            }
      | None -> None);
  }

let triple a b c =
  map
    ~into:(fun ((x, y), z) -> (x, y, z))
    ~from:(fun (x, y, z) -> ((x, y), z))
    (pair (pair a b) c)

let list elt =
  {
    size = (fun xs -> 4 + List.fold_left (fun acc x -> acc + elt.size x) 0 xs);
    write =
      (fun buf off xs ->
        let off = u32.write buf off (List.length xs) in
        List.fold_left (fun off x -> elt.write buf off x) off xs);
    read =
      (fun buf ~limit off ->
        let n, off = u32.read buf ~limit off in
        let rec go acc off i =
          if i = 0 then (List.rev acc, off)
          else
            let x, off = elt.read buf ~limit off in
            go (x :: acc) off (i - 1)
        in
        go [] off n);
    leaves = (fun xs -> 1 + List.fold_left (fun acc x -> acc + elt.leaves x) 0 xs);
    bound = None;
    flat = None;
  }

(* No count prefix: elements are read until the message limit. Only valid as
   the final field of a message. *)
let tail_list elt =
  {
    size = (fun xs -> List.fold_left (fun acc x -> acc + elt.size x) 0 xs);
    write = (fun buf off xs -> List.fold_left (fun off x -> elt.write buf off x) off xs);
    read =
      (fun buf ~limit off ->
        let rec go acc off =
          if off >= limit then (List.rev acc, off)
          else begin
            let x, off' = elt.read buf ~limit off in
            if off' <= off then fail "tail_list: element consumed no bytes";
            go (x :: acc) off'
          end
        in
        go [] off);
    leaves = (fun xs -> List.fold_left (fun acc x -> acc + elt.leaves x) 0 xs);
    bound = None;
    flat = None;
  }

let option elt =
  {
    size = (fun v -> match v with None -> 1 | Some x -> 1 + elt.size x);
    write =
      (fun buf off v ->
        match v with
        | None -> bool.write buf off false
        | Some x ->
            let off = bool.write buf off true in
            elt.write buf off x);
    read =
      (fun buf ~limit off ->
        let present, off = bool.read buf ~limit off in
        if present then
          let x, off = elt.read buf ~limit off in
          (Some x, off)
        else (None, off));
    leaves = (fun v -> match v with None -> 1 | Some x -> 1 + elt.leaves x);
    bound = (match elt.bound with Some n -> Some (1 + n) | None -> None);
    flat =
      (match elt.flat with
      | Some f ->
          Some
            {
              f_size = 1 + f.f_size;
              f_write =
                (fun buf off v ->
                  match v with
                  | None ->
                      Bytes.set_uint8 buf off 0;
                      Bytes.fill buf (off + 1) f.f_size '\000'
                  | Some x ->
                      Bytes.set_uint8 buf off 1;
                      f.f_write buf (off + 1) x);
              f_read =
                (fun buf off ->
                  match Bytes.get_uint8 buf off with
                  | 0 -> None
                  | 1 -> Some (f.f_read buf (off + 1))
                  | n -> fail (Printf.sprintf "invalid option byte %d" n));
              f_leaves =
                Array.append [| { l_off = 0; l_kind = L_bool } |] (shift_leaves 1 f.f_leaves);
            }
      | None -> None);
  }

(* Presence encoded by message length: the value is present iff any bytes
   remain before the limit. Only valid as the final field of a message —
   this is how fixed-layout responses omit an optional payload without
   spending a presence byte (the KV response format). *)
let tail_option elt =
  {
    size = (fun v -> match v with None -> 0 | Some x -> elt.size x);
    write = (fun buf off v -> match v with None -> off | Some x -> elt.write buf off x);
    read =
      (fun buf ~limit off ->
        if off >= limit then (None, off)
        else
          let x, off = elt.read buf ~limit off in
          (Some x, off));
    leaves = (fun v -> match v with None -> 0 | Some x -> elt.leaves x);
    bound = elt.bound;
    flat = None;
  }

let array elt =
  let as_list = list elt in
  map ~into:Array.of_list ~from:Array.to_list as_list

(* {2 Tagged unions} *)

type ('a, 'b) case_ = {
  c_tag : int;
  c_payload : 'b t;
  c_inj : 'b -> 'a;
  c_proj : 'a -> 'b option;
}

type 'a case = Case : ('a, 'b) case_ -> 'a case

let case ~tag payload ~inj ~proj =
  if tag < 0 || tag > 0xFF then invalid_arg "Codec.case: tag out of u8 range";
  Case { c_tag = tag; c_payload = payload; c_inj = inj; c_proj = proj }

let variant ~name cases =
  if cases = [] then invalid_arg (name ^ ": no cases");
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (Case c) ->
      if Hashtbl.mem seen c.c_tag then
        invalid_arg (Printf.sprintf "%s: duplicate tag %d" name c.c_tag);
      Hashtbl.add seen c.c_tag ())
    cases;
  let by_tag tag =
    let rec go = function
      | [] -> fail (Printf.sprintf "%s: unknown tag %d" name tag)
      | Case c :: rest -> if c.c_tag = tag then Case c else go rest
    in
    go cases
  in
  let size v =
    let rec go = function
      | [] -> invalid_arg (name ^ ": value matches no case")
      | Case c :: rest -> (
          match c.c_proj v with Some b -> 1 + c.c_payload.size b | None -> go rest)
    in
    go cases
  in
  let write buf off v =
    let rec go = function
      | [] -> invalid_arg (name ^ ": value matches no case")
      | Case c :: rest -> (
          match c.c_proj v with
          | Some b ->
              let off = u8.write buf off c.c_tag in
              c.c_payload.write buf off b
          | None -> go rest)
    in
    go cases
  in
  let leaves v =
    let rec go = function
      | [] -> invalid_arg (name ^ ": value matches no case")
      | Case c :: rest -> (
          match c.c_proj v with Some b -> 1 + c.c_payload.leaves b | None -> go rest)
    in
    go cases
  in
  {
    size;
    write;
    read =
      (fun buf ~limit off ->
        let tag, off = u8.read buf ~limit off in
        match by_tag tag with
        | Case c ->
            let b, off = c.c_payload.read buf ~limit off in
            (c.c_inj b, off));
    leaves;
    bound =
      List.fold_left
        (fun acc (Case c) ->
          match (acc, c.c_payload.bound) with
          | Some m, Some n -> Some (max m (1 + n))
          | _ -> None)
        (Some 0) cases;
    flat = None;
  }

(* {2 Integrity} *)

let with_checksum c =
  {
    size = (fun v -> c.size v + 4);
    write =
      (fun b off v ->
        let body_end = c.write b off v in
        let sum = bytes_checksum b ~off ~len:(body_end - off) land 0xFFFFFFFF in
        u32.write b body_end sum);
    read =
      (fun b ~limit off ->
        let v, body_end = c.read b ~limit off in
        let stored, next = u32.read b ~limit body_end in
        let sum = bytes_checksum b ~off ~len:(body_end - off) land 0xFFFFFFFF in
        if stored <> sum then
          fail (Printf.sprintf "checksum mismatch (stored %#x, computed %#x)" stored sum);
        (v, next));
    leaves = (fun v -> c.leaves v + 1);
    bound = (match c.bound with Some n -> Some (n + 4) | None -> None);
    flat =
      (match c.flat with
      | Some f ->
          Some
            {
              f_size = f.f_size + 4;
              f_write =
                (fun b off v ->
                  f.f_write b off v;
                  ignore
                    (u32.write b (off + f.f_size)
                       (bytes_checksum b ~off ~len:f.f_size land 0xFFFFFFFF)));
              f_read =
                (fun b off ->
                  let stored =
                    Int32.to_int (Bytes.get_int32_le b (off + f.f_size)) land 0xFFFFFFFF
                  in
                  let sum = bytes_checksum b ~off ~len:f.f_size land 0xFFFFFFFF in
                  if stored <> sum then
                    fail
                      (Printf.sprintf "checksum mismatch (stored %#x, computed %#x)" stored sum);
                  f.f_read b off);
              (* Lazy per-leaf access deliberately bypasses verification;
                 [decode] (eager) always verifies. *)
              f_leaves = f.f_leaves;
            }
      | None -> None);
  }

(* {2 Sizes and backend entry points} *)

let size c v = c.size v
let bound c = c.bound
let leaf_count c v = c.leaves v
let flat_capable c = c.flat <> None

let flat_exn c what =
  match c.flat with
  | Some f -> f
  | None -> invalid_arg (what ^ ": codec has no flat layout (unbounded field?)")

let flat_size c = (flat_exn c "Codec.flat_size").f_size
let flat_leaves c = Array.length (flat_exn c "Codec.flat_leaves").f_leaves

let encoded_size ~backend c v =
  match backend with Compact -> c.size v | Flat -> (flat_exn c "Codec.encoded_size").f_size

let encoded_leaves ~backend c v =
  match backend with
  | Compact -> c.leaves v
  | Flat ->
      let f = flat_exn c "Codec.encoded_leaves" in
      if Array.length f.f_leaves > 0 then Array.length f.f_leaves else c.leaves v

let encode ~backend c b off v =
  match backend with
  | Compact -> c.write b off v
  | Flat ->
      let f = flat_exn c "Codec.encode" in
      if off < 0 || off + f.f_size > Bytes.length b then
        invalid_arg "Codec.encode: buffer too small for flat layout";
      f.f_write b off v;
      off + f.f_size

let decode ~backend c b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Codec.decode: range outside buffer";
  match backend with
  | Compact ->
      let v, fin = c.read b ~limit:(off + len) off in
      if fin <> off + len then
        fail (Printf.sprintf "%d trailing bytes after message" (off + len - fin));
      v
  | Flat ->
      let f = flat_exn c "Codec.decode" in
      if len <> f.f_size then
        fail (Printf.sprintf "flat message size %d, expected %d" len f.f_size);
      f.f_read b off

let to_bytes ?(backend = Compact) c v =
  let b = Bytes.create (encoded_size ~backend c v) in
  let final = encode ~backend c b 0 v in
  assert (final = Bytes.length b);
  b

let of_bytes ?(backend = Compact) c b = decode ~backend c b ~off:0 ~len:(Bytes.length b)

(* {2 Lazy positional access (flat layouts)} *)

let leaf_ c b ~base ~leaf what =
  let f = flat_exn c what in
  if leaf < 0 || leaf >= Array.length f.f_leaves then
    invalid_arg (Printf.sprintf "%s: leaf %d out of range (codec has %d)" what leaf
                   (Array.length f.f_leaves));
  let l = f.f_leaves.(leaf) in
  let off = base + l.l_off in
  if base < 0 || off + leaf_width l.l_kind > Bytes.length b then
    fail (Printf.sprintf "%s: leaf %d outside buffer" what leaf);
  (l, off)

let get_leaf_int c b ~base ~leaf =
  let l, off = leaf_ c b ~base ~leaf "Codec.get_leaf_int" in
  match l.l_kind with
  | L_u8 -> Bytes.get_uint8 b off
  | L_u16 -> Bytes.get_uint16_le b off
  | L_u32 -> Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
  | L_u64 -> Int64.to_int (Bytes.get_int64_le b off)
  | L_bool -> (
      match Bytes.get_uint8 b off with
      | (0 | 1) as n -> n
      | n -> fail (Printf.sprintf "invalid bool byte %d" n))
  | L_fixed _ | L_bounded _ -> invalid_arg "Codec.get_leaf_int: leaf is not an integer"

let get_leaf_string c b ~base ~leaf =
  let l, off = leaf_ c b ~base ~leaf "Codec.get_leaf_string" in
  match l.l_kind with
  | L_fixed n -> Bytes.sub_string b off n
  | L_bounded cap ->
      let n = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF in
      if n > cap then fail (Printf.sprintf "bounded_string length %d exceeds capacity %d" n cap);
      Bytes.sub_string b (off + 4) n
  | _ -> invalid_arg "Codec.get_leaf_string: leaf is not a string"

let leaf_bytes c ~leaf =
  let f = flat_exn c "Codec.leaf_bytes" in
  if leaf < 0 || leaf >= Array.length f.f_leaves then
    invalid_arg "Codec.leaf_bytes: leaf out of range";
  leaf_width f.f_leaves.(leaf).l_kind
