exception Decode_error of string

(* A codec is a size function plus writers/readers over a bytes buffer.
   Writers return the next offset; readers return (value, next offset). *)
type 'a t = {
  size : 'a -> int;
  write : bytes -> int -> 'a -> int;
  read : bytes -> int -> 'a * int;
}

let fail msg = raise (Decode_error msg)

let need b off n what =
  if off < 0 || off + n > Bytes.length b then
    fail (Printf.sprintf "truncated %s at offset %d (need %d, have %d)" what off n
            (Bytes.length b - off))

let u8 =
  {
    size = (fun _ -> 1);
    write =
      (fun b off v ->
        if v < 0 || v > 0xFF then invalid_arg "Codec.u8: out of range";
        Bytes.set_uint8 b off v;
        off + 1);
    read =
      (fun b off ->
        need b off 1 "u8";
        (Bytes.get_uint8 b off, off + 1));
  }

let u16 =
  {
    size = (fun _ -> 2);
    write =
      (fun b off v ->
        if v < 0 || v > 0xFFFF then invalid_arg "Codec.u16: out of range";
        Bytes.set_uint16_le b off v;
        off + 2);
    read =
      (fun b off ->
        need b off 2 "u16";
        (Bytes.get_uint16_le b off, off + 2));
  }

let u32 =
  {
    size = (fun _ -> 4);
    write =
      (fun b off v ->
        if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.u32: out of range";
        Bytes.set_int32_le b off (Int32.of_int v);
        off + 4);
    read =
      (fun b off ->
        need b off 4 "u32";
        (Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF, off + 4));
  }

let u64 =
  {
    size = (fun _ -> 8);
    write =
      (fun b off v ->
        Bytes.set_int64_le b off (Int64.of_int v);
        off + 8);
    read =
      (fun b off ->
        need b off 8 "u64";
        (Int64.to_int (Bytes.get_int64_le b off), off + 8));
  }

let bool =
  {
    size = (fun _ -> 1);
    write =
      (fun b off v ->
        Bytes.set_uint8 b off (if v then 1 else 0);
        off + 1);
    read =
      (fun b off ->
        need b off 1 "bool";
        (match Bytes.get_uint8 b off with
        | 0 -> (false, off + 1)
        | 1 -> (true, off + 1)
        | n -> fail (Printf.sprintf "invalid bool byte %d" n)));
  }

let fixed_string n =
  {
    size = (fun _ -> n);
    write =
      (fun b off s ->
        if String.length s <> n then
          invalid_arg (Printf.sprintf "Codec.fixed_string: expected %d bytes, got %d" n
                         (String.length s));
        Bytes.blit_string s 0 b off n;
        off + n);
    read =
      (fun b off ->
        need b off n "fixed_string";
        (Bytes.sub_string b off n, off + n));
  }

let string =
  {
    size = (fun s -> 4 + String.length s);
    write =
      (fun b off s ->
        let off = u32.write b off (String.length s) in
        Bytes.blit_string s 0 b off (String.length s);
        off + String.length s);
    read =
      (fun b off ->
        let n, off = u32.read b off in
        need b off n "string body";
        (Bytes.sub_string b off n, off + n));
  }

let pair a b =
  {
    size = (fun (x, y) -> a.size x + b.size y);
    write =
      (fun buf off (x, y) ->
        let off = a.write buf off x in
        b.write buf off y);
    read =
      (fun buf off ->
        let x, off = a.read buf off in
        let y, off = b.read buf off in
        ((x, y), off));
  }

let triple a b c =
  {
    size = (fun (x, y, z) -> a.size x + b.size y + c.size z);
    write =
      (fun buf off (x, y, z) ->
        let off = a.write buf off x in
        let off = b.write buf off y in
        c.write buf off z);
    read =
      (fun buf off ->
        let x, off = a.read buf off in
        let y, off = b.read buf off in
        let z, off = c.read buf off in
        ((x, y, z), off));
  }

let list elt =
  {
    size = (fun xs -> 4 + List.fold_left (fun acc x -> acc + elt.size x) 0 xs);
    write =
      (fun buf off xs ->
        let off = u32.write buf off (List.length xs) in
        List.fold_left (fun off x -> elt.write buf off x) off xs);
    read =
      (fun buf off ->
        let n, off = u32.read buf off in
        let rec go acc off i =
          if i = 0 then (List.rev acc, off)
          else
            let x, off = elt.read buf off in
            go (x :: acc) off (i - 1)
        in
        go [] off n);
  }

let option elt =
  {
    size = (fun v -> match v with None -> 1 | Some x -> 1 + elt.size x);
    write =
      (fun buf off v ->
        match v with
        | None -> bool.write buf off false
        | Some x ->
            let off = bool.write buf off true in
            elt.write buf off x);
    read =
      (fun buf off ->
        let present, off = bool.read buf off in
        if present then
          let x, off = elt.read buf off in
          (Some x, off)
        else (None, off));
  }

let array elt =
  let as_list = list elt in
  {
    size = (fun a -> as_list.size (Array.to_list a));
    write = (fun buf off a -> as_list.write buf off (Array.to_list a));
    read =
      (fun buf off ->
        let xs, off = as_list.read buf off in
        (Array.of_list xs, off));
  }

let with_checksum c =
  {
    size = (fun v -> c.size v + 4);
    write =
      (fun b off v ->
        let body_end = c.write b off v in
        let sum =
          Erpc.Pkthdr.bytes_checksum b ~off ~len:(body_end - off) land 0xFFFFFFFF
        in
        u32.write b body_end sum);
    read =
      (fun b off ->
        let v, body_end = c.read b off in
        let stored, next = u32.read b body_end in
        let sum =
          Erpc.Pkthdr.bytes_checksum b ~off ~len:(body_end - off) land 0xFFFFFFFF
        in
        if stored <> sum then
          fail (Printf.sprintf "checksum mismatch (stored %#x, computed %#x)" stored sum);
        (v, next));
  }

let map ~into ~from c =
  {
    size = (fun v -> c.size (from v));
    write = (fun buf off v -> c.write buf off (from v));
    read =
      (fun buf off ->
        let x, off = c.read buf off in
        (into x, off));
  }

let size c v = c.size v

let to_bytes c v =
  let b = Bytes.create (c.size v) in
  let final = c.write b 0 v in
  assert (final = Bytes.length b);
  b

let of_bytes c b =
  let v, _ = c.read b 0 in
  v

let write c msgbuf v =
  let n = c.size v in
  Erpc.Msgbuf.resize msgbuf n;
  (* Encode into the msgbuf's storage directly. *)
  let b = Erpc.Msgbuf.unsafe_bytes msgbuf in
  let off0 = Erpc.Msgbuf.unsafe_offset msgbuf in
  if Erpc.Msgbuf.owner msgbuf = Erpc.Msgbuf.Owned_by_erpc && not (Erpc.Msgbuf.is_view msgbuf)
  then invalid_arg "Codec.write: msgbuf is in flight";
  ignore (c.write b off0 v)

let read c msgbuf =
  let n = Erpc.Msgbuf.size msgbuf in
  (* Reads must not run past the message even if the backing buffer is
     larger. *)
  let data = Bytes.of_string (Erpc.Msgbuf.read_string msgbuf ~off:0 ~len:n) in
  of_bytes c data

let alloc_and_write c v =
  let m = Erpc.Msgbuf.alloc ~max_size:(c.size v) in
  write c m v;
  m
