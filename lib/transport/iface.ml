(* The transport seam: everything the wire protocol is allowed to know
   about the packet I/O device underneath it. *)

module type S = sig
  type t

  val kind : string
  val lossless : t -> bool
  val max_data_per_pkt : t -> int
  val rq_size : t -> int
  val tx_burst : t -> Netsim.Packet.t -> unit
  val tx_pending : t -> int
  val flush_time_ns : t -> int
  val rx_burst : t -> max:int -> (Netsim.Packet.t -> unit) -> int
  val rx_ring_depth : t -> int
  val set_rx_notify : t -> (unit -> unit) -> unit
  val replenish_rx : t -> int -> int
  val receive : t -> Netsim.Packet.t -> unit
  val reset_rx : t -> unit
  val rx_packets : t -> int
  val tx_packets : t -> int
  val rx_dropped : t -> int
end

type t = T : (module S with type t = 'a) * 'a -> t

let kind (T ((module M), _)) = M.kind
let lossless (T ((module M), x)) = M.lossless x
let max_data_per_pkt (T ((module M), x)) = M.max_data_per_pkt x
let rq_size (T ((module M), x)) = M.rq_size x
let tx_burst (T ((module M), x)) pkt = M.tx_burst x pkt
let tx_pending (T ((module M), x)) = M.tx_pending x
let flush_time_ns (T ((module M), x)) = M.flush_time_ns x
let rx_burst (T ((module M), x)) ~max f = M.rx_burst x ~max f
let rx_ring_depth (T ((module M), x)) = M.rx_ring_depth x
let set_rx_notify (T ((module M), x)) f = M.set_rx_notify x f
let replenish_rx (T ((module M), x)) n = M.replenish_rx x n
let receive (T ((module M), x)) pkt = M.receive x pkt
let reset_rx (T ((module M), x)) = M.reset_rx x
let rx_packets (T ((module M), x)) = M.rx_packets x
let tx_packets (T ((module M), x)) = M.tx_packets x
let rx_dropped (T ((module M), x)) = M.rx_dropped x
