type t = {
  name : string;
  net_config : Netsim.Network.config;
  nic_config : Nic.config;
  num_hosts : int;
  mtu : int;
  wire_overhead : int;
  link_gbps : float;
  cpu_scale : float;
  bdp_bytes : int;
  rdma_delta_ns : int;
  colocation_groups : int list list;
}

(* All profiles share the per-packet wire overhead the paper implies: 32 B
   RPCs appear as 92 B packets (§6.3), i.e. 60 B of headers (16 B eRPC
   header + transport framing). *)
let wire_overhead = 60

let cx3 ?(nodes = 11) () =
  let link_gbps = 56.0 in
  {
    name = "CX3";
    net_config =
      {
        Netsim.Network.topology = Single_switch { hosts = nodes };
        link_gbps;
        cable_ns = 100;
        switch_latency_ns = 200;
        switch_buffer_bytes = 12 * 1024 * 1024;
        buffer_alpha = 8.0;
        ecn = None;
        (* CX3 is InfiniBand: link-level flow control, no congestion
           drops. *)
        lossless = true;
      };
    nic_config = { Nic.default_config with tx_latency_ns = 250; rx_latency_ns = 230; rq_size = 65536 };
    num_hosts = nodes;
    mtu = 4096;
    wire_overhead;
    link_gbps;
    cpu_scale = 1.28;
    bdp_bytes = 22 * 1024;
    rdma_delta_ns = 100;
    colocation_groups = [];
  }

let cx4 ?(nodes = 100) () =
  let link_gbps = 25.0 in
  let hosts_per_tor = (nodes + 4) / 5 in
  {
    name = "CX4";
    net_config =
      {
        Netsim.Network.topology =
          Two_tier
            { tors = 5; hosts_per_tor; spines = 1; uplinks_per_tor = 5; uplink_gbps = 100.0 };
        link_gbps;
        cable_ns = 250;
        switch_latency_ns = 300;
        switch_buffer_bytes = 12 * 1024 * 1024;
        buffer_alpha = 8.0;
        ecn = None;
        lossless = false;
      };
    (* The deterministic NIC latency is set so that, with the uniform
       [0,1us] RX jitter's 0.5us mean included, the same-ToR eRPC median
       RTT lands on the paper's 3.7us. *)
    nic_config =
      {
        Nic.default_config with
        tx_latency_ns = 200;
        rx_latency_ns = 150;
        rx_jitter_ns = 1_000;
        rq_size = 1 lsl 20;
      };
    num_hosts = nodes;
    mtu = 1024;
    wire_overhead;
    link_gbps;
    cpu_scale = 1.0;
    bdp_bytes = 19 * 1024;
    rdma_delta_ns = 200;
    colocation_groups = [];
  }

let cx5 ?(nodes = 8) () =
  let link_gbps = 40.0 in
  {
    name = "CX5";
    net_config =
      {
        Netsim.Network.topology = Single_switch { hosts = nodes };
        link_gbps;
        cable_ns = 100;
        switch_latency_ns = 300;
        switch_buffer_bytes = 16 * 1024 * 1024;
        buffer_alpha = 8.0;
        ecn = None;
        lossless = false;
      };
    nic_config =
      {
        Nic.default_config with
        tx_latency_ns = 250;
        rx_latency_ns = 65;
        rx_jitter_ns = 300;
        rq_size = 65536;
      };
    num_hosts = nodes;
    mtu = 1024;
    wire_overhead;
    link_gbps;
    cpu_scale = 0.92;
    bdp_bytes = 12 * 1024;
    rdma_delta_ns = 75;
    colocation_groups = [];
  }

let cx5_ib100 () =
  let link_gbps = 100.0 in
  {
    name = "CX5-IB100";
    net_config =
      {
        Netsim.Network.topology = Single_switch { hosts = 2 };
        link_gbps;
        cable_ns = 100;
        switch_latency_ns = 200;
        switch_buffer_bytes = 16 * 1024 * 1024;
        buffer_alpha = 8.0;
        ecn = None;
        (* The Fig 6 testbed connects two nodes over InfiniBand. *)
        lossless = true;
      };
    nic_config = { Nic.default_config with tx_latency_ns = 250; rx_latency_ns = 215; rq_size = 65536 };
    num_hosts = 2;
    mtu = 4096;
    wire_overhead;
    link_gbps;
    cpu_scale = 0.92;
    bdp_bytes = 25 * 1024;
    rdma_delta_ns = 75;
    colocation_groups = [];
  }

let build engine t = Netsim.Network.create engine t.net_config

let default_credits t = max 2 (t.bdp_bytes / t.mtu)

(* {2 Host co-location}

   A colocation group is a set of host ids modeled as processes on one
   physical machine (containers / co-scheduled microservices). The
   network topology is unchanged — grouped hosts keep their switch ports
   for remote traffic — but transports that care (Shm) can route
   intra-machine traffic over the memory interconnect instead. *)

let colocate t groups =
  let check h =
    if h < 0 || h >= t.num_hosts then
      invalid_arg (Printf.sprintf "Cluster.colocate: host %d out of range" h)
  in
  List.iter (List.iter check) groups;
  { t with colocation_groups = groups }

let machine_of t =
  let m = Array.init t.num_hosts (fun i -> i) in
  List.iter
    (fun group ->
      match group with
      | [] -> ()
      | rep :: _ -> List.iter (fun h -> m.(h) <- rep) group)
    t.colocation_groups;
  m
