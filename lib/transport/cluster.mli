(** Evaluation-cluster profiles (paper Table 1).

    A profile bundles everything that differed across the paper's testbeds:
    topology, link rate, MTU, per-packet wire overhead, NIC latencies, and a
    CPU speed scale. The three paper clusters are modeled, plus the 2-node
    100 Gbps setup used for the large-message experiment (Fig 6).

    Latency calibration: NIC TX/RX latencies and cable delays are chosen so
    that the model's base RTTs land on the paper's measured values (Table 2:
    RDMA read 1.7/2.9/2.0 µs on CX3/CX4/CX5). CPU scales are chosen so
    single-core small-RPC rates land on Fig 4. *)

type t = {
  name : string;
  net_config : Netsim.Network.config;
  nic_config : Nic.config;
  num_hosts : int;
  mtu : int;  (** max payload bytes per packet (data + eRPC header) *)
  wire_overhead : int;  (** transport framing bytes added on the wire *)
  link_gbps : float;
  cpu_scale : float;  (** multiplier on all modeled CPU costs *)
  bdp_bytes : int;  (** network bandwidth-delay product *)
  rdma_delta_ns : int;
      (** per-NIC-crossing latency advantage of the hardware RDMA path over
          eRPC's UD-verbs path; used by {!Rdma.Qp.default_config} *)
  colocation_groups : int list list;
      (** sets of host ids modeled as processes on one physical machine;
          empty in every stock profile (see {!colocate}) *)
}

(** 11 nodes, InfiniBand 56 Gbps, one switch (Emulab). *)
val cx3 : ?nodes:int -> unit -> t

(** 100 nodes, lossy Ethernet 25 Gbps, 5 ToRs + spine, 2:1 oversubscribed
    (CloudLab). The paper's primary cluster. *)
val cx4 : ?nodes:int -> unit -> t

(** 8 nodes, lossy Ethernet 40 Gbps, one switch. *)
val cx5 : ?nodes:int -> unit -> t

(** 2 nodes connected by a 100 Gbps InfiniBand switch (Fig 6 setup). *)
val cx5_ib100 : unit -> t

(** Instantiate the network fabric for a profile. *)
val build : Sim.Engine.t -> t -> Netsim.Network.t

(** Default session credit count for a profile: BDP/MTU, the paper's flow
    control rule (§4.3.1). *)
val default_credits : t -> int

(** [colocate t groups] marks each group of host ids as co-located on one
    physical machine (the network topology is unchanged; the shared-memory
    transport uses this to route intra-machine traffic off the wire).
    Raises [Invalid_argument] on out-of-range hosts. *)
val colocate : t -> int list list -> t

(** Host-to-machine map: [machine_of t] maps each host id to its group
    representative (itself when ungrouped). Two hosts are co-located iff
    their entries are equal. *)
val machine_of : t -> int array
