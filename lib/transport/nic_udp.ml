(* Lossy raw-Ethernet transport: a thin adapter over the userspace-NIC
   model. Every operation maps 1:1 onto the NIC so the datapath behaves
   exactly as it did before the transport seam existed. *)

module Impl = struct
  type t = { nic : Nic.t; mtu : int }

  let kind = "raw_eth"
  let lossless _ = false
  let max_data_per_pkt t = t.mtu
  let rq_size t = (Nic.config t.nic).Nic.rq_size
  let tx_burst t pkt = Nic.post_send t.nic pkt
  let tx_pending t = Nic.tx_pending t.nic
  let flush_time_ns t = Nic.flush_time_ns t.nic
  let rx_burst t ~max f = Nic.poll_rx t.nic ~max f
  let rx_ring_depth t = Nic.rx_ring_depth t.nic
  let set_rx_notify t f = Nic.set_rx_notify t.nic f
  let replenish_rx t n = Nic.replenish_rq t.nic n
  let receive t pkt = Nic.receive t.nic pkt
  let reset_rx t = Nic.clear_rx t.nic
  let rx_packets t = Nic.rx_packets t.nic
  let tx_packets t = Nic.tx_packets t.nic
  let rx_dropped t = Nic.rx_dropped_no_desc t.nic
end

let create engine net ~host ~mtu cfg =
  Iface.T
    ( (module Impl : Iface.S with type t = Impl.t),
      { Impl.nic = Nic.create engine net ~host cfg; mtu } )
