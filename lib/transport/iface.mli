(** The transport seam (paper §3, "transport layer").

    eRPC's portability rests on a narrow transport API: the same protocol
    and dispatch code runs over InfiniBand, RoCE and DPDK raw Ethernet
    because each datapath only has to provide packet TX/RX, a flush
    primitive, and its geometry (MTU-sized data budget per packet and the
    receive-descriptor count the credit system is sized against). [S] is
    that API; the wire protocol ({!Erpc.Proto}) is written against it
    alone and never names a concrete device.

    Implementations:
    - {!Nic_udp}: the lossy raw-Ethernet path over the userspace-NIC model
      (pre-posted RQ descriptors, drops on exhaustion, RX jitter);
    - [Rdma.Rc_transport]: the lossless RC path over the QP/connection-cache
      machinery (link-level flow control — no drops — but TX stalls on
      NIC connection-cache misses);
    - [Shm]: the intra-host shared-memory path for co-located endpoints
      (SPSC message rings over the memory interconnect, serialize-vs-share
      handoff with seal/unseal guards; muxes over a wire transport for
      remote destinations). *)

module type S = sig
  type t

  (** Short transport name for diagnostics ("raw_eth", "rdma_rc", "shm"). *)
  val kind : string

  (** True when the fabric guarantees no congestion drops (link-level flow
      control); the protocol still retransmits on corruption or failure.
      Per instance: a mux answers for the wire device it wraps. *)
  val lossless : t -> bool

  (** Maximum application payload bytes in one packet (the MTU). *)
  val max_data_per_pkt : t -> int

  (** Receive-descriptor budget: sessions are limited so that
      [sessions * credits <= rq_size] can never overflow the RQ (§4.3.1). *)
  val rq_size : t -> int

  (** Post one packet for transmission (unsignaled descriptor). *)
  val tx_burst : t -> Netsim.Packet.t -> unit

  (** TX descriptors whose DMA has not completed yet. *)
  val tx_pending : t -> int

  (** Simulated time to flush the TX DMA queue now (used on retransmission
      and node failure, §4.2.2); the caller charges it to its CPU. *)
  val flush_time_ns : t -> int

  (** Poll up to [max] packets from the RX ring, invoking the callback on
      each in FIFO order; returns the count. Callback iteration keeps the
      hot RX path list-free. *)
  val rx_burst : t -> max:int -> (Netsim.Packet.t -> unit) -> int

  val rx_ring_depth : t -> int

  (** Simulation stand-in for busy polling: invoked when a packet lands in
      an empty RX ring. *)
  val set_rx_notify : t -> (unit -> unit) -> unit

  (** Re-post [n] receive descriptors; returns the modeled CPU cost (ns). *)
  val replenish_rx : t -> int -> int

  (** Ingress from the network (the owning endpoint's flow-steering hook). *)
  val receive : t -> Netsim.Packet.t -> unit

  (** Drop the RX ring and restore full descriptor count (host restart). *)
  val reset_rx : t -> unit

  val rx_packets : t -> int
  val tx_packets : t -> int

  (** Packets dropped for want of a receive descriptor (always 0 on a
      lossless transport). *)
  val rx_dropped : t -> int
end

(** A packed transport instance: implementation module + its state. *)
type t = T : (module S with type t = 'a) * 'a -> t

(** Wrappers dispatching through the packed module. *)

val kind : t -> string
val lossless : t -> bool
val max_data_per_pkt : t -> int
val rq_size : t -> int
val tx_burst : t -> Netsim.Packet.t -> unit
val tx_pending : t -> int
val flush_time_ns : t -> int
val rx_burst : t -> max:int -> (Netsim.Packet.t -> unit) -> int
val rx_ring_depth : t -> int
val set_rx_notify : t -> (unit -> unit) -> unit
val replenish_rx : t -> int -> int
val receive : t -> Netsim.Packet.t -> unit
val reset_rx : t -> unit
val rx_packets : t -> int
val tx_packets : t -> int
val rx_dropped : t -> int
