(* Rack-partitioned cluster fabric over Sim.Partition.

   Topology: [racks] single-ToR racks, one per logical partition. Hosts
   keep their global dense ids (rack r owns hosts r*H .. r*H+H-1). Each
   partition builds a complete per-rack Netsim network whose switch also
   carries one gateway uplink port per remote rack; routes for remote
   hosts point at the gateway. A packet crossing racks therefore pays:
   source NIC + ToR cut-through + gateway uplink serialization inside the
   source partition, the inter-rack cable as the partition hop, then ToR
   cut-through + downlink serialization + cable inside the destination
   partition. The inter-rack propagation delay is exactly the PDES
   lookahead window — the physics that lets partitions run ahead of each
   other.

   What crosses the domain boundary is an immutable {!Netsim.Packet.transfer}
   snapshot; each partition rehydrates arrivals from its own packet pool
   (intrusive free-lists must stay domain-local) and injects them at its
   ToR ingress, so arrivals traverse the standard switch/downlink/fault
   pipeline of the receiving partition. *)

type t = {
  group : Netsim.Packet.transfer Sim.Partition.t;
  nets : Netsim.Network.t array;
  pools : Netsim.Packet.pool array;
  racks : int;
  hosts_per_rack : int;
  inter_rack_ns : int;
}

let default_uplink_gbps = 100.0

let create ?seed ?(config = Netsim.Network.default_config)
    ?(uplink_gbps = default_uplink_gbps) ?(inter_rack_ns = 500) ?trace_capacity
    ~racks ~hosts_per_rack () =
  if racks < 1 || hosts_per_rack < 1 then
    invalid_arg "Partitioned.create: need at least one rack and host";
  if inter_rack_ns < 1 then
    invalid_arg "Partitioned.create: inter_rack_ns must be >= 1 (lookahead)";
  let n = racks * hosts_per_rack in
  let group = Sim.Partition.create ?seed ~parts:racks () in
  (* Trace shards must exist before any component caches them (ports cache
     the engine trace at creation). *)
  (match trace_capacity with
  | Some capacity ->
      for p = 0 to racks - 1 do
        Sim.Engine.set_trace
          (Sim.Partition.engine group p)
          (Obs.Trace.create ~capacity ())
      done
  | None -> ());
  for p = 0 to racks - 1 do
    for q = 0 to racks - 1 do
      if p <> q then
        Sim.Partition.connect group ~src:p ~dst:q ~lookahead:inter_rack_ns
    done
  done;
  let nets =
    Array.init racks (fun p ->
        Netsim.Network.create
          (Sim.Partition.engine group p)
          { config with Netsim.Network.topology = Single_switch { hosts = n } })
  in
  let pools = Array.init racks (fun _ -> Netsim.Packet.create_pool ()) in
  let t = { group; nets; pools; racks; hosts_per_rack; inter_rack_ns } in
  for p = 0 to racks - 1 do
    let engine = Sim.Partition.engine group p in
    let sw =
      match Netsim.Network.switches nets.(p) with
      | [ sw ] -> sw
      | _ -> assert false
    in
    for q = 0 to racks - 1 do
      if q <> p then begin
        (* Gateway sink fires after uplink serialization; the inter-rack
           cable is modeled as the partition hop itself, so the arrival
           timestamp meets the lookahead bound with equality. *)
        let gw =
          Netsim.Port.create engine
            ~name:(Printf.sprintf "gw%d->%d" p q)
            ~rate_gbps:uplink_gbps ~extra_delay_ns:0
            ~pool:(Netsim.Switch.pool sw) ?ecn:config.Netsim.Network.ecn
            ~lossless:config.Netsim.Network.lossless
            ~sink:(fun pkt ->
              let ts = Sim.Engine.now engine + inter_rack_ns in
              Sim.Partition.send group ~src:p ~dst:q ~ts
                (Netsim.Packet.to_transfer pkt);
              Netsim.Packet.free pkt)
            ()
        in
        let idx = Netsim.Switch.add_port sw gw in
        for j = 0 to hosts_per_rack - 1 do
          Netsim.Switch.set_route sw
            ~dst:((q * hosts_per_rack) + j)
            ~ports:[| idx |]
        done
      end
    done;
    Sim.Partition.on_receive group p (fun ~ts:_ ~src:_ x ->
        Netsim.Switch.receive sw (Netsim.Packet.of_transfer pools.(p) x))
  done;
  t

let group t = t.group
let num_hosts t = t.racks * t.hosts_per_rack
let racks t = t.racks
let hosts_per_rack t = t.hosts_per_rack
let inter_rack_ns t = t.inter_rack_ns
let rack_of t host = host / t.hosts_per_rack
let engine t p = Sim.Partition.engine t.group p
let net t p = t.nets.(p)

let attach t ~host ~rx =
  Netsim.Network.attach t.nets.(rack_of t host) ~host ~rx

let send t pkt =
  Netsim.Network.send t.nets.(rack_of t pkt.Netsim.Packet.src) pkt

let run ?domains ~horizon t = Sim.Partition.run ?domains ~horizon t.group
let events_processed t = Sim.Partition.events_processed t.group
let part_events t p = Sim.Partition.part_events t.group p
let messages_delivered t = Sim.Partition.messages_delivered t.group
let trace t p = Sim.Engine.trace (Sim.Partition.engine t.group p)

let merged_digest t =
  Obs.Trace.merged_digest (List.init t.racks (fun p -> trace t p))
