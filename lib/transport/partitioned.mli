(** Rack-partitioned cluster fabric: one {!Sim.Partition} logical
    partition per rack, each with its own engine, Netsim network, RNG
    stream, trace shard and packet pool. Hosts keep global dense ids
    (rack [r] owns [r*H .. r*H+H-1]); cross-rack packets leave through a
    gateway uplink port on the source ToR, cross the domain boundary as
    immutable {!Netsim.Packet.transfer} snapshots, and re-enter at the
    destination ToR's ingress. The inter-rack propagation delay is the
    PDES lookahead window. *)

type t

val create :
  ?seed:int64 ->
  ?config:Netsim.Network.config ->
  ?uplink_gbps:float ->
  ?inter_rack_ns:int ->
  ?trace_capacity:int ->
  racks:int ->
  hosts_per_rack:int ->
  unit ->
  t
(** [config] parameterizes each per-rack network (its topology field is
    overridden); [inter_rack_ns] (default 500) is both the inter-rack
    cable delay and the conservative-sync lookahead. [trace_capacity]
    installs a per-partition trace shard of that capacity on every engine
    before any component is built. *)

val group : t -> Netsim.Packet.transfer Sim.Partition.t
val num_hosts : t -> int
val racks : t -> int
val hosts_per_rack : t -> int
val inter_rack_ns : t -> int
val rack_of : t -> int -> int
val engine : t -> int -> Sim.Engine.t
(** Rack [p]'s engine — install trace shards here before building hosts. *)

val net : t -> int -> Netsim.Network.t
(** Rack [p]'s network (fault hooks, stats). *)

val attach : t -> host:int -> rx:(Netsim.Packet.t -> unit) -> unit
(** Register [host]'s RX on its owning rack's network. *)

val send : t -> Netsim.Packet.t -> unit
(** Inject at [pkt.src]'s NIC. Call only from the owning rack's domain
    (its handlers and events). *)

val run : ?domains:int -> horizon:Sim.Time.t -> t -> unit
val events_processed : t -> int
val part_events : t -> int -> int
val messages_delivered : t -> int

val trace : t -> int -> Obs.Trace.t
(** Rack [p]'s trace shard. *)

val merged_digest : t -> string
(** {!Obs.Trace.merged_digest} over all shards in rack order — the
    domain-count-invariant identity of the run. *)
