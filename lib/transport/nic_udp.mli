(** Lossy raw-Ethernet transport ({!Iface.S} over the {!Nic} model).

    The paper's DPDK-style datapath: pre-posted receive descriptors that
    drop packets when exhausted, bounded RX jitter, unsignaled TX with an
    explicit flush. [mtu] is the data budget per packet; [cfg] the NIC
    timing/queue geometry (usually the cluster profile's, with the
    multi-packet-RQ optimization toggled by the eRPC config). *)

val create :
  Sim.Engine.t -> Netsim.Network.t -> host:int -> mtu:int -> Nic.config -> Iface.t
