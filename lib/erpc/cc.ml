type t = Timely_cc of Timely.t | Dcqcn_cc of Dcqcn.t

let create ?phase (cc : Config.cc) ~link_gbps =
  match cc.algo with
  | Config.Timely -> Timely_cc (Timely.create ?phase cc ~link_gbps)
  | Config.Dcqcn -> Dcqcn_cc (Dcqcn.create cc ~link_gbps)

let rate_bps = function
  | Timely_cc t -> Timely.rate_bps t
  | Dcqcn_cc d -> Dcqcn.rate_bps d

let uncongested = function
  | Timely_cc t -> Timely.uncongested t
  | Dcqcn_cc d -> Dcqcn.uncongested d

(* Both arms receive the complete acknowledgement signal — RTT, ECN mark
   and timestamp — even though Timely's rate computation uses only the RTT
   and DCQCN's only the mark: an algorithm swapped in behind this seam
   gets full signal without touching the datapath. *)
let on_sample t ~rtt_ns ~marked ~now_ns =
  match t with
  | Timely_cc tl -> Timely.update ~marked ~now_ns tl ~sample_rtt_ns:rtt_ns
  | Dcqcn_cc d -> Dcqcn.on_ack ~rtt_ns d ~marked ~now_ns

let pacing_delay_ns t ~bytes =
  match t with
  | Timely_cc tl -> Timely.pacing_delay_ns tl ~bytes
  | Dcqcn_cc d -> Dcqcn.pacing_delay_ns d ~bytes

let bypassable t ~rtt_ns ~marked ~t_low_ns =
  match t with
  | Timely_cc tl -> Timely.uncongested tl && rtt_ns < t_low_ns
  | Dcqcn_cc d -> Dcqcn.uncongested d && not marked

let updates = function
  | Timely_cc t -> Timely.updates t
  | Dcqcn_cc d -> Dcqcn.cuts d
