(** DCQCN: ECN-based rate control (Zhu et al., SIGCOMM '15).

    The paper could not evaluate DCQCN because none of its clusters
    performed ECN marking (§5.2.1) — eRPC only "includes the hooks" for
    it. Our simulated switches do mark ECN, so this reproduction also
    provides the DCQCN reaction-point algorithm and the Timely-vs-DCQCN
    comparison the paper leaves open.

    Reaction-point state machine (per session, at the client):
    - on a congestion notification (an ECN-echoed packet, rate-limited to
      one cut per [cnp_interval]): target <- current,
      current <- current * (1 - alpha/2), alpha <- (1-g) alpha + g;
    - alpha decays by (1-g) every [alpha_timer] without notifications;
    - rate recovery every [increase_timer]: [fast_recovery] rounds of
      current <- (target+current)/2, then additive target += rai. *)

type t

val create : Config.cc -> link_gbps:float -> t

val rate_bps : t -> float
val uncongested : t -> bool

(** Process one acknowledgement-carrying packet at time [now_ns];
    [marked] is true when the packet (or the data packet it acknowledges)
    carried an ECN mark. [rtt_ns] is the acknowledgement's RTT sample —
    unused by DCQCN's rate computation but recorded so both controller
    arms receive the complete signal. *)
val on_ack : ?rtt_ns:int -> t -> marked:bool -> now_ns:Sim.Time.t -> unit

(** Most recent RTT sample fed through {!on_ack} (signal recorded, not
    acted on). *)
val last_rtt_ns : t -> int

val pacing_delay_ns : t -> bytes:int -> int

(** Rate cuts performed (for tests/stats). *)
val cuts : t -> int
