type t = {
  engine : Sim.Engine.t;
  cluster : Transport.Cluster.t;
  net : Netsim.Network.t;
  cfg : Config.t;
  cost : Cost_model.t;
  sm_sinks : (int * int, Sm.msg -> unit) Hashtbl.t;
  dead_hosts : (int, unit) Hashtbl.t;
  mutable failure_watchers : (int -> unit) list;
  mutable kill_watchers : (int -> unit) list;
  mutable restart_watchers : (int -> unit) list;
  mutable next_session_token : int;
  machine : int array;  (* host -> machine representative (co-location) *)
  shm_hub : Shm.hub;
}

(* The shared-memory transport lives below the eRPC packet-body type, so
   the fabric supplies the two packet accessors its ring path needs. *)
let shm_hooks =
  {
    Shm.view =
      (fun pkt ->
        match pkt.Netsim.Packet.body with
        | Wire.Pkt r ->
            Some { Shm.dst_rpc = r.dst_rpc; data = r.data; off = r.off; len = r.len }
        | _ -> None);
    set_payload =
      (fun pkt b ->
        match pkt.Netsim.Packet.body with
        | Wire.Pkt r ->
            r.data <- b;
            r.off <- 0;
            r.len <- Bytes.length b
        | _ -> ());
  }

let create ?(seed = 42L) ?config ?cost ?trace cluster =
  let engine = Sim.Engine.create ~seed () in
  (* The trace must be installed before any component is built: ports, NICs
     and Rpcs cache [Engine.trace] at creation time. *)
  (match trace with Some tr -> Sim.Engine.set_trace engine tr | None -> ());
  let net = Transport.Cluster.build engine cluster in
  let cfg = match config with Some c -> c | None -> Config.of_cluster cluster in
  let cost = match cost with Some c -> c | None -> Cost_model.for_cluster cluster in
  let t =
    {
      engine;
      cluster;
      net;
      cfg;
      cost;
      sm_sinks = Hashtbl.create 64;
      dead_hosts = Hashtbl.create 8;
      failure_watchers = [];
      kill_watchers = [];
      restart_watchers = [];
      next_session_token = 1;
      machine = Transport.Cluster.machine_of cluster;
      shm_hub = Shm.create_hub ~hooks:shm_hooks ();
    }
  in
  (* Ring deliveries into a dead host vanish, mirroring the network's
     dead-host gating in {!Nexus}. *)
  Shm.set_alive t.shm_hub (fun host -> not (Hashtbl.mem t.dead_hosts host));
  t

(* Session tokens are unique fabric-wide and never reused, even across
   crash-restart cycles of a host (real eRPC's uniqueness token). A
   restarted Rpc reuses session *numbers* from zero; the token is what
   lets the data plane tell a new session apart from a stale peer still
   addressing the old one. *)
let fresh_session_token t =
  let tok = t.next_session_token in
  t.next_session_token <- tok + 1;
  tok

let engine t = t.engine
let cluster t = t.cluster
let net t = t.net
let config t = t.cfg
let cost t = t.cost
let shm_hub t = t.shm_hub
let colocated t a b = t.machine.(a) = t.machine.(b)

let register_sm t ~host ~rpc_id sink =
  if Hashtbl.mem t.sm_sinks (host, rpc_id) then
    invalid_arg (Printf.sprintf "Fabric: duplicate Rpc id %d on host %d" rpc_id host);
  Hashtbl.replace t.sm_sinks (host, rpc_id) sink

let host_dead t host = Hashtbl.mem t.dead_hosts host

let send_sm t ~dst_host ~dst_rpc msg =
  Sim.Engine.schedule_after t.engine t.cfg.sm_latency_ns (fun () ->
      if not (host_dead t dst_host) then
        match Hashtbl.find_opt t.sm_sinks (dst_host, dst_rpc) with
        | Some sink -> sink msg
        | None -> ())

let on_host_failure t f = t.failure_watchers <- f :: t.failure_watchers
let on_host_killed t f = t.kill_watchers <- f :: t.kill_watchers
let on_host_restart t f = t.restart_watchers <- f :: t.restart_watchers

let kill_host t host =
  if not (host_dead t host) then begin
    Hashtbl.replace t.dead_hosts host ();
    List.iter (fun f -> f host) t.kill_watchers;
    Sim.Engine.schedule_after t.engine t.cfg.sm_failure_timeout_ns (fun () ->
        List.iter (fun f -> f host) t.failure_watchers)
  end

let crash_host t host ~down_ns =
  if down_ns <= 0 then invalid_arg "Fabric.crash_host: down_ns must be positive";
  if not (host_dead t host) then begin
    Hashtbl.replace t.dead_hosts host ();
    List.iter (fun f -> f host) t.kill_watchers;
    (* Failure detection only fires if the host is still down when the
       management plane's timeout expires — a fast restart goes unnoticed by
       peers, exactly the case bounded retransmission must cover. *)
    Sim.Engine.schedule_after t.engine t.cfg.sm_failure_timeout_ns (fun () ->
        if host_dead t host then List.iter (fun f -> f host) t.failure_watchers);
    Sim.Engine.schedule_after t.engine down_ns (fun () ->
        if host_dead t host then begin
          Hashtbl.remove t.dead_hosts host;
          List.iter (fun f -> f host) t.restart_watchers
        end)
  end
