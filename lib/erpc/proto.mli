(** The wire-protocol core (paper §4): the client-driven request/response
    state machine — request slots, session credits, go-back-N
    retransmission with TX flush, CR/RFR control packets, at-most-once
    delivery — written against the {!Transport.Iface} signature alone.

    Invariants this seam guarantees:
    - the protocol never names a concrete device: every datapath operation
      (TX, flush cost, RQ geometry) goes through the transport value;
    - the protocol never schedules CPU work or runs handlers itself: the
      dispatch loop, timestamp batching, congestion control, the Carousel
      rate limiter and handler invocation are reached only through the
      [env] closures, so {!Rpc} keeps full control of charging order;
    - msgbuf ownership transfers exactly as in the monolithic
      implementation (returned to the application when the continuation
      runs, flushed from the DMA queue on retransmission). *)

type t

(** Capabilities the protocol borrows from the owning {!Rpc} endpoint. *)
type env = {
  ch : int -> unit;
      (** Charge scaled CPU nanoseconds to the dispatch timeline. *)
  charge_memcpy : int -> unit;  (** Charge a copy of [len] bytes. *)
  now_ts : unit -> Sim.Time.t;
      (** Timestamp under the endpoint's batching policy (§5.2.2). *)
  cpu_time : unit -> Sim.Time.t;
      (** [max(now, dispatch-CPU free time)]: when serial CPU work charged
          so far would actually finish. Used to place completion
          milestones after typed-codec charges. *)
  cc_sample : Session.session -> sample_rtt_ns:int -> marked:bool -> unit;
      (** Feed one RTT/ECN sample to the session's rate controller. *)
  transmit :
    Session.sslot ->
    Netsim.Packet.t ->
    wire_bytes:int ->
    tx_item:int ->
    is_retx:bool ->
    unit;
      (** Client-side transmission honoring the Carousel rate limiter. *)
  post : Netsim.Packet.t -> unit;
      (** Direct (uncontrolled) transmission — the server direction. *)
  wake : unit -> unit;  (** Schedule an event-loop activation. *)
  alive : unit -> bool;  (** False once the host is dead. *)
  rtt_sample : int -> unit;  (** Per-packet RTT probe (§6.5). *)
  zero_copy_dispatch : int -> bool;
      (** True when [req_type] has a dispatch-mode handler, enabling
          zero-copy RX (§4.2.3). *)
  invoke : Session.session -> Session.sslot -> Session.server_info -> int -> unit;
      (** Run the request handler for a fully received request. *)
}

val create :
  env:env ->
  engine:Sim.Engine.t ->
  host:int ->
  cfg:Config.t ->
  cost:Cost_model.t ->
  transport:Transport.Iface.t ->
  stats:Rpc_stats.t ->
  tid:int ->
  t
(** [tid] is the owning endpoint's trace thread track (from
    [Obs.Trace.register_track]; 0 when tracing is disabled). *)

(** {2 Datapath} *)

(** Demultiplex one received packet (checksum verify, session/slot lookup,
    client/server RX state machines). *)
val rx_pkt : t -> Netsim.Packet.t -> unit

(** Process every retransmission queued by RTO timers. *)
val drain_retx : t -> unit

(** One TX burst: service up to [Config.tx_batch] packets from the
    transmission queue. *)
val run_tx_burst : t -> unit

(** Work remains in the TX or retransmission queue. *)
val has_pending_tx : t -> bool

(** {2 Requests and responses} *)

val enqueue_request :
  t ->
  Session.session ->
  req_type:int ->
  req:Msgbuf.t ->
  resp:Msgbuf.t ->
  cont:((unit, Err.t) result -> unit) ->
  unit

(** As [enqueue_request], with a completion hook that runs on success just
    before [cont], with the filled response msgbuf — see
    {!Session.req_args}. *)
val enqueue_request_hooked :
  t ->
  Session.session ->
  req_type:int ->
  req:Msgbuf.t ->
  resp:Msgbuf.t ->
  on_complete:(Msgbuf.t -> unit) ->
  cont:((unit, Err.t) result -> unit) ->
  unit

(** Complete a server handler: store the response buffer and send response
    packet 0 (with the deferred ECN echo). *)
val enqueue_response :
  t -> Session.session -> Session.sslot -> Session.server_info -> Msgbuf.t -> unit

(** Admit backlogged requests of [sess] into free slots. *)
val admit_backlog : t -> Session.session -> unit

(** Fail every in-flight and backlogged request of the session, returning
    msgbufs and restoring the credit accounting. *)
val fail_pending_requests : Session.session -> Err.t -> unit

(** {2 Session table} *)

val n_sessions : t -> int
val add_session : t -> Session.session -> unit
val get_session : t -> int -> Session.session option
val remove_session : t -> int -> unit
val iter_sessions : t -> (Session.session -> unit) -> unit
val fresh_sn : t -> int

(** Armed RTO timers across all sessions (zero once quiesced). *)
val armed_rto_count : t -> int

(** Rate updates performed across all session controllers. *)
val cc_updates : t -> int

(** Drop all protocol state on a local host crash. *)
val clear_on_crash : t -> unit
