type t = {
  mutable rx_pkts : int;
  mutable tx_pkts : int;
  mutable rx_corrupt : int;
  mutable rx_stale : int;
  mutable retransmits : int;
  mutable retx_warnings : int;
  mutable session_resets : int;
  mutable completed : int;
  mutable handled : int;
  mutable wheel_inserts : int;
}

let create () =
  {
    rx_pkts = 0;
    tx_pkts = 0;
    rx_corrupt = 0;
    rx_stale = 0;
    retransmits = 0;
    retx_warnings = 0;
    session_resets = 0;
    completed = 0;
    handled = 0;
    wheel_inserts = 0;
  }

let pp fmt t =
  Format.fprintf fmt
    "rx=%d tx=%d corrupt=%d stale=%d retx=%d retx_warn=%d resets=%d completed=%d handled=%d \
     wheel=%d"
    t.rx_pkts t.tx_pkts t.rx_corrupt t.rx_stale t.retransmits t.retx_warnings t.session_resets
    t.completed t.handled t.wheel_inserts
