type t = {
  req_type : int;
  req : Msgbuf.t;
  mutable resp : Msgbuf.t option;
  mutable responded : bool;
  mutable charge_fn : int -> unit;
  mutable init_resp_fn : int -> Msgbuf.t;
  mutable enqueue_fn : t -> Msgbuf.t -> unit;
  mutable codec_mode_fn : unit -> Codec.backend * bool;
  mutable codec_charge_fn : deser:bool -> backend:Codec.backend -> leaves:int -> bytes:int -> unit;
}

let get_request t = t.req

let charge t ns = t.charge_fn ns

let codec_mode t = t.codec_mode_fn ()

let charge_codec t ~deser ~backend ~leaves ~bytes =
  t.codec_charge_fn ~deser ~backend ~leaves ~bytes

let init_response t ~size = t.init_resp_fn size

let enqueue_response t resp =
  if t.responded then invalid_arg "Req_handle.enqueue_response: already responded";
  t.responded <- true;
  t.enqueue_fn t resp

let make ~req_type ~req =
  {
    req_type;
    req;
    resp = None;
    responded = false;
    charge_fn = (fun _ -> ());
    init_resp_fn = (fun size -> Msgbuf.alloc ~max_size:size);
    enqueue_fn = (fun _ _ -> invalid_arg "Req_handle: enqueue_fn not installed");
    codec_mode_fn = (fun () -> (Codec.Compact, false));
    codec_charge_fn = (fun ~deser:_ ~backend:_ ~leaves:_ ~bytes:_ -> ());
  }
