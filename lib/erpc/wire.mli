(** eRPC's on-wire packet format over the datagram network.

    [dst_rpc] plays the role of the UDP destination port used for NIC flow
    steering to the right Rpc's receive queue. Data packets carry a
    zero-copy [(data, off, len)] slice of the sender's msgbuf (the "DMA
    read" references the buffer in place); control packets (CR/RFR) carry
    none. Corruption injected in flight is modeled as a per-frame error
    flag ({!Netsim.Packet.t.corrupted}) rather than real bit flips, since
    flipping shared payload bytes would corrupt the sender's memory; the
    observable behavior — the receiver's checksum verification fails and
    the packet is dropped — is identical. *)

type Netsim.Packet.body +=
  | Pkt of {
      mutable dst_rpc : int;
      mutable hdr : Pkthdr.t;
      mutable data : bytes;  (** payload backing store (sender's msgbuf) *)
      mutable off : int;
      mutable len : int;
    }  (** Fields are mutable so pooled packets are rewritten in place. *)

(** Per-endpoint free-list of recycled wire packets. In steady state
    {!make} with a pool allocates nothing: the packet record and its [Pkt]
    body are reused. *)
type pool

val create_pool : unit -> pool

(** Pool-allocated packets currently in flight (diagnostics). *)
val pool_outstanding : pool -> int

(** Packets served from the free-list so far (diagnostics). *)
val pool_recycled : pool -> int

(** Build a wire packet. [payload], when given, is referenced as a
    [(bytes, off, len)] slice — never copied. The wire size is the payload
    length plus [wire_overhead]. With [?pool], the record is drawn from
    the free-list when possible and returns to it on {!Netsim.Packet.free}. *)
val make :
  ?pool:pool ->
  src_host:int ->
  dst_host:int ->
  dst_rpc:int ->
  wire_overhead:int ->
  flow:int ->
  hdr:Pkthdr.t ->
  ?payload:bytes * int * int ->
  unit ->
  Netsim.Packet.t

(** Wire-checksum verification: [false] for packets mangled in flight. *)
val verify : Netsim.Packet.t -> bool

(** Corrupt the frame so checksum verification fails. [bit] is accepted
    for injector compatibility; which bit flips does not change the
    modeled outcome. This is the corrupter the fault injector installs via
    {!Netsim.Network.set_corrupter}. *)
val corrupt : ?bit:int -> Netsim.Packet.t -> unit

(** Flow-hash for ECMP: all packets of a session take one path. *)
val flow_hash : src_host:int -> dst_host:int -> sn:int -> int
