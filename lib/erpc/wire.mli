(** eRPC's on-wire packet format over the datagram network.

    [dst_rpc] plays the role of the UDP destination port used for NIC flow
    steering to the right Rpc's receive queue. Data packets carry a copy of
    the payload chunk (the "DMA read" happens at packet construction);
    control packets (CR/RFR) carry none. *)

type Netsim.Packet.body +=
  | Pkt of { dst_rpc : int; hdr : Pkthdr.t; data : bytes; csum : int }
        (** [csum] is the wire checksum stamped at construction
            ({!Pkthdr.checksum} over header and payload). *)

(** Build a wire packet. [payload], when given, is copied out of
    [(bytes, off, len)]. The wire size is the payload length plus
    [wire_overhead]. *)
val make :
  src_host:int ->
  dst_host:int ->
  dst_rpc:int ->
  wire_overhead:int ->
  flow:int ->
  hdr:Pkthdr.t ->
  ?payload:bytes * int * int ->
  unit ->
  Netsim.Packet.t

(** Recompute the checksum and compare with the stamped one; [false] for
    packets mangled in flight (payload bit flips or the
    {!Netsim.Packet.t.corrupted} header-corruption flag). Non-eRPC bodies
    verify trivially. *)
val verify : Netsim.Packet.t -> bool

(** Flip payload bit [bit] (default 0; wraps modulo the payload length), or
    mark header corruption on payload-less packets. This is the
    payload-aware corrupter the fault injector installs via
    {!Netsim.Network.set_corrupter}. *)
val corrupt : ?bit:int -> Netsim.Packet.t -> unit

(** Flow-hash for ECMP: all packets of a session take one path. *)
val flow_hash : src_host:int -> dst_host:int -> sn:int -> int
