(** Per-endpoint datapath counters, shared by the {!Proto} wire-protocol
    core and the {!Rpc} dispatch layer and read live through
    {!Rpc.stats}. One record replaces the former fifteen [stat_*]
    accessors; fields keep counting monotonically for the lifetime of the
    endpoint. *)

type t = {
  mutable rx_pkts : int;  (** packets polled off the transport *)
  mutable tx_pkts : int;  (** packets posted to the transport *)
  mutable rx_corrupt : int;  (** packets dropped for checksum failure *)
  mutable rx_stale : int;
      (** packets dropped for a session-token mismatch (stale traffic
          addressed to a recycled session number) *)
  mutable retransmits : int;  (** go-back-N rollbacks performed (§5.3) *)
  mutable retx_warnings : int;
      (** times a slot's consecutive-RTO count crossed half the
          [Config.max_retransmits] budget — early warning that a peer is
          close to being declared unreachable *)
  mutable session_resets : int;
      (** sessions reset after [max_retransmits] consecutive RTOs (§4.3) *)
  mutable completed : int;  (** client RPCs completed *)
  mutable handled : int;  (** server requests handled *)
  mutable wheel_inserts : int;  (** packets paced through the Carousel wheel *)
}

val create : unit -> t
val pp : Format.formatter -> t -> unit
