type t = {
  cc : Config.cc;
  max_rate_bps : float;
  mutable rc : float;  (* current rate *)
  mutable rt : float;  (* target rate *)
  mutable alpha : float;
  mutable last_cut : Sim.Time.t;
  mutable last_alpha_update : Sim.Time.t;
  mutable last_increase : Sim.Time.t;
  mutable recovery_rounds : int;  (* increase steps since the last cut *)
  mutable cuts : int;
  mutable last_rtt_ns : int;
}

let create cc ~link_gbps =
  let max_rate = link_gbps *. 1e9 in
  {
    cc;
    max_rate_bps = max_rate;
    rc = max_rate;
    rt = max_rate;
    alpha = 0.2;
    last_cut = Sim.Time.zero;
    last_alpha_update = Sim.Time.zero;
    last_increase = Sim.Time.zero;
    recovery_rounds = 0;
    cuts = 0;
    last_rtt_ns = 0;
  }

let rate_bps t = t.rc
let uncongested t = t.rc >= t.max_rate_bps
let cuts t = t.cuts

let clamp t r = Float.min t.max_rate_bps (Float.max t.cc.min_rate_bps r)

let cut t now =
  t.cuts <- t.cuts + 1;
  t.rt <- t.rc;
  t.rc <- clamp t (t.rc *. (1. -. (t.alpha /. 2.)));
  t.alpha <- ((1. -. t.cc.dcqcn_g) *. t.alpha) +. t.cc.dcqcn_g;
  t.recovery_rounds <- 0;
  t.last_cut <- now;
  t.last_alpha_update <- now;
  t.last_increase <- now

let increase t now =
  t.recovery_rounds <- t.recovery_rounds + 1;
  if t.recovery_rounds > t.cc.dcqcn_fast_recovery then
    (* Additive increase stage: push the target up, then converge. *)
    t.rt <- clamp t (t.rt +. t.cc.dcqcn_rai_bps);
  t.rc <- clamp t ((t.rt +. t.rc) /. 2.);
  t.last_increase <- now

(* DCQCN reacts only to ECN, but the RTT rides along so the reaction
   point sees the complete acknowledgement signal (and a future hybrid
   algorithm needs no datapath change). *)
let on_ack ?(rtt_ns = 0) t ~marked ~now_ns =
  if rtt_ns > 0 then t.last_rtt_ns <- rtt_ns;
  if marked then begin
    if Sim.Time.sub now_ns t.last_cut >= t.cc.dcqcn_cnp_interval_ns then cut t now_ns
  end
  else begin
    (* Alpha decays while no congestion notifications arrive. *)
    if Sim.Time.sub now_ns t.last_alpha_update >= t.cc.dcqcn_alpha_timer_ns then begin
      t.alpha <- (1. -. t.cc.dcqcn_g) *. t.alpha;
      t.last_alpha_update <- now_ns
    end;
    if
      t.rc < t.max_rate_bps
      && Sim.Time.sub now_ns t.last_increase >= t.cc.dcqcn_increase_timer_ns
    then increase t now_ns
  end

let pacing_delay_ns t ~bytes =
  int_of_float (ceil (float_of_int (bytes * 8) /. t.rc *. 1e9))

let last_rtt_ns t = t.last_rtt_ns
