open Session

(* The client-driven wire protocol (paper §4): request slots, session
   credits, go-back-N retransmission, CR/RFR control packets and
   at-most-once delivery. This module is written against the
   [Transport.Iface] signature alone — it never names a concrete device —
   and reaches the pieces that stay in {!Rpc} (dispatch-thread charging,
   timestamp batching, congestion control, the Carousel rate limiter and
   handler invocation) through the [env] closures. *)

type env = {
  ch : int -> unit;
  charge_memcpy : int -> unit;
  now_ts : unit -> Sim.Time.t;
  cpu_time : unit -> Sim.Time.t;
      (* max(now, dispatch CPU free time): where serial CPU work just
         charged would actually finish *)
  cc_sample : session -> sample_rtt_ns:int -> marked:bool -> unit;
  transmit :
    sslot -> Netsim.Packet.t -> wire_bytes:int -> tx_item:int -> is_retx:bool -> unit;
  post : Netsim.Packet.t -> unit;
  wake : unit -> unit;
  alive : unit -> bool;
  rtt_sample : int -> unit;
  zero_copy_dispatch : int -> bool;
  invoke : session -> sslot -> server_info -> int -> unit;
}

type t = {
  env : env;
  engine : Sim.Engine.t;
  host : int;
  cfg : Config.t;
  cost : Cost_model.t;
  transport : Transport.Iface.t;
  stats : Rpc_stats.t;
  pool : Wire.pool;  (* free-list of recycled TX packet records *)
  mutable sessions : session option array;
  mutable n_sessions : int;
  mutable sn_hint : int;
      (* every index < sn_hint is occupied, so [fresh_sn] scans from here;
         keeps opening N sessions O(N) instead of O(N^2) *)
  txq : sslot Queue.t;
  retxq : sslot Queue.t;
  trace : Obs.Trace.t;
  pid : int;
  tid : int;  (* the owning endpoint's thread track *)
}

let create ~env ~engine ~host ~cfg ~cost ~transport ~stats ~tid =
  {
    env;
    engine;
    host;
    cfg;
    cost;
    transport;
    stats;
    pool = Wire.create_pool ();
    sessions = Array.make 4 None;
    n_sessions = 0;
    sn_hint = 0;
    txq = Queue.create ();
    retxq = Queue.create ();
    trace = Sim.Engine.trace engine;
    pid = Obs.Trace.host_pid host;
    tid;
  }

(* {2 Trace hooks (observe-only; call sites guard on [Obs.Trace.enabled])} *)

(* Packet-kind codes carried in "pkt info" events; must match
   [Obs.Anatomy.kind_req]/[kind_resp]. *)
let pkt_kind_code = function
  | Pkthdr.Req -> 0
  | Pkthdr.Resp -> 1
  | Pkthdr.Cr -> 2
  | Pkthdr.Rfr -> 3

(* Stamp an outgoing packet with a trace id and emit its description once;
   NIC, port and delivery events reference only the id. [ssn] is the
   sender's local session number, [hdr.dest_session] the receiver's. *)
let tag_pkt t ~ssn pkt =
  match pkt.Netsim.Packet.body with
  | Wire.Pkt { hdr; _ } ->
      let id = Obs.Trace.fresh_id t.trace in
      pkt.Netsim.Packet.trace_id <- id;
      Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"pkt"
        ~name:"info" ~pid:t.pid ~tid:t.tid
        [
          ("id", Obs.Trace.I id);
          ("kind", Obs.Trace.I (pkt_kind_code hdr.Pkthdr.pkt_type));
          ("num", Obs.Trace.I hdr.Pkthdr.pkt_num);
          ("req", Obs.Trace.I hdr.Pkthdr.req_num);
          ("src", Obs.Trace.I t.host);
          ("dst", Obs.Trace.I pkt.Netsim.Packet.dst);
          ("ssn", Obs.Trace.I ssn);
          ("dsn", Obs.Trace.I hdr.Pkthdr.dest_session);
          ("size", Obs.Trace.I pkt.Netsim.Packet.size_bytes);
        ]
  | _ -> ()

let trace_sslot ?ts t ~name ~sn ~req extra =
  let ts = match ts with Some ts -> ts | None -> Sim.Engine.now t.engine in
  Obs.Trace.instant t.trace ~ts ~cat:"sslot" ~name ~pid:t.pid ~tid:t.tid
    (("sn", Obs.Trace.I sn) :: ("req", Obs.Trace.I req) :: extra)

let disarm_rto slot =
  match slot.rto with Some timer -> Sim.Timer.disarm timer | None -> ()

(* Fail every in-flight and backlogged request of [sess] with [err]:
   timers are disarmed, rate-limiter references dropped, msgbufs returned
   to the application, and the session's credits restored to their limit
   (the session is unusable afterward, so its accounting must balance). *)
let fail_pending_requests sess err =
  Array.iter
    (fun s ->
      match s with
      | Some ({ busy = true; args = Some args; _ } as slot) when sess.role = Client ->
          disarm_rto slot;
          (match slot.cli with
          | Some c ->
              c.wheel_refs <- 0;
              c.retx_in_wheel <- false;
              c.consec_retx <- 0
          | None -> ());
          slot.busy <- false;
          slot.args <- None;
          Msgbuf.return_to_app args.req;
          Msgbuf.return_to_app args.resp;
          args.cont (Stdlib.Error err)
      | _ -> ())
    sess.slots;
  Queue.iter
    (fun args ->
      Msgbuf.return_to_app args.req;
      Msgbuf.return_to_app args.resp;
      args.cont (Stdlib.Error err))
    sess.backlog;
  Queue.clear sess.backlog;
  Queue.iter (fun waiter -> waiter.in_credit_waitq <- false) sess.credit_waiters;
  Queue.clear sess.credit_waiters;
  sess.credits <- sess.credit_limit

(* Session reset (§4.3): entered after [max_retransmits] consecutive RTOs
   without progress. In-flight slots complete with [Err.Peer_unreachable],
   RTO timers are disarmed and msgbufs reclaimed; the session cannot be
   used again. *)
let reset_session t sess =
  t.stats.Rpc_stats.session_resets <- t.stats.Rpc_stats.session_resets + 1;
  if Obs.Trace.enabled t.trace then
    trace_sslot t ~name:"session_reset" ~sn:sess.sn ~req:(-1) [];
  sess.state <- Error "peer unreachable";
  fail_pending_requests sess Err.Peer_unreachable

(* {2 Client TX path} *)

let rec push_txq t slot =
  if not slot.in_txq then begin
    slot.in_txq <- true;
    Queue.add slot t.txq
  end

and client_next_item_ready (cli : client_info) =
  let k = cli.num_tx in
  if k < cli.n_req_pkts then true
  else
    cli.n_resp_pkts > 0
    && k < cli.n_req_pkts + cli.n_resp_pkts - 1
    && cli.num_rx >= cli.n_req_pkts

and service_slot_tx t slot budget =
  let sess = slot.session in
  if sess.state = Connected && slot.busy then begin
    match (slot.args, slot.cli) with
    | Some args, Some cli ->
        let continue = ref true in
        while !continue && !budget > 0 && sess.credits > 0 && client_next_item_ready cli do
          send_tx_item t slot args cli;
          decr budget
        done;
        if client_next_item_ready cli then
          if sess.credits = 0 then begin
            (* Blocked on credits: park until a CR/response returns one,
               so other slots of the session are not starved. *)
            if not slot.in_credit_waitq then begin
              slot.in_credit_waitq <- true;
              Queue.add slot sess.credit_waiters
            end
          end
          else if !budget = 0 then push_txq t slot
    | _ -> ()
  end

and send_tx_item t slot args cli =
  let sess = slot.session in
  let k = cli.num_tx in
  let stamp = t.env.now_ts () in
  cli.tx_ts.(k mod Array.length cli.tx_ts) <- stamp;
  sess.credits <- sess.credits - 1;
  t.env.ch t.cost.credit_logic;
  let mtu = t.cfg.mtu in
  let flow = Wire.flow_hash ~src_host:t.host ~dst_host:sess.remote_host ~sn:sess.sn in
  let pkt, wire_bytes =
    if k < cli.n_req_pkts then begin
      let msg_size = Msgbuf.size args.req in
      let hdr =
        {
          Pkthdr.req_type = args.req_type;
          msg_size;
          dest_session = sess.remote_sn;
          pkt_type = Pkthdr.Req;
          pkt_num = k;
          req_num = slot.req_num;
          token = sess.token;
          ecn_echo = false;
        }
      in
      let len = Pkthdr.data_bytes hdr ~mtu in
      t.env.ch t.cost.tx_data_pkt;
      let payload = (Msgbuf.unsafe_bytes args.req, Msgbuf.unsafe_offset args.req + (k * mtu), len) in
      ( Wire.make ~pool:t.pool ~src_host:t.host ~dst_host:sess.remote_host
          ~dst_rpc:sess.remote_rpc_id ~wire_overhead:t.cfg.wire_overhead ~flow ~hdr ~payload (),
        len + t.cfg.wire_overhead )
    end
    else begin
      (* Request-for-response for response packet (k - N + 1). *)
      let hdr =
        {
          Pkthdr.req_type = args.req_type;
          msg_size = 0;
          dest_session = sess.remote_sn;
          pkt_type = Pkthdr.Rfr;
          pkt_num = k - cli.n_req_pkts + 1;
          req_num = slot.req_num;
          token = sess.token;
          ecn_echo = false;
        }
      in
      t.env.ch t.cost.tx_ctrl_pkt;
      ( Wire.make ~pool:t.pool ~src_host:t.host ~dst_host:sess.remote_host
          ~dst_rpc:sess.remote_rpc_id ~wire_overhead:t.cfg.wire_overhead ~flow ~hdr (),
        t.cfg.wire_overhead )
    end
  in
  (* Only retransmitted REQUEST DATA packets reference the request msgbuf
     from the rate limiter; RFRs are header-only, so they never force
     response drops (Appendix C). *)
  let is_retx = k < cli.max_tx && k < cli.n_req_pkts in
  cli.num_tx <- k + 1;
  if cli.num_tx > cli.max_tx then cli.max_tx <- cli.num_tx;
  if Obs.Trace.enabled t.trace then tag_pkt t ~ssn:sess.sn pkt;
  t.env.transmit slot pkt ~wire_bytes ~tx_item:k ~is_retx

(* {2 Retransmission (go-back-N, §5.3)} *)

and arm_rto t slot =
  let timer =
    match slot.rto with
    | Some timer -> timer
    | None ->
        let timer =
          Sim.Timer.create t.engine ~callback:(fun () ->
              if slot.busy && t.env.alive () then begin
                if Obs.Trace.enabled t.trace then
                  trace_sslot t ~name:"rto_fire" ~sn:slot.session.sn
                    ~req:slot.req_num [];
                slot.needs_retx <- true;
                Queue.add slot t.retxq;
                t.env.wake ()
              end)
        in
        slot.rto <- Some timer;
        timer
  in
  Sim.Timer.arm_after timer t.cfg.rto_ns

and do_retransmit t slot =
  slot.needs_retx <- false;
  if slot.busy then
    match slot.cli with
    | None -> ()
    | Some cli ->
        let sess = slot.session in
        cli.consec_retx <- cli.consec_retx + 1;
        if cli.consec_retx >= t.cfg.max_retransmits then begin
          (* Retry budget exhausted: the peer is gone (crashed, restarted
             without our session state, or partitioned). Reset the session
             instead of retransmitting forever. *)
          t.env.ch (Transport.Iface.flush_time_ns t.transport);
          reset_session t sess
        end
        else begin
          if 2 * cli.consec_retx > t.cfg.max_retransmits then
            t.stats.Rpc_stats.retx_warnings <- t.stats.Rpc_stats.retx_warnings + 1;
          t.stats.Rpc_stats.retransmits <- t.stats.Rpc_stats.retransmits + 1;
          cli.retransmits <- cli.retransmits + 1;
          sess.retransmits <- sess.retransmits + 1;
          if Obs.Trace.enabled t.trace then
            trace_sslot t ~name:"retx" ~sn:sess.sn ~req:slot.req_num
              [ ("consec", Obs.Trace.I cli.consec_retx) ];
          (* Roll back wire state and reclaim credits. *)
          sess.credits <- sess.credits + (cli.num_tx - cli.num_rx);
          cli.num_tx <- cli.num_rx;
          (* Flush the TX DMA queue so no stale reference to the request
             msgbuf survives (§4.2.2): expensive, but only on loss. *)
          t.env.ch (Transport.Iface.flush_time_ns t.transport);
          arm_rto t slot;
          push_txq t slot
        end

(* {2 RX demultiplexing} *)

and rx_pkt t pkt =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.instant t.trace ~ts:(Sim.Engine.now t.engine) ~cat:"pkt" ~name:"rx"
      ~pid:t.pid ~tid:t.tid
      [ ("id", Obs.Trace.I pkt.Netsim.Packet.trace_id) ];
  (match pkt.Netsim.Packet.body with
  | Wire.Pkt _ when not (Wire.verify pkt) ->
      (* Failed wire checksum: the packet was corrupted in flight. Drop it;
         the sender's RTO recovers it like a loss. *)
      t.stats.Rpc_stats.rx_pkts <- t.stats.Rpc_stats.rx_pkts + 1;
      t.stats.Rpc_stats.rx_corrupt <- t.stats.Rpc_stats.rx_corrupt + 1;
      t.env.ch t.cost.rx_pkt
  | Wire.Pkt { hdr; data; off; len; _ } -> (
      t.stats.Rpc_stats.rx_pkts <- t.stats.Rpc_stats.rx_pkts + 1;
      t.env.ch t.cost.rx_pkt;
      let ecn = pkt.Netsim.Packet.ecn in
      let sn = hdr.Pkthdr.dest_session in
      if sn >= 0 && sn < Array.length t.sessions then
        match t.sessions.(sn) with
        | None -> ()
        | Some sess when hdr.Pkthdr.token <> sess.token ->
            (* Stale traffic for a recycled session number: the sender has
               not yet noticed that the session it knew died (typically a
               crash-restart it could not observe). Without this check the
               packet would be matched to an unrelated session's slot. *)
            t.stats.Rpc_stats.rx_stale <- t.stats.Rpc_stats.rx_stale + 1
        | Some sess -> (
            let slot = Session.slot sess (hdr.req_num mod t.cfg.req_window) in
            match (hdr.pkt_type, sess.role) with
            | (Pkthdr.Cr | Pkthdr.Resp), Client -> client_rx t sess slot hdr data off len ~ecn
            | (Pkthdr.Req | Pkthdr.Rfr), Server -> server_rx t sess slot hdr data off len ~ecn
            | _ -> () (* role mismatch: corrupt/stale packet *)))
  | _ -> ());
  (* RX is the end of the packet's life: the payload has been copied into a
     msgbuf (or viewed out of the backing bytes), so the record itself can
     return to its sender's free-list. *)
  Netsim.Packet.free pkt

(* {2 Client RX} *)

and accept_rx_item t slot (cli : client_info) ~marked =
  let sess = slot.session in
  let i = cli.num_rx in
  cli.num_rx <- i + 1;
  cli.consec_retx <- 0 (* progress: the retry budget is consecutive RTOs *);
  sess.credits <- sess.credits + 1;
  t.env.ch t.cost.credit_logic;
  (* A credit became available: unpark slots blocked on credits. *)
  while not (Queue.is_empty sess.credit_waiters) do
    let waiter = Queue.take sess.credit_waiters in
    waiter.in_credit_waitq <- false;
    if waiter.busy then push_txq t waiter
  done;
  let stamp = t.env.now_ts () in
  let sample = Sim.Time.sub stamp cli.tx_ts.(i mod Array.length cli.tx_ts) in
  t.env.rtt_sample sample;
  if t.cfg.opts.congestion_control then begin
    t.env.ch t.cost.cc_check;
    t.env.cc_sample sess ~sample_rtt_ns:sample ~marked
  end;
  arm_rto t slot

and client_rx t sess slot hdr data off len ~ecn =
  (* Congestion signal: this packet was marked on the reverse path, or it
     acknowledges a marked forward-path packet. *)
  let marked = ecn || hdr.Pkthdr.ecn_echo in
  if slot.busy && hdr.Pkthdr.req_num = slot.req_num then
    match (slot.args, slot.cli) with
    | Some args, Some cli -> (
        match hdr.pkt_type with
        | Pkthdr.Cr ->
            (* CR for request packet [pkt_num] is RX item [pkt_num]. In
               cumulative mode one CR acknowledges every request packet up
               to [pkt_num]. *)
            let acceptable =
              if t.cfg.opts.cumulative_crs then
                hdr.pkt_num >= cli.num_rx && hdr.pkt_num < cli.n_req_pkts - 1
              else hdr.pkt_num = cli.num_rx
            in
            if acceptable then begin
              (* Intermediate items return credits without separate RTT
                 samples; the newest item carries the sample. *)
              while cli.num_rx < hdr.pkt_num do
                cli.num_rx <- cli.num_rx + 1;
                sess.credits <- sess.credits + 1
              done;
              accept_rx_item t slot cli ~marked;
              if client_next_item_ready cli && sess.credits > 0 then begin
                push_txq t slot;
                t.env.wake ()
              end
            end
        | Pkthdr.Resp ->
            let item = cli.n_req_pkts - 1 + hdr.pkt_num in
            if item = cli.num_rx then begin
              if cli.retx_in_wheel then
                (* A retransmitted packet of this request sits in the rate
                   limiter: drop the response (Appendix C). *)
                ()
              else begin
                if hdr.pkt_num = 0 then begin
                  if hdr.msg_size > Msgbuf.max_size args.resp then
                    invalid_arg "eRPC: response larger than client's response msgbuf";
                  Msgbuf.unsafe_set_size args.resp hdr.msg_size;
                  cli.n_resp_pkts <- max 1 ((hdr.msg_size + t.cfg.mtu - 1) / t.cfg.mtu)
                end;
                (* Copy response data into the client's response msgbuf
                   (§3.1); this copy is a real CPU cost (§6.4). *)
                if len > 0 then begin
                  Msgbuf.blit_from_bytes data ~src_off:off args.resp
                    ~dst_off:(hdr.pkt_num * t.cfg.mtu) ~len;
                  t.env.charge_memcpy len
                end;
                accept_rx_item t slot cli ~marked;
                if cli.num_rx = cli.n_req_pkts - 1 + cli.n_resp_pkts then
                  complete_request t slot args
                else if client_next_item_ready cli && sess.credits > 0 then begin
                  push_txq t slot;
                  t.env.wake ()
                end
              end
            end
        | Pkthdr.Req | Pkthdr.Rfr -> ())
    | _ -> ()

and complete_request t slot args =
  let sess = slot.session in
  disarm_rto slot;
  t.stats.Rpc_stats.completed <- t.stats.Rpc_stats.completed + 1;
  let req_num = slot.req_num in
  slot.busy <- false;
  slot.args <- None;
  Msgbuf.return_to_app args.req;
  Msgbuf.return_to_app args.resp;
  t.env.ch t.cost.continuation;
  (* Completion hook (typed response deserialization) charges before the
     request is stamped done, so its CPU time lands inside this request's
     lifetime rather than leaking into the next one. *)
  args.on_complete args.resp;
  if Obs.Trace.enabled t.trace then
    trace_sslot t ~ts:(t.env.cpu_time ()) ~name:"req_done" ~sn:sess.sn ~req:req_num [];
  args.cont (Ok ());
  (* Admit backlogged requests into freed slots. *)
  admit_backlog t sess

and admit_backlog t sess =
  let continue = ref true in
  while !continue && not (Queue.is_empty sess.backlog) do
    match Session.free_slot sess ~req_window:t.cfg.req_window with
    | Some free -> start_request t free (Queue.take sess.backlog)
    | None -> continue := false
  done

(* {2 Server RX} *)

and send_server_pkt t sess slot ~pkt_type ~pkt_num ~msg_size ~payload ~req_type ~ecn_echo =
  let hdr =
    {
      Pkthdr.req_type;
      msg_size;
      dest_session = sess.remote_sn;
      pkt_type;
      pkt_num;
      req_num = slot.req_num;
      token = sess.token;
      ecn_echo;
    }
  in
  let flow = Wire.flow_hash ~src_host:t.host ~dst_host:sess.remote_host ~sn:sess.remote_sn in
  let pkt =
    Wire.make ~pool:t.pool ~src_host:t.host ~dst_host:sess.remote_host
      ~dst_rpc:sess.remote_rpc_id ~wire_overhead:t.cfg.wire_overhead ~flow ~hdr ?payload ()
  in
  (match pkt_type with
  | Pkthdr.Cr -> t.env.ch t.cost.tx_ctrl_pkt
  | _ -> t.env.ch t.cost.tx_data_pkt);
  if Obs.Trace.enabled t.trace then tag_pkt t ~ssn:sess.sn pkt;
  t.env.post pkt

and send_cr t sess slot ~pkt_num ~req_type ~ecn_echo =
  send_server_pkt t sess slot ~pkt_type:Pkthdr.Cr ~pkt_num ~msg_size:0 ~payload:None ~req_type
    ~ecn_echo

and send_resp_pkt t sess slot ~pkt_num ~ecn_echo =
  match slot.srv with
  | Some ({ resp_buf = Some resp; _ } as srv) when srv.handler_done ->
      let msg_size = Msgbuf.size resp in
      let mtu = t.cfg.mtu in
      let len =
        let off = pkt_num * mtu in
        if off >= msg_size then 0 else min mtu (msg_size - off)
      in
      let payload =
        Some (Msgbuf.unsafe_bytes resp, Msgbuf.unsafe_offset resp + (pkt_num * mtu), len)
      in
      send_server_pkt t sess slot ~pkt_type:Pkthdr.Resp ~pkt_num ~msg_size ~payload
        ~req_type:0 ~ecn_echo
  | _ -> ()

and begin_new_request t sess slot hdr =
  let srv = Session.server_info slot in
  assert (not srv.handler_running);
  (* The previous response buffer is released: the client has completed the
     previous request, or it would not have issued a new one on this slot. *)
  (match srv.resp_buf with
  | Some resp when Msgbuf.owner resp = Msgbuf.Owned_by_erpc -> Msgbuf.return_to_app resp
  | _ -> ());
  srv.resp_buf <- None;
  (* Recycle the assembly buffer: the completed request's bytes are dead,
     and the next multi-packet request on this slot can blit into the same
     storage instead of allocating. Views alias the RX ring — never kept. *)
  (match srv.req_buf with
  | Some b when not (Msgbuf.is_view b) -> srv.spare_req_buf <- Some b
  | _ -> ());
  srv.req_buf <- None;
  srv.handler_done <- false;
  srv.num_rx <- 0;
  srv.n_req_pkts <- max 1 ((hdr.Pkthdr.msg_size + t.cfg.mtu - 1) / t.cfg.mtu);
  slot.req_num <- hdr.req_num;
  slot.busy <- true;
  ignore sess

and server_rx t sess slot hdr data off len ~ecn =
  match hdr.Pkthdr.pkt_type with
  | Pkthdr.Req ->
      if hdr.req_num < slot.req_num then () (* stale request: already superseded *)
      else begin
        if hdr.req_num > slot.req_num then begin_new_request t sess slot hdr;
        let srv = Session.server_info slot in
        let p = hdr.pkt_num in
        if p < srv.num_rx then begin
          (* Duplicate from a client rollback: re-ack idempotently; the
             handler is never run twice (at-most-once). Cumulative mode
             re-acks everything received so far. *)
          if p < srv.n_req_pkts - 1 then begin
            let ack =
              if t.cfg.opts.cumulative_crs then min (srv.num_rx - 1) (srv.n_req_pkts - 2)
              else p
            in
            send_cr t sess slot ~pkt_num:ack ~req_type:hdr.req_type ~ecn_echo:ecn
          end
          else if srv.handler_done then send_resp_pkt t sess slot ~pkt_num:0 ~ecn_echo:ecn
        end
        else if p > srv.num_rx then () (* reordered: treated as loss *)
        else begin
          srv.num_rx <- p + 1;
          store_req_data t slot srv hdr data off len;
          if p < srv.n_req_pkts - 1 then begin
            let send_now =
              (not t.cfg.opts.cumulative_crs)
              || (p + 1) mod t.cfg.cr_stride = 0
              || p = srv.n_req_pkts - 2
            in
            if send_now then send_cr t sess slot ~pkt_num:p ~req_type:hdr.req_type ~ecn_echo:ecn
          end
          else begin
            (* The echo for the last request packet rides on response
               packet 0, sent when the handler responds. *)
            srv.ecn_pending <- ecn;
            t.env.invoke sess slot srv hdr.req_type
          end
        end
      end
  | Pkthdr.Rfr ->
      if hdr.req_num = slot.req_num then
        send_resp_pkt t sess slot ~pkt_num:hdr.pkt_num ~ecn_echo:ecn
  | Pkthdr.Cr | Pkthdr.Resp -> ()

and store_req_data t _slot srv hdr data off len =
  let single_pkt = srv.n_req_pkts = 1 in
  let zero_copy_ok =
    single_pkt && t.cfg.opts.zero_copy_rx && t.env.zero_copy_dispatch hdr.Pkthdr.req_type
  in
  if zero_copy_ok then
    (* Dispatch handler runs directly on the RX ring buffer (§4.2.3). *)
    srv.req_buf <- Some (Msgbuf.view data ~off ~len)
  else begin
    (match srv.req_buf with
    | Some _ -> ()
    | None ->
        (* The modeled allocation cost is charged whether or not the
           host-level buffer is recycled, so traces are identical either
           way. *)
        t.env.ch t.cost.dyn_alloc;
        let buf =
          match srv.spare_req_buf with
          | Some spare when Msgbuf.max_size spare >= hdr.msg_size ->
              srv.spare_req_buf <- None;
              Msgbuf.unsafe_set_size spare hdr.msg_size;
              spare
          | _ ->
              let b = Msgbuf.alloc ~max_size:hdr.msg_size in
              Msgbuf.take_for_erpc b;
              b
        in
        srv.req_buf <- Some buf);
    if len > 0 then begin
      match srv.req_buf with
      | Some buf ->
          Msgbuf.blit_from_bytes data ~src_off:off buf ~dst_off:(hdr.pkt_num * t.cfg.mtu) ~len;
          t.env.charge_memcpy len
      | None -> assert false
    end
  end

(* {2 Client request admission} *)

and start_request t slot args =
  let sess = slot.session in
  slot.req_num <- slot.req_num + t.cfg.req_window;
  slot.busy <- true;
  slot.args <- Some args;
  slot.issue_time <- Sim.Engine.now t.engine;
  if Obs.Trace.enabled t.trace then
    trace_sslot t ~name:"req_start" ~sn:sess.sn ~req:slot.req_num [];
  let cli = Session.client_info slot ~credits:sess.credit_limit in
  (* Completion is blocked while a retransmitted copy is wheeled, so a new
     request can only start once no rate-limiter reference to the previous
     request's buffers exists. *)
  assert (not cli.retx_in_wheel);
  cli.num_tx <- 0;
  cli.num_rx <- 0;
  cli.max_tx <- 0;
  cli.consec_retx <- 0;
  cli.n_req_pkts <- Msgbuf.num_pkts args.req ~mtu:t.cfg.mtu;
  cli.n_resp_pkts <- -1;
  arm_rto t slot;
  push_txq t slot;
  t.env.wake ()

(* Completion of a server handler (possibly from a background worker):
   record the response buffer and transmit response packet 0, carrying the
   deferred ECN echo for the request's last packet. *)
let enqueue_response t sess slot srv resp =
  srv.handler_running <- false;
  srv.handler_done <- true;
  if Obs.Trace.enabled t.trace then
    trace_sslot t ~name:"srv_resp" ~sn:sess.sn ~req:slot.req_num [];
  if Msgbuf.owner resp = Msgbuf.Owned_by_app then Msgbuf.take_for_erpc resp;
  srv.resp_buf <- Some resp;
  send_resp_pkt t sess slot ~pkt_num:0 ~ecn_echo:srv.ecn_pending

let enqueue_request_hooked t sess ~req_type ~req ~resp ~on_complete ~cont =
  if sess.role <> Client then invalid_arg "Rpc.enqueue_request: not a client session";
  if Msgbuf.size req > t.cfg.max_msg_size then
    invalid_arg "Rpc.enqueue_request: request exceeds the maximum message size";
  t.env.ch t.cost.enqueue_request;
  Msgbuf.take_for_erpc req;
  Msgbuf.take_for_erpc resp;
  let args = { req_type; req; resp; on_complete; cont } in
  match sess.state with
  | Error _ | Destroyed ->
      Msgbuf.return_to_app req;
      Msgbuf.return_to_app resp;
      Sim.Engine.schedule_after t.engine 0 (fun () ->
          cont (Stdlib.Error (Err.Session_error "session closed")))
  | Connect_pending -> Queue.add args sess.backlog
  | Connected -> (
      match Session.free_slot sess ~req_window:t.cfg.req_window with
      | Some slot -> start_request t slot args
      | None -> Queue.add args sess.backlog)

let enqueue_request t sess ~req_type ~req ~resp ~cont =
  enqueue_request_hooked t sess ~req_type ~req ~resp ~on_complete:(fun _ -> ()) ~cont

(* {2 Event-loop hooks} *)

let drain_retx t =
  while not (Queue.is_empty t.retxq) do
    do_retransmit t (Queue.take t.retxq)
  done

let run_tx_burst t =
  let budget = ref t.cfg.tx_batch in
  let n_in_txq = Queue.length t.txq in
  let serviced = ref 0 in
  while !budget > 0 && !serviced < n_in_txq && not (Queue.is_empty t.txq) do
    incr serviced;
    let slot = Queue.take t.txq in
    slot.in_txq <- false;
    service_slot_tx t slot budget
  done

let has_pending_tx t = (not (Queue.is_empty t.txq)) || not (Queue.is_empty t.retxq)

(* {2 Session table} *)

let n_sessions t = t.n_sessions

let add_session t sess =
  let sn = sess.sn in
  if sn >= Array.length t.sessions then begin
    let cap = max 8 (max (2 * Array.length t.sessions) (sn + 1)) in
    let grown = Array.make cap None in
    Array.blit t.sessions 0 grown 0 (Array.length t.sessions);
    t.sessions <- grown
  end;
  t.sessions.(sn) <- Some sess;
  t.n_sessions <- t.n_sessions + 1

let get_session t sn =
  if sn >= 0 && sn < Array.length t.sessions then t.sessions.(sn) else None

let remove_session t sn =
  t.sessions.(sn) <- None;
  t.n_sessions <- t.n_sessions - 1;
  if sn < t.sn_hint then t.sn_hint <- sn

let iter_sessions t f =
  Array.iter (function Some sess -> f sess | None -> ()) t.sessions

(* Lowest free sn. The hint invariant (no free index below [sn_hint])
   makes the amortized cost O(1); the result is identical to scanning
   from 0. *)
let fresh_sn t =
  let rec go i = if i < Array.length t.sessions && t.sessions.(i) <> None then go (i + 1) else i in
  let sn = go t.sn_hint in
  t.sn_hint <- sn;
  sn

(* Armed RTO timers across all sessions. The chaos harness checks this is
   zero after quiesce: any armed timer on a completed/failed request is a
   leak. *)
let armed_rto_count t =
  Array.fold_left
    (fun acc s ->
      match s with
      | None -> acc
      | Some sess ->
          Array.fold_left
            (fun acc slot ->
              match slot with
              | Some { rto = Some timer; _ } when Sim.Timer.is_armed timer -> acc + 1
              | _ -> acc)
            acc sess.slots)
    0 t.sessions

(* Rate updates performed across all session controllers (both CC
   algorithms), for the factor-analysis accounting. *)
let cc_updates t =
  Array.fold_left
    (fun acc s ->
      match s with
      | Some { cc = Some controller; _ } -> acc + Cc.updates controller
      | _ -> acc)
    0 t.sessions

(* Local crash: every session, queued transmission and pending
   retransmission is lost with the process. *)
let clear_on_crash t =
  Array.fill t.sessions 0 (Array.length t.sessions) None;
  t.n_sessions <- 0;
  t.sn_hint <- 0;
  Queue.clear t.txq;
  Queue.clear t.retxq
